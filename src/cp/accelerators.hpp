/**
 * @file
 * Control-plane inference-accelerator latency models (Table 2).
 *
 * The paper benchmarks unbatched anomaly-DNN inference on a Broadwell
 * Xeon (0.67 ms), a Tesla T4 (1.15 ms), and a Cloud TPU v2-8 (3.51 ms),
 * attributing the latency to framework/setup overhead rather than
 * compute. We model each device as setup + transfer + per-item compute;
 * the batch-1 points are calibrated to the published values, and the
 * batch scaling follows the stated mechanism (batching amortizes setup
 * but the first element waits for the whole batch).
 */

#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace taurus::cp {

/** A bump-in-the-wire or server-side accelerator. */
struct AcceleratorModel
{
    std::string name;
    double setup_ms = 0.0;        ///< framework invocation overhead
    double transfer_us = 0.0;     ///< per-batch host<->device transfer
    double per_item_us = 0.0;     ///< marginal per-input compute
    double per_item_floor_us = 0.0; ///< compute floor at huge batches

    /** End-to-end latency for one batch (its first element's wait). */
    double inferLatencyMs(size_t batch) const;

    /** Sustained throughput in items/s at the given batch size. */
    double throughputPerSec(size_t batch) const;
};

/** The Table 2 devices: Xeon, T4, TPU (in the paper's order). */
const std::vector<AcceleratorModel> &accelerators();

/** Lookup by name; throws std::invalid_argument if unknown. */
const AcceleratorModel &accelerator(const std::string &name);

} // namespace taurus::cp
