/**
 * @file
 * Reference integer executor for dataflow graphs.
 *
 * Defines the value semantics of every NodeKind; the hw cycle simulator is
 * required (by test) to produce bit-identical results, and model graphs are
 * required to match the nn::QuantizedMlp reference, giving a two-level
 * equivalence chain: nn reference == dfg graph == hw simulation.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"
#include "kernels/kernels.hpp"

namespace taurus::dfg {

/** Lane values during evaluation (int8 payloads stored sign-extended). */
struct LaneVec
{
    std::vector<int32_t> lanes;
    ValueType type = ValueType::Int8Vec;
};

/**
 * Reusable evaluation state for the allocation-free per-packet path:
 * per-node lane buffers (capacity retained across packets) plus the
 * graph's topological order, both computed once by bind(). A scratch is
 * bound to one graph structure; rebinding is cheap and only needed when
 * the graph changes shape (weight-only updates keep the binding valid).
 */
class EvalScratch
{
  public:
    /** Validate `g`, cache its topo order, and size the buffers. */
    void bind(const Graph &g);

    bool bound() const { return graph_ != nullptr; }

  private:
    friend std::vector<LaneVec> &evaluateInto(
        const Graph &g, const std::vector<std::vector<int8_t>> &inputs,
        EvalScratch &scratch);

    const Graph *graph_ = nullptr; ///< identity of the bound graph
    std::vector<int> topo_;
    std::vector<int> out_ids_;     ///< Output node ids, insertion order
    std::vector<LaneVec> values_;  ///< one per node, lanes reused
    std::vector<LaneVec> outputs_; ///< one per Output node, lanes reused
};

/**
 * Evaluate the graph on one input vector per Input node (matched in
 * insertion order). Returns one LaneVec per Output node.
 */
std::vector<LaneVec> evaluate(const Graph &g,
                              const std::vector<std::vector<int8_t>> &inputs);

/**
 * Allocation-free evaluate: identical semantics (and bit-identical
 * results) to evaluate(), but all intermediate and output lane storage
 * lives in `scratch` and is reused across calls. The returned reference
 * points into the scratch and is valid until the next call. The scratch
 * self-binds on first use (or when the node count changes); callers that
 * swap between same-shaped graphs can keep one scratch per graph.
 */
std::vector<LaneVec> &evaluateInto(
    const Graph &g, const std::vector<std::vector<int8_t>> &inputs,
    EvalScratch &scratch);

/** Convenience for single-input single-output graphs. */
std::vector<int8_t> evaluateSimple(const Graph &g,
                                   const std::vector<int8_t> &input);

/** Semantics of a single map function on one int8 lane. */
int32_t applyMapFn(MapFn fn, int32_t x, int32_t imm,
                   const fixed::Requantizer &rq);

/**
 * Apply one map function in place over `n` contiguous lanes through the
 * kernel table's vector primitives; bit-identical to applyMapFn per lane.
 */
void applyMapFnLanes(const kernels::Ops &ops, MapFn fn, int32_t *x,
                     size_t n, int32_t imm, const fixed::Requantizer &rq);

} // namespace taurus::dfg
