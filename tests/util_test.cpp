#include <gtest/gtest.h>

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace tu = taurus::util;

TEST(Rng, Deterministic)
{
    tu::Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitIndependent)
{
    tu::Rng a(42);
    tu::Rng c = a.split();
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, UniformBounds)
{
    tu::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const double v = rng.uniform(2.0, 3.0);
        EXPECT_GE(v, 2.0);
        EXPECT_LT(v, 3.0);
    }
}

TEST(Rng, UniformIntBounds)
{
    tu::Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const int64_t v = rng.uniformInt(-3, 7);
        EXPECT_GE(v, -3);
        EXPECT_LE(v, 7);
    }
}

TEST(Rng, CategoricalRespectsWeights)
{
    tu::Rng rng(7);
    int counts[3] = {0, 0, 0};
    for (int i = 0; i < 30000; ++i)
        ++counts[rng.categorical({1.0, 2.0, 7.0})];
    EXPECT_LT(counts[0], counts[1]);
    EXPECT_LT(counts[1], counts[2]);
    EXPECT_NEAR(counts[2] / 30000.0, 0.7, 0.03);
}

TEST(Rng, ShufflePreservesElements)
{
    tu::Rng rng(3);
    std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
    auto copy = v;
    rng.shuffle(v);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, copy);
}

TEST(ConfusionMatrix, PerfectClassifier)
{
    tu::ConfusionMatrix cm;
    for (int i = 0; i < 10; ++i) {
        cm.record(true, true);
        cm.record(false, false);
    }
    EXPECT_DOUBLE_EQ(cm.precision(), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(), 1.0);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
}

TEST(ConfusionMatrix, KnownValues)
{
    tu::ConfusionMatrix cm;
    // tp=6, fp=2, fn=4, tn=8.
    for (int i = 0; i < 6; ++i) cm.record(true, true);
    for (int i = 0; i < 2; ++i) cm.record(true, false);
    for (int i = 0; i < 4; ++i) cm.record(false, true);
    for (int i = 0; i < 8; ++i) cm.record(false, false);
    EXPECT_DOUBLE_EQ(cm.precision(), 0.75);
    EXPECT_DOUBLE_EQ(cm.recall(), 0.6);
    EXPECT_NEAR(cm.f1(), 2 * 0.75 * 0.6 / 1.35, 1e-12);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 14.0 / 20.0);
    EXPECT_EQ(cm.positives(), 10u);
}

TEST(ConfusionMatrix, MergeAddsCounts)
{
    tu::ConfusionMatrix a, b;
    a.record(true, true);
    b.record(false, true);
    a.merge(b);
    EXPECT_EQ(a.tp(), 1u);
    EXPECT_EQ(a.fn(), 1u);
    EXPECT_EQ(a.total(), 2u);
}

TEST(ConfusionMatrix, EmptyIsSafe)
{
    tu::ConfusionMatrix cm;
    EXPECT_DOUBLE_EQ(cm.f1(), 0.0);
    EXPECT_DOUBLE_EQ(cm.recall(), 0.0);
    EXPECT_DOUBLE_EQ(cm.precision(), 1.0);
}

TEST(RunningStat, MeanAndVariance)
{
    tu::RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-9);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 9.0);
    EXPECT_EQ(s.count(), 8u);
}

TEST(RunningStat, MergeEdgeCases)
{
    tu::RunningStat filled;
    for (double v : {1.0, 3.0, 5.0, 11.0})
        filled.add(v);

    // Merging an empty accumulator is a no-op.
    tu::RunningStat empty;
    tu::RunningStat a = filled;
    a.merge(empty);
    EXPECT_EQ(a.count(), filled.count());
    EXPECT_DOUBLE_EQ(a.mean(), filled.mean());
    EXPECT_DOUBLE_EQ(a.variance(), filled.variance());
    EXPECT_DOUBLE_EQ(a.sum(), filled.sum());

    // Merging into an empty accumulator copies the source exactly.
    tu::RunningStat b;
    b.merge(filled);
    EXPECT_EQ(b.count(), filled.count());
    EXPECT_DOUBLE_EQ(b.mean(), filled.mean());
    EXPECT_DOUBLE_EQ(b.variance(), filled.variance());
    EXPECT_DOUBLE_EQ(b.min(), filled.min());
    EXPECT_DOUBLE_EQ(b.max(), filled.max());

    // Self-merge must behave like merging an identical copy (the
    // aliased reads inside merge() are all of not-yet-written fields).
    tu::RunningStat self = filled;
    self.merge(self);
    tu::RunningStat doubled = filled;
    doubled.merge(filled);
    EXPECT_EQ(self.count(), doubled.count());
    EXPECT_DOUBLE_EQ(self.mean(), doubled.mean());
    EXPECT_NEAR(self.variance(), doubled.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(self.sum(), doubled.sum());
}

TEST(RunningStat, MergeOrderIndependent)
{
    tu::RunningStat x, y;
    for (double v : {1.0, 2.0, 2.5})
        x.add(v);
    for (double v : {10.0, -4.0, 6.0, 0.5})
        y.add(v);

    tu::RunningStat xy = x, yx = y;
    xy.merge(y);
    yx.merge(x);
    EXPECT_EQ(xy.count(), yx.count());
    EXPECT_NEAR(xy.mean(), yx.mean(), 1e-12);
    EXPECT_NEAR(xy.variance(), yx.variance(), 1e-12);
    EXPECT_DOUBLE_EQ(xy.min(), yx.min());
    EXPECT_DOUBLE_EQ(xy.max(), yx.max());

    // And both equal the sequential accumulation over all samples.
    tu::RunningStat all;
    for (double v : {1.0, 2.0, 2.5, 10.0, -4.0, 6.0, 0.5})
        all.add(v);
    EXPECT_NEAR(xy.mean(), all.mean(), 1e-12);
    EXPECT_NEAR(xy.variance(), all.variance(), 1e-12);
}

TEST(RunningStat, ResetForWindowedUse)
{
    // The drift monitor accumulates per-window score statistics and
    // resets at every window boundary; reset must restore the
    // freshly-constructed state (including min/max sentinels).
    tu::RunningStat s;
    s.add(-3.0);
    s.add(7.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.sum(), 0.0);

    // A reset accumulator behaves exactly like a new one.
    s.add(2.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
    EXPECT_DOUBLE_EQ(s.min(), 2.0);
    EXPECT_DOUBLE_EQ(s.max(), 2.0);
    EXPECT_EQ(s.count(), 1u);
}

TEST(Percentile, Interpolates)
{
    std::vector<double> v{1, 2, 3, 4, 5};
    EXPECT_DOUBLE_EQ(tu::percentile(v, 0), 1.0);
    EXPECT_DOUBLE_EQ(tu::percentile(v, 50), 3.0);
    EXPECT_DOUBLE_EQ(tu::percentile(v, 100), 5.0);
    EXPECT_DOUBLE_EQ(tu::percentile(v, 25), 2.0);
}

TEST(MathHelpers, CeilDivLog2)
{
    EXPECT_EQ(tu::ceilDiv(10, 3), 4);
    EXPECT_EQ(tu::ceilDiv(9, 3), 3);
    EXPECT_EQ(tu::nextPow2(5), 8u);
    EXPECT_EQ(tu::nextPow2(8), 8u);
    EXPECT_EQ(tu::log2Ceil(16), 4);
    EXPECT_EQ(tu::log2Ceil(17), 5);
    EXPECT_EQ(tu::log2Ceil(1), 0);
    EXPECT_EQ(tu::log2Floor(17), 4);
}

TEST(TablePrinter, AlignsColumns)
{
    tu::TablePrinter t({"App", "Latency"});
    t.addRow({"DNN", tu::TablePrinter::num(221.0, 1)});
    t.addRow({"KMeans", "61.0"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("DNN"), std::string::npos);
    EXPECT_NE(s.find("221.0"), std::string::npos);
    EXPECT_NE(s.find("KMeans"), std::string::npos);
}

TEST(CsvWriter, WritesRows)
{
    std::ostringstream os;
    tu::CsvWriter csv(os);
    csv.row({"t", "f1"});
    csv.row({"0.5", "70.1"});
    EXPECT_EQ(os.str(), "t,f1\n0.5,70.1\n");
}

TEST(Json, ScalarsAndEscaping)
{
    namespace js = taurus::util::json;
    EXPECT_EQ(js::Value().dump(0), "null");
    EXPECT_EQ(js::Value(true).dump(0), "true");
    EXPECT_EQ(js::Value(int64_t{-42}).dump(0), "-42");
    EXPECT_EQ(js::Value(1.5).dump(0), "1.5");
    // Integral-valued doubles stay recognizable as floats.
    EXPECT_EQ(js::Value(3.0).dump(0), "3.0");
    // NaN/Inf are not valid JSON numbers.
    EXPECT_EQ(js::Value(std::nan("")).dump(0), "null");
    EXPECT_EQ(js::Value("a\"b\nc").dump(0), "\"a\\\"b\\nc\"");
}

TEST(Json, ObjectPreservesInsertionOrderAndOverwrites)
{
    namespace js = taurus::util::json;
    auto o = js::Value::object();
    o.set("z", 1);
    o.set("a", 2);
    o.set("z", 3); // overwrite keeps the original position
    EXPECT_EQ(o.dump(0), "{\"z\":3,\"a\":2}");
    ASSERT_NE(o.find("a"), nullptr);
    EXPECT_EQ(o.find("missing"), nullptr);
    EXPECT_EQ(o.size(), 2u);
}

TEST(Json, NestedPrettyPrint)
{
    namespace js = taurus::util::json;
    auto o = js::Value::object();
    auto arr = js::Value::array();
    arr.push(1);
    arr.push("two");
    o.set("xs", std::move(arr));
    EXPECT_EQ(o.dump(2), "{\n  \"xs\": [\n    1,\n    \"two\"\n  ]\n}");
    EXPECT_EQ(o.dump(0), "{\"xs\":[1,\"two\"]}");
}

TEST(Json, TypeMisuseThrows)
{
    namespace js = taurus::util::json;
    auto arr = js::Value::array();
    arr.push(1);
    EXPECT_THROW(arr.set("k", 2), std::logic_error);
    auto obj = js::Value::object();
    EXPECT_THROW(obj.push(1), std::logic_error);
}

TEST(MultiConfusion, PerClassMetricsAndAccuracy)
{
    tu::MultiConfusion cm(3);
    // truth 0: predicted 0,0,1 ; truth 1: predicted 1 ; truth 2: 2,2.
    cm.record(0, 0);
    cm.record(0, 0);
    cm.record(1, 0);
    cm.record(1, 1);
    cm.record(2, 2);
    cm.record(2, 2);
    EXPECT_EQ(cm.total(), 6u);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 5.0 / 6.0);
    EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(0), 2.0 / 3.0);
    EXPECT_DOUBLE_EQ(cm.precision(1), 0.5);
    EXPECT_DOUBLE_EQ(cm.recall(1), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(2), 1.0);
    EXPECT_GT(cm.macroF1(), 0.7);

    tu::MultiConfusion other(3);
    other.record(0, 0);
    cm.merge(other);
    EXPECT_EQ(cm.total(), 7u);
    EXPECT_EQ(cm.count(0, 0), 3u);

    cm.reset();
    EXPECT_EQ(cm.total(), 0u);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 0.0);
}

TEST(MultiConfusion, ClampsOutOfRangeLabels)
{
    tu::MultiConfusion cm(2);
    cm.record(-1, 5); // both clamp to class 1
    EXPECT_EQ(cm.count(1, 1), 1u);
    // Undefined per-class metrics use the binary conventions.
    EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(0), 0.0);
}

TEST(MultiConfusion, MergeRejectsShapeMismatch)
{
    tu::MultiConfusion a(5);
    tu::MultiConfusion b(2);
    b.record(1, 1);
    EXPECT_THROW(a.merge(b), std::invalid_argument);
    EXPECT_EQ(a.total(), 0u); // nothing partially merged
}

TEST(MultiConfusion, MergeEmptyEitherWay)
{
    tu::MultiConfusion filled(3);
    filled.record(1, 1);
    filled.record(2, 0);
    tu::MultiConfusion empty(3);

    // empty into filled: nothing changes.
    filled.merge(empty);
    EXPECT_EQ(filled.total(), 2u);
    EXPECT_EQ(filled.count(1, 1), 1u);
    EXPECT_DOUBLE_EQ(filled.accuracy(), 0.5);

    // filled into empty: the empty side becomes an exact copy.
    empty.merge(filled);
    EXPECT_EQ(empty.total(), filled.total());
    for (size_t p = 0; p < 3; ++p)
        for (size_t t = 0; t < 3; ++t)
            EXPECT_EQ(empty.count(p, t), filled.count(p, t));

    // empty into empty stays empty, with the undefined-metric
    // conventions intact (precision 1, recall 0, accuracy 0).
    tu::MultiConfusion e1(4), e2(4);
    e1.merge(e2);
    EXPECT_EQ(e1.total(), 0u);
    EXPECT_DOUBLE_EQ(e1.accuracy(), 0.0);
    EXPECT_DOUBLE_EQ(e1.precision(0), 1.0);
    EXPECT_DOUBLE_EQ(e1.recall(0), 0.0);
}

TEST(MultiConfusion, MergeWithSelfDoublesEveryCell)
{
    tu::MultiConfusion cm(3);
    cm.record(0, 0);
    cm.record(1, 0);
    cm.record(2, 2);
    const double acc = cm.accuracy();
    cm.merge(cm); // aliased merge must not read half-updated cells
    EXPECT_EQ(cm.total(), 6u);
    EXPECT_EQ(cm.count(0, 0), 2u);
    EXPECT_EQ(cm.count(1, 0), 2u);
    EXPECT_EQ(cm.count(2, 2), 2u);
    // Ratios are scale-invariant: doubling changes no derived metric.
    EXPECT_DOUBLE_EQ(cm.accuracy(), acc);
}

TEST(MultiConfusion, SingleClassDegenerateCase)
{
    // K = 1: everything clamps to class 0 and the one-vs-rest metrics
    // collapse to all-positive conventions rather than dividing by 0.
    tu::MultiConfusion cm(1);
    cm.record(0, 0);
    cm.record(5, -3); // clamps to (0, 0)
    EXPECT_EQ(cm.classes(), 1u);
    EXPECT_EQ(cm.total(), 2u);
    EXPECT_EQ(cm.count(0, 0), 2u);
    EXPECT_DOUBLE_EQ(cm.accuracy(), 1.0);
    EXPECT_DOUBLE_EQ(cm.precision(0), 1.0);
    EXPECT_DOUBLE_EQ(cm.recall(0), 1.0);
    EXPECT_DOUBLE_EQ(cm.f1(0), 1.0);
    EXPECT_DOUBLE_EQ(cm.macroF1(), 1.0);
}
