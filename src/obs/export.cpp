#include "obs/export.hpp"

#include <cinttypes>
#include <cstdio>
#include <map>

namespace taurus::obs {

namespace {

/** Compact double rendering: integers print without a trailing ".0"
 *  so counter samples look like counts, not floats. */
std::string
num(double v)
{
    char buf[64];
    if (v == static_cast<int64_t>(v) && v > -1e15 && v < 1e15) {
        std::snprintf(buf, sizeof(buf), "%" PRId64,
                      static_cast<int64_t>(v));
    } else {
        std::snprintf(buf, sizeof(buf), "%.17g", v);
    }
    return buf;
}

std::string
sampleName(const std::string &name, const std::string &labels)
{
    return labels.empty() ? name : name + "{" + labels + "}";
}

/** `labels` with one more `key="value"` pair appended. */
std::string
withLabel(const std::string &labels, const std::string &extra)
{
    return labels.empty() ? extra : labels + "," + extra;
}

const char *
typeName(MetricKind k)
{
    switch (k) {
    case MetricKind::Counter:
        return "counter";
    case MetricKind::Gauge:
        return "gauge";
    case MetricKind::Histogram:
        return "histogram";
    }
    return "untyped";
}

} // namespace

std::string
renderPrometheus(const Snapshot &snap)
{
    std::string out;
    // A family's # TYPE line must precede all its samples and appear
    // once, so group series by metric name first (std::map keeps the
    // output stable across scrapes — diffable artifacts).
    std::map<std::string, std::vector<const Snapshot::Num *>> nums;
    for (const auto &n : snap.nums)
        nums[n.name].push_back(&n);
    for (const auto &[name, series] : nums) {
        out += "# TYPE " + name + " " + typeName(series.front()->kind) +
               "\n";
        for (const Snapshot::Num *n : series)
            out += sampleName(name, n->labels) + " " + num(n->value) +
                   "\n";
    }

    std::map<std::string, std::vector<const Snapshot::Hist *>> hists;
    for (const auto &h : snap.hists)
        hists[h.name].push_back(&h);
    for (const auto &[name, series] : hists) {
        out += "# TYPE " + name + " histogram\n";
        for (const Snapshot::Hist *h : series) {
            uint64_t cum = 0;
            const auto &buckets = h->hist.buckets();
            for (size_t b = 0; b < kBucketCount; ++b) {
                if (buckets[b] == 0)
                    continue;
                cum += buckets[b];
                // The upper edge of bucket b is bucket b+1's lower
                // edge; the saturation bucket folds into +Inf below.
                if (b + 1 >= kBucketCount)
                    continue;
                out += sampleName(
                           name + "_bucket",
                           withLabel(h->labels,
                                     "le=\"" +
                                         num(bucketLowerEdge(b + 1)) +
                                         "\"")) +
                       " " + num(static_cast<double>(cum)) + "\n";
            }
            out += sampleName(name + "_bucket",
                              withLabel(h->labels, "le=\"+Inf\"")) +
                   " " + num(static_cast<double>(h->hist.count())) +
                   "\n";
            out += sampleName(name + "_sum", h->labels) + " " +
                   num(h->hist.sum()) + "\n";
            out += sampleName(name + "_count", h->labels) + " " +
                   num(static_cast<double>(h->hist.count())) + "\n";
        }
    }
    return out;
}

util::json::Value
toJson(const Snapshot &snap)
{
    using util::json::Value;
    Value root = Value::object();
    Value counters = Value::object();
    Value gauges = Value::object();
    for (const auto &n : snap.nums) {
        (n.kind == MetricKind::Gauge ? gauges : counters)
            .set(sampleName(n.name, n.labels), Value(n.value));
    }
    Value hists = Value::object();
    for (const auto &h : snap.hists) {
        Value v = Value::object();
        v.set("count", Value(h.hist.count()));
        v.set("sum", Value(h.hist.sum()));
        v.set("min", Value(h.hist.min()));
        v.set("max", Value(h.hist.max()));
        v.set("p50", Value(h.hist.p50()));
        v.set("p90", Value(h.hist.p90()));
        v.set("p99", Value(h.hist.p99()));
        v.set("p999", Value(h.hist.p999()));
        hists.set(sampleName(h.name, h.labels), std::move(v));
    }
    root.set("counters", std::move(counters));
    root.set("gauges", std::move(gauges));
    root.set("histograms", std::move(hists));
    return root;
}

util::json::Value
tracesToJson(const std::vector<PacketTrace> &traces)
{
    using util::json::Value;
    Value arr = Value::array();
    for (const PacketTrace &t : traces) {
        Value v = Value::object();
        v.set("seq", Value(t.seq));
        v.set("app", Value(static_cast<uint64_t>(t.app_id)));
        v.set("total_ns", Value(t.total_ns));
        Value spans = Value::object();
        for (size_t i = 0; i < t.span_count; ++i)
            spans.set(stageName(t.spans[i].stage),
                      Value(static_cast<double>(t.spans[i].ns)));
        v.set("spans", std::move(spans));
        arr.push(std::move(v));
    }
    return arr;
}

} // namespace taurus::obs
