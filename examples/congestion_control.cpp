/**
 * @file
 * Learned congestion control at data-plane speed (the Indigo scenario,
 * Section 5.1.2).
 *
 * A policy network is distilled from a delay-aware teacher by imitation
 * learning, quantized, and lowered to the MapReduce block. The closed
 * loop then compares the same policy at a control-plane decision
 * interval (10 ms, Indigo's software cadence) against a Taurus-class
 * interval (one decision per RTT-scale epoch): faster decisions track
 * on/off cross traffic better.
 */

#include <iostream>

#include "compiler/compile.hpp"
#include "compiler/lower.hpp"
#include "compiler/report.hpp"
#include "dfg/eval.hpp"
#include "models/zoo.hpp"
#include "net/cc_sim.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "=== Learned congestion control ===\n\n";

    // 1. Distill a policy from the teacher controller across
    //    randomized bottlenecks.
    std::cout << "Collecting imitation data...\n";
    const auto samples = net::ccImitationSamples(/*episodes=*/40,
                                                 /*seed=*/5);
    nn::Dataset data;
    for (const auto &s : samples) {
        nn::Vector x(s.features.begin(), s.features.end());
        data.add(std::move(x), s.action);
    }
    util::Rng rng(5);
    nn::Mlp policy({5, 16, net::kCcActionCount}, nn::Activation::Relu,
                   nn::Loss::CrossEntropy, rng);
    nn::TrainConfig tc;
    tc.epochs = 40;
    tc.learning_rate = 0.05f;
    policy.train(data, tc, rng);
    std::cout << "Policy accuracy vs teacher: "
              << TablePrinter::num(policy.accuracy(data) * 100.0, 1)
              << "% over " << data.size() << " decisions\n";

    // 2. Quantize + lower + compile the policy for the data plane.
    std::vector<nn::Vector> calib(data.x.begin(),
                                  data.x.begin() +
                                      std::min<size_t>(256, data.size()));
    const auto qpolicy = nn::QuantizedMlp::fromFloat(policy, calib);
    const auto graph = compiler::lowerMlp(qpolicy, "cc_policy");
    const auto rep = compiler::analyze(compiler::compile(graph));
    std::cout << "On the MapReduce block: " << rep.cus << " CUs, "
              << TablePrinter::num(rep.latency_ns, 0)
              << " ns per decision\n";

    // For scale: the paper's Indigo LSTM on the same fabric.
    const auto lstm = models::buildIndigoLstm(1);
    const auto lstm_rep =
        compiler::analyze(compiler::compile(lstm.graph));
    std::cout << "(Indigo's 32-unit LSTM compiles to "
              << lstm_rep.cus << " CUs at "
              << TablePrinter::num(lstm_rep.latency_ns, 0)
              << " ns per decision — vs its 10 ms software cadence.)\n\n";

    // 3. Closed loop: the same quantized policy at two decision rates.
    const net::CcController learned = [&](const net::CcObservation &obs) {
        const auto f = net::ccFeatures(obs);
        const nn::Vector x(f.begin(), f.end());
        return static_cast<net::CcAction>(qpolicy.predict(x));
    };

    TablePrinter t({"Decision interval", "Throughput Mb/s", "avg RTT ms",
                    "p95 RTT ms"});
    for (double interval_ms : {50.0, 10.0, 1.0}) {
        net::CcConfig cfg;
        cfg.decision_interval_ms = interval_ms;
        cfg.duration_s = 10.0;
        cfg.cross_traffic_fraction = 0.5;
        cfg.cross_on_s = 0.25;
        cfg.cross_off_s = 0.25;
        const auto res = net::runCcSim(cfg, learned);
        t.addRow({TablePrinter::num(interval_ms, 0) + " ms" +
                      (interval_ms > 5.0 ? " (control plane)"
                                         : " (Taurus)"),
                  TablePrinter::num(res.avg_throughput_mbps, 1),
                  TablePrinter::num(res.avg_rtt_ms, 2),
                  TablePrinter::num(res.p95_rtt_ms, 2)});
    }
    t.print(std::cout);

    std::cout << "\nThe paper's claim, reproduced: a tighter decision "
                 "interval lets the learned policy \"react more quickly "
                 "to changes in load and better control tail latency\" "
                 "— p95 RTT falls monotonically as decisions speed up "
                 "(this conservative distilled policy trades a little "
                 "throughput for it).\n";
    return 0;
}
