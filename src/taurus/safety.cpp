#include "taurus/safety.hpp"

#include "pisa/range_match.hpp"

namespace taurus::core {

using pisa::Action;
using pisa::ActionOp;
using pisa::Field;
using pisa::Instr;
using pisa::MatchKind;
using pisa::MatStage;
using pisa::Src;
using pisa::TableEntry;

namespace {

/** Clear the anomaly verdict (the only thing safety stages may do). */
Action
clearDecision()
{
    Action a;
    a.name = "safety_clear";
    a.instrs = {
        {ActionOp::Set, Field::Decision, Src::Imm, Field::Tmp0, 0, 0, -1,
         Field::Tmp0},
        {ActionOp::Set, Field::Priority, Src::Imm, Field::Tmp0, 0, 0, -1,
         Field::Tmp0},
    };
    return a;
}

Action
noOp(const char *name)
{
    Action a;
    a.name = name;
    return a;
}

} // namespace

CompiledSafety
compileSafety(const SafetyPolicy &policy, pisa::RegisterFile &regs)
{
    CompiledSafety out;

    // Stage 1: protected destinations and services — a flagged packet
    // matching any guard has its verdict cleared.
    if (!policy.protected_dsts.empty() ||
        !policy.protected_services.empty()) {
        MatStage st("safety_protected", MatchKind::Ternary,
                    {Field::Decision, Field::Ipv4Dst, Field::L4Dport});
        const int a_clear = st.addAction(clearDecision());
        const int a_keep = st.addAction(noOp("keep"));
        for (const auto &p : policy.protected_dsts) {
            const uint32_t mask =
                p.length == 0 ? 0
                              : ~uint32_t{0} << (32 - p.length);
            st.addEntry({{1, p.prefix, 0},
                         {0xffffffffu, mask, 0},
                         0,
                         1,
                         a_clear,
                         {}});
        }
        for (uint16_t port : policy.protected_services) {
            st.addEntry({{1, 0, port},
                         {0xffffffffu, 0, 0xffffffffu},
                         0,
                         1,
                         a_clear,
                         {}});
        }
        st.setDefault(a_keep);
        out.stages.addStage(std::move(st));
    }

    // Stages 2-4: the flag-budget liveness bound. A single-cell window
    // register pair tracks flags per window; past the budget, further
    // flags are cleared — a misbehaving model cannot black-hole the
    // pipe.
    if (policy.max_flagged_per_window > 0) {
        out.reg_window_start = regs.addArray("safety_window_start", 1);
        out.reg_flag_count = regs.addArray("safety_flag_count", 1);
        const uint64_t window_us =
            static_cast<uint64_t>(policy.window_s * 1e6);

        {
            MatStage st("safety_window_age", MatchKind::Exact,
                        {Field::Decision});
            Action load;
            load.name = "load_window";
            load.instrs = {
                {ActionOp::RegLoad, Field::Tmp0, Src::None, Field::Tmp0,
                 0, 0, out.reg_window_start, Field::Tmp0},
                {ActionOp::Set, Field::Tmp2, Src::FieldSrc,
                 Field::TimestampUs, 0, 0, -1, Field::Tmp0},
                {ActionOp::Sub, Field::Tmp2, Src::FieldSrc, Field::Tmp0,
                 0, 0, -1, Field::Tmp0},
            };
            const int a_load = st.addAction(std::move(load));
            const int a_skip = st.addAction(noOp("skip"));
            st.addEntry({{1}, {}, 0, 0, a_load, {}});
            st.setDefault(a_skip);
            out.stages.addStage(std::move(st));
        }
        {
            MatStage st("safety_window_reset", MatchKind::Ternary,
                        {Field::Decision, Field::Tmp2});
            Action reset;
            reset.name = "reset_window";
            reset.instrs = {
                {ActionOp::RegStore, Field::Tmp0, Src::FieldSrc,
                 Field::TimestampUs, 0, 0, out.reg_window_start,
                 Field::Tmp0},
                {ActionOp::RegStore, Field::Tmp0, Src::Imm, Field::Tmp0,
                 0, 0, out.reg_flag_count, Field::Tmp0},
            };
            const int a_reset = st.addAction(std::move(reset));
            const int a_keep = st.addAction(noOp("keep"));
            for (const auto &[val, mask] :
                 pisa::rangeToPrefixes(window_us + 1, 0xffffffffull))
                st.addEntry({{1, val},
                             {0xffffffffu, mask},
                             0,
                             1,
                             a_reset,
                             {}});
            st.setDefault(a_keep);
            out.stages.addStage(std::move(st));
        }
        {
            MatStage st("safety_budget", MatchKind::Exact,
                        {Field::Decision});
            Action count;
            count.name = "count_flag";
            count.instrs = {
                {ActionOp::RegAdd, Field::Tmp3, Src::Imm, Field::Tmp0, 1,
                 0, out.reg_flag_count, Field::Tmp0},
            };
            const int a_count = st.addAction(std::move(count));
            const int a_skip = st.addAction(noOp("skip"));
            st.addEntry({{1}, {}, 0, 0, a_count, {}});
            st.setDefault(a_skip);
            out.stages.addStage(std::move(st));
        }
        {
            MatStage st("safety_budget_clear", MatchKind::Ternary,
                        {Field::Decision, Field::Tmp3});
            const int a_clear = st.addAction(clearDecision());
            const int a_keep = st.addAction(noOp("keep"));
            for (const auto &[val, mask] : pisa::rangeToPrefixes(
                     policy.max_flagged_per_window + 1, 0xffffffffull))
                st.addEntry({{1, val},
                             {0xffffffffu, mask},
                             0,
                             1,
                             a_clear,
                             {}});
            st.setDefault(a_keep);
            out.stages.addStage(std::move(st));
        }
    }

    return out;
}

} // namespace taurus::core
