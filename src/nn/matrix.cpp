#include "nn/matrix.hpp"

#include <cmath>

namespace taurus::nn {

Vector
Matrix::matVec(const Vector &x) const
{
    assert(x.size() == cols_);
    Vector y(rows_, 0.0f);
    for (size_t r = 0; r < rows_; ++r) {
        float acc = 0.0f;
        const float *row = data_.data() + r * cols_;
        for (size_t c = 0; c < cols_; ++c)
            acc += row[c] * x[c];
        y[r] = acc;
    }
    return y;
}

Vector
Matrix::matVecTransposed(const Vector &x) const
{
    assert(x.size() == rows_);
    Vector y(cols_, 0.0f);
    for (size_t r = 0; r < rows_; ++r) {
        const float *row = data_.data() + r * cols_;
        const float xr = x[r];
        for (size_t c = 0; c < cols_; ++c)
            y[c] += row[c] * xr;
    }
    return y;
}

void
Matrix::addOuter(const Vector &x, const Vector &y, float scale)
{
    assert(x.size() == rows_ && y.size() == cols_);
    for (size_t r = 0; r < rows_; ++r) {
        float *row = data_.data() + r * cols_;
        const float xr = x[r] * scale;
        for (size_t c = 0; c < cols_; ++c)
            row[c] += xr * y[c];
    }
}

void
Matrix::addScaled(const Matrix &other, float scale)
{
    assert(rows_ == other.rows_ && cols_ == other.cols_);
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += scale * other.data_[i];
}

void
Matrix::scale(float s)
{
    for (float &v : data_)
        v *= s;
}

float
Matrix::absMax() const
{
    float m = 0.0f;
    for (float v : data_)
        m = std::max(m, std::fabs(v));
    return m;
}

Matrix
Matrix::glorot(size_t rows, size_t cols, util::Rng &rng)
{
    Matrix m(rows, cols);
    const double limit = std::sqrt(6.0 / static_cast<double>(rows + cols));
    for (float &v : m.data())
        v = static_cast<float>(rng.uniform(-limit, limit));
    return m;
}

float
dot(const Vector &a, const Vector &b)
{
    assert(a.size() == b.size());
    float acc = 0.0f;
    for (size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

void
axpy(Vector &y, const Vector &x, float a)
{
    assert(y.size() == x.size());
    for (size_t i = 0; i < y.size(); ++i)
        y[i] += a * x[i];
}

float
absMax(const Vector &v)
{
    float m = 0.0f;
    for (float x : v)
        m = std::max(m, std::fabs(x));
    return m;
}

} // namespace taurus::nn
