#include <gtest/gtest.h>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/safety.hpp"
#include "taurus/switch.hpp"

using namespace taurus;

namespace {

const models::AnomalyDnn &
dnn()
{
    static const models::AnomalyDnn model = models::trainAnomalyDnn(3,
                                                                    2500);
    return model;
}

std::vector<net::TracePacket>
trace()
{
    net::KddConfig cfg;
    cfg.connections = 3000;
    net::KddGenerator gen(cfg, 71);
    return gen.expandToPackets(gen.sampleConnections());
}

} // namespace

TEST(Safety, EmptyPolicyIsFree)
{
    core::SafetyPolicy policy;
    EXPECT_TRUE(policy.empty());
    pisa::RegisterFile regs;
    const auto compiled = core::compileSafety(policy, regs);
    EXPECT_EQ(compiled.stages.stageCount(), 0u);
    EXPECT_EQ(regs.arrayCount(), 0u);
}

TEST(Safety, ProtectedPrefixNeverFlagged)
{
    // Guard the whole server block: no matter what the model says,
    // traffic to it must not be flagged.
    core::SwitchConfig cfg;
    core::ProtectedPrefix server_block;
    server_block.prefix = 0x0a001000;
    server_block.length = 24;
    cfg.safety.protected_dsts = {server_block};

    core::TaurusSwitch sw(cfg);
    sw.installAnomalyModel(dnn());

    uint64_t flagged_protected = 0, overrides = 0;
    for (const auto &pkt : trace()) {
        const auto d = sw.process(pkt);
        if ((pkt.flow.dst_ip & 0xffffff00u) == 0x0a001000u &&
            d.flagged)
            ++flagged_protected;
    }
    overrides = sw.stats().safety_overrides;
    EXPECT_EQ(flagged_protected, 0u);
    // The guard actually fired (the model does flag such traffic).
    EXPECT_GT(overrides, 0u);
}

TEST(Safety, ProtectedServiceNeverFlagged)
{
    core::SwitchConfig cfg;
    cfg.safety.protected_services = {53}; // DNS must stay live

    core::TaurusSwitch sw(cfg);
    sw.installAnomalyModel(dnn());

    uint64_t flagged_dns = 0;
    for (const auto &pkt : trace()) {
        const auto d = sw.process(pkt);
        if (pkt.flow.dst_port == 53 && d.flagged)
            ++flagged_dns;
    }
    EXPECT_EQ(flagged_dns, 0u);
}

TEST(Safety, FlagBudgetBoundsDropsPerWindow)
{
    core::SwitchConfig cfg;
    cfg.safety.max_flagged_per_window = 10;
    cfg.safety.window_s = 0.01;

    core::TaurusSwitch sw(cfg);
    sw.installAnomalyModel(dnn());

    // Count flags per 10 ms window; none may exceed the budget.
    uint64_t window_flags = 0;
    double window_start = 0.0;
    uint64_t worst = 0;
    for (const auto &pkt : trace()) {
        if (pkt.time_s - window_start > 0.0101) {
            worst = std::max(worst, window_flags);
            window_flags = 0;
            window_start = pkt.time_s;
        }
        const auto d = sw.process(pkt);
        window_flags += d.flagged;
    }
    worst = std::max(worst, window_flags);
    // Windows are register-aligned rather than scorer-aligned, so allow
    // one window's worth of slack across the boundary.
    EXPECT_LE(worst, 2u * cfg.safety.max_flagged_per_window);
    EXPECT_GT(sw.stats().safety_overrides, 0u);
}

TEST(Safety, GuardsOnlyEverClearDecisions)
{
    // With and without the policy, the flagged set with safety on must
    // be a subset of the flagged set with safety off.
    core::TaurusSwitch plain;
    plain.installAnomalyModel(dnn());

    core::SwitchConfig cfg;
    cfg.safety.protected_services = {22, 53};
    core::ProtectedPrefix p;
    p.prefix = 0x0a001000;
    p.length = 28;
    cfg.safety.protected_dsts = {p};
    core::TaurusSwitch guarded(cfg);
    guarded.installAnomalyModel(dnn());

    for (const auto &pkt : trace()) {
        const bool f_plain = plain.process(pkt).flagged;
        const bool f_guarded = guarded.process(pkt).flagged;
        if (f_guarded) {
            EXPECT_TRUE(f_plain);
        }
    }
}

TEST(Safety, LatencyAccountsForGuardStages)
{
    core::SwitchConfig cfg;
    cfg.safety.protected_services = {53};
    cfg.safety.max_flagged_per_window = 100;
    core::TaurusSwitch guarded(cfg);
    guarded.installAnomalyModel(dnn());

    core::TaurusSwitch plain;
    plain.installAnomalyModel(dnn());

    // 1 protected stage + 4 budget stages at 12.5 ns each.
    EXPECT_NEAR(guarded.mlPathLatencyNs() - plain.mlPathLatencyNs(),
                5 * 12.5, 1e-9);
}
