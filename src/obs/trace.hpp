/**
 * @file
 * PathTracer: sampled per-packet stage tracing, in the style of
 * ndn-dpdk's per-packet token logging — 1-in-N packets carry a trace
 * through every pipeline stage, and the spans land in a bounded
 * per-worker ring the control plane can snapshot.
 *
 * The fast-path contract mirrors the telemetry rings': the unsampled
 * path pays one relaxed fetch_add and a mask compare; a sampled packet
 * (1/N of traffic) additionally takes a tiny mutex to publish its
 * spans into the ring, which overwrites the oldest record when full —
 * tracing never blocks and never grows. Each TaurusSwitch replica owns
 * one tracer, so rings are per-worker by construction.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <vector>

namespace taurus::obs {

/** The per-packet pipeline stages a trace can span (Figure 6 order). */
enum class Stage : uint8_t
{
    Parser = 0,
    Dispatch,   ///< tenant-selection MAT (absent on single-tenant)
    Preprocess, ///< the tenant's stateful feature MATs
    MapReduce,  ///< the grid (absent on the bypass path)
    Verdict,    ///< postprocess + safety MATs
    Forward,    ///< LPM forwarding
    Scheduler,  ///< PIFO
};
constexpr size_t kStageCount = 7;

/** Stable lowercase stage name ("parser", "mapreduce", ...). */
const char *stageName(Stage s);

/** One sampled packet's journey: stage spans in pipeline order. */
struct PacketTrace
{
    static constexpr size_t kMaxSpans = 8;

    struct Span
    {
        Stage stage = Stage::Parser;
        float ns = 0.0f; ///< modeled time spent in the stage
    };

    uint64_t seq = 0;      ///< packet ordinal at the owning tracer
    uint32_t app_id = 0;   ///< tenant the dispatch MAT selected
    double total_ns = 0.0; ///< modeled end-to-end pipeline latency
    uint8_t span_count = 0;
    std::array<Span, kMaxSpans> spans{};

    /** Append one stage span (ignored beyond kMaxSpans). */
    void add(Stage s, double ns)
    {
        if (span_count < kMaxSpans)
            spans[span_count++] = {s, static_cast<float>(ns)};
    }
};

/** Per-worker sampled-trace ring. */
class PathTracer
{
  public:
    /** Disabled tracer: sampleNext() is always false, record() drops. */
    PathTracer() = default;

    /**
     * Sample every `every`-th packet (rounded up to a power of two so
     * the cadence test is one mask; 0 disables) into a ring holding
     * the most recent `ring_capacity` traces.
     */
    PathTracer(size_t every, size_t ring_capacity);

    bool enabled() const { return mask_ != 0 || every_one_; }

    /** The effective (power-of-two) sampling period; 0 when disabled. */
    uint64_t every() const
    {
        return enabled() ? (every_one_ ? 1 : mask_ + 1) : 0;
    }

    /**
     * Fast path: count one packet, return true when this one is the
     * 1-in-N to trace. Call exactly once per packet from the owning
     * worker.
     */
    bool sampleNext()
    {
        if (!enabled())
            return false;
        const uint64_t n =
            seen_.fetch_add(1, std::memory_order_relaxed) + 1;
        return every_one_ || (n & mask_) == 0;
    }

    /** Publish a sampled packet's spans (overwrites the oldest trace
     *  when the ring is full; no-op when disabled). */
    void record(const PacketTrace &t);

    /** Packets the tracer has seen (sampled or not). */
    uint64_t seen() const
    {
        return seen_.load(std::memory_order_relaxed);
    }

    /** Traces recorded over the tracer's lifetime. */
    uint64_t sampled() const
    {
        return sampled_.load(std::memory_order_relaxed);
    }

    /** The retained traces, oldest first. Safe from any thread. */
    std::vector<PacketTrace> snapshot() const;

    size_t capacity() const { return ring_.size(); }

  private:
    bool every_one_ = false; ///< every == 1: trace all packets
    uint64_t mask_ = 0;      ///< every - 1 (power of two), 0 = disabled
    std::atomic<uint64_t> seen_{0};
    std::atomic<uint64_t> sampled_{0};
    /** Guards the ring only; touched 1-in-N packets and on snapshot. */
    mutable std::mutex m_;
    std::vector<PacketTrace> ring_;
    size_t head_ = 0;  ///< next write position
    size_t count_ = 0; ///< valid records (<= capacity)
};

} // namespace taurus::obs
