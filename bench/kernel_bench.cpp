/**
 * @file
 * SIMD kernel layer: parity and speedup.
 *
 * Three paired rounds, each run once with the kernels forced to the
 * scalar reference and once at the host's best level:
 *
 *   dense_matvec       the quantized dense kernel on one layer
 *   graph_inference    per-packet evaluateInto (scalar) vs packet-major
 *                      evaluateBatchInto (SIMD) on a real lowered graph
 *   switch_end_to_end  the full Figure-6 pipeline, batch_window=1 +
 *                      scalar vs batch_window=32 + auto
 *
 * Every round hard-asserts ZERO divergence between the paired runs —
 * the kernels are pure integer math, so a single differing byte is a
 * bug, not noise. In full (non --smoke) mode on an AVX2 host the
 * graph-inference round additionally asserts that the batched SIMD
 * path sustains >= 1.5x the scalar single-packet throughput.
 */

#include "harness.hpp"

#include <cstring>
#include <random>
#include <stdexcept>

#include "dfg/batch_eval.hpp"
#include "dfg/eval.hpp"
#include "kernels/kernels.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/switch.hpp"
#include "util/table.hpp"

namespace {

/** Restore the dispatched kernel level on scope exit. */
struct LevelGuard
{
    taurus::kernels::Level prev = taurus::kernels::activeLevel();
    ~LevelGuard() { taurus::kernels::setActive(prev); }
};

} // namespace

TAURUS_BENCH(kernel_bench, "SIMD kernels",
             "scalar vs SIMD parity and batched-inference speedup")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    const kernels::Level best = kernels::detectBest();
    os << "SIMD kernels: host features = " << kernels::cpuFeatures()
       << ", best level = " << kernels::levelName(best)
       << ", dispatched = " << kernels::levelName(kernels::activeLevel())
       << "\n\n";
    ctx.metric("kernel_best_level", static_cast<int>(best));

    LevelGuard guard;
    TablePrinter t({"Round", "Scalar items/s", "SIMD items/s", "Ratio"});
    size_t divergence = 0;

    // ---- Round 1: the dense matvec kernel on one quantized layer ----
    {
        const size_t out_n = 48, in_n = 64;
        std::mt19937 rng(7);
        std::uniform_int_distribution<int> d8(-128, 127);
        std::vector<int8_t> w(out_n * in_n), x(in_n);
        std::vector<int32_t> b(out_n);
        for (auto &v : w)
            v = static_cast<int8_t>(d8(rng));
        for (auto &v : x)
            v = static_cast<int8_t>(d8(rng));
        for (auto &v : b)
            v = d8(rng) * 1000;

        kernels::DenseView view;
        view.w = w.data();
        view.b = b.data();
        view.rq = fixed::Requantizer::fromRealMultiplier(0.004);
        view.act = kernels::DenseAct::Relu;
        view.out = out_n;
        view.in = in_n;

        std::vector<int8_t> y_scalar(out_n), y_simd(out_n);
        const size_t iters = ctx.size(400000, 500);

        kernels::setActive(kernels::Level::Scalar);
        const bench::Timer ts;
        for (size_t i = 0; i < iters; ++i)
            kernels::active().dense(view, x.data(), y_scalar.data());
        const double scalar_sec = ts.elapsedSec();

        kernels::setActive(best);
        const bench::Timer tv;
        for (size_t i = 0; i < iters; ++i)
            kernels::active().dense(view, x.data(), y_simd.data());
        const double simd_sec = tv.elapsedSec();

        if (std::memcmp(y_scalar.data(), y_simd.data(), out_n) != 0)
            ++divergence;

        const double s_rate = double(iters) / scalar_sec;
        const double v_rate = double(iters) / simd_sec;
        ctx.throughput("dense_scalar", double(iters), scalar_sec);
        ctx.throughput("dense_simd", double(iters), simd_sec);
        t.addRow({"dense_matvec", TablePrinter::num(s_rate, 0),
                  TablePrinter::num(v_rate, 0),
                  TablePrinter::num(v_rate / s_rate, 2)});
    }

    // ---- Round 2: per-packet scalar vs packet-major SIMD on the real
    // lowered anomaly-DNN graph (the tentpole speedup assertion) ----
    double graph_ratio = 0.0;
    {
        const auto dnn = models::trainAnomalyDnn(1, ctx.size(2000, 400));
        const dfg::Graph &g = dnn.graph;
        const size_t in_w = static_cast<size_t>(
            g.node(g.inputIds().front()).width);

        constexpr size_t kBw = 32;
        const size_t bursts = ctx.size(20000, 40);
        std::mt19937 rng(11);
        std::uniform_int_distribution<int> d8(-128, 127);
        std::vector<int8_t> pool(kBw * in_w);
        for (auto &v : pool)
            v = static_cast<int8_t>(d8(rng));

        // Scalar single-packet round.
        kernels::setActive(kernels::Level::Scalar);
        dfg::EvalScratch es;
        std::vector<std::vector<int8_t>> one(
            1, std::vector<int8_t>(in_w));
        std::vector<int32_t> ref(kBw);
        const bench::Timer ts;
        for (size_t it = 0; it < bursts; ++it)
            for (size_t c = 0; c < kBw; ++c) {
                std::memcpy(one[0].data(), pool.data() + c * in_w,
                            in_w);
                const auto &outs = dfg::evaluateInto(g, one, es);
                ref[c] = outs.at(0).lanes.at(0);
            }
        const double scalar_sec = ts.elapsedSec();

        // Batched SIMD round on identical inputs.
        kernels::setActive(best);
        dfg::BatchEvalScratch bs;
        std::vector<const int8_t *> ptrs(kBw);
        for (size_t c = 0; c < kBw; ++c)
            ptrs[c] = pool.data() + c * in_w;
        std::vector<int32_t> got(kBw);
        const bench::Timer tv;
        for (size_t it = 0; it < bursts; ++it) {
            const auto &outs =
                dfg::evaluateBatchInto(g, ptrs.data(), kBw, bs);
            for (size_t c = 0; c < kBw; ++c)
                got[c] = outs.at(0).lanes[c];
        }
        const double simd_sec = tv.elapsedSec();

        for (size_t c = 0; c < kBw; ++c)
            if (got[c] != ref[c])
                ++divergence;

        const double pkts = double(bursts) * double(kBw);
        const double s_rate = pkts / scalar_sec;
        const double v_rate = pkts / simd_sec;
        graph_ratio = v_rate / s_rate;
        ctx.throughput("graph_scalar_pkt", pkts, scalar_sec);
        ctx.throughput("graph_batched_simd", pkts, simd_sec);
        ctx.metric("graph_batched_speedup", graph_ratio);
        t.addRow({"graph_inference", TablePrinter::num(s_rate, 0),
                  TablePrinter::num(v_rate, 0),
                  TablePrinter::num(graph_ratio, 2)});
    }

    // ---- Round 3: the full switch, window=1+scalar vs window=32+auto,
    // decisions compared field by field ----
    {
        const auto dnn = models::trainAnomalyDnn(1, ctx.size(2000, 400));
        net::KddConfig kcfg;
        kcfg.connections = ctx.size(3000, 300);
        net::KddGenerator gen(kcfg, 9);
        const auto trace = gen.expandToPackets(gen.sampleConnections());

        core::SwitchConfig cfg_single;
        cfg_single.batch_window = 1;
        core::TaurusSwitch sw_single(cfg_single);
        sw_single.installAnomalyModel(dnn);

        core::SwitchConfig cfg_batched;
        cfg_batched.batch_window = 32;
        core::TaurusSwitch sw_batched(cfg_batched);
        sw_batched.installAnomalyModel(dnn);

        std::vector<core::SwitchDecision> da(trace.size()),
            db(trace.size());
        const util::Span<const net::TracePacket> pkts(trace.data(),
                                                      trace.size());

        kernels::setActive(kernels::Level::Scalar);
        const bench::Timer ts;
        sw_single.processBatch(
            pkts, util::Span<core::SwitchDecision>(da.data(),
                                                   da.size()));
        const double scalar_sec = ts.elapsedSec();

        kernels::setActive(best);
        const bench::Timer tv;
        sw_batched.processBatch(
            pkts, util::Span<core::SwitchDecision>(db.data(),
                                                   db.size()));
        const double simd_sec = tv.elapsedSec();

        for (size_t i = 0; i < trace.size(); ++i) {
            const auto &a = da[i];
            const auto &b = db[i];
            if (a.flagged != b.flagged || a.dropped != b.dropped ||
                a.bypassed != b.bypassed || a.score != b.score ||
                a.class_id != b.class_id || a.app_id != b.app_id ||
                a.egress_port != b.egress_port ||
                a.latency_ns != b.latency_ns)
                ++divergence;
        }

        const double n = double(trace.size());
        const double s_rate = n / scalar_sec;
        const double v_rate = n / simd_sec;
        ctx.throughput("switch_scalar_single", n, scalar_sec);
        ctx.throughput("switch_batched_simd", n, simd_sec);
        t.addRow({"switch_end_to_end", TablePrinter::num(s_rate, 0),
                  TablePrinter::num(v_rate, 0),
                  TablePrinter::num(v_rate / s_rate, 2)});
    }

    t.print(os);
    ctx.metric("decision_divergence", divergence);
    ctx.metric("kernel_speedup_required",
               best == kernels::Level::Avx2 && !ctx.smoke() ? 1 : 0);

    // Hard gates: bit-identity always; the 1.5x floor only where the
    // hardware and problem sizes make it meaningful.
    if (divergence != 0)
        throw std::runtime_error(
            "kernel_bench: " + std::to_string(divergence) +
            " scalar/SIMD divergences (kernels must be bit-identical)");
    if (best == kernels::Level::Avx2 && !ctx.smoke() &&
        graph_ratio < 1.5)
        throw std::runtime_error(
            "kernel_bench: batched SIMD inference only " +
            std::to_string(graph_ratio) +
            "x scalar single-packet (>= 1.5x required on AVX2)");

    os << "\nAll paired rounds bit-identical; speedups are wall-clock "
          "on this host.\n";
}
