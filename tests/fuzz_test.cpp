#include <gtest/gtest.h>

#include <cmath>

#include "compiler/compile.hpp"
#include "dfg/eval.hpp"
#include "dfg/mapreduce.hpp"
#include "fixed/quant.hpp"
#include "hw/cycle_sim.hpp"
#include "pisa/parser.hpp"
#include "util/rng.hpp"

using namespace taurus;
using dfg::MapFn;

namespace {

/** Generate a random, valid MapReduce program via the builder. */
dfg::Graph
randomGraph(util::Rng &rng)
{
    dfg::mr::Builder b("fuzz");
    const int in_w = static_cast<int>(rng.uniformInt(2, 16));
    dfg::mr::Value cur = b.input(in_w);

    const auto rand_rq = [&rng] {
        return fixed::Requantizer::fromRealMultiplier(
            rng.uniform(0.01, 0.9));
    };

    const int depth = static_cast<int>(rng.uniformInt(1, 4));
    for (int d = 0; d < depth; ++d) {
        switch (rng.uniformInt(0, 3)) {
          case 0: { // map chain
            const int chain = static_cast<int>(
                rng.uniformInt(1, dfg::kStages));
            std::vector<MapFn> fns;
            std::vector<int32_t> imms;
            const MapFn pool[] = {MapFn::Relu,     MapFn::LeakyRelu,
                                  MapFn::Abs,      MapFn::Neg,
                                  MapFn::AddConst, MapFn::MinConst,
                                  MapFn::MaxConst};
            for (int i = 0; i < chain; ++i) {
                fns.push_back(pool[rng.uniformInt(0, 6)]);
                imms.push_back(
                    static_cast<int32_t>(rng.uniformInt(-50, 50)));
            }
            cur = b.mapChain(cur, fns, imms, rand_rq());
            break;
          }
          case 1: { // dense layer
            const int out_w = static_cast<int>(rng.uniformInt(1, 8));
            std::vector<std::vector<int8_t>> w(
                static_cast<size_t>(out_w),
                std::vector<int8_t>(
                    static_cast<size_t>(cur.totalWidth())));
            std::vector<int32_t> biases(static_cast<size_t>(out_w));
            for (auto &row : w)
                for (auto &v : row)
                    v = static_cast<int8_t>(rng.uniformInt(-80, 80));
            for (auto &v : biases)
                v = static_cast<int32_t>(rng.uniformInt(-300, 300));
            cur = b.mapReduce(cur, w, biases, rand_rq());
            break;
          }
          case 2: { // lookup
            std::vector<int8_t> lut(256);
            for (auto &v : lut)
                v = static_cast<int8_t>(rng.uniformInt(-128, 127));
            cur = b.lookup(cur, lut);
            break;
          }
          default: { // elementwise square via mul with itself
            cur = b.mul(cur, cur, rand_rq());
            break;
          }
        }
    }
    b.output(cur);
    return b.build();
}

} // namespace

TEST(Fuzz, RandomProgramsSimulateBitExact)
{
    // The central property: for any valid program and any input, the
    // placed-and-routed cycle simulation produces exactly the reference
    // evaluator's values, under every compiler configuration.
    util::Rng rng(2024);
    for (int trial = 0; trial < 60; ++trial) {
        const dfg::Graph g = randomGraph(rng);
        ASSERT_EQ(g.validate(), "");

        compiler::Options opts;
        opts.enable_packing = rng.bernoulli(0.5);
        const auto prog = compiler::compile(g, opts);
        ASSERT_EQ(prog.validate(), "");
        hw::CycleSim sim(prog);

        for (int rep = 0; rep < 5; ++rep) {
            std::vector<std::vector<int8_t>> inputs;
            for (int id : g.inputIds()) {
                std::vector<int8_t> v(
                    static_cast<size_t>(g.node(id).width));
                for (auto &x : v)
                    x = static_cast<int8_t>(rng.uniformInt(-128, 127));
                inputs.push_back(std::move(v));
            }
            const auto want = dfg::evaluate(g, inputs);
            const auto res = sim.run(inputs);
            ASSERT_EQ(res.outputs.size(), want.size());
            for (size_t i = 0; i < want.size(); ++i)
                EXPECT_EQ(res.outputs[i].lanes, want[i].lanes);
            EXPECT_GT(res.latency_cycles, 0);
            EXPECT_GE(res.ii_cycles, 1);
        }
    }
}

TEST(Fuzz, ParserNeverCrashesOnGarbage)
{
    // Malformed input must either parse (short-circuit accept) or throw
    // a std::exception — never UB or a crash.
    util::Rng rng(4096);
    const auto parser = pisa::Parser::standard();
    for (int trial = 0; trial < 2000; ++trial) {
        pisa::Packet p;
        p.bytes.resize(static_cast<size_t>(rng.uniformInt(0, 128)));
        for (auto &b : p.bytes)
            b = static_cast<uint8_t>(rng.uniformInt(0, 255));
        try {
            const pisa::Phv phv = parser.parse(p);
            (void)phv;
        } catch (const std::exception &) {
            // acceptable: truncated headers
        }
    }
}

TEST(Fuzz, ParserOnTruncationsOfValidPacket)
{
    const auto parser = pisa::Parser::standard();
    net::FlowKey flow{0x0a000101, 0x0a001002, 40000, 443,
                      net::kProtoTcp};
    const pisa::Packet full = pisa::makePacket(flow, 100, 0x12, 0.0);
    for (size_t len = 0; len <= full.bytes.size(); ++len) {
        pisa::Packet p = full;
        p.bytes.resize(len);
        try {
            parser.parse(p);
        } catch (const std::exception &) {
        }
    }
}

TEST(Fuzz, RequantizerMatchesRealArithmeticWithinOneLsb)
{
    util::Rng rng(7777);
    for (int trial = 0; trial < 5000; ++trial) {
        const double m = rng.uniform(1e-5, 1.0);
        const auto rq = fixed::Requantizer::fromRealMultiplier(m);
        const int32_t x =
            static_cast<int32_t>(rng.uniformInt(-200000, 200000));
        const double real = m * x;
        const int32_t want = static_cast<int32_t>(std::clamp(
            std::llround(real), -128ll, 127ll));
        EXPECT_NEAR(rq.apply(x), want, 1)
            << "m=" << m << " x=" << x;
    }
}

TEST(Fuzz, QuantizeDequantizeRoundTrip)
{
    util::Rng rng(31337);
    for (int trial = 0; trial < 2000; ++trial) {
        const double abs_max = rng.uniform(0.1, 100.0);
        const auto qp = fixed::QuantParams::forAbsMax(abs_max);
        const double v = rng.uniform(-abs_max, abs_max);
        const int32_t q = fixed::quantize(v, qp);
        EXPECT_GE(q, -127);
        EXPECT_LE(q, 127);
        EXPECT_NEAR(fixed::dequantize(q, qp), v, qp.scale * 0.5 + 1e-12);
    }
}
