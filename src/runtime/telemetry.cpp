#include "runtime/telemetry.hpp"

namespace taurus::runtime {

TelemetrySample
makeSample(const core::SwitchDecision &d, int32_t label)
{
    TelemetrySample s;
    s.features = d.features;
    s.feature_count = d.feature_count;
    s.score = d.score;
    s.flagged = d.flagged;
    s.predicted = d.class_id;
    s.label = label;
    s.truth = label != 0;
    s.app_id = d.app_id;
    return s;
}

TelemetryRing::TelemetryRing(size_t capacity)
    : slots_(util::nextPow2(capacity < 2 ? 2 : capacity)),
      mask_(slots_.size() - 1)
{
}

bool
TelemetryRing::tryPush(const TelemetrySample &s)
{
    const uint64_t t = tail_.load(std::memory_order_relaxed);
    const uint64_t h = head_.load(std::memory_order_acquire);
    if (t - h >= slots_.size()) {
        dropped_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    slots_[t & mask_] = s;
    tail_.store(t + 1, std::memory_order_release);
    return true;
}

bool
TelemetryRing::tryPop(TelemetrySample &out)
{
    const uint64_t h = head_.load(std::memory_order_relaxed);
    const uint64_t t = tail_.load(std::memory_order_acquire);
    if (h == t)
        return false;
    out = slots_[h & mask_];
    head_.store(h + 1, std::memory_order_release);
    return true;
}

} // namespace taurus::runtime
