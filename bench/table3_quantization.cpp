/**
 * @file
 * Table 3: float32 vs fix8 accuracy for the TMC-style IoT traffic
 * classifiers — the quantization-loss justification for the 8-bit data
 * path (paper: diffs of -0.05 / -0.07 / -0.02 points).
 */

#include <iostream>

#include "models/zoo.hpp"
#include "util/table.hpp"

int
main()
{
    using taurus::util::TablePrinter;

    std::cout << "Table 3: accuracy of DNNs for IoT traffic classifiers "
                 "(float32 vs fix8)\n"
                 "Paper: 67.06/67.01, 67.02/66.95, 67.04/67.02 "
                 "(diff <= 0.07)\n\n";

    TablePrinter t({"DNN Kernel", "float32 (%)", "fix8 (%)", "Diff"});
    for (const auto &kernel : taurus::models::table3Kernels()) {
        const auto row = taurus::models::trainIotDnn(kernel, 1, 12000);
        t.addRow({row.kernel, TablePrinter::num(row.float_accuracy),
                  TablePrinter::num(row.fix8_accuracy),
                  TablePrinter::num(row.diff())});
    }
    t.print(std::cout);
    std::cout << "\n8-bit quantization costs well under a point of "
                 "accuracy at a 4x resource saving (Table 4).\n";
    return 0;
}
