/**
 * @file
 * Minimal JSON value + serializer for machine-readable reports
 * (BENCH_results.json). Insertion-ordered objects, round-trip double
 * formatting, no parsing — this is a writer, not a full JSON library.
 */

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace taurus::util::json {

/** A JSON value: null, bool, number, string, array, or object. */
class Value
{
  public:
    enum class Kind { Null, Bool, Int, Double, String, Array, Object };

    Value() : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int64_t i) : kind_(Kind::Int), int_(i) {}
    Value(int i) : kind_(Kind::Int), int_(i) {}
    Value(uint64_t u) : kind_(Kind::Int), int_(static_cast<int64_t>(u)) {}
    Value(double d) : kind_(Kind::Double), double_(d) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}

    static Value array() { return Value(Kind::Array); }
    static Value object() { return Value(Kind::Object); }

    Kind kind() const { return kind_; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    /** Numeric value as double (0.0 for non-numbers). */
    double asDouble() const
    {
        return kind_ == Kind::Int ? static_cast<double>(int_)
               : kind_ == Kind::Double ? double_
                                       : 0.0;
    }

    /** Object entries in insertion order (empty for non-objects). */
    const std::vector<std::pair<std::string, Value>> &entries() const
    {
        return object_;
    }

    /** Array append. Converts a Null value into an array first. */
    void push(Value v);

    /**
     * Object insert-or-overwrite, preserving first-insertion order.
     * Converts a Null value into an object first.
     */
    void set(const std::string &key, Value v);

    /** Object lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    size_t size() const;

    /** Serialize; indent > 0 pretty-prints, indent == 0 is compact. */
    std::string dump(int indent = 2) const;

    /** JSON string escaping (quotes not included). */
    static std::string escape(const std::string &s);

  private:
    explicit Value(Kind k) : kind_(k) {}

    void write(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<Value> array_;
    std::vector<std::pair<std::string, Value>> object_;
};

} // namespace taurus::util::json
