/**
 * @file
 * Ablation: neuron lane-packing (the stage-3 sparse reduction of
 * Figure 8). Packing lets multiple narrow dot products share one CU's
 * lanes; without it, every neuron takes its own CU.
 */

#include <iostream>

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "Ablation: dot-product lane packing (sparse stage-3 "
                 "reductions)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, 3000);
    const auto svm = models::trainAnomalySvm(1, 3000);
    const auto km = models::trainIotKmeans(1, 3000);
    const auto lstm = models::buildIndigoLstm(1);

    struct App
    {
        std::string name;
        const dfg::Graph *graph;
    };
    const App apps[] = {{"KMeans", &km.lowered.graph},
                        {"SVM", &svm.lowered.graph},
                        {"DNN", &dnn.graph},
                        {"LSTM", &lstm.graph}};

    TablePrinter t({"App", "CUs packed", "CUs unpacked", "Area packed",
                    "Area unpacked", "Saving %"});
    for (const auto &app : apps) {
        compiler::Options on, off;
        off.enable_packing = false;
        const auto rep_on =
            compiler::analyze(compiler::compile(*app.graph, on));
        const auto rep_off =
            compiler::analyze(compiler::compile(*app.graph, off));
        t.addRow({app.name, TablePrinter::num(int64_t{rep_on.cus}),
                  TablePrinter::num(int64_t{rep_off.cus}),
                  TablePrinter::num(rep_on.area_mm2, 2),
                  TablePrinter::num(rep_off.area_mm2, 2),
                  TablePrinter::num((1.0 - rep_on.area_mm2 /
                                               rep_off.area_mm2) *
                                        100.0,
                                    0)});
    }
    t.print(std::cout);

    std::cout << "\nPacking matters most for layers of narrow neurons "
                 "(the DNN's 6-input rows); wide dot products already "
                 "fill their CU.\n";
    return 0;
}
