/**
 * Bit-exactness regression tests for the allocation-free per-packet
 * fast path: scratch-buffer evaluation, cached cycle-sim schedules, the
 * batched switch entry point, and the sharded SwitchFarm must all
 * produce results identical to the reference paths.
 */

#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "dfg/eval.hpp"
#include "hw/cycle_sim.hpp"
#include "models/microbench.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/app.hpp"
#include "taurus/farm.hpp"
#include "taurus/switch.hpp"
#include "util/rng.hpp"

using namespace taurus;

namespace {

/** Shared trained model + deterministic evaluation trace. */
struct Fixture
{
    models::AnomalyDnn dnn = models::trainAnomalyDnn(5, 2000);
    std::vector<net::TracePacket> trace;

    Fixture()
    {
        net::KddConfig cfg;
        cfg.connections = 2500;
        net::KddGenerator gen(cfg, 42);
        trace = gen.expandToPackets(gen.sampleConnections());
    }
};

const Fixture &
fixture()
{
    static const Fixture fx;
    return fx;
}

void
expectSameDecision(const core::SwitchDecision &a,
                   const core::SwitchDecision &b, size_t i)
{
    EXPECT_EQ(a.flagged, b.flagged) << "packet " << i;
    EXPECT_EQ(a.dropped, b.dropped) << "packet " << i;
    EXPECT_EQ(a.bypassed, b.bypassed) << "packet " << i;
    EXPECT_EQ(a.score, b.score) << "packet " << i;
    EXPECT_EQ(a.app_id, b.app_id) << "packet " << i;
    EXPECT_EQ(a.egress_port, b.egress_port) << "packet " << i;
    EXPECT_DOUBLE_EQ(a.latency_ns, b.latency_ns) << "packet " << i;
    EXPECT_EQ(a.feature_count, b.feature_count) << "packet " << i;
    EXPECT_EQ(a.features, b.features) << "packet " << i;
}

void
expectSameStats(const core::SwitchStats &a, const core::SwitchStats &b)
{
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.ml_packets, b.ml_packets);
    EXPECT_EQ(a.flagged, b.flagged);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.safety_overrides, b.safety_overrides);
    EXPECT_EQ(a.ml_latency_ns.count(), b.ml_latency_ns.count());
    EXPECT_DOUBLE_EQ(a.ml_latency_ns.mean(), b.ml_latency_ns.mean());
    EXPECT_DOUBLE_EQ(a.ml_latency_ns.max(), b.ml_latency_ns.max());
    EXPECT_EQ(a.bypass_latency_ns.count(), b.bypass_latency_ns.count());
    EXPECT_DOUBLE_EQ(a.bypass_latency_ns.mean(),
                     b.bypass_latency_ns.mean());
}

/** Every zoo graph with its compiled program, for schedule checks. */
std::vector<std::pair<std::string, hw::GridProgram>>
zooPrograms()
{
    std::vector<std::pair<std::string, hw::GridProgram>> progs;
    progs.emplace_back("anomaly_dnn",
                       compiler::compile(fixture().dnn.graph));
    const auto svm = models::trainAnomalySvm(2, 800);
    progs.emplace_back("anomaly_svm",
                       compiler::compile(svm.lowered.graph));
    const auto kmeans = models::trainIotKmeans(2, 800);
    progs.emplace_back("iot_kmeans",
                       compiler::compile(kmeans.lowered.graph));
    const auto lstm = models::buildIndigoLstm(2);
    progs.emplace_back("indigo_lstm", compiler::compile(lstm.graph));
    return progs;
}

std::vector<std::vector<int8_t>>
randomInputs(const dfg::Graph &g, util::Rng &rng)
{
    std::vector<std::vector<int8_t>> inputs;
    for (int id : g.inputIds()) {
        std::vector<int8_t> v(static_cast<size_t>(g.node(id).width));
        for (auto &x : v)
            x = static_cast<int8_t>(rng.uniformInt(-128, 127));
        inputs.push_back(std::move(v));
    }
    return inputs;
}

} // namespace

TEST(EvaluateInto, BitExactWithEvaluateOnMicrobenches)
{
    util::Rng rng(7);
    for (const std::string &name : models::microbenchNames()) {
        const auto g = models::buildMicrobench(name, rng);
        dfg::EvalScratch scratch;
        // Reuse one scratch across several distinct inputs: buffer
        // reuse must never leak state between packets.
        for (int trial = 0; trial < 10; ++trial) {
            const auto inputs = randomInputs(g, rng);
            const auto want = dfg::evaluate(g, inputs);
            const auto &got = dfg::evaluateInto(g, inputs, scratch);
            ASSERT_EQ(want.size(), got.size()) << name;
            for (size_t i = 0; i < want.size(); ++i) {
                EXPECT_EQ(want[i].lanes, got[i].lanes) << name;
                EXPECT_EQ(static_cast<int>(want[i].type),
                          static_cast<int>(got[i].type))
                    << name;
            }
        }
    }
}

TEST(ForwardInt, ScratchMatchesAllocatingPath)
{
    const auto &qm = fixture().dnn.quantized;
    util::Rng rng(11);
    nn::ForwardScratch scratch;
    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int8_t> in(qm.layers().front().in);
        for (auto &v : in)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        EXPECT_EQ(qm.forwardInt(in), qm.forwardInt(in, scratch));
    }
}

TEST(Schedule, CachedScheduleMatchesFromScratchForEveryZooModel)
{
    util::Rng rng(13);
    for (const auto &[name, prog] : zooPrograms()) {
        hw::CycleSim sim(prog);
        const hw::Schedule &cached = sim.schedule();
        const hw::Schedule fresh = hw::CycleSim::compileSchedule(prog);

        EXPECT_EQ(cached.latency_cycles, fresh.latency_cycles) << name;
        EXPECT_DOUBLE_EQ(cached.latency_ns, fresh.latency_ns) << name;
        EXPECT_EQ(cached.ii_cycles, fresh.ii_cycles) << name;
        EXPECT_DOUBLE_EQ(cached.gpktps, fresh.gpktps) << name;
        EXPECT_EQ(cached.route_hops, fresh.route_hops) << name;
        EXPECT_EQ(cached.start, fresh.start) << name;
        EXPECT_EQ(cached.finish, fresh.finish) << name;

        // run() must report exactly the cached timing, and runInto()
        // must be bit-exact with run() on the functional side.
        const auto inputs = randomInputs(prog.graph, rng);
        const auto res = sim.run(inputs);
        EXPECT_EQ(res.latency_cycles, cached.latency_cycles) << name;
        EXPECT_DOUBLE_EQ(res.latency_ns, cached.latency_ns) << name;
        EXPECT_EQ(res.ii_cycles, cached.ii_cycles) << name;
        EXPECT_DOUBLE_EQ(res.gpktps, cached.gpktps) << name;
        EXPECT_EQ(res.route_hops, cached.route_hops) << name;

        dfg::EvalScratch scratch;
        hw::SimResult fast;
        sim.runInto(inputs, scratch, fast);
        ASSERT_EQ(res.outputs.size(), fast.outputs.size()) << name;
        for (size_t i = 0; i < res.outputs.size(); ++i)
            EXPECT_EQ(res.outputs[i].lanes, fast.outputs[i].lanes)
                << name;
        EXPECT_EQ(fast.latency_cycles, cached.latency_cycles) << name;
    }
}

TEST(Schedule, SurvivesWeightUpdates)
{
    // Weight-only updates must not invalidate the cached schedule:
    // timing depends on structure and placement alone.
    const auto &fx = fixture();
    auto prog = compiler::compile(fx.dnn.graph);
    hw::CycleSim sim(prog);
    const hw::Schedule before = sim.schedule();

    const auto fresh_model = models::trainAnomalyDnn(17, 2000);
    prog.updateWeights(fresh_model.graph);

    const hw::Schedule after = hw::CycleSim::compileSchedule(prog);
    EXPECT_EQ(before.latency_cycles, after.latency_cycles);
    EXPECT_EQ(before.ii_cycles, after.ii_cycles);
    EXPECT_EQ(before.route_hops, after.route_hops);
    EXPECT_EQ(before.finish, after.finish);

    // And the new weights actually flow through the cached-schedule run.
    util::Rng rng(19);
    const auto inputs = randomInputs(prog.graph, rng);
    EXPECT_EQ(sim.run(inputs).outputs.at(0).lanes,
              dfg::evaluate(fresh_model.graph, inputs).at(0).lanes);
}

TEST(FastPath, ProcessBatchBitIdenticalToProcess)
{
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.trace.size(), 8000);

    core::TaurusSwitch scalar;
    scalar.installAnomalyModel(fx.dnn);
    std::vector<core::SwitchDecision> want;
    want.reserve(n);
    for (size_t i = 0; i < n; ++i)
        want.push_back(scalar.process(fx.trace[i]));

    core::TaurusSwitch batched;
    batched.installAnomalyModel(fx.dnn);
    std::vector<core::SwitchDecision> got(n);
    batched.processBatch(
        util::Span<const net::TracePacket>(fx.trace.data(), n),
        util::Span<core::SwitchDecision>(got.data(), n));

    for (size_t i = 0; i < n; ++i)
        expectSameDecision(want[i], got[i], i);
    expectSameStats(scalar.stats(), batched.stats());
}

TEST(FastPath, SingleWorkerFarmBitIdenticalToScalar)
{
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.trace.size(), 8000);
    const std::vector<net::TracePacket> slice(fx.trace.begin(),
                                              fx.trace.begin() + n);

    core::TaurusSwitch scalar;
    scalar.installAnomalyModel(fx.dnn);
    std::vector<core::SwitchDecision> want;
    want.reserve(n);
    for (const auto &tp : slice)
        want.push_back(scalar.process(tp));

    core::SwitchFarm farm({}, 1);
    farm.installAnomalyModel(fx.dnn);
    const auto got = farm.processTrace(slice);

    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < n; ++i)
        expectSameDecision(want[i], got[i], i);
    expectSameStats(scalar.stats(), farm.mergedStats());
}

TEST(FastPath, FarmBitIdenticalToPerPartitionScalar)
{
    // The farm's contract: processing is bit-identical to draining each
    // flow-hash partition through its own standalone switch.
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.trace.size(), 8000);
    const std::vector<net::TracePacket> slice(fx.trace.begin(),
                                              fx.trace.begin() + n);
    const size_t workers = 3;

    core::SwitchFarm farm({}, workers);
    farm.installAnomalyModel(fx.dnn);
    const auto got = farm.processTrace(slice);
    ASSERT_EQ(got.size(), slice.size());

    core::SwitchStats want_stats;
    std::vector<core::SwitchDecision> want(slice.size());
    for (size_t w = 0; w < workers; ++w) {
        core::TaurusSwitch sw;
        sw.installAnomalyModel(fx.dnn);
        for (size_t i = 0; i < slice.size(); ++i)
            if (farm.workerFor(slice[i]) == w)
                want[i] = sw.process(slice[i]);
        want_stats.merge(sw.stats());
    }

    for (size_t i = 0; i < slice.size(); ++i)
        expectSameDecision(want[i], got[i], i);
    expectSameStats(want_stats, farm.mergedStats());

    // The merge covered every packet exactly once.
    EXPECT_EQ(farm.mergedStats().packets, slice.size());
}

TEST(FastPath, FarmWeightUpdateMatchesScalarAtSameIndex)
{
    // SwitchFarm::updateWeights at a batch boundary must leave the farm
    // bit-identical to a scalar switch that received the same update at
    // the same packet index.
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.trace.size(), 6000);
    const size_t half = n / 2;
    const auto fresh = models::trainAnomalyDnn(21, 1500);

    core::TaurusSwitch scalar;
    scalar.installAnomalyModel(fx.dnn);
    std::vector<core::SwitchDecision> want;
    want.reserve(n);
    for (size_t i = 0; i < half; ++i)
        want.push_back(scalar.process(fx.trace[i]));
    scalar.updateWeights(fresh.graph);
    for (size_t i = half; i < n; ++i)
        want.push_back(scalar.process(fx.trace[i]));

    core::SwitchFarm farm({}, 1);
    farm.installAnomalyModel(fx.dnn);
    std::vector<core::SwitchDecision> got(n);
    farm.processTrace(
        util::Span<const net::TracePacket>(fx.trace.data(), half),
        util::Span<core::SwitchDecision>(got.data(), half));
    farm.updateWeights(fresh.graph);
    farm.processTrace(
        util::Span<const net::TracePacket>(fx.trace.data() + half,
                                           n - half),
        util::Span<core::SwitchDecision>(got.data() + half, n - half));

    for (size_t i = 0; i < n; ++i)
        expectSameDecision(want[i], got[i], i);
    expectSameStats(scalar.stats(), farm.mergedStats());

    // The update must actually have changed some decisions (otherwise
    // this test proves nothing about the update path).
    core::TaurusSwitch stale;
    stale.installAnomalyModel(fx.dnn);
    size_t differing = 0;
    for (size_t i = 0; i < n; ++i) {
        const auto d = stale.process(fx.trace[i]);
        differing += d.flagged != want[i].flagged ||
                     d.score != want[i].score;
    }
    EXPECT_GT(differing, 0u);
}

TEST(FastPath, FarmPartitioningKeepsFlowsTogether)
{
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 4);
    // Same source address => same worker, regardless of ports/protocol.
    net::TracePacket a, b;
    a.flow = {0x0a000001, 0x0a000002, 1234, 80, net::kProtoTcp};
    b.flow = {0x0a000001, 0x0b0000ff, 999, 53, net::kProtoUdp};
    EXPECT_EQ(farm.workerFor(a), farm.workerFor(b));
    (void)fx;
}

TEST(FastPath, FullSchedulerDropsWithoutLosingScratchBuffers)
{
    // A zero-capacity PIFO makes every enqueue a guaranteed drop; the
    // fast path must keep processing (and keep its reusable buffers)
    // rather than sacrificing them to the full queue.
    const auto &fx = fixture();
    core::SwitchConfig cfg;
    cfg.queue_capacity = 0;
    core::TaurusSwitch sw(cfg);
    sw.installAnomalyModel(fx.dnn);

    const size_t n = 500;
    for (size_t i = 0; i < n; ++i)
        EXPECT_TRUE(sw.process(fx.trace[i]).dropped) << i;
    EXPECT_EQ(sw.stats().packets, n);
    EXPECT_EQ(sw.stats().dropped, n);
}

TEST(FastPath, SingleTenantMultiTenantPathMatchesLegacyBitExactly)
{
    // Single-tenant parity (ISSUE 5 acceptance criterion): installing
    // exactly one app through the multi-tenant path — one tenant, no
    // dispatch stage — must be decision- and stats-bit-identical to the
    // pre-multi-tenant pipeline, whose behavior the legacy
    // installAnomalyModel() wrapper preserves.
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.trace.size(), 8000);

    core::TaurusSwitch legacy;
    legacy.installAnomalyModel(fx.dnn);
    core::TaurusSwitch tenant;
    const core::AppId id = tenant.installApp(
        core::makeAnomalyDnnApp(fx.dnn));
    EXPECT_EQ(id, 0u);
    EXPECT_EQ(tenant.appCount(), 1u);

    for (size_t i = 0; i < n; ++i) {
        const auto want = legacy.process(fx.trace[i]);
        const auto got = tenant.process(fx.trace[i]);
        expectSameDecision(want, got, i);
        EXPECT_EQ(got.app_id, 0u) << i;
    }
    expectSameStats(legacy.stats(), tenant.stats());
    // With one tenant, the per-app view IS the aggregate view.
    expectSameStats(tenant.stats(), tenant.stats(0));
    // And no dispatch stage is billed: path latencies are unchanged.
    EXPECT_DOUBLE_EQ(legacy.bypassPathLatencyNs(),
                     tenant.bypassPathLatencyNs());
    EXPECT_DOUBLE_EQ(legacy.mlPathLatencyNs(), tenant.mlPathLatencyNs());
}

TEST(FastPath, AnomalyWrapperSharesOneBuilderAcrossSwitchAndFarm)
{
    // The installAnomalyModel() thin wrappers on TaurusSwitch and
    // SwitchFarm both delegate to the one shared artifact builder
    // (makeAnomalyDnnApp) + installApp, so this single parity check
    // covers every anomaly install entry point.
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.trace.size(), 4000);
    const std::vector<net::TracePacket> slice(fx.trace.begin(),
                                              fx.trace.begin() + n);

    core::TaurusSwitch via_switch;
    EXPECT_EQ(via_switch.installAnomalyModel(fx.dnn), 0u);
    core::SwitchFarm via_farm({}, 1);
    EXPECT_EQ(via_farm.installAnomalyModel(fx.dnn), 0u);
    core::SwitchFarm via_artifact({}, 1);
    via_artifact.installApp(core::makeAnomalyDnnApp(fx.dnn));

    std::vector<core::SwitchDecision> want;
    for (const auto &tp : slice)
        want.push_back(via_switch.process(tp));
    const auto got_farm = via_farm.processTrace(slice);
    const auto got_artifact = via_artifact.processTrace(slice);
    for (size_t i = 0; i < n; ++i) {
        expectSameDecision(want[i], got_farm[i], i);
        expectSameDecision(want[i], got_artifact[i], i);
    }
    expectSameStats(via_switch.stats(), via_farm.mergedStats());
    expectSameStats(via_switch.stats(), via_artifact.mergedStats());
}

TEST(FastPath, RunningStatMergeMatchesSequential)
{
    util::Rng rng(23);
    util::RunningStat all, left, right;
    for (int i = 0; i < 1000; ++i) {
        const double x = rng.gaussian(3.0, 2.0);
        all.add(x);
        (i < 400 ? left : right).add(x);
    }
    util::RunningStat merged = left;
    merged.merge(right);
    EXPECT_EQ(merged.count(), all.count());
    EXPECT_NEAR(merged.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(merged.variance(), all.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(merged.min(), all.min());
    EXPECT_DOUBLE_EQ(merged.max(), all.max());
    EXPECT_NEAR(merged.sum(), all.sum(), 1e-9);
}
