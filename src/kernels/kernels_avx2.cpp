/**
 * @file
 * AVX2 kernels (compiled with -mavx2 on x86 only; a stub elsewhere).
 *
 * Exactness strategy, per kernel:
 *  - int8 x int8 products fit int16 (|p| <= 16384), so the dense batch
 *    uses mullo_epi16 after sign-extension and accumulates in int32 —
 *    exact while n * 16384 < 2^31, i.e. n < 2^17 (guarded at 2^16).
 *  - int8 x int32-lane products use mullo_epi32, whose wrap-around is
 *    exactly the scalar reference's wrapped int32 product.
 *  - Requantization (x * Q31-mantissa >> shift, round half away from
 *    zero) runs on |x| in unsigned 64-bit lanes, then restores sign —
 *    valid when the shift is in [31, 62] (multiplier <= 1, the normal
 *    case); anything else falls back to the scalar Requantizer per call.
 *  - Saturating bias addition detects int32 overflow via sign algebra
 *    ((a^s)&(b^s) < 0) and substitutes the bias-signed extreme.
 * Every kernel keeps a scalar tail for widths not divisible by the
 * vector width, and whole-call scalar fallbacks for shapes outside the
 * exactness envelope above. Bit-identity with the scalar table is
 * enforced by tests/kernels_test.cpp and bench/kernel_bench.
 */

#include "kernels/kernels_impl.hpp"

#if defined(TAURUS_KERNELS_AVX2)

#include <immintrin.h>

#include <limits>

#include "fixed/saturate.hpp"

namespace taurus::kernels::detail {

namespace {

using fixed::saturate;

// ------------------------------------------------------------------
// Shared helpers
// ------------------------------------------------------------------

/** True when the requantizer's parameters fit the SIMD fast path. */
bool
fastRequant(const fixed::Requantizer &rq)
{
    const int shift = 31 + rq.exponent();
    return rq.mantissa() > 0 && shift >= 31 && shift <= 62;
}

/** Clamp 8 int32 lanes to the int8 range. */
inline __m256i
clamp8v(__m256i v)
{
    return _mm256_max_epi32(_mm256_min_epi32(v, _mm256_set1_epi32(127)),
                            _mm256_set1_epi32(-128));
}

/**
 * Requantize 8 int32 lanes: round-half-away-from-zero
 * (v * mantissa) >> shift, saturated to int8. Caller guarantees
 * fastRequant() held (mantissa > 0, 31 <= shift <= 62).
 */
inline __m256i
requant8(__m256i v, int32_t mantissa, int shift)
{
    const __m256i vm =
        _mm256_set1_epi64x(static_cast<int64_t>(
            static_cast<uint32_t>(mantissa)));
    const __m256i sign = _mm256_srai_epi32(v, 31);
    // |v| as unsigned 32-bit (INT32_MIN maps to 2^31, still exact).
    const __m256i mag =
        _mm256_sub_epi32(_mm256_xor_si256(v, sign), sign);
    const __m256i off = _mm256_set1_epi64x(int64_t{1} << (shift - 1));
    __m256i ev = _mm256_mul_epu32(mag, vm);
    __m256i od = _mm256_mul_epu32(_mm256_srli_epi64(mag, 32), vm);
    ev = _mm256_srli_epi64(_mm256_add_epi64(ev, off), shift);
    od = _mm256_srli_epi64(_mm256_add_epi64(od, off), shift);
    __m256i res =
        _mm256_blend_epi32(ev, _mm256_slli_epi64(od, 32), 0xAA);
    res = _mm256_sub_epi32(_mm256_xor_si256(res, sign), sign);
    return clamp8v(res);
}

/** Saturating (a + bias) on 8 int32 lanes; bias sign known scalar. */
inline __m256i
satAddBias(__m256i a, int32_t bias)
{
    if (bias == 0)
        return a;
    const __m256i vb = _mm256_set1_epi32(bias);
    const __m256i sat = _mm256_set1_epi32(
        bias > 0 ? std::numeric_limits<int32_t>::max()
                 : std::numeric_limits<int32_t>::min());
    const __m256i s = _mm256_add_epi32(a, vb);
    const __m256i ovf = _mm256_and_si256(_mm256_xor_si256(a, s),
                                         _mm256_xor_si256(vb, s));
    return _mm256_blendv_epi8(s, sat, _mm256_srai_epi32(ovf, 31));
}

/** LeakyRelu on 8 int32 lanes: x >= 0 ? x : x/8 (truncating). */
inline __m256i
leaky8(__m256i v)
{
    const __m256i sign = _mm256_srai_epi32(v, 31);
    const __m256i neg = _mm256_srai_epi32(
        _mm256_add_epi32(v, _mm256_set1_epi32(7)), 3);
    return _mm256_blendv_epi8(v, neg, sign);
}

int32_t
hsum32(__m256i v)
{
    __m128i s = _mm_add_epi32(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 8));
    s = _mm_add_epi32(s, _mm_srli_si128(s, 4));
    return _mm_cvtsi128_si32(s);
}

int64_t
hsum64(__m256i v)
{
    __m128i s = _mm_add_epi64(_mm256_castsi256_si128(v),
                              _mm256_extracti128_si256(v, 1));
    s = _mm_add_epi64(s, _mm_srli_si128(s, 8));
    return _mm_cvtsi128_si64(s);
}

/** Scalar epilogue of one dense row: bias+sum -> requant -> act. */
inline int8_t
denseFinish(const DenseView &L, size_t r, int64_t acc)
{
    const int8_t pre = L.rq.apply(saturate<int32_t>(acc));
    switch (L.act) {
      case DenseAct::Relu:
        return pre > 0 ? pre : static_cast<int8_t>(0);
      case DenseAct::LeakyRelu:
        return pre >= 0 ? pre : static_cast<int8_t>(pre / 8);
      case DenseAct::Lut:
        return L.lut[static_cast<size_t>(static_cast<int>(pre) + 128)];
      case DenseAct::None:
        break;
    }
    (void)r;
    return pre;
}

/** Scalar dense over columns [p0, p1) of an SoA block (tail path). */
void
denseCols(const DenseView &L, const int8_t *x, int8_t *y, size_t bw,
          size_t p0, size_t p1)
{
    for (size_t r = 0; r < L.out; ++r) {
        const int8_t *row = L.w + r * L.in;
        for (size_t p = p0; p < p1; ++p) {
            int64_t acc = L.b[r];
            for (size_t c = 0; c < L.in; ++c)
                acc += static_cast<int32_t>(row[c]) *
                       static_cast<int32_t>(x[c * bw + p]);
            y[r * bw + p] = denseFinish(L, r, acc);
        }
    }
}

/** Scalar dot_row_batch over columns [p0, p1) (tail path). */
void
dotRowCols(const int8_t *w, size_t n, int32_t bias,
           const fixed::Requantizer &rq, bool requant, const int32_t *x,
           int32_t *out, size_t bw, size_t p0, size_t p1)
{
    for (size_t p = p0; p < p1; ++p) {
        int64_t acc = bias;
        for (size_t i = 0; i < n; ++i)
            acc += wrapMul(static_cast<int32_t>(w[i]), x[i * bw + p]);
        const int32_t sat = saturate<int32_t>(acc);
        out[p] = requant ? requant1(sat, rq) : sat;
    }
}

// ------------------------------------------------------------------
// Kernels
// ------------------------------------------------------------------

void
denseAvx2(const DenseView &L, const int8_t *x, int8_t *y)
{
    if (L.in >= (size_t{1} << 16)) {
        scalarOps().dense(L, x, y);
        return;
    }
    for (size_t r = 0; r < L.out; ++r) {
        const int8_t *row = L.w + r * L.in;
        __m256i acc = _mm256_setzero_si256();
        size_t c = 0;
        for (; c + 16 <= L.in; c += 16) {
            const __m256i vw = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(row + c)));
            const __m256i vx = _mm256_cvtepi8_epi16(_mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + c)));
            acc = _mm256_add_epi32(acc, _mm256_madd_epi16(vw, vx));
        }
        int32_t sum = hsum32(acc);
        for (; c < L.in; ++c)
            sum += static_cast<int32_t>(row[c]) *
                   static_cast<int32_t>(x[c]);
        y[r] = denseFinish(L, r, static_cast<int64_t>(L.b[r]) + sum);
    }
}

void
denseBatchAvx2(const DenseView &L, const int8_t *x, int8_t *y,
               size_t bw)
{
    if (L.in >= (size_t{1} << 16)) {
        scalarOps().dense_batch(L, x, y, bw);
        return;
    }
    const bool fast_rq = fastRequant(L.rq);
    const int32_t mant = L.rq.mantissa();
    const int shift = 31 + L.rq.exponent();
    alignas(32) int32_t tmp[16];
    size_t p = 0;
    for (; p + 16 <= bw; p += 16) {
        for (size_t r = 0; r < L.out; ++r) {
            const int8_t *row = L.w + r * L.in;
            __m256i acc_lo = _mm256_setzero_si256();
            __m256i acc_hi = _mm256_setzero_si256();
            for (size_t c = 0; c < L.in; ++c) {
                const __m256i xv =
                    _mm256_cvtepi8_epi16(_mm_loadu_si128(
                        reinterpret_cast<const __m128i *>(
                            x + c * bw + p)));
                const __m256i prod = _mm256_mullo_epi16(
                    xv, _mm256_set1_epi16(
                            static_cast<int16_t>(row[c])));
                acc_lo = _mm256_add_epi32(
                    acc_lo, _mm256_cvtepi16_epi32(
                                _mm256_castsi256_si128(prod)));
                acc_hi = _mm256_add_epi32(
                    acc_hi, _mm256_cvtepi16_epi32(
                                _mm256_extracti128_si256(prod, 1)));
            }
            __m256i halves[2] = {satAddBias(acc_lo, L.b[r]),
                                 satAddBias(acc_hi, L.b[r])};
            if (fast_rq) {
                for (auto &h : halves) {
                    h = requant8(h, mant, shift);
                    if (L.act == DenseAct::Relu)
                        h = _mm256_max_epi32(h,
                                             _mm256_setzero_si256());
                    else if (L.act == DenseAct::LeakyRelu)
                        h = leaky8(h);
                }
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(tmp), halves[0]);
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(tmp + 8), halves[1]);
                int8_t *dst = y + r * bw + p;
                if (L.act == DenseAct::Lut) {
                    for (int k = 0; k < 16; ++k)
                        dst[k] = L.lut[static_cast<size_t>(tmp[k] +
                                                           128)];
                } else {
                    for (int k = 0; k < 16; ++k)
                        dst[k] = static_cast<int8_t>(tmp[k]);
                }
            } else {
                // Requantizer outside the SIMD envelope: scalar
                // epilogue on the exact SIMD-computed accumulators.
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(tmp), halves[0]);
                _mm256_store_si256(
                    reinterpret_cast<__m256i *>(tmp + 8), halves[1]);
                int8_t *dst = y + r * bw + p;
                for (int k = 0; k < 16; ++k)
                    dst[k] = denseFinish(L, r, tmp[k]);
            }
        }
    }
    if (p < bw)
        denseCols(L, x, y, bw, p, bw);
}

int64_t
dotAvx2(const int8_t *w, const int32_t *x, size_t n)
{
    __m256i acc = _mm256_setzero_si256();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i wv = _mm256_cvtepi8_epi32(_mm_loadl_epi64(
            reinterpret_cast<const __m128i *>(w + i)));
        const __m256i xv = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + i));
        const __m256i prod = _mm256_mullo_epi32(wv, xv);
        acc = _mm256_add_epi64(
            acc, _mm256_cvtepi32_epi64(_mm256_castsi256_si128(prod)));
        acc = _mm256_add_epi64(
            acc,
            _mm256_cvtepi32_epi64(_mm256_extracti128_si256(prod, 1)));
    }
    int64_t sum = hsum64(acc);
    for (; i < n; ++i)
        sum += wrapMul(static_cast<int32_t>(w[i]), x[i]);
    return sum;
}

void
dotRowBatchAvx2(const int8_t *w, size_t n, int32_t bias,
                const fixed::Requantizer &rq, bool requant, bool narrow,
                const int32_t *x, int32_t *out, size_t bw)
{
    // The int32-accumulator fast path needs every lane to be a
    // sign-extended int8 (|product| <= 16384) and n small enough that
    // the sum cannot overflow; otherwise the scalar reference runs.
    const bool fast32 = narrow && n < (size_t{1} << 16);
    const bool fast_rq = !requant || fastRequant(rq);
    if (!fast32 || !fast_rq) {
        scalarOps().dot_row_batch(w, n, bias, rq, requant, narrow, x,
                                  out, bw);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t p = 0;
    for (; p + 8 <= bw; p += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (size_t i = 0; i < n; ++i) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x + i * bw + p));
            acc = _mm256_add_epi32(
                acc, _mm256_mullo_epi32(
                         xv, _mm256_set1_epi32(
                                 static_cast<int32_t>(w[i]))));
        }
        __m256i v = satAddBias(acc, bias);
        if (requant)
            v = requant8(v, mant, shift);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + p), v);
    }
    if (p < bw)
        dotRowCols(w, n, bias, rq, requant, x, out, bw, p, bw);
}

void
sqdistBatchAvx2(const int8_t *w, size_t n, const fixed::Requantizer &rq,
                bool requant, bool narrow, const int32_t *x,
                int32_t *out, size_t bw)
{
    // Narrow lanes give |x - w| <= 255, so squares fit int16 headroom
    // and an int32 sum is exact while n * 65025 < 2^31 (n < 2^15).
    const bool fast32 = narrow && n < (size_t{1} << 15);
    const bool fast_rq = !requant || fastRequant(rq);
    if (!fast32 || !fast_rq) {
        scalarOps().sqdist_batch(w, n, rq, requant, narrow, x, out, bw);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t p = 0;
    for (; p + 8 <= bw; p += 8) {
        __m256i acc = _mm256_setzero_si256();
        for (size_t i = 0; i < n; ++i) {
            const __m256i xv = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x + i * bw + p));
            const __m256i d = _mm256_sub_epi32(
                xv,
                _mm256_set1_epi32(static_cast<int32_t>(w[i])));
            acc = _mm256_add_epi32(acc, _mm256_mullo_epi32(d, d));
        }
        __m256i v = acc; // sum >= 0 and < 2^31: sat32 is the identity
        if (requant)
            v = requant8(v, mant, shift);
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + p), v);
    }
    for (; p < bw; ++p) {
        int64_t acc = 0;
        for (size_t i = 0; i < n; ++i) {
            const int32_t d =
                wrapAdd(x[i * bw + p], -static_cast<int32_t>(w[i]));
            acc += wrapMul(d, d);
        }
        const int32_t sat = saturate<int32_t>(acc);
        out[p] = requant ? requant1(sat, rq) : sat;
    }
}

void
argminBatchAvx2(const int32_t *x, size_t lanes, int32_t *out, size_t bw)
{
    if (lanes == 0) {
        for (size_t p = 0; p < bw; ++p)
            out[p] = 0;
        return;
    }
    size_t p = 0;
    for (; p + 8 <= bw; p += 8) {
        __m256i best = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(x + p));
        __m256i idx = _mm256_setzero_si256();
        for (size_t i = 1; i < lanes; ++i) {
            const __m256i v = _mm256_loadu_si256(
                reinterpret_cast<const __m256i *>(x + i * bw + p));
            // Strict less-than keeps the FIRST minimum, matching the
            // scalar reference's tie-breaking.
            const __m256i lt = _mm256_cmpgt_epi32(best, v);
            best = _mm256_blendv_epi8(best, v, lt);
            idx = _mm256_blendv_epi8(
                idx, _mm256_set1_epi32(static_cast<int32_t>(i)), lt);
        }
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(out + p), idx);
    }
    for (; p < bw; ++p) {
        int32_t best = std::numeric_limits<int32_t>::max();
        int32_t best_idx = 0;
        for (size_t i = 0; i < lanes; ++i)
            if (x[i * bw + p] < best) {
                best = x[i * bw + p];
                best_idx = static_cast<int32_t>(i);
            }
        out[p] = best_idx;
    }
}

void
widenAvx2(const int8_t *src, int32_t *dst, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(dst + i),
            _mm256_cvtepi8_epi32(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(src + i))));
    for (; i < n; ++i)
        dst[i] = src[i];
}

void
addClamp8Avx2(const int32_t *a, const int32_t *b, int32_t *o, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(reinterpret_cast<__m256i *>(o + i),
                            clamp8v(_mm256_add_epi32(va, vb)));
    }
    for (; i < n; ++i)
        o[i] = saturate<int8_t>(wrapAdd(a[i], b[i]));
}

void
mulRequantAvx2(const int32_t *a, const int32_t *b, int32_t *o, size_t n,
               const fixed::Requantizer &rq)
{
    if (!fastRequant(rq)) {
        scalarOps().mul_requant(a, b, o, n, rq);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(o + i),
            requant8(_mm256_mullo_epi32(va, vb), mant, shift));
    }
    for (; i < n; ++i)
        o[i] = requant1(wrapMul(a[i], b[i]), rq);
}

void
requantAvx2(const int32_t *x, int32_t *o, size_t n,
            const fixed::Requantizer &rq)
{
    if (!fastRequant(rq)) {
        scalarOps().requant_s32(x, o, n, rq);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t i = 0;
    for (; i + 8 <= n; i += 8)
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(o + i),
            requant8(_mm256_loadu_si256(
                         reinterpret_cast<const __m256i *>(x + i)),
                     mant, shift));
    for (; i < n; ++i)
        o[i] = requant1(x[i], rq);
}

void
reluAvx2(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(
            p, _mm256_max_epi32(_mm256_loadu_si256(p),
                                _mm256_setzero_si256()));
    }
    for (; i < n; ++i)
        x[i] = x[i] > 0 ? x[i] : 0;
}

void
leakyReluAvx2(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(p, leaky8(_mm256_loadu_si256(p)));
    }
    for (; i < n; ++i)
        x[i] = x[i] >= 0 ? x[i] : x[i] / 8;
}

void
squareClamp8Avx2(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        const __m256i v = _mm256_loadu_si256(p);
        _mm256_storeu_si256(p, clamp8v(_mm256_mullo_epi32(v, v)));
    }
    for (; i < n; ++i)
        x[i] = saturate<int8_t>(wrapMul(x[i], x[i]));
}

void
absClamp8Avx2(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        const __m256i v = _mm256_loadu_si256(p);
        const __m256i neg =
            clamp8v(_mm256_sub_epi32(_mm256_setzero_si256(), v));
        _mm256_storeu_si256(
            p, _mm256_blendv_epi8(v, neg, _mm256_srai_epi32(v, 31)));
    }
    for (; i < n; ++i)
        x[i] = x[i] < 0 ? saturate<int8_t>(static_cast<int32_t>(
                              -static_cast<int64_t>(x[i])))
                        : x[i];
}

void
negClamp8Avx2(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(
            p, clamp8v(_mm256_sub_epi32(_mm256_setzero_si256(),
                                        _mm256_loadu_si256(p))));
    }
    for (; i < n; ++i)
        x[i] = saturate<int8_t>(
            static_cast<int32_t>(-static_cast<int64_t>(x[i])));
}

void
addConstClamp8Avx2(int32_t *x, size_t n, int32_t imm)
{
    const __m256i vi = _mm256_set1_epi32(imm);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(
            p, clamp8v(_mm256_add_epi32(_mm256_loadu_si256(p), vi)));
    }
    for (; i < n; ++i)
        x[i] = saturate<int8_t>(wrapAdd(x[i], imm));
}

void
mulConstRequantAvx2(int32_t *x, size_t n, int32_t imm,
                    const fixed::Requantizer &rq)
{
    if (!fastRequant(rq)) {
        scalarOps().mul_const_requant(x, n, imm, rq);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    const __m256i vi = _mm256_set1_epi32(imm);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(
            p, requant8(_mm256_mullo_epi32(_mm256_loadu_si256(p), vi),
                        mant, shift));
    }
    for (; i < n; ++i)
        x[i] = requant1(wrapMul(x[i], imm), rq);
}

void
minConstAvx2(int32_t *x, size_t n, int32_t imm)
{
    const __m256i vi = _mm256_set1_epi32(imm);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(p,
                            _mm256_min_epi32(_mm256_loadu_si256(p), vi));
    }
    for (; i < n; ++i)
        x[i] = x[i] < imm ? x[i] : imm;
}

void
maxConstAvx2(int32_t *x, size_t n, int32_t imm)
{
    const __m256i vi = _mm256_set1_epi32(imm);
    size_t i = 0;
    for (; i + 8 <= n; i += 8) {
        __m256i *p = reinterpret_cast<__m256i *>(x + i);
        _mm256_storeu_si256(p,
                            _mm256_max_epi32(_mm256_loadu_si256(p), vi));
    }
    for (; i < n; ++i)
        x[i] = x[i] > imm ? x[i] : imm;
}

} // namespace

bool
patchAvx2(Ops &ops)
{
    ops.level = Level::Avx2;
    ops.dense = denseAvx2;
    ops.dense_batch = denseBatchAvx2;
    ops.dot_s8_s32 = dotAvx2;
    ops.dot_row_batch = dotRowBatchAvx2;
    ops.sqdist_batch = sqdistBatchAvx2;
    ops.argmin_batch = argminBatchAvx2;
    ops.widen_s8 = widenAvx2;
    ops.add_clamp8 = addClamp8Avx2;
    ops.mul_requant = mulRequantAvx2;
    ops.requant_s32 = requantAvx2;
    ops.relu = reluAvx2;
    ops.leaky_relu = leakyReluAvx2;
    ops.square_clamp8 = squareClamp8Avx2;
    ops.abs_clamp8 = absClamp8Avx2;
    ops.neg_clamp8 = negClamp8Avx2;
    ops.add_const_clamp8 = addConstClamp8Avx2;
    ops.mul_const_requant = mulConstRequantAvx2;
    ops.min_const = minConstAvx2;
    ops.max_const = maxConstAvx2;
    return true;
}

} // namespace taurus::kernels::detail

#else // !TAURUS_KERNELS_AVX2

namespace taurus::kernels::detail {

bool
patchAvx2(Ops &ops)
{
    (void)ops;
    return false;
}

} // namespace taurus::kernels::detail

#endif
