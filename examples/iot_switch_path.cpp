/**
 * @file
 * IoT device classification served end-to-end through the Taurus data
 * plane — the "add your own app" recipe in action.
 *
 * The anomaly DNN used to be the only model the full pipeline (parser
 * -> preprocessing MATs -> MapReduce -> verdict table -> scheduler)
 * could serve. This example onboards a second application through the
 * generic AppArtifact install API: a multi-class MLP over 6 flow
 * features, its own stateful preprocessing program, an in-graph argmax
 * head, and a class-verdict table — installed into a TaurusSwitch and
 * a SwitchFarm with the same one-liner the anomaly app uses.
 */

#include <iostream>

#include "models/zoo.hpp"
#include "net/iot.hpp"
#include "taurus/app.hpp"
#include "taurus/experiment.hpp"
#include "taurus/farm.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "=== IoT classification on the switch path ===\n\n";

    // 1. Train the flow classifier on a synthetic IoT trace; quantize
    //    and lower it with an argmax head.
    const models::IotFlowMlp iot = models::trainIotFlowMlp(1, 2000);
    std::cout << "Offline accuracy: float "
              << TablePrinter::num(iot.float_accuracy * 100.0, 1)
              << "%, int8 "
              << TablePrinter::num(iot.quant_accuracy * 100.0, 1)
              << "%\n";

    // 2. Package it as a data-plane application artifact.
    const core::AppArtifact app = core::makeIotFlowApp(iot);

    // 3. Install into a switch and run the labeled evaluation trace
    //    through the real pipeline.
    core::TaurusSwitch sw;
    sw.installApp(app);
    const core::AppRunResult r =
        core::runApp(app.eval_trace, sw, app.num_classes);

    std::cout << "Switch-path accuracy: "
              << TablePrinter::num(r.accuracy_pct, 1) << "% over "
              << r.packets << " packets (macro-F1 "
              << TablePrinter::num(r.macro_f1_x100, 1) << ", ML latency "
              << TablePrinter::num(r.mean_ml_latency_ns, 0) << " ns)\n\n";

    TablePrinter t({"Class", "Precision", "Recall", "F1"});
    for (size_t c = 0; c < app.num_classes; ++c)
        t.addRow({net::iotClassName(static_cast<int>(c)),
                  TablePrinter::num(r.confusion.precision(c) * 100.0, 1),
                  TablePrinter::num(r.confusion.recall(c) * 100.0, 1),
                  TablePrinter::num(r.confusion.f1(c) * 100.0, 1)});
    t.print(std::cout);

    // 4. The same artifact installs into a sharded farm unchanged.
    core::SwitchFarm farm({}, 2);
    farm.installApp(app);
    const auto decisions = farm.processTrace(app.eval_trace);
    util::MultiConfusion farm_cm(app.num_classes);
    for (size_t i = 0; i < decisions.size(); ++i)
        farm_cm.record(decisions[i].class_id,
                       app.eval_trace[i].class_label);
    std::cout << "\nFarm (2 workers) accuracy: "
              << TablePrinter::num(farm_cm.accuracy() * 100.0, 1)
              << "% over " << decisions.size() << " packets\n";

    std::cout << "\nSame install API, same pipeline, different app: the "
                 "verdict table decodes a class id instead of a flag.\n";

    if (r.accuracy_pct < 60.0) {
        std::cerr << "switch-path accuracy unexpectedly low\n";
        return 1;
    }
    return 0;
}
