/**
 * @file
 * Online training of the data-plane model (Section 5.2.3).
 *
 * The control plane replays sampled telemetry into a streaming SGD
 * trainer; each minibatch update is pushed to the switch after a
 * rule-installation-time delay (the paper uses flow-rule install time as
 * the weight-update estimate), and the data plane's accuracy is scored
 * after every push. Figures 13 and 14 are F1(t) curves produced by this
 * harness under different sampling rates and epoch/batch configurations.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/features.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace taurus::cp {

/** One online-training experiment configuration. */
struct OnlineTrainConfig
{
    double sampling_rate = 1e-2;  ///< telemetry mirror fraction
    int epochs = 1;               ///< SGD passes per pushed update
    int batch = 64;               ///< samples per update
    double install_delay_ms = 3.0; ///< weight-push latency estimate
    double train_us_per_sample_epoch = 40.0; ///< server SGD compute
    float learning_rate = 0.05f;
    double max_time_s = 20.0;     ///< simulated wall-clock budget
    uint64_t seed = 11;
};

/** One point of an F1-over-time convergence curve. */
struct ConvergencePoint
{
    double time_s = 0.0;
    double f1 = 0.0;
};

/** Result of one online-training run. */
struct OnlineTrainResult
{
    std::vector<ConvergencePoint> curve;
    double final_f1 = 0.0;
    /** First time the curve reaches 95% of its final F1. */
    double convergence_time_s = 0.0;
    uint64_t updates_pushed = 0;
};

/**
 * Run online training: `trace` supplies telemetry (replayed cyclically
 * until max_time_s), `eval` is the standardized held-out set the pushed
 * model is scored on after every update. Features are standardized with
 * the same transform used for `eval`.
 */
OnlineTrainResult runOnlineTraining(
    const std::vector<net::TracePacket> &trace,
    const nn::Standardizer &standardizer, const nn::Dataset &eval,
    const OnlineTrainConfig &cfg);

} // namespace taurus::cp
