#include "net/iot.hpp"

#include <cmath>

#include "util/rng.hpp"

namespace taurus::net {

nn::Dataset
iotBinaryDataset(size_t samples, uint64_t seed)
{
    util::Rng rng(seed);
    nn::Dataset data;
    // Separation d between class means gives Bayes accuracy Phi(d/2);
    // d = 0.88 puts it at ~0.67 (Table 3's float32 operating point).
    const double delta = 0.88 / std::sqrt(2.0);
    for (size_t i = 0; i < samples; ++i) {
        const int label = rng.bernoulli(0.5) ? 1 : 0;
        const double sign = label ? 1.0 : -1.0;
        nn::Vector x(4);
        x[0] = static_cast<float>(rng.gaussian(sign * delta / 2.0, 1.0));
        x[1] = static_cast<float>(rng.gaussian(-sign * delta / 2.0, 1.0));
        x[2] = static_cast<float>(rng.gaussian(0.0, 1.0)); // noise dims
        x[3] = static_cast<float>(rng.gaussian(0.0, 1.0));
        data.add(std::move(x), label);
    }
    return data;
}

nn::Dataset
iotDeviceDataset(size_t samples, uint64_t seed)
{
    util::Rng rng(seed);

    // Five device categories with distinct traffic signatures over 11
    // features (mean pkt size, size stddev, inter-arrival mean/stddev,
    // flow duration, up/down ratio, port entropy, DNS rate, NTP rate,
    // TLS fraction, sleep fraction) — loosely following the TMC IoT
    // feature families.
    constexpr int kCategories = 5;
    constexpr int kFeatures = 11;
    std::vector<nn::Vector> means(kCategories, nn::Vector(kFeatures));
    util::Rng mean_rng = rng.split();
    for (auto &m : means)
        for (float &v : m)
            v = static_cast<float>(mean_rng.uniform(-1.2, 1.2));

    nn::Dataset data;
    for (size_t i = 0; i < samples; ++i) {
        const int label =
            static_cast<int>(rng.uniformInt(0, kCategories - 1));
        nn::Vector x(kFeatures);
        for (int f = 0; f < kFeatures; ++f)
            x[static_cast<size_t>(f)] = static_cast<float>(
                rng.gaussian(means[static_cast<size_t>(label)]
                                  [static_cast<size_t>(f)],
                             0.9));
        data.add(std::move(x), label);
    }
    return data;
}

} // namespace taurus::net
