#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/kmeans.hpp"
#include "nn/lstm.hpp"
#include "nn/mlp.hpp"
#include "nn/quantized.hpp"
#include "nn/rbf.hpp"
#include "util/rng.hpp"

using namespace taurus;
using nn::Vector;

namespace {

/** Two-gaussian binary dataset with controllable separation. */
nn::Dataset
makeBlobs(size_t n, size_t dim, double separation, util::Rng &rng)
{
    nn::Dataset d;
    for (size_t i = 0; i < n; ++i) {
        const int label = static_cast<int>(i % 2);
        Vector x(dim);
        for (size_t j = 0; j < dim; ++j)
            x[j] = static_cast<float>(
                rng.gaussian(label ? separation : -separation, 1.0));
        d.add(std::move(x), label);
    }
    return d;
}

} // namespace

TEST(Matrix, MatVec)
{
    nn::Matrix m(2, 3);
    m.at(0, 0) = 1; m.at(0, 1) = 2; m.at(0, 2) = 3;
    m.at(1, 0) = 4; m.at(1, 1) = 5; m.at(1, 2) = 6;
    const Vector y = m.matVec({1, 1, 1});
    EXPECT_FLOAT_EQ(y[0], 6);
    EXPECT_FLOAT_EQ(y[1], 15);
    const Vector t = m.matVecTransposed({1, 1});
    EXPECT_FLOAT_EQ(t[0], 5);
    EXPECT_FLOAT_EQ(t[1], 7);
    EXPECT_FLOAT_EQ(t[2], 9);
}

TEST(Matrix, OuterAccumulate)
{
    nn::Matrix m(2, 2);
    m.addOuter({1, 2}, {3, 4}, 0.5f);
    EXPECT_FLOAT_EQ(m.at(0, 0), 1.5f);
    EXPECT_FLOAT_EQ(m.at(1, 1), 4.0f);
}

TEST(Activations, ScalarValues)
{
    EXPECT_DOUBLE_EQ(nn::activationScalar(nn::Activation::Relu, -2.0), 0.0);
    EXPECT_DOUBLE_EQ(nn::activationScalar(nn::Activation::Relu, 2.0), 2.0);
    EXPECT_DOUBLE_EQ(
        nn::activationScalar(nn::Activation::LeakyRelu, -8.0), -1.0);
    EXPECT_NEAR(nn::activationScalar(nn::Activation::Sigmoid, 0.0), 0.5,
                1e-12);
    EXPECT_NEAR(nn::activationScalar(nn::Activation::Tanh, 100.0), 1.0,
                1e-9);
}

TEST(Activations, SoftmaxNormalizes)
{
    const Vector y =
        nn::applyActivation(nn::Activation::Softmax, {1.0f, 2.0f, 3.0f});
    float sum = 0;
    for (float v : y)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(y[2], y[1]);
    EXPECT_GT(y[1], y[0]);
}

TEST(Dataset, SplitPreservesAll)
{
    util::Rng rng(5);
    nn::Dataset d = makeBlobs(100, 3, 1.0, rng);
    const auto [a, b] = d.split(0.7, rng);
    EXPECT_EQ(a.size() + b.size(), d.size());
    EXPECT_EQ(a.size(), 70u);
}

TEST(Standardizer, ZeroMeanUnitVar)
{
    util::Rng rng(6);
    nn::Dataset d = makeBlobs(500, 4, 2.0, rng);
    nn::Standardizer s;
    s.fit(d);
    const nn::Dataset sd = s.apply(d);
    for (size_t j = 0; j < 4; ++j) {
        double mean = 0;
        for (const auto &row : sd.x)
            mean += row[j];
        mean /= static_cast<double>(sd.size());
        EXPECT_NEAR(mean, 0.0, 1e-4);
    }
}

TEST(Mlp, LearnsSeparableBlobs)
{
    util::Rng rng(7);
    nn::Dataset d = makeBlobs(600, 4, 1.5, rng);
    nn::Mlp model({4, 8, 1}, nn::Activation::Relu,
                  nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig cfg;
    cfg.epochs = 30;
    model.train(d, cfg, rng);
    EXPECT_GT(model.accuracy(d), 0.95);
}

TEST(Mlp, LearnsXor)
{
    util::Rng rng(8);
    nn::Dataset d;
    for (int i = 0; i < 400; ++i) {
        const int a = i & 1, b = (i >> 1) & 1;
        Vector x{static_cast<float>(a + rng.gaussian(0, 0.1)),
                 static_cast<float>(b + rng.gaussian(0, 0.1))};
        d.add(x, a ^ b);
    }
    nn::Mlp model({2, 8, 8, 1}, nn::Activation::Tanh,
                  nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig cfg;
    cfg.epochs = 200;
    cfg.learning_rate = 0.1f;
    model.train(d, cfg, rng);
    EXPECT_GT(model.accuracy(d), 0.95);
}

TEST(Mlp, MulticlassSoftmax)
{
    util::Rng rng(9);
    nn::Dataset d;
    for (int i = 0; i < 900; ++i) {
        const int label = i % 3;
        Vector x{static_cast<float>(rng.gaussian(label * 3.0, 0.7)),
                 static_cast<float>(rng.gaussian(-label * 2.0, 0.7))};
        d.add(x, label);
    }
    nn::Mlp model({2, 10, 3}, nn::Activation::Relu, nn::Loss::CrossEntropy,
                  rng);
    nn::TrainConfig cfg;
    cfg.epochs = 40;
    model.train(d, cfg, rng);
    EXPECT_GT(model.accuracy(d), 0.95);
}

TEST(Quantized, MatchesFloatOnEasyData)
{
    util::Rng rng(10);
    nn::Dataset d = makeBlobs(800, 6, 1.5, rng);
    nn::Mlp model({6, 12, 6, 3, 1}, nn::Activation::Relu,
                  nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig cfg;
    cfg.epochs = 30;
    model.train(d, cfg, rng);

    const nn::QuantizedMlp q = nn::QuantizedMlp::fromFloat(model, d.x);
    const double fa = model.accuracy(d);
    const double qa = q.accuracy(d);
    EXPECT_GT(fa, 0.9);
    EXPECT_NEAR(qa, fa, 0.02);
}

TEST(Quantized, ScoreTracksFloatScore)
{
    util::Rng rng(12);
    nn::Dataset d = makeBlobs(400, 6, 1.0, rng);
    nn::Mlp model({6, 12, 6, 3, 1}, nn::Activation::Relu,
                  nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig cfg;
    cfg.epochs = 20;
    model.train(d, cfg, rng);
    const nn::QuantizedMlp q = nn::QuantizedMlp::fromFloat(model, d.x);
    double max_err = 0;
    for (size_t i = 0; i < 100; ++i) {
        const double f = model.forward(d.x[i])[0];
        const double s = q.score(d.x[i]);
        max_err = std::max(max_err, std::fabs(f - s));
    }
    EXPECT_LT(max_err, 0.12);
}

TEST(Quantized, LutMatchesScalarActivation)
{
    const auto lut =
        nn::buildActivationLut(nn::Activation::Sigmoid, 0.05, 1.0 / 127.0);
    ASSERT_EQ(lut.size(), 256u);
    for (int code = -128; code <= 127; ++code) {
        const double x = code * 0.05;
        const double expect = 1.0 / (1.0 + std::exp(-x));
        const double got = lut[code + 128] * (1.0 / 127.0);
        EXPECT_NEAR(got, expect, 1.0 / 127.0);
    }
}

TEST(Quantized, WeightBytesSmall)
{
    util::Rng rng(13);
    nn::Dataset d = makeBlobs(100, 6, 1.0, rng);
    nn::Mlp model({6, 12, 6, 3, 1}, nn::Activation::Relu,
                  nn::Loss::BinaryCrossEntropy, rng);
    const nn::QuantizedMlp q = nn::QuantizedMlp::fromFloat(model, d.x);
    // 6*12+12*6+6*3+3*1 = 165 int8 weights + 22 int32 biases + sigmoid LUT.
    EXPECT_LT(q.weightBytes(), 600u);
    EXPECT_GT(q.weightBytes(), 165u);
}

TEST(KMeans, RecoverTightClusters)
{
    util::Rng rng(14);
    std::vector<Vector> pts;
    for (int c = 0; c < 3; ++c)
        for (int i = 0; i < 100; ++i)
            pts.push_back({static_cast<float>(rng.gaussian(c * 10, 0.3)),
                           static_cast<float>(rng.gaussian(-c * 10, 0.3))});
    const nn::KMeans km = nn::KMeans::fit(pts, 3, 25, rng);
    // All points in a generated cluster should agree on assignment.
    for (int c = 0; c < 3; ++c) {
        const int a0 = km.predict(pts[c * 100]);
        for (int i = 1; i < 100; ++i)
            EXPECT_EQ(km.predict(pts[c * 100 + i]), a0);
    }
}

TEST(KMeans, LabelAccuracyOnSeparatedClasses)
{
    util::Rng rng(15);
    nn::Dataset d = makeBlobs(600, 5, 3.0, rng);
    nn::KMeans km = nn::KMeans::fit(d.x, 2, 20, rng);
    EXPECT_GT(km.labelAccuracy(d, d), 0.98);
}

TEST(Rbf, LearnsRadialBoundary)
{
    util::Rng rng(16);
    nn::Dataset d;
    // Anomalies inside a ring, benign outside: not linearly separable.
    for (int i = 0; i < 600; ++i) {
        const double angle = rng.uniform(0, 2 * M_PI);
        const bool anomalous = i % 2 == 0;
        const double radius =
            anomalous ? rng.uniform(0, 1.0) : rng.uniform(2.0, 3.0);
        d.add({static_cast<float>(radius * std::cos(angle)),
               static_cast<float>(radius * std::sin(angle))},
              anomalous ? 1 : 0);
    }
    const nn::RbfNet net = nn::RbfNet::fit(d, 8, 30, 0.1f, rng);
    EXPECT_GT(net.accuracy(d), 0.95);
}

TEST(Lstm, StepShapesAndSoftmax)
{
    util::Rng rng(17);
    nn::Lstm lstm(16, 32, 8, rng);
    nn::LstmState state = lstm.initialState();
    const Vector out = lstm.step(Vector(16, 0.5f), state);
    ASSERT_EQ(out.size(), 8u);
    float sum = 0;
    for (float v : out)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-5f);
    EXPECT_EQ(state.h.size(), 32u);
}

TEST(Lstm, StateEvolves)
{
    util::Rng rng(18);
    nn::Lstm lstm(4, 8, 2, rng);
    nn::LstmState s = lstm.initialState();
    lstm.step({1, 0, 0, 0}, s);
    const Vector h1 = s.h;
    lstm.step({0, 1, 1, 0}, s);
    bool changed = false;
    for (size_t i = 0; i < h1.size(); ++i)
        if (h1[i] != s.h[i])
            changed = true;
    EXPECT_TRUE(changed);
}
