/**
 * @file
 * The preprocessing MAT program: per-flow feature extraction in MAT
 * primitives (Section 3.1).
 *
 * The program aggregates flow and source state in stateful registers
 * (hash-indexed, as on real hardware), bins raw values logarithmically
 * through TCAM range tables, and folds the control plane's standardize +
 * quantize transform into the same tables — so Feature0..Feature5 leave
 * the preprocessing MATs as the exact int8 codes the MapReduce block's
 * quantized model was calibrated for. This is the switch-side half of
 * the shared feature definition in net/features.hpp; integration tests
 * drive both from the same packets and assert the codes agree.
 *
 * Stage budget: 11 of the pipeline's 32 MATs, every action within the
 * 12-op VLIW budget (MatPipeline::validate enforces both).
 */

#pragma once

#include <cstdint>
#include <functional>

#include "fixed/quant.hpp"
#include "nn/dataset.hpp"
#include "pisa/mat.hpp"
#include "pisa/packet.hpp"
#include "pisa/registers.hpp"

namespace taurus::core {

/** Sizing of the stateful tables. */
struct FeatureProgramConfig
{
    int flow_table_bits = 18; ///< flow register arrays: 2^bits cells
    int src_table_bits = 16;  ///< per-source register arrays
};

/** The built pipeline plus the registers it owns. */
struct FeatureProgram
{
    pisa::MatPipeline preprocess;
    pisa::RegisterFile registers;

    // Register array ids (exposed for tests and diagnostics).
    int reg_first_seen = -1;
    int reg_pkts = -1;
    int reg_bytes = -1;
    int reg_urgent = -1;
    int reg_win_start = -1;
    int reg_src_conns = -1;

    uint32_t flow_table_size = 0;
    uint32_t src_table_size = 0;

    /** Feature codes the program writes (Feature0..Feature{n-1}). */
    size_t feature_count = 0;
};

/**
 * Build the 6-feature DNN preprocessing program. `standardizer` and
 * `input_qp` come from the trained model: each binning table maps a raw
 * register value directly to quantize(standardize(bin)), the int8 input
 * code of the installed model.
 */
FeatureProgram buildDnnFeatureProgram(const nn::Standardizer &standardizer,
                                      const fixed::QuantParams &input_qp,
                                      const FeatureProgramConfig &cfg = {});

/**
 * Build the 6-feature IoT flow-classification preprocessing program,
 * mirroring net::iotFlowFeatureVector: packet-size/flow-packet/
 * flow-byte/duration log bins, the protocol code, and the service-port
 * code, each folded through standardize + quantize so Feature0..5 leave
 * the MATs as the installed classifier's exact int8 input codes.
 */
FeatureProgram buildIotFeatureProgram(const nn::Standardizer &standardizer,
                                      const fixed::QuantParams &input_qp,
                                      const FeatureProgramConfig &cfg = {});

/**
 * Build the postprocessing MAT: a 256-entry verdict table on the ML
 * score code. `flag_code` decides, per int8 score code, whether the
 * packet is anomalous — derived from the installed model's output scale
 * so switch verdicts are bit-consistent with QuantizedMlp::predict.
 */
pisa::MatPipeline buildVerdictProgram(
    const std::function<bool(int8_t)> &flag_code);

/**
 * Build the argmax postprocessing MAT: the MapReduce block's output
 * code *is* the predicted class id (the lowered classifier ends in an
 * in-graph argmax), and this table copies it into the MlClass field —
 * optionally flagging (Decision/Priority) the classes listed in
 * `flagged_classes`. Codes outside [0, num_classes), and bypass
 * packets, fall to a default of class 0 / no flag.
 */
pisa::MatPipeline buildClassVerdictProgram(
    size_t num_classes, const std::vector<int32_t> &flagged_classes = {});

} // namespace taurus::core
