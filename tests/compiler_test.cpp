#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/lower.hpp"
#include "compiler/report.hpp"
#include "dfg/eval.hpp"
#include "models/zoo.hpp"
#include "util/rng.hpp"

using namespace taurus;

namespace {

/** A small trained binary MLP for lowering tests. */
nn::QuantizedMlp
smallQuantizedMlp(util::Rng &rng, const std::vector<size_t> &sizes)
{
    nn::Dataset data;
    for (int i = 0; i < 300; ++i) {
        nn::Vector x(sizes.front());
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian(i % 2 ? 1.0 : -1.0, 1.0));
        data.add(std::move(x), i % 2);
    }
    nn::Mlp mlp(sizes, nn::Activation::Relu,
                sizes.back() == 1 ? nn::Loss::BinaryCrossEntropy
                                  : nn::Loss::CrossEntropy,
                rng);
    nn::TrainConfig tc;
    tc.epochs = 4;
    mlp.train(data, tc, rng);
    return nn::QuantizedMlp::fromFloat(mlp, data.x);
}

} // namespace

TEST(LowerMlp, GraphMatchesQuantizedReferenceBitExact)
{
    util::Rng rng(31);
    const auto qm = smallQuantizedMlp(rng, {6, 12, 6, 3, 1});
    const auto g = compiler::lowerMlp(qm);
    ASSERT_EQ(g.validate(), "");

    for (int trial = 0; trial < 200; ++trial) {
        std::vector<int8_t> q(6);
        for (auto &v : q)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        const auto want = qm.forwardInt(q);
        const auto got = dfg::evaluateSimple(g, q);
        EXPECT_EQ(got, want);
    }
}

TEST(LowerMlp, WideLayerSplitsIntoPartialDots)
{
    util::Rng rng(37);
    // 24 inputs exceed the 16-lane CU: PartialDot + CombineAdd required.
    const auto qm = smallQuantizedMlp(rng, {24, 4, 1});
    const auto g = compiler::lowerMlp(qm);
    ASSERT_EQ(g.validate(), "");

    bool has_partial = false, has_combine = false;
    for (const auto &n : g.nodes()) {
        has_partial |= n.kind == dfg::NodeKind::PartialDot;
        has_combine |= n.kind == dfg::NodeKind::CombineAdd;
        EXPECT_LE(n.width, dfg::kLanes);
    }
    EXPECT_TRUE(has_partial);
    EXPECT_TRUE(has_combine);

    // Still bit-exact across the split.
    for (int trial = 0; trial < 100; ++trial) {
        std::vector<int8_t> q(24);
        for (auto &v : q)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        // Inputs are segmented 16 + 8.
        const auto res = dfg::evaluate(
            g, {{q.begin(), q.begin() + 16}, {q.begin() + 16, q.end()}});
        const auto want = qm.forwardInt(q);
        ASSERT_EQ(res.size(), 1u);
        ASSERT_EQ(res[0].lanes.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(res[0].lanes[i], want[i]);
    }
}

TEST(LowerKmeans, ArgMinAgreesWithFloatModelOnCleanPoints)
{
    util::Rng rng(41);
    std::vector<nn::Vector> pts;
    for (int i = 0; i < 600; ++i) {
        nn::Vector x(11);
        const int c = i % 5;
        for (size_t j = 0; j < x.size(); ++j)
            x[j] = static_cast<float>(
                rng.gaussian((c - 2) * 1.5, 0.4));
        pts.push_back(std::move(x));
    }
    const auto km = nn::KMeans::fit(pts, 5, 20, rng);
    const auto lowered = compiler::lowerKmeans(km, pts);
    ASSERT_EQ(lowered.graph.validate(), "");

    int agree = 0, total = 0;
    for (size_t i = 0; i < pts.size(); i += 7) {
        std::vector<int8_t> q(pts[i].size());
        for (size_t j = 0; j < q.size(); ++j)
            q[j] = static_cast<int8_t>(
                fixed::quantize(pts[i][j], lowered.input_qp));
        const int hw = dfg::evaluateSimple(lowered.graph, q).at(0);
        agree += (hw == km.predict(pts[i]));
        ++total;
    }
    // Input quantization can flip near-boundary points only.
    EXPECT_GE(agree, total * 9 / 10);
}

TEST(LowerRbf, QuantizedScoreTracksFloatScore)
{
    util::Rng rng(43);
    nn::Dataset data;
    for (int i = 0; i < 400; ++i) {
        nn::Vector x(8);
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian(i % 2 ? 0.8 : -0.8, 1.0));
        data.add(std::move(x), i % 2);
    }
    const auto rbf = nn::RbfNet::fit(data, 6, 15, 0.05f, rng);
    const auto lowered = compiler::lowerRbf(rbf, data.x);
    ASSERT_EQ(lowered.graph.validate(), "");

    int agree = 0;
    for (size_t i = 0; i < 100; ++i) {
        std::vector<int8_t> q(8);
        for (size_t j = 0; j < 8; ++j)
            q[j] = static_cast<int8_t>(
                fixed::quantize(data.x[i][j], lowered.input_qp));
        const int8_t code = dfg::evaluateSimple(lowered.graph, q).at(0);
        const int hw_pred = code > 0 ? 1 : 0;
        agree += (hw_pred == rbf.predict(data.x[i]));
    }
    EXPECT_GE(agree, 90);
}

TEST(LowerLstm, StructureAndOutputs)
{
    util::Rng rng(47);
    nn::Lstm lstm(5, 32, 5, rng);
    const auto g = compiler::lowerLstm(lstm);
    ASSERT_EQ(g.validate(), "");
    // Inputs: x (1 seg) + h (2 segs of 16) + c (2 segs).
    EXPECT_EQ(g.inputIds().size(), 5u);
    // Outputs: action (1 seg) + h' (2) + c' (2).
    EXPECT_EQ(g.outputIds().size(), 5u);
}

TEST(Compile, PackingReducesCuCount)
{
    util::Rng rng(53);
    const auto qm = smallQuantizedMlp(rng, {6, 12, 6, 3, 1});
    const auto g = compiler::lowerMlp(qm);

    compiler::Options packed;
    packed.enable_packing = true;
    compiler::Options unpacked;
    unpacked.enable_packing = false;

    const auto p1 = compiler::compile(g, packed);
    const auto p2 = compiler::compile(g, unpacked);
    EXPECT_LE(p1.cusUsed(), p2.cusUsed());
    EXPECT_EQ(p1.validate(), "");
    EXPECT_EQ(p2.validate(), "");

    // Packing must not change results.
    hw::CycleSim s1(p1), s2(p2);
    for (int t = 0; t < 20; ++t) {
        std::vector<int8_t> q(6);
        for (auto &v : q)
            v = static_cast<int8_t>(rng.uniformInt(-100, 100));
        EXPECT_EQ(s1.run({q}).outputs.at(0).lanes,
                  s2.run({q}).outputs.at(0).lanes);
    }
}

TEST(Compile, LstmFoldsOntoGrid)
{
    // The Indigo LSTM needs more CU slots than the 12x10 grid provides;
    // the compiler must fold it rather than fail.
    const auto zoo = models::buildIndigoLstm(3);
    const auto prog = compiler::compile(zoo.graph);
    EXPECT_EQ(prog.validate(), "");
    EXPECT_TRUE(prog.serialize_sharing);
    EXPECT_LE(prog.cusUsed(), prog.spec.cuCount());
}

TEST(Compile, ThrowsWhenGraphCannotFit)
{
    util::Rng rng(59);
    const auto zoo = models::buildIndigoLstm(3);
    compiler::Options opts;
    opts.max_contexts_per_cu = 1; // forbid folding
    opts.spec.rows = 4;
    opts.spec.cols = 4;
    EXPECT_ANY_THROW(compiler::compile(zoo.graph, opts));
}

TEST(Analyze, ReportsLineRateForSmallModels)
{
    util::Rng rng(61);
    const auto qm = smallQuantizedMlp(rng, {6, 12, 6, 3, 1});
    const auto rep =
        compiler::analyze(compiler::compile(compiler::lowerMlp(qm)));
    EXPECT_DOUBLE_EQ(rep.gpktps, 1.0);
    EXPECT_GT(rep.cus, 0);
    EXPECT_GT(rep.area_mm2, 0.0);
    EXPECT_GT(rep.latency_ns, 0.0);
    EXPECT_LT(rep.area_overhead_pct, 1.0); // well under the full grid
    EXPECT_FALSE(rep.folded);
}

TEST(Analyze, AppOrderingMatchesTable5)
{
    // KMeans < SVM < DNN << LSTM in latency; LSTM folded.
    const auto km = models::trainIotKmeans(2, 1200);
    const auto svm = models::trainAnomalySvm(2, 1200);
    const auto dnn = models::trainAnomalyDnn(2, 1200);
    const auto lstm = models::buildIndigoLstm(2);

    const auto r_km = compiler::analyze(compiler::compile(
        km.lowered.graph));
    const auto r_svm = compiler::analyze(compiler::compile(
        svm.lowered.graph));
    const auto r_dnn = compiler::analyze(compiler::compile(dnn.graph));
    const auto r_lstm = compiler::analyze(compiler::compile(lstm.graph));

    EXPECT_LT(r_km.latency_ns, r_svm.latency_ns);
    EXPECT_LT(r_svm.latency_ns, r_dnn.latency_ns);
    EXPECT_LT(r_dnn.latency_ns * 2, r_lstm.latency_ns);
    EXPECT_TRUE(r_lstm.folded);
    // All line-rate models hold 1 GPkt/s.
    EXPECT_DOUBLE_EQ(r_km.gpktps, 1.0);
    EXPECT_DOUBLE_EQ(r_svm.gpktps, 1.0);
    EXPECT_DOUBLE_EQ(r_dnn.gpktps, 1.0);
    EXPECT_LT(r_lstm.gpktps, 1.0);
}
