#include "runtime/model_store.hpp"

namespace taurus::runtime {

namespace {

/** FNV-1a over a byte range. */
uint64_t
fnv1a(const void *data, size_t n, uint64_t h)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

} // namespace

uint64_t
ModelStore::checksum(const dfg::Graph &g)
{
    uint64_t h = 0xcbf29ce484222325ull;
    for (const auto &n : g.nodes()) {
        h = fnv1a(n.weights.data(), n.weights.size(), h);
        h = fnv1a(&n.bias, sizeof(n.bias), h);
        h = fnv1a(n.lut.data(), n.lut.size(), h);
        h = fnv1a(n.imms.data(),
                  n.imms.size() * sizeof(n.imms[0]), h);
        const int32_t mantissa = n.requant.mantissa();
        const int exponent = n.requant.exponent();
        h = fnv1a(&mantissa, sizeof(mantissa), h);
        h = fnv1a(&exponent, sizeof(exponent), h);
    }
    return h;
}

void
ModelStore::publish(dfg::Graph g)
{
    auto snap = std::make_shared<ModelSnapshot>();
    snap->version = version_.load(std::memory_order_relaxed) + 1;
    snap->graph = std::move(g);
    snap->checksum = checksum(snap->graph);

    // Swap the frozen snapshot in first, then advance the version
    // counter: a reader that sees version N is guaranteed to load a
    // snapshot at least that new.
    std::atomic_store_explicit(
        &snap_, std::shared_ptr<const ModelSnapshot>(std::move(snap)),
        std::memory_order_release);
    version_.fetch_add(1, std::memory_order_release);
}

std::shared_ptr<const ModelSnapshot>
ModelStore::current() const
{
    return std::atomic_load_explicit(&snap_, std::memory_order_acquire);
}

} // namespace taurus::runtime
