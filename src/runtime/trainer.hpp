/**
 * @file
 * Streaming SGD over mirrored telemetry (the live counterpart of
 * cp::runOnlineTraining, which models the same loop offline).
 *
 * StreamingTrainer is the MLP implementation of the generic
 * core::AppTrainer interface — the trainer adapter an AppArtifact
 * carries. It warm-starts from the float model that is installed in
 * the data plane, dequantizes each mirrored sample's int8 feature
 * codes with the *installed* input quantization (the preprocessing
 * tables are fixed at install time, so codes are the ground truth of
 * what the model sees), and reuses the cp::OnlineTrainConfig minibatch
 * semantics: each update trains `epochs` chunked-SGD passes over the
 * fresh minibatch plus an equal-sized draw from a reservoir of retired
 * history, which keeps time-correlated bursts from collapsing the
 * streamed model. Labels are generic int class labels, so the same
 * trainer serves the binary anomaly DNN (labels 0/1, sigmoid head) and
 * the multi-class IoT classifier (labels 0..K-1, argmax head).
 *
 * snapshotGraph() re-quantizes against the pinned input scale and
 * lowers to a dataflow graph that is structurally identical to the
 * installed one — exactly what the weight-only update path requires.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cp/trainer.hpp"
#include "dfg/graph.hpp"
#include "models/zoo.hpp"
#include "nn/mlp.hpp"
#include "runtime/telemetry.hpp"
#include "taurus/app.hpp"
#include "util/rng.hpp"

namespace taurus::runtime {

/** Background trainer state: one instance, owned by the control loop. */
class StreamingTrainer : public core::AppTrainer
{
  public:
    /**
     * Generic constructor, the form AppArtifact trainer factories use.
     * `warm_model` is the float model installed in the data plane;
     * `input_qp` its pinned input quantization; `classifier_head`
     * selects the argmax-headed lowering (multi-class) over the plain
     * one (binary threshold), in which case `installed_out_scale` is
     * the output-scale contract the verdict table was burned with
     * (ignored for classifiers — argmax is scale-invariant).
     * `graph_name` names published weight-update graphs.
     */
    StreamingTrainer(nn::Mlp warm_model, fixed::QuantParams input_qp,
                     bool classifier_head, double installed_out_scale,
                     std::string graph_name, cp::OnlineTrainConfig cfg,
                     size_t reservoir_cap = 2048,
                     size_t calibration_cap = 256);

    /** Anomaly-DNN convenience constructor (legacy call sites). */
    StreamingTrainer(const models::AnomalyDnn &installed,
                     cp::OnlineTrainConfig cfg,
                     size_t reservoir_cap = 2048,
                     size_t calibration_cap = 256);

    /** Buffer one mirrored sample (dequantized feature codes + label). */
    void ingest(const TelemetrySample &s) override;

    /** True when a full minibatch is buffered. */
    bool
    minibatchReady() const override
    {
        return buf_x_.size() >= static_cast<size_t>(cfg_.batch);
    }

    /**
     * One streaming update: epochs of chunked SGD over exactly
     * cfg_.batch buffered samples plus a reservoir draw, then retire
     * that minibatch into the reservoir (any surplus stays buffered
     * for later steps, keeping per-step cost load-independent).
     * Requires minibatchReady().
     */
    void step() override;

    /**
     * Retire the buffered minibatch into the reservoir *without*
     * training. The idle (no-drift) mode of the runtime uses this so the
     * reservoir always holds recent history when drift does strike.
     */
    void absorb() override;

    /**
     * Quantize the current float model against the pinned input scale
     * and lower it to a weight-update graph. Requires at least one
     * ingested sample (the calibration window must be non-empty).
     */
    dfg::Graph snapshotGraph() const override;

    const nn::Mlp &model() const { return model_; }
    uint64_t steps() const override { return steps_; }
    uint64_t ingested() const { return ingested_; }
    size_t reservoirSize() const { return reservoir_x_.size(); }

  private:
    /** Move the first `count` buffered samples into the reservoir. */
    void retireMinibatch(size_t count);

    cp::OnlineTrainConfig cfg_;
    fixed::QuantParams input_qp_; ///< pinned from the installed model
    bool classifier_head_;        ///< argmax-headed lowering
    double installed_out_scale_;  ///< install-time verdict-scale contract
    std::string graph_name_;
    nn::Mlp model_;
    util::Rng rng_;

    std::vector<nn::Vector> buf_x_; ///< fresh minibatch
    std::vector<int> buf_y_;
    std::vector<nn::Vector> reservoir_x_; ///< retired history
    std::vector<int> reservoir_y_;
    size_t reservoir_cap_;

    // Rolling calibration window of recent inputs for re-quantization.
    std::vector<nn::Vector> calib_;
    size_t calib_cap_;
    size_t calib_next_ = 0;

    uint64_t steps_ = 0;
    uint64_t ingested_ = 0;
};

} // namespace taurus::runtime
