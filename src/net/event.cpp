#include "net/event.hpp"

#include <stdexcept>
#include <utility>

namespace taurus::net {

void
EventQueue::schedule(double time_s, Callback cb)
{
    if (time_s < now_)
        throw std::invalid_argument("EventQueue: scheduling in the past");
    heap_.push(Entry{time_s, seq_++, std::move(cb)});
}

void
EventQueue::scheduleIn(double delay_s, Callback cb)
{
    schedule(now_ + delay_s, std::move(cb));
}

bool
EventQueue::runNext()
{
    if (heap_.empty())
        return false;
    // priority_queue::top returns const&; the callback must be moved out
    // before pop, so copy the entry (callbacks are cheap shared state).
    Entry e = heap_.top();
    heap_.pop();
    now_ = e.time;
    ++executed_;
    e.cb();
    return true;
}

void
EventQueue::runUntil(double t_end_s)
{
    while (!heap_.empty() && heap_.top().time <= t_end_s) {
        if (!runNext())
            break;
    }
    if (now_ < t_end_s)
        now_ = t_end_s;
}

void
EventQueue::runAll()
{
    while (runNext()) {
    }
}

} // namespace taurus::net
