/**
 * @file
 * Anomaly detection, end to end: the paper's headline scenario
 * (Section 5.2.2). Runs the same trace and the same trained model
 * through the control-plane baseline and the Taurus data plane, then
 * demonstrates the out-of-band weight-update path (Figure 1).
 */

#include <iostream>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/experiment.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "=== Per-packet ML anomaly detection ===\n\n";
    const models::AnomalyDnn dnn = models::trainAnomalyDnn(1, 4000);

    net::KddConfig cfg;
    cfg.connections = 20000;
    net::KddGenerator gen(cfg, 42);
    const auto trace = gen.expandToPackets(gen.sampleConnections());
    std::cout << "Evaluation trace: " << trace.size() << " packets\n\n";

    const auto rows = core::runEndToEnd(trace, dnn, {1e-4, 1e-3});

    TablePrinter t({"Plane", "Sampling", "Detected %", "F1 x100",
                    "Reaction"});
    for (const auto &row : rows) {
        char rate[16];
        std::snprintf(rate, sizeof(rate), "1e%+.0f",
                      std::log10(row.baseline.sampling_rate));
        t.addRow({"control plane", rate,
                  TablePrinter::num(row.baseline.detected_pct, 3),
                  TablePrinter::num(row.baseline.f1_x100, 2),
                  TablePrinter::num(row.baseline.total_ms, 1) + " ms"});
    }
    t.addRow({"Taurus", "per-packet",
              TablePrinter::num(rows[0].taurus.detected_pct, 1),
              TablePrinter::num(rows[0].taurus.f1_x100, 1),
              TablePrinter::num(rows[0].taurus.mean_ml_latency_ns, 0) +
                  " ns"});
    t.print(std::cout);

    // The weight-update path: the control plane retrains and pushes new
    // weights without touching the placed program.
    std::cout << "\nPushing retrained weights (out-of-band update)...\n";
    core::TaurusSwitch sw;
    sw.installAnomalyModel(dnn);
    const models::AnomalyDnn retrained = models::trainAnomalyDnn(2, 4000);
    sw.updateWeights(retrained.graph);
    sw.reset();
    const auto after = core::runTaurus(trace, sw);
    std::cout << "Updated model live: F1 x100 = "
              << TablePrinter::num(after.f1_x100, 1)
              << " with zero reconfiguration downtime.\n";
    return 0;
}
