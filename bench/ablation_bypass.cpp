/**
 * @file
 * Ablation: the non-ML bypass path (Figure 6). With bypass enabled,
 * non-ML traffic pays only the MAT pipeline; with it disabled, every
 * packet crosses the MapReduce block and inherits its latency.
 */

#include "harness.hpp"

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/experiment.hpp"
#include "util/table.hpp"

TAURUS_BENCH(ablation_bypass, "Figure 6 ablation",
             "non-ML traffic bypass of the MapReduce block")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Ablation: non-ML traffic bypass (Figure 6)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(3000, 800));

    // A mixed trace: half the flows are non-IP/ICMP control traffic
    // that needs no ML decision.
    net::KddConfig cfg;
    cfg.connections = ctx.size(6000, 1000);
    net::KddGenerator gen(cfg, 17);
    auto trace = gen.expandToPackets(gen.sampleConnections());
    for (size_t i = 0; i < trace.size(); i += 2)
        trace[i].flow.proto = net::kProtoIcmp; // bypass-eligible

    TablePrinter t({"Config", "ML-path ns", "Bypass-path ns",
                    "Mean non-ML latency ns"});
    for (bool bypass : {true, false}) {
        core::SwitchConfig sc;
        sc.enable_bypass = bypass;
        core::TaurusSwitch sw(sc);
        sw.installAnomalyModel(dnn);

        util::RunningStat non_ml;
        for (const auto &pkt : trace) {
            const auto d = sw.process(pkt);
            if (pkt.flow.proto == net::kProtoIcmp)
                non_ml.add(d.latency_ns);
        }
        const std::string key =
            bypass ? "bypass_enabled" : "bypass_disabled";
        ctx.metric(key + "_ml_path_ns", sw.mlPathLatencyNs());
        ctx.metric(key + "_bypass_path_ns", sw.bypassPathLatencyNs());
        ctx.metric(key + "_mean_non_ml_ns", non_ml.mean());
        t.addRow({bypass ? "bypass enabled" : "bypass disabled",
                  TablePrinter::num(sw.mlPathLatencyNs(), 0),
                  TablePrinter::num(sw.bypassPathLatencyNs(), 0),
                  TablePrinter::num(non_ml.mean(), 0)});
    }
    t.print(os);

    os << "\n\"Packets that do not need an ML decision can bypass the "
          "MapReduce block, incurring no additional latency.\" "
          "Disabling the bypass charges every packet the full block "
          "latency.\n";
}
