/**
 * @file
 * Synthetic IoT traffic-classification datasets.
 *
 * Two datasets stand in for the paper's IoT workloads (DESIGN.md
 * Section 1):
 *
 *  - the Table 3 binary classifier set (4 features, 2 classes) with a
 *    controlled Bayes error so float32 DNN accuracy lands near the
 *    paper's 67% — Table 3's claim is about quantization loss, which is a
 *    property of the model/quantizer, not of the dataset identity;
 *  - the KMeans device-classification set (11 features, 5 categories,
 *    Section 5.1.2) used for the Table 5 IoT row and the classification
 *    example.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/features.hpp"
#include "nn/dataset.hpp"

namespace taurus::net {

/**
 * 4-feature, 2-class IoT set for the Table 3 quantization study. Class
 * means are separated by ~0.9 sigma along two informative dimensions
 * (the other two are noise), putting the Bayes accuracy near 67%.
 */
nn::Dataset iotBinaryDataset(size_t samples, uint64_t seed);

/**
 * 11-feature, 5-category device set for KMeans (per-device-type traffic
 * signatures: packet sizes, inter-arrival stats, port entropy, ...).
 * Clusters are separated enough for high clustering purity.
 */
nn::Dataset iotDeviceDataset(size_t samples, uint64_t seed);

// ---------------------------------------------------------------------
// Packet-level IoT device classification: the second end-to-end
// application served through the Taurus switch. A labeled packet trace
// (five device categories with distinct flow signatures) plus a
// 6-feature flow-level view that both the offline trainer and the
// switch's preprocessing MATs compute — the IoT counterpart of the
// KDD DNN's shared feature definition.
// ---------------------------------------------------------------------

/** Device categories of the packet-level IoT workload. */
constexpr int kIotClassCount = 5;

/** Human-readable device-category name (0..kIotClassCount-1). */
const char *iotClassName(int category);

/** Width of the IoT flow feature vector. */
constexpr size_t kIotFlowFeatureCount = 6;

/** Workload-shape knobs for the IoT trace generator. */
struct IotTraceConfig
{
    /** Flows (device sessions) to synthesize. */
    size_t sessions = 2500;
    /** Session start times spread over [0, duration_s]. */
    double duration_s = 8.0;
    /** Distinct source addresses (devices) per category. */
    int devices_per_class = 12;
    /**
     * Fraction of sessions that talk to a non-signature (cloud-sync)
     * port, so the classifier cannot reduce to a pure port lookup and
     * must lean on the size/volume/duration features.
     */
    double other_port_fraction = 0.30;
};

/**
 * Synthesize a time-sorted labeled packet trace: each session is one
 * flow from a device of a random category, with category-distinct
 * packet size, packet count, inter-packet gap, transport, and service
 * port. Every packet carries `class_label` = device category.
 */
std::vector<TracePacket> iotDeviceTrace(const IotTraceConfig &cfg,
                                        uint64_t seed);

/**
 * The 6-feature IoT flow vector for the most recent packet of a flow:
 * {log2 packet-size bin, protocol code, service code, log2 flow-packet
 * bin, log2 flow-byte bin, log2 flow-duration-ms bin}. Every feature is
 * computable by the switch's stateful preprocessing MATs; integration
 * tests assert the two implementations agree per packet.
 */
nn::Vector iotFlowFeatureVector(const FlowStats &flow,
                                const TracePacket &pkt, double now_s);

/**
 * Run the shared FlowTracker over a trace and emit every `stride`-th
 * packet's IoT features as a labeled example (label = device category).
 */
nn::Dataset iotPacketDataset(const std::vector<TracePacket> &trace,
                             size_t stride);

} // namespace taurus::net
