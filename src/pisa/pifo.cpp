#include "pisa/pifo.hpp"

#include <algorithm>

namespace taurus::pisa {

uint64_t
Pifo::rankOf(SchedPolicy policy, const Phv &phv, uint64_t seq)
{
    switch (policy) {
      case SchedPolicy::Fifo:
        return seq;
      case SchedPolicy::StrictPriority:
        // Priority in the top bits, arrival order below.
        return (static_cast<uint64_t>(phv.get(Field::Priority)) << 40) |
               (seq & ((uint64_t{1} << 40) - 1));
      case SchedPolicy::AnomalyLast:
        return (static_cast<uint64_t>(phv.get(Field::Decision) ? 1 : 0)
                << 40) |
               (seq & ((uint64_t{1} << 40) - 1));
    }
    return seq;
}

bool
Pifo::push(uint64_t rank, Packet pkt, Phv phv)
{
    if (heap_.size() >= capacity_) {
        ++drops_;
        return false;
    }
    PifoItem item;
    item.rank = rank;
    item.seq = seq_++;
    item.pkt = std::move(pkt);
    item.phv = std::move(phv);
    heap_.push_back(std::move(item));
    std::push_heap(heap_.begin(), heap_.end(), later);
    max_occupancy_ = std::max(max_occupancy_, heap_.size());
    return true;
}

PifoItem
Pifo::pop()
{
    std::pop_heap(heap_.begin(), heap_.end(), later);
    PifoItem top = std::move(heap_.back());
    heap_.pop_back();
    return top;
}

} // namespace taurus::pisa
