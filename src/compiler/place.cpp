#include "compiler/place.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <numeric>
#include <set>
#include <sstream>
#include <stdexcept>

namespace taurus::compiler {

using hw::Coord;
using hw::GridSpec;
using hw::Region;
using hw::UnitKind;

namespace {

struct CoordLess
{
    bool
    operator()(const Coord &a, const Coord &b) const
    {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    }
};

/** Units a program actually occupies (CU ops, lookup MUs, weight MUs). */
std::set<Coord, CoordLess>
unitsUsed(const hw::GridProgram &prog)
{
    std::set<Coord, CoordLess> used;
    for (const auto &n : prog.graph.nodes())
        if (dfg::Graph::isCuOp(n) || dfg::Graph::isMuOp(n))
            used.insert(prog.place[static_cast<size_t>(n.id)]);
    for (const auto &c : prog.weight_mus)
        used.insert(c);
    return used;
}

/** A placement candidate: tenant visit order + per-tenant band width
 *  (indexed in visit order). Bands are laid left to right. */
struct Candidate
{
    std::vector<int> order;
    std::vector<int> widths;
};

/** Worst-case objective, compared lexicographically: first the slowest
 *  tenant's II (line-rate survival), then the worst latency, then the
 *  total latency as a tie-breaker so the search keeps improving the
 *  average once the worst case is settled. */
struct Objective
{
    int worst_ii = 0;
    double worst_latency_ns = 0.0;
    double total_latency_ns = 0.0;

    bool
    betterThan(const Objective &o) const
    {
        if (worst_ii != o.worst_ii)
            return worst_ii < o.worst_ii;
        if (worst_latency_ns != o.worst_latency_ns)
            return worst_latency_ns < o.worst_latency_ns;
        return total_latency_ns < o.total_latency_ns;
    }
};

/** One evaluated candidate: the placed programs (input order) plus the
 *  schedules and the objective. */
struct Evaluated
{
    bool feasible = false;
    std::vector<hw::GridProgram> programs;  ///< input order
    std::vector<hw::Schedule> schedules;    ///< input order
    Objective objective;
    std::string why;
};

Evaluated
evaluate(const std::vector<const dfg::Graph *> &graphs,
         const Candidate &cand, const Options &base)
{
    Evaluated ev;
    ev.programs.resize(graphs.size());
    ev.schedules.resize(graphs.size());
    int col = 0;
    for (size_t i = 0; i < cand.order.size(); ++i) {
        const int tenant = cand.order[i];
        Options opts = base;
        opts.region.col_begin = col;
        opts.region.col_end = col + cand.widths[i];
        col += cand.widths[i];
        try {
            ev.programs[static_cast<size_t>(tenant)] =
                compile(*graphs[static_cast<size_t>(tenant)], opts);
        } catch (const std::invalid_argument &e) {
            ev.why = "tenant " + std::to_string(tenant) + " ('" +
                     graphs[static_cast<size_t>(tenant)]->name +
                     "') does not fit columns [" +
                     std::to_string(opts.region.col_begin) + "," +
                     std::to_string(opts.region.col_end) +
                     "): " + e.what();
            return ev;
        }
        ev.schedules[static_cast<size_t>(tenant)] =
            hw::CycleSim::compileSchedule(
                ev.programs[static_cast<size_t>(tenant)]);
    }
    for (const auto &s : ev.schedules) {
        ev.objective.worst_ii = std::max(ev.objective.worst_ii,
                                         s.ii_cycles);
        ev.objective.worst_latency_ns =
            std::max(ev.objective.worst_latency_ns, s.latency_ns);
        ev.objective.total_latency_ns += s.latency_ns;
    }
    ev.feasible = true;
    return ev;
}

/** Minimal band widths, laid left to right in candidate order: each
 *  band grows until it holds the tenant's private CU and MU demand.
 *  Returns false (with `why`) when the grid runs out of columns. */
bool
minimalWidths(const GridSpec &spec, const std::vector<int> &order,
              const std::vector<int> &cu_demand,
              const std::vector<int> &mu_demand, std::vector<int> &widths,
              std::string &why)
{
    widths.assign(order.size(), 0);
    int col = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        const int tenant = order[i];
        int cus = 0, mus = 0, w = 0;
        while (col + w < spec.cols &&
               (cus < cu_demand[static_cast<size_t>(tenant)] ||
                mus < mu_demand[static_cast<size_t>(tenant)] || w == 0)) {
            cus += spec.countInColumn(UnitKind::Cu, col + w);
            mus += spec.countInColumn(UnitKind::Mu, col + w);
            ++w;
        }
        if (cus < cu_demand[static_cast<size_t>(tenant)] ||
            mus < mu_demand[static_cast<size_t>(tenant)]) {
            why = "tenant " + std::to_string(tenant) + " needs " +
                  std::to_string(cu_demand[static_cast<size_t>(tenant)]) +
                  " CUs / " +
                  std::to_string(mu_demand[static_cast<size_t>(tenant)]) +
                  " MUs but only " + std::to_string(spec.cols - col) +
                  " columns remain";
            return false;
        }
        widths[i] = w;
        col += w;
    }
    return true;
}

/** Distribute leftover columns proportionally to CU demand (largest
 *  remainder, deterministic tie-break by visit order). */
void
distributeLeftover(const GridSpec &spec, const std::vector<int> &order,
                   const std::vector<int> &cu_demand,
                   std::vector<int> &widths)
{
    int used = std::accumulate(widths.begin(), widths.end(), 0);
    int leftover = spec.cols - used;
    if (leftover <= 0)
        return;
    double total_demand = 0;
    for (int t : order)
        total_demand += cu_demand[static_cast<size_t>(t)];
    if (total_demand <= 0) {
        widths[0] += leftover;
        return;
    }
    // Whole shares first, then largest fractional remainder.
    std::vector<double> share(order.size());
    for (size_t i = 0; i < order.size(); ++i)
        share[i] = leftover *
                   (cu_demand[static_cast<size_t>(order[i])] /
                    total_demand);
    int given = 0;
    for (size_t i = 0; i < order.size(); ++i) {
        const int whole = static_cast<int>(share[i]);
        widths[i] += whole;
        share[i] -= whole;
        given += whole;
    }
    std::vector<size_t> by_rem(order.size());
    std::iota(by_rem.begin(), by_rem.end(), size_t{0});
    std::stable_sort(by_rem.begin(), by_rem.end(),
                     [&](size_t a, size_t b) {
                         return share[a] > share[b];
                     });
    for (size_t k = 0; given < leftover; ++k, ++given)
        ++widths[by_rem[k % by_rem.size()]];
}

} // namespace

std::string
validateDisjoint(const std::vector<const hw::GridProgram *> &programs)
{
    if (programs.empty())
        return "no programs";
    std::map<Coord, size_t, CoordLess> owner;
    for (size_t i = 0; i < programs.size(); ++i) {
        const hw::GridProgram *p = programs[i];
        if (!p)
            return "null program";
        if (p->spec != programs.front()->spec)
            return "program " + std::to_string(i) +
                   " compiled against a different GridSpec";
        const std::string err = p->validate();
        if (!err.empty())
            return "program " + std::to_string(i) + " invalid: " + err;
        for (const Coord &c : unitsUsed(*p)) {
            const auto [it, fresh] = owner.emplace(c, i);
            if (!fresh)
                return "unit (" + std::to_string(c.row) + "," +
                       std::to_string(c.col) + ") used by programs " +
                       std::to_string(it->second) + " and " +
                       std::to_string(i);
        }
    }
    return "";
}

std::string
PlacementReport::summary() const
{
    std::ostringstream os;
    os << (spatial ? "spatial" : "private (time-multiplexed)")
       << " placement on one " << spec.rows << "x" << spec.cols
       << " grid (" << spec.cuCount() << " CUs / " << spec.muCount()
       << " MUs), " << tenants.size() << " tenant"
       << (tenants.size() == 1 ? "" : "s");
    if (spatial)
        os << ", worst latency " << worst_latency_ns << " ns, worst II "
           << worst_ii_cycles << ", search " << search_rounds
           << " rounds / " << search_moves << " moves";
    else if (!why.empty())
        os << " (" << why << ")";
    os << "\n";
    for (size_t i = 0; i < tenants.size(); ++i) {
        const TenantRegion &t = tenants[i];
        os << "  [" << i << "] " << t.name;
        if (spatial)
            os << "  cols " << t.region.col_begin << ".."
               << t.region.endFor(spec.cols) - 1;
        os << "  cus " << t.cus << "  mus " << t.mus << "  latency "
           << t.latency_ns << " ns (solo " << t.solo_latency_ns
           << ")  II " << t.ii_cycles << " (solo " << t.solo_ii_cycles
           << ")" << (t.folded ? "  [folded]" : "") << "\n";
    }
    return os.str();
}

MultiAppPlacement
placeApps(const std::vector<const dfg::Graph *> &graphs,
          const PlaceOptions &opts)
{
    if (graphs.empty())
        throw std::invalid_argument("placeApps: no graphs");
    for (const dfg::Graph *g : graphs)
        if (!g)
            throw std::invalid_argument("placeApps: null graph");

    const GridSpec &spec = opts.compile.spec;
    MultiAppPlacement out;
    out.report.spec = spec;
    out.report.tenants.resize(graphs.size());

    // Private (whole-grid) references: the contention baseline, and the
    // demand estimate the greedy column packing is sized from. A tenant
    // that cannot compile even privately cannot fit any band either.
    Options solo_opts = opts.compile;
    solo_opts.region = Region{};
    std::vector<int> cu_demand(graphs.size(), 0);
    std::vector<int> mu_demand(graphs.size(), 0);
    for (size_t i = 0; i < graphs.size(); ++i) {
        TenantRegion &t = out.report.tenants[i];
        t.name = graphs[i]->name;
        try {
            const hw::GridProgram solo = compile(*graphs[i], solo_opts);
            const hw::Schedule sched =
                hw::CycleSim::compileSchedule(solo);
            cu_demand[i] = solo.cusUsed();
            mu_demand[i] = solo.musUsed();
            t.solo_latency_ns = sched.latency_ns;
            t.solo_ii_cycles = sched.ii_cycles;
        } catch (const std::invalid_argument &e) {
            out.report.why = "tenant " + std::to_string(i) + " ('" +
                             graphs[i]->name +
                             "') does not fit the grid even privately: " +
                             e.what();
            return out;
        }
    }

    // ---- Greedy column packing. ----
    // Visit order: descending CU demand (largest tenant gets first pick
    // of contiguous columns), stable on input order for determinism.
    Candidate cand;
    cand.order.resize(graphs.size());
    std::iota(cand.order.begin(), cand.order.end(), 0);
    std::stable_sort(cand.order.begin(), cand.order.end(),
                     [&](int a, int b) {
                         return cu_demand[static_cast<size_t>(a)] >
                                cu_demand[static_cast<size_t>(b)];
                     });
    if (!minimalWidths(spec, cand.order, cu_demand, mu_demand,
                       cand.widths, out.report.why))
        return out;
    distributeLeftover(spec, cand.order, cu_demand, cand.widths);

    Evaluated best = evaluate(graphs, cand, opts.compile);
    if (!best.feasible) {
        // The greedy estimate can undershoot (folding or weight-MU
        // demand differs inside a narrow band); widening pass: give the
        // failing layout one more sweep with minimal widths only.
        Candidate minimal = cand;
        std::string dummy;
        minimalWidths(spec, minimal.order, cu_demand, mu_demand,
                      minimal.widths, dummy);
        best = evaluate(graphs, minimal, opts.compile);
        if (!best.feasible) {
            out.report.why = best.why;
            return out;
        }
        cand = minimal;
    }

    // ---- Homunculus-style local search. ----
    // Deterministic hill climbing: every sweep evaluates all adjacent
    // order swaps and all one-column boundary shifts, takes the best
    // improving move, and stops when no move improves the worst-case
    // (II, latency) objective.
    int rounds = 0, moves = 0;
    for (; rounds < opts.search_rounds; ++rounds) {
        Candidate best_move;
        Evaluated best_move_ev;
        bool improved = false;

        auto consider = [&](const Candidate &c) {
            Evaluated ev = evaluate(graphs, c, opts.compile);
            if (!ev.feasible)
                return;
            if (ev.objective.betterThan(best.objective) &&
                (!improved ||
                 ev.objective.betterThan(best_move_ev.objective))) {
                best_move = c;
                best_move_ev = std::move(ev);
                improved = true;
            }
        };

        for (size_t i = 0; i + 1 < cand.order.size(); ++i) {
            // Swap two adjacent tenants (widths travel with the band
            // slot, not the tenant, so the column split is re-used).
            Candidate c = cand;
            std::swap(c.order[i], c.order[i + 1]);
            std::swap(c.widths[i], c.widths[i + 1]);
            consider(c);
            // Shift one boundary column each way.
            if (cand.widths[i] > 1) {
                Candidate shift = cand;
                --shift.widths[i];
                ++shift.widths[i + 1];
                consider(shift);
            }
            if (cand.widths[i + 1] > 1) {
                Candidate shift = cand;
                ++shift.widths[i];
                --shift.widths[i + 1];
                consider(shift);
            }
        }
        if (!improved)
            break;
        cand = best_move;
        best = std::move(best_move_ev);
        ++moves;
    }

    // ---- Commit: programs in input (AppId) order + the report. ----
    out.fits = true;
    out.programs = std::move(best.programs);
    out.report.spatial = true;
    out.report.search_rounds = rounds;
    out.report.search_moves = moves;
    out.report.min_gpktps = std::numeric_limits<double>::infinity();
    for (size_t i = 0; i < graphs.size(); ++i) {
        TenantRegion &t = out.report.tenants[i];
        const hw::GridProgram &p = out.programs[i];
        const hw::Schedule &s = best.schedules[i];
        t.region = p.region;
        t.cus = p.cusUsed();
        t.mus = p.musUsed();
        t.folded = p.serialize_sharing;
        t.latency_cycles = s.latency_cycles;
        t.latency_ns = s.latency_ns;
        t.ii_cycles = s.ii_cycles;
        t.gpktps = s.gpktps;
        out.report.total_cus += t.cus;
        out.report.total_mus += t.mus;
        out.report.worst_latency_ns =
            std::max(out.report.worst_latency_ns, t.latency_ns);
        out.report.worst_ii_cycles =
            std::max(out.report.worst_ii_cycles, t.ii_cycles);
        out.report.min_gpktps = std::min(out.report.min_gpktps, t.gpktps);
        out.report.worst_contention_ns =
            std::max(out.report.worst_contention_ns, t.contentionNs());
    }
    return out;
}

} // namespace taurus::compiler
