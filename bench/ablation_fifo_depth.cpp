/**
 * @file
 * Ablation: PHV-interface FIFO depth and interconnect synchronization
 * cost — the latency model's two knobs (DESIGN.md Section 4). Sweeps
 * the staging FIFO depth and the per-movement handshake *through
 * SwitchConfig*: the DNN column is the MapReduce latency of a real
 * TaurusSwitch built with that config (the number every processed
 * packet pays), and the KMeans column compiles against the identical
 * `cfg.compiler` options the switch consumes.
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "taurus/switch.hpp"
#include "util/table.hpp"

TAURUS_BENCH(ablation_fifo_depth, "Table 6 ablation",
             "interface FIFO depth and synchronization-cost sweep")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Ablation: interface FIFO depth and per-movement "
          "synchronization cost\n\n";

    const size_t conns = ctx.size(3000, 800);
    const auto dnn = models::trainAnomalyDnn(1, conns);
    const auto km = models::trainIotKmeans(1, conns);

    TablePrinter t({"FIFO depth", "Route sync", "KMeans ns", "DNN ns"});
    for (int fifo : {2, 4, 8}) {
        for (int sync : {2, 4, 6}) {
            core::SwitchConfig cfg;
            cfg.compiler.timing.ingress_cycles = fifo;
            cfg.compiler.timing.egress_cycles = fifo;
            cfg.compiler.timing.route_base = sync;

            // The DNN number is what a switch built from this config
            // actually charges ML packets, not a side compile.
            core::TaurusSwitch sw(cfg);
            sw.installAnomalyModel(dnn);
            const double dnn_ns = sw.mapReduceLatencyNs();

            const auto r_km = compiler::analyze(
                compiler::compile(km.lowered.graph, cfg.compiler));
            if (fifo == 4 && sync == 4) {
                ctx.metric("default_kmeans_latency_ns",
                           r_km.latency_ns);
                ctx.metric("default_dnn_latency_ns", dnn_ns);
            }
            t.addRow({std::to_string(fifo), std::to_string(sync),
                      TablePrinter::num(r_km.latency_ns, 0),
                      TablePrinter::num(dnn_ns, 0)});
        }
    }
    t.print(os);

    os << "\nThe deep model amplifies the per-movement cost (more "
          "producer->consumer edges on the critical path); the "
          "interface FIFOs are a constant.\nThe calibrated defaults "
          "(depth 4, sync 4) reproduce Table 6.\n";
}
