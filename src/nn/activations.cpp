#include "nn/activations.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace taurus::nn {

std::string
toString(Activation a)
{
    switch (a) {
      case Activation::None: return "none";
      case Activation::Relu: return "relu";
      case Activation::LeakyRelu: return "leaky_relu";
      case Activation::Sigmoid: return "sigmoid";
      case Activation::Tanh: return "tanh";
      case Activation::Softmax: return "softmax";
    }
    return "?";
}

double
activationScalar(Activation a, double x)
{
    switch (a) {
      case Activation::None:
        return x;
      case Activation::Relu:
        return x > 0 ? x : 0;
      case Activation::LeakyRelu:
        return x > 0 ? x : x / 8.0;
      case Activation::Sigmoid:
        return 1.0 / (1.0 + std::exp(-x));
      case Activation::Tanh:
        return std::tanh(x);
      case Activation::Softmax:
        assert(false && "softmax is not a scalar function");
        return x;
    }
    return x;
}

Vector
applyActivation(Activation a, const Vector &z)
{
    Vector y(z.size());
    if (a == Activation::Softmax) {
        const float zmax = *std::max_element(z.begin(), z.end());
        float sum = 0.0f;
        for (size_t i = 0; i < z.size(); ++i) {
            y[i] = std::exp(z[i] - zmax);
            sum += y[i];
        }
        for (float &v : y)
            v /= sum;
        return y;
    }
    for (size_t i = 0; i < z.size(); ++i)
        y[i] = static_cast<float>(activationScalar(a, z[i]));
    return y;
}

Vector
activationGrad(Activation a, const Vector &z, const Vector &y)
{
    Vector g(z.size(), 1.0f);
    switch (a) {
      case Activation::None:
        break;
      case Activation::Relu:
        for (size_t i = 0; i < z.size(); ++i)
            g[i] = z[i] > 0 ? 1.0f : 0.0f;
        break;
      case Activation::LeakyRelu:
        for (size_t i = 0; i < z.size(); ++i)
            g[i] = z[i] > 0 ? 1.0f : 0.125f;
        break;
      case Activation::Sigmoid:
        for (size_t i = 0; i < z.size(); ++i)
            g[i] = y[i] * (1.0f - y[i]);
        break;
      case Activation::Tanh:
        for (size_t i = 0; i < z.size(); ++i)
            g[i] = 1.0f - y[i] * y[i];
        break;
      case Activation::Softmax:
        assert(false && "softmax grad is fused with cross-entropy");
        break;
    }
    return g;
}

} // namespace taurus::nn
