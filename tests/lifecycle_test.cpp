/**
 * Tenant-lifecycle regression tests (ISSUE 7): remove/replace on the
 * switch, the farm, and the online runtime — under live traffic —
 * with RCU-style quiescent-state reclamation, all-or-nothing admission
 * on every mutation, typed error contracts, extended dispatch keys
 * (ingress port + 802.1Q VLAN id), and per-tenant stale-telemetry
 * accounting that survives the tenant itself.
 *
 * CI builds this suite a second time under -DTAURUS_SANITIZE=thread:
 * the concurrent-churn test is the racing ground for the directory /
 * op-log / QSBR machinery, and TSan is the authority on whether a
 * lifecycle mutation races the packet path.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/quantized.hpp"
#include "compiler/lower.hpp"
#include "runtime/rcu.hpp"
#include "runtime/runtime.hpp"
#include "taurus/app.hpp"
#include "taurus/experiment.hpp"
#include "taurus/farm.hpp"
#include "taurus/switch.hpp"

using namespace taurus;

namespace {

/** An untrained MLP graph sized past the grid (admission fault). */
dfg::Graph
hugeGraph()
{
    util::Rng rng(7);
    nn::Dataset data;
    for (int i = 0; i < 64; ++i) {
        nn::Vector x(6);
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian(0, 1));
        data.add(std::move(x), i % 2);
    }
    nn::Mlp mlp({6, 128, 128, 1}, nn::Activation::Relu,
                nn::Loss::BinaryCrossEntropy, rng);
    const auto qm = nn::QuantizedMlp::fromFloat(mlp, data.x);
    return compiler::lowerMlp(qm, "huge_mlp");
}

/**
 * Remap a KDD trace's sources into 172.16/12, injectively: 10.0.x.x
 * hosts land in 172.16/16, the 12.0.0.0+2^20 spoofed-flood range lands
 * in 172.24/13 — distinct sources stay distinct, so flow structure is
 * preserved exactly.
 */
std::vector<net::TracePacket>
remapTo172(std::vector<net::TracePacket> trace)
{
    for (auto &tp : trace) {
        const uint32_t src = tp.flow.src_ip;
        tp.flow.src_ip = (src >> 24) == 0x0Au
                             ? 0xAC100000u | (src & 0x0000FFFFu)
                             : 0xAC180000u | (src & 0x000FFFFFu);
    }
    return trace;
}

/** Trained models + traces, built once per process. */
struct Fixture
{
    models::AnomalyDnn dnn = models::trainAnomalyDnn(5, 1500);
    models::IotFlowMlp iot = models::trainIotFlowMlp(1, 1200);
    std::vector<net::TracePacket> kdd_trace; ///< 10.x sources
    std::vector<net::TracePacket> merged;    ///< kdd + iot by time
    dfg::Graph huge = hugeGraph();

    Fixture()
    {
        net::KddConfig cfg;
        cfg.connections = 1200;
        net::KddGenerator gen(cfg, 42);
        kdd_trace = gen.expandToPackets(gen.sampleConnections());
        merged = core::mergeTracesByTime(kdd_trace, iot.eval_trace);
    }
};

const Fixture &
fixture()
{
    static const Fixture fx;
    return fx;
}

/** KDD packets sourced inside 10/8 (the rest are 12.x spoofed floods
 *  that fall to the dispatch default, not to a 10/8 claimer). */
size_t
kddTenSlashEight()
{
    size_t n = 0;
    for (const auto &tp : fixture().kdd_trace)
        if ((tp.flow.src_ip >> 24) == 0x0Au)
            ++n;
    return n;
}

/** Anomaly artifact that *claims* 10/8 sources (instead of relying on
 *  being the dispatch default). */
core::AppArtifact
anomalyClaiming10(const std::string &name = "anomaly_10_8")
{
    core::AppArtifact app = core::makeAnomalyDnnApp(fixture().dnn);
    app.name = name;
    core::DispatchRule r;
    r.src_ip = 0x0A000000u;
    r.src_ip_mask = 0xFF000000u;
    r.priority = 1;
    app.dispatch = {r};
    return app;
}

/** Anomaly artifact with no rules: the sink/default tenant. */
core::AppArtifact
sinkApp(const std::string &name = "sink")
{
    core::AppArtifact app = core::makeAnomalyDnnApp(fixture().dnn);
    app.name = name;
    return app;
}

void
expectSameValues(const core::SwitchDecision &a,
                 const core::SwitchDecision &b, size_t i)
{
    EXPECT_EQ(a.flagged, b.flagged) << "packet " << i;
    EXPECT_EQ(a.dropped, b.dropped) << "packet " << i;
    EXPECT_EQ(a.bypassed, b.bypassed) << "packet " << i;
    EXPECT_EQ(a.score, b.score) << "packet " << i;
    EXPECT_EQ(a.class_id, b.class_id) << "packet " << i;
    EXPECT_EQ(a.egress_port, b.egress_port) << "packet " << i;
    EXPECT_EQ(a.feature_count, b.feature_count) << "packet " << i;
    EXPECT_EQ(a.features, b.features) << "packet " << i;
}

} // namespace

// ---------------------------------------------------------------------
// QSBR domain
// ---------------------------------------------------------------------

TEST(Qsbr, ReclaimsOnlyAfterEveryOnlineReaderQuiesces)
{
    runtime::QsbrReclaimer rcu(2);
    int freed = 0;

    // Reader 0 online inside the current epoch; reader 1 offline.
    rcu.online(0);
    rcu.retire([&]() { ++freed; });
    EXPECT_EQ(rcu.retired(), 1u);
    EXPECT_EQ(rcu.tryReclaim(), 0u); // reader 0 may still hold refs
    EXPECT_EQ(freed, 0);

    // Reader 1 coming online *after* the retire does not delay it
    // (it can only have seen the new state).
    rcu.online(1);
    EXPECT_EQ(rcu.tryReclaim(), 0u); // reader 0 still pre-retire

    rcu.quiesce(0); // now announces a post-retire epoch
    EXPECT_EQ(rcu.tryReclaim(), 1u);
    EXPECT_EQ(freed, 1);
    EXPECT_EQ(rcu.reclaimed(), 1u);

    // Offline readers never delay anything.
    rcu.offline(0);
    rcu.offline(1);
    rcu.retire([&]() { ++freed; });
    rcu.retire([&]() { ++freed; });
    EXPECT_EQ(rcu.tryReclaim(), 2u);
    EXPECT_EQ(freed, 3);
    EXPECT_EQ(rcu.retired(), rcu.reclaimed());
}

TEST(Qsbr, RetirementsDrainInOrderAcrossEpochs)
{
    runtime::QsbrReclaimer rcu(1);
    std::vector<int> order;
    rcu.online(0);
    rcu.retire([&]() { order.push_back(1); });
    rcu.quiesce(0);
    rcu.retire([&]() { order.push_back(2); });
    // Only the first retirement is past reader 0's announcement.
    EXPECT_EQ(rcu.tryReclaim(), 1u);
    ASSERT_EQ(order.size(), 1u);
    EXPECT_EQ(order[0], 1);
    rcu.quiesce(0);
    EXPECT_EQ(rcu.tryReclaim(), 1u);
    ASSERT_EQ(order.size(), 2u);
    EXPECT_EQ(order[1], 2);
}

// ---------------------------------------------------------------------
// Switch-level lifecycle
// ---------------------------------------------------------------------

TEST(Lifecycle, SwitchRemoveTombstonesSlotAndNeverReusesIds)
{
    const auto &fx = fixture();
    core::TaurusSwitch sw;
    const core::AppId a = sw.installApp(sinkApp());
    const core::AppId b = sw.installApp(core::makeIotFlowApp(fx.iot));
    EXPECT_EQ(sw.appCount(), 2u);

    const core::RetiredTenant retired = sw.removeApp(b);
    EXPECT_NE(retired, nullptr); // the caller owns the old state block
    EXPECT_EQ(sw.appCount(), 1u);
    EXPECT_EQ(sw.slotCount(), 2u); // tombstone keeps the slot
    EXPECT_FALSE(sw.installed(b));
    EXPECT_TRUE(sw.installed(a));
    EXPECT_EQ(sw.appIds(), std::vector<core::AppId>{a});

    // Tombstoned ids answer with the typed lifecycle error; ids past
    // the slot space stay out_of_range.
    EXPECT_THROW(sw.stats(b), core::LifecycleError);
    EXPECT_THROW((void)sw.appName(b), core::LifecycleError);
    EXPECT_THROW(sw.removeApp(b), core::LifecycleError);
    EXPECT_THROW(sw.stats(9), std::out_of_range);
    EXPECT_THROW(sw.removeApp(9), std::out_of_range);

    // The removed tenant's traffic falls to the default; no packet can
    // reach a tombstone.
    EXPECT_EQ(sw.process(fx.iot.eval_trace.front()).app_id, a);

    // Reinstall allocates a NEW id — install-order identity.
    const core::AppId again =
        sw.installApp(core::makeIotFlowApp(fx.iot));
    EXPECT_EQ(again, 2u);
    EXPECT_EQ(sw.slotCount(), 3u);
    EXPECT_EQ(sw.process(fx.iot.eval_trace.front()).app_id, again);
}

TEST(Lifecycle, RemovingDefaultThrowsUntilRepointed)
{
    const auto &fx = fixture();
    core::TaurusSwitch sw;
    const core::AppId a = sw.installApp(sinkApp());
    const core::AppId b = sw.installApp(core::makeIotFlowApp(fx.iot));
    ASSERT_EQ(sw.defaultApp(), a);

    // Removing the dispatch default while another tenant remains would
    // dangle the MAT's default pointer — typed error, nothing changes.
    EXPECT_THROW(sw.removeApp(a), core::LifecycleError);
    EXPECT_TRUE(sw.installed(a));
    EXPECT_EQ(sw.appCount(), 2u);

    sw.setDefaultApp(b);
    EXPECT_NO_THROW(sw.removeApp(a));
    EXPECT_EQ(sw.defaultApp(), b);
    EXPECT_EQ(sw.process(fx.kdd_trace.front()).app_id, b);

    // Removing the LAST tenant is always allowed and resets the switch
    // to its empty state.
    sw.removeApp(b);
    EXPECT_EQ(sw.appCount(), 0u);
    EXPECT_THROW(sw.process(fx.kdd_trace.front()), std::logic_error);
    // ...from which installs work again, still never reusing ids.
    EXPECT_EQ(sw.installApp(sinkApp()), 2u);
}

TEST(Lifecycle, RemoveLeavesSurvivorDecisionsBitIdentical)
{
    // The tentpole decision-isolation claim: removing tenant B mid
    // trace leaves tenant A's decisions bit-identical to a run where B
    // was never installed. A sink default absorbs B's orphaned traffic
    // so A's packet stream is the same in both runs by construction.
    const auto &fx = fixture();
    const size_t half = fx.merged.size() / 2;

    auto run = [&](bool churn) {
        core::TaurusSwitch sw;
        sw.installApp(sinkApp());                        // id 0, default
        const core::AppId a = sw.installApp(anomalyClaiming10()); // id 1
        core::AppId b = 2;
        if (churn)
            b = sw.installApp(core::makeIotFlowApp(fx.iot));
        std::vector<core::SwitchDecision> a_decisions;
        for (size_t i = 0; i < fx.merged.size(); ++i) {
            if (churn && i == half)
                sw.removeApp(b);
            const auto d = sw.process(fx.merged[i]);
            if (d.app_id == a)
                a_decisions.push_back(d);
        }
        return a_decisions;
    };

    const auto with_churn = run(true);
    const auto without = run(false);
    ASSERT_EQ(with_churn.size(), without.size());
    ASSERT_EQ(with_churn.size(), kddTenSlashEight());
    for (size_t i = 0; i < with_churn.size(); ++i)
        expectSameValues(without[i], with_churn[i], i);
}

TEST(Lifecycle, ReplaceSwapsInPlaceUnderTheSameId)
{
    const auto &fx = fixture();
    core::TaurusSwitch sw;
    sw.installApp(sinkApp());
    const core::AppId a = sw.installApp(anomalyClaiming10());
    const core::AppId b = sw.installApp(core::makeIotFlowApp(fx.iot));

    // Half the trace on the old incarnation...
    const size_t half = fx.merged.size() / 2;
    std::vector<core::SwitchDecision> a_before;
    for (size_t i = 0; i < half; ++i) {
        const auto d = sw.process(fx.merged[i]);
        if (d.app_id == a)
            a_before.push_back(d);
    }
    // ...then swap B for a structurally different artifact in place.
    core::AppArtifact swap = sinkApp("iot_successor");
    const core::RetiredTenant old = sw.replaceApp(b, swap);
    EXPECT_NE(old, nullptr);
    EXPECT_EQ(sw.appCount(), 3u);
    EXPECT_TRUE(sw.installed(b));
    EXPECT_EQ(sw.appName(b), "iot_successor");
    EXPECT_EQ(sw.verdictKind(b), core::VerdictKind::BinaryThreshold);
    // The replacement starts cold.
    EXPECT_EQ(sw.stats(b).packets, 0u);

    // The successor has no dispatch rules, so B's old traffic falls to
    // the default — and tenant A keeps deciding bit-identically (same
    // packets, untouched registers) through the swap.
    std::vector<core::SwitchDecision> a_after;
    for (size_t i = half; i < fx.merged.size(); ++i) {
        const auto d = sw.process(fx.merged[i]);
        if (d.app_id == a)
            a_after.push_back(d);
    }
    EXPECT_EQ(a_before.size() + a_after.size(), kddTenSlashEight());

    core::TaurusSwitch quiet;
    quiet.installApp(sinkApp());
    const core::AppId qa = quiet.installApp(anomalyClaiming10());
    quiet.installApp(core::makeIotFlowApp(fx.iot));
    size_t k = 0;
    for (const auto &tp : fx.merged) {
        const auto d = quiet.process(tp);
        if (d.app_id != qa)
            continue;
        const auto &got = k < a_before.size()
                              ? a_before[k]
                              : a_after[k - a_before.size()];
        expectSameValues(d, got, k);
        ++k;
    }
    EXPECT_EQ(k, kddTenSlashEight());
}

TEST(Lifecycle, FailedAdmissionLeavesResidentsExactlyAsBefore)
{
    const auto &fx = fixture();
    core::TaurusSwitch sw;
    sw.installApp(sinkApp());
    const core::AppId b = sw.installApp(core::makeIotFlowApp(fx.iot));

    core::AppArtifact bad = sinkApp("huge");
    bad.graph = fx.huge;

    const auto before = sw.process(fx.iot.eval_trace.front());
    EXPECT_THROW(sw.replaceApp(b, bad), core::AdmissionError);
    EXPECT_THROW(sw.installApp(bad), core::AdmissionError);
    // All-or-nothing: the resident set and its behavior are untouched.
    EXPECT_EQ(sw.appCount(), 2u);
    EXPECT_EQ(sw.appName(b), "iot_flow_mlp");
    sw.reset(); // back to install-time register state
    const auto after = sw.process(fx.iot.eval_trace.front());
    expectSameValues(before, after, 0);
}

TEST(Lifecycle, FarmLifecycleKeepsReplicasInLockstep)
{
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 3);
    farm.installApp(sinkApp());
    const core::AppId b = farm.installApp(core::makeIotFlowApp(fx.iot));
    EXPECT_TRUE(farm.installed(b));

    // Replace then remove, farm-wide: one retired block per replica.
    const auto replaced = farm.replaceApp(b, sinkApp("successor"));
    EXPECT_EQ(replaced.size(), 3u);
    for (const auto &r : replaced)
        EXPECT_NE(r, nullptr);
    const auto removed = farm.removeApp(b);
    EXPECT_EQ(removed.size(), 3u);
    EXPECT_FALSE(farm.installed(b));
    EXPECT_EQ(farm.appCount(), 1u);
    EXPECT_EQ(farm.appIds(), std::vector<core::AppId>{0});

    // Typed errors surface before any replica mutates.
    EXPECT_THROW(farm.removeApp(b), core::LifecycleError);
    EXPECT_THROW(farm.removeApp(9), std::out_of_range);
    farm.installApp(core::makeIotFlowApp(fx.iot));
    EXPECT_THROW(farm.removeApp(0), core::LifecycleError); // default
    farm.setDefaultApp(2);
    EXPECT_NO_THROW(farm.removeApp(0));

    // The surviving tenant still serves on every replica.
    const auto decisions = farm.processTrace(fx.iot.eval_trace);
    for (const auto &d : decisions)
        EXPECT_EQ(d.app_id, 2u);
}

// ---------------------------------------------------------------------
// Dispatch keys: ingress port + 802.1Q VLAN id
// ---------------------------------------------------------------------

TEST(Lifecycle, DispatchMatchesIngressPortAndVlanId)
{
    const auto &fx = fixture();
    core::TaurusSwitch sw;
    const core::AppId def = sw.installApp(sinkApp());

    // Tenant claiming VLAN 7 and (separately) ingress port 3.
    core::AppArtifact claimer = sinkApp("edge_tenant");
    core::DispatchRule by_vlan;
    by_vlan.vlan = 7;
    by_vlan.vlan_mask = 0x0FFF;
    by_vlan.priority = 2;
    core::DispatchRule by_port;
    by_port.in_port = 3;
    by_port.in_port_mask = 0xFFFF;
    by_port.priority = 1;
    claimer.dispatch = {by_vlan, by_port};
    const core::AppId edge = sw.installApp(claimer);

    net::TracePacket tp = fx.kdd_trace.front();
    EXPECT_EQ(sw.process(tp).app_id, def); // untagged, port 0

    tp.vlan_id = 7;
    EXPECT_EQ(sw.process(tp).app_id, edge);
    tp.vlan_id = 8;
    EXPECT_EQ(sw.process(tp).app_id, def); // wrong VLAN

    tp.vlan_id = 0;
    tp.ingress_port = 3;
    EXPECT_EQ(sw.process(tp).app_id, edge);
    tp.ingress_port = 4;
    EXPECT_EQ(sw.process(tp).app_id, def); // wrong port
}

TEST(Lifecycle, FiveTupleOnlyRulesIgnoreReceiveMetadata)
{
    // Parity contract: rules that leave the port/VLAN masks at zero
    // must match exactly as the 5-tuple-only dispatch always did —
    // receive-side metadata cannot perturb them.
    const auto &fx = fixture();

    auto buildSwitch = [&]() {
        auto sw = std::make_unique<core::TaurusSwitch>();
        sw->installApp(sinkApp());
        sw->installApp(core::makeIotFlowApp(fx.iot)); // 192.168/16 rule
        sw->installApp(anomalyClaiming10());          // 10/8 rule
        return sw;
    };

    // Metadata-bearing copy of the merged trace. Sizes are clamped so
    // the 4-byte 802.1Q tag never changes the wire length (PktLen) —
    // this test isolates *dispatch* behavior.
    std::vector<net::TracePacket> plain = fx.merged;
    for (auto &tp : plain)
        tp.size_bytes = std::max<uint16_t>(tp.size_bytes, 64);
    std::vector<net::TracePacket> tagged = plain;
    for (size_t i = 0; i < tagged.size(); ++i) {
        tagged[i].ingress_port = static_cast<uint16_t>(1 + i % 7);
        tagged[i].vlan_id = static_cast<uint16_t>(1 + i % 9);
    }

    auto a = buildSwitch();
    auto b = buildSwitch();
    for (size_t i = 0; i < plain.size(); ++i) {
        const auto want = a->process(plain[i]);
        const auto got = b->process(tagged[i]);
        ASSERT_EQ(want.app_id, got.app_id) << i;
        expectSameValues(want, got, i);
        EXPECT_DOUBLE_EQ(want.latency_ns, got.latency_ns) << i;
    }
}

// ---------------------------------------------------------------------
// Runtime lifecycle under live traffic
// ---------------------------------------------------------------------

namespace {

runtime::RuntimeConfig
churnConfig(bool synchronous)
{
    runtime::RuntimeConfig rc;
    rc.synchronous = synchronous;
    rc.sampling_rate = 1.0;
    rc.batch_pkts = 512;
    rc.train.seed = 11;
    return rc;
}

} // namespace

TEST(Lifecycle, RuntimeChurnKeepsSurvivorBitIdenticalAndCountsStale)
{
    // Synchronous (deterministic) churn through the runtime: tenant A's
    // decisions are bit-identical across install/replace/remove of a
    // churn tenant, in-flight telemetry for the dead tenant is dropped
    // and counted on its slot, and appStats keeps answering for the
    // removed tenant.
    const auto &fx = fixture();
    const size_t third = fx.merged.size() / 3;

    auto run = [&](bool churn) {
        core::SwitchFarm farm({}, 2);
        core::AppArtifact sink = sinkApp();
        core::AppArtifact anom = anomalyClaiming10();
        sink.make_trainer = nullptr; // freeze weights: isolate churn
        anom.make_trainer = nullptr;
        farm.installApp(sink);
        farm.installApp(anom);
        runtime::OnlineRuntime rt(farm, {&sink, &anom},
                                  churnConfig(/*synchronous=*/true));
        rt.start();

        std::vector<core::SwitchDecision> decisions(fx.merged.size());
        util::Span<const net::TracePacket> pkts(fx.merged.data(),
                                                fx.merged.size());
        util::Span<core::SwitchDecision> out(decisions.data(),
                                             decisions.size());
        core::AppId c = 0;
        rt.processTrace(pkts.subspan(0, third), out.subspan(0, third));
        if (churn) {
            c = rt.installApp(core::makeIotFlowApp(fx.iot));
            EXPECT_EQ(c, 2u);
            EXPECT_TRUE(rt.installed(c));
        }
        rt.processTrace(pkts.subspan(third, third),
                        out.subspan(third, third));
        if (churn) {
            rt.replaceApp(c, core::makeIotFlowApp(fx.iot));
            rt.removeApp(c);
            EXPECT_FALSE(rt.installed(c));
            EXPECT_EQ(rt.appCount(), 2u);
            EXPECT_EQ(rt.slotCount(), 3u);
        }
        rt.processTrace(pkts.subspan(2 * third, fx.merged.size() -
                                                    2 * third),
                        out.subspan(2 * third,
                                    fx.merged.size() - 2 * third));
        const auto st = rt.stats();
        const auto dead =
            churn ? rt.appStats(c) : runtime::RuntimeStats{};
        rt.stop();
        const auto end = rt.stats();
        return std::make_tuple(std::move(decisions), st, dead, end);
    };

    const auto [churned, st, dead, end] = run(true);
    const auto [quiet, qst, qdead, qend] = run(false);
    (void)qdead;

    // Survivor bit-identity: tenant 1 (10/8 claimer) saw exactly the
    // KDD packets in both runs.
    size_t a_count = 0;
    size_t j = 0;
    for (size_t i = 0; i < churned.size(); ++i) {
        if (quiet[i].app_id != 1)
            continue;
        // Find the churned run's next tenant-1 decision.
        while (j < churned.size() && churned[j].app_id != 1)
            ++j;
        ASSERT_LT(j, churned.size());
        expectSameValues(quiet[i], churned[j], i);
        ++j;
        ++a_count;
    }
    EXPECT_EQ(a_count, kddTenSlashEight());

    // Lifecycle accounting: 3 ops, dead tenant archived with its final
    // counters and a growing stale-drop count (its in-flight telemetry
    // was drained after the removal).
    EXPECT_EQ(st.lifecycle_ops, 3u);
    EXPECT_EQ(qst.lifecycle_ops, 0u);
    EXPECT_TRUE(dead.removed);
    EXPECT_GT(dead.consumed, 0u);
    // Retired state blocks: every op retires, and by stop() every
    // retirement has been reclaimed — a stopped runtime holds no dead
    // tenant state.
    EXPECT_GT(end.rcu_retired, 0u);
    EXPECT_EQ(end.rcu_retired, end.rcu_reclaimed);
    EXPECT_EQ(qend.rcu_retired, 0u);
}

TEST(Lifecycle, RuntimeStaleTelemetryIsDroppedAndChargedToTheDead)
{
    // Mirror samples for a tenant, remove it BEFORE the control plane
    // drains them: the samples must be dropped (never trained into
    // another tenant) and charged to the dead tenant's slot.
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 1);
    core::AppArtifact sink = sinkApp();
    farm.installApp(sink);
    runtime::RuntimeConfig rc = churnConfig(/*synchronous=*/true);
    rc.batch_pkts = 1 << 20; // no control step before we remove
    runtime::OnlineRuntime rt(farm, {&sink}, rc);
    rt.start();
    const core::AppId c = rt.installApp(core::makeIotFlowApp(fx.iot));

    // 100 IoT packets decided by tenant c, all mirrored, none drained.
    std::vector<net::TracePacket> slice(fx.iot.eval_trace.begin(),
                                        fx.iot.eval_trace.begin() + 100);
    rt.processTrace(slice);
    EXPECT_EQ(rt.appStats(c).consumed, 0u);

    rt.removeApp(c);
    rt.stop(); // final drain meets the tombstone

    const auto dead = rt.appStats(c);
    EXPECT_TRUE(dead.removed);
    EXPECT_EQ(dead.consumed, 0u);
    EXPECT_EQ(dead.stale_dropped, 100u);
    EXPECT_EQ(rt.stats().stale_dropped, 100u);
    // The surviving tenant consumed nothing foreign.
    EXPECT_EQ(rt.appStats(0).consumed, 0u);
}

TEST(Lifecycle, RuntimeTypedErrorsAndDefaultGuard)
{
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 2);
    core::AppArtifact sink = sinkApp();
    farm.installApp(sink);
    runtime::OnlineRuntime rt(farm, {&sink},
                              churnConfig(/*synchronous=*/true));
    rt.start();
    const core::AppId c = rt.installApp(core::makeIotFlowApp(fx.iot));

    // Default guard: typed error, nothing changes anywhere.
    EXPECT_THROW(rt.removeApp(0), core::LifecycleError);
    EXPECT_TRUE(rt.installed(0));
    EXPECT_TRUE(farm.installed(0));

    // Admission fault: typed error from the dry-run, before any worker
    // or replica saw the op.
    core::AppArtifact bad = sinkApp("huge");
    bad.graph = fx.huge;
    EXPECT_THROW(rt.installApp(bad), core::AdmissionError);
    EXPECT_THROW(rt.replaceApp(c, bad), core::AdmissionError);
    EXPECT_EQ(rt.appCount(), 2u);
    EXPECT_EQ(farm.appCount(), 2u);
    EXPECT_EQ(rt.stats().lifecycle_ops, 1u); // only the install landed

    // Unknown / tombstoned ids.
    EXPECT_THROW(rt.removeApp(9), std::out_of_range);
    EXPECT_THROW(rt.replaceApp(9, sink), std::out_of_range);
    EXPECT_THROW(rt.setDefaultApp(9), core::LifecycleError);
    rt.removeApp(c);
    EXPECT_THROW(rt.removeApp(c), core::LifecycleError);
    EXPECT_THROW(rt.replaceApp(c, sink), core::LifecycleError);
    EXPECT_THROW(rt.store(c), core::LifecycleError);
    EXPECT_NO_THROW(rt.appStats(c)); // stats outlive the tenant
    rt.stop();
}

// ---------------------------------------------------------------------
// Staggered two-tenant drift: independent per-tenant recovery
// ---------------------------------------------------------------------

namespace {

/** The drift-validated model + trace generator (runtime_test's
 *  recovery scenario), built only if the staggered-drift test runs. */
struct DriftFixture
{
    models::AnomalyDnn dnn = models::trainAnomalyDnn(1, 3000);
    net::KddConfig base;

    DriftFixture()
    {
        base.connections = 12000;
        base.trace_duration_s = 1.0;
    }

    /**
     * A FRESH trace per call (distinct seed): replaying one trace
     * accumulates per-flow register state and artificially degrades
     * F1, so every phase/round of the staggered scenario gets new
     * traffic of the wanted mix, like a live link would carry.
     */
    std::vector<net::TracePacket> trace(uint64_t seed,
                                        bool shifted) const
    {
        const net::KddConfig cfg =
            shifted ? net::shiftedAttackMix(base) : base;
        net::KddGenerator gen(cfg, seed);
        return net::trimTrace(
            gen.expandToPackets(gen.sampleConnections()),
            cfg.trace_duration_s);
    }
};

const DriftFixture &
driftFixture()
{
    static const DriftFixture fx;
    return fx;
}

} // namespace

TEST(Lifecycle, StaggeredDriftRecoversEachTenantIndependently)
{
    // Two co-resident anomaly tenants whose traffic drifts at
    // DIFFERENT times: tenant A (default, 10.x sources) shifts first
    // and recovers through its own AppControl while tenant B
    // (172.16/12 sources) stays healthy and untouched; then B shifts
    // and recovers while A stays at its post-recovery operating point.
    const auto &dfx = driftFixture();

    core::AppArtifact tenant_a = core::makeAnomalyDnnApp(dfx.dnn);
    tenant_a.name = "tenant_a";
    core::AppArtifact tenant_b = core::makeAnomalyDnnApp(dfx.dnn);
    tenant_b.name = "tenant_b";
    core::DispatchRule claim172;
    claim172.src_ip = 0xAC100000u;
    claim172.src_ip_mask = 0xFFF00000u;
    claim172.priority = 1;
    tenant_b.dispatch = {claim172};

    core::SwitchFarm farm({}, 2);
    farm.installApp(tenant_a); // id 0, dispatch default
    farm.installApp(tenant_b); // id 1
    runtime::RuntimeConfig rc;
    rc.synchronous = true;
    rc.sampling_rate = 1.0;
    rc.batch_pkts = 512;
    rc.train.batch = 256;
    rc.train.epochs = 2;
    rc.train.learning_rate = 0.05f;
    rc.train.seed = 5;
    rc.drift.window = 2048;
    rc.drift.warmup_windows = 2;
    rc.drift.trigger_ratio = 0.85;
    rc.drift.recover_ratio = 0.95;
    runtime::OnlineRuntime rt(farm, {&tenant_a, &tenant_b}, rc);
    rt.start();

    // Phase 1: both steady — references armed, nobody triggers.
    rt.processTrace(core::mergeTracesByTime(
        dfx.trace(42, false), remapTo172(dfx.trace(142, false))));
    EXPECT_GT(rt.appStats(0).reference_f1, 0.5);
    EXPECT_GT(rt.appStats(1).reference_f1, 0.5);
    EXPECT_EQ(rt.appStats(0).drift_triggers, 0u);
    EXPECT_EQ(rt.appStats(1).drift_triggers, 0u);
    EXPECT_EQ(rt.stats().sgd_steps, 0u);
    const double a_pre = rt.appStats(0).reference_f1;

    // Phase 2: A shifts, B stays steady. Only A may trigger/retrain.
    for (uint64_t round = 0; round < 8; ++round) {
        rt.processTrace(core::mergeTracesByTime(
            dfx.trace(43 + round, true),
            remapTo172(dfx.trace(143 + round, false))));
        if (rt.appStats(0).drift_recoveries > 0)
            break;
    }
    EXPECT_EQ(rt.appStats(0).drift_triggers, 1u);
    EXPECT_GE(rt.appStats(0).drift_recoveries, 1u);
    EXPECT_GT(rt.appStats(0).sgd_steps, 0u);
    EXPECT_GE(rt.appStats(0).smoothed_f1, 0.95 * a_pre);
    EXPECT_EQ(rt.appStats(1).drift_triggers, 0u);
    EXPECT_EQ(rt.appStats(1).sgd_steps, 0u);
    EXPECT_EQ(rt.appStats(1).updates_published, 0u);

    // Phase 3: B shifts, A back to steady. Only B triggers; A's
    // counters stay where phase 2 left them.
    const auto a2_triggers = rt.appStats(0).drift_triggers;
    for (uint64_t round = 0; round < 8; ++round) {
        rt.processTrace(core::mergeTracesByTime(
            dfx.trace(60 + round, false),
            remapTo172(dfx.trace(160 + round, true))));
        if (rt.appStats(1).drift_recoveries > 0)
            break;
    }
    const auto a_end = rt.appStats(0);
    const auto b_end = rt.appStats(1);
    rt.stop();

    EXPECT_EQ(b_end.drift_triggers, 1u);
    EXPECT_GE(b_end.drift_recoveries, 1u);
    EXPECT_GT(b_end.sgd_steps, 0u);
    // B's remapped trace is statistically (not bit-) equivalent to the
    // validated scenario. The recovery latch itself enforced the
    // >= 0.95 * reference gate at latch time; the end-of-run smoothed
    // value keeps moving with the tail of the round, so only a sanity
    // floor is asserted here (B's reference > 0.5 was checked above).
    EXPECT_GT(b_end.smoothed_f1, 0.5);
    EXPECT_EQ(a_end.drift_triggers, a2_triggers);
    EXPECT_FALSE(a_end.drifted);
    EXPECT_FALSE(b_end.drifted);
}

TEST(Lifecycle, RuntimeConcurrentChurnUnderLiveTraffic)
{
    // The zero-downtime claim, raced for real: one thread pushes
    // traffic through the async runtime while this thread installs,
    // replaces, and removes a churn tenant. TSan (CI job) is the
    // oracle for races; functionally every packet gets decided, every
    // op completes, and every retired block is reclaimed by stop().
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 2);
    core::AppArtifact sink = sinkApp();
    core::AppArtifact anom = anomalyClaiming10();
    farm.installApp(sink);
    farm.installApp(anom);
    runtime::RuntimeConfig rc = churnConfig(/*synchronous=*/false);
    rc.batch_pkts = 256;
    rc.train_always = true;
    rc.train.batch = 64;
    rc.train.epochs = 1;
    rc.train.install_delay_ms = 0.0;
    runtime::OnlineRuntime rt(farm, {&sink, &anom}, rc);
    rt.start();

    std::atomic<bool> done{false};
    std::atomic<uint64_t> processed{0};
    std::atomic<uint64_t> undecided{0};
    std::thread traffic([&]() {
        std::vector<core::SwitchDecision> decisions(fx.merged.size());
        while (!done.load(std::memory_order_relaxed)) {
            rt.processTrace(
                util::Span<const net::TracePacket>(fx.merged.data(),
                                                   fx.merged.size()),
                util::Span<core::SwitchDecision>(decisions.data(),
                                                 decisions.size()));
            processed.fetch_add(decisions.size(),
                                std::memory_order_relaxed);
            for (const auto &d : decisions)
                if (!(d.latency_ns > 0.0))
                    undecided.fetch_add(1, std::memory_order_relaxed);
        }
    });

    const core::AppArtifact churner = core::makeIotFlowApp(fx.iot);
    std::vector<core::AppId> ids;
    for (int cycle = 0; cycle < 4; ++cycle) {
        const core::AppId c = rt.installApp(churner);
        ids.push_back(c);
        rt.replaceApp(c, churner);
        rt.removeApp(c);
        EXPECT_FALSE(rt.installed(c));
        EXPECT_EQ(rt.appCount(), 2u);
    }
    done.store(true, std::memory_order_relaxed);
    traffic.join();
    rt.stop();

    EXPECT_EQ(undecided.load(), 0u); // every packet got decided
    // Ids strictly increase — never reused across churn.
    for (size_t i = 1; i < ids.size(); ++i)
        EXPECT_GT(ids[i], ids[i - 1]);
    const auto st = rt.stats();
    EXPECT_EQ(st.lifecycle_ops, 12u);
    EXPECT_GT(st.packets, 0u);
    EXPECT_EQ(st.packets, processed.load());
    EXPECT_GT(st.rcu_retired, 0u);
    EXPECT_EQ(st.rcu_retired, st.rcu_reclaimed);
    // Every dead incarnation still answers appStats.
    for (const core::AppId c : ids)
        EXPECT_TRUE(rt.appStats(c).removed);
}
