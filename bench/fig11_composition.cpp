/**
 * @file
 * Figure 11: a DNN composed from independent microbenchmarks
 * (perceptron layers fused with ReLU / sigmoid activations).
 *
 * The check: the compiled anomaly DNN's resources decompose into the
 * per-layer perceptron + activation building blocks, and its latency is
 * close to the sum of the pipeline-stage latencies along the critical
 * path — the compositionality that makes the microbenchmarks (Table 6)
 * predictive of whole models (Table 5).
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "util/table.hpp"

TAURUS_BENCH(fig11_composition, "Figure 11",
             "the anomaly DNN as composed microbenchmark blocks")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    const size_t conns = ctx.size(3000, 800);
    const auto dnn = models::trainAnomalyDnn(1, conns);
    const auto rep = compiler::analyze(compiler::compile(dnn.graph));

    os << "Figure 11: the anomaly DNN as composed perceptron / "
          "activation blocks\n\n";

    // Per-layer decomposition straight from the lowered graph.
    TablePrinter t({"Block", "Neurons (DotRows)", "Activation"});
    const auto &layers = dnn.quantized.layers();
    int dot_nodes = 0, act_nodes = 0, lut_nodes = 0;
    for (const auto &n : dnn.graph.nodes()) {
        dot_nodes += n.kind == dfg::NodeKind::DotRow;
        act_nodes += n.kind == dfg::NodeKind::MapChain;
        lut_nodes += n.kind == dfg::NodeKind::Lookup;
    }
    for (size_t i = 0; i < layers.size(); ++i) {
        t.addRow({"Percept L" + std::to_string(i),
                  std::to_string(layers[i].out),
                  toString(layers[i].act)});
    }
    t.print(os);

    os << "\nGraph decomposition: " << dot_nodes
       << " perceptron nodes (= 12+6+3+1 neurons), " << act_nodes
       << " ReLU map blocks, " << lut_nodes << " sigmoid LUT block(s).\n";

    size_t neurons = 0;
    for (const auto &l : layers)
        neurons += l.out;
    const bool match = static_cast<size_t>(dot_nodes) == neurons;
    os << "Expected perceptron nodes: " << neurons << " -> "
       << (match ? "match" : "MISMATCH") << "\n";

    ctx.metric("dot_nodes", dot_nodes);
    ctx.metric("expected_neurons", neurons);
    ctx.metric("decomposition_matches", int64_t{match});
    ctx.metric("composed_cus", int64_t{rep.cus});
    ctx.metric("composed_area_mm2", rep.area_mm2);
    ctx.metric("composed_latency_ns", rep.latency_ns);

    os << "\nComposed DNN: " << rep.cus << " CUs, "
       << TablePrinter::num(rep.area_mm2, 2) << " mm^2, "
       << TablePrinter::num(rep.latency_ns, 0)
       << " ns at II = " << rep.ii_cycles
       << " (line rate preserved through composition).\n";
}
