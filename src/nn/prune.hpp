/**
 * @file
 * Structured (unit-level) magnitude pruning with fine-tuning.
 *
 * Section 6, "Shrinking Models": control networks keep working with a
 * handful of neurons per layer, and "techniques like quantization,
 * pruning, and distillation can further reduce a model's size". This
 * implements the pruning half: hidden units are ranked by the L2 norm
 * of their fan-in and fan-out weights, the weakest are removed whole
 * (so the pruned network is a strictly smaller dense network — exactly
 * what shrinks CU count on the MapReduce grid), and a few fine-tuning
 * epochs recover accuracy.
 */

#pragma once

#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace taurus::nn {

/** Pruning configuration. */
struct PruneConfig
{
    /** Fraction of each hidden layer's units to keep, (0, 1]. */
    double keep_fraction = 0.5;
    /** Fine-tuning passes after pruning (0 = none). */
    int finetune_epochs = 10;
    TrainConfig finetune;
};

/**
 * Prune every hidden layer of `model` to keep_fraction of its units
 * (at least one unit per layer), then fine-tune on `data`. Input and
 * output widths are preserved.
 */
Mlp pruneUnits(const Mlp &model, const Dataset &data,
               const PruneConfig &cfg, util::Rng &rng);

/** Unit importance: L2 norm of a hidden unit's fan-in and fan-out. */
std::vector<float> unitImportance(const Mlp &model, size_t hidden_layer);

} // namespace taurus::nn
