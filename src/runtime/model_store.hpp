/**
 * @file
 * Versioned, double-buffered model publication (the "weight push" half of
 * the paper's Figure 1 loop).
 *
 * The trainer publishes a fresh weight graph as an immutable snapshot;
 * data-plane workers grab the current snapshot at batch boundaries and
 * apply it to their own switch replica. Publication is RCU/epoch style:
 * readers take a `shared_ptr` to a snapshot that is frozen at publish
 * time, so a reader can never observe a half-written graph — the old
 * snapshot stays alive (and bit-stable) until its last reader drops it,
 * and the writer builds each new snapshot off to the side before the
 * single atomic pointer swap makes it visible.
 *
 * Single writer, any number of readers. The version counter lets a
 * reader poll "is there anything new?" with one relaxed atomic load
 * before paying for the pointer acquire.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>

#include "dfg/graph.hpp"

namespace taurus::runtime {

/** One published model: an immutable graph plus its identity. */
struct ModelSnapshot
{
    uint64_t version = 0;
    dfg::Graph graph;
    /**
     * FNV-1a over every node's mutable payload, computed at publish
     * time. A reader that recomputes it on its copy of the snapshot can
     * prove the hot swap was torn-read-free (the runtime tests do).
     */
    uint64_t checksum = 0;
};

/**
 * Publish/subscribe point for weight updates. Readers never block on a
 * half-built snapshot and never observe torn state; the version()
 * pre-check is a genuinely lock-free atomic load, while the
 * shared_ptr exchange itself uses the C++17 atomic_load/atomic_store
 * free functions (libstdc++ backs these with a mutex pool — fine at
 * batch granularity, so do NOT move current() onto a per-packet path).
 */
class ModelStore
{
  public:
    ModelStore() = default;

    /** Writer: freeze `g` into the next version and swap it in. */
    void publish(dfg::Graph g);

    /**
     * Reader: the current snapshot, or nullptr before the first publish.
     * The returned snapshot is immutable and stays valid for as long as
     * the caller holds the pointer, regardless of later publishes.
     */
    std::shared_ptr<const ModelSnapshot> current() const;

    /** Latest published version (0 before the first publish). */
    uint64_t
    version() const
    {
        return version_.load(std::memory_order_acquire);
    }

    /** Weight-payload checksum of a graph (FNV-1a). */
    static uint64_t checksum(const dfg::Graph &g);

  private:
    std::shared_ptr<const ModelSnapshot> snap_;
    std::atomic<uint64_t> version_{0};
};

} // namespace taurus::runtime
