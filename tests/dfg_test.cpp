#include <gtest/gtest.h>

#include "dfg/eval.hpp"
#include "dfg/graph.hpp"
#include "dfg/mapreduce.hpp"
#include "fixed/quant.hpp"
#include "util/rng.hpp"

using namespace taurus;
using dfg::Graph;
using dfg::MapFn;
using dfg::Node;
using dfg::NodeKind;

namespace {

/** Input(width) -> single node -> Output helper. */
Graph
wrap(Node mid, int in_width)
{
    Graph g;
    Node in;
    in.kind = NodeKind::Input;
    in.width = in_width;
    const int in_id = g.add(std::move(in));
    mid.inputs = {in_id};
    const int mid_id = g.add(std::move(mid));
    Node out;
    out.kind = NodeKind::Output;
    out.inputs = {mid_id};
    out.width = g.node(mid_id).width;
    g.add(std::move(out));
    return g;
}

} // namespace

TEST(DfgGraph, ValidateCatchesBadWidth)
{
    Graph g;
    Node in;
    in.kind = NodeKind::Input;
    in.width = dfg::kLanes + 1;
    g.add(std::move(in));
    EXPECT_FALSE(g.validate().empty());
}

TEST(DfgGraph, ValidateCatchesWeightMismatch)
{
    Node dot;
    dot.kind = NodeKind::DotRow;
    dot.width = 1;
    dot.weights = {1, 2, 3}; // input will be 4 wide
    Graph g = wrap(std::move(dot), 4);
    EXPECT_NE(g.validate().find("weight count"), std::string::npos);
}

TEST(DfgGraph, ValidateRequiresOutput)
{
    Graph g;
    Node in;
    in.kind = NodeKind::Input;
    in.width = 4;
    g.add(std::move(in));
    EXPECT_FALSE(g.validate().empty());
}

TEST(DfgGraph, LookupNeeds256Entries)
{
    Node lut;
    lut.kind = NodeKind::Lookup;
    lut.width = 4;
    lut.lut.assign(255, 0);
    Graph g = wrap(std::move(lut), 4);
    EXPECT_FALSE(g.validate().empty());
}

TEST(DfgEval, DotRowComputesBiasedDotWithRequant)
{
    Node dot;
    dot.kind = NodeKind::DotRow;
    dot.width = 1;
    dot.weights = {1, 2, -1, 3};
    dot.bias = 10;
    dot.requant = fixed::Requantizer::fromRealMultiplier(0.5);
    Graph g = wrap(std::move(dot), 4);

    // acc = 1*4 + 2*3 + (-1)*2 + 3*1 + 10 = 21; requant 0.5 -> 10.5 -> 11.
    const auto out = dfg::evaluateSimple(g, {4, 3, 2, 1});
    EXPECT_EQ(out.at(0), 11);
}

TEST(DfgEval, DotRowSaturatesToInt8)
{
    Node dot;
    dot.kind = NodeKind::DotRow;
    dot.width = 1;
    dot.weights = {127, 127};
    dot.requant = fixed::Requantizer::fromRealMultiplier(1.0);
    Graph g = wrap(std::move(dot), 2);
    const auto out = dfg::evaluateSimple(g, {127, 127});
    EXPECT_EQ(out.at(0), 127); // 32258 saturated
}

TEST(DfgEval, PartialDotPlusCombineMatchesSingleDot)
{
    util::Rng rng(7);
    // 24-wide neuron split into 16 + 8.
    std::vector<int8_t> w(24), x(24);
    for (auto &v : w)
        v = static_cast<int8_t>(rng.uniformInt(-20, 20));
    for (auto &v : x)
        v = static_cast<int8_t>(rng.uniformInt(-20, 20));
    const auto rq = fixed::Requantizer::fromRealMultiplier(0.01);

    Graph g;
    Node i0, i1;
    i0.kind = i1.kind = NodeKind::Input;
    i0.width = 16;
    i1.width = 8;
    const int a = g.add(std::move(i0));
    const int b = g.add(std::move(i1));

    Node p0;
    p0.kind = NodeKind::PartialDot;
    p0.inputs = {a};
    p0.width = 1;
    p0.weights.assign(w.begin(), w.begin() + 16);
    const int p0_id = g.add(std::move(p0));
    Node p1;
    p1.kind = NodeKind::PartialDot;
    p1.inputs = {b};
    p1.width = 1;
    p1.weights.assign(w.begin() + 16, w.end());
    const int p1_id = g.add(std::move(p1));

    Node c;
    c.kind = NodeKind::CombineAdd;
    c.inputs = {p0_id, p1_id};
    c.width = 1;
    c.bias = 5;
    c.requant = rq;
    const int c_id = g.add(std::move(c));
    Node out;
    out.kind = NodeKind::Output;
    out.inputs = {c_id};
    out.width = 1;
    g.add(std::move(out));

    const auto res = dfg::evaluate(
        g, {{x.begin(), x.begin() + 16}, {x.begin() + 16, x.end()}});

    int64_t acc = 5;
    for (size_t i = 0; i < 24; ++i)
        acc += int(w[i]) * int(x[i]);
    EXPECT_EQ(res.at(0).lanes.at(0),
              rq.apply(static_cast<int32_t>(acc)));
}

TEST(DfgEval, SquaredDistRawIsInt32)
{
    Node d;
    d.kind = NodeKind::SquaredDist;
    d.width = 1;
    d.weights = {10, -10};
    Graph g = wrap(std::move(d), 2);
    EXPECT_EQ(dfg::Graph::outputType(g.node(1)),
              dfg::ValueType::Int32Vec);
    const auto res = dfg::evaluate(g, {{-10, 10}});
    EXPECT_EQ(res.at(0).lanes.at(0), 400 + 400);
}

TEST(DfgEval, SquaredDistRequantizedIsInt8Code)
{
    Node d;
    d.kind = NodeKind::SquaredDist;
    d.width = 1;
    d.weights = {0, 0};
    d.requant = fixed::Requantizer::fromRealMultiplier(127.0 / 1000.0);
    Graph g = wrap(std::move(d), 2);
    EXPECT_EQ(dfg::Graph::outputType(g.node(1)),
              dfg::ValueType::Int8Vec);
    // dist = 2*100^2 = 20000 -> 20000 * 127/1000 saturates at 127.
    const auto res = dfg::evaluate(g, {{100, -100}});
    EXPECT_EQ(res.at(0).lanes.at(0), 127);
}

TEST(DfgEval, ArgMinPicksFirstMinimum)
{
    Graph g;
    Node in;
    in.kind = NodeKind::Input;
    in.width = 5;
    const int in_id = g.add(std::move(in));
    Node am;
    am.kind = NodeKind::ArgMin;
    am.inputs = {in_id};
    am.width = 1;
    const int am_id = g.add(std::move(am));
    Node out;
    out.kind = NodeKind::Output;
    out.inputs = {am_id};
    out.width = 1;
    g.add(std::move(out));

    EXPECT_EQ(dfg::evaluateSimple(g, {5, 3, 3, 9, 4}).at(0), 1);
}

TEST(DfgEval, LookupIndexesSignedDomain)
{
    Node lut;
    lut.kind = NodeKind::Lookup;
    lut.width = 1;
    lut.lut.resize(256);
    for (int i = 0; i < 256; ++i)
        lut.lut[static_cast<size_t>(i)] =
            static_cast<int8_t>(i - 128); // identity
    Graph g = wrap(std::move(lut), 1);
    for (int v : {-128, -1, 0, 1, 127})
        EXPECT_EQ(dfg::evaluateSimple(g, {static_cast<int8_t>(v)}).at(0),
                  v);
}

TEST(DfgEval, ThrowsOnMissingInputs)
{
    Node m;
    m.kind = NodeKind::MapChain;
    m.width = 4;
    m.fns = {MapFn::Relu};
    Graph g = wrap(std::move(m), 4);
    EXPECT_THROW(dfg::evaluate(g, {}), std::invalid_argument);
    EXPECT_THROW(dfg::evaluate(g, {{1, 2}}), std::invalid_argument);
}

// ---- Map-function semantics, swept over representative inputs. ----

class MapFnTest : public ::testing::TestWithParam<int32_t>
{
};

TEST_P(MapFnTest, Semantics)
{
    const int32_t x = GetParam();
    const fixed::Requantizer rq =
        fixed::Requantizer::fromRealMultiplier(1.0);
    EXPECT_EQ(dfg::applyMapFn(MapFn::Identity, x, 0, rq), x);
    EXPECT_EQ(dfg::applyMapFn(MapFn::Relu, x, 0, rq), x > 0 ? x : 0);
    EXPECT_EQ(dfg::applyMapFn(MapFn::LeakyRelu, x, 0, rq),
              x >= 0 ? x : x / 8);
    EXPECT_EQ(dfg::applyMapFn(MapFn::Abs, x, 0, rq),
              x == -128 ? 127 : std::abs(x)); // saturating |-128|
    EXPECT_EQ(dfg::applyMapFn(MapFn::MinConst, x, 5, rq), std::min(x, 5));
    EXPECT_EQ(dfg::applyMapFn(MapFn::MaxConst, x, 5, rq), std::max(x, 5));
    EXPECT_EQ(dfg::applyMapFn(MapFn::AddConst, x, 3, rq),
              std::clamp(x + 3, -128, 127));
}

INSTANTIATE_TEST_SUITE_P(Sweep, MapFnTest,
                         ::testing::Values(-128, -127, -8, -1, 0, 1, 7,
                                           126, 127));

TEST(DfgGraph, WeightBytesCountsWeightsLutsAndBias)
{
    Node dot;
    dot.kind = NodeKind::DotRow;
    dot.weights = {1, 2, 3, 4};
    EXPECT_EQ(dot.weightBytes(), 4u + 4u); // weights + int32 bias

    Node lut;
    lut.kind = NodeKind::Lookup;
    lut.lut.resize(256);
    EXPECT_EQ(lut.weightBytes(), 256u);
}

TEST(DfgGraph, LoopInfoIiMultiplier)
{
    dfg::LoopInfo loop;
    loop.trip = 8;
    loop.unroll = 1;
    EXPECT_EQ(loop.iiMultiplier(), 8);
    loop.unroll = 3;
    EXPECT_EQ(loop.iiMultiplier(), 3);
    loop.unroll = 8;
    EXPECT_EQ(loop.iiMultiplier(), 1);
}

TEST(DfgGraph, MergeIsDisjointUnion)
{
    // Two independent programs merged keep their own inputs, outputs,
    // and values (the multi-model path of Section 6).
    util::Rng rng(71);
    dfg::mr::Builder b1("m1");
    b1.output(b1.map(b1.input(4), MapFn::Relu));
    const Graph g1 = b1.build();

    dfg::mr::Builder b2("m2");
    b2.output(b2.map(b2.input(3), MapFn::Neg));
    const Graph g2 = b2.build();

    const Graph both = dfg::merge({&g1, &g2}, "both");
    EXPECT_EQ(both.validate(), "");
    EXPECT_EQ(both.inputIds().size(), 2u);
    EXPECT_EQ(both.outputIds().size(), 2u);

    const std::vector<int8_t> x1 = {-5, 3, -1, 7};
    const std::vector<int8_t> x2 = {1, -2, 3};
    const auto res = dfg::evaluate(both, {x1, x2});
    ASSERT_EQ(res.size(), 2u);
    EXPECT_EQ(res[0].lanes, (std::vector<int32_t>{0, 3, 0, 7}));
    EXPECT_EQ(res[1].lanes, (std::vector<int32_t>{-1, 2, -3}));
}

TEST(DfgGraph, MergeTakesSlowestLoop)
{
    dfg::mr::Builder b1("fast");
    b1.output(b1.map(b1.input(4), MapFn::Relu));
    b1.setLoop(2, 1);
    const Graph g1 = b1.build();
    dfg::mr::Builder b2("slow");
    b2.output(b2.map(b2.input(4), MapFn::Relu));
    b2.setLoop(8, 1);
    const Graph g2 = b2.build();

    const Graph both = dfg::merge({&g1, &g2}, "both");
    ASSERT_TRUE(both.loop.has_value());
    EXPECT_EQ(both.loop->iiMultiplier(), 8);
}
