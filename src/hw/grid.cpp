#include "hw/grid.hpp"

#include <cmath>

namespace taurus::hw {

int
manhattan(const Coord &a, const Coord &b)
{
    return std::abs(a.row - b.row) + std::abs(a.col - b.col);
}

UnitKind
GridSpec::kindAt(const Coord &c) const
{
    // Every (cu_per_mu + 1)-th unit in row-major order is an MU, offset by
    // row so MUs form a checkerboard-like diagonal pattern for locality
    // (paper: "banked SRAMs ... interspersed with CUs in a checkerboard
    // pattern").
    const int idx = c.row * cols + c.col;
    const int period = cu_per_mu + 1;
    return ((idx + c.row) % period) == period - 1 ? UnitKind::Mu
                                                  : UnitKind::Cu;
}

int
GridSpec::cuCount() const
{
    int n = 0;
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            if (kindAt({r, c}) == UnitKind::Cu)
                ++n;
    return n;
}

int
GridSpec::muCount() const
{
    return unitCount() - cuCount();
}

std::vector<Coord>
GridSpec::unitsOfKind(UnitKind kind) const
{
    std::vector<Coord> out;
    for (int r = 0; r < rows; ++r)
        for (int c = 0; c < cols; ++c)
            if (kindAt({r, c}) == kind)
                out.push_back({r, c});
    return out;
}

std::vector<Coord>
GridSpec::unitsOfKind(UnitKind kind, const Region &region) const
{
    std::vector<Coord> out;
    const int end = region.endFor(cols);
    for (int r = 0; r < rows; ++r)
        for (int c = region.col_begin; c < end; ++c)
            if (kindAt({r, c}) == kind)
                out.push_back({r, c});
    return out;
}

int
GridSpec::countInColumn(UnitKind kind, int col) const
{
    int n = 0;
    for (int r = 0; r < rows; ++r)
        if (kindAt({r, col}) == kind)
            ++n;
    return n;
}

} // namespace taurus::hw
