/**
 * @file
 * The control-plane anomaly-detection baseline (Section 5.2.1).
 *
 * Pipeline: the switch mirrors sampled telemetry packets over a 10 GbE
 * link to a server; an XDP program batches them to user space; samples
 * are ingested into a streaming database; a vectorized model runs
 * batched inference; detected source IPs become flow rules installed
 * through ONOS. Any anomalous packet forwarded before its rule lands is
 * a miss — that timing path, not model quality, is what collapses the
 * baseline's effective accuracy in Table 8.
 *
 * Each stage is a (base + per-item) latency model with back-pressure:
 * the XDP queue drains only when the DB+ML chain is free, so batch sizes
 * — and therefore latencies — grow superlinearly with sampling rate,
 * reproducing the paper's overload behaviour at 10^-2.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "cp/accelerators.hpp"
#include "cp/rules.hpp"
#include "net/features.hpp"
#include "nn/quantized.hpp"

namespace taurus::cp {

/** Per-stage cost constants (calibrated once; see DESIGN.md). */
struct BaselineCosts
{
    double xdp_base_ms = 2.0;    ///< poll + context switch
    double xdp_per_us = 60.0;    ///< per-sample eBPF + copy
    double db_base_ms = 13.0;    ///< write/commit overhead
    double db_per_us = 35.0;     ///< per-point ingest
    AcceleratorModel ml = accelerator("Broadwell Xeon");
    RuleInstallModel install;
};

/** Baseline configuration for one Table 8 row. */
struct BaselineConfig
{
    double sampling_rate = 1e-4; ///< fraction of packets mirrored
    BaselineCosts costs;
    uint64_t seed = 5;
};

/** What one run reports (one Table 8 row's baseline half). */
struct BaselineResult
{
    double sampling_rate = 0.0;
    double mean_xdp_batch = 0.0;
    double mean_backlog = 0.0;   ///< samples waiting when a drain starts
    double xdp_ms = 0.0;         ///< mean per-batch stage latencies
    double db_ms = 0.0;
    double ml_ms = 0.0;
    double install_ms = 0.0;
    double total_ms = 0.0;       ///< mean sample-to-rule latency
    double detected_pct = 0.0;   ///< anomalous packets caught (of all)
    double f1_x100 = 0.0;        ///< effective per-packet F1 * 100
    uint64_t rules_installed = 0;
};

/**
 * Run the baseline over a packet trace using the given trained model
 * (the same model Taurus installs, for a fair comparison). The model
 * consumes standardized DNN features; `standardize` maps raw binned
 * features to model inputs.
 */
BaselineResult runBaseline(
    const std::vector<net::TracePacket> &trace,
    const nn::QuantizedMlp &model,
    const std::function<nn::Vector(const nn::Vector &)> &standardize,
    const BaselineConfig &cfg);

} // namespace taurus::cp
