/**
 * @file
 * Microbenchmarks of the simulator itself: packets/s through the cycle
 * simulator and the full TaurusSwitch pipeline. These measure the
 * *reproduction's* speed (how fast we can simulate), not the modeled
 * hardware (which is fixed at 1 GPkt/s by construction).
 *
 * Each loop is wall-clock timed by the harness Timer; the switch loop
 * additionally reports modeled per-packet latency percentiles.
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "hw/cycle_sim.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/switch.hpp"
#include "util/table.hpp"

TAURUS_BENCH(throughput_bench, "Simulator throughput",
             "packets/s through the cycle sim and the full switch")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Simulator throughput (wall-clock, this host)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(2000, 600));
    net::KddConfig cfg;
    cfg.connections = ctx.size(4000, 500);
    net::KddGenerator gen(cfg, 9);
    const auto trace = gen.expandToPackets(gen.sampleConnections());

    TablePrinter t({"Loop", "Iterations", "Wall ms", "Items/s"});
    auto report = [&](const std::string &name, size_t iters,
                      double sec) {
        ctx.throughput(name, static_cast<double>(iters), sec);
        t.addRow({name, std::to_string(iters),
                  TablePrinter::num(sec * 1e3, 1),
                  TablePrinter::num(double(iters) / sec, 0)});
    };

    // 1. Cycle-accurate DNN inference on the MapReduce grid.
    {
        const auto prog = compiler::compile(dnn.graph);
        hw::CycleSim sim(prog);
        std::vector<int8_t> input(6, 42);
        const size_t iters = ctx.size(2000, 100);
        const bench::Timer timer;
        uint64_t sink = 0;
        for (size_t i = 0; i < iters; ++i)
            sink += sim.run({input}).outputs.size();
        report("cycle_sim_inference", iters, timer.elapsedSec());
        ctx.metric("cycle_sim_outputs_seen", sink);
    }

    // 2. The full Figure-6 pipeline: parse -> MATs -> grid -> PIFO.
    {
        core::TaurusSwitch sw;
        sw.installAnomalyModel(dnn);
        const size_t iters = ctx.size(20000, 1000);
        std::vector<double> modeled_ns;
        modeled_ns.reserve(iters);
        const bench::Timer timer;
        for (size_t i = 0; i < iters; ++i) {
            const auto d = sw.process(trace[i % trace.size()]);
            modeled_ns.push_back(d.latency_ns);
        }
        report("switch_process", iters, timer.elapsedSec());
        ctx.latency("switch_modeled_latency", std::move(modeled_ns));
    }

    // 3. Header parsing alone.
    {
        const auto parser = pisa::Parser::standard();
        const auto pkt = pisa::fromTracePacket(trace.front());
        const size_t iters = ctx.size(200000, 5000);
        const bench::Timer timer;
        uint64_t sink = 0;
        for (size_t i = 0; i < iters; ++i)
            sink += parser.parse(pkt).get(pisa::Field::PktLen);
        report("parser_only", iters, timer.elapsedSec());
        ctx.metric("parser_sink", sink);
    }

    // 4. Flow-feature tracking (the MAT-side stateful preprocessing).
    {
        net::FlowTracker tracker;
        const size_t iters = ctx.size(100000, 5000);
        const bench::Timer timer;
        double sink = 0;
        for (size_t i = 0; i < iters; ++i) {
            tracker.observe(trace[i % trace.size()]);
            sink += tracker.dnnFeatures().size();
        }
        report("flow_tracker_observe", iters, timer.elapsedSec());
        ctx.metric("flow_tracker_sink", sink);
    }

    t.print(os);

    os << "\nThese numbers measure the reproduction on this host; the "
          "modeled hardware runs at 1 GPkt/s by construction.\n";
}
