#include "obs/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

namespace taurus::obs {

size_t
bucketOf(double v)
{
    // Everything below 1.0 — zero, negatives, NaN (the comparison is
    // false for NaN) — lands in bucket 0.
    if (!(v >= 1.0))
        return 0;
    // Octave and sub-bucket come straight from the IEEE-754 fields: for
    // a finite v >= 1, the unbiased exponent is floor(log2 v) — the
    // octave — and the top kSubBits of the mantissa are the linear
    // sub-bucket. Equivalent to the frexp() formulation bit for bit,
    // without the libc call on the per-packet path. +Inf carries an
    // exponent field past kOctaves and saturates like any overflow.
    uint64_t bits = 0;
    static_assert(sizeof(bits) == sizeof(v), "IEEE-754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    const int octave = static_cast<int>((bits >> 52) & 0x7ff) - 1023;
    if (octave >= kOctaves)
        return kBucketCount - 1; // overflow saturates into the end
    const size_t sub = (bits >> (52 - kSubBits)) &
                       ((size_t{1} << kSubBits) - 1);
    return (static_cast<size_t>(octave) << kSubBits) | sub;
}

double
bucketLowerEdge(size_t b)
{
    if (b == 0)
        return 0.0; // bucket 0 is the [0, 1 + 1/16) underflow band
    const size_t octave = b >> kSubBits;
    const size_t sub = b & ((1u << kSubBits) - 1);
    const double base = std::ldexp(1.0, static_cast<int>(octave));
    const double width =
        base / static_cast<double>(1 << kSubBits); // octave / 16
    return base + static_cast<double>(sub) * width;
}

double
bucketMid(size_t b)
{
    const double lo = bucketLowerEdge(b);
    const size_t octave = b >> kSubBits;
    const double width = std::ldexp(1.0, static_cast<int>(octave)) /
                         static_cast<double>(1 << kSubBits);
    if (b + 1 >= kBucketCount)
        return lo; // the saturation bucket reports its edge
    return lo + 0.5 * (b == 0 ? 1.0 : width);
}

void
Histogram::add(double v, uint64_t n)
{
    if (n == 0)
        return;
    buckets_[bucketOf(v)] += n;
    const double clean = std::isnan(v) ? 0.0 : v;
    sum_ += clean * static_cast<double>(n);
    if (count_ == 0) {
        min_ = max_ = clean;
    } else {
        min_ = std::min(min_, clean);
        max_ = std::max(max_, clean);
    }
    count_ += n;
}

void
Histogram::merge(const Histogram &o)
{
    if (o.count_ == 0)
        return;
    for (size_t b = 0; b < kBucketCount; ++b)
        buckets_[b] += o.buckets_[b];
    sum_ += o.sum_;
    if (count_ == 0) {
        min_ = o.min_;
        max_ = o.max_;
    } else {
        min_ = std::min(min_, o.min_);
        max_ = std::max(max_, o.max_);
    }
    count_ += o.count_;
}

double
Histogram::percentile(double p) const
{
    if (count_ == 0)
        return 0.0;
    // The ends of the envelope are tracked exactly: p=0 is the
    // smallest sample and p=100 the largest, not a bucket estimate.
    if (p <= 0.0)
        return min();
    if (p >= 100.0)
        return max();
    p = std::clamp(p, 0.0, 100.0);
    // Rank of the target sample, 1-based; p=0 asks for the first.
    const double exact = p / 100.0 * static_cast<double>(count_);
    uint64_t rank =
        static_cast<uint64_t>(std::ceil(exact));
    rank = std::clamp<uint64_t>(rank, 1, count_);
    uint64_t seen = 0;
    for (size_t b = 0; b < kBucketCount; ++b) {
        seen += buckets_[b];
        if (seen >= rank)
            return std::clamp(bucketMid(b), min_, max_);
    }
    return max_; // unreachable: counts always sum to count_
}

Histogram
AtomicHistogram::snapshot() const
{
    Histogram h;
    for (size_t b = 0; b < kBucketCount; ++b) {
        const uint64_t n =
            buckets_[b].load(std::memory_order_relaxed);
        if (n)
            h.add(bucketMid(b), n);
    }
    // The per-bucket replay above already produced bucket-exact counts
    // (add() of a bucket's mid maps back to the same bucket) and
    // edge-resolution extrema; only the sum is replaced with the
    // writer's exact running sum.
    h.overrideSum(sum_.load(std::memory_order_relaxed));
    return h;
}

void
AtomicHistogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    sum_.store(0.0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
}

} // namespace taurus::obs
