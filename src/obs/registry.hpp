/**
 * @file
 * MetricsRegistry: the one place every layer's telemetry registers,
 * designed so the per-packet path never takes a lock.
 *
 * Layout: a metric *family* is identified by (name, labels, kind).
 * Each family owns one slot per shard — a cache-line-padded relaxed
 * atomic for counters/gauges, an AtomicHistogram for histograms — and
 * each shard is owned by exactly one writer thread (farm replica w
 * writes shard w; the control plane writes its own families). The
 * fast path is a relaxed fetch_add on a cache line no other thread
 * writes; scrape() merges the shards of every family into one exact
 * Snapshot (counters sum, gauges sum, histograms bucket-merge) without
 * ever stopping a writer.
 *
 * Registration (counter()/gauge()/histogram()) takes a mutex and may
 * allocate — it happens at install/bind time, control-plane cadence.
 * Handles returned to callers stay valid for the registry's lifetime
 * (families are never removed; slots are heap blocks that never move).
 * A default-constructed handle is a no-op sink, so callers can keep
 * one unconditional `counter_.inc()` on the fast path and decide at
 * bind time whether it goes anywhere.
 *
 * Facade adoption — collectors: subsystems that already maintain
 * counters (SwitchStats, the telemetry rings, the QSBR domain) do NOT
 * duplicate them into shard slots; they register a *collector*, a
 * callback that contributes values straight out of the one
 * authoritative source at scrape time. The facade struct and the
 * exporter therefore read the same underlying count and can never
 * diverge. Collectors may read non-atomic state, so scrape(true) (the
 * default) carries the same batch-boundary contract as
 * SwitchFarm::mergedStats(); scrape(false) reads only the lock-free
 * shard slots and is safe at any time, concurrent with all writers —
 * the TSan suite pins exactly that.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace taurus::obs {

/** What a metric family measures (Prometheus-compatible taxonomy). */
enum class MetricKind
{
    Counter,  ///< monotonic count; name ends in _total by convention
    Gauge,    ///< point-in-time value (occupancy, version, flag)
    Histogram ///< log-bucketed distribution (latency, duration)
};

/** No-op-able handle to one shard slot of a counter family. */
class Counter
{
  public:
    Counter() = default;
    void inc(uint64_t n = 1)
    {
        if (v_)
            v_->fetch_add(n, std::memory_order_relaxed);
    }
    uint64_t value() const
    {
        return v_ ? v_->load(std::memory_order_relaxed) : 0;
    }
    explicit operator bool() const { return v_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Counter(std::atomic<uint64_t> *v) : v_(v) {}
    std::atomic<uint64_t> *v_ = nullptr;
};

/** No-op-able handle to one shard slot of a gauge family. Gauges are
 *  doubles bit-cast into the same padded slots as counters. */
class Gauge
{
  public:
    Gauge() = default;
    void set(double v);
    double value() const;
    explicit operator bool() const { return v_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit Gauge(std::atomic<uint64_t> *v) : v_(v) {}
    std::atomic<uint64_t> *v_ = nullptr;
};

/** No-op-able handle to one shard's AtomicHistogram. */
class HistogramCell
{
  public:
    HistogramCell() = default;
    void observe(double v)
    {
        if (h_)
            h_->add(v);
    }
    explicit operator bool() const { return h_ != nullptr; }

  private:
    friend class MetricsRegistry;
    explicit HistogramCell(AtomicHistogram *h) : h_(h) {}
    AtomicHistogram *h_ = nullptr;
};

/**
 * One merged scrape of a registry: every family's shards folded
 * together, plus every collector's contributions, aggregated by
 * (name, labels) — numbers are exact sums / exact bucket merges.
 */
struct Snapshot
{
    struct Num
    {
        std::string name;
        std::string labels; ///< rendered body, e.g. `app="0",stage="x"`
        MetricKind kind = MetricKind::Counter;
        double value = 0.0;
    };
    struct Hist
    {
        std::string name;
        std::string labels;
        Histogram hist;
    };

    std::vector<Num> nums;
    std::vector<Hist> hists;

    /** Lookup helpers (nullptr / empty-histogram when absent). */
    const Num *find(const std::string &name,
                    const std::string &labels = "") const;
    const Hist *findHist(const std::string &name,
                         const std::string &labels = "") const;
    /** Numeric value, 0.0 when the series is absent. */
    double value(const std::string &name,
                 const std::string &labels = "") const;

    /** Fold a (name, labels, kind) contribution in: counters and
     *  gauges sum with an existing series, histograms bucket-merge. */
    void addNum(const std::string &name, const std::string &labels,
                MetricKind kind, double value);
    void addHist(const std::string &name, const std::string &labels,
                 const Histogram &h);
};

/** Sharded lock-free metrics registry. */
class MetricsRegistry
{
  public:
    /** One shard per fast-path writer (farm replica); shard indices
     *  passed to the handle factories must be < `shards`. */
    explicit MetricsRegistry(size_t shards = 1);

    size_t shards() const { return shards_; }

    /**
     * Register (or re-attach to) a counter family and return the
     * handle for `shard`. Families are keyed by (name, labels): every
     * replica calling with the same key shares one family, each on its
     * own slot. Throws std::invalid_argument when the key exists with
     * a different kind, or `shard` is out of range.
     */
    Counter counter(const std::string &name, const std::string &labels,
                    size_t shard);

    /** Gauge analog of counter(). */
    Gauge gauge(const std::string &name, const std::string &labels,
                size_t shard);

    /** Histogram analog of counter(). */
    HistogramCell histogram(const std::string &name,
                            const std::string &labels, size_t shard);

    /**
     * Register a scrape-time contributor (facade adoption; see file
     * header). Returns a token for removeCollector — a subsystem whose
     * lifetime is shorter than the registry's (a switch replica, the
     * online runtime) must deregister before dying.
     */
    using Collector = std::function<void(Snapshot &)>;
    uint64_t addCollector(Collector fn);
    void removeCollector(uint64_t token);

    /**
     * Merge every family's shards (and, by default, run the
     * collectors) into one Snapshot. `run_collectors = false` reads
     * only the lock-free shard slots and is safe concurrently with
     * every writer; `true` additionally invokes the collectors, whose
     * sources may require the caller to be at a batch boundary (the
     * same contract as SwitchFarm::mergedStats()).
     */
    Snapshot scrape(bool run_collectors = true) const;

  private:
    /** A counter/gauge slot on its own cache line: shard s's writer is
     *  the only thread that ever writes slot s. */
    struct alignas(64) PaddedSlot
    {
        std::atomic<uint64_t> v{0};
    };

    struct Family
    {
        std::string name;
        std::string labels;
        MetricKind kind = MetricKind::Counter;
        std::unique_ptr<PaddedSlot[]> slots;      ///< counters/gauges
        std::unique_ptr<AtomicHistogram[]> cells; ///< histograms
    };

    Family &family(const std::string &name, const std::string &labels,
                   MetricKind kind, size_t shard);

    size_t shards_;
    /** Guards registration and the collector list — never the slot
     *  writes themselves. Families are pointer-stable once created. */
    mutable std::mutex m_;
    std::vector<std::unique_ptr<Family>> families_;
    std::vector<std::pair<uint64_t, Collector>> collectors_;
    uint64_t next_collector_ = 1;
};

} // namespace taurus::obs
