/**
 * @file
 * Table 8: end-to-end anomaly detection — control-plane baseline
 * (sampling -> XDP -> DB -> batched ML -> rule install) versus the
 * Taurus data plane, on the same KDD-style traffic and the same trained
 * model.
 *
 * The paper drives 5 Gb/s of traffic (~1 Mpkt/s); this bench generates
 * a dense trace (hundreds of kpkt/s) so the same overload mechanics
 * appear: higher sampling grows batches and latencies while the
 * per-packet data plane holds the model's full F1 at ns latency.
 *
 * Problem size: 150k connections at full size (use --scale to grow or
 * shrink it — the harness validates and clamps the factor, replacing
 * the old unchecked `atoll(argv[1])` path), 2k under --smoke.
 */

#include "harness.hpp"

#include <cmath>
#include <cstdio>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/experiment.hpp"
#include "util/table.hpp"

TAURUS_BENCH(table8_end_to_end, "Table 8",
             "end-to-end control-plane baseline vs Taurus data plane")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    const size_t connections = ctx.size(150000, 2000);
    const size_t train_conns = ctx.size(4000, 800);

    os << "Table 8: baseline batching/latency and effective accuracy "
          "vs Taurus\n"
          "Paper: baseline detects 0.78/2.55/0.015/0.000 % (F1 "
          "1.5/4.9/0.03/0.001) across sampling 1e-5..1e-2;\n"
          "       Taurus detects 58.2% (F1 71.1) at every rate, per "
          "packet.\n\n";

    const auto dnn = models::trainAnomalyDnn(1, train_conns);
    os << "Offline model: F1 = "
       << TablePrinter::num(dnn.quant_test.f1 * 100.0, 1)
       << ", recall = "
       << TablePrinter::num(dnn.quant_test.recall * 100.0, 1)
       << " (quantized, held-out)\n";

    net::KddConfig cfg;
    cfg.connections = connections;
    cfg.trace_duration_s = 1.5;
    net::KddGenerator gen(cfg, 42);
    const auto trace = gen.expandToPackets(gen.sampleConnections());
    const double span = trace.back().time_s;
    os << "Trace: " << trace.size() << " packets over "
       << TablePrinter::num(span, 1) << " s ("
       << TablePrinter::num(double(trace.size()) / span / 1e3, 0)
       << " kpkt/s)\n\n";
    ctx.metric("connections", connections);
    ctx.metric("trace_packets", trace.size());

    const auto rows =
        core::runEndToEnd(trace, dnn, {1e-5, 1e-4, 1e-3, 1e-2});

    TablePrinter t({"Sampling", "XDP batch", "ML batch", "XDP ms",
                    "DB ms", "ML ms", "Install ms", "All ms",
                    "Det% base", "Det% Taurus", "F1 base", "F1 Taurus"});
    for (const auto &row : rows) {
        const auto &b = row.baseline;
        char rate[16];
        std::snprintf(rate, sizeof(rate), "1e%+.0f",
                      std::log10(b.sampling_rate));
        t.addRow({rate, TablePrinter::num(b.mean_xdp_batch, 1),
                  TablePrinter::num(b.mean_backlog, 1),
                  TablePrinter::num(b.xdp_ms, 1),
                  TablePrinter::num(b.db_ms, 1),
                  TablePrinter::num(b.ml_ms, 1),
                  TablePrinter::num(b.install_ms, 1),
                  TablePrinter::num(b.total_ms, 1),
                  TablePrinter::num(b.detected_pct, 3),
                  TablePrinter::num(row.taurus.detected_pct, 1),
                  TablePrinter::num(b.f1_x100, 3),
                  TablePrinter::num(row.taurus.f1_x100, 1)});
        char key[32];
        std::snprintf(key, sizeof(key), "baseline_1e%+.0f",
                      std::log10(b.sampling_rate));
        ctx.metric(std::string(key) + "_total_ms", b.total_ms);
        ctx.metric(std::string(key) + "_f1_x100", b.f1_x100);
    }
    t.print(os);

    if (!rows.empty()) {
        const auto &tr = rows.back().taurus;
        ctx.metric("taurus_detected_pct", tr.detected_pct);
        ctx.metric("taurus_f1_x100", tr.f1_x100);
        ctx.metric("taurus_mean_ml_latency_ns", tr.mean_ml_latency_ns);
        os << "\nTaurus mean ML-path latency: "
           << TablePrinter::num(tr.mean_ml_latency_ns, 0) << " ns\n";
    }
    ctx.metric("offline_f1_x100", dnn.quant_test.f1 * 100.0);

    os << "\nThe baseline's reaction time is batch-bound; Taurus "
          "decides per packet at data-plane latency.\n";
}
