/**
 * @file
 * The MapReduce control-block front end (Section 3.3.1 / Figure 4).
 *
 * The paper proposes a dedicated P4 control-block type programmed with
 * Map and Reduce constructs:
 *
 *     Control MapReduce(inout metadata FeatureSet,
 *                       inout metadata Output) {
 *       Weights = loadModelFromFile(Anomaly.model)
 *       LinearResults = Map(sizeOf(Weights[0])) { i =>
 *         Mult_Results = Map(sizeOf(Weights[1])) { j =>
 *           Weights[i,j] * FeatureSet[j] }
 *         Reduce(Mult_Results) { (x,y) => x + y } }
 *       Output = Map(sizeOf(LinearResults)) { k =>
 *         ReLU(LinearResults[k]) }
 *     }
 *
 * Builder is that syntax as a C++ API: values are handles, map() is the
 * elementwise construct, mapReduce() is the fused inner Map/Reduce pair
 * (one dot product per weight row), and the builder legalizes widths to
 * the CU shape (splitting wide rows into PartialDot + CombineAdd)
 * exactly as the compiler front end does. build() returns the same
 * dfg::Graph the rest of the stack consumes.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "dfg/graph.hpp"

namespace taurus::dfg::mr {

/** A (possibly segmented) value flowing through the program. */
struct Value
{
    std::vector<int> nodes;  ///< one node id per <= kLanes segment
    std::vector<int> widths; ///< per-segment widths

    int totalWidth() const;
};

/** Figure-4 style program builder. */
class Builder
{
  public:
    explicit Builder(std::string name);

    /** Declare an input vector (the FeatureSet metadata). */
    Value input(int width, const std::string &label = "in");

    /** Map { x => fn(x) } elementwise, optionally with an immediate. */
    Value map(const Value &x, MapFn fn, int32_t imm = 0,
              const fixed::Requantizer &rq = {});

    /** Map a chain of elementwise functions (<= kStages per CU pass). */
    Value mapChain(const Value &x, const std::vector<MapFn> &fns,
                   const std::vector<int32_t> &imms = {},
                   const fixed::Requantizer &rq = {});

    /**
     * The nested Map/Reduce pair of Figure 4: for each weight row,
     * Map { j => w[i,j] * x[j] } then Reduce { (a,b) => a + b }, plus
     * bias and requantization. Rows wider than kLanes are legalized
     * into partial dots and a combine.
     */
    Value mapReduce(const Value &x,
                    const std::vector<std::vector<int8_t>> &weights,
                    const std::vector<int32_t> &biases,
                    const fixed::Requantizer &rq,
                    const std::string &label = "dot");

    /** Reduce a vector of int32 partials into one int8 scalar. */
    Value reduceAdd(const Value &partials, int32_t bias,
                    const fixed::Requantizer &rq);

    /** Elementwise 256-entry table lookup (runs on an MU). */
    Value lookup(const Value &x, const std::vector<int8_t> &lut);

    /** Lane-wise product / sum of two equally-shaped values. */
    Value mul(const Value &a, const Value &b,
              const fixed::Requantizer &rq);
    Value add(const Value &a, const Value &b);

    /** Squared distance to a point; raw int32 unless requantized. */
    Value squaredDist(const Value &x, const std::vector<int8_t> &point,
                      const fixed::Requantizer &rq = {});

    /** Index of the minimum lane. */
    Value argMin(const Value &x);

    /** Gather scalar values into one vector (<= kLanes of them). */
    Value gatherScalars(const std::vector<Value> &scalars);

    /** Declare a program output. */
    void output(const Value &v, const std::string &label = "out");

    /** Loop metadata (target-independent unrolling, Section 4). */
    void setLoop(int trip, int unroll);

    /** Finish; validates and returns the graph. */
    Graph build();

  private:
    Value gather(const std::vector<int> &scalars,
                 const std::string &label);

    Graph graph_;
    bool built_ = false;
};

} // namespace taurus::dfg::mr
