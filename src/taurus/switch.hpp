/**
 * @file
 * TaurusSwitch: the complete data-plane pipeline of Figure 6.
 *
 * parse -> preprocessing MATs (stateful feature extraction) ->
 * { MapReduce block | bypass } -> round-robin merge -> postprocessing
 * MATs (verdict) -> PIFO scheduler.
 *
 * ML packets pay the MapReduce block's latency; bypass packets do not
 * ("Packets that do not need an ML decision can bypass the MapReduce
 * block, incurring no additional latency"). The control plane installs
 * applications through installApp() — any AppArtifact: anomaly DNN,
 * IoT classifier, ... — and pushes weight-only updates through
 * updateWeights() without touching placement (Figure 1).
 */

#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>

#include "compiler/compile.hpp"
#include "hw/cycle_sim.hpp"
#include "models/zoo.hpp"
#include "pisa/mat.hpp"
#include "pisa/parser.hpp"
#include "pisa/pifo.hpp"
#include "taurus/feature_program.hpp"
#include "taurus/safety.hpp"
#include "util/span.hpp"
#include "util/stats.hpp"

namespace taurus::core {

/** One LPM route: dst prefix -> egress port. */
struct Route
{
    uint32_t prefix = 0;
    int length = 0;
    uint16_t port = 0;
};

/** Static configuration of one Taurus switch. */
struct SwitchConfig
{
    compiler::Options compiler; ///< grid spec + timing + packing knobs
    pisa::PipelineTiming mat_timing;
    FeatureProgramConfig features;
    pisa::SchedPolicy policy = pisa::SchedPolicy::AnomalyLast;
    /** When false, all traffic is forced through the MapReduce block
     *  (the bypass ablation). */
    bool enable_bypass = true;
    /** Drop flagged packets instead of deprioritizing them. */
    bool drop_anomalies = false;
    size_t queue_capacity = 4096;
    /** Hard bounds on ML decisions (Section 3.2); empty = disabled. */
    SafetyPolicy safety;
    /** LPM forwarding table; empty = forward everything to port 0. */
    std::vector<Route> routes;
};

/** Feature codes a decision can carry (DNN uses 6, SVM 8). */
constexpr size_t kDecisionFeatureSlots = 8;

/** How an installed app's postprocessing interprets the ML score. */
enum class VerdictKind
{
    /** The score code thresholds into a flag (anomaly detectors). */
    BinaryThreshold,
    /** The score code is a class id (argmax-headed classifiers). */
    ArgmaxClass,
    /** The score code is a raw scalar action (congestion control). */
    ScalarAction,
};

/** The switch's verdict on one packet. */
struct SwitchDecision
{
    bool flagged = false;   ///< postprocessing marked it anomalous
    bool dropped = false;
    bool bypassed = false;  ///< took the non-ML path
    double latency_ns = 0.0;
    int8_t score = 0;       ///< raw MapReduce output code
    /**
     * Generic verdict: the predicted class id under an ArgmaxClass
     * policy, `flagged` as 0/1 under BinaryThreshold, the raw score
     * code under ScalarAction. App-generic scoring compares this to
     * TracePacket::class_label.
     */
    int32_t class_id = 0;
    uint16_t egress_port = 0; ///< LPM forwarding decision
    /**
     * The int8 feature codes the preprocessing MATs computed for this
     * packet (the model's exact input view). This is the telemetry the
     * online-learning runtime mirrors to the control plane: the paper's
     * weight-update loop retrains on data-plane telemetry, and exporting
     * the already-computed codes costs a few byte copies rather than a
     * second feature-extraction pass.
     */
    std::array<int8_t, kDecisionFeatureSlots> features{};
    uint8_t feature_count = 0;
};

/** Aggregate counters the switch maintains. */
struct SwitchStats
{
    uint64_t packets = 0;
    uint64_t ml_packets = 0;
    uint64_t flagged = 0;
    uint64_t dropped = 0;
    uint64_t safety_overrides = 0; ///< verdicts cleared by safety MATs
    util::RunningStat ml_latency_ns;
    util::RunningStat bypass_latency_ns;

    /** Fold another switch's counters in (SwitchFarm stat merging). */
    void merge(const SwitchStats &o);
};

/**
 * Per-switch reusable packet-processing state: the wire-byte buffer,
 * the PHV, the MapReduce input/feature buffer, and the dataflow
 * evaluation scratch. Holding these per switch instance makes the
 * steady-state process() path allocation-free.
 */
struct PacketScratch
{
    pisa::Packet pkt;
    pisa::Phv phv;
    std::vector<std::vector<int8_t>> ml_input; ///< one vector per graph Input
    dfg::EvalScratch eval;
    hw::SimResult sim_result;
};

struct AppArtifact;

/** A Taurus-enabled switch instance. */
class TaurusSwitch
{
  public:
    explicit TaurusSwitch(SwitchConfig cfg = {});

    /**
     * Install a self-describing data-plane application: compiles its
     * lowered graph onto the MapReduce grid, builds its preprocessing
     * feature program, and installs its verdict table. Throws
     * std::invalid_argument when the app's feature count exceeds
     * kDecisionFeatureSlots (the decision/telemetry export would
     * otherwise silently truncate). Resets stateful registers.
     */
    void installApp(const AppArtifact &app);

    /**
     * Install a trained anomaly model. Thin wrapper: builds the
     * anomaly AppArtifact and delegates to installApp(); decisions and
     * statistics are bit-identical between the two entry points (a
     * regression test enforces the parity).
     */
    void installAnomalyModel(const models::AnomalyDnn &model);

    /**
     * Push fresh weights into the installed program without re-placing
     * it (the out-of-band weight-update path). The graph must be
     * structurally identical to the installed one.
     */
    void updateWeights(const dfg::Graph &fresh);

    /** Process one packet end to end. */
    SwitchDecision process(const net::TracePacket &pkt);

    /**
     * Process a batch of packets in trace order, writing one decision
     * per packet. `decisions.size()` must equal `packets.size()`.
     * Decisions and statistics are bit-identical to calling process()
     * per packet; the batch entry point exists so drivers amortize the
     * call overhead and so SwitchFarm workers drain partitions.
     */
    void processBatch(util::Span<const net::TracePacket> packets,
                      util::Span<SwitchDecision> decisions);

    /** MapReduce-block latency for one ML packet, ns (constant). */
    double mapReduceLatencyNs() const { return mr_latency_ns_; }

    /** Total pipeline latency for ML / bypass packets, ns. */
    double mlPathLatencyNs() const;
    double bypassPathLatencyNs() const;

    const SwitchStats &stats() const { return stats_; }
    const hw::GridProgram &program() const { return *program_; }
    const FeatureProgram &featureProgram() const { return features_; }

    /** Name of the installed application ("" before any install). */
    const std::string &appName() const { return app_name_; }
    /** Verdict semantics of the installed application. */
    VerdictKind verdictKind() const { return verdict_kind_; }

    /** Clear registers and statistics (new trace). */
    void reset();

  private:
    SwitchConfig cfg_;
    pisa::Parser parser_;
    FeatureProgram features_;
    pisa::MatPipeline postprocess_;
    CompiledSafety safety_;
    pisa::MatPipeline forwarding_;
    std::unique_ptr<hw::GridProgram> program_;
    std::unique_ptr<hw::CycleSim> sim_;
    pisa::Pifo scheduler_;
    double mr_latency_ns_ = 0.0;
    SwitchStats stats_;
    PacketScratch scratch_;
    std::string app_name_;
    VerdictKind verdict_kind_ = VerdictKind::BinaryThreshold;
};

} // namespace taurus::core
