/**
 * @file
 * Minimal dense float matrix/vector support for the training stack.
 *
 * The models that run in the Taurus data plane are small (tens of units per
 * layer), so a simple row-major matrix with unblocked loops is more than
 * fast enough for training and keeps the numerics easy to audit.
 */

#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace taurus::nn {

using Vector = std::vector<float>;

/** Row-major dense matrix. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, float fill = 0.0f)
        : rows_(rows), cols_(cols), data_(rows * cols, fill)
    {
    }

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    float &
    at(size_t r, size_t c)
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    float
    at(size_t r, size_t c) const
    {
        assert(r < rows_ && c < cols_);
        return data_[r * cols_ + c];
    }

    const std::vector<float> &data() const { return data_; }
    std::vector<float> &data() { return data_; }

    /** y = A * x (x sized cols, result sized rows). */
    Vector matVec(const Vector &x) const;

    /** y = A^T * x (x sized rows, result sized cols). */
    Vector matVecTransposed(const Vector &x) const;

    /** this += scale * (x outer y), x sized rows, y sized cols. */
    void addOuter(const Vector &x, const Vector &y, float scale);

    /** this += scale * other (same shape). */
    void addScaled(const Matrix &other, float scale);

    /** this *= scale. */
    void scale(float s);

    /** Largest |entry|. */
    float absMax() const;

    /** Xavier/Glorot uniform initialization. */
    static Matrix glorot(size_t rows, size_t cols, util::Rng &rng);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<float> data_;
};

/** Elementwise helpers on Vector. */
float dot(const Vector &a, const Vector &b);
void axpy(Vector &y, const Vector &x, float a);
float absMax(const Vector &v);

} // namespace taurus::nn
