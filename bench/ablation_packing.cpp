/**
 * @file
 * Ablation: neuron lane-packing (the stage-3 sparse reduction of
 * Figure 8). Packing lets multiple narrow dot products share one CU's
 * lanes; without it, every neuron takes its own CU.
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "util/table.hpp"

TAURUS_BENCH(ablation_packing, "Figure 8 ablation",
             "dot-product lane packing on/off across the model zoo")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Ablation: dot-product lane packing (sparse stage-3 "
          "reductions)\n\n";

    const size_t conns = ctx.size(3000, 800);
    const auto dnn = models::trainAnomalyDnn(1, conns);
    const auto svm = models::trainAnomalySvm(1, conns);
    const auto km = models::trainIotKmeans(1, conns);
    const auto lstm = models::buildIndigoLstm(1);

    struct App
    {
        std::string name;
        const dfg::Graph *graph;
    };
    const App apps[] = {{"KMeans", &km.lowered.graph},
                        {"SVM", &svm.lowered.graph},
                        {"DNN", &dnn.graph},
                        {"LSTM", &lstm.graph}};

    TablePrinter t({"App", "CUs packed", "CUs unpacked", "Area packed",
                    "Area unpacked", "Saving %"});
    for (const auto &app : apps) {
        compiler::Options on, off;
        off.enable_packing = false;
        const auto rep_on =
            compiler::analyze(compiler::compile(*app.graph, on));
        const auto rep_off =
            compiler::analyze(compiler::compile(*app.graph, off));
        const double saving_pct =
            (1.0 - rep_on.area_mm2 / rep_off.area_mm2) * 100.0;
        ctx.metric(bench::slug(app.name) + "_packed_cus", int64_t{rep_on.cus});
        ctx.metric(bench::slug(app.name) + "_unpacked_cus", int64_t{rep_off.cus});
        ctx.metric(bench::slug(app.name) + "_area_saving_pct", saving_pct);
        t.addRow({app.name, TablePrinter::num(int64_t{rep_on.cus}),
                  TablePrinter::num(int64_t{rep_off.cus}),
                  TablePrinter::num(rep_on.area_mm2, 2),
                  TablePrinter::num(rep_off.area_mm2, 2),
                  TablePrinter::num(saving_pct, 0)});
    }
    t.print(os);

    os << "\nPacking matters most for layers of narrow neurons (the "
          "DNN's 6-input rows); wide dot products already fill their "
          "CU.\n";
}
