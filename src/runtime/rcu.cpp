#include "runtime/rcu.hpp"

#include <limits>
#include <utility>

namespace taurus::runtime {

QsbrReclaimer::QsbrReclaimer(size_t readers) : slots_(readers) {}

void
QsbrReclaimer::online(size_t r)
{
    quiesce(r);
}

void
QsbrReclaimer::quiesce(size_t r)
{
    // Acquire the epoch then release-publish it: everything the reader
    // did before this quiescent state happens-before a writer that
    // observes the announcement.
    const uint64_t e = epoch_.load(std::memory_order_acquire);
    slots_[r].announced.store(e, std::memory_order_release);
}

void
QsbrReclaimer::offline(size_t r)
{
    slots_[r].announced.store(0, std::memory_order_release);
}

void
QsbrReclaimer::retire(std::function<void()> reclaim)
{
    std::lock_guard<std::mutex> lk(m_);
    // Tag with the *pre-bump* epoch: a reader announcing an epoch
    // strictly greater than the tag provably quiesced after the retire.
    const uint64_t tag =
        epoch_.fetch_add(1, std::memory_order_acq_rel);
    retired_.emplace_back(tag, std::move(reclaim));
    retired_count_.fetch_add(1, std::memory_order_relaxed);
}

uint64_t
QsbrReclaimer::minOnlineEpoch() const
{
    uint64_t min_e = std::numeric_limits<uint64_t>::max();
    for (const Slot &s : slots_) {
        const uint64_t e = s.announced.load(std::memory_order_acquire);
        if (e != 0 && e < min_e)
            min_e = e; // online reader possibly still inside epoch e
    }
    return min_e;
}

size_t
QsbrReclaimer::tryReclaim()
{
    // Pop reclaimable entries under the lock, run the callbacks outside
    // it (a callback may free arbitrary tenant state).
    std::vector<std::function<void()>> run;
    {
        std::lock_guard<std::mutex> lk(m_);
        const uint64_t bound = minOnlineEpoch();
        while (!retired_.empty() && retired_.front().first < bound) {
            run.push_back(std::move(retired_.front().second));
            retired_.pop_front();
        }
    }
    for (auto &fn : run)
        fn();
    reclaimed_count_.fetch_add(run.size(), std::memory_order_relaxed);
    return run.size();
}

} // namespace taurus::runtime
