/**
 * @file
 * Cycle-level simulator for placed MapReduce programs.
 *
 * Models the block as a statically-routed, pipelined dataflow machine:
 * every producer->consumer transfer pays a FIFO synchronization cost plus
 * one cycle per interconnect hop; every CU pass takes one cycle per
 * occupied stage (a fused 16-wide map+reduce takes 1 + log2(16) = 5
 * cycles, Section 5.1.3); the PHV interface adds fixed staging FIFOs
 * (Figure 7). Functional results use the dfg reference semantics, so the
 * simulator is bit-exact with dfg::evaluate by construction of values and
 * is *tested* to match nn::QuantizedMlp end to end.
 *
 * For line-rate (fully unrolled) programs each unit hosts one op (or
 * lane-packed ops) and the block is fully pipelined: II = 1. Loop metadata
 * multiplies II by ceil(trip/unroll); folded programs (serialize_sharing)
 * derive II from per-unit service demand.
 *
 * Timing is entirely static per installed program, so it is *compiled
 * once* into a Schedule at construction: per-node start/finish cycles,
 * route hops, latency, II, and gpktps. The steady-state per-packet path
 * (runInto) then performs only the functional dfg evaluation, against
 * reusable scratch buffers — no validation, no timing walk, and no
 * allocations once the buffers are warm.
 */

#pragma once

#include <vector>

#include "dfg/eval.hpp"
#include "hw/program.hpp"

namespace taurus::hw {

/** Result of simulating one packet through the block. */
struct SimResult
{
    std::vector<dfg::LaneVec> outputs; ///< one per Output node
    int latency_cycles = 0;
    double latency_ns = 0.0;
    int ii_cycles = 1;       ///< initiation interval
    double gpktps = 0.0;     ///< sustained packets/ns = clock/II
    int route_hops = 0;      ///< total routed hops (for reports)
};

/**
 * The input-independent timing of a placed program, compiled once at
 * CycleSim construction and reused for every packet.
 */
struct Schedule
{
    std::vector<int> start;  ///< per-node compute start cycle
    std::vector<int> finish; ///< per-node finish cycle
    int latency_cycles = 0;
    double latency_ns = 0.0;
    int ii_cycles = 1;
    double gpktps = 0.0;
    int route_hops = 0;
};

/** Simulates a GridProgram. */
class CycleSim
{
  public:
    explicit CycleSim(const GridProgram &program);

    /** Run one packet's feature vector(s) through the block. */
    SimResult run(const std::vector<std::vector<int8_t>> &inputs) const;

    /**
     * Allocation-free per-packet entry point: functional evaluation into
     * `scratch`, timing copied from the cached Schedule. `res.outputs`
     * references are refreshed in place (lane buffers reused). Results
     * are bit-identical to run().
     */
    void runInto(const std::vector<std::vector<int8_t>> &inputs,
                 dfg::EvalScratch &scratch, SimResult &res) const;

    /** The compiled (static, per-program) timing schedule. */
    const Schedule &schedule() const { return schedule_; }

    /**
     * Compile the timing schedule for a program from scratch: the
     * longest-path walk with per-unit serialization and the II
     * derivation. Used by the constructor and by regression tests that
     * compare cached schedules against a fresh computation.
     */
    static Schedule compileSchedule(const GridProgram &program);

    /** Latency of a single node's compute, in cycles. */
    static int nodeLatency(const dfg::Node &n, const dfg::Graph &g,
                           const GridSpec &spec, const TimingSpec &timing);

  private:
    const GridProgram &program_;
    Schedule schedule_;
};

} // namespace taurus::hw
