#include <gtest/gtest.h>

#include <algorithm>

#include "net/cc_sim.hpp"
#include "net/event.hpp"
#include "net/features.hpp"
#include "net/iot.hpp"
#include "net/kdd.hpp"

using namespace taurus;

TEST(EventQueue, RunsInTimeOrderWithStableTies)
{
    net::EventQueue eq;
    std::vector<int> order;
    eq.schedule(2.0, [&] { order.push_back(3); });
    eq.schedule(1.0, [&] { order.push_back(1); });
    eq.schedule(1.0, [&] { order.push_back(2); }); // tie: FIFO
    eq.runAll();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_DOUBLE_EQ(eq.now(), 2.0);
}

TEST(EventQueue, ScheduleInPastThrows)
{
    net::EventQueue eq;
    eq.schedule(1.0, [] {});
    eq.runAll();
    EXPECT_THROW(eq.schedule(0.5, [] {}), std::invalid_argument);
}

TEST(EventQueue, NestedSchedulingAndRunUntil)
{
    net::EventQueue eq;
    int fired = 0;
    eq.schedule(1.0, [&] {
        ++fired;
        eq.scheduleIn(1.0, [&] { ++fired; });
    });
    eq.runUntil(1.5);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
    eq.runUntil(3.0);
    EXPECT_EQ(fired, 2);
    EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(Features, Log2BinBoundaries)
{
    EXPECT_EQ(net::log2Bin(0), 0);
    EXPECT_EQ(net::log2Bin(1), 1);
    EXPECT_EQ(net::log2Bin(2), 1);
    EXPECT_EQ(net::log2Bin(3), 2);
    EXPECT_EQ(net::log2Bin(6), 2);
    EXPECT_EQ(net::log2Bin(7), 3);
    EXPECT_EQ(net::log2Bin((uint64_t{1} << 40)), 31); // clamped
}

TEST(Features, FlowKeyHashDiscriminates)
{
    net::FlowKey a{1, 2, 3, 4, 6};
    net::FlowKey b = a;
    EXPECT_EQ(a.hash(), b.hash());
    b.src_port = 5;
    EXPECT_NE(a.hash(), b.hash());
}

TEST(Features, TrackerAccumulatesFlowState)
{
    net::FlowTracker t;
    net::TracePacket p;
    p.flow = {1, 2, 1000, 80, net::kProtoTcp};
    p.size_bytes = 100;
    p.time_s = 0.0;
    p.syn = true;
    t.observe(p);

    auto f = t.dnnFeatures();
    ASSERT_EQ(f.size(), net::kDnnFeatureCount);
    EXPECT_FLOAT_EQ(f[0], 0); // zero duration
    EXPECT_FLOAT_EQ(f[1], 0); // tcp
    EXPECT_FLOAT_EQ(f[2], (float)net::log2Bin(100));
    EXPECT_FLOAT_EQ(f[3], 1); // log2Bin(1 pkt)
    EXPECT_FLOAT_EQ(f[4], 0); // no urgent
    EXPECT_FLOAT_EQ(f[5], 1); // one conn in window

    // Second packet 10 ms later with URG.
    p.time_s = 0.010;
    p.syn = false;
    p.urg = true;
    t.observe(p);
    f = t.dnnFeatures();
    EXPECT_FLOAT_EQ(f[0], (float)net::log2Bin(10)); // 10 ms
    EXPECT_FLOAT_EQ(f[2], (float)net::log2Bin(200));
    EXPECT_FLOAT_EQ(f[4], 1);
}

TEST(Features, SlidingWindowResets)
{
    net::FlowTracker t;
    net::TracePacket p;
    p.flow = {9, 2, 1000, 80, net::kProtoTcp};
    for (int i = 0; i < 4; ++i) {
        p.flow.src_port = static_cast<uint16_t>(1000 + i);
        p.time_s = 0.01 * i;
        t.observe(p);
    }
    EXPECT_FLOAT_EQ(t.dnnFeatures()[5], (float)net::log2Bin(4));

    // 2 s later the window has expired: count restarts.
    p.flow.src_port = 2000;
    p.time_s = 2.1;
    t.observe(p);
    EXPECT_FLOAT_EQ(t.dnnFeatures()[5], (float)net::log2Bin(1));
}

TEST(Features, SvmFeaturesExtendDnnFeatures)
{
    net::FlowTracker t;
    net::TracePacket p;
    p.flow = {1, 2, 1000, 22, net::kProtoTcp};
    p.syn = true;
    t.observe(p);
    const auto dnn = t.dnnFeatures();
    const auto svm = t.svmFeatures();
    ASSERT_EQ(svm.size(), net::kSvmFeatureCount);
    for (size_t i = 0; i < dnn.size(); ++i)
        EXPECT_FLOAT_EQ(svm[i], dnn[i]);
    EXPECT_FLOAT_EQ(svm[7], (float)net::serviceCode(22));
}

TEST(Kdd, AnomalyFractionRespected)
{
    net::KddConfig cfg;
    cfg.connections = 2000;
    cfg.anomaly_fraction = 0.3;
    net::KddGenerator gen(cfg, 5);
    const auto recs = gen.sampleConnections();
    EXPECT_EQ(recs.size(), 2000u);
    size_t attacks = 0;
    for (const auto &r : recs)
        attacks += r.anomalous();
    EXPECT_NEAR(double(attacks) / 2000.0, 0.3, 0.02);
}

TEST(Kdd, RecordsSortedAndExpandedConsistently)
{
    net::KddConfig cfg;
    cfg.connections = 500;
    net::KddGenerator gen(cfg, 6);
    const auto recs = gen.sampleConnections();
    EXPECT_TRUE(std::is_sorted(recs.begin(), recs.end(),
                               [](const auto &a, const auto &b) {
                                   return a.start_s < b.start_s;
                               }));

    const auto trace = gen.expandToPackets(recs);
    EXPECT_TRUE(std::is_sorted(trace.begin(), trace.end(),
                               [](const auto &a, const auto &b) {
                                   return a.time_s < b.time_s;
                               }));
    size_t expected_pkts = 0;
    for (const auto &r : recs)
        expected_pkts += static_cast<size_t>(std::max(1, r.fwd_pkts));
    EXPECT_EQ(trace.size(), expected_pkts);

    // Ground truth and conn ids are preserved.
    for (const auto &p : trace) {
        ASSERT_GE(p.conn_id, 0);
        ASSERT_LT(static_cast<size_t>(p.conn_id), recs.size());
        EXPECT_EQ(p.anomalous,
                  recs[static_cast<size_t>(p.conn_id)].anomalous());
    }
}

TEST(Kdd, AllAttackFamiliesPresent)
{
    net::KddConfig cfg;
    cfg.connections = 3000;
    net::KddGenerator gen(cfg, 7);
    const auto recs = gen.sampleConnections();
    int seen[5] = {};
    for (const auto &r : recs)
        ++seen[static_cast<int>(r.attack)];
    for (int c = 0; c < 5; ++c)
        EXPECT_GT(seen[c], 0) << net::toString(net::AttackClass(c));
    // DoS dominates the attack mix (NSL-KDD-like).
    EXPECT_GT(seen[1], seen[2]);
    EXPECT_GT(seen[2], seen[4]);
}

TEST(Kdd, DatasetIsLearnableButNotTrivial)
{
    net::KddConfig cfg;
    cfg.connections = 2000;
    net::KddGenerator gen(cfg, 8);
    const auto data = gen.dataset(3, false);
    ASSERT_GT(data.size(), 500u);
    ASSERT_EQ(data.featureCount(), net::kDnnFeatureCount);
    const double pos =
        double(std::count(data.y.begin(), data.y.end(), 1)) /
        double(data.size());
    EXPECT_GT(pos, 0.1);
    EXPECT_LT(pos, 0.5);
}

TEST(Kdd, DeterministicUnderSeed)
{
    net::KddConfig cfg;
    cfg.connections = 300;
    net::KddGenerator g1(cfg, 99), g2(cfg, 99);
    const auto r1 = g1.sampleConnections();
    const auto r2 = g2.sampleConnections();
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i) {
        EXPECT_EQ(r1[i].flow.src_ip, r2[i].flow.src_ip);
        EXPECT_EQ(r1[i].attack, r2[i].attack);
        EXPECT_DOUBLE_EQ(r1[i].start_s, r2[i].start_s);
    }
}

TEST(Iot, BinaryDatasetNearTargetBayesError)
{
    const auto data = net::iotBinaryDataset(4000, 3);
    ASSERT_EQ(data.featureCount(), 4u);
    // An oracle linear classifier on the informative dims should land
    // near 67% (Table 3's operating point), far from both 50 and 100.
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i) {
        const int pred = data.x[i][0] - data.x[i][1] > 0 ? 1 : 0;
        correct += (pred == data.y[i]);
    }
    const double acc = double(correct) / double(data.size());
    EXPECT_GT(acc, 0.60);
    EXPECT_LT(acc, 0.74);
}

TEST(Iot, DeviceDatasetHasFiveSeparableCategories)
{
    const auto data = net::iotDeviceDataset(2000, 4);
    ASSERT_EQ(data.featureCount(), 11u);
    EXPECT_EQ(data.classCount(), 5);
}

TEST(CcSim, AimdUtilizesBottleneck)
{
    net::CcConfig cfg;
    cfg.duration_s = 5.0;
    const auto res = net::runCcSim(cfg, net::aimdController);
    EXPECT_GT(res.avg_throughput_mbps, 0.3 * cfg.bottleneck_mbps);
    EXPECT_LE(res.avg_throughput_mbps, cfg.bottleneck_mbps * 1.01);
}

TEST(CcSim, FasterDecisionsTrackLoadBetter)
{
    // The Taurus framing (Section 5.1.2): a tighter decision interval
    // tracks on/off cross traffic better — higher throughput and
    // throughput/delay power for the same policy.
    net::CcConfig slow;
    slow.decision_interval_ms = 50.0;
    slow.duration_s = 8.0;
    slow.cross_traffic_fraction = 0.5;
    slow.cross_on_s = 0.25;
    slow.cross_off_s = 0.25;
    net::CcConfig fast = slow;
    fast.decision_interval_ms = 1.0;

    // A delay-sensitive hold-band controller for both.
    auto controller = [](const net::CcObservation &o) {
        if (o.loss_fraction > 0.01 || o.queue_fraction > 0.8)
            return net::CcAction::RateDown2x;
        if (o.rtt_ms > 1.5 * o.min_rtt_ms)
            return net::CcAction::RateDownAdd;
        if (o.queue_fraction < 0.2)
            return net::CcAction::RateUpAdd;
        return net::CcAction::Hold;
    };
    const auto r_slow = net::runCcSim(slow, controller);
    const auto r_fast = net::runCcSim(fast, controller);
    EXPECT_GT(r_fast.avg_throughput_mbps, r_slow.avg_throughput_mbps);
    EXPECT_GT(r_fast.power(), r_slow.power());
}

TEST(CcSim, ApplyActionClampsRate)
{
    EXPECT_DOUBLE_EQ(
        net::applyCcAction(net::CcAction::RateDown2x, 1.5, 100.0), 1.0);
    EXPECT_DOUBLE_EQ(
        net::applyCcAction(net::CcAction::RateUp2x, 90.0, 100.0), 100.0);
    EXPECT_DOUBLE_EQ(net::applyCcAction(net::CcAction::Hold, 42.0, 100.0),
                     42.0);
}

TEST(CcSim, ImitationSamplesCoverActions)
{
    const auto samples = net::ccImitationSamples(6, 21);
    ASSERT_GT(samples.size(), 100u);
    int seen[net::kCcActionCount] = {};
    for (const auto &s : samples) {
        ASSERT_GE(s.action, 0);
        ASSERT_LT(s.action, net::kCcActionCount);
        ASSERT_EQ(s.features.size(), 5u);
        ++seen[s.action];
    }
    int distinct = 0;
    for (int c : seen)
        distinct += c > 0;
    EXPECT_GE(distinct, 3);
}

TEST(IotTrace, GeneratorProducesLabeledSortedTrace)
{
    net::IotTraceConfig cfg;
    cfg.sessions = 400;
    const auto trace = net::iotDeviceTrace(cfg, 5);
    ASSERT_FALSE(trace.empty());

    int seen[net::kIotClassCount] = {};
    for (size_t i = 0; i < trace.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(trace[i].time_s, trace[i - 1].time_s);
        }
        ASSERT_GE(trace[i].class_label, 0);
        ASSERT_LT(trace[i].class_label, net::kIotClassCount);
        ++seen[trace[i].class_label];
        // Data-plane-visible sizes only (the parser floors at 54 B).
        EXPECT_GE(trace[i].size_bytes, 54);
        EXPECT_FALSE(trace[i].anomalous);
    }
    for (int c = 0; c < net::kIotClassCount; ++c)
        EXPECT_GT(seen[c], 0) << net::iotClassName(c);
}

TEST(IotTrace, DeterministicPerSeed)
{
    net::IotTraceConfig cfg;
    cfg.sessions = 200;
    const auto a = net::iotDeviceTrace(cfg, 9);
    const auto b = net::iotDeviceTrace(cfg, 9);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].flow.src_ip, b[i].flow.src_ip);
        EXPECT_EQ(a[i].size_bytes, b[i].size_bytes);
        EXPECT_EQ(a[i].class_label, b[i].class_label);
    }
    const auto c = net::iotDeviceTrace(cfg, 10);
    bool differs = c.size() != a.size();
    for (size_t i = 0; !differs && i < a.size(); ++i)
        differs = a[i].size_bytes != c[i].size_bytes;
    EXPECT_TRUE(differs);
}

TEST(IotTrace, PacketDatasetLabelsAndShape)
{
    net::IotTraceConfig cfg;
    cfg.sessions = 300;
    const auto trace = net::iotDeviceTrace(cfg, 11);
    const auto data = net::iotPacketDataset(trace, 3);
    ASSERT_GT(data.size(), 0u);
    EXPECT_EQ(data.size(), (trace.size() + 2) / 3);
    for (size_t i = 0; i < data.size(); ++i) {
        EXPECT_EQ(data.x[i].size(), net::kIotFlowFeatureCount);
        EXPECT_GE(data.y[i], 0);
        EXPECT_LT(data.y[i], net::kIotClassCount);
    }
}

TEST(Features, ServiceCodeMatchesKnownPortTable)
{
    // serviceCode must resolve exactly as the published table + the
    // privileged/ephemeral fallbacks — the switch's MAT builder
    // installs entries straight from knownServicePorts().
    for (const auto &sp : net::knownServicePorts())
        EXPECT_EQ(net::serviceCode(sp.port), sp.code) << sp.port;
    EXPECT_EQ(net::serviceCode(999), net::kServicePrivileged);
    EXPECT_EQ(net::serviceCode(40123), net::kServiceEphemeral);
    // IoT signature ports have dedicated codes (no aliasing).
    EXPECT_EQ(net::serviceCode(554), 8);
    EXPECT_EQ(net::serviceCode(1883), 9);
    EXPECT_EQ(net::serviceCode(5683), 10);
    EXPECT_EQ(net::serviceCode(123), 11);
}

TEST(Features, KddTraceCarriesBinaryClassLabels)
{
    net::KddConfig cfg;
    cfg.connections = 300;
    net::KddGenerator gen(cfg, 21);
    const auto trace = gen.expandToPackets(gen.sampleConnections());
    for (const auto &pkt : trace)
        EXPECT_EQ(pkt.class_label, pkt.anomalous ? 1 : 0);
}
