/**
 * @file
 * Telemetry mirroring between the data-plane fast path and the
 * control-plane trainer (paper Figure 1 / Section 5.2.3: the control
 * plane "continuously retrains on mirrored telemetry").
 *
 * Each farm worker owns one bounded single-producer/single-consumer ring;
 * the trainer thread is the only consumer of every ring. The producer
 * side is wait-free: a full ring counts a drop and moves on — mirroring
 * must never block or slow the per-packet path, the same way a hardware
 * mirror port tail-drops under pressure. Samples carry the int8 feature
 * codes the preprocessing MATs already computed (the model's exact input
 * view), the data-plane verdict, and the ground-truth label the
 * control plane would attach when labeling telemetry.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "taurus/app.hpp"
#include "taurus/switch.hpp"
#include "util/stats.hpp"

namespace taurus::runtime {

/** One mirrored packet: feature codes + verdict + label. The struct
 *  itself lives in core (taurus/app.hpp) so the generic AppTrainer
 *  interface can consume it; the rings here carry it unchanged. */
using TelemetrySample = core::TelemetrySample;

/** Build a sample from a processed packet's decision and its
 *  ground-truth class label (0/1 for the binary apps). */
TelemetrySample makeSample(const core::SwitchDecision &d, int32_t label);

/**
 * Bounded lock-free SPSC ring. Exactly one producer thread may call
 * tryPush() and exactly one consumer thread may call tryPop(); any
 * thread may read the counters. Capacity is rounded up to a power of
 * two so index masking stays branch-free.
 */
class TelemetryRing
{
  public:
    explicit TelemetryRing(size_t capacity);

    /**
     * Producer side: enqueue one sample. Returns false — and counts the
     * drop — when the ring is full. Never blocks, never allocates.
     */
    bool tryPush(const TelemetrySample &s);

    /** Consumer side: dequeue into `out`; false when empty. */
    bool tryPop(TelemetrySample &out);

    /** Samples discarded because the consumer fell behind. */
    uint64_t dropped() const
    {
        return dropped_.load(std::memory_order_relaxed);
    }

    /** Samples successfully enqueued. */
    uint64_t pushed() const
    {
        return tail_.load(std::memory_order_relaxed);
    }

    size_t capacity() const { return slots_.size(); }

    /** Approximate occupancy (exact only from producer or consumer). */
    size_t
    size() const
    {
        const uint64_t t = tail_.load(std::memory_order_acquire);
        const uint64_t h = head_.load(std::memory_order_acquire);
        return static_cast<size_t>(t - h);
    }

  private:
    std::vector<TelemetrySample> slots_;
    size_t mask_ = 0;
    // Producer and consumer indices live on their own cache lines so the
    // two sides don't false-share under concurrent traffic.
    alignas(64) std::atomic<uint64_t> tail_{0}; ///< next write (producer)
    alignas(64) std::atomic<uint64_t> head_{0}; ///< next read (consumer)
    alignas(64) std::atomic<uint64_t> dropped_{0};
};

} // namespace taurus::runtime
