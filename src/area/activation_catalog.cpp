#include "area/activation_catalog.hpp"

#include <algorithm>

#include <stdexcept>

#include "area/cacti_lite.hpp"
#include "area/fu_model.hpp"
#include "util/stats.hpp"

namespace taurus::area {

int
ActivationImpl::cusNeeded(int stages) const
{
    return std::max<int>(min_cus,
                         static_cast<int>(util::ceilDiv(map_ops,
                                                        stages)));
}

double
ActivationImpl::areaMm2(int lanes, int stages, int precision_bits) const
{
    return cusNeeded(stages) *
               FuModel::cuAreaMm2(lanes, stages, precision_bits) +
           luts * CactiLite::muAreaMm2();
}

const std::vector<ActivationImpl> &
activationCatalog()
{
    // Map-op counts per implementation; chosen so the 4-stage line-rate
    // areas reproduce Table 6 (ReLU 0.04, TanhPW 0.13, SigmoidPW 0.17,
    // TanhExp 0.26, SigmoidExp 0.31, ActLUT 0.12 mm^2).
    static const std::vector<ActivationImpl> catalog = {
        {"ReLU", 1, 0, false},
        {"LeakyReLU", 2, 0, false},
        {"TanhExp", 22, 0, true},
        {"SigmoidExp", 26, 0, true},
        {"TanhPW", 10, 0, false},
        {"SigmoidPW", 14, 0, false},
        {"ActLUT", 2, 1, false, 2},
    };
    return catalog;
}

const ActivationImpl &
activationImpl(const std::string &name)
{
    for (const auto &impl : activationCatalog())
        if (impl.name == name)
            return impl;
    throw std::invalid_argument("unknown activation impl: " + name);
}

} // namespace taurus::area
