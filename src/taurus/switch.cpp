#include "taurus/switch.hpp"

#include <algorithm>
#include <stdexcept>

#include "pisa/packet.hpp"
#include "taurus/app.hpp"

namespace taurus::core {

void
SwitchStats::merge(const SwitchStats &o)
{
    packets += o.packets;
    ml_packets += o.ml_packets;
    flagged += o.flagged;
    dropped += o.dropped;
    safety_overrides += o.safety_overrides;
    ml_latency_ns.merge(o.ml_latency_ns);
    bypass_latency_ns.merge(o.bypass_latency_ns);
}

TaurusSwitch::TaurusSwitch(SwitchConfig cfg)
    : cfg_(std::move(cfg)), parser_(pisa::Parser::standard()),
      scheduler_(cfg_.queue_capacity)
{
    // The forwarding table proper: an LPM stage mapping the destination
    // address to an egress port (default route: port 0).
    pisa::MatStage fwd("forward", pisa::MatchKind::Lpm,
                       {pisa::Field::Ipv4Dst});
    pisa::Action set_port;
    set_port.name = "set_egress";
    set_port.instrs = {{pisa::ActionOp::Set, pisa::Field::QueueId,
                        pisa::Src::Arg, pisa::Field::Tmp0, 0, 0, -1,
                        pisa::Field::Tmp0}};
    const int a_set = fwd.addAction(std::move(set_port));
    for (const Route &r : cfg_.routes)
        fwd.addEntry({{r.prefix}, {}, r.length, 0, a_set, {r.port}});
    fwd.setDefault(a_set, {0});
    forwarding_.addStage(std::move(fwd));
}

void
TaurusSwitch::installApp(const AppArtifact &app)
{
    // Validate the whole artifact before touching any installed state,
    // so a bad artifact cannot leave the switch half-installed.
    if (!app.build_features)
        throw std::invalid_argument(
            "installApp: artifact has no feature-program builder");
    if (app.verdict.kind == VerdictKind::BinaryThreshold &&
        !app.verdict.flag_code)
        throw std::invalid_argument(
            "installApp: binary verdict without flag_code");
    if (app.verdict.kind == VerdictKind::ArgmaxClass &&
        app.verdict.num_classes == 0)
        throw std::invalid_argument(
            "installApp: argmax verdict without classes");

    FeatureProgram fp = app.build_features(cfg_.features);
    if (fp.feature_count > kDecisionFeatureSlots)
        throw std::invalid_argument(
            "installApp: app '" + app.name + "' writes " +
            std::to_string(fp.feature_count) +
            " feature codes but SwitchDecision exports only " +
            std::to_string(kDecisionFeatureSlots) +
            " — telemetry would silently truncate");
    if (app.feature_count != fp.feature_count)
        throw std::invalid_argument(
            "installApp: app '" + app.name + "' declares " +
            std::to_string(app.feature_count) +
            " features but its program writes " +
            std::to_string(fp.feature_count));
    const std::string err = fp.preprocess.validate();
    if (!err.empty())
        throw std::logic_error("preprocessing program invalid: " + err);

    program_ = std::make_unique<hw::GridProgram>(
        compiler::compile(app.graph, cfg_.compiler));
    sim_ = std::make_unique<hw::CycleSim>(*program_);

    // The compiled schedule fixes the (static) MapReduce latency.
    mr_latency_ns_ = sim_->schedule().latency_ns;

    // Size the per-packet scratch for the installed program: one input
    // vector per graph Input node (width taken from the graph itself),
    // and evaluation buffers bound to the compiled graph so
    // steady-state packets skip validation.
    scratch_.ml_input.clear();
    for (int id : program_->graph.inputIds())
        scratch_.ml_input.emplace_back(
            static_cast<size_t>(program_->graph.node(id).width));
    scratch_.eval.bind(program_->graph);

    features_ = std::move(fp);

    switch (app.verdict.kind) {
      case VerdictKind::BinaryThreshold:
        postprocess_ = buildVerdictProgram(app.verdict.flag_code);
        break;
      case VerdictKind::ArgmaxClass:
        postprocess_ = buildClassVerdictProgram(
            app.verdict.num_classes, app.verdict.flagged_classes);
        break;
      case VerdictKind::ScalarAction:
        // The raw score code *is* the action; postprocessing only has
        // to clear the Decision bit (nothing gets flagged).
        postprocess_ = buildVerdictProgram([](int8_t) { return false; });
        break;
    }
    verdict_kind_ = app.verdict.kind;
    app_name_ = app.name;

    safety_ = compileSafety(cfg_.safety, features_.registers);

    reset();
}

void
TaurusSwitch::installAnomalyModel(const models::AnomalyDnn &model)
{
    installApp(makeAnomalyDnnApp(model));
}

void
TaurusSwitch::updateWeights(const dfg::Graph &fresh)
{
    if (!program_)
        throw std::logic_error("no model installed");
    program_->updateWeights(fresh);
}

SwitchDecision
TaurusSwitch::process(const net::TracePacket &tp)
{
    if (!program_)
        throw std::logic_error("no model installed");

    // Every per-packet buffer (wire bytes, PHV, feature vector, eval
    // lanes) lives in scratch_ and is reset in place, so the steady
    // state allocates nothing.
    pisa::fromTracePacketInto(tp, scratch_.pkt);
    pisa::Phv &phv = scratch_.phv;
    parser_.parseInto(scratch_.pkt, phv);

    features_.preprocess.apply(phv, features_.registers);

    SwitchDecision d;
    d.feature_count = static_cast<uint8_t>(
        std::min(features_.feature_count, kDecisionFeatureSlots));
    for (size_t i = 0; i < d.feature_count; ++i)
        d.features[i] = static_cast<int8_t>(
            static_cast<int32_t>(phv.get(pisa::featureField(i))));
    const bool take_ml =
        !cfg_.enable_bypass || phv.get(pisa::Field::MlBypass) == 0;
    double latency = cfg_.mat_timing.parser_ns +
                     features_.preprocess.latencyNs(cfg_.mat_timing);

    if (take_ml) {
        // The decision's telemetry export above already pulled the
        // feature codes out of the PHV; reuse them instead of reading
        // the fields a second time on the hot path.
        std::vector<int8_t> &input = scratch_.ml_input.front();
        for (size_t i = 0; i < input.size(); ++i)
            input[i] = i < d.feature_count
                           ? d.features[i]
                           : static_cast<int8_t>(static_cast<int32_t>(
                                 phv.get(pisa::featureField(i))));
        hw::SimResult &res = scratch_.sim_result;
        sim_->runInto(scratch_.ml_input, scratch_.eval, res);
        d.score = static_cast<int8_t>(res.outputs.at(0).lanes.at(0));
        phv.set(pisa::Field::MlScore,
                static_cast<uint32_t>(static_cast<int32_t>(d.score)));
        phv.set(pisa::Field::MlBypass, 0);
        latency += res.latency_ns;
        ++stats_.ml_packets;
    } else {
        d.bypassed = true;
        phv.set(pisa::Field::MlBypass, 1);
    }

    postprocess_.apply(phv, features_.registers);
    const bool pre_safety_flag = phv.get(pisa::Field::Decision) != 0;
    safety_.stages.apply(phv, features_.registers);
    latency += postprocess_.latencyNs(cfg_.mat_timing) +
               safety_.stages.latencyNs(cfg_.mat_timing) +
               cfg_.mat_timing.scheduler_ns;

    forwarding_.apply(phv, features_.registers);
    latency += forwarding_.latencyNs(cfg_.mat_timing);
    d.egress_port = static_cast<uint16_t>(phv.get(pisa::Field::QueueId));

    d.flagged = phv.get(pisa::Field::Decision) != 0;
    switch (verdict_kind_) {
      case VerdictKind::BinaryThreshold:
        d.class_id = d.flagged ? 1 : 0;
        break;
      case VerdictKind::ArgmaxClass:
        d.class_id = phv.getSigned(pisa::Field::MlClass);
        break;
      case VerdictKind::ScalarAction:
        d.class_id = static_cast<int32_t>(d.score);
        break;
    }
    if (pre_safety_flag && !d.flagged)
        ++stats_.safety_overrides;
    if (d.flagged && cfg_.drop_anomalies) {
        d.dropped = true;
    } else {
        const uint64_t rank = pisa::Pifo::rankOf(
            cfg_.policy, phv, stats_.packets);
        // Move the scratch buffers into the scheduler rather than
        // copying the wire bytes; the immediate pop (packets drain at
        // line rate in this model) hands them straight back. A full
        // queue would destroy the moved-in buffers, so feed the
        // guaranteed drop empties instead (keeping the PIFO's own drop
        // accounting) and hold on to the scratch.
        if (scheduler_.full()) {
            scheduler_.push(rank, pisa::Packet{}, pisa::Phv{});
            d.dropped = true;
        } else {
            scheduler_.push(rank, std::move(scratch_.pkt),
                            std::move(phv));
            pisa::PifoItem item = scheduler_.pop();
            scratch_.pkt = std::move(item.pkt);
            scratch_.phv = std::move(item.phv);
        }
    }

    d.latency_ns = latency;
    ++stats_.packets;
    if (d.flagged)
        ++stats_.flagged;
    if (d.dropped)
        ++stats_.dropped;
    if (d.bypassed)
        stats_.bypass_latency_ns.add(latency);
    else
        stats_.ml_latency_ns.add(latency);
    return d;
}

void
TaurusSwitch::processBatch(util::Span<const net::TracePacket> packets,
                           util::Span<SwitchDecision> decisions)
{
    if (packets.size() != decisions.size())
        throw std::invalid_argument(
            "processBatch: packets/decisions size mismatch");
    for (size_t i = 0; i < packets.size(); ++i)
        decisions[i] = process(packets[i]);
}

double
TaurusSwitch::mlPathLatencyNs() const
{
    return bypassPathLatencyNs() + mr_latency_ns_;
}

double
TaurusSwitch::bypassPathLatencyNs() const
{
    return cfg_.mat_timing.parser_ns +
           features_.preprocess.latencyNs(cfg_.mat_timing) +
           postprocess_.latencyNs(cfg_.mat_timing) +
           safety_.stages.latencyNs(cfg_.mat_timing) +
           forwarding_.latencyNs(cfg_.mat_timing) +
           cfg_.mat_timing.scheduler_ns;
}

void
TaurusSwitch::reset()
{
    features_.registers.clearAll();
    stats_ = SwitchStats{};
}

} // namespace taurus::core
