/**
 * @file
 * Design reports: resources, area, power, latency, and throughput of a
 * compiled program — the quantities Tables 5/6/7 are built from.
 */

#pragma once

#include <string>

#include "area/chip.hpp"
#include "hw/cycle_sim.hpp"
#include "hw/program.hpp"

namespace taurus::compiler {

/** Everything the paper reports per application or microbenchmark. */
struct AppReport
{
    std::string name;
    int cus = 0;
    int mus = 0;
    double area_mm2 = 0.0;
    double power_w = 0.0;
    int latency_cycles = 0;
    double latency_ns = 0.0;
    int ii_cycles = 1;
    double gpktps = 0.0;          ///< sustained line rate (1.0 = full)
    double area_overhead_pct = 0.0; ///< vs the 500 mm^2 baseline chip
    double power_overhead_pct = 0.0;
    size_t weight_bytes = 0;
    int route_hops = 0;
    bool folded = false;
};

/**
 * Analyze a compiled program: simulate one packet (zero-filled features)
 * for timing and roll up area/power through the chip model.
 */
AppReport analyze(const hw::GridProgram &program,
                  const area::ChipModel &chip = area::ChipModel{});

} // namespace taurus::compiler
