/**
 * @file
 * Catalog of activation-function implementations (Figure 10 / Table 6).
 *
 * Each activation has one or more hardware realizations with a known map-op
 * count and optional lookup table:
 *   - ReLU / Leaky ReLU: one or two map ops, no LUT;
 *   - *Exp: Taylor-series expansions (longest op chains);
 *   - *PW: piecewise-linear approximations (shorter chains);
 *   - ActLUT: a pre/post scale pair around an MU table lookup.
 *
 * A chain of k map ops on CUs with s stages occupies ceil(k/s) CUs; the
 * line-rate area for a given stage count follows directly (Figure 10).
 * The op counts are the single source of truth shared with the model
 * builders, so the Table 6 microbenchmarks and this catalog agree.
 */

#pragma once

#include <string>
#include <vector>

namespace taurus::area {

/** One activation implementation variant. */
struct ActivationImpl
{
    std::string name;
    int map_ops = 1;     ///< elementwise map operations in the chain
    int luts = 0;        ///< MU-resident lookup tables
    bool uses_reduce = false; ///< needs a dot (e.g. polynomial eval)
    /** Minimum CUs regardless of depth: an MU lookup between map ops
     *  splits the chain across CUs (the ActLUT pre/post scale pair). */
    int min_cus = 1;

    /** CUs needed at line rate with `stages`-deep CUs. */
    int cusNeeded(int stages) const;
    /** Block area in mm^2 at line rate for the given CU geometry. */
    double areaMm2(int lanes, int stages, int precision_bits) const;
};

/** All Figure-10 variants, in the paper's order. */
const std::vector<ActivationImpl> &activationCatalog();

/** Lookup by name ("ReLU", "SigmoidPW", ...); throws if unknown. */
const ActivationImpl &activationImpl(const std::string &name);

} // namespace taurus::area
