#include <gtest/gtest.h>

#include "area/activation_catalog.hpp"
#include "area/cacti_lite.hpp"
#include "area/chip.hpp"
#include "area/fu_model.hpp"

using namespace taurus;

TEST(FuModel, Table4AnchorsExact)
{
    // Table 4 per-FU area/power at 16 lanes x 4 stages.
    EXPECT_NEAR(area::FuModel::fuAreaUm2(16, 4, 8), 670.0, 1.0);
    EXPECT_NEAR(area::FuModel::fuAreaUm2(16, 4, 16), 1338.0, 2.0);
    EXPECT_NEAR(area::FuModel::fuAreaUm2(16, 4, 32), 2949.0, 4.0);
    EXPECT_NEAR(area::FuModel::fuPowerUw(16, 4, 8), 456.0, 1.0);
    EXPECT_NEAR(area::FuModel::fuPowerUw(16, 4, 16), 887.0, 2.0);
    EXPECT_NEAR(area::FuModel::fuPowerUw(16, 4, 32), 2341.0, 4.0);
}

TEST(FuModel, CuAreaMatchesFinalConfiguration)
{
    // Section 5.1.1: the final CU takes 0.044 mm^2 including routing.
    EXPECT_NEAR(area::FuModel::cuAreaMm2(16, 4, 8), 0.044, 0.001);
}

class LaneSweepTest : public ::testing::TestWithParam<int>
{
};

TEST_P(LaneSweepTest, PerFuAreaShrinksWithMoreLanes)
{
    // Figure 9: "raw area efficiency (area per FU) increases with the
    // number of lanes" — control amortizes over more FUs.
    const int stages = GetParam();
    double prev = 1e18;
    for (int lanes : {4, 8, 16, 32}) {
        const double a = area::FuModel::fuAreaUm2(lanes, stages, 8);
        EXPECT_LT(a, prev) << "lanes=" << lanes << " stages=" << stages;
        prev = a;
    }
}

TEST_P(LaneSweepTest, PerFuPowerShrinksWithMoreLanes)
{
    const int stages = GetParam();
    double prev = 1e18;
    for (int lanes : {4, 8, 16, 32}) {
        const double p = area::FuModel::fuPowerUw(lanes, stages, 8);
        EXPECT_LT(p, prev);
        prev = p;
    }
}

INSTANTIATE_TEST_SUITE_P(Stages, LaneSweepTest,
                         ::testing::Values(2, 3, 4, 6));

TEST(FuModel, PrecisionScalingRoughlyDoubles)
{
    // "For 16- and 32-bit data paths, both area and power will increase
    // by about a factor of 2 and 4" (Section 5.1.2).
    const double a8 = area::FuModel::fuAreaUm2(16, 4, 8);
    const double a16 = area::FuModel::fuAreaUm2(16, 4, 16);
    const double a32 = area::FuModel::fuAreaUm2(16, 4, 32);
    EXPECT_NEAR(a16 / a8, 2.0, 0.25);
    EXPECT_NEAR(a32 / a8, 4.0, 0.6);
}

TEST(CactiLite, MuAnchorAndScaling)
{
    // The paper's MU (16 banks x 1024 x 8 b) is 0.029 mm^2.
    EXPECT_NEAR(area::CactiLite::muAreaMm2(), 0.029, 0.001);
    // Area grows with banks and entries.
    EXPECT_GT(area::CactiLite::sramAreaMm2(32, 1024, 8),
              area::CactiLite::sramAreaMm2(16, 1024, 8));
    EXPECT_GT(area::CactiLite::sramAreaMm2(16, 2048, 8),
              area::CactiLite::sramAreaMm2(16, 1024, 8));
    // More banks cost more than the same bits in fewer banks
    // (periphery per bank).
    EXPECT_GT(area::CactiLite::sramAreaMm2(32, 512, 8),
              area::CactiLite::sramAreaMm2(16, 1024, 8));
}

TEST(ChipModel, FullGridOverheadMatchesPaper)
{
    // Section 5.1.1: the 12x10 grid is 4.8 mm^2 and adds 3.8% chip area
    // (and 2.8% power) with one block per pipeline.
    area::ChipModel chip;
    const auto grid = chip.fullGridCost();
    EXPECT_NEAR(grid.area_mm2, 4.8, 0.15);
    EXPECT_NEAR(chip.areaOverheadPct(grid.area_mm2), 3.8, 0.2);
    EXPECT_NEAR(chip.powerOverheadPct(grid.power_w), 2.8, 0.3);
}

TEST(ChipModel, IsoAreaMatEquivalents)
{
    // Section 5.1.1: "an iso-area design would lose 3 MATs per
    // pipeline".
    area::ChipModel chip;
    const auto grid = chip.fullGridCost();
    EXPECT_NEAR(chip.matEquivalents(grid.area_mm2), 2.5, 0.8);
}

TEST(ChipModel, UnitCostIsLinear)
{
    area::ChipModel chip;
    const auto one = chip.unitCost(1, 1);
    const auto ten = chip.unitCost(10, 10);
    EXPECT_NEAR(ten.area_mm2, 10.0 * one.area_mm2, 1e-9);
    EXPECT_NEAR(ten.power_w, 10.0 * one.power_w, 1e-9);
}

TEST(ActivationCatalog, PaperOrderAndShape)
{
    const auto &cat = area::activationCatalog();
    ASSERT_EQ(cat.size(), 7u); // ReLU..ActLUT (Figure 10 variants)
    EXPECT_EQ(cat.front().name, "ReLU");
    EXPECT_EQ(cat.back().name, "ActLUT");
}

TEST(ActivationCatalog, ReluCheapestTaylorMostExpensive)
{
    const auto &relu = area::activationImpl("ReLU");
    const auto &sig_exp = area::activationImpl("SigmoidExp");
    const auto &sig_pw = area::activationImpl("SigmoidPW");
    const double a_relu = relu.areaMm2(16, 4, 8);
    const double a_exp = sig_exp.areaMm2(16, 4, 8);
    const double a_pw = sig_pw.areaMm2(16, 4, 8);
    EXPECT_LT(a_relu, a_pw);
    EXPECT_LT(a_pw, a_exp); // piecewise beats Taylor (Section 5.1.3)
}

class ActivationStageTest : public ::testing::TestWithParam<int>
{
};

TEST_P(ActivationStageTest, CusNeededShrinkWithDeeperCus)
{
    // Figure 10: more stages per CU fit longer map chains, so the CU
    // count (and area) for a fixed function cannot grow with stages.
    const int stages = GetParam();
    for (const auto &impl : area::activationCatalog()) {
        if (stages < 6) {
            EXPECT_GE(impl.cusNeeded(stages), impl.cusNeeded(6))
                << impl.name;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Stages, ActivationStageTest,
                         ::testing::Values(2, 3, 4, 6));

TEST(ActivationCatalog, UnknownNameThrows)
{
    EXPECT_THROW(area::activationImpl("NotAFunction"),
                 std::invalid_argument);
}
