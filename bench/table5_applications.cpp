/**
 * @file
 * Table 5: performance and resource overheads of the application models
 * (KMeans IoT, SVM anomaly, DNN anomaly, Indigo LSTM), compiled onto
 * the MapReduce grid and measured with the cycle simulator, plus the
 * full 12x10 grid row.
 */

#include "harness.hpp"

#include "area/chip.hpp"
#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/app.hpp"
#include "taurus/experiment.hpp"
#include "util/table.hpp"

TAURUS_BENCH(table5_applications, "Table 5",
             "application model performance and resource overheads")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    const size_t conns = ctx.size(3000, 800);

    os << "Table 5: performance and resource overheads of application "
          "models\n"
          "Paper: KMeans 1.0/61/0.3/0.2/177/0.3 | SVM "
          "1.0/83/0.6/0.5/395/0.6 | DNN 1.0/221/1.0/0.8/647/1.0 "
          "| LSTM -/805/3.0/2.4/1897/2.8 | grid 4.8 mm^2, 3.8%\n\n";

    const auto km = models::trainIotKmeans(1, conns);
    const auto svm = models::trainAnomalySvm(1, conns);
    const auto dnn = models::trainAnomalyDnn(1, conns);
    const auto lstm = models::buildIndigoLstm(1);

    struct AppRow
    {
        std::string app;
        std::string model;
        const dfg::Graph *graph;
        bool recurrent;
    };
    const AppRow apps[] = {
        {"IoT", "KMeans", &km.lowered.graph, false},
        {"Anom.", "SVM", &svm.lowered.graph, false},
        {"Anom.", "DNN", &dnn.graph, false},
        {"Indigo", "LSTM", &lstm.graph, true},
    };

    area::ChipModel chip;
    TablePrinter t({"App", "Model", "GPkt/s", "ns", "mm^2", "+%", "mW",
                    "+%"});
    for (const auto &app : apps) {
        const auto rep =
            compiler::analyze(compiler::compile(*app.graph), chip);
        // A recurrent model's next step waits on (h, c): it is not a
        // line-rate pipeline, matching the paper's "-" entry.
        const std::string rate =
            app.recurrent ? "-" : TablePrinter::num(rep.gpktps);
        ctx.metric(bench::slug(app.model) + "_latency_ns", rep.latency_ns);
        ctx.metric(bench::slug(app.model) + "_area_mm2", rep.area_mm2);
        if (!app.recurrent)
            ctx.metric(bench::slug(app.model) + "_gpktps", rep.gpktps);
        t.addRow({app.app, app.model, rate,
                  TablePrinter::num(rep.latency_ns, 0),
                  TablePrinter::num(rep.area_mm2, 1),
                  TablePrinter::num(rep.area_overhead_pct, 1),
                  TablePrinter::num(rep.power_w * 1e3, 0),
                  TablePrinter::num(rep.power_overhead_pct, 1)});
    }

    const auto grid = chip.fullGridCost();
    ctx.metric("grid_area_mm2", grid.area_mm2);
    ctx.metric("grid_area_overhead_pct",
               chip.areaOverheadPct(grid.area_mm2));
    t.addRow({"12x10 Grid", "", "", "",
              TablePrinter::num(grid.area_mm2, 1),
              TablePrinter::num(chip.areaOverheadPct(grid.area_mm2), 1),
              TablePrinter::num(grid.power_w * 1e3, 0),
              TablePrinter::num(chip.powerOverheadPct(grid.power_w), 1)});
    t.print(os);

    os << "\nOrdering check: KMeans < SVM < DNN << LSTM latency; all "
          "feed-forward models hold 1 GPkt/s line rate.\n";

    // -----------------------------------------------------------------
    // App-generic switch-path scoring: every installable application
    // runs its labeled trace through the real pipeline via the same
    // AppArtifact entry point, and is scored per class.
    // -----------------------------------------------------------------
    os << "\nSwitch-path accuracy (installApp -> process -> per-class "
          "scoring):\n";

    net::KddConfig kc;
    kc.connections = ctx.size(4000, 800);
    net::KddGenerator gen(kc, 17);
    const core::AppArtifact dnn_app = core::makeAnomalyDnnApp(
        dnn, gen.expandToPackets(gen.sampleConnections()));

    const auto iot_flow =
        models::trainIotFlowMlp(1, ctx.size(2500, 600));
    const core::AppArtifact iot_app = core::makeIotFlowApp(iot_flow);

    TablePrinter s({"App", "Verdict", "Packets", "Acc %", "Macro-F1",
                    "ML ns"});
    for (const core::AppArtifact *app : {&dnn_app, &iot_app}) {
        const auto r = core::runApp(*app);
        const char *verdict =
            app->verdict.kind == core::VerdictKind::ArgmaxClass
                ? "argmax"
                : "threshold";
        ctx.metric(bench::slug(app->name) + "_switch_accuracy_pct",
                   r.accuracy_pct);
        ctx.metric(bench::slug(app->name) + "_switch_macro_f1_x100",
                   r.macro_f1_x100);
        ctx.metric(bench::slug(app->name) + "_switch_packets",
                   r.packets);
        s.addRow({app->name, verdict, std::to_string(r.packets),
                  TablePrinter::num(r.accuracy_pct, 1),
                  TablePrinter::num(r.macro_f1_x100, 1),
                  TablePrinter::num(r.mean_ml_latency_ns, 0)});
    }
    s.print(os);
    ctx.metric("iot_quant_accuracy_pct",
               iot_flow.quant_accuracy * 100.0);

    os << "\nBoth applications run through the identical install/serve "
          "path; only the artifact differs.\n";
}
