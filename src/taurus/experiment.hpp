/**
 * @file
 * End-to-end experiment harnesses (Section 5.2): run the same trace and
 * the same trained model through the Taurus data plane and the
 * control-plane baseline, and score per-packet decisions against ground
 * truth. Produces the rows of Table 8.
 */

#pragma once

#include <vector>

#include "cp/baseline.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/switch.hpp"
#include "util/metrics.hpp"

namespace taurus::core {

struct AppArtifact;

/**
 * App-generic result of one switch run: a K-class confusion over
 * (SwitchDecision::class_id, TracePacket::class_label) with per-class
 * metrics, plus the latency/counter summary. Binary anomaly apps are
 * the K = 2 case (class 1 = anomalous), so `f1_x100` of class 1 equals
 * the legacy binary F1.
 */
struct AppRunResult
{
    util::MultiConfusion confusion{2};
    double accuracy_pct = 0.0;
    double macro_f1_x100 = 0.0;
    double mean_ml_latency_ns = 0.0;
    double mean_bypass_latency_ns = 0.0;
    uint64_t packets = 0;
    uint64_t flagged = 0;
};

/**
 * Run any installed app's labeled trace through the switch and score
 * class_id against class_label. `num_classes` sizes the confusion
 * matrix. Does not reset the switch first (callers control state).
 */
AppRunResult runApp(const std::vector<net::TracePacket> &trace,
                    TaurusSwitch &sw, size_t num_classes);

/**
 * Convenience: install `app` into a fresh switch, run its own
 * eval_trace, and score it.
 */
AppRunResult runApp(const AppArtifact &app,
                    const SwitchConfig &switch_cfg = {});

/**
 * Score one tenant's slice of a co-resident (multi-tenant) run: fold
 * only the decisions the dispatch MAT routed to `app` into a K-class
 * confusion over (class_id, class_label). Latency means are computed
 * from the matching decisions, so the result is directly comparable to
 * a solo-install runApp() on the same sub-trace.
 */
AppRunResult scoreApp(util::Span<const SwitchDecision> decisions,
                      util::Span<const net::TracePacket> packets,
                      AppId app, size_t num_classes);

/**
 * Interleave two labeled traces by timestamp into one multi-tenant
 * trace. The merge is stable and ties prefer `a`, so each input trace
 * survives as an order-preserving subsequence — exactly what the
 * solo-vs-co-resident parity checks need.
 */
std::vector<net::TracePacket> mergeTracesByTime(
    const std::vector<net::TracePacket> &a,
    const std::vector<net::TracePacket> &b);

/** Taurus's half of a Table 8 row. */
struct TaurusRunResult
{
    double detected_pct = 0.0; ///< anomalous packets flagged, %
    double f1_x100 = 0.0;
    double mean_ml_latency_ns = 0.0;
    double mean_bypass_latency_ns = 0.0;
    uint64_t packets = 0;
    uint64_t flagged = 0;
};

/** One full Table 8 row: baseline and Taurus on the same traffic. */
struct EndToEndRow
{
    cp::BaselineResult baseline;
    TaurusRunResult taurus;
};

/** Run the Taurus switch over a trace and score it. */
TaurusRunResult runTaurus(const std::vector<net::TracePacket> &trace,
                          TaurusSwitch &sw);

/**
 * Produce Table 8: one row per sampling rate, with the Taurus column
 * shared (the data plane does not sample). `model` is the trained
 * anomaly DNN installed in both planes.
 */
std::vector<EndToEndRow> runEndToEnd(
    const std::vector<net::TracePacket> &trace,
    const models::AnomalyDnn &model,
    const std::vector<double> &sampling_rates,
    const SwitchConfig &switch_cfg = {});

} // namespace taurus::core
