/**
 * @file
 * End-to-end experiment harnesses (Section 5.2): run the same trace and
 * the same trained model through the Taurus data plane and the
 * control-plane baseline, and score per-packet decisions against ground
 * truth. Produces the rows of Table 8.
 */

#pragma once

#include <vector>

#include "cp/baseline.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/switch.hpp"

namespace taurus::core {

/** Taurus's half of a Table 8 row. */
struct TaurusRunResult
{
    double detected_pct = 0.0; ///< anomalous packets flagged, %
    double f1_x100 = 0.0;
    double mean_ml_latency_ns = 0.0;
    double mean_bypass_latency_ns = 0.0;
    uint64_t packets = 0;
    uint64_t flagged = 0;
};

/** One full Table 8 row: baseline and Taurus on the same traffic. */
struct EndToEndRow
{
    cp::BaselineResult baseline;
    TaurusRunResult taurus;
};

/** Run the Taurus switch over a trace and score it. */
TaurusRunResult runTaurus(const std::vector<net::TracePacket> &trace,
                          TaurusSwitch &sw);

/**
 * Produce Table 8: one row per sampling rate, with the Taurus column
 * shared (the data plane does not sample). `model` is the trained
 * anomaly DNN installed in both planes.
 */
std::vector<EndToEndRow> runEndToEnd(
    const std::vector<net::TracePacket> &trace,
    const models::AnomalyDnn &model,
    const std::vector<double> &sampling_rates,
    const SwitchConfig &switch_cfg = {});

} // namespace taurus::core
