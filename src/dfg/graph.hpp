/**
 * @file
 * The parallel-pattern dataflow IR for the Taurus MapReduce block.
 *
 * Programs for the MapReduce block are expressed as DAGs of pattern
 * operations at compute-unit granularity (paper Section 3.3.1 / Figure 4:
 * nested Map/Reduce loops; Section 4: innermost loops become SIMD ops
 * within a CU, outer loops map over multiple CUs). Every node obeys the
 * CU/MU resource shape:
 *
 *  - vector widths are at most kLanes (16);
 *  - a node's compute fits one CU pass (at most kStages map ops, or a fused
 *    map+reduce), or one MU lookup;
 *  - wider patterns must be legalized into partial ops plus combines
 *    (the compiler's splitting step, Section 4 "Target-Dependent
 *    Compilation").
 *
 * The IR is executable: dfg::evaluate() runs a graph in the integer domain
 * and is the oracle the hw cycle simulator is tested against.
 */

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fixed/quant.hpp"

namespace taurus::dfg {

/** Hardware shape constants of the final Taurus ASIC configuration. */
constexpr int kLanes = 16;  ///< SIMD lanes per CU
constexpr int kStages = 4;  ///< pipelined compute stages per CU

/** Elementwise map functions available inside a CU stage. */
enum class MapFn
{
    Identity,
    Relu,       ///< max(x, 0)
    LeakyRelu,  ///< x >= 0 ? x : x/8
    Square,     ///< saturating x*x (int8 domain)
    Abs,
    Neg,
    AddConst,   ///< x + imm (saturating int8)
    MulConst,   ///< requantized x * imm
    MinConst,   ///< min(x, imm)
    MaxConst,   ///< max(x, imm)
};

/** Node kinds; each maps to one CU pass, one MU lookup, or pure routing. */
enum class NodeKind
{
    Input,       ///< int8 feature vector from the PHV interface
    DotRow,      ///< requant(sum_i w_i*x_i + b): one neuron, one CU
    PartialDot,  ///< sum_i w_i*x_i -> int32 scalar (no requant)
    CombineAdd,  ///< requant(sum of int32 partials + b) -> int8
    MapChain,    ///< <= kStages elementwise map fns over one vector
    EltwiseMul,  ///< lane-wise product of two vectors (requantized)
    EltwiseAdd,  ///< lane-wise saturating sum of two vectors
    SquaredDist, ///< sum_i (x_i - c_i)^2 -> int32 scalar
    ArgMin,      ///< index of the minimum lane -> int8 scalar
    Lookup,      ///< elementwise 256-entry int8 LUT (runs on an MU)
    Concat,      ///< gather scalars into a vector (pure routing)
    Output,      ///< graph result
};

/** Value category carried on an edge. */
enum class ValueType
{
    Int8Vec,  ///< width <= kLanes lanes of int8
    Int32Vec, ///< width <= kLanes lanes of int32 (partial sums)
};

/** One pattern operation. */
struct Node
{
    int id = -1;
    NodeKind kind = NodeKind::Input;
    std::vector<int> inputs; ///< producer node ids (order significant)
    int width = 1;           ///< output lane count

    // Payload (which fields apply depends on kind):
    std::vector<int8_t> weights;   ///< DotRow/PartialDot/SquaredDist consts
    int32_t bias = 0;              ///< DotRow/CombineAdd bias (int32 scale)
    fixed::Requantizer requant;    ///< DotRow/CombineAdd/EltwiseMul/MulConst
    std::vector<MapFn> fns;        ///< MapChain stage functions
    std::vector<int32_t> imms;     ///< immediates for *Const fns
    std::vector<int8_t> lut;       ///< Lookup table (256 entries)
    std::string label;             ///< for reports/debugging

    /** Lanes of int8 weight storage this node needs in an MU. */
    size_t weightBytes() const;

    /** True when a requantizer has been installed on this node. */
    bool requantized() const { return requant.mantissa() != 0; }
};

/**
 * Loop metadata: the graph body executes `trip` iterations per packet,
 * parallelized by `unroll` replicas (Section 4, target-independent
 * optimization). Initiation interval multiplier = ceil(trip / unroll).
 */
struct LoopInfo
{
    int trip = 1;
    int unroll = 1;

    int iiMultiplier() const { return (trip + unroll - 1) / unroll; }
};

/** A dataflow program for the MapReduce block. */
class Graph
{
  public:
    /** Add a node, assigning its id; returns the id. */
    int add(Node n);

    const std::vector<Node> &nodes() const { return nodes_; }
    const Node &node(int id) const { return nodes_[static_cast<size_t>(id)]; }
    Node &node(int id) { return nodes_[static_cast<size_t>(id)]; }

    /** Ids in a valid topological order (inputs first). */
    std::vector<int> topoOrder() const;

    /** Ids of Input nodes in insertion order. */
    std::vector<int> inputIds() const;
    /** Ids of Output nodes in insertion order. */
    std::vector<int> outputIds() const;

    /** Structural validation; returns an error string or empty. */
    std::string validate() const;

    /** Output value type of a node. */
    static ValueType outputType(const Node &n);

    /** True if the node consumes a CU (vs MU or routing-only). */
    static bool isCuOp(const Node &n);
    /** True if the node consumes an MU (lookup tables). */
    static bool isMuOp(const Node &n);

    /** Total weight bytes that must live in MUs. */
    size_t weightBytes() const;

    std::optional<LoopInfo> loop;
    std::string name;

  private:
    std::vector<Node> nodes_;
};

/**
 * Merge independent programs into one graph (disjoint union with
 * re-numbered ids). This is how several models share one MapReduce
 * block concurrently (Section 6: "Taurus can run multiple models
 * simultaneously") — the compiler places the union, and each model
 * keeps its own inputs and outputs in declaration order.
 */
Graph merge(const std::vector<const Graph *> &graphs,
            const std::string &name);

} // namespace taurus::dfg
