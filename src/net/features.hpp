/**
 * @file
 * Flow-level feature extraction shared by offline training and the switch.
 *
 * The paper's preprocessing MATs "use stateful elements (i.e., registers)
 * ... to aggregate features across packets and across flows" and format
 * them "as fixed-point numbers" (Section 3.1). This module defines that
 * feature pipeline once — flow/source state mirrors the switch's register
 * arrays, and the binning functions mirror its lookup tables — so the
 * training set built offline and the features the Taurus switch computes
 * per-packet are bit-identical. That shared definition is what makes the
 * paper's "Taurus sustains full model accuracy" claim (Section 5.2.2)
 * checkable in this reproduction.
 */

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "nn/matrix.hpp"

namespace taurus::net {

/** Canonical 5-tuple identifying a flow. */
struct FlowKey
{
    uint32_t src_ip = 0;
    uint32_t dst_ip = 0;
    uint16_t src_port = 0;
    uint16_t dst_port = 0;
    uint8_t proto = 0;

    bool
    operator==(const FlowKey &o) const
    {
        return src_ip == o.src_ip && dst_ip == o.dst_ip &&
               src_port == o.src_port && dst_port == o.dst_port &&
               proto == o.proto;
    }

    /** FNV-1a hash over the tuple bytes (also used by switch hashing). */
    uint64_t hash() const;
};

/** IP protocol numbers used by the generators. */
constexpr uint8_t kProtoTcp = 6;
constexpr uint8_t kProtoUdp = 17;
constexpr uint8_t kProtoIcmp = 1;

/** One packet of a generated trace (ground truth attached). */
struct TracePacket
{
    double time_s = 0.0;
    FlowKey flow;
    uint16_t size_bytes = 64;
    bool syn = false;
    bool fin = false;
    bool urg = false;
    bool anomalous = false; ///< ground-truth label of the connection
    /**
     * Generic ground-truth class label: 0/1 mirrors `anomalous` for the
     * binary workloads, 0..K-1 for multi-class ones (IoT device
     * classification). App-generic scoring and the online-learning
     * telemetry loop read this field; the binary paths keep reading
     * `anomalous`.
     */
    int32_t class_label = 0;
    int32_t conn_id = -1;   ///< originating connection record
    /**
     * Receive-side metadata for dispatch: the switch port the packet
     * arrived on and its 802.1Q VLAN id (0 = untagged — a nonzero id
     * makes the serializer insert a real 0x8100 tag on the wire).
     * Neither participates in flow-feature extraction, so traces that
     * leave them at their defaults are bit-identical to pre-VLAN ones.
     */
    uint16_t ingress_port = 0;
    uint16_t vlan_id = 0;
};

/** Per-flow register state (mirrors the switch's stateful registers). */
struct FlowStats
{
    double first_seen_s = -1.0;
    uint64_t pkts = 0;
    uint64_t bytes = 0;
    uint32_t urgent = 0;
    uint32_t syn = 0;
};

/** Per-source-IP register state over a sliding window. */
struct SrcStats
{
    double window_start_s = 0.0;
    uint32_t conns = 0;     ///< new flows seen this window
    uint32_t syn_only = 0;  ///< flows that never progressed past SYN
    uint32_t dst_ports = 0; ///< distinct-destination-port estimate
    uint32_t last_port = 0;
};

/** Width of the DNN feature vector (Tang et al., six KDD features). */
constexpr size_t kDnnFeatureCount = 6;
/** Width of the SVM feature vector (eight KDD features). */
constexpr size_t kSvmFeatureCount = 8;

/** Sliding-window length for per-source aggregates, seconds. */
constexpr double kSrcWindowS = 1.0;

/**
 * Logarithmic bin of a non-negative count: floor(log2(v + 1)), clamped to
 * [0, 31]. This is the software form of the switch's log lookup table
 * (Section 3.1: taking logs turns exponential-ish header fields into
 * features a small model can use).
 */
int32_t log2Bin(uint64_t v);

/** Protocol code feature: tcp 0, udp 1, icmp 2, other 3. */
int32_t protoCode(uint8_t proto);

/** One well-known service port and its categorical feature code. */
struct ServicePort
{
    uint16_t port;
    int32_t code;
};

/**
 * The exact-match half of the service-code table: every well-known port
 * with a dedicated code. Exposed so the switch-side MAT builder can
 * install precisely the entries `serviceCode` implements — the two
 * sides agree by construction, not by parallel maintenance.
 */
const std::vector<ServicePort> &knownServicePorts();

/** Fallback code for unlisted privileged ports (< 1024). */
constexpr int32_t kServicePrivileged = 6;
/** Fallback code for unlisted ephemeral ports. */
constexpr int32_t kServiceEphemeral = 7;

/**
 * Service code from the destination port: a small categorical-to-numeric
 * lookup (Section 3.1: "a table transforms port numbers into a linear
 * likelihood value"). Well-known services get stable small codes:
 * knownServicePorts() entries first, then the privileged/ephemeral
 * fallbacks.
 */
int32_t serviceCode(uint16_t dst_port);

/** Duration-so-far of a flow in milliseconds, never negative. Shared by
 *  the DNN/IoT feature definitions and exposed so switch-side builders
 *  and offline extractors bin the same quantity. */
uint64_t flowDurationMs(const FlowStats &flow, double now_s);

/**
 * Tracks flow and source registers over a packet stream and produces the
 * per-packet feature vectors the switch would compute. The Taurus switch
 * implements the same arithmetic with MAT registers; integration tests
 * assert the two paths agree on every packet.
 */
class FlowTracker
{
  public:
    /**
     * Account for a packet and return the updated flow/source views.
     * Must be called in non-decreasing time order.
     */
    void observe(const TracePacket &pkt);

    /** DNN features for the most recently observed packet. */
    nn::Vector dnnFeatures() const;

    /** SVM features for the most recently observed packet. */
    nn::Vector svmFeatures() const;

    /** Number of distinct flows tracked so far. */
    size_t flowCount() const { return flows_.size(); }

    // Register views of the most recently observed packet, exposed so
    // app-specific feature definitions (the IoT classifier's, for one)
    // can assemble their own vectors from the shared state machine.
    const FlowStats &flowView() const { return cur_flow_; }
    const SrcStats &srcView() const { return cur_src_; }
    const TracePacket &pktView() const { return cur_pkt_; }
    double nowS() const { return now_s_; }

    /** Reset all state (new trace). */
    void clear();

  private:
    struct KeyHash
    {
        size_t operator()(const FlowKey &k) const { return k.hash(); }
    };

    std::unordered_map<FlowKey, FlowStats, KeyHash> flows_;
    std::unordered_map<uint32_t, SrcStats> sources_;

    // Views of the flow/source state for the last observed packet.
    FlowStats cur_flow_;
    SrcStats cur_src_;
    TracePacket cur_pkt_;
    double now_s_ = 0.0;
};

/**
 * Assemble the 6-feature DNN vector from register views. Exposed so the
 * switch-side MAT implementation can share it directly.
 */
nn::Vector dnnFeatureVector(const FlowStats &flow, const SrcStats &src,
                            const TracePacket &pkt, double now_s);

/** Assemble the 8-feature SVM vector from register views. */
nn::Vector svmFeatureVector(const FlowStats &flow, const SrcStats &src,
                            const TracePacket &pkt, double now_s);

} // namespace taurus::net
