/**
 * @file
 * Safety constraints on ML decisions (Sections 3.2 and 6,
 * "Correctness").
 *
 * "The control plane can compile high-level safety (no incorrect
 * behavior) and liveness (eventual correct behavior) properties into
 * per-switch constraints as postprocessing flow rules. By constraining
 * the ML model's decision boundary, the data plane can guarantee
 * correct network behavior without complicated model verification."
 *
 * A SafetyPolicy is a set of declarative guards compiled into a
 * postprocessing MAT stage that runs *after* the verdict table and can
 * only clear the Decision bit — the model may under-flag, never
 * override a guard. Guards:
 *
 *  - protected destination prefixes (never drop/flag traffic to them,
 *    e.g. the control network);
 *  - protected services (destination ports, e.g. DNS must stay live);
 *  - a drop-rate bound: at most `max_flagged_per_window` packets may be
 *    flagged per window, enforced with a stateful register (liveness:
 *    a misbehaving model cannot black-hole the network).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "pisa/mat.hpp"
#include "pisa/registers.hpp"

namespace taurus::core {

/** One protected destination prefix. */
struct ProtectedPrefix
{
    uint32_t prefix = 0;
    int length = 32; ///< prefix bits
};

/** Declarative safety policy. */
struct SafetyPolicy
{
    std::vector<ProtectedPrefix> protected_dsts;
    std::vector<uint16_t> protected_services; ///< dst ports

    /** Flag-budget liveness bound; 0 disables. */
    uint32_t max_flagged_per_window = 0;
    double window_s = 0.01;

    bool
    empty() const
    {
        return protected_dsts.empty() && protected_services.empty() &&
               max_flagged_per_window == 0;
    }
};

/** The compiled policy: MAT stages plus the registers they use. */
struct CompiledSafety
{
    pisa::MatPipeline stages;
    int reg_window_start = -1; ///< flag-budget window register
    int reg_flag_count = -1;   ///< flags used this window
};

/**
 * Compile a policy into postprocessing MAT stages. The stages read
 * Decision and may reset it (and Priority) to zero; they never set it.
 * `regs` receives the budget registers (single-cell arrays).
 */
CompiledSafety compileSafety(const SafetyPolicy &policy,
                             pisa::RegisterFile &regs);

} // namespace taurus::core
