/**
 * @file
 * Classification metrics (confusion matrix, precision/recall/F1).
 *
 * Used both by the offline model-evaluation path (Table 3) and by the
 * end-to-end anomaly-detection experiments (Table 8, Figures 13/14), which
 * score per-packet decisions against ground-truth labels.
 */

#pragma once

#include <cstdint>
#include <string>

namespace taurus::util {

/** Binary confusion matrix with derived metrics. */
class ConfusionMatrix
{
  public:
    /** Record one (prediction, truth) pair. */
    void
    record(bool predicted_positive, bool actually_positive)
    {
        if (predicted_positive && actually_positive)
            ++tp_;
        else if (predicted_positive && !actually_positive)
            ++fp_;
        else if (!predicted_positive && actually_positive)
            ++fn_;
        else
            ++tn_;
    }

    /** Merge another matrix into this one. */
    void
    merge(const ConfusionMatrix &other)
    {
        tp_ += other.tp_;
        fp_ += other.fp_;
        fn_ += other.fn_;
        tn_ += other.tn_;
    }

    void reset() { tp_ = fp_ = fn_ = tn_ = 0; }

    uint64_t tp() const { return tp_; }
    uint64_t fp() const { return fp_; }
    uint64_t fn() const { return fn_; }
    uint64_t tn() const { return tn_; }
    uint64_t total() const { return tp_ + fp_ + fn_ + tn_; }
    uint64_t positives() const { return tp_ + fn_; }

    /** Fraction of predicted positives that are real. 1.0 when undefined. */
    double precision() const;
    /** Fraction of real positives detected. 0.0 when undefined. */
    double recall() const;
    /** Harmonic mean of precision and recall. */
    double f1() const;
    /** Fraction of all decisions that are correct. */
    double accuracy() const;

    /** One-line human-readable summary. */
    std::string summary() const;

  private:
    uint64_t tp_ = 0;
    uint64_t fp_ = 0;
    uint64_t fn_ = 0;
    uint64_t tn_ = 0;
};

} // namespace taurus::util
