#include <gtest/gtest.h>

#include <cmath>

#include "fixed/quant.hpp"
#include "fixed/saturate.hpp"
#include "util/rng.hpp"

namespace tf = taurus::fixed;

TEST(Saturate, ClampsToInt8)
{
    EXPECT_EQ(tf::saturate<int8_t>(int64_t{300}), 127);
    EXPECT_EQ(tf::saturate<int8_t>(int64_t{-300}), -128);
    EXPECT_EQ(tf::saturate<int8_t>(int64_t{5}), 5);
}

TEST(Saturate, SatAddBoundaries)
{
    EXPECT_EQ(tf::satAdd<int8_t>(127, 1), 127);
    EXPECT_EQ(tf::satAdd<int8_t>(-128, -1), -128);
    EXPECT_EQ(tf::satAdd<int8_t>(100, 20), 120);
    EXPECT_EQ(tf::satAdd<int32_t>(INT32_MAX, 1), INT32_MAX);
}

TEST(Saturate, SatMulBoundaries)
{
    EXPECT_EQ(tf::satMul<int8_t>(16, 16), 127);
    EXPECT_EQ(tf::satMul<int8_t>(-16, 16), -128);
    EXPECT_EQ(tf::satMul<int8_t>(-11, 11), -121);
}

TEST(Saturate, RoundingShiftHalfAwayFromZero)
{
    EXPECT_EQ(tf::roundingShiftRight(5, 1), 3);   // 2.5 -> 3
    EXPECT_EQ(tf::roundingShiftRight(-5, 1), -3); // -2.5 -> -3
    EXPECT_EQ(tf::roundingShiftRight(4, 1), 2);
    EXPECT_EQ(tf::roundingShiftRight(4, 0), 4);
    EXPECT_EQ(tf::roundingShiftRight(4, -2), 16); // negative = left shift
}

TEST(Quant, RoundTripWithinHalfStep)
{
    const tf::QuantParams qp = tf::QuantParams::forAbsMax(4.0, 8);
    for (double v = -4.0; v <= 4.0; v += 0.37) {
        const int32_t q = tf::quantize(v, qp, 8);
        EXPECT_NEAR(tf::dequantize(q, qp), v, qp.scale / 2 + 1e-12);
    }
}

TEST(Quant, SaturatesOutOfRange)
{
    const tf::QuantParams qp = tf::QuantParams::forAbsMax(1.0, 8);
    EXPECT_EQ(tf::quantize(10.0, qp, 8), 127);
    EXPECT_EQ(tf::quantize(-10.0, qp, 8), -128);
}

TEST(Quant, AbsMaxMapsToExtremeCode)
{
    const tf::QuantParams qp = tf::QuantParams::forAbsMax(2.54, 8);
    EXPECT_EQ(tf::quantize(2.54, qp, 8), 127);
}

TEST(Requantizer, ApproximatesRealMultiplier)
{
    taurus::util::Rng rng(11);
    for (int trial = 0; trial < 200; ++trial) {
        const double mult = std::pow(2.0, rng.uniform(-10, 2)) *
                            rng.uniform(0.5, 1.0);
        const auto rq = tf::Requantizer::fromRealMultiplier(mult);
        EXPECT_NEAR(rq.realMultiplier(), mult, mult * 1e-6);
        for (int i = 0; i < 50; ++i) {
            const int32_t acc =
                static_cast<int32_t>(rng.uniformInt(-100000, 100000));
            const double real = acc * mult;
            const double got = rq.apply(acc);
            if (real > 127)
                EXPECT_EQ(got, 127);
            else if (real < -128)
                EXPECT_EQ(got, -128);
            else
                EXPECT_NEAR(got, real, 0.5 + 1e-9);
        }
    }
}

TEST(Requantizer, ZeroAndNegativeMultiplier)
{
    const auto rq = tf::Requantizer::fromRealMultiplier(0.0);
    EXPECT_EQ(rq.apply(12345), 0);
}

// Property sweep: requantization is monotone in the accumulator.
class RequantMonotone : public ::testing::TestWithParam<double>
{
};

TEST_P(RequantMonotone, Monotonic)
{
    const auto rq = tf::Requantizer::fromRealMultiplier(GetParam());
    int8_t prev = rq.apply(-200000);
    for (int32_t acc = -200000; acc <= 200000; acc += 997) {
        const int8_t cur = rq.apply(acc);
        EXPECT_GE(cur, prev);
        prev = cur;
    }
}

INSTANTIATE_TEST_SUITE_P(Multipliers, RequantMonotone,
                         ::testing::Values(0.0001, 0.001, 0.01, 0.05, 0.25,
                                           0.5, 0.9, 1.0, 1.7));
