#include "pisa/packet.hpp"

#include <stdexcept>

namespace taurus::pisa {

namespace {

void
putU8(std::vector<uint8_t> &b, uint8_t v)
{
    b.push_back(v);
}

void
putU16(std::vector<uint8_t> &b, uint16_t v)
{
    b.push_back(static_cast<uint8_t>(v >> 8));
    b.push_back(static_cast<uint8_t>(v & 0xff));
}

void
putU32(std::vector<uint8_t> &b, uint32_t v)
{
    b.push_back(static_cast<uint8_t>(v >> 24));
    b.push_back(static_cast<uint8_t>((v >> 16) & 0xff));
    b.push_back(static_cast<uint8_t>((v >> 8) & 0xff));
    b.push_back(static_cast<uint8_t>(v & 0xff));
}

} // namespace

uint8_t
readU8(const std::vector<uint8_t> &b, size_t off)
{
    if (off >= b.size())
        throw std::out_of_range("packet read past end");
    return b[off];
}

uint16_t
readU16(const std::vector<uint8_t> &b, size_t off)
{
    return static_cast<uint16_t>(readU8(b, off) << 8 | readU8(b, off + 1));
}

uint32_t
readU32(const std::vector<uint8_t> &b, size_t off)
{
    return static_cast<uint32_t>(readU16(b, off)) << 16 |
           readU16(b, off + 2);
}

Packet
makePacket(const net::FlowKey &flow, uint16_t total_len, uint8_t tcp_flags,
           double arrival_s)
{
    Packet p;
    p.arrival_s = arrival_s;
    auto &b = p.bytes;
    b.reserve(total_len);

    // Ethernet: synthetic MACs derived from the IPs.
    putU16(b, 0x0200);
    putU32(b, flow.dst_ip);
    putU16(b, 0x0200);
    putU32(b, flow.src_ip);
    putU16(b, kEtherTypeIpv4);

    // IPv4 (no options).
    const bool tcp = flow.proto == net::kProtoTcp;
    putU8(b, 0x45); // version 4, ihl 5
    putU8(b, 0);    // tos
    putU16(b, static_cast<uint16_t>(total_len > 14 ? total_len - 14 : 20));
    putU16(b, 0);      // id
    putU16(b, 0x4000); // don't-fragment
    putU8(b, 64);      // ttl
    putU8(b, flow.proto);
    putU16(b, 0); // checksum (not modeled)
    putU32(b, flow.src_ip);
    putU32(b, flow.dst_ip);

    if (tcp) {
        putU16(b, flow.src_port);
        putU16(b, flow.dst_port);
        putU32(b, 0); // seq
        putU32(b, 0); // ack
        putU8(b, 0x50); // data offset 5
        putU8(b, tcp_flags);
        putU16(b, 0xffff); // window
        putU16(b, 0);      // checksum
        putU16(b, 0);      // urgent pointer
    } else {
        putU16(b, flow.src_port);
        putU16(b, flow.dst_port);
        putU16(b, static_cast<uint16_t>(total_len > 34 ? total_len - 34
                                                       : 8));
        putU16(b, 0); // checksum
    }

    // Pad the body out to the wire length.
    while (b.size() < total_len)
        b.push_back(0);
    return p;
}

Packet
fromTracePacket(const net::TracePacket &tp)
{
    uint8_t flags = kTcpAck;
    if (tp.syn)
        flags = kTcpSyn;
    if (tp.fin)
        flags = static_cast<uint8_t>(flags | kTcpFin);
    if (tp.urg)
        flags = static_cast<uint8_t>(flags | kTcpUrg);

    Packet p = makePacket(tp.flow, std::max<uint16_t>(tp.size_bytes, 54),
                          flags, tp.time_s);
    p.truth_anomalous = tp.anomalous;
    p.truth_conn_id = tp.conn_id;
    return p;
}

} // namespace taurus::pisa
