/**
 * @file
 * SwitchFarm: a sharded multi-worker driver over TaurusSwitch replicas.
 *
 * The simulator models one switch at packet granularity; to sweep the
 * design space at the traffic scales the roadmap targets (millions of
 * flows), a single core is not enough. The farm runs N identical switch
 * replicas, one worker thread each, and partitions traffic by a hash of
 * the source address. That key dominates every piece of stateful
 * processing: flow registers are keyed by the 5-tuple (which contains
 * the source) and source registers by the source address, so a replica
 * owns *all* state its packets can touch and replicas never share
 * mutable state — no locks on the per-packet path.
 *
 * Multi-tenant: installApp() is additive, exactly like the switch's —
 * every replica hosts the same tenant set under the same AppIds, and
 * per-tenant weight updates (updateWeights(app_id, graph)) land on all
 * replicas without touching the other tenants.
 *
 * Determinism: each replica sees its partition in trace order, so a
 * farm run is bit-identical to running each partition through a
 * standalone TaurusSwitch (the fastpath regression test asserts this,
 * and that a single-worker farm exactly reproduces the scalar path).
 * Across different worker counts, decisions can differ only through
 * register hash collisions, which partitioning changes by construction.
 */

#pragma once

#include <memory>
#include <vector>

#include "taurus/switch.hpp"

namespace taurus::core {

/**
 * Deterministic owner of a packet under src-hash partitioning: a mixed
 * hash (splitmix64 finalizer) of the source address modulo the worker
 * count. All packets of a flow — and all flows of a source — map to
 * the same worker. Shared by SwitchFarm and the pipelined
 * dataplane::PipelineFarm, which is what makes the two bit-identical
 * whenever no packet is dropped: both partition by the same hash, so
 * each replica sees the same subsequence in the same order.
 */
size_t flowOwner(const net::TracePacket &tp, size_t workers);

/** N switch replicas fed by flow-hash partitioning. */
class SwitchFarm
{
  public:
    /**
     * `workers` == 0 picks the host's hardware concurrency (at least
     * one). Every replica is built from the same config.
     */
    explicit SwitchFarm(SwitchConfig cfg = {}, size_t workers = 0);

    /**
     * Install an application artifact into every replica, alongside any
     * resident tenants. Returns the new tenant's AppId (identical on
     * every replica, since all replicas install in the same order).
     */
    AppId installApp(const AppArtifact &app);

    /** Install an anomaly model into every replica (thin wrapper over
     *  installApp through the one shared builder, like the switch's). */
    AppId installAnomalyModel(const models::AnomalyDnn &model);

    /**
     * Remove one tenant from every replica (same contract and typed
     * errors as TaurusSwitch::removeApp; placement is deterministic so
     * either every replica admits the survivor re-placement or none
     * does — all-or-nothing farm-wide). Returns every replica's retired
     * state block. Batch-boundary contract: not concurrently with
     * processTrace() — the online runtime instead applies lifecycle
     * operations per replica from that replica's own worker.
     */
    std::vector<RetiredTenant> removeApp(AppId id);

    /** Replace one tenant in place on every replica (same contract as
     *  TaurusSwitch::replaceApp; batch-boundary contract as above). */
    std::vector<RetiredTenant> replaceApp(AppId id,
                                          const AppArtifact &app);

    /** Re-point unmatched traffic on every replica. */
    void setDefaultApp(AppId id);

    /** True when `id` names a live tenant (replica 0; all agree). */
    bool installed(AppId id) const;

    /** Live tenant ids in install order (replica 0; all agree). */
    std::vector<AppId> appIds() const;

    /**
     * Push fresh weights into one tenant's program on every replica
     * without re-placing it (the farm-wide out-of-band weight-update
     * path); the other tenants keep serving their installed weights.
     * Must be called at a batch boundary — i.e. not concurrently with
     * processTrace(); the online runtime serializes updates against its
     * worker batches for exactly this reason. The graph must be
     * structurally identical to the installed one
     * (std::invalid_argument otherwise); an unknown `id` throws
     * std::out_of_range and a farm with nothing installed throws
     * std::logic_error.
     */
    void updateWeights(AppId id, const dfg::Graph &fresh);

    /** Single-tenant convenience; same contract as the switch's. */
    void updateWeights(const dfg::Graph &fresh);

    /**
     * Deterministic owner of a packet: a mixed hash of the source
     * address modulo the worker count. All packets of a flow — and all
     * flows of a source — map to the same worker.
     */
    size_t workerFor(const net::TracePacket &tp) const;

    /**
     * Process a trace: partition by workerFor(), drain each partition
     * on its own thread in trace order, and write each packet's
     * decision at its original index. `decisions.size()` must equal
     * `packets.size()`. Rethrows the first worker exception.
     */
    void processTrace(util::Span<const net::TracePacket> packets,
                      util::Span<SwitchDecision> decisions);

    /** Convenience overload that owns the decision storage. */
    std::vector<SwitchDecision> processTrace(
        const std::vector<net::TracePacket> &packets);

    /** Sum of all replicas' counters (latency stats merged exactly). */
    SwitchStats mergedStats() const;

    /** Sum of all replicas' counters for one tenant. */
    SwitchStats mergedStats(AppId id) const;

    /** Tenants resident on every replica. */
    size_t appCount() const;

    /**
     * Hosting mode the admission controller settled on. Placement is
     * deterministic and every replica installs the same artifacts in
     * the same order, so all replicas agree; this reads replica 0.
     */
    PlacementMode placementMode() const;

    /** The latest re-placement decision (replica 0; all agree). */
    const compiler::PlacementReport &placementReport() const;

    size_t workers() const { return replicas_.size(); }
    TaurusSwitch &replica(size_t i) { return *replicas_[i]; }

    /**
     * The farm's shared metrics registry: one shard per replica, every
     * replica re-homed onto it at construction, so the per-packet paths
     * write disjoint cache lines and scrape() folds them exactly.
     * nullptr when cfg.obs.metrics is false.
     */
    const std::shared_ptr<obs::MetricsRegistry> &registry() const
    {
        return registry_;
    }

    /**
     * Merged scrape of every replica's shard (exact: counter sums and
     * histogram bucket merges, the same numbers a per-replica scrape
     * would add to — a test pins equality with mergedStats()). Runs the
     * replicas' stats collectors, so it carries mergedStats()'s
     * batch-boundary contract; scrape on the farm's registry() with
     * run_collectors = false for the anytime lock-free view.
     */
    obs::Snapshot scrape() const;

    /** Clear every replica's registers and statistics. */
    void reset();

  private:
    std::shared_ptr<obs::MetricsRegistry> registry_;
    std::vector<std::unique_ptr<TaurusSwitch>> replicas_;
};

} // namespace taurus::core
