/**
 * @file
 * Multilayer perceptron with backprop training.
 *
 * This is the float32 model that the control plane trains (paper Figure 1:
 * "Control Plane (Training)"); after training it is quantized to int8 and
 * installed into the MapReduce block. Supports the paper's model zoo: the
 * anomaly-detection DNN (6-12-6-3-1, Tang et al.) and the IoT classifiers
 * of Table 3 (4x10x2 etc.).
 */

#pragma once

#include <cstddef>
#include <vector>

#include "nn/activations.hpp"
#include "nn/dataset.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace taurus::nn {

/** One dense layer: y = act(W x + b). */
struct DenseLayer
{
    Matrix w;
    Vector b;
    Activation act = Activation::Relu;
};

/** Loss families supported by the trainer. */
enum class Loss
{
    BinaryCrossEntropy, ///< final layer sigmoid, scalar output
    CrossEntropy,       ///< final layer softmax, one output per class
    MeanSquaredError,   ///< final layer linear
};

/** Training hyperparameters. */
struct TrainConfig
{
    int epochs = 20;
    int batch_size = 32;
    float learning_rate = 0.05f;
    float momentum = 0.9f;
    float weight_decay = 0.0f;
};

/** A fully-connected network with explicit backprop. */
class Mlp
{
  public:
    Mlp() = default;

    /**
     * Build from layer sizes, e.g. {6, 12, 6, 3, 1} with hidden activation
     * `hidden` and the output activation implied by `loss`.
     */
    Mlp(const std::vector<size_t> &sizes, Activation hidden, Loss loss,
        util::Rng &rng);

    /** Forward pass returning the output activation vector. */
    Vector forward(const Vector &input) const;

    /** Train on one minibatch; returns mean loss. */
    float trainBatch(const std::vector<const Vector *> &xs,
                     const std::vector<int> &ys, const TrainConfig &cfg);

    /** Full training loop; returns final-epoch mean loss. */
    float train(const Dataset &data, const TrainConfig &cfg, util::Rng &rng);

    /** Predicted class (argmax for softmax, threshold 0.5 for sigmoid). */
    int predict(const Vector &input) const;

    /** Classification accuracy over a dataset. */
    double accuracy(const Dataset &data) const;

    const std::vector<DenseLayer> &layers() const { return layers_; }
    std::vector<DenseLayer> &layers() { return layers_; }
    Loss loss() const { return loss_; }
    size_t inputSize() const;
    size_t outputSize() const;

  private:
    struct Trace
    {
        std::vector<Vector> pre;  // pre-activations per layer
        std::vector<Vector> post; // post-activations per layer (incl input)
    };

    Vector forwardTraced(const Vector &input, Trace &trace) const;

    std::vector<DenseLayer> layers_;
    Loss loss_ = Loss::BinaryCrossEntropy;

    // Momentum buffers, lazily sized.
    std::vector<Matrix> vel_w_;
    std::vector<Vector> vel_b_;
};

} // namespace taurus::nn
