#include "compiler/report.hpp"

namespace taurus::compiler {

AppReport
analyze(const hw::GridProgram &program, const area::ChipModel &chip)
{
    AppReport r;
    r.name = program.graph.name;

    std::vector<std::vector<int8_t>> zeros;
    for (int id : program.graph.inputIds())
        zeros.emplace_back(
            static_cast<size_t>(program.graph.node(id).width), 0);

    const hw::CycleSim sim(program);
    const hw::SimResult res = sim.run(zeros);

    r.cus = program.cusUsed();
    r.mus = program.musUsed();
    const area::BlockCost cost = chip.unitCost(r.cus, r.mus);
    r.area_mm2 = cost.area_mm2;
    r.power_w = cost.power_w;
    r.latency_cycles = res.latency_cycles;
    r.latency_ns = res.latency_ns;
    r.ii_cycles = res.ii_cycles;
    r.gpktps = res.gpktps;
    r.area_overhead_pct = chip.areaOverheadPct(r.area_mm2);
    r.power_overhead_pct = chip.powerOverheadPct(r.power_w);
    r.weight_bytes = program.graph.weightBytes();
    r.route_hops = res.route_hops;
    r.folded = program.serialize_sharing;
    return r;
}

} // namespace taurus::compiler
