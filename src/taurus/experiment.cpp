#include "taurus/experiment.hpp"

#include "taurus/app.hpp"
#include "util/metrics.hpp"

namespace taurus::core {

AppRunResult
runApp(const std::vector<net::TracePacket> &trace, TaurusSwitch &sw,
       size_t num_classes)
{
    AppRunResult r;
    r.confusion = util::MultiConfusion(num_classes);
    for (const auto &pkt : trace) {
        const SwitchDecision d = sw.process(pkt);
        r.confusion.record(d.class_id, pkt.class_label);
    }
    r.accuracy_pct = r.confusion.accuracy() * 100.0;
    r.macro_f1_x100 = r.confusion.macroF1() * 100.0;
    r.mean_ml_latency_ns = sw.stats().ml_latency_ns.mean();
    r.mean_bypass_latency_ns = sw.stats().bypass_latency_ns.mean();
    r.packets = sw.stats().packets;
    r.flagged = sw.stats().flagged;
    return r;
}

AppRunResult
runApp(const AppArtifact &app, const SwitchConfig &switch_cfg)
{
    TaurusSwitch sw(switch_cfg);
    sw.installApp(app);
    return runApp(app.eval_trace, sw, app.num_classes);
}

TaurusRunResult
runTaurus(const std::vector<net::TracePacket> &trace, TaurusSwitch &sw)
{
    util::ConfusionMatrix cm;
    for (const auto &pkt : trace) {
        const SwitchDecision d = sw.process(pkt);
        cm.record(d.flagged, pkt.anomalous);
    }

    TaurusRunResult r;
    r.detected_pct = cm.recall() * 100.0;
    r.f1_x100 = cm.f1() * 100.0;
    r.mean_ml_latency_ns = sw.stats().ml_latency_ns.mean();
    r.mean_bypass_latency_ns = sw.stats().bypass_latency_ns.mean();
    r.packets = sw.stats().packets;
    r.flagged = sw.stats().flagged;
    return r;
}

std::vector<EndToEndRow>
runEndToEnd(const std::vector<net::TracePacket> &trace,
            const models::AnomalyDnn &model,
            const std::vector<double> &sampling_rates,
            const SwitchConfig &switch_cfg)
{
    TaurusSwitch sw(switch_cfg);
    sw.installAnomalyModel(model);
    const TaurusRunResult taurus = runTaurus(trace, sw);

    const auto standardize = [&model](const nn::Vector &raw) {
        return model.standardizer.apply(raw);
    };

    std::vector<EndToEndRow> rows;
    for (double rate : sampling_rates) {
        cp::BaselineConfig cfg;
        cfg.sampling_rate = rate;
        EndToEndRow row;
        row.baseline =
            cp::runBaseline(trace, model.quantized, standardize, cfg);
        row.taurus = taurus;
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace taurus::core
