/**
 * @file
 * The VLIW action engine of a match-action stage.
 *
 * Actions are short straight-line programs of primitive operations over
 * PHV containers, immediates, per-entry action data, and stateful
 * registers. The per-stage issue budget models Tofino's limit of "12
 * operations per stage: four of each of 8, 16, and 32 bits"
 * (Section 2.1.1, ref [65]); MatStage::validate enforces it.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "pisa/phv.hpp"
#include "pisa/registers.hpp"

namespace taurus::pisa {

/** Primitive operations the action engine issues. */
enum class ActionOp : uint8_t
{
    Set,        ///< dst = operand
    Add,        ///< dst = dst + operand
    Sub,        ///< dst = dst - operand
    Min,        ///< dst = min(dst, operand)
    Max,        ///< dst = max(dst, operand)
    And,        ///< dst = dst & operand
    Or,         ///< dst = dst | operand
    Xor,        ///< dst = dst ^ operand
    Shl,        ///< dst = dst << operand
    Shr,        ///< dst = dst >> operand
    HashFlow,   ///< dst = fnv1a(5-tuple fields) % operand
    TestEq,     ///< dst = (dst == operand) ? 1 : 0 (predication)
    RegLoad,    ///< dst = reg[index]
    RegStore,   ///< reg[index] = operand
    RegAdd,     ///< dst = (reg[index] += operand)
    RegLoadSet, ///< dst = reg[index] ?: (reg[index] = operand)
};

/** Where an instruction's second operand comes from. */
enum class Src : uint8_t
{
    None,
    Imm,      ///< instruction immediate
    FieldSrc, ///< another PHV container
    Arg,      ///< per-table-entry action data
};

/** One VLIW slot. */
struct Instr
{
    ActionOp op = ActionOp::Set;
    Field dst = Field::Tmp0;
    Src src = Src::Imm;
    Field src_field = Field::Tmp0;
    uint32_t imm = 0;
    int arg_index = 0; ///< which action-data word when src == Arg
    int reg = -1;      ///< register array id for Reg* ops
    Field reg_index = Field::FlowHash; ///< index source for Reg* ops
};

/** A named action: a VLIW bundle executed on match. */
struct Action
{
    std::string name;
    std::vector<Instr> instrs;

    /** Issue slots this action needs. */
    size_t opCount() const { return instrs.size(); }
};

/** Tofino-style per-stage issue budget. */
constexpr size_t kMaxOpsPerStage = 12;

/**
 * Execute an action against a PHV, register file, and the matched
 * entry's action data.
 */
void execute(const Action &action, Phv &phv, RegisterFile &regs,
             const std::vector<uint32_t> &args);

/** The FNV-1a 5-tuple hash the HashFlow op computes. */
uint32_t flowHash(const Phv &phv);

} // namespace taurus::pisa
