#include "compiler/compile.hpp"

#include <algorithm>
#include <cassert>
#include <map>
#include <set>
#include <stdexcept>
#include <vector>

#include "util/stats.hpp"

namespace taurus::compiler {

using dfg::Graph;
using dfg::Node;
using dfg::NodeKind;
using hw::Coord;
using hw::GridSpec;
using hw::UnitKind;

namespace {

bool
isDotLike(const Node &n)
{
    return n.kind == NodeKind::DotRow || n.kind == NodeKind::PartialDot ||
           n.kind == NodeKind::SquaredDist;
}

/** Longest-path depth of every node (topological levels). */
std::vector<int>
nodeLevels(const Graph &g)
{
    std::vector<int> level(g.nodes().size(), 0);
    for (int id : g.topoOrder()) {
        const Node &n = g.node(id);
        int l = 0;
        for (int pred : n.inputs)
            l = std::max(l, level[static_cast<size_t>(pred)] + 1);
        level[static_cast<size_t>(id)] = l;
    }
    return level;
}

/** A group of nodes sharing one CU slot (lane packing). */
struct CuSlot
{
    std::vector<int> nodes;
    int lanes_used = 0;
    int level = 0;
};

struct CoordLess
{
    bool
    operator()(const Coord &a, const Coord &b) const
    {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    }
};

} // namespace

hw::GridProgram
compile(const dfg::Graph &graph, const Options &opts)
{
    const std::string gerr = graph.validate();
    if (!gerr.empty())
        throw std::invalid_argument("compile: invalid graph: " + gerr);

    const GridSpec &spec = opts.spec;
    if (opts.region.col_begin < 0 ||
        opts.region.col_begin >= opts.region.endFor(spec.cols) ||
        opts.region.endFor(spec.cols) > spec.cols)
        throw std::invalid_argument(
            "compile: region [" + std::to_string(opts.region.col_begin) +
            "," + std::to_string(opts.region.endFor(spec.cols)) +
            ") does not fit a " + std::to_string(spec.cols) +
            "-column grid");
    hw::GridProgram prog;
    prog.graph = graph;
    prog.spec = spec;
    prog.timing = opts.timing;
    prog.region = opts.region;
    prog.place.assign(graph.nodes().size(), Coord{0, 0});

    const std::vector<int> level = nodeLevels(graph);
    int max_level = 1;
    for (int l : level)
        max_level = std::max(max_level, l);

    // ---- Step 1: build CU slots with optional lane packing. ----
    // Pack dot-like ops that read the same input signature and belong to
    // the same layer (label prefix before '/'), greedily filling lanes.
    std::vector<CuSlot> slots;
    std::map<std::string, std::vector<int>> pack_bins;

    auto labelPrefix = [](const std::string &s) {
        const size_t pos = s.find('/');
        return pos == std::string::npos ? s : s.substr(0, pos);
    };

    for (const auto &n : graph.nodes()) {
        if (!dfg::Graph::isCuOp(n))
            continue;
        const int in_w =
            n.inputs.empty() ? n.width : graph.node(n.inputs[0]).width;
        if (opts.enable_packing && isDotLike(n) &&
            in_w * 2 <= spec.lanes) {
            // Signature: same source vector + same layer.
            std::string sig = labelPrefix(n.label);
            for (int in : n.inputs)
                sig += ":" + std::to_string(in);
            auto &bin = pack_bins[sig];
            bool packed = false;
            for (int slot_idx : bin) {
                if (slots[static_cast<size_t>(slot_idx)].lanes_used + in_w
                    <= spec.lanes) {
                    slots[static_cast<size_t>(slot_idx)].nodes.push_back(
                        n.id);
                    slots[static_cast<size_t>(slot_idx)].lanes_used += in_w;
                    packed = true;
                    break;
                }
            }
            if (!packed) {
                CuSlot s;
                s.nodes = {n.id};
                s.lanes_used = in_w;
                s.level = level[static_cast<size_t>(n.id)];
                bin.push_back(static_cast<int>(slots.size()));
                slots.push_back(std::move(s));
            }
        } else {
            CuSlot s;
            s.nodes = {n.id};
            s.lanes_used = in_w;
            s.level = level[static_cast<size_t>(n.id)];
            slots.push_back(std::move(s));
        }
    }

    // ---- Step 2: folding decision. ----
    // Unit pools restricted to the program's region; the default region
    // is the whole grid, so a region-less compile sees every unit.
    const auto cu_coords = spec.unitsOfKind(UnitKind::Cu, opts.region);
    const auto mu_coords = spec.unitsOfKind(UnitKind::Mu, opts.region);
    const int n_slots = static_cast<int>(slots.size());
    int contexts = 1;
    if (n_slots > static_cast<int>(cu_coords.size())) {
        // Fold as deep as allowed: time-multiplexed designs trade
        // throughput for area (the Indigo LSTM case, Table 5).
        contexts = opts.max_contexts_per_cu;
        prog.serialize_sharing = true;
    }
    const int cus_needed =
        static_cast<int>(util::ceilDiv(n_slots, contexts));
    if (cus_needed > static_cast<int>(cu_coords.size()))
        throw std::invalid_argument(
            "compile: graph needs " + std::to_string(cus_needed) +
            " CUs, " +
            (opts.region.coversAll(spec.cols) ? "grid" : "region") +
            " has " + std::to_string(cu_coords.size()));

    // ---- Step 3: placement. ----
    // Column target proportional to topological level; row target follows
    // the centroid of already-placed producers.
    std::set<Coord, CoordLess> free_cus(cu_coords.begin(), cu_coords.end());
    std::set<Coord, CoordLess> free_mus(mu_coords.begin(), mu_coords.end());
    std::map<Coord, int, CoordLess> cu_contexts; // used context count

    const Coord ingress = spec.ingress();
    const Coord egress = spec.egress();

    // Topological levels map onto the region's columns (the full grid's
    // when no region is set, which reproduces the region-less formula).
    const int band_begin = opts.region.col_begin;
    const int band_end = opts.region.endFor(spec.cols);
    auto targetFor = [&](int lvl, double row_hint) {
        Coord t;
        t.col = max_level <= 1
                    ? band_begin
                    : band_begin +
                          static_cast<int>((band_end - band_begin - 1) *
                                           (static_cast<double>(lvl) /
                                            max_level));
        t.row = static_cast<int>(row_hint);
        t.row = std::clamp(t.row, 0, spec.rows - 1);
        t.col = std::clamp(t.col, band_begin, band_end - 1);
        return t;
    };

    auto nearest = [&](std::set<Coord, CoordLess> &pool, Coord target,
                       bool allow_reuse_cu) -> Coord {
        // Prefer a fresh unit nearest the target; when folding, allow
        // reusing a CU that still has context slots.
        Coord best{-1, -1};
        int best_d = 1 << 30;
        for (const auto &c : pool) {
            const int d = hw::manhattan(c, target);
            if (d < best_d) {
                best_d = d;
                best = c;
            }
        }
        if (allow_reuse_cu) {
            for (auto &[c, used] : cu_contexts) {
                if (used < contexts && pool.count(c) == 0) {
                    const int d = hw::manhattan(c, target);
                    if (d < best_d) {
                        best_d = d;
                        best = c;
                    }
                }
            }
        }
        return best;
    };

    auto producersRow = [&](const std::vector<int> &node_ids) {
        double sum = 0;
        int count = 0;
        for (int id : node_ids) {
            for (int pred : graph.node(id).inputs) {
                const Coord p = prog.place[static_cast<size_t>(pred)];
                if (p.col >= 0) {
                    sum += p.row;
                    ++count;
                }
            }
        }
        return count == 0 ? spec.rows / 2.0 : sum / count;
    };

    // Place in topological order of each slot's first node.
    std::vector<int> slot_order(slots.size());
    for (size_t i = 0; i < slots.size(); ++i)
        slot_order[i] = static_cast<int>(i);
    std::sort(slot_order.begin(), slot_order.end(), [&](int a, int b) {
        return slots[static_cast<size_t>(a)].nodes.front() <
               slots[static_cast<size_t>(b)].nodes.front();
    });

    // First pass: inputs/outputs/concats per topological order; slots and
    // lookups interleaved by walking node ids in order.
    std::map<int, int> node_slot; // node id -> slot index
    for (size_t si = 0; si < slots.size(); ++si)
        for (int id : slots[si].nodes)
            node_slot[id] = static_cast<int>(si);
    std::vector<bool> slot_placed(slots.size(), false);

    for (int id : graph.topoOrder()) {
        const Node &n = graph.node(id);
        switch (n.kind) {
          case NodeKind::Input:
            prog.place[static_cast<size_t>(id)] = ingress;
            break;
          case NodeKind::Output:
            prog.place[static_cast<size_t>(id)] = egress;
            break;
          case NodeKind::Concat: {
            // Virtual gather point at the producer centroid.
            double rsum = 0, csum = 0;
            for (int pred : n.inputs) {
                rsum += prog.place[static_cast<size_t>(pred)].row;
                csum += prog.place[static_cast<size_t>(pred)].col;
            }
            Coord c;
            c.row = static_cast<int>(rsum / n.inputs.size());
            c.col = static_cast<int>(csum / n.inputs.size());
            prog.place[static_cast<size_t>(id)] = c;
            break;
          }
          case NodeKind::Lookup: {
            const Coord t = targetFor(level[static_cast<size_t>(id)],
                                      producersRow({id}));
            const Coord c = nearest(free_mus, t, false);
            if (c.row < 0)
                throw std::invalid_argument(
                    "compile: out of MUs for lookups");
            free_mus.erase(c);
            prog.place[static_cast<size_t>(id)] = c;
            break;
          }
          default: {
            // CU op: place its whole slot on first encounter.
            const int si = node_slot.at(id);
            if (slot_placed[static_cast<size_t>(si)]) {
                prog.place[static_cast<size_t>(id)] =
                    prog.place[static_cast<size_t>(
                        slots[static_cast<size_t>(si)].nodes.front())];
                break;
            }
            const auto &slot = slots[static_cast<size_t>(si)];
            const Coord t =
                targetFor(slot.level, producersRow(slot.nodes));
            // Once the folded-CU budget is reached, only reuse contexts.
            const int distinct_used = static_cast<int>(cu_contexts.size());
            Coord c;
            if (prog.serialize_sharing && distinct_used >= cus_needed) {
                std::set<Coord, CoordLess> empty_pool;
                c = nearest(empty_pool, t, true);
            } else {
                c = nearest(free_cus, t, prog.serialize_sharing);
            }
            if (c.row < 0)
                throw std::invalid_argument("compile: out of CUs");
            if (free_cus.count(c))
                free_cus.erase(c);
            ++cu_contexts[c];
            for (int nid : slot.nodes)
                prog.place[static_cast<size_t>(nid)] = c;
            slot_placed[static_cast<size_t>(si)] = true;
            break;
          }
        }
    }

    // ---- Step 4: weight MUs. ----
    // Dot-like CUs stream weights from nearby MUs: bounded readers per MU
    // and bounded bytes per MU.
    std::set<Coord, CoordLess> weight_readers;
    size_t weight_bytes = 0;
    for (const auto &n : graph.nodes()) {
        if (isDotLike(n) && !n.weights.empty()) {
            weight_readers.insert(prog.place[static_cast<size_t>(n.id)]);
            weight_bytes += n.weightBytes();
        }
    }
    int mus_for_weights = 0;
    // A small constant tensor fits in a CU's configuration registers
    // (Plasticine-style immediates), so single-dot microbenchmarks take
    // one CU and no MU (the Table 6 inner-product operating point).
    constexpr size_t kCuConfigWeightBytes = 32;
    if (!weight_readers.empty() && weight_bytes > kCuConfigWeightBytes) {
        const int by_readers = static_cast<int>(
            util::ceilDiv(static_cast<int64_t>(weight_readers.size()),
                          opts.readers_per_weight_mu));
        const int by_capacity = static_cast<int>(util::ceilDiv(
            static_cast<int64_t>(weight_bytes),
            static_cast<int64_t>(spec.muCapacityBytes())));
        mus_for_weights = std::max(by_readers, by_capacity);
    }
    // Allocate them nearest the centroid of the readers.
    if (mus_for_weights > 0) {
        double rsum = 0, csum = 0;
        for (const auto &c : weight_readers) {
            rsum += c.row;
            csum += c.col;
        }
        Coord centroid;
        centroid.row = static_cast<int>(rsum / weight_readers.size());
        centroid.col = static_cast<int>(csum / weight_readers.size());
        for (int i = 0; i < mus_for_weights; ++i) {
            const Coord c = nearest(free_mus, centroid, false);
            if (c.row < 0)
                throw std::invalid_argument(
                    "compile: out of MUs for weights");
            free_mus.erase(c);
            prog.weight_mus.push_back(c);
        }
    }

    if (graph.loop)
        prog.ii_multiplier = graph.loop->iiMultiplier();

    const std::string perr = prog.validate();
    if (!perr.empty())
        throw std::logic_error("compile: produced invalid program: " +
                               perr);
    return prog;
}

} // namespace taurus::compiler
