/**
 * @file
 * Live online learning, end to end (paper Figure 1 / Section 5.2.3):
 * a SwitchFarm serves traffic while the control-plane runtime mirrors
 * sampled telemetry, watches windowed F1 for drift, retrains in the
 * background, and hot-swaps quantized weight updates into every replica
 * without touching placement.
 *
 * The demo runs the deterministic synchronous mode so the printed
 * trajectory is reproducible: steady traffic -> injected distribution
 * shift (net::shiftedAttackMix) -> drift trigger -> streaming SGD ->
 * recovery to >= 95% of the pre-shift windowed F1.
 */

#include <iostream>
#include <vector>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "runtime/runtime.hpp"
#include "taurus/farm.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "=== Live online learning on a running SwitchFarm ===\n\n";
    const auto dnn = models::trainAnomalyDnn(1, 1200);

    net::KddConfig base;
    base.connections = 5000;
    base.trace_duration_s = 1.0;
    net::KddGenerator gen_a(base, 42);
    const auto steady = net::trimTrace(
        gen_a.expandToPackets(gen_a.sampleConnections()),
        base.trace_duration_s);
    net::KddGenerator gen_b(net::shiftedAttackMix(base), 43);
    const auto shifted = net::trimTrace(
        gen_b.expandToPackets(gen_b.sampleConnections()),
        base.trace_duration_s);
    std::cout << "Steady trace: " << steady.size()
              << " packets, shifted trace: " << shifted.size()
              << " packets\n\n";

    core::SwitchFarm farm({}, 2);
    farm.installAnomalyModel(dnn);

    runtime::RuntimeConfig rc;
    rc.synchronous = true; // deterministic demo; production runs async
    rc.sampling_rate = 1.0;
    rc.batch_pkts = 512;
    rc.train.batch = 256;
    rc.train.epochs = 2;
    rc.train.seed = 5;
    rc.drift.window = 512;
    rc.drift.warmup_windows = 2;
    runtime::OnlineRuntime rt(farm, dnn, rc);
    rt.start();

    TablePrinter t({"Phase", "Windows", "F1 (smoothed)", "Drift",
                    "Updates pushed"});
    auto row = [&](const std::string &phase) {
        const auto st = rt.stats();
        t.addRow({phase, std::to_string(st.windows_closed),
                  TablePrinter::num(st.smoothed_f1, 3),
                  st.drifted ? "YES" : "no",
                  std::to_string(st.updates_published)});
    };

    rt.processTrace(steady);
    row("steady mix");
    const double pre_shift_f1 = rt.stats().reference_f1;

    // Inject the shift; keep replaying the shifted mix until the drift
    // monitor reports recovery (or we give up).
    bool first = true;
    for (int round = 0; round < 10; ++round) {
        rt.processTrace(shifted);
        row(first ? "shift injected" : "retraining");
        first = false;
        if (rt.stats().drift_recoveries > 0)
            break;
    }
    row("final");
    t.print(std::cout);

    const auto st = rt.stats();
    rt.stop();
    std::cout << "\nPre-shift windowed F1 (reference): "
              << TablePrinter::num(pre_shift_f1, 3) << "\n"
              << "Recovered windowed F1:             "
              << TablePrinter::num(st.smoothed_f1, 3) << " ("
              << TablePrinter::num(
                     pre_shift_f1 > 0
                         ? 100.0 * st.smoothed_f1 / pre_shift_f1
                         : 0.0,
                     1)
              << "% of pre-shift)\n"
              << "Drift triggers: " << st.drift_triggers
              << ", SGD updates: " << st.sgd_steps
              << ", models published: " << st.updates_published
              << ", per-replica applications: " << st.updates_applied
              << " (superseded versions coalesce at batch "
                 "boundaries)\n"
              << "Telemetry mirrored: " << st.mirrored
              << " samples, ring drops: " << st.ring_dropped << "\n";

    const bool ok = st.drift_triggers > 0 && st.drift_recoveries > 0;
    std::cout << (ok ? "\nDrift detected, retrained, and recovered "
                       "with zero reconfiguration downtime.\n"
                     : "\nWARNING: scenario did not recover.\n");
    return ok ? 0 : 1;
}
