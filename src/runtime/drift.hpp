/**
 * @file
 * Windowed drift detection over mirrored telemetry.
 *
 * The control plane scores the data plane's own verdicts against labeled
 * telemetry in fixed-size windows: each window closes into an F1 point
 * plus score-distribution statistics (util::RunningStat, reset per
 * window), and the best healthy window becomes the reference. A window
 * that falls below `trigger_ratio` of the reference latches the drifted
 * state — the trainer's cue to start streaming SGD — and the state clears
 * itself once a window recovers to `recover_ratio` of the reference,
 * which is exactly the "windowed F1 recovers to >= 95% of its pre-shift
 * value" criterion the online-learning scenario measures.
 */

#pragma once

#include <cstdint>

#include "util/metrics.hpp"
#include "util/stats.hpp"

namespace taurus::runtime {

/** Windowed quality metric the monitor tracks. */
enum class DriftMetric
{
    BinaryF1, ///< precision/recall F1 of the flag verdict (binary apps)
    Accuracy, ///< fraction of correct class verdicts (multi-class apps)
};

/** Drift-detection knobs. */
struct DriftConfig
{
    size_t window = 1024;        ///< labeled samples per window
    double trigger_ratio = 0.85; ///< drift when F1 < ratio * reference
    double recover_ratio = 0.95; ///< recovered when F1 >= ratio * ref
    size_t warmup_windows = 2;   ///< windows that only seed the reference
    /** Metric each window closes into. The "F1" gauges below carry
     *  whatever metric is configured here. */
    DriftMetric metric = DriftMetric::BinaryF1;
    /**
     * Exponential smoothing applied to the per-window F1 before any
     * trigger/recover decision. Raw windows on bursty traffic swing by
     * +-0.15 F1 (a window inside a DoS burst is easy, one inside a
     * benign lull with a lone R2L is hopeless); the EMA tracks the
     * sustained operating point instead of the luck of one window.
     */
    double ema_alpha = 0.25;
};

/** Scores (verdict, truth) pairs in windows and latches drift. */
class DriftMonitor
{
  public:
    explicit DriftMonitor(DriftConfig cfg = {});

    /** Account one labeled sample; may close a window. */
    void record(int8_t score, bool flagged, bool truth);

    /**
     * Generic form: `predicted` and `truth` are class labels
     * (SwitchDecision::class_id vs TracePacket::class_label). Under
     * BinaryF1 nonzero labels are the positive class; under Accuracy
     * the window scores predicted == truth.
     */
    void record(int8_t score, int32_t predicted, int32_t truth);

    /** Latched drift state (set on trigger, cleared on recovery). */
    bool drifted() const { return drifted_; }

    /** Manually clear the latch (e.g. after an operator-forced push). */
    void clearDrift() { drifted_ = false; }

    double lastWindowF1() const { return last_f1_; }
    /** EMA-smoothed windowed F1 (what triggers and recovery compare). */
    double smoothedF1() const { return smoothed_f1_; }
    double referenceF1() const { return reference_f1_; }
    uint64_t windowsClosed() const { return windows_; }
    uint64_t triggers() const { return triggers_; }
    uint64_t recoveries() const { return recoveries_; }

    /** Score statistics of the *current, still-open* window. */
    const util::RunningStat &scoreStat() const { return score_stat_; }

    /** Mean ML score of the last closed window. */
    double lastWindowScoreMean() const { return last_score_mean_; }

    /** Forget everything (new deployment). */
    void reset();

  private:
    void closeWindow();

    DriftConfig cfg_;
    util::ConfusionMatrix window_cm_;
    util::RunningStat score_stat_; ///< reset at every window boundary
    double last_f1_ = 0.0;
    double smoothed_f1_ = 0.0;
    double last_score_mean_ = 0.0;
    double reference_f1_ = 0.0;
    uint64_t windows_ = 0;
    uint64_t triggers_ = 0;
    uint64_t recoveries_ = 0;
    bool drifted_ = false;
};

} // namespace taurus::runtime
