#include "net/features.hpp"

#include <algorithm>
#include <array>
#include <cstring>

namespace taurus::net {

uint64_t
FlowKey::hash() const
{
    // FNV-1a over the packed tuple; the switch's hash action uses the
    // same function so software and MAT flow indices agree.
    std::array<uint8_t, 13> buf{};
    std::memcpy(buf.data() + 0, &src_ip, 4);
    std::memcpy(buf.data() + 4, &dst_ip, 4);
    std::memcpy(buf.data() + 8, &src_port, 2);
    std::memcpy(buf.data() + 10, &dst_port, 2);
    buf[12] = proto;

    uint64_t h = 0xcbf29ce484222325ull;
    for (uint8_t b : buf) {
        h ^= b;
        h *= 0x100000001b3ull;
    }
    return h;
}

int32_t
log2Bin(uint64_t v)
{
    int32_t bin = 0;
    uint64_t x = v + 1;
    while (x > 1 && bin < 31) {
        x >>= 1;
        ++bin;
    }
    return bin;
}

int32_t
protoCode(uint8_t proto)
{
    switch (proto) {
      case kProtoTcp:
        return 0;
      case kProtoUdp:
        return 1;
      case kProtoIcmp:
        return 2;
      default:
        return 3;
    }
}

const std::vector<ServicePort> &
knownServicePorts()
{
    static const std::vector<ServicePort> ports = {
        {80, 0},   {8080, 0}, {443, 0},  // web
        {53, 1},                         // dns
        {22, 2},   {23, 2},              // remote shell
        {25, 3},   {110, 3},  {143, 3},  // mail
        {20, 4},   {21, 4},              // ftp
        {137, 5},  {139, 5},  {445, 5},  // smb/netbios
        {554, 8},                        // rtsp (camera streams)
        {1883, 9}, {8883, 9},            // mqtt (IoT telemetry)
        {5683, 10},                      // coap (constrained devices)
        {123, 11},                       // ntp
    };
    return ports;
}

int32_t
serviceCode(uint16_t dst_port)
{
    for (const ServicePort &sp : knownServicePorts())
        if (sp.port == dst_port)
            return sp.code;
    return dst_port < 1024 ? kServicePrivileged : kServiceEphemeral;
}

uint64_t
flowDurationMs(const FlowStats &flow, double now_s)
{
    if (flow.first_seen_s < 0.0)
        return 0;
    const double d = (now_s - flow.first_seen_s) * 1e3;
    return d <= 0.0 ? 0 : static_cast<uint64_t>(d);
}

namespace {

/** SYN-failure ratio scaled to [0, 15] (the switch keeps it as counts). */
int32_t
synErrBin(const SrcStats &src)
{
    if (src.conns == 0)
        return 0;
    const double rate =
        static_cast<double>(src.syn_only) / static_cast<double>(src.conns);
    return static_cast<int32_t>(std::min(15.0, rate * 15.0 + 0.5));
}

} // namespace

nn::Vector
dnnFeatureVector(const FlowStats &flow, const SrcStats &src,
                 const TracePacket &pkt, double now_s)
{
    nn::Vector f(kDnnFeatureCount);
    f[0] = static_cast<float>(log2Bin(flowDurationMs(flow, now_s)));
    f[1] = static_cast<float>(protoCode(pkt.flow.proto));
    f[2] = static_cast<float>(log2Bin(flow.bytes));
    f[3] = static_cast<float>(log2Bin(flow.pkts));
    f[4] = static_cast<float>(std::min<uint32_t>(flow.urgent, 15));
    f[5] = static_cast<float>(log2Bin(src.conns));
    return f;
}

nn::Vector
svmFeatureVector(const FlowStats &flow, const SrcStats &src,
                 const TracePacket &pkt, double now_s)
{
    nn::Vector f(kSvmFeatureCount);
    const nn::Vector base = dnnFeatureVector(flow, src, pkt, now_s);
    std::copy(base.begin(), base.end(), f.begin());
    f[6] = static_cast<float>(synErrBin(src));
    f[7] = static_cast<float>(serviceCode(pkt.flow.dst_port));
    return f;
}

void
FlowTracker::observe(const TracePacket &pkt)
{
    now_s_ = pkt.time_s;
    cur_pkt_ = pkt;

    FlowStats &flow = flows_[pkt.flow];
    const bool new_flow = flow.first_seen_s < 0.0;
    if (new_flow)
        flow.first_seen_s = pkt.time_s;
    ++flow.pkts;
    flow.bytes += pkt.size_bytes;
    if (pkt.urg)
        ++flow.urgent;
    if (pkt.syn)
        ++flow.syn;

    SrcStats &src = sources_[pkt.flow.src_ip];
    if (pkt.time_s - src.window_start_s > kSrcWindowS) {
        src = SrcStats{};
        src.window_start_s = pkt.time_s;
    }
    if (new_flow) {
        ++src.conns;
        if (pkt.flow.dst_port != src.last_port) {
            ++src.dst_ports;
            src.last_port = pkt.flow.dst_port;
        }
    }
    // A SYN on a single-packet flow counts as a (so-far) failed handshake;
    // it is decremented when the flow progresses. This matches what a
    // register pair (syn_seen, progressed) computes in the MAT.
    if (pkt.syn && flow.pkts == 1)
        ++src.syn_only;
    else if (flow.pkts == 2 && flow.syn > 0 && src.syn_only > 0)
        --src.syn_only;

    cur_flow_ = flow;
    cur_src_ = src;
}

nn::Vector
FlowTracker::dnnFeatures() const
{
    return dnnFeatureVector(cur_flow_, cur_src_, cur_pkt_, now_s_);
}

nn::Vector
FlowTracker::svmFeatures() const
{
    return svmFeatureVector(cur_flow_, cur_src_, cur_pkt_, now_s_);
}

void
FlowTracker::clear()
{
    flows_.clear();
    sources_.clear();
    cur_flow_ = FlowStats{};
    cur_src_ = SrcStats{};
    cur_pkt_ = TracePacket{};
    now_s_ = 0.0;
}

} // namespace taurus::net
