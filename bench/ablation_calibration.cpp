/**
 * @file
 * Ablation: quantization calibration-set size. Post-training int8
 * quantization picks activation ranges from calibration data; too few
 * samples mis-estimate ranges and cost accuracy. Supports the Table 3
 * "minimal loss" claim by showing where it would break.
 */

#include <iostream>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "nn/quantized.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "Ablation: calibration-set size for post-training "
                 "quantization (anomaly DNN)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, 3000);

    TablePrinter t({"Calibration samples", "Quantized F1 x100",
                    "Delta vs float"});
    const double float_f1 = dnn.float_test.f1 * 100.0;
    for (size_t n : {1u, 4u, 16u, 64u, 256u, 1024u}) {
        std::vector<nn::Vector> cal;
        for (size_t i = 0; i < n && i < dnn.train.size(); ++i)
            cal.push_back(dnn.train.x[i]);
        const auto qm = nn::QuantizedMlp::fromFloat(dnn.model, cal);
        const auto m = models::scoreBinary(
            [&](const nn::Vector &x) { return qm.predict(x); },
            dnn.test);
        t.addRow({std::to_string(n),
                  TablePrinter::num(m.f1 * 100.0, 1),
                  TablePrinter::num(m.f1 * 100.0 - float_f1, 1)});
    }
    t.print(std::cout);

    std::cout << "\nFloat32 reference F1 x100: "
              << TablePrinter::num(float_f1, 1)
              << ". A few dozen representative samples suffice for "
                 "full-accuracy int8 deployment.\n";
    return 0;
}
