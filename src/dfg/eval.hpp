/**
 * @file
 * Reference integer executor for dataflow graphs.
 *
 * Defines the value semantics of every NodeKind; the hw cycle simulator is
 * required (by test) to produce bit-identical results, and model graphs are
 * required to match the nn::QuantizedMlp reference, giving a two-level
 * equivalence chain: nn reference == dfg graph == hw simulation.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dfg/graph.hpp"

namespace taurus::dfg {

/** Lane values during evaluation (int8 payloads stored sign-extended). */
struct LaneVec
{
    std::vector<int32_t> lanes;
    ValueType type = ValueType::Int8Vec;
};

/**
 * Evaluate the graph on one input vector per Input node (matched in
 * insertion order). Returns one LaneVec per Output node.
 */
std::vector<LaneVec> evaluate(const Graph &g,
                              const std::vector<std::vector<int8_t>> &inputs);

/** Convenience for single-input single-output graphs. */
std::vector<int8_t> evaluateSimple(const Graph &g,
                                   const std::vector<int8_t> &input);

/** Semantics of a single map function on one int8 lane. */
int32_t applyMapFn(MapFn fn, int32_t x, int32_t imm,
                   const fixed::Requantizer &rq);

} // namespace taurus::dfg
