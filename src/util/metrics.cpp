#include "util/metrics.hpp"

#include <sstream>

namespace taurus::util {

double
ConfusionMatrix::precision() const
{
    const uint64_t denom = tp_ + fp_;
    return denom == 0 ? 1.0 : static_cast<double>(tp_) / denom;
}

double
ConfusionMatrix::recall() const
{
    const uint64_t denom = tp_ + fn_;
    return denom == 0 ? 0.0 : static_cast<double>(tp_) / denom;
}

double
ConfusionMatrix::f1() const
{
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
ConfusionMatrix::accuracy() const
{
    const uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(tp_ + tn_) / t;
}

std::string
ConfusionMatrix::summary() const
{
    std::ostringstream os;
    os << "tp=" << tp_ << " fp=" << fp_ << " fn=" << fn_ << " tn=" << tn_
       << " precision=" << precision() << " recall=" << recall()
       << " f1=" << f1();
    return os.str();
}

} // namespace taurus::util
