#include "dfg/mapreduce.hpp"

#include <numeric>
#include <stdexcept>

namespace taurus::dfg::mr {

int
Value::totalWidth() const
{
    return std::accumulate(widths.begin(), widths.end(), 0);
}

Builder::Builder(std::string name)
{
    graph_.name = std::move(name);
}

Value
Builder::input(int width, const std::string &label)
{
    Value v;
    int remaining = width;
    while (remaining > 0) {
        const int w = std::min(remaining, kLanes);
        Node n;
        n.kind = NodeKind::Input;
        n.width = w;
        n.label = label;
        v.nodes.push_back(graph_.add(std::move(n)));
        v.widths.push_back(w);
        remaining -= w;
    }
    return v;
}

Value
Builder::gather(const std::vector<int> &scalars, const std::string &label)
{
    Value v;
    size_t i = 0;
    while (i < scalars.size()) {
        const size_t take =
            std::min<size_t>(kLanes, scalars.size() - i);
        if (take == 1) {
            v.nodes.push_back(scalars[i]);
            v.widths.push_back(1);
        } else {
            Node n;
            n.kind = NodeKind::Concat;
            n.inputs.assign(scalars.begin() + static_cast<long>(i),
                            scalars.begin() +
                                static_cast<long>(i + take));
            n.width = static_cast<int>(take);
            n.label = label;
            v.nodes.push_back(graph_.add(std::move(n)));
            v.widths.push_back(static_cast<int>(take));
        }
        i += take;
    }
    return v;
}

Value
Builder::map(const Value &x, MapFn fn, int32_t imm,
             const fixed::Requantizer &rq)
{
    return mapChain(x, {fn}, {imm}, rq);
}

Value
Builder::mapChain(const Value &x, const std::vector<MapFn> &fns,
                  const std::vector<int32_t> &imms,
                  const fixed::Requantizer &rq)
{
    if (fns.empty() || fns.size() > static_cast<size_t>(kStages))
        throw std::invalid_argument("map chain must use 1..kStages fns");
    Value out;
    for (size_t s = 0; s < x.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::MapChain;
        n.inputs = {x.nodes[s]};
        n.width = x.widths[s];
        n.fns = fns;
        n.imms = imms;
        n.requant = rq;
        out.nodes.push_back(graph_.add(std::move(n)));
        out.widths.push_back(x.widths[s]);
    }
    return out;
}

Value
Builder::mapReduce(const Value &x,
                   const std::vector<std::vector<int8_t>> &weights,
                   const std::vector<int32_t> &biases,
                   const fixed::Requantizer &rq, const std::string &label)
{
    if (weights.empty() || biases.size() != weights.size())
        throw std::invalid_argument("mapReduce: bad weights/biases");

    std::vector<int> rows;
    for (size_t r = 0; r < weights.size(); ++r) {
        const auto &w = weights[r];
        if (static_cast<int>(w.size()) != x.totalWidth())
            throw std::invalid_argument(
                "mapReduce: row width != input width");
        if (x.nodes.size() == 1) {
            Node n;
            n.kind = NodeKind::DotRow;
            n.inputs = {x.nodes[0]};
            n.width = 1;
            n.weights = w;
            n.bias = biases[r];
            n.requant = rq;
            n.label = label + "/r" + std::to_string(r);
            rows.push_back(graph_.add(std::move(n)));
        } else {
            // Legalize: one PartialDot per segment + CombineAdd.
            std::vector<int> partials;
            int offset = 0;
            for (size_t s = 0; s < x.nodes.size(); ++s) {
                Node p;
                p.kind = NodeKind::PartialDot;
                p.inputs = {x.nodes[s]};
                p.width = 1;
                p.weights.assign(w.begin() + offset,
                                 w.begin() + offset + x.widths[s]);
                p.label = label + "/r" + std::to_string(r) + "p" +
                          std::to_string(s);
                partials.push_back(graph_.add(std::move(p)));
                offset += x.widths[s];
            }
            Node c;
            c.kind = NodeKind::CombineAdd;
            c.inputs = partials;
            c.width = 1;
            c.bias = biases[r];
            c.requant = rq;
            c.label = label + "/r" + std::to_string(r) + "c";
            rows.push_back(graph_.add(std::move(c)));
        }
    }
    return gather(rows, label + "/gather");
}

Value
Builder::reduceAdd(const Value &partials, int32_t bias,
                   const fixed::Requantizer &rq)
{
    if (partials.nodes.size() != 1)
        throw std::invalid_argument("reduceAdd takes one segment");
    Node n;
    n.kind = NodeKind::CombineAdd;
    n.inputs = partials.nodes;
    n.width = 1;
    n.bias = bias;
    n.requant = rq;
    Value v;
    v.nodes = {graph_.add(std::move(n))};
    v.widths = {1};
    return v;
}

Value
Builder::lookup(const Value &x, const std::vector<int8_t> &lut)
{
    Value out;
    for (size_t s = 0; s < x.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::Lookup;
        n.inputs = {x.nodes[s]};
        n.width = x.widths[s];
        n.lut = lut;
        out.nodes.push_back(graph_.add(std::move(n)));
        out.widths.push_back(x.widths[s]);
    }
    return out;
}

Value
Builder::mul(const Value &a, const Value &b, const fixed::Requantizer &rq)
{
    if (a.widths != b.widths)
        throw std::invalid_argument("mul: shape mismatch");
    Value out;
    for (size_t s = 0; s < a.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::EltwiseMul;
        n.inputs = {a.nodes[s], b.nodes[s]};
        n.width = a.widths[s];
        n.requant = rq;
        out.nodes.push_back(graph_.add(std::move(n)));
        out.widths.push_back(a.widths[s]);
    }
    return out;
}

Value
Builder::add(const Value &a, const Value &b)
{
    if (a.widths != b.widths)
        throw std::invalid_argument("add: shape mismatch");
    Value out;
    for (size_t s = 0; s < a.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::EltwiseAdd;
        n.inputs = {a.nodes[s], b.nodes[s]};
        n.width = a.widths[s];
        out.nodes.push_back(graph_.add(std::move(n)));
        out.widths.push_back(a.widths[s]);
    }
    return out;
}

Value
Builder::squaredDist(const Value &x, const std::vector<int8_t> &point,
                     const fixed::Requantizer &rq)
{
    if (x.nodes.size() != 1 ||
        static_cast<int>(point.size()) != x.widths[0])
        throw std::invalid_argument("squaredDist: one-segment input");
    Node n;
    n.kind = NodeKind::SquaredDist;
    n.inputs = {x.nodes[0]};
    n.width = 1;
    n.weights = point;
    n.requant = rq;
    Value v;
    v.nodes = {graph_.add(std::move(n))};
    v.widths = {1};
    return v;
}

Value
Builder::argMin(const Value &x)
{
    if (x.nodes.size() != 1)
        throw std::invalid_argument("argMin: one-segment input");
    Node n;
    n.kind = NodeKind::ArgMin;
    n.inputs = {x.nodes[0]};
    n.width = 1;
    Value v;
    v.nodes = {graph_.add(std::move(n))};
    v.widths = {1};
    return v;
}

Value
Builder::gatherScalars(const std::vector<Value> &scalars)
{
    std::vector<int> ids;
    for (const Value &s : scalars) {
        if (s.nodes.size() != 1 || s.widths[0] != 1)
            throw std::invalid_argument(
                "gatherScalars takes scalar values");
        ids.push_back(s.nodes[0]);
    }
    if (ids.empty() || ids.size() > static_cast<size_t>(kLanes))
        throw std::invalid_argument("gatherScalars: 1..kLanes values");
    return gather(ids, "gather");
}

void
Builder::output(const Value &v, const std::string &label)
{
    for (size_t s = 0; s < v.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::Output;
        n.inputs = {v.nodes[s]};
        n.width = v.widths[s];
        n.label = label + std::to_string(s);
        graph_.add(std::move(n));
    }
}

void
Builder::setLoop(int trip, int unroll)
{
    graph_.loop = LoopInfo{trip, unroll};
}

Graph
Builder::build()
{
    if (built_)
        throw std::logic_error("build() called twice");
    built_ = true;
    const std::string err = graph_.validate();
    if (!err.empty())
        throw std::invalid_argument("mapreduce program invalid: " + err);
    return std::move(graph_);
}

} // namespace taurus::dfg::mr
