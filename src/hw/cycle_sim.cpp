#include "hw/cycle_sim.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/stats.hpp"

namespace taurus::hw {

CycleSim::CycleSim(const GridProgram &program) : program_(program)
{
    const std::string err = program.validate();
    if (!err.empty())
        throw std::invalid_argument("invalid program: " + err);
    schedule_ = compileSchedule(program);
}

int
CycleSim::nodeLatency(const dfg::Node &n, const dfg::Graph &g,
                      const GridSpec &spec, const TimingSpec &timing)
{
    using dfg::NodeKind;
    auto inputWidth = [&]() {
        return n.inputs.empty() ? n.width : g.node(n.inputs[0]).width;
    };
    switch (n.kind) {
      case NodeKind::DotRow:
      case NodeKind::PartialDot:
      case NodeKind::SquaredDist:
        // One map cycle plus a log2-depth tree reduction.
        return 1 + std::max(1, util::log2Ceil(
                                   static_cast<uint64_t>(inputWidth())));
      case NodeKind::CombineAdd:
        return 1 + std::max(1, util::log2Ceil(n.inputs.size()));
      case NodeKind::ArgMin:
        return 1 + std::max(1, util::log2Ceil(
                                   static_cast<uint64_t>(inputWidth())));
      case NodeKind::MapChain:
      case NodeKind::EltwiseMul:
      case NodeKind::EltwiseAdd:
        // Pure map ops traverse the full CU pipeline.
        return spec.stages;
      case NodeKind::Lookup:
        return timing.mu_lookup_cycles;
      case NodeKind::Concat:
        // Gathering n scalars produced on n different units is a
        // log-depth merge through the interconnect: each tree level is
        // one synchronized hop (the "roughly five cycles per data
        // movement" of Section 5.1.3), not a free register write.
        return n.inputs.size() <= 1
                   ? timing.concat_cycles
                   : (timing.route_base + 1) *
                         util::log2Ceil(n.inputs.size());
      case NodeKind::Input:
      case NodeKind::Output:
        return 0;
    }
    return 0;
}

Schedule
CycleSim::compileSchedule(const GridProgram &prog)
{
    const auto &g = prog.graph;
    Schedule sched;
    sched.start.assign(g.nodes().size(), 0);
    sched.finish.assign(g.nodes().size(), 0);

    // Longest-path schedule with optional unit serialization. Unit
    // reservations live in a flat vector keyed by grid coordinate
    // (row * cols + col) rather than an ordered map: placement
    // coordinates are dense and bounded by the grid.
    auto coordKey = [&](const Coord &c) {
        return static_cast<size_t>(c.row) *
                   static_cast<size_t>(prog.spec.cols) +
               static_cast<size_t>(c.col);
    };
    std::vector<int> unit_free;
    if (prog.serialize_sharing)
        unit_free.assign(static_cast<size_t>(prog.spec.rows) *
                             static_cast<size_t>(prog.spec.cols),
                         0);

    for (int id : g.topoOrder()) {
        const auto &n = g.node(id);
        const Coord here = prog.place[static_cast<size_t>(id)];

        if (n.kind == dfg::NodeKind::Input) {
            sched.start[static_cast<size_t>(id)] = 0;
            sched.finish[static_cast<size_t>(id)] =
                prog.timing.ingress_cycles;
            continue;
        }

        int ready = 0;
        for (int pred : n.inputs) {
            const Coord from = prog.place[static_cast<size_t>(pred)];
            // The PHV interface is a bus along the grid edge (Figure 7):
            // ingress/egress taps are adjacent to their units rather
            // than routed across the fabric.
            const bool io_edge =
                g.node(pred).kind == dfg::NodeKind::Input ||
                n.kind == dfg::NodeKind::Output;
            const int hops = io_edge ? 1 : manhattan(from, here);
            sched.route_hops += hops;
            const int arrive = sched.finish[static_cast<size_t>(pred)] +
                               prog.timing.route_base + hops;
            ready = std::max(ready, arrive);
        }

        if (n.kind == dfg::NodeKind::Output) {
            sched.start[static_cast<size_t>(id)] = ready;
            sched.finish[static_cast<size_t>(id)] =
                ready + prog.timing.egress_cycles;
            continue;
        }

        const int lat =
            nodeLatency(n, g, prog.spec, prog.timing);
        int start = ready;
        if (prog.serialize_sharing && dfg::Graph::isCuOp(n)) {
            int &free_at = unit_free[coordKey(here)];
            start = std::max(start, free_at);
            free_at = start + lat;
        }
        sched.start[static_cast<size_t>(id)] = start;
        sched.finish[static_cast<size_t>(id)] = start + lat;
    }

    int latency = 0;
    for (int id : g.outputIds())
        latency =
            std::max(latency, sched.finish[static_cast<size_t>(id)]);

    // Initiation interval.
    int ii = prog.ii_multiplier;
    if (g.loop)
        ii = std::max(ii, g.loop->iiMultiplier());
    if (prog.serialize_sharing) {
        std::vector<int> demand(static_cast<size_t>(prog.spec.rows) *
                                    static_cast<size_t>(prog.spec.cols),
                                0);
        for (const auto &n : g.nodes())
            if (dfg::Graph::isCuOp(n)) {
                const Coord c = prog.place[static_cast<size_t>(n.id)];
                demand[coordKey(c)] +=
                    nodeLatency(n, g, prog.spec, prog.timing);
            }
        for (const int d : demand)
            ii = std::max(ii, d);
    }

    // Pipelined iterations: the last of II iterations starts II-1 cycles
    // after the first.
    if (ii > 1)
        latency += ii - 1;

    sched.latency_cycles = latency;
    sched.latency_ns = latency / prog.spec.clock_ghz;
    sched.ii_cycles = ii;
    sched.gpktps = prog.spec.clock_ghz / ii;
    return sched;
}

SimResult
CycleSim::run(const std::vector<std::vector<int8_t>> &inputs) const
{
    SimResult res;
    // Functional evaluation (bit-exact dfg semantics); timing comes from
    // the schedule compiled at construction.
    res.outputs = dfg::evaluate(program_.graph, inputs);
    res.latency_cycles = schedule_.latency_cycles;
    res.latency_ns = schedule_.latency_ns;
    res.ii_cycles = schedule_.ii_cycles;
    res.gpktps = schedule_.gpktps;
    res.route_hops = schedule_.route_hops;
    return res;
}

void
CycleSim::runInto(const std::vector<std::vector<int8_t>> &inputs,
                  dfg::EvalScratch &scratch, SimResult &res) const
{
    const auto &outputs =
        dfg::evaluateInto(program_.graph, inputs, scratch);
    res.outputs.resize(outputs.size());
    for (size_t i = 0; i < outputs.size(); ++i) {
        res.outputs[i].lanes.assign(outputs[i].lanes.begin(),
                                    outputs[i].lanes.end());
        res.outputs[i].type = outputs[i].type;
    }
    res.latency_cycles = schedule_.latency_cycles;
    res.latency_ns = schedule_.latency_ns;
    res.ii_cycles = schedule_.ii_cycles;
    res.gpktps = schedule_.gpktps;
    res.route_hops = schedule_.route_hops;
}

} // namespace taurus::hw
