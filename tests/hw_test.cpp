#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/lower.hpp"
#include "dfg/eval.hpp"
#include "hw/cycle_sim.hpp"
#include "hw/grid.hpp"
#include "models/microbench.hpp"
#include "nn/quantized.hpp"
#include "util/rng.hpp"

using namespace taurus;

TEST(GridSpec, FinalConfigurationCounts)
{
    hw::GridSpec spec;
    EXPECT_EQ(spec.unitCount(), 120);
    // 3:1 CU:MU interleave over a 12x10 grid.
    EXPECT_EQ(spec.cuCount(), 90);
    EXPECT_EQ(spec.muCount(), 30);
    EXPECT_EQ(spec.cuCount() + spec.muCount(), spec.unitCount());
    // MU capacity: 16 banks x 1024 x 8 bits = 16 KiB.
    EXPECT_EQ(spec.muCapacityBytes(), 16u * 1024u);
}

TEST(GridSpec, UnitsOfKindPartitionTheGrid)
{
    hw::GridSpec spec;
    const auto cus = spec.unitsOfKind(hw::UnitKind::Cu);
    const auto mus = spec.unitsOfKind(hw::UnitKind::Mu);
    EXPECT_EQ(cus.size(), static_cast<size_t>(spec.cuCount()));
    EXPECT_EQ(mus.size(), static_cast<size_t>(spec.muCount()));
    for (const auto &c : cus)
        EXPECT_EQ(spec.kindAt(c), hw::UnitKind::Cu);
    for (const auto &m : mus)
        EXPECT_EQ(spec.kindAt(m), hw::UnitKind::Mu);
}

TEST(GridSpec, Manhattan)
{
    EXPECT_EQ(hw::manhattan({0, 0}, {3, 4}), 7);
    EXPECT_EQ(hw::manhattan({2, 2}, {2, 2}), 0);
    EXPECT_EQ(hw::manhattan({5, -1}, {5, 10}), 11);
}

TEST(CycleSim, InnerProductLandsAtPaperLatency)
{
    util::Rng rng(3);
    const auto g = models::buildInnerProduct(rng);
    const auto prog = compiler::compile(g);
    hw::CycleSim sim(prog);
    std::vector<int8_t> input(16, 1);
    const auto res = sim.run({input});
    // Table 6: a 16-element inner product takes 23 ns at 1 GHz.
    EXPECT_EQ(res.latency_cycles, 23);
    EXPECT_EQ(res.ii_cycles, 1);
    EXPECT_DOUBLE_EQ(res.gpktps, 1.0);
}

TEST(CycleSim, ReluLandsAtPaperLatency)
{
    util::Rng rng(3);
    const auto g = models::buildMicrobench("ReLU", rng);
    const auto prog = compiler::compile(g);
    hw::CycleSim sim(prog);
    const auto res = sim.run({std::vector<int8_t>(16, -5)});
    EXPECT_EQ(res.latency_cycles, 22); // Table 6
    for (int32_t lane : res.outputs.at(0).lanes)
        EXPECT_EQ(lane, 0);
}

TEST(CycleSim, BitExactWithReferenceEvaluator)
{
    util::Rng rng(11);
    for (const std::string &name : models::microbenchNames()) {
        const auto g = models::buildMicrobench(name, rng);
        const auto prog = compiler::compile(g);
        hw::CycleSim sim(prog);

        std::vector<std::vector<int8_t>> inputs;
        for (int id : g.inputIds()) {
            std::vector<int8_t> v(
                static_cast<size_t>(g.node(id).width));
            for (auto &x : v)
                x = static_cast<int8_t>(rng.uniformInt(-128, 127));
            inputs.push_back(std::move(v));
        }
        const auto expect = dfg::evaluate(g, inputs);
        const auto got = sim.run(inputs).outputs;
        ASSERT_EQ(expect.size(), got.size()) << name;
        for (size_t i = 0; i < expect.size(); ++i)
            EXPECT_EQ(expect[i].lanes, got[i].lanes) << name;
    }
}

TEST(CycleSim, LoopMetadataMultipliesIi)
{
    util::Rng rng(5);
    auto g = models::buildInnerProduct(rng);
    g.loop = dfg::LoopInfo{8, 2}; // trip 8, unrolled 2x
    const auto prog = compiler::compile(g);
    hw::CycleSim sim(prog);
    const auto res = sim.run({std::vector<int8_t>(16, 1)});
    EXPECT_EQ(res.ii_cycles, 4);
    EXPECT_DOUBLE_EQ(res.gpktps, 0.25);
}

TEST(GridProgram, ValidateAcceptsCompiledPrograms)
{
    util::Rng rng(9);
    for (const std::string &name : models::microbenchNames()) {
        const auto prog =
            compiler::compile(models::buildMicrobench(name, rng));
        EXPECT_EQ(prog.validate(), "") << name;
    }
}

TEST(GridProgram, UpdateWeightsSwapsConstantsInPlace)
{
    util::Rng rng(13);
    const auto g1 = models::buildInnerProduct(rng);
    auto prog = compiler::compile(g1);
    hw::CycleSim sim(prog);

    // A structurally identical graph with different weights.
    auto g2 = g1;
    for (int id = 0; id < static_cast<int>(g2.nodes().size()); ++id) {
        auto &n = g2.node(id);
        for (auto &w : n.weights)
            w = static_cast<int8_t>(-w);
    }

    std::vector<int8_t> input(16);
    for (auto &v : input)
        v = static_cast<int8_t>(rng.uniformInt(-50, 50));

    const auto before = sim.run({input}).outputs.at(0).lanes;
    prog.updateWeights(g2);
    const auto after = sim.run({input}).outputs.at(0).lanes;
    EXPECT_EQ(after, dfg::evaluate(g2, {input}).at(0).lanes);
    // Flipping weights flips the (pre-activation) result.
    EXPECT_NE(before, after);
}

TEST(GridProgram, UpdateWeightsRejectsStructuralChange)
{
    util::Rng rng(17);
    auto prog = compiler::compile(models::buildInnerProduct(rng));
    const auto other = models::buildMicrobench("ReLU", rng);
    EXPECT_THROW(prog.updateWeights(other), std::invalid_argument);
}

TEST(CycleSim, LatencyScalesWithChainDepth)
{
    // Deeper map chains must not be faster than shallow ones.
    util::Rng rng(23);
    const auto relu = compiler::compile(models::buildMicrobench(
        "ReLU", rng));
    const auto tanh_exp = compiler::compile(models::buildMicrobench(
        "TanhExp", rng));
    hw::CycleSim s1(relu), s2(tanh_exp);
    const std::vector<int8_t> in(16, 3);
    EXPECT_LT(s1.run({in}).latency_cycles, s2.run({in}).latency_cycles);
}

TEST(CycleSim, MlpGraphMatchesQuantizedReference)
{
    // The full equivalence chain: nn reference == dfg graph == hw sim.
    util::Rng rng(29);
    nn::Dataset data;
    for (int i = 0; i < 400; ++i) {
        nn::Vector x(6);
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian(0, 1));
        data.add(std::move(x), i % 2);
    }
    nn::Mlp mlp({6, 12, 6, 3, 1}, nn::Activation::Relu,
                nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig tc;
    tc.epochs = 3;
    mlp.train(data, tc, rng);
    const auto qm = nn::QuantizedMlp::fromFloat(mlp, data.x);
    const auto graph = compiler::lowerMlp(qm);
    const auto prog = compiler::compile(graph);
    hw::CycleSim sim(prog);

    for (int trial = 0; trial < 50; ++trial) {
        nn::Vector x(6);
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian(0, 1));
        const auto q_in = qm.quantizeInput(x);
        const auto want = qm.forwardInt(q_in);
        const auto res = sim.run({q_in});
        ASSERT_EQ(res.outputs.size(), 1u);
        ASSERT_EQ(res.outputs[0].lanes.size(), want.size());
        for (size_t i = 0; i < want.size(); ++i)
            EXPECT_EQ(res.outputs[0].lanes[i], want[i]);
    }
}

/** The DNN must compile and simulate identically on any big-enough
 *  grid geometry — placement must not change values. */
class GridGeometryTest
    : public ::testing::TestWithParam<std::pair<int, int>>
{
};

TEST_P(GridGeometryTest, PlacementPreservesValues)
{
    const auto [rows, cols] = GetParam();
    util::Rng rng(123);
    nn::Dataset data;
    for (int i = 0; i < 200; ++i) {
        nn::Vector x(6);
        for (auto &v : x)
            v = static_cast<float>(rng.gaussian(i % 2 ? 1 : -1, 1.0));
        data.add(std::move(x), i % 2);
    }
    nn::Mlp mlp({6, 12, 6, 3, 1}, nn::Activation::Relu,
                nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig tc;
    tc.epochs = 2;
    mlp.train(data, tc, rng);
    const auto qm = nn::QuantizedMlp::fromFloat(mlp, data.x);
    const auto g = compiler::lowerMlp(qm);

    compiler::Options opts;
    opts.spec.rows = rows;
    opts.spec.cols = cols;
    const auto prog = compiler::compile(g, opts);
    ASSERT_EQ(prog.validate(), "");
    hw::CycleSim sim(prog);
    for (int t = 0; t < 20; ++t) {
        std::vector<int8_t> q(6);
        for (auto &v : q)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        EXPECT_EQ(sim.run({q}).outputs.at(0).lanes.at(0),
                  qm.forwardInt(q).at(0));
    }
}

INSTANTIATE_TEST_SUITE_P(Geometries, GridGeometryTest,
                         ::testing::Values(std::make_pair(12, 10),
                                           std::make_pair(10, 8),
                                           std::make_pair(16, 12),
                                           std::make_pair(8, 14)));
