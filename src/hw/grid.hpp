/**
 * @file
 * The MapReduce block's physical grid: compute units (CUs) and memory
 * units (MUs) interleaved in a checkerboard pattern and joined by a static,
 * pipelined interconnect (paper Section 4, Figure 7).
 *
 * The final Taurus ASIC configuration is a 12x10 grid with a 3:1 CU:MU
 * ratio (Section 5.1.1), 16 lanes x 4 stages per CU, and 16 banks x 1024
 * 8-bit entries per MU.
 */

#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace taurus::hw {

/** Kind of unit at a grid position. */
enum class UnitKind
{
    Cu,
    Mu,
};

/** Grid coordinates; ingress/egress ports sit just outside the grid. */
struct Coord
{
    int row = 0;
    int col = 0;

    bool operator==(const Coord &o) const
    {
        return row == o.row && col == o.col;
    }
};

/** Manhattan distance between two coordinates. */
int manhattan(const Coord &a, const Coord &b);

/** Static parameters of the MapReduce block. */
struct GridSpec
{
    int rows = 12;
    int cols = 10;
    int cu_per_mu = 3;        ///< 3:1 CU:MU interleave
    int lanes = 16;           ///< SIMD lanes per CU
    int stages = 4;           ///< compute stages per CU
    int mu_banks = 16;        ///< SRAM banks per MU
    int mu_entries = 1024;    ///< entries per bank
    int mu_width_bits = 8;    ///< entry width
    double clock_ghz = 1.0;   ///< line-rate clock (1 GPkt/s)

    int unitCount() const { return rows * cols; }
    int cuCount() const;
    int muCount() const;
    size_t muCapacityBytes() const
    {
        return static_cast<size_t>(mu_banks) * mu_entries * mu_width_bits /
               8;
    }

    /** Unit kind at a coordinate (checkerboard with 3:1 interleave). */
    UnitKind kindAt(const Coord &c) const;

    /** All coordinates of the given kind, in row-major order. */
    std::vector<Coord> unitsOfKind(UnitKind kind) const;

    /** PHV ingress port position (left edge, middle row). */
    Coord ingress() const { return {rows / 2, -1}; }
    /** PHV egress port position (right edge, middle row). */
    Coord egress() const { return {rows / 2, cols}; }
};

/** Interconnect and interface timing constants (see DESIGN.md Section 4). */
struct TimingSpec
{
    /**
     * Per-movement synchronization cost (FIFO handshake) added to the
     * hop count of every producer->consumer transfer; an adjacent-unit
     * move costs route_base + 1 = 5 cycles, the paper's "roughly five
     * cycles for each data movement".
     */
    int route_base = 4;
    /** PHV-to-grid staging FIFO (Figure 7), each direction. */
    int ingress_cycles = 4;
    int egress_cycles = 4;
    /** MU SRAM lookup latency. */
    int mu_lookup_cycles = 2;
    /** Gather synchronization at a concat point. */
    int concat_cycles = 1;
};

} // namespace taurus::hw
