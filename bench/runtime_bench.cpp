/**
 * @file
 * Online-learning runtime benchmark (paper Section 5.2.3 made live):
 *
 *  1. Steady-state throughput of a SwitchFarm driven by OnlineRuntime
 *     with training disabled vs. enabled (train_always: SGD runs on
 *     every mirrored minibatch, updates hot-swap continuously).
 *     Mirroring is a sampled wait-free ring push and training runs on
 *     its own thread, so the enabled number must stay within ~10% of
 *     the disabled one — the train-and-push loop never blocks the
 *     per-packet path.
 *
 *  2. Time-to-recover after an injected distribution shift
 *     (net::shiftedAttackMix), run in the deterministic synchronous
 *     mode: packets until the drift monitor triggers, packets until
 *     windowed F1 recovers to >= 95% of its pre-shift reference, and
 *     the F1 trajectory (pre / trough / recovered).
 */

#include "harness.hpp"

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "runtime/runtime.hpp"
#include "taurus/farm.hpp"
#include "util/table.hpp"

TAURUS_BENCH(runtime_bench, "Online runtime",
             "live training throughput overhead + drift recovery time")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Online-learning runtime: telemetry mirroring -> trainer -> "
          "ModelStore -> farm\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(3000, 800));

    net::KddConfig base;
    base.connections = ctx.size(12000, 2500);
    base.trace_duration_s = 1.0;
    net::KddGenerator gen_a(base, 42);
    const auto steady = net::trimTrace(
        gen_a.expandToPackets(gen_a.sampleConnections()),
        base.trace_duration_s);
    net::KddGenerator gen_b(net::shiftedAttackMix(base), 43);
    const auto shifted = net::trimTrace(
        gen_b.expandToPackets(gen_b.sampleConnections()),
        base.trace_duration_s);
    ctx.metric("steady_trace_pkts", steady.size());
    ctx.metric("shifted_trace_pkts", shifted.size());

    // ---- 1. Steady-state throughput, training off vs on -------------
    const size_t workers = 2;
    const size_t reps = ctx.size(6, 2);
    std::vector<core::SwitchDecision> decisions(steady.size());
    double off_pps = 0.0, on_pps = 0.0;
    for (const bool training : {false, true}) {
        core::SwitchFarm farm({}, workers);
        farm.installAnomalyModel(dnn);
        runtime::RuntimeConfig rc;
        rc.batch_pkts = 1024;
        rc.sampling_rate = training ? 0.02 : 0.0;
        rc.train.seed = 7;
        // The enabled arm streams SGD on every minibatch (not just on
        // drift), so the measured overhead covers the whole loop:
        // mirroring, draining, training, and hot-swapping — throttled
        // only by the install delay between weight pushes.
        rc.train_always = training;
        rc.train.batch = 128;
        rc.train.epochs = 1;
        runtime::OnlineRuntime rt(farm, dnn, rc);
        rt.start();
        // Warm one pass so both sides measure steady state.
        rt.processTrace(
            util::Span<const net::TracePacket>(steady.data(),
                                               steady.size()),
            util::Span<core::SwitchDecision>(decisions.data(),
                                             decisions.size()));
        const bench::Timer timer;
        for (size_t r = 0; r < reps; ++r)
            rt.processTrace(
                util::Span<const net::TracePacket>(steady.data(),
                                                   steady.size()),
                util::Span<core::SwitchDecision>(decisions.data(),
                                                 decisions.size()));
        const double sec = timer.elapsedSec();
        const double pps =
            static_cast<double>(reps * steady.size()) / sec;
        (training ? on_pps : off_pps) = pps;
        const auto st = rt.stats();
        rt.stop();
        ctx.metric(training ? "train_on_pkts_per_sec"
                            : "train_off_pkts_per_sec",
                   pps);
        if (training) {
            ctx.metric("steady_mirrored", st.mirrored);
            ctx.metric("steady_ring_dropped", st.ring_dropped);
            ctx.metric("steady_sgd_steps", st.sgd_steps);
            ctx.metric("steady_updates_applied", st.updates_applied);
        }
    }
    const double overhead_pct =
        off_pps > 0.0 ? (off_pps - on_pps) / off_pps * 100.0 : 0.0;
    ctx.metric("train_overhead_pct", overhead_pct);

    TablePrinter tput({"Mode", "Packets/s", "Overhead %"});
    tput.addRow({"training off", TablePrinter::num(off_pps, 0), "-"});
    tput.addRow({"training on", TablePrinter::num(on_pps, 0),
                 TablePrinter::num(overhead_pct, 2)});
    tput.print(os);

    // ---- 2. Drift recovery (deterministic synchronous mode) ---------
    core::SwitchFarm farm({}, workers);
    farm.installAnomalyModel(dnn);
    runtime::RuntimeConfig rc;
    rc.synchronous = true;
    rc.sampling_rate = 1.0;
    rc.batch_pkts = 512;
    rc.train.batch = 256;
    rc.train.epochs = 2;
    rc.train.learning_rate = 0.05f;
    rc.train.seed = 5;
    rc.drift.window = ctx.smoke() ? 512 : 2048;
    rc.drift.warmup_windows = 2;
    runtime::OnlineRuntime rt(farm, dnn, rc);
    rt.start();

    rt.processTrace(steady);
    const auto pre = rt.stats();
    const double pre_shift_f1 = pre.reference_f1;

    // Feed the shifted mix in chunks, tracking trigger/recovery points
    // at chunk granularity.
    const size_t chunk = std::max<size_t>(shifted.size() / 4, 1);
    uint64_t pkts_to_trigger = 0, pkts_to_recover = 0;
    double trough_f1 = pre.smoothed_f1;
    uint64_t shift_pkts = 0;
    const size_t max_rounds = 10;
    for (size_t round = 0;
         round < max_rounds && rt.stats().drift_recoveries == 0;
         ++round) {
        for (size_t at = 0; at < shifted.size(); at += chunk) {
            const size_t n = std::min(chunk, shifted.size() - at);
            std::vector<core::SwitchDecision> out(n);
            rt.processTrace(
                util::Span<const net::TracePacket>(shifted.data() + at,
                                                   n),
                util::Span<core::SwitchDecision>(out.data(), n));
            shift_pkts += n;
            const auto st = rt.stats();
            trough_f1 = std::min(trough_f1, st.smoothed_f1);
            if (st.drift_triggers > 0 && pkts_to_trigger == 0)
                pkts_to_trigger = shift_pkts;
            if (st.drift_recoveries > 0) {
                pkts_to_recover = shift_pkts;
                break;
            }
        }
    }
    const auto post = rt.stats();
    rt.stop();

    const bool recovered = post.drift_recoveries > 0;
    ctx.metric("pre_shift_f1", pre_shift_f1);
    ctx.metric("trough_f1", trough_f1);
    ctx.metric("recovered_f1", post.smoothed_f1);
    ctx.metric("recovery_ratio", pre_shift_f1 > 0.0
                                     ? post.smoothed_f1 / pre_shift_f1
                                     : 0.0);
    ctx.metric("recovered", recovered ? 1 : 0);
    ctx.metric("pkts_to_trigger", pkts_to_trigger);
    ctx.metric("pkts_to_recover", pkts_to_recover);
    ctx.metric("drift_triggers", post.drift_triggers);
    ctx.metric("retrain_sgd_steps", post.sgd_steps);
    ctx.metric("updates_published", post.updates_published);
    ctx.metric("updates_applied", post.updates_applied);

    os << "\nDrift recovery (synchronous, seeded)\n";
    TablePrinter rec({"Metric", "Value"});
    rec.addRow({"pre-shift F1 (ref)", TablePrinter::num(pre_shift_f1, 3)});
    rec.addRow({"trough F1", TablePrinter::num(trough_f1, 3)});
    rec.addRow({"recovered F1", TablePrinter::num(post.smoothed_f1, 3)});
    rec.addRow({"packets to trigger",
                std::to_string(pkts_to_trigger)});
    rec.addRow({"packets to recover",
                std::to_string(pkts_to_recover)});
    rec.addRow({"SGD updates pushed",
                std::to_string(post.updates_published)});
    rec.print(os);
}
