/**
 * @file
 * Count-Min Sketch flow-size estimation on the PISA substrate
 * (Section 3.3.2 lists CMS among the applications MapReduce/MATs can
 * host). Built from the library's MAT primitives: hash actions and
 * stateful register arrays, one row per stage.
 */

#include <algorithm>
#include <iostream>

#include "net/kdd.hpp"
#include "pisa/mat.hpp"
#include "pisa/packet.hpp"
#include "pisa/parser.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using namespace taurus::pisa;
    using util::TablePrinter;

    std::cout << "=== Count-Min Sketch on MAT registers ===\n\n";

    constexpr int kRows = 3;
    constexpr uint32_t kCols = 4096;

    // One MAT stage per CMS row: hash the 5-tuple with a per-row salt
    // (xor into the hash input via Tmp fields), then RegAdd the packet
    // into that row's counters.
    RegisterFile regs;
    MatPipeline pipe;
    int row_arrays[kRows];
    for (int r = 0; r < kRows; ++r) {
        row_arrays[r] = regs.addArray("cms_row" + std::to_string(r),
                                      kCols);
        MatStage st("cms" + std::to_string(r), MatchKind::Exact,
                    {Field::EthType});
        Action count;
        count.name = "count";
        count.instrs = {
            // Salt the flow hash by perturbing a scratch copy of the
            // source port (distinct hash functions per row).
            {ActionOp::Set, Field::Tmp0, Src::FieldSrc, Field::L4Sport,
             0, 0, -1, Field::Tmp0},
            {ActionOp::HashFlow, Field::FlowHash, Src::Imm, Field::Tmp0,
             kCols, 0, -1, Field::Tmp0},
            {ActionOp::Xor, Field::FlowHash, Src::Imm, Field::Tmp0,
             static_cast<uint32_t>(r) * 0x9e37u, 0, -1, Field::Tmp0},
            {ActionOp::And, Field::FlowHash, Src::Imm, Field::Tmp0,
             kCols - 1, 0, -1, Field::Tmp0},
            {ActionOp::RegAdd, Field::Tmp1, Src::Imm, Field::Tmp0, 1, 0,
             row_arrays[r], Field::FlowHash},
            // Running min across rows lands in Tmp2.
            {ActionOp::Min, Field::Tmp2, Src::FieldSrc, Field::Tmp1, 0,
             0, -1, Field::Tmp0},
        };
        const int a = st.addAction(std::move(count));
        st.addEntry({{kEtherTypeIpv4}, {}, 0, 0, a, {}});
        pipe.addStage(std::move(st));
    }
    if (const auto err = pipe.validate(); !err.empty()) {
        std::cerr << "pipeline invalid: " << err << "\n";
        return 1;
    }

    // Drive a KDD trace through the sketch and track exact counts.
    net::KddConfig cfg;
    cfg.connections = 8000;
    net::KddGenerator gen(cfg, 13);
    const auto trace = gen.expandToPackets(gen.sampleConnections());
    const auto parser = Parser::standard();

    std::unordered_map<uint64_t, uint32_t> exact;
    std::unordered_map<uint64_t, uint32_t> estimate;
    for (const auto &tp : trace) {
        Phv phv = parser.parse(fromTracePacket(tp));
        phv.set(Field::Tmp2, 0xffffffffu); // min identity
        pipe.apply(phv, regs);
        const uint64_t key = tp.flow.hash();
        ++exact[key];
        estimate[key] = phv.get(Field::Tmp2); // CMS read-after-update
    }

    // Score estimation error over the heaviest flows.
    std::vector<std::pair<uint32_t, uint64_t>> heavy;
    for (const auto &[key, count] : exact)
        heavy.emplace_back(count, key);
    std::sort(heavy.rbegin(), heavy.rend());

    TablePrinter t({"Flow rank", "Exact", "CMS estimate", "Error %"});
    double total_rel_err = 0.0;
    int scored = 0;
    for (size_t i = 0; i < heavy.size() && i < 8; ++i) {
        const auto [count, key] = heavy[i];
        const uint32_t est = estimate[key];
        const double err = 100.0 * (double(est) - count) / count;
        total_rel_err += err;
        ++scored;
        t.addRow({std::to_string(i + 1), std::to_string(count),
                  std::to_string(est), TablePrinter::num(err, 2)});
    }
    t.print(std::cout);

    std::cout << "\n" << trace.size() << " packets, " << exact.size()
              << " flows, " << kRows << "x" << kCols
              << " counters; CMS never underestimates, and heavy flows "
                 "see mean overestimate "
              << TablePrinter::num(total_rel_err / scored, 2) << "%.\n";
    return 0;
}
