/**
 * @file
 * PIFO (push-in-first-out) packet scheduler [Sivaraman et al.,
 * SIGCOMM'16], the abstraction Taurus's postprocessing connects
 * inference to (Section 3.2: "postprocessing MATs connect inference to
 * scheduling, which uses abstractions like PIFO").
 *
 * A PIFO admits packets with an arbitrary rank and always dequeues the
 * minimum-rank packet; FIFO, strict priority, and deadline policies are
 * all rank functions.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "pisa/packet.hpp"
#include "pisa/phv.hpp"

namespace taurus::pisa {

/** Built-in rank policies. */
enum class SchedPolicy
{
    Fifo,           ///< rank = arrival order
    StrictPriority, ///< rank = Priority field (0 served first)
    AnomalyLast,    ///< flagged packets are deprioritized, not dropped
};

/** An enqueued element. */
struct PifoItem
{
    uint64_t rank = 0;
    uint64_t seq = 0; ///< admission order; stable tie-break
    Packet pkt;
    Phv phv;
};

/** A bounded PIFO with occupancy statistics. */
class Pifo
{
  public:
    explicit Pifo(size_t capacity = 1024) : capacity_(capacity) {}

    /** Rank from policy + PHV (seq is appended as a tie-break). */
    static uint64_t rankOf(SchedPolicy policy, const Phv &phv,
                           uint64_t seq);

    /**
     * Push; returns false (drop) when the queue is full. Takes the
     * packet and PHV by value so the per-packet fast path can move
     * scratch buffers in without copying wire bytes.
     */
    bool push(uint64_t rank, Packet pkt, Phv phv);

    /** True when no packets are queued. */
    bool empty() const { return heap_.empty(); }

    /** True when the next push would drop. */
    bool full() const { return heap_.size() >= capacity_; }

    size_t size() const { return heap_.size(); }

    /**
     * Pop the minimum-rank packet; requires !empty(). The item is moved
     * out, so the caller can reclaim its buffers (the switch moves the
     * popped packet's byte storage back into its scratch).
     */
    PifoItem pop();

    uint64_t drops() const { return drops_; }
    size_t maxOccupancy() const { return max_occupancy_; }

  private:
    /**
     * Min-heap order (std::push_heap/pop_heap build max-heaps, so the
     * comparison is inverted): lowest rank first, admission order as the
     * stable tie-break.
     */
    static bool
    later(const PifoItem &a, const PifoItem &b)
    {
        if (a.rank != b.rank)
            return a.rank > b.rank;
        return a.seq > b.seq;
    }

    size_t capacity_;
    /** Explicit binary heap so pop() can move items out. */
    std::vector<PifoItem> heap_;
    uint64_t seq_ = 0;
    uint64_t drops_ = 0;
    size_t max_occupancy_ = 0;
};

} // namespace taurus::pisa
