/**
 * @file
 * Single-bottleneck congestion-control simulator.
 *
 * The Indigo row of Table 5 is structural (LSTM latency/area), but the
 * paper's framing — "Indigo can produce a decision every 805 ns: this
 * allows the LSTM network to react more quickly to changes in load and
 * better control tail latency" (Section 5.1.2) — is a closed-loop claim.
 * This simulator provides the loop: one sender behind a droptail
 * bottleneck queue, with a pluggable controller invoked on a configurable
 * decision interval. The congestion-control example compares an AIMD
 * controller against an LSTM policy at control-plane (10 ms) versus
 * Taurus (per-RTT) decision intervals.
 */

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "net/event.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace taurus::net {

/** What the controller sees each decision epoch. */
struct CcObservation
{
    double rtt_ms = 0.0;          ///< smoothed RTT
    double min_rtt_ms = 0.0;      ///< propagation estimate
    double delivery_mbps = 0.0;   ///< goodput over the epoch
    double send_mbps = 0.0;       ///< configured sending rate
    double loss_fraction = 0.0;   ///< drops / sent over the epoch
    double queue_fraction = 0.0;  ///< bottleneck occupancy [0, 1]
};

/** Discrete rate actions, Indigo-style (multiplicative / additive). */
enum class CcAction
{
    RateDown2x,  ///< rate *= 0.5
    RateDownAdd, ///< rate -= 2 Mb/s
    Hold,
    RateUpAdd,   ///< rate += 2 Mb/s
    RateUp2x,    ///< rate *= 1.5
};

constexpr int kCcActionCount = 5;

/** Apply an action to a sending rate (Mb/s), clamped to [1, cap]. */
double applyCcAction(CcAction a, double rate_mbps, double cap_mbps);

/** A rate controller: observation -> action. */
using CcController = std::function<CcAction(const CcObservation &)>;

/** Bottleneck and workload parameters. */
struct CcConfig
{
    double bottleneck_mbps = 100.0;
    double prop_delay_ms = 5.0;      ///< one-way propagation
    int queue_packets = 64;          ///< droptail queue capacity
    int packet_bytes = 1500;
    double decision_interval_ms = 10.0; ///< controller invocation period
    double duration_s = 10.0;
    /** Competing on/off cross-traffic share of the bottleneck. */
    double cross_traffic_fraction = 0.3;
    double cross_on_s = 0.5;
    double cross_off_s = 0.5;
    uint64_t seed = 7;
};

/** Closed-loop results. */
struct CcResult
{
    double avg_throughput_mbps = 0.0;
    double avg_rtt_ms = 0.0;
    double p95_rtt_ms = 0.0;
    double loss_fraction = 0.0;
    /** Throughput / delay score (higher is better), log-Kleinrock power. */
    double power() const;
};

/** Run the closed loop with the given controller. */
CcResult runCcSim(const CcConfig &cfg, const CcController &controller);

/** The classic AIMD baseline controller (loss-based). */
CcAction aimdController(const CcObservation &obs);

/**
 * Generate labeled imitation data for training an ML controller: runs a
 * "teacher" (delay+loss aware) policy over randomized bottlenecks and
 * records (observation features, action) pairs.
 */
struct CcSample
{
    std::vector<float> features; ///< normalized observation (5 values)
    int action = 0;
};

std::vector<CcSample> ccImitationSamples(size_t episodes, uint64_t seed);

/** Normalized feature vector the LSTM policy consumes. */
std::vector<float> ccFeatures(const CcObservation &obs);

} // namespace taurus::net
