/**
 * @file
 * Running statistics and small numeric helpers.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

namespace taurus::util {

/** Welford-style running mean/variance with min/max tracking. */
class RunningStat
{
  public:
    void add(double x);

    /**
     * Fold another accumulator into this one (Chan et al.'s parallel
     * variance combination), so per-worker stats can be merged into one.
     */
    void merge(const RunningStat &o);

    /**
     * Forget everything (windowed statistics: the drift monitor closes a
     * window, reads the aggregates, and starts the next window fresh).
     */
    void reset() { *this = RunningStat{}; }

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return sum_; }

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** Percentile of a sample vector (p in [0,100]); copies and sorts. */
double percentile(std::vector<double> values, double p);

/** Percentile of an already-sorted sample vector (p in [0,100]). */
double percentileSorted(const std::vector<double> &sorted, double p);

/** Integer ceil division for non-negative operands. */
constexpr int64_t
ceilDiv(int64_t num, int64_t den)
{
    return (num + den - 1) / den;
}

/** Smallest power of two >= x (x >= 1). */
constexpr uint64_t
nextPow2(uint64_t x)
{
    uint64_t p = 1;
    while (p < x)
        p <<= 1;
    return p;
}

/** floor(log2(x)) for x >= 1. */
constexpr int
log2Floor(uint64_t x)
{
    int l = 0;
    while (x > 1) {
        x >>= 1;
        ++l;
    }
    return l;
}

/** ceil(log2(x)) for x >= 1. */
constexpr int
log2Ceil(uint64_t x)
{
    return x <= 1 ? 0 : log2Floor(x - 1) + 1;
}

} // namespace taurus::util
