/**
 * @file
 * Match-action tables and pipelines.
 *
 * A MatStage holds one table (exact, ternary, or LPM over a list of key
 * fields), a set of actions, and entries binding match values to an
 * action plus per-entry action data. A MatPipeline is an ordered list of
 * stages with PISA resource accounting (32 stages per pipeline on the
 * baseline chip, Section 5.1.1; a 12-op VLIW budget per stage).
 */

#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <string>
#include <vector>

#include "pisa/action.hpp"
#include "pisa/phv.hpp"
#include "pisa/registers.hpp"

namespace taurus::pisa {

/** Match semantics of a stage's table. */
enum class MatchKind
{
    Exact,
    Ternary, ///< value/mask with priority (TCAM)
    Lpm,     ///< longest-prefix match on a single field
};

/** Most key fields any stage may match on (bounds the stack key). */
constexpr size_t kMaxKeyFields = 16;

/** One installed table entry. */
struct TableEntry
{
    std::vector<uint32_t> value; ///< one word per key field
    std::vector<uint32_t> mask;  ///< ternary only (1-bits compared)
    int prefix_len = 0;          ///< LPM only
    int priority = 0;            ///< ternary tie-break (higher wins)
    int action_id = -1;
    std::vector<uint32_t> args;  ///< action data
};

/** Statistics a stage accumulates while running. */
struct MatStats
{
    uint64_t hits = 0;
    uint64_t misses = 0;
};

/** One match-action stage. */
class MatStage
{
  public:
    MatStage(std::string name, MatchKind kind, std::vector<Field> key);

    /** Register an action; returns its id. */
    int addAction(Action action);

    /** Install an entry (validated against the key shape). */
    void addEntry(TableEntry entry);

    /** Action to run on a miss (default: none). */
    void setDefault(int action_id, std::vector<uint32_t> args = {});

    /** Remove all entries (keeps actions). */
    void clearEntries();

    /**
     * Match and execute. Returns true on a hit. Misses run the default
     * action when one is configured.
     */
    bool apply(Phv &phv, RegisterFile &regs) const;

    /** Largest VLIW bundle across actions (issue-budget check). */
    size_t maxOps() const;

    /** Error string if the stage violates PISA limits; empty if OK. */
    std::string validate() const;

    const std::string &name() const { return name_; }
    MatchKind kind() const { return kind_; }
    size_t entryCount() const { return entries_.size(); }
    const MatStats &stats() const { return stats_; }

  private:
    const TableEntry *lookup(const Phv &phv) const;

    /** Hash of an exact-match key (SRAM lookup index). */
    static uint64_t keyHash(const uint32_t *key, size_t n);
    static uint64_t keyHash(const std::vector<uint32_t> &key)
    {
        return keyHash(key.data(), key.size());
    }

    std::string name_;
    MatchKind kind_;
    std::vector<Field> key_;
    std::vector<Action> actions_;
    std::vector<TableEntry> entries_;
    std::optional<TableEntry> default_entry_;
    /** Exact tables index entries by key hash (hardware SRAM lookup). */
    std::unordered_map<uint64_t, size_t> exact_index_;
    /**
     * Ternary match data flattened for the per-packet scan: key-width
     * words per entry, values pre-masked at install time, so the TCAM
     * walk touches two contiguous arrays instead of chasing per-entry
     * heap vectors.
     */
    std::vector<uint32_t> ternary_masked_values_;
    std::vector<uint32_t> ternary_masks_;
    mutable MatStats stats_;
};

/** Per-component latency constants (1 GHz PISA pipeline). */
struct PipelineTiming
{
    double parser_ns = 25.0;
    double per_stage_ns = 12.5;
    double scheduler_ns = 25.0;
};

/** An ordered list of stages sharing a register file. */
class MatPipeline
{
  public:
    /** Append a stage; returns a stable index. */
    size_t addStage(MatStage stage);

    MatStage &stage(size_t i) { return stages_.at(i); }
    const MatStage &stage(size_t i) const { return stages_.at(i); }
    size_t stageCount() const { return stages_.size(); }

    /** Apply all stages in order. */
    void apply(Phv &phv, RegisterFile &regs) const;

    /** Wire latency of the MAT section. */
    double latencyNs(const PipelineTiming &t) const
    {
        return static_cast<double>(stages_.size()) * t.per_stage_ns;
    }

    /** First validation error across stages, or empty. */
    std::string validate() const;

  private:
    std::vector<MatStage> stages_;
};

} // namespace taurus::pisa
