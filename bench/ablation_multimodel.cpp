/**
 * @file
 * Extension bench (Section 6): multiple models sharing one MapReduce
 * block. "With such small networks, Taurus can run multiple models
 * simultaneously (e.g., one model for intrusion detection and another
 * for traffic optimization)." Merges the anomaly DNN with the IoT
 * KMeans classifier, compiles the union onto a single 12x10 grid, and
 * verifies both halves keep their results and line rate.
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "dfg/eval.hpp"
#include "hw/cycle_sim.hpp"
#include "models/zoo.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

TAURUS_BENCH(ablation_multimodel, "Section 6 extension",
             "concurrent models sharing one MapReduce block")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Extension: concurrent models on one MapReduce block "
          "(Section 6)\n\n";

    const size_t conns = ctx.size(3000, 800);
    const auto dnn = models::trainAnomalyDnn(1, conns);
    const auto km = models::trainIotKmeans(1, conns);

    const dfg::Graph both =
        dfg::merge({&dnn.graph, &km.lowered.graph}, "dnn+kmeans");
    const auto prog = compiler::compile(both);
    const auto rep = compiler::analyze(prog);

    const auto rep_dnn = compiler::analyze(compiler::compile(dnn.graph));
    const auto rep_km =
        compiler::analyze(compiler::compile(km.lowered.graph));

    TablePrinter t({"Program", "CUs", "MUs", "Area (mm^2)", "Lat (ns)",
                    "GPkt/s"});
    auto row = [&](const std::string &n, const compiler::AppReport &r) {
        t.addRow({n, TablePrinter::num(int64_t{r.cus}),
                  TablePrinter::num(int64_t{r.mus}),
                  TablePrinter::num(r.area_mm2, 2),
                  TablePrinter::num(r.latency_ns, 0),
                  TablePrinter::num(r.gpktps)});
    };
    row("anomaly DNN alone", rep_dnn);
    row("IoT KMeans alone", rep_km);
    row("merged (concurrent)", rep);
    t.print(os);
    ctx.metric("merged_cus", int64_t{rep.cus});
    ctx.metric("merged_area_mm2", rep.area_mm2);
    ctx.metric("merged_latency_ns", rep.latency_ns);
    ctx.metric("merged_gpktps", rep.gpktps);

    // Functional check: the merged program computes exactly what the
    // parts compute, per packet.
    hw::CycleSim sim(prog);
    util::Rng rng(3);
    const int trials = static_cast<int>(ctx.size(200, 20));
    int checked = 0, matched = 0;
    for (int trial = 0; trial < trials; ++trial) {
        std::vector<std::vector<int8_t>> inputs;
        for (int id : both.inputIds()) {
            std::vector<int8_t> v(
                static_cast<size_t>(both.node(id).width));
            for (auto &x : v)
                x = static_cast<int8_t>(rng.uniformInt(-100, 100));
            inputs.push_back(v);
        }
        const auto want = dfg::evaluate(both, inputs);
        const auto got = sim.run(inputs).outputs;
        ++checked;
        bool ok = want.size() == got.size();
        for (size_t i = 0; ok && i < want.size(); ++i)
            ok = want[i].lanes == got[i].lanes;
        matched += ok;
    }
    ctx.metric("bit_exact_trials", checked);
    ctx.metric("bit_exact_matches", matched);
    os << "\nBit-exactness of the merged program: " << matched << "/"
       << checked << " random packets\n";
    os << "Grid capacity: " << prog.spec.cuCount() << " CUs; the pair "
       << "uses " << rep.cus << " — both models run concurrently at "
       << "line rate with room to spare.\n";
}
