#include "taurus/experiment.hpp"

#include <stdexcept>

#include "taurus/app.hpp"
#include "util/metrics.hpp"

namespace taurus::core {

AppRunResult
runApp(const std::vector<net::TracePacket> &trace, TaurusSwitch &sw,
       size_t num_classes)
{
    AppRunResult r;
    r.confusion = util::MultiConfusion(num_classes);
    for (const auto &pkt : trace) {
        const SwitchDecision d = sw.process(pkt);
        r.confusion.record(d.class_id, pkt.class_label);
    }
    r.accuracy_pct = r.confusion.accuracy() * 100.0;
    r.macro_f1_x100 = r.confusion.macroF1() * 100.0;
    r.mean_ml_latency_ns = sw.stats().ml_latency_ns.mean();
    r.mean_bypass_latency_ns = sw.stats().bypass_latency_ns.mean();
    r.packets = sw.stats().packets;
    r.flagged = sw.stats().flagged;
    return r;
}

AppRunResult
runApp(const AppArtifact &app, const SwitchConfig &switch_cfg)
{
    TaurusSwitch sw(switch_cfg);
    sw.installApp(app);
    return runApp(app.eval_trace, sw, app.num_classes);
}

AppRunResult
scoreApp(util::Span<const SwitchDecision> decisions,
         util::Span<const net::TracePacket> packets, AppId app,
         size_t num_classes)
{
    if (decisions.size() != packets.size())
        throw std::invalid_argument(
            "scoreApp: decisions/packets size mismatch");
    AppRunResult r;
    r.confusion = util::MultiConfusion(num_classes);
    util::RunningStat ml_ns, bypass_ns;
    for (size_t i = 0; i < decisions.size(); ++i) {
        const SwitchDecision &d = decisions[i];
        if (d.app_id != app)
            continue;
        r.confusion.record(d.class_id, packets[i].class_label);
        ++r.packets;
        r.flagged += d.flagged;
        (d.bypassed ? bypass_ns : ml_ns).add(d.latency_ns);
    }
    r.accuracy_pct = r.confusion.accuracy() * 100.0;
    r.macro_f1_x100 = r.confusion.macroF1() * 100.0;
    r.mean_ml_latency_ns = ml_ns.mean();
    r.mean_bypass_latency_ns = bypass_ns.mean();
    return r;
}

std::vector<net::TracePacket>
mergeTracesByTime(const std::vector<net::TracePacket> &a,
                  const std::vector<net::TracePacket> &b)
{
    std::vector<net::TracePacket> merged;
    merged.reserve(a.size() + b.size());
    size_t i = 0, j = 0;
    while (i < a.size() || j < b.size()) {
        if (j >= b.size() ||
            (i < a.size() && a[i].time_s <= b[j].time_s))
            merged.push_back(a[i++]);
        else
            merged.push_back(b[j++]);
    }
    return merged;
}

TaurusRunResult
runTaurus(const std::vector<net::TracePacket> &trace, TaurusSwitch &sw)
{
    util::ConfusionMatrix cm;
    for (const auto &pkt : trace) {
        const SwitchDecision d = sw.process(pkt);
        cm.record(d.flagged, pkt.anomalous);
    }

    TaurusRunResult r;
    r.detected_pct = cm.recall() * 100.0;
    r.f1_x100 = cm.f1() * 100.0;
    r.mean_ml_latency_ns = sw.stats().ml_latency_ns.mean();
    r.mean_bypass_latency_ns = sw.stats().bypass_latency_ns.mean();
    r.packets = sw.stats().packets;
    r.flagged = sw.stats().flagged;
    return r;
}

std::vector<EndToEndRow>
runEndToEnd(const std::vector<net::TracePacket> &trace,
            const models::AnomalyDnn &model,
            const std::vector<double> &sampling_rates,
            const SwitchConfig &switch_cfg)
{
    TaurusSwitch sw(switch_cfg);
    sw.installAnomalyModel(model);
    const TaurusRunResult taurus = runTaurus(trace, sw);

    const auto standardize = [&model](const nn::Vector &raw) {
        return model.standardizer.apply(raw);
    };

    std::vector<EndToEndRow> rows;
    for (double rate : sampling_rates) {
        cp::BaselineConfig cfg;
        cfg.sampling_rate = rate;
        EndToEndRow row;
        row.baseline =
            cp::runBaseline(trace, model.quantized, standardize, cfg);
        row.taurus = taurus;
        rows.push_back(std::move(row));
    }
    return rows;
}

} // namespace taurus::core
