#include "runtime/trainer.hpp"

#include <algorithm>
#include <stdexcept>

#include "compiler/lower.hpp"
#include "nn/quantized.hpp"

namespace taurus::runtime {

StreamingTrainer::StreamingTrainer(nn::Mlp warm_model,
                                   fixed::QuantParams input_qp,
                                   bool classifier_head,
                                   double installed_out_scale,
                                   std::string graph_name,
                                   cp::OnlineTrainConfig cfg,
                                   size_t reservoir_cap,
                                   size_t calibration_cap)
    : cfg_(cfg), input_qp_(input_qp), classifier_head_(classifier_head),
      installed_out_scale_(installed_out_scale),
      graph_name_(std::move(graph_name)), model_(std::move(warm_model)),
      rng_(cfg.seed),
      reservoir_cap_(std::max<size_t>(reservoir_cap, 1)),
      calib_cap_(std::max<size_t>(calibration_cap, 1))
{
    if (cfg_.batch < 1)
        throw std::invalid_argument("StreamingTrainer: batch must be >= 1");
}

StreamingTrainer::StreamingTrainer(const models::AnomalyDnn &installed,
                                   cp::OnlineTrainConfig cfg,
                                   size_t reservoir_cap,
                                   size_t calibration_cap)
    : StreamingTrainer(installed.model, installed.quantized.inputParams(),
                       /*classifier_head=*/false,
                       installed.quantized.layers().back().out_scale,
                       "anomaly_dnn_online", cfg, reservoir_cap,
                       calibration_cap)
{
}

void
StreamingTrainer::ingest(const TelemetrySample &s)
{
    nn::Vector x(s.feature_count);
    for (size_t i = 0; i < s.feature_count; ++i)
        x[i] = static_cast<float>(
            fixed::dequantize(s.features[i], input_qp_));

    // Rolling calibration window for the next re-quantization.
    if (calib_.size() < calib_cap_) {
        calib_.push_back(x);
    } else {
        calib_[calib_next_] = x;
        calib_next_ = (calib_next_ + 1) % calib_cap_;
    }

    buf_x_.push_back(std::move(x));
    buf_y_.push_back(static_cast<int>(s.label));
    ++ingested_;
}

void
StreamingTrainer::step()
{
    if (!minibatchReady())
        throw std::logic_error("StreamingTrainer::step: minibatch not full");

    // One update trains over exactly cfg_.batch fresh samples — not
    // the whole buffer. The buffer can hold far more than one batch
    // after a burst (the rings keep filling while the trainer sleeps
    // an install delay), and step() runs under the runtime's control
    // lock, so the per-step cost must stay bounded by configuration,
    // not by load; the surplus stays buffered for subsequent steps.
    const size_t fresh = static_cast<size_t>(cfg_.batch);

    // The update set: the fresh minibatch plus an equal-sized replay
    // draw from the reservoir (cp::runOnlineTraining semantics).
    std::vector<const nn::Vector *> xs;
    std::vector<int> ys(buf_y_.begin(),
                        buf_y_.begin() + static_cast<long>(fresh));
    xs.reserve(fresh * 2);
    ys.reserve(fresh * 2);
    for (size_t k = 0; k < fresh; ++k)
        xs.push_back(&buf_x_[k]);
    for (size_t k = 0; k < fresh && !reservoir_x_.empty(); ++k) {
        const size_t j = static_cast<size_t>(rng_.uniformInt(
            0, static_cast<int64_t>(reservoir_x_.size()) - 1));
        xs.push_back(&reservoir_x_[j]);
        ys.push_back(reservoir_y_[j]);
    }

    nn::TrainConfig tc;
    tc.epochs = 1; // epochs handled explicitly below
    tc.batch_size = cfg_.batch;
    tc.learning_rate = cfg_.learning_rate;

    // Each epoch is a pass of chunked SGD steps over the shuffled
    // update set (a single full-batch step per push parks the model at
    // the all-negative operating point).
    std::vector<size_t> order(xs.size());
    for (size_t k = 0; k < order.size(); ++k)
        order[k] = k;
    constexpr size_t kStep = 32;
    std::vector<const nn::Vector *> step_x;
    std::vector<int> step_y;
    for (int e = 0; e < cfg_.epochs; ++e) {
        rng_.shuffle(order);
        for (size_t at = 0; at < order.size(); at += kStep) {
            step_x.clear();
            step_y.clear();
            for (size_t k = at; k < std::min(at + kStep, order.size());
                 ++k) {
                step_x.push_back(xs[order[k]]);
                step_y.push_back(ys[order[k]]);
            }
            model_.trainBatch(step_x, step_y, tc);
        }
    }

    ++steps_;
    retireMinibatch(fresh);
}

void
StreamingTrainer::absorb()
{
    retireMinibatch(buf_x_.size());
}

void
StreamingTrainer::retireMinibatch(size_t count)
{
    count = std::min(count, buf_x_.size());
    for (size_t k = 0; k < count; ++k) {
        if (reservoir_x_.size() < reservoir_cap_) {
            reservoir_x_.push_back(std::move(buf_x_[k]));
            reservoir_y_.push_back(buf_y_[k]);
        } else {
            const size_t j = static_cast<size_t>(rng_.uniformInt(
                0, static_cast<int64_t>(reservoir_x_.size()) - 1));
            reservoir_x_[j] = std::move(buf_x_[k]);
            reservoir_y_[j] = buf_y_[k];
        }
    }
    buf_x_.erase(buf_x_.begin(),
                 buf_x_.begin() + static_cast<long>(count));
    buf_y_.erase(buf_y_.begin(),
                 buf_y_.begin() + static_cast<long>(count));
}

dfg::Graph
StreamingTrainer::snapshotGraph() const
{
    if (calib_.empty())
        throw std::logic_error(
            "StreamingTrainer::snapshotGraph: no telemetry ingested yet");
    const nn::QuantizedMlp q =
        nn::QuantizedMlp::fromFloat(model_, calib_, input_qp_);
    if (classifier_head_)
        // Argmax is scale-invariant, so there is no output-scale
        // contract to police; the lowering just has to match the
        // installed argmax-headed structure.
        return compiler::lowerMlpClassifier(q, graph_name_);
    // The switch's verdict table was burned in at install time against
    // the installed model's output scale; a weight-only push must keep
    // that contract or flagging thresholds silently shift. For the
    // sigmoid-headed anomaly DNN the scale is a calibration-independent
    // constant (1/127), so this only fires if someone retargets the
    // trainer at a model family whose output scale floats — loudly,
    // instead of quietly unflagging anomalies.
    if (q.layers().back().out_scale != installed_out_scale_)
        throw std::logic_error(
            "StreamingTrainer::snapshotGraph: output scale diverged "
            "from the installed verdict table");
    return compiler::lowerMlp(q, graph_name_);
}

} // namespace taurus::runtime
