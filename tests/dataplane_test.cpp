/**
 * Pipelined dataplane regression tests: the shared SPSC ring template,
 * the one hardware-concurrency fallback, and the PipelineFarm itself.
 *
 * The two contracts under test (ISSUE 9 acceptance criteria):
 *  - zero-drop determinism: with rings sized to suffer no drops (or
 *    the Backpressure policy), pipeline decisions and merged stats are
 *    bit-identical to the synchronous SwitchFarm on the same trace and
 *    worker count — both partition by core::flowOwner;
 *  - drop exactness: under forced saturation every fed packet is
 *    accounted for — completed + dispatch_drops == fed, the per-worker
 *    drop breakdown sums to the total, and dropped packets carry the
 *    marker decision — saturation is exact and observable, not silent.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "dataplane/pipeline.hpp"
#include "models/zoo.hpp"
#include "net/iot.hpp"
#include "net/kdd.hpp"
#include "obs/export.hpp"
#include "runtime/telemetry.hpp"
#include "taurus/app.hpp"
#include "taurus/experiment.hpp"
#include "taurus/farm.hpp"
#include "util/spsc_ring.hpp"
#include "util/threading.hpp"

using namespace taurus;
using dataplane::OverflowPolicy;
using dataplane::PipelineConfig;
using dataplane::PipelineFarm;
using dataplane::PipelineStats;

namespace {

/** Trained models + traces, built once per process. */
struct Fixture
{
    models::AnomalyDnn dnn = models::trainAnomalyDnn(5, 1500);
    models::IotFlowMlp iot = models::trainIotFlowMlp(1, 1200);
    std::vector<net::TracePacket> kdd_trace; ///< 10.x sources
    std::vector<net::TracePacket> merged;    ///< interleaved by time

    Fixture()
    {
        net::KddConfig cfg;
        cfg.connections = 1200;
        net::KddGenerator gen(cfg, 42);
        kdd_trace = gen.expandToPackets(gen.sampleConnections());
        merged = core::mergeTracesByTime(kdd_trace, iot.eval_trace);
    }
};

const Fixture &
fixture()
{
    static const Fixture fx;
    return fx;
}

/** Field-by-field decision equality, latency included: the pipeline
 *  must reproduce the synchronous farm bit-for-bit. */
void
expectSameDecision(const core::SwitchDecision &a,
                   const core::SwitchDecision &b, size_t i)
{
    ASSERT_EQ(a.flagged, b.flagged) << "packet " << i;
    ASSERT_EQ(a.dropped, b.dropped) << "packet " << i;
    ASSERT_EQ(a.bypassed, b.bypassed) << "packet " << i;
    ASSERT_EQ(a.score, b.score) << "packet " << i;
    ASSERT_EQ(a.class_id, b.class_id) << "packet " << i;
    ASSERT_EQ(a.app_id, b.app_id) << "packet " << i;
    ASSERT_EQ(a.egress_port, b.egress_port) << "packet " << i;
    ASSERT_EQ(a.feature_count, b.feature_count) << "packet " << i;
    ASSERT_EQ(a.features, b.features) << "packet " << i;
    ASSERT_DOUBLE_EQ(a.latency_ns, b.latency_ns) << "packet " << i;
}

void
expectSameStats(const core::SwitchStats &a, const core::SwitchStats &b)
{
    EXPECT_EQ(a.packets, b.packets);
    EXPECT_EQ(a.ml_packets, b.ml_packets);
    EXPECT_EQ(a.flagged, b.flagged);
    EXPECT_EQ(a.dropped, b.dropped);
    EXPECT_EQ(a.safety_overrides, b.safety_overrides);
    EXPECT_EQ(a.dispatch_misses, b.dispatch_misses);
    EXPECT_EQ(a.ml_latency_ns.count(), b.ml_latency_ns.count());
    EXPECT_DOUBLE_EQ(a.ml_latency_ns.mean(), b.ml_latency_ns.mean());
    EXPECT_DOUBLE_EQ(a.ml_latency_ns.max(), b.ml_latency_ns.max());
    EXPECT_EQ(a.bypass_latency_ns.count(), b.bypass_latency_ns.count());
    EXPECT_DOUBLE_EQ(a.bypass_latency_ns.mean(),
                     b.bypass_latency_ns.mean());
}

/** The dropped-at-dispatch marker: a default decision + dropped flag.
 *  Every processed packet pays parse latency, so latency 0 with no
 *  features can only come from the RX stage. */
bool
isDropMarker(const core::SwitchDecision &d)
{
    return d.dropped && d.latency_ns == 0.0 && d.feature_count == 0 &&
           !d.flagged && !d.bypassed;
}

util::Span<const net::TracePacket>
packetSpan(const std::vector<net::TracePacket> &v)
{
    return util::Span<const net::TracePacket>(v.data(), v.size());
}

util::Span<core::SwitchDecision>
decisionSpan(std::vector<core::SwitchDecision> &v)
{
    return util::Span<core::SwitchDecision>(v.data(), v.size());
}

} // namespace

// ---------------------------------------------------------------------
// SPSC ring template (satellite: the one shared ring implementation)
// ---------------------------------------------------------------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    EXPECT_EQ(util::SpscRing<int>(0).capacity(), 2u);
    EXPECT_EQ(util::SpscRing<int>(1).capacity(), 2u);
    EXPECT_EQ(util::SpscRing<int>(2).capacity(), 2u);
    EXPECT_EQ(util::SpscRing<int>(3).capacity(), 4u);
    EXPECT_EQ(util::SpscRing<int>(64).capacity(), 64u);
    EXPECT_EQ(util::SpscRing<int>(65).capacity(), 128u);
}

TEST(SpscRing, FifoOrderPreservedAcrossWrap)
{
    util::SpscRing<int> ring(8);
    // Many times the capacity, in a lockstep window: every index pair
    // crosses the wrap boundary several times.
    int next_out = 0;
    for (int i = 0; i < 100; ++i) {
        ASSERT_TRUE(ring.tryPush(i));
        if (i % 2 == 1) { // drain two every other push
            int v = -1;
            ASSERT_TRUE(ring.tryPop(v));
            EXPECT_EQ(v, next_out++);
            ASSERT_TRUE(ring.tryPop(v));
            EXPECT_EQ(v, next_out++);
        }
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(ring.dropped(), 0u);
}

TEST(SpscRing, FullRingRejectsAndCountsDrops)
{
    util::SpscRing<int> ring(4);
    for (int i = 0; i < 4; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_FALSE(ring.tryPush(99));
    EXPECT_EQ(ring.dropped(), 2u);
    // The rejected values never displaced queued ones.
    int v = -1;
    ASSERT_TRUE(ring.tryPop(v));
    EXPECT_EQ(v, 0);
    // One slot freed: push succeeds again, drop count unchanged.
    EXPECT_TRUE(ring.tryPush(4));
    EXPECT_EQ(ring.dropped(), 2u);
}

TEST(SpscRing, PushBurstAcceptsOnlyFreeSpaceWithoutCountingDrops)
{
    util::SpscRing<int> ring(4);
    const int items[6] = {0, 1, 2, 3, 4, 5};
    // Burst overflow is the caller's policy, not the ring's: the
    // remainder is reported, not counted as dropped.
    EXPECT_EQ(ring.pushBurst(items, 6), 4u);
    EXPECT_EQ(ring.dropped(), 0u);
    EXPECT_EQ(ring.pushBurst(items, 6), 0u);
    int v = -1;
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(ring.tryPop(v));
        EXPECT_EQ(v, i);
    }
    EXPECT_FALSE(ring.tryPop(v));
}

TEST(SpscRing, PopBurstDrainsInOrder)
{
    util::SpscRing<int> ring(8);
    for (int i = 0; i < 5; ++i)
        ASSERT_TRUE(ring.tryPush(i));
    int out[8] = {};
    EXPECT_EQ(ring.popBurst(out, 3), 3u);
    EXPECT_EQ(out[0], 0);
    EXPECT_EQ(out[2], 2);
    EXPECT_EQ(ring.popBurst(out, 8), 2u); // partial: only 2 left
    EXPECT_EQ(out[0], 3);
    EXPECT_EQ(out[1], 4);
    EXPECT_EQ(ring.popBurst(out, 8), 0u); // empty
}

TEST(SpscRing, CountersTrackLifetimeTotals)
{
    util::SpscRing<int> ring(4);
    const int items[3] = {7, 8, 9};
    EXPECT_EQ(ring.pushBurst(items, 3), 3u);
    EXPECT_EQ(ring.pushed(), 3u);
    EXPECT_EQ(ring.popped(), 0u);
    EXPECT_EQ(ring.size(), 3u);
    int out[4];
    EXPECT_EQ(ring.popBurst(out, 4), 3u);
    EXPECT_EQ(ring.popped(), 3u);
    EXPECT_TRUE(ring.empty());
    ASSERT_TRUE(ring.tryPush(1));
    EXPECT_EQ(ring.pushed(), 4u);
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesSequence)
{
    // The single-writer invariant under real concurrency: one producer,
    // one consumer, every accepted value arrives exactly once in order.
    // TSan referees the memory ordering.
    util::SpscRing<uint64_t> ring(64);
    constexpr uint64_t kN = 200000;
    std::atomic<bool> done{false};

    std::thread consumer([&] {
        uint64_t expect = 0;
        uint64_t buf[32];
        while (expect < kN) {
            const size_t n = ring.popBurst(buf, 32);
            for (size_t i = 0; i < n; ++i) {
                ASSERT_EQ(buf[i], expect);
                ++expect;
            }
            if (n == 0)
                std::this_thread::yield();
        }
        done.store(true, std::memory_order_release);
    });

    for (uint64_t v = 0; v < kN;) {
        if (ring.tryPush(v))
            ++v; // lossless here: retry instead of dropping
        else
            std::this_thread::yield();
    }
    consumer.join();
    EXPECT_TRUE(done.load());
    EXPECT_EQ(ring.pushed(), kN);
    EXPECT_EQ(ring.popped(), kN);
    // tryPush failures above were retried, yet still counted — the
    // counter is "values the producer could not place on first try".
    EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, TelemetryRingIsTheSharedTemplate)
{
    // Satellite: the runtime's telemetry ring is the util template, not
    // a second implementation — same type, same drop-on-full contract.
    static_assert(
        std::is_same_v<runtime::TelemetryRing,
                       util::SpscRing<runtime::TelemetrySample>>,
        "runtime must be re-homed onto util::SpscRing");
    runtime::TelemetryRing ring(2);
    runtime::TelemetrySample s{};
    s.app_id = 7;
    EXPECT_TRUE(ring.tryPush(s));
    EXPECT_TRUE(ring.tryPush(s));
    EXPECT_FALSE(ring.tryPush(s)); // full: dropped and counted
    EXPECT_EQ(ring.dropped(), 1u);
    runtime::TelemetrySample out{};
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.app_id, 7u);
}

// ---------------------------------------------------------------------
// Shared worker-count fallback (satellite)
// ---------------------------------------------------------------------

TEST(Threading, ResolveWorkerCountContract)
{
    const unsigned hc = std::thread::hardware_concurrency();
    const size_t expect_auto = hc ? hc : 1;
    EXPECT_EQ(util::resolveWorkerCount(0), expect_auto);
    EXPECT_GE(util::resolveWorkerCount(0), 1u);
    EXPECT_EQ(util::resolveWorkerCount(5), 5u);
    EXPECT_EQ(util::resolveWorkerCount(1), 1u);
    // The cap bounds both the explicit and the auto path.
    EXPECT_EQ(util::resolveWorkerCount(8, 4), 4u);
    EXPECT_EQ(util::resolveWorkerCount(3, 4), 3u);
    EXPECT_LE(util::resolveWorkerCount(0, 2), 2u);
}

TEST(Threading, FarmAndPipelineShareTheFallback)
{
    // SwitchFarm(cfg, 0) and PipelineFarm{workers = 0} must agree on
    // the resolved count — one helper, not two copies of the clamp.
    const size_t expect = util::resolveWorkerCount(0);
    core::SwitchFarm farm({}, 0);
    EXPECT_EQ(farm.workers(), expect);
    PipelineConfig pc;
    pc.workers = 0;
    PipelineFarm pipe({}, pc);
    EXPECT_EQ(pipe.workers(), expect);
    EXPECT_EQ(pipe.dispatchers(), 1u);
}

// ---------------------------------------------------------------------
// Zero-drop bit-identity with the synchronous farm (tentpole)
// ---------------------------------------------------------------------

TEST(Pipeline, SingleTenantBitIdenticalToSyncFarm)
{
    const auto &fx = fixture();
    constexpr size_t kWorkers = 4;

    core::SwitchFarm farm({}, kWorkers);
    farm.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto want = farm.processTrace(fx.kdd_trace);

    PipelineConfig pc;
    pc.workers = kWorkers;
    pc.ring_capacity = fx.kdd_trace.size(); // sized for zero drops
    PipelineFarm pipe({}, pc);
    pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto got = pipe.processTrace(fx.kdd_trace);

    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);

    const PipelineStats ps = pipe.pipelineStats();
    EXPECT_EQ(ps.fed, fx.kdd_trace.size());
    EXPECT_EQ(ps.dispatched, fx.kdd_trace.size());
    EXPECT_EQ(ps.completed, fx.kdd_trace.size());
    EXPECT_EQ(ps.dispatch_drops, 0u);

    expectSameStats(pipe.mergedStats(), farm.mergedStats());
}

TEST(Pipeline, TwoTenantBitIdenticalToSyncFarm)
{
    const auto &fx = fixture();
    constexpr size_t kWorkers = 3;

    core::SwitchFarm farm({}, kWorkers);
    const auto fa = farm.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto fb = farm.installApp(core::makeIotFlowApp(fx.iot));
    const auto want = farm.processTrace(fx.merged);

    PipelineConfig pc;
    pc.workers = kWorkers;
    pc.ring_capacity = fx.merged.size();
    PipelineFarm pipe({}, pc);
    EXPECT_EQ(pipe.installApp(core::makeAnomalyDnnApp(fx.dnn)), fa);
    EXPECT_EQ(pipe.installApp(core::makeIotFlowApp(fx.iot)), fb);
    const auto got = pipe.processTrace(fx.merged);

    ASSERT_EQ(got.size(), want.size());
    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);

    // Per-tenant stat merging matches too.
    expectSameStats(pipe.mergedStats(fa), farm.mergedStats(fa));
    expectSameStats(pipe.mergedStats(fb), farm.mergedStats(fb));
}

TEST(Pipeline, ChunkedFeedMatchesOneShotTrace)
{
    // feed() is segment-granular; decisions must not depend on how the
    // caller slices the trace (odd sizes cross every burst boundary).
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 4;
    pc.ring_capacity = fx.kdd_trace.size();
    pc.rx_burst = 7; // deliberately mismatched with the chunk size

    PipelineFarm one({}, pc);
    one.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto want = one.processTrace(fx.kdd_trace);

    PipelineFarm chunked({}, pc);
    chunked.installApp(core::makeAnomalyDnnApp(fx.dnn));
    std::vector<core::SwitchDecision> got(fx.kdd_trace.size());
    const size_t kChunk = 13;
    for (size_t off = 0; off < fx.kdd_trace.size(); off += kChunk) {
        const size_t n =
            std::min(kChunk, fx.kdd_trace.size() - off);
        chunked.feed(util::Span<const net::TracePacket>(
                         fx.kdd_trace.data() + off, n),
                     util::Span<core::SwitchDecision>(got.data() + off,
                                                      n));
    }
    chunked.drain();

    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);
}

TEST(Pipeline, BackpressureWithTinyRingsIsLosslessAndBitIdentical)
{
    // Rings far smaller than the trace: DropNewest would shed load,
    // Backpressure must instead stall the RX stage and lose nothing.
    const auto &fx = fixture();
    constexpr size_t kWorkers = 4;

    core::SwitchFarm farm({}, kWorkers);
    farm.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto want = farm.processTrace(fx.kdd_trace);

    PipelineConfig pc;
    pc.workers = kWorkers;
    pc.ring_capacity = 8;
    pc.rx_burst = 16; // bursts larger than the ring: partial pushes
    pc.overflow = OverflowPolicy::Backpressure;
    PipelineFarm pipe({}, pc);
    pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto got = pipe.processTrace(fx.kdd_trace);

    const PipelineStats ps = pipe.pipelineStats();
    EXPECT_EQ(ps.dispatch_drops, 0u);
    EXPECT_EQ(ps.completed, fx.kdd_trace.size());
    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);
}

TEST(Pipeline, MultiDispatcherAccountsForEveryPacket)
{
    // Two RX threads flow-shard the trace. Cross-ring drain order is
    // timing-dependent, so bit-identity is out of contract — but every
    // packet must still be processed exactly once, by its flow owner.
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 3;
    pc.dispatchers = 2;
    pc.ring_capacity = fx.kdd_trace.size();
    PipelineFarm pipe({}, pc);
    pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto got = pipe.processTrace(fx.kdd_trace);

    const PipelineStats ps = pipe.pipelineStats();
    EXPECT_EQ(ps.fed, fx.kdd_trace.size());
    EXPECT_EQ(ps.dispatched, fx.kdd_trace.size());
    EXPECT_EQ(ps.completed, fx.kdd_trace.size());
    EXPECT_EQ(ps.dispatch_drops, 0u);
    for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_FALSE(isDropMarker(got[i])) << "packet " << i;
        EXPECT_GT(got[i].latency_ns, 0.0) << "packet " << i;
    }
    EXPECT_EQ(pipe.mergedStats().packets, fx.kdd_trace.size());
}

// ---------------------------------------------------------------------
// Forced-drop accounting exactness (tentpole)
// ---------------------------------------------------------------------

TEST(Pipeline, ForcedDropAccountingIsExact)
{
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 2;
    pc.ring_capacity = 2; // tiny rings + big bursts: drops guaranteed
    pc.rx_burst = 64;
    pc.overflow = OverflowPolicy::DropNewest;
    PipelineFarm pipe({}, pc);
    pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto got = pipe.processTrace(fx.kdd_trace);

    const PipelineStats ps = pipe.pipelineStats();
    EXPECT_GT(ps.dispatch_drops, 0u) << "saturation not reached — the "
                                        "forced-drop setup is broken";
    // Every fed packet is accounted for, exactly once.
    EXPECT_EQ(ps.fed, fx.kdd_trace.size());
    EXPECT_EQ(ps.dispatched + ps.dispatch_drops, ps.fed);
    EXPECT_EQ(ps.completed, ps.dispatched);

    // The per-worker breakdown sums to the total.
    ASSERT_EQ(ps.drops_per_worker.size(), pipe.workers());
    uint64_t sum = 0;
    for (uint64_t d : ps.drops_per_worker)
        sum += d;
    EXPECT_EQ(sum, ps.dispatch_drops);

    // Marker decisions identify exactly the dropped packets.
    uint64_t markers = 0;
    for (const auto &d : got)
        if (isDropMarker(d))
            ++markers;
    EXPECT_EQ(markers, ps.dispatch_drops);

    // Replicas saw exactly the non-dropped packets.
    EXPECT_EQ(pipe.mergedStats().packets, ps.completed);
}

// ---------------------------------------------------------------------
// Traffic-surface contract errors
// ---------------------------------------------------------------------

TEST(Pipeline, FeedSizeMismatchThrows)
{
    PipelineConfig pc;
    pc.workers = 1;
    PipelineFarm pipe({}, pc);
    std::vector<net::TracePacket> pkts(4);
    std::vector<core::SwitchDecision> dec(3);
    EXPECT_THROW(pipe.feed(packetSpan(pkts), decisionSpan(dec)),
                 std::invalid_argument);
}

TEST(Pipeline, ProcessingWithNoAppInstalledRethrowsAtDrain)
{
    // The switch's "no application installed" logic_error crosses the
    // pipeline: workers catch it, drain() rethrows the first one.
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 2;
    PipelineFarm pipe({}, pc);
    std::vector<core::SwitchDecision> dec(fx.kdd_trace.size());
    EXPECT_THROW(
        pipe.processTrace(packetSpan(fx.kdd_trace), decisionSpan(dec)),
        std::logic_error);
}

// ---------------------------------------------------------------------
// Lifecycle through the end-of-burst maintenance hook
// ---------------------------------------------------------------------

TEST(Pipeline, LifecycleInstallRemoveReplaceMatchesSwitchContract)
{
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 3;
    PipelineFarm pipe({}, pc);

    const auto anom = pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto iot = pipe.installApp(core::makeIotFlowApp(fx.iot));
    EXPECT_EQ(anom, 0u);
    EXPECT_EQ(iot, 1u);
    EXPECT_EQ(pipe.appCount(), 2u);
    EXPECT_EQ(pipe.defaultApp(), anom);
    EXPECT_TRUE(pipe.installed(iot));

    // Remove the non-default tenant: every replica hands back its
    // retired state block (one per worker).
    const auto retired = pipe.removeApp(iot);
    EXPECT_EQ(retired.size(), pipe.workers());
    for (const auto &r : retired)
        EXPECT_TRUE(r);
    EXPECT_FALSE(pipe.installed(iot));
    EXPECT_EQ(pipe.appCount(), 1u);

    // Ids are never reused: a fresh install gets slot 2, not 1.
    const auto again = pipe.installApp(core::makeIotFlowApp(fx.iot));
    EXPECT_EQ(again, 2u);
    EXPECT_EQ(pipe.appIds(), (std::vector<core::AppId>{0, 2}));

    // Replace keeps the id, returns the replaced-out blocks.
    const auto swapped =
        pipe.replaceApp(again, core::makeIotFlowApp(fx.iot));
    EXPECT_EQ(swapped.size(), pipe.workers());
    EXPECT_TRUE(pipe.installed(again));
    EXPECT_EQ(pipe.appCount(), 2u);
}

TEST(Pipeline, LifecycleTypedErrorsLeaveStateUntouched)
{
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 2;
    pc.ring_capacity = fx.merged.size(); // zero drops: parity below
    PipelineFarm pipe({}, pc);

    // Nothing installed: the single-tenant update has no target.
    EXPECT_THROW(pipe.updateWeights(fx.dnn.graph), std::logic_error);

    const auto anom = pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto iot = pipe.installApp(core::makeIotFlowApp(fx.iot));

    // Removing the dispatch default while others live is refused.
    EXPECT_THROW(pipe.removeApp(anom), core::LifecycleError);
    // Unknown ids and removed ids keep the switch's typed errors.
    EXPECT_THROW(pipe.removeApp(17), std::out_of_range);
    EXPECT_THROW(pipe.updateWeights(17, fx.dnn.graph),
                 std::out_of_range);
    EXPECT_THROW(pipe.setDefaultApp(17), std::out_of_range);
    // Structurally wrong weights are rejected before publication.
    EXPECT_THROW(pipe.updateWeights(anom, fx.iot.graph),
                 std::invalid_argument);
    // Ambiguous single-tenant form with two residents.
    EXPECT_THROW(pipe.updateWeights(fx.dnn.graph),
                 std::invalid_argument);

    // All of the above were all-or-nothing: tenants intact and the
    // data plane still bit-identical to a clean two-tenant farm.
    EXPECT_EQ(pipe.appCount(), 2u);
    EXPECT_TRUE(pipe.installed(anom));
    EXPECT_TRUE(pipe.installed(iot));
    core::SwitchFarm farm({}, 2);
    farm.installApp(core::makeAnomalyDnnApp(fx.dnn));
    farm.installApp(core::makeIotFlowApp(fx.iot));
    const auto want = farm.processTrace(fx.merged);
    const auto got = pipe.processTrace(fx.merged);
    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);

    // Removed ids throw LifecycleError, not out_of_range.
    pipe.removeApp(iot);
    EXPECT_THROW(pipe.removeApp(iot), core::LifecycleError);
    EXPECT_THROW(pipe.updateWeights(iot, fx.iot.graph),
                 core::LifecycleError);
}

TEST(Pipeline, UpdateWeightsAppliesOnEveryReplicaLikeSyncFarm)
{
    // Freshly trained weights land through the maintenance hook; the
    // post-update pipeline must match a sync farm updated the same way.
    const auto &fx = fixture();
    const auto fresh = models::trainAnomalyDnn(8, 1500); // same shape

    constexpr size_t kWorkers = 3;
    core::SwitchFarm farm({}, kWorkers);
    const auto fid = farm.installApp(core::makeAnomalyDnnApp(fx.dnn));
    farm.updateWeights(fid, fresh.graph);
    const auto want = farm.processTrace(fx.kdd_trace);

    PipelineConfig pc;
    pc.workers = kWorkers;
    pc.ring_capacity = fx.kdd_trace.size();
    PipelineFarm pipe({}, pc);
    const auto pid = pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    pipe.updateWeights(pid, fresh.graph);
    const auto got = pipe.processTrace(fx.kdd_trace);

    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);
}

// ---------------------------------------------------------------------
// Observability export (satellite)
// ---------------------------------------------------------------------

TEST(Pipeline, ScrapeExportsPipelineFamiliesInPrometheusFormat)
{
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 2;
    pc.ring_capacity = 2; // force some drops so the counter is nonzero
    pc.rx_burst = 64;
    PipelineFarm pipe({}, pc);
    pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));
    pipe.processTrace(fx.kdd_trace);

    const PipelineStats ps = pipe.pipelineStats();
    ASSERT_GT(ps.dispatch_drops, 0u);

    const obs::Snapshot snap = pipe.scrape();
    // The exporter and the facade read the same sources.
    EXPECT_EQ(snap.value("taurus_pipeline_fed_total"),
              static_cast<double>(ps.fed));
    EXPECT_EQ(snap.value("taurus_pipeline_completed_total"),
              static_cast<double>(ps.completed));
    double drops = 0;
    for (size_t w = 0; w < pipe.workers(); ++w)
        drops += snap.value("taurus_pipeline_dispatch_drops_total",
                            "worker=\"" + std::to_string(w) + "\"");
    EXPECT_EQ(drops, static_cast<double>(ps.dispatch_drops));
    EXPECT_NE(snap.find("taurus_pipeline_ring_occupancy",
                        "worker=\"0\""),
              nullptr);
    EXPECT_NE(snap.findHist("taurus_pipeline_rx_burst_pkts"), nullptr);
    // One family, shard-merged across workers at scrape.
    EXPECT_NE(snap.findHist("taurus_pipeline_worker_burst_pkts"),
              nullptr);
    // Replica metrics ride the same registry (farm re-homing).
    EXPECT_EQ(snap.value("taurus_switch_packets_total"),
              static_cast<double>(ps.completed));

    const std::string prom = obs::renderPrometheus(snap);
    EXPECT_NE(prom.find("# TYPE taurus_pipeline_dispatch_drops_total "
                        "counter"),
              std::string::npos);
    EXPECT_NE(prom.find("# TYPE taurus_pipeline_ring_occupancy gauge"),
              std::string::npos);
    EXPECT_NE(prom.find("taurus_pipeline_rx_burst_pkts_bucket"),
              std::string::npos);
    EXPECT_NE(prom.find("le=\"+Inf\""), std::string::npos);
}

TEST(Pipeline, ObservabilityOffMeansNoRegistryAndSameDecisions)
{
    const auto &fx = fixture();
    core::SwitchConfig cfg;
    cfg.obs.metrics = false;
    PipelineConfig pc;
    pc.workers = 2;
    pc.ring_capacity = fx.kdd_trace.size();

    PipelineFarm dark(cfg, pc);
    dark.installApp(core::makeAnomalyDnnApp(fx.dnn));
    EXPECT_EQ(dark.registry(), nullptr);
    const auto got = dark.processTrace(fx.kdd_trace);
    EXPECT_TRUE(dark.scrape().nums.empty());

    PipelineFarm lit({}, pc);
    lit.installApp(core::makeAnomalyDnnApp(fx.dnn));
    const auto want = lit.processTrace(fx.kdd_trace);
    for (size_t i = 0; i < got.size(); ++i)
        expectSameDecision(got[i], want[i], i);
}

// ---------------------------------------------------------------------
// Concurrency (TSan is the referee for these)
// ---------------------------------------------------------------------

TEST(Pipeline, MergedStatsSafeUnderLiveTraffic)
{
    // mergedStats() runs as a maintenance op — each replica is read by
    // its own worker at a burst boundary — so calling it mid-traffic is
    // legal, unlike SwitchFarm's.
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 2;
    pc.ring_capacity = fx.kdd_trace.size();
    PipelineFarm pipe({}, pc);
    pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));

    constexpr int kRounds = 5;
    std::thread feeder([&] {
        for (int r = 0; r < kRounds; ++r)
            pipe.processTrace(fx.kdd_trace);
    });
    uint64_t last = 0;
    for (int i = 0; i < 50; ++i) {
        const core::SwitchStats s = pipe.mergedStats();
        EXPECT_GE(s.packets, last); // monotonic across snapshots
        last = s.packets;
        pipe.pipelineStats();
    }
    feeder.join();
    EXPECT_EQ(pipe.mergedStats().packets,
              static_cast<uint64_t>(kRounds) * fx.kdd_trace.size());
}

TEST(Pipeline, LifecycleChurnUnderLiveTrafficStaysConsistent)
{
    // One feeder thread streams segments while the control thread
    // installs/updates/replaces/removes tenants through the
    // end-of-burst hook. TSan referees; the asserts pin accounting.
    const auto &fx = fixture();
    PipelineConfig pc;
    pc.workers = 2;
    pc.ring_capacity = fx.kdd_trace.size();
    PipelineFarm pipe({}, pc);
    const auto anom = pipe.installApp(core::makeAnomalyDnnApp(fx.dnn));

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> fed{0};
    std::thread feeder([&] {
        std::vector<core::SwitchDecision> dec(fx.kdd_trace.size());
        while (!stop.load(std::memory_order_acquire)) {
            pipe.processTrace(packetSpan(fx.kdd_trace),
                              decisionSpan(dec));
            fed.fetch_add(fx.kdd_trace.size(),
                          std::memory_order_relaxed);
        }
    });

    for (int round = 0; round < 4; ++round) {
        const auto id = pipe.installApp(core::makeIotFlowApp(fx.iot));
        pipe.updateWeights(anom, fx.dnn.graph);
        pipe.replaceApp(id, core::makeIotFlowApp(fx.iot));
        pipe.mergedStats();
        const auto retired = pipe.removeApp(id);
        EXPECT_EQ(retired.size(), pipe.workers());
        EXPECT_EQ(pipe.appCount(), 1u);
    }
    stop.store(true, std::memory_order_release);
    feeder.join();

    const PipelineStats ps = pipe.pipelineStats();
    EXPECT_EQ(ps.fed, fed.load());
    EXPECT_EQ(ps.completed + ps.dispatch_drops, ps.fed);
    EXPECT_TRUE(pipe.installed(anom));
    EXPECT_EQ(pipe.appCount(), 1u);
    EXPECT_EQ(pipe.mergedStats().packets, ps.completed);
}
