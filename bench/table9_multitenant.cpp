/**
 * @file
 * Extension bench (Table 9): N applications co-resident on one serving
 * stack — per-tenant throughput, latency, accuracy, and isolation.
 *
 * Where ablation_multimodel shows two *graphs* sharing one MapReduce
 * grid, this bench exercises the full multi-tenant serving path: the
 * anomaly DNN and the IoT classifier installed side by side in one
 * TaurusSwitch (and one SwitchFarm), a per-flow dispatch MAT routing
 * each packet to its tenant, per-tenant statistics, and per-tenant
 * weight hot-swaps. It measures
 *
 *  - per-tenant modeled ML latency and switch-path accuracy on an
 *    interleaved two-app mix, against each tenant's solo-install run
 *    (parity must be exact: co-residency costs one dispatch stage of
 *    latency and zero accuracy);
 *  - simulator throughput of the co-resident switch and farm;
 *  - isolation: hot-swapping the anomaly tenant's weights mid-trace,
 *    and doubling its traffic, must leave every IoT decision
 *    bit-identical (`isolation_violations` == 0).
 */

#include "harness.hpp"

#include <algorithm>

#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "net/iot.hpp"
#include "net/kdd.hpp"
#include "taurus/app.hpp"
#include "taurus/experiment.hpp"
#include "taurus/farm.hpp"
#include "util/table.hpp"

TAURUS_BENCH(table9_multitenant, "Table 9 (extension)",
             "multi-tenant serving: per-app throughput/latency + isolation")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Multi-tenant serving: anomaly DNN + IoT classifier on one "
          "switch\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(3000, 600));
    const auto iot = models::trainIotFlowMlp(1, ctx.size(2500, 500));
    net::KddConfig kc;
    kc.connections = ctx.size(3000, 500);
    net::KddGenerator gen(kc, 17);
    const auto kdd_trace = gen.expandToPackets(gen.sampleConnections());

    const core::AppArtifact anomaly_app = core::makeAnomalyDnnApp(dnn);
    const core::AppArtifact iot_app = core::makeIotFlowApp(iot);
    const auto merged =
        core::mergeTracesByTime(kdd_trace, iot_app.eval_trace);
    ctx.metric("mixed_trace_packets", merged.size());

    // Solo references: each tenant alone on its own switch.
    core::AppArtifact solo_anom = anomaly_app;
    solo_anom.eval_trace = kdd_trace;
    const auto ref_anom = core::runApp(solo_anom);
    const auto ref_iot = core::runApp(iot_app);

    // -----------------------------------------------------------------
    // Co-resident switch: per-tenant accuracy/latency + throughput.
    // -----------------------------------------------------------------
    core::TaurusSwitch sw;
    const core::AppId anom_id = sw.installApp(anomaly_app);
    const core::AppId iot_id = sw.installApp(iot_app);
    std::vector<core::SwitchDecision> decisions(merged.size());

    const bench::Timer sw_timer;
    sw.processBatch(
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        util::Span<core::SwitchDecision>(decisions.data(),
                                         decisions.size()));
    ctx.throughput("multitenant_switch", double(merged.size()),
                   sw_timer.elapsedSec());

    const auto co_anom = core::scoreApp(
        util::Span<const core::SwitchDecision>(decisions.data(),
                                               decisions.size()),
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        anom_id, 2);
    const auto co_iot = core::scoreApp(
        util::Span<const core::SwitchDecision>(decisions.data(),
                                               decisions.size()),
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        iot_id, iot_app.num_classes);

    TablePrinter t({"Tenant", "Packets", "Acc %", "Solo acc %",
                    "ML ns", "Solo ML ns"});
    auto row = [&](const std::string &n, const core::AppRunResult &co,
                   const core::AppRunResult &solo) {
        t.addRow({n, std::to_string(co.packets),
                  TablePrinter::num(co.accuracy_pct, 1),
                  TablePrinter::num(solo.accuracy_pct, 1),
                  TablePrinter::num(co.mean_ml_latency_ns, 0),
                  TablePrinter::num(solo.mean_ml_latency_ns, 0)});
    };
    row("anomaly_dnn", co_anom, ref_anom);
    row("iot_flow_mlp", co_iot, ref_iot);
    t.print(os);

    ctx.metric("anom_coresident_accuracy_pct", co_anom.accuracy_pct);
    ctx.metric("anom_solo_accuracy_pct", ref_anom.accuracy_pct);
    ctx.metric("iot_coresident_accuracy_pct", co_iot.accuracy_pct);
    ctx.metric("iot_solo_accuracy_pct", ref_iot.accuracy_pct);
    ctx.metric("anom_ml_latency_ns", co_anom.mean_ml_latency_ns);
    ctx.metric("iot_ml_latency_ns", co_iot.mean_ml_latency_ns);
    // Exact-parity flags (the dispatch stage adds latency, never loss).
    ctx.metric("accuracy_parity_exact",
               int64_t{co_anom.accuracy_pct == ref_anom.accuracy_pct &&
                       co_iot.accuracy_pct == ref_iot.accuracy_pct});
    ctx.metric("coresidency_overhead_ns",
               co_iot.mean_ml_latency_ns - ref_iot.mean_ml_latency_ns);
    os << "\nCo-residency costs one dispatch stage (12.5 ns) plus any "
          "spatial-placement contention, and zero accuracy.\n";

    // Per-tenant placement on the shared block.
    const auto rep = compiler::analyzeApps(sw.programs());
    ctx.metric("total_cus", int64_t{rep.total_cus});
    ctx.metric("grid_cus", int64_t{rep.grid_cus});
    ctx.metric("fits_concurrently", int64_t{rep.fits_concurrently});
    ctx.metric("min_gpktps", rep.min_gpktps);

    // -----------------------------------------------------------------
    // Spatial vs private hosting: under the default Auto policy the
    // admission controller placed both tenants in disjoint regions of
    // one grid; a PrivateOnly switch hosts the same tenants as two
    // whole-grid time-multiplexed programs (the pre-spatial behavior).
    // Decisions must be bit-identical — placement moves units, never
    // values — and the per-tenant latency/II deltas are the contention
    // cost of sharing the fabric spatially.
    // -----------------------------------------------------------------
    core::SwitchConfig priv_cfg;
    priv_cfg.placement = core::PlacementPolicy::PrivateOnly;
    core::TaurusSwitch priv_sw(priv_cfg);
    priv_sw.installApp(anomaly_app);
    priv_sw.installApp(iot_app);
    std::vector<core::SwitchDecision> priv_dec(merged.size());
    priv_sw.processBatch(
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        util::Span<core::SwitchDecision>(priv_dec.data(),
                                         priv_dec.size()));
    size_t placement_mismatches = 0;
    for (size_t i = 0; i < merged.size(); ++i)
        placement_mismatches +=
            decisions[i].score != priv_dec[i].score ||
            decisions[i].class_id != priv_dec[i].class_id ||
            decisions[i].flagged != priv_dec[i].flagged ||
            decisions[i].app_id != priv_dec[i].app_id;
    ctx.metric("placement_spatial",
               int64_t{sw.placementMode() ==
                       core::PlacementMode::Spatial});
    ctx.metric("spatial_vs_private_decision_mismatches",
               placement_mismatches);

    const auto &prep = sw.placementReport();
    os << "\nSpatial vs private hosting (contention per tenant):\n";
    TablePrinter pt({"Tenant", "Region", "CUs", "MUs", "Spatial ns",
                     "Private ns", "Contention ns", "II", "Priv II",
                     "Area mm^2"});
    for (size_t i = 0; i < prep.tenants.size(); ++i) {
        const auto &tr = prep.tenants[i];
        const double area =
            i < rep.apps.size() ? rep.apps[i].area_mm2 : 0.0;
        pt.addRow({tr.name,
                   "[" + std::to_string(tr.region.col_begin) + "," +
                       std::to_string(
                           tr.region.endFor(prep.spec.cols)) +
                       ")",
                   std::to_string(tr.cus), std::to_string(tr.mus),
                   TablePrinter::num(tr.latency_ns, 0),
                   TablePrinter::num(tr.solo_latency_ns, 0),
                   TablePrinter::num(tr.contentionNs(), 0),
                   std::to_string(tr.ii_cycles),
                   std::to_string(tr.solo_ii_cycles),
                   TablePrinter::num(area, 2)});
        const std::string slug = bench::slug(tr.name);
        ctx.metric(slug + "_spatial_latency_ns", tr.latency_ns);
        ctx.metric(slug + "_private_latency_ns", tr.solo_latency_ns);
        ctx.metric(slug + "_contention_ns", tr.contentionNs());
        ctx.metric(slug + "_spatial_ii", int64_t{tr.ii_cycles});
        ctx.metric(slug + "_spatial_gpktps", tr.gpktps);
        ctx.metric(slug + "_area_mm2", area);
    }
    pt.print(os);
    ctx.metric("worst_contention_ns", prep.worst_contention_ns);
    ctx.metric("placement_search_moves", int64_t{prep.search_moves});
    os << "\n" << prep.summary() << "\n"
       << placement_mismatches
       << " of " << merged.size()
       << " decisions diverged between spatial and private hosting "
          "(must be 0: placement moves units, never values).\n";

    // -----------------------------------------------------------------
    // Isolation 1: hot-swap the anomaly tenant mid-trace; every IoT
    // decision (score, class, latency) must be bit-identical.
    // -----------------------------------------------------------------
    const auto fresh = models::trainAnomalyDnn(99, ctx.size(2000, 400));
    core::TaurusSwitch swapped;
    swapped.installApp(anomaly_app);
    swapped.installApp(iot_app);
    std::vector<core::SwitchDecision> after(merged.size());
    const size_t half = merged.size() / 2;
    for (size_t i = 0; i < half; ++i)
        after[i] = swapped.process(merged[i]);
    swapped.updateWeights(anom_id, fresh.graph);
    for (size_t i = half; i < merged.size(); ++i)
        after[i] = swapped.process(merged[i]);

    size_t swap_violations = 0, anom_changed = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
        if (decisions[i].app_id == iot_id)
            swap_violations +=
                after[i].score != decisions[i].score ||
                after[i].class_id != decisions[i].class_id ||
                after[i].flagged != decisions[i].flagged ||
                after[i].latency_ns != decisions[i].latency_ns;
        else
            anom_changed += after[i].score != decisions[i].score ||
                            after[i].flagged != decisions[i].flagged;
    }
    ctx.metric("hotswap_isolation_violations", swap_violations);
    ctx.metric("hotswap_swapped_tenant_changed", anom_changed);

    // -----------------------------------------------------------------
    // Isolation 2: a 2x traffic burst on the anomaly tenant; the IoT
    // tenant's decision stream must be bit-identical.
    // -----------------------------------------------------------------
    core::TaurusSwitch bursty;
    bursty.installApp(anomaly_app);
    bursty.installApp(iot_app);
    std::vector<core::SwitchDecision> burst_iot, calm_iot;
    for (size_t i = 0; i < merged.size(); ++i)
        if (decisions[i].app_id == iot_id)
            calm_iot.push_back(decisions[i]);
    for (const auto &tp : merged) {
        const auto d = bursty.process(tp);
        if (d.app_id == iot_id)
            burst_iot.push_back(d);
        else
            bursty.process(tp); // the burst: every anomaly packet twice
    }
    size_t burst_violations = calm_iot.size() != burst_iot.size();
    for (size_t i = 0;
         i < std::min(calm_iot.size(), burst_iot.size()); ++i)
        burst_violations += burst_iot[i].score != calm_iot[i].score ||
                            burst_iot[i].class_id != calm_iot[i].class_id ||
                            burst_iot[i].latency_ns != calm_iot[i].latency_ns;
    ctx.metric("burst_isolation_violations", burst_violations);

    os << "Isolation: " << swap_violations
       << " IoT decisions diverged across the anomaly hot-swap, "
       << burst_violations << " across a 2x anomaly burst (both must "
       << "be 0; the swap changed " << anom_changed
       << " anomaly decisions).\n";

    // -----------------------------------------------------------------
    // Co-resident farm throughput with per-tenant merged stats.
    // -----------------------------------------------------------------
    core::SwitchFarm farm({}, 0);
    farm.installApp(anomaly_app);
    farm.installApp(iot_app);
    std::vector<core::SwitchDecision> farm_out(merged.size());
    const size_t target = ctx.size(200000, 1000);
    size_t done = 0;
    const bench::Timer farm_timer;
    while (done < target) {
        const size_t n = std::min(merged.size(), target - done);
        farm.processTrace(
            util::Span<const net::TracePacket>(merged.data(), n),
            util::Span<core::SwitchDecision>(farm_out.data(), n));
        done += n;
    }
    ctx.throughput("multitenant_farm", double(done),
                   farm_timer.elapsedSec());
    ctx.metric("farm_workers", farm.workers());
    ctx.metric("farm_tenant0_packets", farm.mergedStats(anom_id).packets);
    ctx.metric("farm_tenant1_packets", farm.mergedStats(iot_id).packets);

    os << "\nFarm (" << farm.workers() << " workers): " << done
       << " packets, per-tenant split "
       << farm.mergedStats(anom_id).packets << " / "
       << farm.mergedStats(iot_id).packets << ".\n";
}
