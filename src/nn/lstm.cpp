#include "nn/lstm.hpp"

#include <cassert>
#include <cmath>

namespace taurus::nn {

Lstm::Lstm(size_t input_dim, size_t units, size_t outputs, util::Rng &rng)
    : input_dim_(input_dim), units_(units)
{
    const size_t concat = input_dim + units;
    wi_ = Matrix::glorot(units, concat, rng);
    wf_ = Matrix::glorot(units, concat, rng);
    wo_ = Matrix::glorot(units, concat, rng);
    wg_ = Matrix::glorot(units, concat, rng);
    bi_.assign(units, 0.0f);
    bf_.assign(units, 1.0f); // standard forget-gate bias init
    bo_.assign(units, 0.0f);
    bg_.assign(units, 0.0f);
    head_ = Matrix::glorot(outputs, units, rng);
    head_b_.assign(outputs, 0.0f);
}

LstmState
Lstm::initialState() const
{
    return {Vector(units_, 0.0f), Vector(units_, 0.0f)};
}

Vector
Lstm::step(const Vector &x, LstmState &state) const
{
    assert(x.size() == input_dim_);
    Vector concat(input_dim_ + units_);
    for (size_t i = 0; i < input_dim_; ++i)
        concat[i] = x[i];
    for (size_t i = 0; i < units_; ++i)
        concat[input_dim_ + i] = state.h[i];

    Vector zi = wi_.matVec(concat);
    Vector zf = wf_.matVec(concat);
    Vector zo = wo_.matVec(concat);
    Vector zg = wg_.matVec(concat);
    for (size_t i = 0; i < units_; ++i) {
        const float gi =
            1.0f / (1.0f + std::exp(-(zi[i] + bi_[i])));
        const float gf =
            1.0f / (1.0f + std::exp(-(zf[i] + bf_[i])));
        const float go =
            1.0f / (1.0f + std::exp(-(zo[i] + bo_[i])));
        const float gg = std::tanh(zg[i] + bg_[i]);
        state.c[i] = gf * state.c[i] + gi * gg;
        state.h[i] = go * std::tanh(state.c[i]);
    }

    Vector z = head_.matVec(state.h);
    for (size_t i = 0; i < z.size(); ++i)
        z[i] += head_b_[i];
    return applyActivation(Activation::Softmax, z);
}

} // namespace taurus::nn
