/**
 * @file
 * Google-benchmark microbenchmarks of the simulator itself: packets/s
 * through the cycle simulator and the full TaurusSwitch pipeline. These
 * measure the *reproduction's* speed (how fast we can simulate), not
 * the modeled hardware (which is fixed at 1 GPkt/s by construction).
 */

#include <benchmark/benchmark.h>

#include "compiler/compile.hpp"
#include "hw/cycle_sim.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/switch.hpp"

namespace {

using namespace taurus;

const models::AnomalyDnn &
sharedDnn()
{
    static const models::AnomalyDnn dnn = models::trainAnomalyDnn(1, 2000);
    return dnn;
}

const std::vector<net::TracePacket> &
sharedTrace()
{
    static const std::vector<net::TracePacket> trace = [] {
        net::KddConfig cfg;
        cfg.connections = 4000;
        net::KddGenerator gen(cfg, 9);
        return gen.expandToPackets(gen.sampleConnections());
    }();
    return trace;
}

void
BM_CycleSimDnnInference(benchmark::State &state)
{
    const auto &dnn = sharedDnn();
    const auto prog = compiler::compile(dnn.graph);
    hw::CycleSim sim(prog);
    std::vector<int8_t> input(6, 42);
    for (auto _ : state) {
        benchmark::DoNotOptimize(sim.run({input}));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_CycleSimDnnInference);

void
BM_SwitchProcessPacket(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    core::TaurusSwitch sw;
    sw.installAnomalyModel(sharedDnn());
    size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(sw.process(trace[i]));
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_SwitchProcessPacket);

void
BM_ParserOnly(benchmark::State &state)
{
    const auto parser = pisa::Parser::standard();
    const auto pkt = pisa::fromTracePacket(sharedTrace().front());
    for (auto _ : state) {
        benchmark::DoNotOptimize(parser.parse(pkt));
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_ParserOnly);

void
BM_FlowTrackerObserve(benchmark::State &state)
{
    const auto &trace = sharedTrace();
    net::FlowTracker tracker;
    size_t i = 0;
    for (auto _ : state) {
        tracker.observe(trace[i]);
        benchmark::DoNotOptimize(tracker.dnnFeatures());
        i = (i + 1) % trace.size();
    }
    state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}
BENCHMARK(BM_FlowTrackerObserve);

} // namespace

BENCHMARK_MAIN();
