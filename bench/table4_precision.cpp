/**
 * @file
 * Table 4: per-FU area and power at the target design (16 lanes, 4
 * stages) across fixed-point precisions.
 */

#include "harness.hpp"

#include "area/fu_model.hpp"
#include "util/table.hpp"

TAURUS_BENCH(table4_precision, "Table 4",
             "per-FU area and power across fixed-point precisions")
{
    using taurus::area::FuModel;
    using taurus::util::TablePrinter;
    auto &os = ctx.out();

    os << "Table 4: area and power scaling (per-FU) at 16 lanes x 4 "
          "stages\n"
          "Paper: fix8 670/456, fix16 1338/887, fix32 2949/2341 "
          "(um^2 / uW)\n\n";

    TablePrinter t({"Precision", "Area (um^2)", "Power (uW)"});
    for (int bits : {8, 16, 32}) {
        const double area = FuModel::fuAreaUm2(16, 4, bits);
        const double power = FuModel::fuPowerUw(16, 4, bits);
        ctx.metric("fix" + std::to_string(bits) + "_area_um2", area);
        ctx.metric("fix" + std::to_string(bits) + "_power_uw", power);
        t.addRow({"fix" + std::to_string(bits),
                  TablePrinter::num(area, 0), TablePrinter::num(power, 0)});
    }
    t.print(os);
}
