/**
 * @file
 * Ablation: PHV-interface FIFO depth and interconnect synchronization
 * cost — the latency model's two knobs (DESIGN.md Section 4). Sweeps
 * the staging FIFO depth and the per-movement handshake and reports
 * model latency sensitivity.
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "util/table.hpp"

TAURUS_BENCH(ablation_fifo_depth, "Table 6 ablation",
             "interface FIFO depth and synchronization-cost sweep")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Ablation: interface FIFO depth and per-movement "
          "synchronization cost\n\n";

    const size_t conns = ctx.size(3000, 800);
    const auto dnn = models::trainAnomalyDnn(1, conns);
    const auto km = models::trainIotKmeans(1, conns);

    TablePrinter t({"FIFO depth", "Route sync", "KMeans ns", "DNN ns"});
    for (int fifo : {2, 4, 8}) {
        for (int sync : {2, 4, 6}) {
            compiler::Options opts;
            opts.timing.ingress_cycles = fifo;
            opts.timing.egress_cycles = fifo;
            opts.timing.route_base = sync;
            const auto r_km = compiler::analyze(
                compiler::compile(km.lowered.graph, opts));
            const auto r_dnn =
                compiler::analyze(compiler::compile(dnn.graph, opts));
            if (fifo == 4 && sync == 4) {
                ctx.metric("default_kmeans_latency_ns",
                           r_km.latency_ns);
                ctx.metric("default_dnn_latency_ns", r_dnn.latency_ns);
            }
            t.addRow({std::to_string(fifo), std::to_string(sync),
                      TablePrinter::num(r_km.latency_ns, 0),
                      TablePrinter::num(r_dnn.latency_ns, 0)});
        }
    }
    t.print(os);

    os << "\nThe deep model amplifies the per-movement cost (more "
          "producer->consumer edges on the critical path); the "
          "interface FIFOs are a constant.\nThe calibrated defaults "
          "(depth 4, sync 4) reproduce Table 6.\n";
}
