/**
 * @file
 * KMeans clustering (Lloyd's algorithm with kmeans++ seeding) used by the
 * IoT traffic-classification application (paper Section 5.1.2: "KMeans
 * clustering using 11 features and five categories").
 */

#pragma once

#include <vector>

#include "nn/dataset.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace taurus::nn {

/** Trained KMeans model with squared-Euclidean assignment. */
class KMeans
{
  public:
    /** Fit k centers on the dataset's features. */
    static KMeans fit(const std::vector<Vector> &points, int k, int iters,
                      util::Rng &rng);

    /** Index of the nearest center. */
    int predict(const Vector &x) const;

    /** Squared distance to each center. */
    Vector distances(const Vector &x) const;

    const std::vector<Vector> &centers() const { return centers_; }

    /** Sum of squared distances to assigned centers. */
    double inertia(const std::vector<Vector> &points) const;

    /**
     * Purity-based classification accuracy: each cluster predicts its
     * majority training label (the standard way to score clustering as a
     * classifier for the IoT categories).
     */
    double labelAccuracy(const Dataset &train, const Dataset &test);

  private:
    std::vector<Vector> centers_;
    std::vector<int> cluster_label_;
};

} // namespace taurus::nn
