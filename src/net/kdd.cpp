#include "net/kdd.hpp"

#include <algorithm>
#include <cmath>

namespace taurus::net {

namespace {

/** Address blocks keep benign, attacker, and server IPs disjoint. */
constexpr uint32_t kBenignBase = 0x0a000100;   // 10.0.1.0/24-ish
constexpr uint32_t kAttackerBase = 0x0a000200; // 10.0.2.0
constexpr uint32_t kServerBase = 0x0a001000;   // 10.0.16.0
constexpr uint32_t kSpoofBase = 0x0c000000;    // spoofed flood sources
constexpr int kServerCount = 16;

/** Max-segment-size used to derive packet counts from byte volumes. */
constexpr uint64_t kMss = 1000;

uint16_t
benignServicePort(util::Rng &rng)
{
    const double r = rng.uniform();
    if (r < 0.45)
        return rng.bernoulli(0.5) ? 80 : 443;
    if (r < 0.65)
        return 53;
    if (r < 0.75)
        return 22;
    if (r < 0.85)
        return 25;
    return 21;
}

} // namespace

const char *
toString(AttackClass c)
{
    switch (c) {
      case AttackClass::Benign:
        return "benign";
      case AttackClass::Dos:
        return "dos";
      case AttackClass::Probe:
        return "probe";
      case AttackClass::R2l:
        return "r2l";
      case AttackClass::U2r:
        return "u2r";
    }
    return "?";
}

KddConfig
shiftedAttackMix(KddConfig base)
{
    // Attack mass: DoS-dominant -> probe-dominant (scans). The
    // benign-overlapping families (R2L/U2R) keep roughly their original
    // share: the shift moves the distribution, not the irreducible
    // error, so a model retrained on the shifted telemetry can recover
    // to its pre-shift operating point.
    base.dos_weight = 0.20;
    base.probe_weight = 0.65;
    base.r2l_weight = 0.10;
    base.u2r_weight = 0.05;
    // Benign baseline drift: the same connection volume now comes from a
    // quarter of the hosts, so per-source windows look "hotter" than
    // anything in the original training distribution.
    base.benign_hosts = std::max(4, base.benign_hosts / 4);
    return base;
}

std::vector<TracePacket>
trimTrace(std::vector<TracePacket> trace, double t_max)
{
    // Traces are time-sorted; the tail is one contiguous suffix.
    auto it = trace.begin();
    while (it != trace.end() && it->time_s <= t_max)
        ++it;
    trace.erase(it, trace.end());
    return trace;
}

KddGenerator::KddGenerator(KddConfig cfg, uint64_t seed)
    : cfg_(cfg), rng_(seed)
{
}

ConnRecord
KddGenerator::sampleBenign(double start_s)
{
    ConnRecord r;
    r.attack = AttackClass::Benign;
    r.start_s = start_s;
    r.flow.src_ip =
        kBenignBase + static_cast<uint32_t>(
                          rng_.uniformInt(0, cfg_.benign_hosts - 1));
    r.flow.dst_ip = kServerBase + static_cast<uint32_t>(
                                      rng_.uniformInt(0, kServerCount - 1));
    r.flow.src_port = next_ephemeral_++;
    r.flow.dst_port = benignServicePort(rng_);
    r.flow.proto = r.flow.dst_port == 53 ? kProtoUdp : kProtoTcp;

    switch (r.flow.dst_port) {
      case 53: // dns: one small datagram
        r.duration_s = 0.001 + rng_.exponential(100.0);
        r.src_bytes = static_cast<uint64_t>(rng_.uniformInt(40, 120));
        break;
      case 22: // ssh: long interactive
        r.duration_s = std::min(0.5 + rng_.exponential(1.5), 3.0);
        r.src_bytes = static_cast<uint64_t>(
            std::exp(rng_.gaussian(7.5, 1.2)));
        break;
      default: // web/mail/ftp: short-to-medium transfers
        r.duration_s = std::min(0.01 + rng_.exponential(2.0), 3.0);
        r.src_bytes = static_cast<uint64_t>(
            std::exp(rng_.gaussian(6.5, 1.5)));
        break;
    }
    r.src_bytes = std::min<uint64_t>(r.src_bytes, 2'000'000);
    r.fwd_pkts = static_cast<int>(
        std::max<uint64_t>(1, r.src_bytes / kMss + 1));
    // Rare legitimate urgent data (telnet-era artifacts).
    r.urgent = rng_.bernoulli(0.004) ? 1 : 0;
    // Occasional refused/unanswered handshakes: benign SYN-only flows
    // are what keep the syn-error feature from being a perfect detector.
    if (r.flow.proto == kProtoTcp && rng_.bernoulli(0.02)) {
        r.syn_only = true;
        r.fwd_pkts = 1;
        r.src_bytes = 40;
        r.duration_s = 0.001;
    }
    return r;
}

ConnRecord
KddGenerator::sampleDos(double start_s, uint32_t attacker, uint32_t victim)
{
    ConnRecord r;
    r.attack = AttackClass::Dos;
    r.start_s = start_s;
    r.flow.src_ip = attacker;
    r.flow.dst_ip = victim;
    r.flow.src_port = next_ephemeral_++;
    r.flow.dst_port = 80;
    r.flow.proto = kProtoTcp;
    r.duration_s = rng_.exponential(200.0); // near-instant
    r.syn_only = rng_.bernoulli(0.9);
    r.fwd_pkts = static_cast<int>(rng_.uniformInt(1, 3));
    r.src_bytes = static_cast<uint64_t>(40 * r.fwd_pkts);
    return r;
}

ConnRecord
KddGenerator::sampleProbe(double start_s, uint32_t attacker,
                          uint32_t victim, uint16_t port)
{
    ConnRecord r;
    r.attack = AttackClass::Probe;
    r.start_s = start_s;
    r.flow.src_ip = attacker;
    r.flow.dst_ip = victim;
    r.flow.src_port = next_ephemeral_++;
    r.flow.dst_port = port;
    r.flow.proto = kProtoTcp;
    r.duration_s = rng_.exponential(500.0);
    r.syn_only = rng_.bernoulli(0.8); // most probed ports are closed
    r.fwd_pkts = 1 + (rng_.bernoulli(0.3) ? 1 : 0);
    r.src_bytes = static_cast<uint64_t>(40 * r.fwd_pkts);
    return r;
}

ConnRecord
KddGenerator::sampleR2l(double start_s, uint32_t attacker)
{
    // Password guessing / unauthorized transfers: shaped like benign
    // ssh/ftp sessions, which is why models miss most of them.
    ConnRecord r;
    r.attack = AttackClass::R2l;
    r.start_s = start_s;
    r.flow.src_ip = attacker;
    r.flow.dst_ip = kServerBase + static_cast<uint32_t>(
                                      rng_.uniformInt(0, kServerCount - 1));
    r.flow.src_port = next_ephemeral_++;
    r.flow.dst_port = rng_.bernoulli(0.6) ? 22 : 21;
    r.flow.proto = kProtoTcp;
    r.duration_s = std::min(0.3 + rng_.exponential(1.2), 3.0);
    r.src_bytes = static_cast<uint64_t>(std::exp(rng_.gaussian(7.0, 1.0)));
    r.fwd_pkts = static_cast<int>(
        std::max<uint64_t>(2, r.src_bytes / kMss + 1));
    r.urgent = rng_.bernoulli(0.10) ? 1 : 0;
    return r;
}

ConnRecord
KddGenerator::sampleU2r(double start_s, uint32_t attacker)
{
    // Long interactive root session: benign-ssh-shaped with occasional
    // urgent data and heavier uploads.
    ConnRecord r;
    r.attack = AttackClass::U2r;
    r.start_s = start_s;
    r.flow.src_ip = attacker;
    r.flow.dst_ip = kServerBase;
    r.flow.src_port = next_ephemeral_++;
    r.flow.dst_port = 22;
    r.flow.proto = kProtoTcp;
    r.duration_s = std::min(1.0 + rng_.exponential(0.8), 4.0);
    r.src_bytes = static_cast<uint64_t>(std::exp(rng_.gaussian(8.5, 1.0)));
    r.fwd_pkts = static_cast<int>(
        std::max<uint64_t>(3, r.src_bytes / kMss + 1));
    r.urgent = rng_.bernoulli(0.2) ? 1 : 0;
    return r;
}

std::vector<ConnRecord>
KddGenerator::sampleConnections()
{
    std::vector<ConnRecord> out;
    out.reserve(cfg_.connections);

    const std::vector<double> family = {cfg_.dos_weight, cfg_.probe_weight,
                                        cfg_.r2l_weight, cfg_.u2r_weight};

    // Attack traffic arrives in episodes: a DoS flood or a port scan is a
    // cluster of connections from one attacker in a sub-second window.
    // Episodes are what make the sliding-window source features light up.
    size_t attacks_left = static_cast<size_t>(
        static_cast<double>(cfg_.connections) * cfg_.anomaly_fraction);
    const size_t benign_count = cfg_.connections - attacks_left;

    // Benign traffic mixes independent clients with NAT/proxy bursts:
    // many connections from one source IP in a short window, which is
    // exactly what the sliding-window source features confuse with a
    // low-rate flood.
    for (size_t i = 0; i < benign_count;) {
        if (rng_.bernoulli(0.10) && benign_count - i > 8) {
            const uint32_t src =
                kBenignBase +
                static_cast<uint32_t>(
                    rng_.uniformInt(0, cfg_.benign_hosts - 1));
            const double t0 =
                rng_.uniform(0.0, cfg_.trace_duration_s * 0.9);
            const size_t burst = std::min<size_t>(
                benign_count - i,
                static_cast<size_t>(rng_.uniformInt(10, 40)));
            for (size_t j = 0; j < burst; ++j) {
                ConnRecord r =
                    sampleBenign(t0 + rng_.uniform(0.0, 0.6));
                r.flow.src_ip = src;
                out.push_back(std::move(r));
            }
            i += burst;
        } else {
            out.push_back(
                sampleBenign(rng_.uniform(0.0, cfg_.trace_duration_s)));
            ++i;
        }
    }

    // Family weights are connection mass, not episode counts: a DoS
    // episode holds ~100 connections while an R2L episode holds ~4, so
    // drawing episode *types* from the weights would starve the rare
    // classes of packet mass. Budget each family separately instead.
    const double wsum = cfg_.dos_weight + cfg_.probe_weight +
                        cfg_.r2l_weight + cfg_.u2r_weight;
    std::vector<size_t> budget(4);
    for (size_t f = 0; f < 4; ++f)
        budget[f] = static_cast<size_t>(
            static_cast<double>(attacks_left) * family[f] / wsum);
    budget[0] += attacks_left - (budget[0] + budget[1] + budget[2] +
                                 budget[3]); // rounding remainder to DoS

    uint32_t episode_counter = 0;
    while (budget[0] + budget[1] + budget[2] + budget[3] > 0) {
        // Volumetric attackers churn through source addresses (botnets,
        // spoofed ranges): each episode gets a fresh IP, so a per-IP
        // control-plane rule only covers the episode that triggered it.
        const uint32_t attacker = kAttackerBase + episode_counter++;
        const double t0 = rng_.uniform(0.0, cfg_.trace_duration_s * 0.9);

        // Pick a family that still has budget, proportionally.
        std::vector<double> open;
        for (size_t f = 0; f < 4; ++f)
            open.push_back(budget[f] > 0 ? family[f] : 0.0);
        const size_t fam = rng_.categorical(open);
        size_t &attacks_left = budget[fam];

        switch (fam) {
          case 0: { // DoS flood episode
            // Intensity varies: stealthy low-rate floods come from one
            // (churning) host and overlap benign connection rates;
            // intense volumetric floods spoof a fresh source address
            // per connection, which is what makes the control plane's
            // per-IP rules useless against them (Section 5.2.2).
            const bool stealthy = rng_.bernoulli(0.45);
            const size_t burst = std::min<size_t>(
                attacks_left,
                static_cast<size_t>(rng_.uniformInt(stealthy ? 4 : 60,
                                                    stealthy ? 12 : 220)));
            const double span = stealthy ? 2.0 : 0.4;
            const uint32_t victim = kServerBase + static_cast<uint32_t>(
                                                      rng_.uniformInt(0, 3));
            for (size_t i = 0; i < burst; ++i) {
                const uint32_t src =
                    stealthy ? attacker
                             : kSpoofBase +
                                   static_cast<uint32_t>(rng_.uniformInt(
                                       0, (1 << 20) - 1));
                out.push_back(
                    sampleDos(t0 + rng_.uniform(0.0, span), src,
                              victim));
            }
            attacks_left -= burst;
            break;
          }
          case 1: { // port-scan episode
            const size_t burst = std::min<size_t>(
                attacks_left, static_cast<size_t>(rng_.uniformInt(15, 60)));
            const uint32_t victim = kServerBase + static_cast<uint32_t>(
                                                      rng_.uniformInt(0, 7));
            uint16_t port = static_cast<uint16_t>(rng_.uniformInt(1, 1024));
            for (size_t i = 0; i < burst; ++i) {
                out.push_back(sampleProbe(t0 + rng_.uniform(0.0, 2.0),
                                          attacker, victim, port));
                port = static_cast<uint16_t>(port + rng_.uniformInt(1, 7));
            }
            attacks_left -= burst;
            break;
          }
          case 2: { // a few R2L attempts from a compromised client
            const uint32_t client =
                kBenignBase +
                static_cast<uint32_t>(
                    rng_.uniformInt(0, cfg_.benign_hosts - 1));
            const size_t burst = std::min<size_t>(
                attacks_left, static_cast<size_t>(rng_.uniformInt(2, 6)));
            for (size_t i = 0; i < burst; ++i)
                out.push_back(sampleR2l(t0 + rng_.uniform(0.0, 0.5),
                                        client));
            attacks_left -= burst;
            break;
          }
          default: { // one U2R session from a compromised client
            const uint32_t client =
                kBenignBase +
                static_cast<uint32_t>(
                    rng_.uniformInt(0, cfg_.benign_hosts - 1));
            out.push_back(sampleU2r(t0, client));
            --attacks_left;
            break;
          }
        }
    }

    std::sort(out.begin(), out.end(),
              [](const ConnRecord &a, const ConnRecord &b) {
                  return a.start_s < b.start_s;
              });
    return out;
}

std::vector<TracePacket>
KddGenerator::expandToPackets(const std::vector<ConnRecord> &records)
{
    std::vector<TracePacket> trace;
    for (size_t ci = 0; ci < records.size(); ++ci) {
        const ConnRecord &r = records[ci];
        const int n = std::max(1, r.fwd_pkts);
        uint64_t bytes_left = std::max<uint64_t>(r.src_bytes, 40);
        int urgent_left = r.urgent;
        for (int p = 0; p < n; ++p) {
            TracePacket pkt;
            pkt.conn_id = static_cast<int32_t>(ci);
            pkt.flow = r.flow;
            pkt.anomalous = r.anomalous();
            pkt.class_label = r.anomalous() ? 1 : 0;
            // Packets spread over the duration; the handshake packet
            // leads at t0.
            pkt.time_s =
                r.start_s +
                (n == 1 ? 0.0
                        : r.duration_s * static_cast<double>(p) /
                              static_cast<double>(n));
            pkt.syn = (p == 0 && r.flow.proto == kProtoTcp);
            pkt.fin = (p == n - 1 && r.flow.proto == kProtoTcp &&
                       !r.syn_only);
            const uint64_t chunk =
                std::min<uint64_t>(bytes_left, kMss);
            // Wire size: payload + Ethernet/IP/TCP headers (54 B), the
            // same length the switch's parser will report as PktLen.
            pkt.size_bytes =
                static_cast<uint16_t>(std::max<uint64_t>(54, chunk + 54));
            bytes_left -= chunk;
            // URG-flagged packets cluster mid-connection.
            if (urgent_left > 0 && p > 0) {
                pkt.urg = true;
                --urgent_left;
            }
            trace.push_back(pkt);
        }
    }
    std::stable_sort(trace.begin(), trace.end(),
                     [](const TracePacket &a, const TracePacket &b) {
                         return a.time_s < b.time_s;
                     });
    return trace;
}

nn::Dataset
KddGenerator::packetDataset(const std::vector<TracePacket> &trace,
                            size_t stride, bool svm_features) const
{
    FlowTracker tracker;
    nn::Dataset data;
    size_t i = 0;
    for (const TracePacket &pkt : trace) {
        tracker.observe(pkt);
        if (i++ % std::max<size_t>(stride, 1) != 0)
            continue;
        data.add(svm_features ? tracker.svmFeatures()
                              : tracker.dnnFeatures(),
                 pkt.anomalous ? 1 : 0);
    }
    return data;
}

nn::Dataset
KddGenerator::dataset(size_t stride, bool svm_features)
{
    const auto records = sampleConnections();
    const auto trace = expandToPackets(records);
    return packetDataset(trace, stride, svm_features);
}

} // namespace taurus::net
