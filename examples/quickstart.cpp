/**
 * @file
 * Quickstart: train the anomaly-detection DNN, install it into a Taurus
 * switch, and make per-packet decisions at nanosecond latency.
 *
 * This is the 60-second tour of the library: the model zoo trains and
 * quantizes a model, the compiler places it on the MapReduce grid, and
 * TaurusSwitch runs the full Figure-6 pipeline per packet.
 */

#include <iostream>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/switch.hpp"

int
main()
{
    using namespace taurus;

    // 1. Train + quantize + lower the anomaly DNN (6-12-6-3-1) on a
    //    synthetic NSL-KDD-style workload.
    std::cout << "Training the anomaly-detection DNN...\n";
    const models::AnomalyDnn dnn = models::trainAnomalyDnn(/*seed=*/1);
    std::cout << "  offline F1 (quantized, held-out): "
              << dnn.quant_test.f1 << "\n"
              << "  weight footprint: " << dnn.quantized.weightBytes()
              << " bytes\n";

    // 2. Install it into a Taurus switch: the compiler places the
    //    dataflow graph on the 12x10 CU/MU grid, and the preprocessing
    //    MATs are programmed from the model's feature transform.
    core::TaurusSwitch sw;
    sw.installAnomalyModel(dnn);
    std::cout << "\nInstalled on the MapReduce grid: "
              << sw.program().cusUsed() << " CUs, "
              << sw.program().musUsed() << " MUs\n"
              << "  ML-path latency:     " << sw.mlPathLatencyNs()
              << " ns\n"
              << "  bypass-path latency: " << sw.bypassPathLatencyNs()
              << " ns\n";

    // 3. Push traffic through it.
    net::KddConfig cfg;
    cfg.connections = 2000;
    net::KddGenerator gen(cfg, /*seed=*/7);
    const auto trace = gen.expandToPackets(gen.sampleConnections());

    uint64_t flagged = 0, anomalous = 0;
    for (const auto &pkt : trace) {
        const core::SwitchDecision d = sw.process(pkt);
        flagged += d.flagged;
        anomalous += pkt.anomalous;
    }
    std::cout << "\nProcessed " << trace.size() << " packets: flagged "
              << flagged << " (ground truth anomalous: " << anomalous
              << ")\n";
    std::cout << "Every decision was made per-packet, in "
              << sw.mlPathLatencyNs()
              << " ns — no control-plane round trip.\n";
    return 0;
}
