#include "runtime/drift.hpp"

#include <algorithm>

namespace taurus::runtime {

DriftMonitor::DriftMonitor(DriftConfig cfg) : cfg_(cfg)
{
    if (cfg_.window == 0)
        cfg_.window = 1;
}

void
DriftMonitor::record(int8_t score, bool flagged, bool truth)
{
    record(score, flagged ? 1 : 0, truth ? 1 : 0);
}

void
DriftMonitor::record(int8_t score, int32_t predicted, int32_t truth)
{
    score_stat_.add(static_cast<double>(score));
    if (cfg_.metric == DriftMetric::BinaryF1) {
        window_cm_.record(predicted != 0, truth != 0);
    } else {
        // Accuracy mode folds into the same matrix: every sample is a
        // "positive" and a correct verdict is a true positive, so
        // ConfusionMatrix::accuracy() == correct / total.
        window_cm_.record(predicted == truth, true);
    }
    if (window_cm_.total() >= cfg_.window)
        closeWindow();
}

void
DriftMonitor::closeWindow()
{
    ++windows_;
    last_f1_ = cfg_.metric == DriftMetric::BinaryF1 ? window_cm_.f1()
                                                    : window_cm_.accuracy();
    last_score_mean_ = score_stat_.mean();
    smoothed_f1_ = windows_ == 1
                       ? last_f1_
                       : smoothed_f1_ +
                             cfg_.ema_alpha * (last_f1_ - smoothed_f1_);

    if (windows_ <= cfg_.warmup_windows) {
        // Warmup windows only establish the healthy reference.
        reference_f1_ = std::max(reference_f1_, smoothed_f1_);
    } else if (drifted_) {
        if (smoothed_f1_ >= cfg_.recover_ratio * reference_f1_) {
            drifted_ = false;
            ++recoveries_;
            reference_f1_ = std::max(reference_f1_, smoothed_f1_);
        }
    } else if (smoothed_f1_ < cfg_.trigger_ratio * reference_f1_) {
        drifted_ = true;
        ++triggers_;
        // The reference is frozen while drifted: recovery is measured
        // against the pre-shift operating point, not a decayed one.
    } else {
        reference_f1_ = std::max(reference_f1_, smoothed_f1_);
    }

    window_cm_.reset();
    score_stat_.reset();
}

void
DriftMonitor::reset()
{
    window_cm_.reset();
    score_stat_.reset();
    last_f1_ = 0.0;
    smoothed_f1_ = 0.0;
    last_score_mean_ = 0.0;
    reference_f1_ = 0.0;
    windows_ = 0;
    triggers_ = 0;
    recoveries_ = 0;
    drifted_ = false;
}

} // namespace taurus::runtime
