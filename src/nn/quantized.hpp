/**
 * @file
 * Post-training int8 quantization of MLPs and the integer-only reference
 * inference path.
 *
 * This defines the exact numeric contract of the Taurus MapReduce block:
 * int8 weights/activations, int32 accumulation, requantization by a Q31
 * mantissa + shift, ReLU/LeakyReLU in the integer domain, and sigmoid/tanh
 * as 256-entry int8 lookup tables (the paper's ActLUT variant stores 1024
 * 8-bit entries; an int8-indexed domain needs only 256). The hw simulator
 * executes the same operations and is tested bit-exact against this class.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "fixed/quant.hpp"
#include "nn/mlp.hpp"

namespace taurus::nn {

/** One quantized dense layer. */
struct QuantizedDense
{
    size_t out = 0;
    size_t in = 0;
    std::vector<int8_t> w;    ///< row-major out x in
    std::vector<int32_t> b;   ///< at scale in_scale * w_scale
    fixed::Requantizer requant; ///< acc -> int8 pre-activation
    Activation act = Activation::None;
    std::vector<int8_t> lut;  ///< 256 entries for sigmoid/tanh, else empty
    double pre_scale = 1.0;   ///< real value of pre-activation code 1
    double out_scale = 1.0;   ///< real value of output code 1
};

/**
 * Reusable activation buffers for the allocation-free forward pass: two
 * vectors that double-buffer layer activations across the network, with
 * capacity retained across packets.
 */
struct ForwardScratch
{
    std::vector<int8_t> a;
    std::vector<int8_t> b;
    /** Quantized-input buffer for the forward(input, scratch) path. */
    std::vector<int8_t> q;
};

/** A quantized MLP with an integer-only forward pass. */
class QuantizedMlp
{
  public:
    /**
     * Quantize a trained float model. `calibration` provides representative
     * inputs used to pick activation ranges (absolute-max calibration).
     */
    static QuantizedMlp fromFloat(const Mlp &model,
                                  const std::vector<Vector> &calibration);

    /**
     * Quantize with a pinned input scale instead of deriving it from the
     * calibration set. The out-of-band weight-update path needs this: the
     * switch's preprocessing tables were burned in at install time, so a
     * retrained model must be quantized against the *installed* input
     * quantization or its first-layer weights would assume a scale the
     * data plane no longer produces.
     */
    static QuantizedMlp fromFloat(const Mlp &model,
                                  const std::vector<Vector> &calibration,
                                  const fixed::QuantParams &pinned_input);

    /** Quantize a real-valued input vector to the input scale. */
    std::vector<int8_t> quantizeInput(const Vector &input) const;

    /** Allocation-free overload: writes into `out` (resized in place,
     *  capacity retained across calls); bit-identical results. */
    void quantizeInput(const Vector &input, std::vector<int8_t> &out) const;

    /** Integer-only forward pass. */
    std::vector<int8_t> forwardInt(const std::vector<int8_t> &input) const;

    /**
     * Allocation-free forward pass: activations ping-pong between the
     * two scratch buffers instead of allocating one vector per layer.
     * Returns a reference into `scratch`, valid until the next call;
     * results are bit-identical to forwardInt().
     */
    const std::vector<int8_t> &forwardInt(const std::vector<int8_t> &input,
                                          ForwardScratch &scratch) const;

    /** Convenience: real input -> dequantized real output vector. */
    Vector forward(const Vector &input) const;

    /** Scratch-reusing forward: quantization and activations all live
     *  in `scratch` (only the returned Vector allocates). */
    Vector forward(const Vector &input, ForwardScratch &scratch) const;

    /** Predicted class (argmax / threshold on the dequantized output). */
    int predict(const Vector &input) const;
    int predict(const Vector &input, ForwardScratch &scratch) const;

    /** Real-valued anomaly score for binary models (sigmoid output). */
    double score(const Vector &input) const;

    double accuracy(const Dataset &data) const;

    const std::vector<QuantizedDense> &layers() const { return layers_; }
    const fixed::QuantParams &inputParams() const { return input_qp_; }
    Loss loss() const { return loss_; }

    /** Total weight bytes (the paper's 5.6 KB-style footprint metric). */
    size_t weightBytes() const;

  private:
    fixed::QuantParams input_qp_;
    std::vector<QuantizedDense> layers_;
    Loss loss_ = Loss::BinaryCrossEntropy;
};

/** Build a 256-entry int8 LUT for a scalar activation. */
std::vector<int8_t> buildActivationLut(Activation act, double in_scale,
                                       double out_scale);

} // namespace taurus::nn
