/**
 * @file
 * AppArtifact: the generic, self-describing data-plane application
 * bundle the serving stack is built around.
 *
 * The paper positions Taurus as a platform for *many* per-packet ML
 * applications (Table 5: anomaly DNN, anomaly SVM, IoT classification,
 * Indigo CC). An AppArtifact packages everything the switch, the farm,
 * and the online-learning runtime need to serve one of them:
 *
 *  - a feature-program builder (the app's stateful preprocessing MATs),
 *  - the lowered MapReduce graph plus its pinned input quantization,
 *  - a verdict policy (binary threshold / multi-class argmax / scalar
 *    action) that becomes the postprocessing MAT,
 *  - a labeled evaluation trace for end-to-end scoring, and
 *  - an optional trainer factory that closes the online-learning loop
 *    for this app.
 *
 * TaurusSwitch::installApp(artifact) is the single install entry point;
 * installAnomalyModel() survives as a thin wrapper over
 * makeAnomalyDnnApp(). Onboarding a new application means building an
 * artifact — no switch, farm, or runtime surgery.
 */

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cp/trainer.hpp"
#include "dfg/graph.hpp"
#include "fixed/quant.hpp"
#include "models/zoo.hpp"
#include "net/features.hpp"
#include "net/iot.hpp"
#include "taurus/feature_program.hpp"
#include "taurus/switch.hpp"

namespace taurus::core {

/**
 * How an app's postprocessing MAT interprets the MapReduce output code.
 * Exactly one of the kind-specific fields is meaningful.
 */
struct VerdictPolicy
{
    VerdictKind kind = VerdictKind::BinaryThreshold;

    /** BinaryThreshold: per-score-code flag decision (all 256 codes are
     *  enumerated into the verdict table at install time). */
    std::function<bool(int8_t)> flag_code;

    /** ArgmaxClass: number of classes the score code ranges over. */
    size_t num_classes = 0;
    /** ArgmaxClass: classes that additionally flag/deprioritize. */
    std::vector<int32_t> flagged_classes;
};

/**
 * One mirrored packet: feature codes + verdict + ground truth. Defined
 * here (not in the runtime) because the generic trainer interface
 * consumes it; the runtime's telemetry rings carry it unchanged.
 */
struct TelemetrySample
{
    std::array<int8_t, kDecisionFeatureSlots> features{};
    uint8_t feature_count = 0;
    int8_t score = 0;     ///< raw MapReduce output code
    bool flagged = false; ///< data-plane flag verdict
    int32_t predicted = 0; ///< generic verdict (SwitchDecision::class_id)
    int32_t label = 0;     ///< ground-truth class label
    bool truth = false;    ///< label != 0 (binary convenience view)
    /** Tenant that decided the packet (SwitchDecision::app_id): the
     *  control plane routes each sample to that tenant's own drift
     *  monitor and trainer. */
    AppId app_id = 0;
};

/**
 * Abstract online trainer for one installed app: consumes labeled
 * telemetry, emits weight-update graphs structurally identical to the
 * installed one. Implementations live in the runtime layer (the MLP
 * streaming-SGD trainer); the interface lives here so an AppArtifact
 * can carry its trainer without the core depending on runtime types.
 */
class AppTrainer
{
  public:
    virtual ~AppTrainer() = default;

    /** Buffer one mirrored sample. */
    virtual void ingest(const TelemetrySample &s) = 0;
    /** True when a full minibatch is buffered. */
    virtual bool minibatchReady() const = 0;
    /** One streaming update over the buffered minibatch. */
    virtual void step() = 0;
    /** Retire the buffer into replay history without training. */
    virtual void absorb() = 0;
    /** Quantize + lower the current model as a weight-update graph. */
    virtual dfg::Graph snapshotGraph() const = 0;
    /** Updates run so far. */
    virtual uint64_t steps() const = 0;
};

/** Factory signature an artifact uses to create its trainer. */
using AppTrainerFactory = std::function<std::unique_ptr<AppTrainer>(
    const cp::OnlineTrainConfig &cfg, size_t reservoir_cap,
    size_t calibration_cap)>;

/** A self-describing data-plane application. */
struct AppArtifact
{
    std::string name;

    /** Build the app's preprocessing feature program. */
    std::function<FeatureProgram(const FeatureProgramConfig &)>
        build_features;
    /** Feature codes the program writes. installApp verifies this
     *  matches the built program's feature_count (and that both fit
     *  kDecisionFeatureSlots), so the declaration cannot drift from
     *  what build_features actually emits. */
    size_t feature_count = 0;

    /** The lowered MapReduce program. */
    dfg::Graph graph;
    /** Pinned input quantization (what the feature tables emit). */
    fixed::QuantParams input_qp;

    VerdictPolicy verdict;

    /**
     * Per-flow dispatch predicates claiming this app's traffic on a
     * multi-tenant switch (ternary 5-tuple rules, installed into the
     * dispatch MAT at install time). An app with no rules is reachable
     * only as the switch's default app; on a single-tenant switch the
     * dispatch stage is elided entirely.
     */
    std::vector<DispatchRule> dispatch;

    /** Labeled evaluation trace (TracePacket::class_label is ground
     *  truth); may be empty when the caller scores elsewhere. */
    std::vector<net::TracePacket> eval_trace;

    /** Number of ground-truth classes for scoring (2 for binary). */
    size_t num_classes = 2;

    /** Optional online-trainer factory; null = not retrainable. */
    AppTrainerFactory make_trainer;
};

/**
 * Package a trained anomaly DNN as an artifact: the 6-feature KDD
 * preprocessing program, its lowered graph, a binary-threshold verdict
 * derived from the model's output scale, and an MLP streaming-SGD
 * trainer warm-started from the float model. Bit-identical to the
 * legacy installAnomalyModel() path by construction.
 */
AppArtifact makeAnomalyDnnApp(const models::AnomalyDnn &model,
                              std::vector<net::TracePacket> eval_trace = {});

/**
 * Package the IoT device classifier as an artifact: its own 6-feature
 * preprocessing program, the argmax-headed graph, a class verdict
 * table, the labeled evaluation trace generated at training time, and
 * a multi-class MLP trainer.
 */
AppArtifact makeIotFlowApp(const models::IotFlowMlp &model);

} // namespace taurus::core
