/**
 * @file
 * Unified benchmark harness. Every paper bench (tables 1-8, figures
 * 9-14, ablations, throughput) registers itself here with a name, the
 * paper table/figure it reproduces, and a run function; the single
 * `taurus_bench` driver runs any subset at full or `--smoke` problem
 * sizes and emits machine-readable JSON (BENCH_results.json).
 *
 * A bench file looks like:
 *
 *     #include "harness.hpp"
 *
 *     TAURUS_BENCH(table4_precision, "Table 4",
 *                  "per-FU area/power across precisions")
 *     {
 *         const size_t n = ctx.size(150000, 2000); // full vs smoke
 *         ...
 *         ctx.metric("area_um2", area);
 *     }
 */

#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <vector>

#include "obs/histogram.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace taurus::bench {

/**
 * Per-run state handed to each bench: problem sizing (full vs --smoke,
 * times an optional --scale factor) and the metric sink that feeds the
 * JSON report.
 */
class Context
{
  public:
    Context(bool smoke, double scale, std::ostream &os)
        : smoke_(smoke), scale_(scale), os_(os)
    {
        metrics_ = util::json::Value::object();
    }

    bool smoke() const { return smoke_; }
    double scale() const { return scale_; }

    /** Human-readable output (tables); may be a null sink in --quiet. */
    std::ostream &out() { return os_; }

    /**
     * Pick a problem size: `full` (times --scale, clamped to >= 1) for
     * real runs, `tiny` for --smoke.
     */
    size_t size(size_t full, size_t tiny) const;

    /** Like size() for continuous quantities (durations, rates). */
    double amount(double full, double tiny) const;

    /** Record a scalar metric for the JSON report (insertion order). */
    void metric(const std::string &name, double value);
    void metric(const std::string &name, int64_t value);
    void metric(const std::string &name, size_t value)
    {
        metric(name, static_cast<int64_t>(value));
    }
    void metric(const std::string &name, int value)
    {
        metric(name, static_cast<int64_t>(value));
    }

    /**
     * Record latency percentiles (p50/p90/p99), mean, and max from raw
     * samples, under `<name>_<stat>_<unit>` keys.
     */
    void latency(const std::string &name, std::vector<double> samples,
                 const std::string &unit = "ns");

    /** Record items/s under `<name>_per_sec` given a count + duration. */
    void throughput(const std::string &name, double items,
                    double seconds);

    /**
     * Record a pre-aggregated obs::Histogram — the constant-memory way
     * to report latency over millions of samples (latency() holds raw
     * vectors). Emits `<name>_{mean,p50,p90,p99,p999,max}_<unit>` plus
     * `<name>_count`; no-op when the histogram is empty.
     */
    void histogram(const std::string &name, const obs::Histogram &h,
                   const std::string &unit = "ns");

    const util::json::Value &metrics() const { return metrics_; }

  private:
    bool smoke_;
    double scale_;
    std::ostream &os_;
    util::json::Value metrics_;
};

/** Wall-clock stopwatch for throughput loops. */
class Timer
{
  public:
    Timer() : start_(std::chrono::steady_clock::now()) {}

    double elapsedSec() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

/** A registered bench: identity plus the function that runs it. */
struct Bench
{
    std::string name;    ///< CLI name, e.g. "table8_end_to_end"
    std::string figure;  ///< paper anchor, e.g. "Table 8"
    std::string summary; ///< one-line description
    std::function<void(Context &)> fn;
};

/** Process-wide bench registry, populated by TAURUS_BENCH statics. */
class Registry
{
  public:
    static Registry &instance();

    void add(Bench b);

    /** All benches, sorted by name. Selection (exact or substring)
     *  is the driver's job — there is exactly one resolution path. */
    std::vector<Bench> sorted() const;

  private:
    std::vector<Bench> benches_;
};

/** Static initializer that registers one bench. */
struct Registrar
{
    Registrar(std::string name, std::string figure, std::string summary,
              std::function<void(Context &)> fn);
};

/**
 * Lowercase a display name into a snake_case metric-key fragment
 * ("Cloud TPU v2-8" -> "cloud_tpu_v2_8") so JSON metric keys stay
 * identifier-safe.
 */
std::string slug(const std::string &name);

/**
 * Validated numeric argv parsing (the harness owns all argv handling,
 * so no bench ever feeds raw atoll() input into a size_t again): the
 * full string must parse to a finite number in [lo, hi]. Returns
 * false with a message on any violation.
 */
bool parseDouble(const std::string &arg, double lo, double hi,
                 double *out, std::string *err);

} // namespace taurus::bench

/**
 * Define and register a bench. Usage:
 *     TAURUS_BENCH(name_ident, "Table N", "summary") { ... use ctx ... }
 */
#define TAURUS_BENCH(ident, figure, summary)                               \
    static void taurus_bench_run_##ident(::taurus::bench::Context &ctx);   \
    static const ::taurus::bench::Registrar taurus_bench_reg_##ident(      \
        #ident, figure, summary, &taurus_bench_run_##ident);               \
    static void taurus_bench_run_##ident(::taurus::bench::Context &ctx)
