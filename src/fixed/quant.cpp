#include "fixed/quant.hpp"

#include <cmath>

namespace taurus::fixed {

QuantParams
QuantParams::forAbsMax(double abs_max, int bits)
{
    QuantParams qp;
    const double max_code = static_cast<double>((1 << (bits - 1)) - 1);
    qp.scale = abs_max <= 0.0 ? 1.0 : abs_max / max_code;
    return qp;
}

int32_t
quantize(double real, const QuantParams &qp, int bits)
{
    const double code = std::nearbyint(real / qp.scale);
    const int64_t lo = -(int64_t{1} << (bits - 1));
    const int64_t hi = (int64_t{1} << (bits - 1)) - 1;
    const int64_t q = static_cast<int64_t>(code);
    return static_cast<int32_t>(q < lo ? lo : (q > hi ? hi : q));
}

double
dequantize(int32_t q, const QuantParams &qp)
{
    return static_cast<double>(q) * qp.scale;
}

std::vector<int8_t>
quantizeVec(const std::vector<float> &v, const QuantParams &qp)
{
    std::vector<int8_t> out;
    out.reserve(v.size());
    for (float x : v)
        out.push_back(static_cast<int8_t>(quantize(x, qp, 8)));
    return out;
}

Requantizer
Requantizer::fromRealMultiplier(double multiplier)
{
    Requantizer r;
    if (multiplier <= 0.0) {
        r.mantissa_ = 0;
        r.exponent_ = 0;
        return r;
    }
    int exp = 0;
    // Normalize multiplier into [0.5, 1).
    const double mant = std::frexp(multiplier, &exp);
    // mantissa in Q31: mant * 2^31.
    int64_t m = static_cast<int64_t>(std::nearbyint(mant * (1ll << 31)));
    if (m == (1ll << 31)) {
        m /= 2;
        ++exp;
    }
    r.mantissa_ = static_cast<int32_t>(m);
    r.exponent_ = -exp;
    return r;
}

double
Requantizer::realMultiplier() const
{
    return static_cast<double>(mantissa_) / (1ll << 31) *
           std::pow(2.0, -exponent_);
}

} // namespace taurus::fixed
