#include "models/zoo.hpp"

#include <algorithm>
#include <sstream>

#include "dfg/eval.hpp"
#include "net/iot.hpp"
#include "net/kdd.hpp"

namespace taurus::models {

namespace {

/** Slice the first `n` feature vectors as quantization calibration. */
std::vector<nn::Vector>
calibrationSlice(const nn::Dataset &d, size_t n = 256)
{
    std::vector<nn::Vector> cal;
    for (size_t i = 0; i < d.size() && i < n; ++i)
        cal.push_back(d.x[i]);
    return cal;
}

} // namespace

AnomalyDnn
trainAnomalyDnn(uint64_t seed, size_t connections)
{
    util::Rng rng(seed);

    net::KddConfig cfg;
    cfg.connections = connections;
    net::KddGenerator gen(cfg, seed);
    const nn::Dataset raw = gen.dataset(/*stride=*/3, /*svm=*/false);

    AnomalyDnn out;
    out.standardizer.fit(raw);
    const nn::Dataset std_data = out.standardizer.apply(raw);
    auto [train, test] = std_data.split(0.7, rng);
    out.train = std::move(train);
    out.test = std::move(test);

    out.model = nn::Mlp({6, 12, 6, 3, 1}, nn::Activation::Relu,
                        nn::Loss::BinaryCrossEntropy, rng);
    nn::TrainConfig tc;
    tc.epochs = 30;
    tc.batch_size = 64;
    tc.learning_rate = 0.05f;
    out.model.train(out.train, tc, rng);

    out.quantized =
        nn::QuantizedMlp::fromFloat(out.model, calibrationSlice(out.train));
    out.graph = compiler::lowerMlp(out.quantized, "anomaly_dnn");

    out.float_test = scoreBinary(
        [&](const nn::Vector &x) { return out.model.predict(x); },
        out.test);
    out.quant_test = scoreBinary(
        [&](const nn::Vector &x) { return out.quantized.predict(x); },
        out.test);
    return out;
}

AnomalySvm
trainAnomalySvm(uint64_t seed, size_t connections)
{
    util::Rng rng(seed);

    net::KddConfig cfg;
    cfg.connections = connections;
    net::KddGenerator gen(cfg, seed + 17);
    const nn::Dataset raw = gen.dataset(/*stride=*/4, /*svm=*/true);

    AnomalySvm out;
    out.standardizer.fit(raw);
    const nn::Dataset std_data = out.standardizer.apply(raw);
    auto [train, test] = std_data.split(0.7, rng);
    out.train = std::move(train);
    out.test = std::move(test);

    out.model = nn::RbfNet::fit(out.train, /*centers_per_class=*/8,
                                /*epochs=*/20, /*lr=*/0.05f, rng);
    out.lowered = compiler::lowerRbf(out.model,
                                     calibrationSlice(out.train),
                                     "anomaly_svm");

    out.float_test = scoreBinary(
        [&](const nn::Vector &x) { return out.model.predict(x); },
        out.test);

    // Quantized metrics via the lowered graph's integer semantics.
    out.quant_test = scoreBinary(
        [&](const nn::Vector &x) {
            std::vector<int8_t> q(x.size());
            for (size_t i = 0; i < x.size(); ++i)
                q[i] = static_cast<int8_t>(fixed::quantize(
                    x[i], out.lowered.input_qp));
            const auto res = dfg::evaluateSimple(out.lowered.graph, q);
            return res.at(0) > 0 ? 1 : 0;
        },
        out.test);
    return out;
}

IotKmeans
trainIotKmeans(uint64_t seed, size_t samples)
{
    util::Rng rng(seed);
    const nn::Dataset raw = net::iotDeviceDataset(samples, seed + 29);

    IotKmeans out;
    out.standardizer.fit(raw);
    const nn::Dataset std_data = out.standardizer.apply(raw);
    auto [train, test] = std_data.split(0.7, rng);
    out.train = std::move(train);
    out.test = std::move(test);

    out.model = nn::KMeans::fit(out.train.x, /*k=*/5, /*iters=*/30, rng);
    out.float_accuracy = out.model.labelAccuracy(out.train, out.test);
    out.lowered = compiler::lowerKmeans(
        out.model, calibrationSlice(out.train), "iot_kmeans");
    return out;
}

IndigoLstm
buildIndigoLstm(uint64_t seed)
{
    util::Rng rng(seed);
    IndigoLstm out;
    out.model = nn::Lstm(/*input_dim=*/5, /*units=*/32, /*outputs=*/5, rng);
    out.graph = compiler::lowerLstm(out.model, "indigo_lstm");
    return out;
}

IotFlowMlp
trainIotFlowMlp(uint64_t seed, size_t sessions)
{
    util::Rng rng(seed);

    net::IotTraceConfig tc;
    tc.sessions = sessions;
    const auto train_trace = net::iotDeviceTrace(tc, seed + 101);
    const nn::Dataset raw = net::iotPacketDataset(train_trace, 2);

    IotFlowMlp out;
    out.num_classes = net::kIotClassCount;
    out.standardizer.fit(raw);
    const nn::Dataset std_data = out.standardizer.apply(raw);
    auto [train, test] = std_data.split(0.7, rng);
    out.train = std::move(train);
    out.test = std::move(test);

    out.model = nn::Mlp({net::kIotFlowFeatureCount, 16, 8,
                         static_cast<size_t>(net::kIotClassCount)},
                        nn::Activation::Relu, nn::Loss::CrossEntropy,
                        rng);
    nn::TrainConfig mtc;
    mtc.epochs = 25;
    mtc.batch_size = 64;
    mtc.learning_rate = 0.03f;
    out.model.train(out.train, mtc, rng);

    out.quantized =
        nn::QuantizedMlp::fromFloat(out.model, calibrationSlice(out.train));
    out.graph = compiler::lowerMlpClassifier(out.quantized, "iot_flow_mlp");

    out.float_accuracy = out.model.accuracy(out.test);
    out.quant_accuracy = out.quantized.accuracy(out.test);

    // Independent labeled trace for the switch-path evaluation: about a
    // third of the training volume keeps end-to-end runs affordable.
    net::IotTraceConfig ec = tc;
    ec.sessions = std::max<size_t>(200, sessions / 3);
    out.eval_trace = net::iotDeviceTrace(ec, seed + 202);
    return out;
}

IotDnnRow
trainIotDnn(const std::vector<size_t> &hidden, uint64_t seed,
            size_t samples)
{
    util::Rng rng(seed);
    const nn::Dataset raw = net::iotBinaryDataset(samples, seed + 41);

    nn::Standardizer std_fit;
    std_fit.fit(raw);
    const nn::Dataset std_data = std_fit.apply(raw);
    auto [train, test] = std_data.split(0.7, rng);

    std::vector<size_t> sizes;
    sizes.push_back(4);
    sizes.insert(sizes.end(), hidden.begin(), hidden.end());
    sizes.push_back(2);

    nn::Mlp model(sizes, nn::Activation::Relu, nn::Loss::CrossEntropy,
                  rng);
    nn::TrainConfig tc;
    tc.epochs = 25;
    tc.batch_size = 32;
    tc.learning_rate = 0.03f;
    model.train(train, tc, rng);

    const nn::QuantizedMlp quant =
        nn::QuantizedMlp::fromFloat(model, calibrationSlice(train));

    IotDnnRow row;
    std::ostringstream name;
    for (size_t s : sizes)
        name << (name.str().empty() ? "" : "x") << s;
    row.kernel = name.str();
    row.float_accuracy = model.accuracy(test) * 100.0;
    row.fix8_accuracy = quant.accuracy(test) * 100.0;
    return row;
}

std::vector<std::vector<size_t>>
table3Kernels()
{
    return {{10}, {5, 5}, {10, 10}};
}

} // namespace taurus::models
