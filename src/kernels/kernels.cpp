/**
 * @file
 * Kernel dispatch: CPUID feature detection, the TAURUS_FORCE_KERNEL
 * environment override, and the per-level Ops tables. All tables are
 * built once (each SIMD level starts from the scalar reference and is
 * patched by its own TU), so dispatch on the fast path is one pointer
 * load.
 */

#include "kernels/kernels_impl.hpp"

#include <cstdio>
#include <cstdlib>

namespace taurus::kernels {

namespace {

struct Tables
{
    Ops scalar;
    Ops sse;
    Ops avx2;
    bool have_sse = false;
    bool have_avx2 = false;

    Tables()
    {
        scalar = detail::makeScalarOps();
        sse = scalar;
        have_sse = detail::patchSse(sse);
        avx2 = sse; // AVX2 inherits the SSE entries it doesn't override
        have_avx2 = detail::patchAvx2(avx2);
        if (have_avx2)
            avx2.level = Level::Avx2;
    }
};

const Tables &
tables()
{
    static const Tables t;
    return t;
}

/** CPU support for a compiled-in level (compile-time on non-x86). */
bool
cpuHas(Level level)
{
#if defined(__x86_64__) || defined(__i386__)
    switch (level) {
      case Level::Scalar:
        return true;
      case Level::Sse:
        return __builtin_cpu_supports("sse4.1") != 0;
      case Level::Avx2:
        return __builtin_cpu_supports("avx2") != 0;
    }
    return false;
#else
    return level == Level::Scalar;
#endif
}

/** The startup selection: env override clamped to support, else best. */
Level
initialLevel()
{
    const char *env = std::getenv("TAURUS_FORCE_KERNEL");
    if (env != nullptr && *env != '\0') {
        Level forced;
        if (!parseLevel(env, forced)) {
            std::fprintf(stderr,
                         "taurus: TAURUS_FORCE_KERNEL=%s not in "
                         "{scalar, sse, avx2}; using auto detection\n",
                         env);
            return detectBest();
        }
        if (!supported(forced)) {
            const Level best = detectBest();
            std::fprintf(stderr,
                         "taurus: TAURUS_FORCE_KERNEL=%s unsupported "
                         "on this host; clamping to %s\n",
                         env, levelName(best));
            return best;
        }
        return forced;
    }
    return detectBest();
}

/** The active table pointer (written only by setActive / first use). */
const Ops *&
activeSlot()
{
    static const Ops *slot = &opsFor(initialLevel());
    return slot;
}

} // namespace

const char *
levelName(Level level)
{
    switch (level) {
      case Level::Scalar:
        return "scalar";
      case Level::Sse:
        return "sse";
      case Level::Avx2:
        return "avx2";
    }
    return "scalar";
}

bool
parseLevel(const std::string &name, Level &out)
{
    if (name == "scalar") {
        out = Level::Scalar;
        return true;
    }
    if (name == "sse" || name == "sse4.1" || name == "sse41") {
        out = Level::Sse;
        return true;
    }
    if (name == "avx2") {
        out = Level::Avx2;
        return true;
    }
    return false;
}

bool
supported(Level level)
{
    switch (level) {
      case Level::Scalar:
        return true;
      case Level::Sse:
        return tables().have_sse && cpuHas(Level::Sse);
      case Level::Avx2:
        return tables().have_avx2 && cpuHas(Level::Avx2);
    }
    return false;
}

Level
detectBest()
{
    if (supported(Level::Avx2))
        return Level::Avx2;
    if (supported(Level::Sse))
        return Level::Sse;
    return Level::Scalar;
}

const Ops &
opsFor(Level level)
{
    // Highest supported level <= the request (a forced avx2 on an
    // SSE-only host degrades gracefully instead of faulting).
    if (level == Level::Avx2 && supported(Level::Avx2))
        return tables().avx2;
    if (level >= Level::Sse && supported(Level::Sse))
        return tables().sse;
    return tables().scalar;
}

const Ops &
scalarOps()
{
    return tables().scalar;
}

const Ops &
active()
{
    return *activeSlot();
}

Level
activeLevel()
{
    return active().level;
}

Level
setActive(Level level)
{
    const Ops *&slot = activeSlot();
    const Level prev = slot->level;
    slot = &opsFor(level);
    return prev;
}

std::string
cpuFeatures()
{
    std::string out;
    const auto append = [&out](const char *name) {
        if (!out.empty())
            out += ',';
        out += name;
    };
    if (cpuHas(Level::Avx2))
        append("avx2");
    if (cpuHas(Level::Sse))
        append("sse4.1");
    if (out.empty())
        out = "none";
    return out;
}

} // namespace taurus::kernels
