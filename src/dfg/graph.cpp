#include "dfg/graph.hpp"

#include <algorithm>
#include <cassert>
#include <sstream>

namespace taurus::dfg {

size_t
Node::weightBytes() const
{
    return weights.size() + lut.size() +
           (kind == NodeKind::DotRow || kind == NodeKind::CombineAdd
                ? sizeof(int32_t)
                : 0);
}

int
Graph::add(Node n)
{
    n.id = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(n));
    return nodes_.back().id;
}

std::vector<int>
Graph::topoOrder() const
{
    // Nodes reference only earlier ids by construction; verify and return.
    std::vector<int> order;
    order.reserve(nodes_.size());
    for (const auto &n : nodes_) {
        for ([[maybe_unused]] int in : n.inputs)
            assert(in >= 0 && in < n.id && "graph must be built in order");
        order.push_back(n.id);
    }
    return order;
}

std::vector<int>
Graph::inputIds() const
{
    std::vector<int> ids;
    for (const auto &n : nodes_)
        if (n.kind == NodeKind::Input)
            ids.push_back(n.id);
    return ids;
}

std::vector<int>
Graph::outputIds() const
{
    std::vector<int> ids;
    for (const auto &n : nodes_)
        if (n.kind == NodeKind::Output)
            ids.push_back(n.id);
    return ids;
}

ValueType
Graph::outputType(const Node &n)
{
    switch (n.kind) {
      case NodeKind::PartialDot:
        return ValueType::Int32Vec;
      case NodeKind::SquaredDist:
        // With a requantizer the distance is rescaled to an int8 code
        // (the RBF-kernel front end); without one it stays a raw int32
        // (the KMeans argmin path, which needs exact distances).
        return n.requantized() ? ValueType::Int8Vec : ValueType::Int32Vec;
      default:
        return ValueType::Int8Vec;
    }
}

bool
Graph::isCuOp(const Node &n)
{
    switch (n.kind) {
      case NodeKind::DotRow:
      case NodeKind::PartialDot:
      case NodeKind::CombineAdd:
      case NodeKind::MapChain:
      case NodeKind::EltwiseMul:
      case NodeKind::EltwiseAdd:
      case NodeKind::SquaredDist:
      case NodeKind::ArgMin:
        return true;
      default:
        return false;
    }
}

bool
Graph::isMuOp(const Node &n)
{
    return n.kind == NodeKind::Lookup;
}

size_t
Graph::weightBytes() const
{
    size_t bytes = 0;
    for (const auto &n : nodes_)
        bytes += n.weightBytes();
    return bytes;
}

Graph
merge(const std::vector<const Graph *> &graphs, const std::string &name)
{
    Graph out;
    out.name = name;
    for (const Graph *g : graphs) {
        const int offset = static_cast<int>(out.nodes().size());
        for (const Node &n : g->nodes()) {
            Node copy = n;
            copy.label = g->name + "/" + n.label;
            for (int &in : copy.inputs)
                in += offset;
            out.add(std::move(copy));
        }
        if (g->loop) {
            // The merged program runs at the slowest member's rate.
            if (!out.loop ||
                g->loop->iiMultiplier() > out.loop->iiMultiplier())
                out.loop = g->loop;
        }
    }
    return out;
}

std::string
Graph::validate() const
{
    std::ostringstream err;
    for (const auto &n : nodes_) {
        if (n.width < 1 || n.width > kLanes) {
            err << "node " << n.id << ": width " << n.width
                << " outside [1," << kLanes << "]";
            return err.str();
        }
        for (int in : n.inputs) {
            if (in < 0 || in >= n.id) {
                err << "node " << n.id << ": bad input " << in;
                return err.str();
            }
        }
        switch (n.kind) {
          case NodeKind::Input:
            if (!n.inputs.empty())
                return "input node with producers";
            break;
          case NodeKind::DotRow:
          case NodeKind::PartialDot:
          case NodeKind::SquaredDist: {
            if (n.inputs.size() != 1)
                return "dot-like node needs exactly one input vector";
            const Node &src = nodes_[static_cast<size_t>(n.inputs[0])];
            if (n.weights.size() != static_cast<size_t>(src.width)) {
                err << "node " << n.id << ": weight count "
                    << n.weights.size() << " != input width " << src.width;
                return err.str();
            }
            if (n.width != 1)
                return "dot-like node must produce a scalar";
            break;
          }
          case NodeKind::CombineAdd:
            if (n.inputs.empty() ||
                n.inputs.size() > static_cast<size_t>(kLanes))
                return "combine fan-in must be 1..kLanes";
            if (n.width != 1)
                return "combine must produce a scalar";
            break;
          case NodeKind::MapChain:
            if (n.inputs.size() != 1)
                return "map chain needs one input";
            if (n.fns.empty() ||
                n.fns.size() > static_cast<size_t>(kStages))
                return "map chain must use 1..kStages stages";
            break;
          case NodeKind::EltwiseMul:
          case NodeKind::EltwiseAdd:
            if (n.inputs.size() != 2)
                return "elementwise binary op needs two inputs";
            break;
          case NodeKind::ArgMin:
            if (n.inputs.size() != 1 || n.width != 1)
                return "argmin takes one vector, yields one scalar";
            break;
          case NodeKind::Lookup:
            if (n.inputs.size() != 1 || n.lut.size() != 256)
                return "lookup needs one input and a 256-entry table";
            break;
          case NodeKind::Concat:
            if (n.inputs.empty())
                return "concat needs inputs";
            break;
          case NodeKind::Output:
            if (n.inputs.size() != 1)
                return "output needs one input";
            break;
        }
    }
    if (outputIds().empty())
        return "graph has no output";
    if (inputIds().empty())
        return "graph has no input";
    return "";
}

} // namespace taurus::dfg
