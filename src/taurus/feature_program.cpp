#include "taurus/feature_program.hpp"

#include <algorithm>
#include <cmath>

#include "net/features.hpp"
#include "net/iot.hpp"
#include "pisa/range_match.hpp"

namespace taurus::core {

using pisa::Action;
using pisa::ActionOp;
using pisa::Field;
using pisa::Instr;
using pisa::MatchKind;
using pisa::MatStage;
using pisa::Src;
using pisa::TableEntry;

namespace {

/** quantize(standardize(raw_bin)) for feature slot `f`: the int8 input
 *  code of the installed model, stored sign-extended in a PHV word. */
uint32_t
featureCode(const nn::Standardizer &std_fit,
            const fixed::QuantParams &input_qp, size_t f, double raw_bin)
{
    const double sd = std_fit.std()[f] > 1e-9f ? std_fit.std()[f] : 1.0;
    const double x = (raw_bin - std_fit.mean()[f]) / sd;
    const int32_t q = fixed::quantize(x, input_qp, 8);
    return static_cast<uint32_t>(q);
}

/** Set-field action with the value taken from per-entry action data. */
Action
setFromArg(const std::string &name, Field dst)
{
    Action a;
    a.name = name;
    a.instrs = {Instr{ActionOp::Set, dst, Src::Arg, Field::Tmp0, 0, 0, -1,
                      Field::FlowHash}};
    return a;
}

/**
 * Append a TCAM stage binning a counter field with log2Bin semantics:
 * value v with floor(log2(v + 1)) == b maps to the code of bin b.
 * `scale` stretches bin boundaries (1000 for the us -> ms duration
 * mapping, 1 otherwise).
 */
void
addLogBinStage(pisa::MatPipeline &pipe, const std::string &name,
               Field key_field, Field dst,
               const nn::Standardizer &std_fit,
               const fixed::QuantParams &qp, size_t feature_slot,
               uint64_t scale)
{
    MatStage st(name, MatchKind::Ternary, {Field::MlBypass, key_field});
    const int act = st.addAction(setFromArg(name + "_set", dst));
    for (int b = 0; b <= 31; ++b) {
        // log2Bin(x) == b  <=>  x in [2^b - 1, 2^(b+1) - 2]; with the
        // scale factor, v in [scale*(2^b - 1), scale*(2^(b+1) - 1) - 1].
        const uint64_t lo = scale * ((uint64_t{1} << b) - 1);
        const uint64_t hi =
            scale * ((uint64_t{1} << (b + 1)) - 1) - 1;
        const uint32_t code =
            featureCode(std_fit, qp, feature_slot, double(b));
        for (const auto &[val, mask] : pisa::rangeToPrefixes(lo, hi)) {
            TableEntry e;
            e.value = {0, val};
            e.mask = {0xffffffffu, mask};
            e.priority = 0;
            e.action_id = act;
            e.args = {code};
            st.addEntry(std::move(e));
        }
        if (hi >= 0xffffffffull)
            break;
    }
    st.setDefault(act, {featureCode(std_fit, qp, feature_slot, 31.0)});
    pipe.addStage(std::move(st));
}

/** Allocate the flow-register arrays every stateful program shares. */
void
addFlowRegisters(FeatureProgram &fp, const FeatureProgramConfig &cfg)
{
    fp.flow_table_size = uint32_t{1} << cfg.flow_table_bits;
    fp.src_table_size = uint32_t{1} << cfg.src_table_bits;

    fp.reg_first_seen =
        fp.registers.addArray("flow_first_seen", fp.flow_table_size);
    fp.reg_pkts = fp.registers.addArray("flow_pkts", fp.flow_table_size);
    fp.reg_bytes = fp.registers.addArray("flow_bytes", fp.flow_table_size);
    fp.reg_urgent =
        fp.registers.addArray("flow_urgent", fp.flow_table_size);
}

/**
 * Append the shared classify stage: mark ML traffic, compute the flow
 * and source hash indices, extract the URG bit. Non-IP / non-TCP-UDP
 * traffic takes the bypass path.
 */
void
addClassifyStage(FeatureProgram &fp)
{
    MatStage st("classify", MatchKind::Exact,
                {Field::EthType, Field::Ipv4Proto});
    Action tcp;
    tcp.name = "ml_tcp";
    tcp.instrs = {
        {ActionOp::Set, Field::MlBypass, Src::Imm, Field::Tmp0, 0, 0,
         -1, Field::FlowHash},
        {ActionOp::HashFlow, Field::FlowHash, Src::Imm, Field::Tmp0,
         fp.flow_table_size, 0, -1, Field::FlowHash},
        {ActionOp::Set, Field::Tmp1, Src::FieldSrc, Field::Ipv4Src, 0,
         0, -1, Field::FlowHash},
        {ActionOp::And, Field::Tmp1, Src::Imm, Field::Tmp0,
         fp.src_table_size - 1, 0, -1, Field::FlowHash},
        {ActionOp::Set, Field::Tmp2, Src::FieldSrc, Field::TcpFlags,
         0, 0, -1, Field::FlowHash},
        {ActionOp::And, Field::Tmp2, Src::Imm, Field::Tmp0, 0x20, 0,
         -1, Field::FlowHash},
        {ActionOp::Shr, Field::Tmp2, Src::Imm, Field::Tmp0, 5, 0, -1,
         Field::FlowHash},
    };
    Action udp;
    udp.name = "ml_udp";
    udp.instrs = {
        tcp.instrs[0], tcp.instrs[1], tcp.instrs[2], tcp.instrs[3],
        {ActionOp::Set, Field::Tmp2, Src::Imm, Field::Tmp0, 0, 0, -1,
         Field::FlowHash},
    };
    Action bypass;
    bypass.name = "bypass";
    bypass.instrs = {{ActionOp::Set, Field::MlBypass, Src::Imm,
                      Field::Tmp0, 1, 0, -1, Field::FlowHash}};
    const int a_tcp = st.addAction(std::move(tcp));
    const int a_udp = st.addAction(std::move(udp));
    const int a_byp = st.addAction(std::move(bypass));
    st.addEntry({{pisa::kEtherTypeIpv4, net::kProtoTcp}, {}, 0, 0,
                 a_tcp, {}});
    st.addEntry({{pisa::kEtherTypeIpv4, net::kProtoUdp}, {}, 0, 0,
                 a_udp, {}});
    st.setDefault(a_byp);
    fp.preprocess.addStage(std::move(st));
}

/** Append the shared flow-register update stage (the cross-packet
 *  aggregates: first-seen, packets, bytes, urgent, duration, new-flow
 *  flag). */
void
addFlowRegStage(FeatureProgram &fp)
{
    MatStage st("flow_regs", MatchKind::Exact, {Field::MlBypass});
    Action upd;
    upd.name = "update_flow";
    upd.instrs = {
        // Tmp0 = first_seen (installed on first packet)
        {ActionOp::RegLoadSet, Field::Tmp0, Src::FieldSrc,
         Field::TimestampUs, 0, 0, fp.reg_first_seen,
         Field::FlowHash},
        // Tmp3 = ++pkts
        {ActionOp::RegAdd, Field::Tmp3, Src::Imm, Field::Tmp0, 1, 0,
         fp.reg_pkts, Field::FlowHash},
        // Tmp4 = bytes += pkt_len
        {ActionOp::RegAdd, Field::Tmp4, Src::FieldSrc, Field::PktLen,
         0, 0, fp.reg_bytes, Field::FlowHash},
        // Tmp5 = urgent += urg_bit
        {ActionOp::RegAdd, Field::Tmp5, Src::FieldSrc, Field::Tmp2, 0,
         0, fp.reg_urgent, Field::FlowHash},
        // Tmp6 = now - first_seen (duration so far, us)
        {ActionOp::Set, Field::Tmp6, Src::FieldSrc,
         Field::TimestampUs, 0, 0, -1, Field::FlowHash},
        {ActionOp::Sub, Field::Tmp6, Src::FieldSrc, Field::Tmp0, 0, 0,
         -1, Field::FlowHash},
        // Tmp7 = (pkts == 1), the new-flow flag
        {ActionOp::Set, Field::Tmp7, Src::FieldSrc, Field::Tmp3, 0, 0,
         -1, Field::FlowHash},
        {ActionOp::TestEq, Field::Tmp7, Src::Imm, Field::Tmp0, 1, 0,
         -1, Field::FlowHash},
    };
    Action skip;
    skip.name = "skip";
    const int a_upd = st.addAction(std::move(upd));
    const int a_skip = st.addAction(std::move(skip));
    st.addEntry({{0}, {}, 0, 0, a_upd, {}});
    st.setDefault(a_skip);
    fp.preprocess.addStage(std::move(st));
}

} // namespace

FeatureProgram
buildDnnFeatureProgram(const nn::Standardizer &std_fit,
                       const fixed::QuantParams &input_qp,
                       const FeatureProgramConfig &cfg)
{
    FeatureProgram fp;
    fp.feature_count = net::kDnnFeatureCount;
    addFlowRegisters(fp, cfg);
    fp.reg_win_start =
        fp.registers.addArray("src_window_start", fp.src_table_size);
    fp.reg_src_conns =
        fp.registers.addArray("src_conns", fp.src_table_size);

    auto &pipe = fp.preprocess;

    // Stages 0-1: shared classify + flow-register updates.
    addClassifyStage(fp);
    addFlowRegStage(fp);

    // Stage 2: load the source window start and compute its age.
    {
        MatStage st("src_window_load", MatchKind::Exact,
                    {Field::MlBypass});
        Action load;
        load.name = "load_window";
        load.instrs = {
            {ActionOp::RegLoad, Field::Tmp0, Src::None, Field::Tmp0, 0, 0,
             fp.reg_win_start, Field::Tmp1},
            {ActionOp::Set, Field::Tmp2, Src::FieldSrc,
             Field::TimestampUs, 0, 0, -1, Field::FlowHash},
            {ActionOp::Sub, Field::Tmp2, Src::FieldSrc, Field::Tmp0, 0, 0,
             -1, Field::FlowHash},
        };
        Action skip;
        skip.name = "skip";
        const int a_load = st.addAction(std::move(load));
        const int a_skip = st.addAction(std::move(skip));
        st.addEntry({{0}, {}, 0, 0, a_load, {}});
        st.setDefault(a_skip);
        pipe.addStage(std::move(st));
    }

    // Stage 3: expire the sliding window when its age exceeds 1 s.
    {
        MatStage st("src_window_reset", MatchKind::Ternary,
                    {Field::MlBypass, Field::Tmp2});
        Action reset;
        reset.name = "reset_window";
        reset.instrs = {
            {ActionOp::RegStore, Field::Tmp0, Src::FieldSrc,
             Field::TimestampUs, 0, 0, fp.reg_win_start, Field::Tmp1},
            {ActionOp::RegStore, Field::Tmp0, Src::Imm, Field::Tmp0, 0, 0,
             fp.reg_src_conns, Field::Tmp1},
        };
        Action keep;
        keep.name = "keep";
        const int a_reset = st.addAction(std::move(reset));
        const int a_keep = st.addAction(std::move(keep));
        const uint64_t window_us =
            static_cast<uint64_t>(net::kSrcWindowS * 1e6);
        for (const auto &[val, mask] :
             pisa::rangeToPrefixes(window_us + 1, 0xffffffffull)) {
            st.addEntry({{0, val}, {0xffffffffu, mask}, 0, 1, a_reset,
                         {}});
        }
        st.setDefault(a_keep);
        pipe.addStage(std::move(st));
    }

    // Stage 4: count new flows per source within the window.
    {
        MatStage st("src_conns", MatchKind::Exact, {Field::MlBypass});
        Action inc;
        inc.name = "count_conn";
        inc.instrs = {
            {ActionOp::RegAdd, Field::Tmp0, Src::FieldSrc, Field::Tmp7, 0,
             0, fp.reg_src_conns, Field::Tmp1},
        };
        Action skip;
        skip.name = "skip";
        const int a_inc = st.addAction(std::move(inc));
        const int a_skip = st.addAction(std::move(skip));
        st.addEntry({{0}, {}, 0, 0, a_inc, {}});
        st.setDefault(a_skip);
        pipe.addStage(std::move(st));
    }

    // Stages 5..10: binning + standardize + quantize lookup tables, one
    // per feature, emitting the model's int8 input codes.
    addLogBinStage(pipe, "f0_duration", Field::Tmp6, Field::Feature0,
                   std_fit, input_qp, 0, 1000 /* us -> ms bins */);
    {
        // f1: protocol code via a small exact table.
        MatStage st("f1_proto", MatchKind::Exact,
                    {Field::MlBypass, Field::Ipv4Proto});
        const int act = st.addAction(setFromArg("set_f1",
                                                Field::Feature1));
        for (uint8_t proto :
             {net::kProtoTcp, net::kProtoUdp, net::kProtoIcmp}) {
            st.addEntry({{0, proto}, {}, 0, 0, act,
                         {featureCode(std_fit, input_qp, 1,
                                      net::protoCode(proto))}});
        }
        st.setDefault(act, {featureCode(std_fit, input_qp, 1,
                                        net::protoCode(255))});
        pipe.addStage(std::move(st));
    }
    addLogBinStage(pipe, "f2_bytes", Field::Tmp4, Field::Feature2,
                   std_fit, input_qp, 2, 1);
    addLogBinStage(pipe, "f3_pkts", Field::Tmp3, Field::Feature3, std_fit,
                   input_qp, 3, 1);
    {
        // f4: urgent count, clamped at 15 (min(urgent, 15)).
        MatStage st("f4_urgent", MatchKind::Ternary,
                    {Field::MlBypass, Field::Tmp5});
        const int act = st.addAction(setFromArg("set_f4",
                                                Field::Feature4));
        for (uint32_t u = 0; u < 15; ++u)
            st.addEntry({{0, u},
                         {0xffffffffu, 0xffffffffu},
                         0,
                         1,
                         act,
                         {featureCode(std_fit, input_qp, 4, double(u))}});
        st.setDefault(act, {featureCode(std_fit, input_qp, 4, 15.0)});
        pipe.addStage(std::move(st));
    }
    addLogBinStage(pipe, "f5_srcconns", Field::Tmp0, Field::Feature5,
                   std_fit, input_qp, 5, 1);

    return fp;
}

FeatureProgram
buildIotFeatureProgram(const nn::Standardizer &std_fit,
                       const fixed::QuantParams &input_qp,
                       const FeatureProgramConfig &cfg)
{
    FeatureProgram fp;
    fp.feature_count = net::kIotFlowFeatureCount;
    addFlowRegisters(fp, cfg);

    auto &pipe = fp.preprocess;

    // Stages 0-1: shared classify + flow-register updates. The IoT
    // features need no per-source window, so the sliding-window stages
    // of the DNN program are simply absent here.
    addClassifyStage(fp);
    addFlowRegStage(fp);

    // Stages 2..7: per-feature binning + standardize + quantize lookup
    // tables, mirroring net::iotFlowFeatureVector slot for slot.
    addLogBinStage(pipe, "f0_pktsize", Field::PktLen, Field::Feature0,
                   std_fit, input_qp, 0, 1);
    {
        // f1: protocol code via a small exact table.
        MatStage st("f1_proto", MatchKind::Exact,
                    {Field::MlBypass, Field::Ipv4Proto});
        const int act = st.addAction(setFromArg("set_f1",
                                                Field::Feature1));
        for (uint8_t proto :
             {net::kProtoTcp, net::kProtoUdp, net::kProtoIcmp}) {
            st.addEntry({{0, proto}, {}, 0, 0, act,
                         {featureCode(std_fit, input_qp, 1,
                                      net::protoCode(proto))}});
        }
        st.setDefault(act, {featureCode(std_fit, input_qp, 1,
                                        net::protoCode(255))});
        pipe.addStage(std::move(st));
    }
    {
        // f2: service code of the destination port. Exact entries for
        // every port net::serviceCode knows (highest priority), a
        // TCAM prefix block for the remaining privileged range, and
        // the ephemeral fallback as the default — the same three-level
        // resolution the software function implements.
        MatStage st("f2_service", MatchKind::Ternary,
                    {Field::MlBypass, Field::L4Dport});
        const int act = st.addAction(setFromArg("set_f2",
                                                Field::Feature2));
        for (const net::ServicePort &sp : net::knownServicePorts()) {
            st.addEntry({{0, sp.port},
                         {0xffffffffu, 0xffffffffu},
                         0,
                         2,
                         act,
                         {featureCode(std_fit, input_qp, 2,
                                      double(sp.code))}});
        }
        for (const auto &[val, mask] : pisa::rangeToPrefixes(0, 1023)) {
            st.addEntry({{0, val},
                         {0xffffffffu, mask},
                         0,
                         1,
                         act,
                         {featureCode(std_fit, input_qp, 2,
                                      double(net::kServicePrivileged))}});
        }
        st.setDefault(act, {featureCode(std_fit, input_qp, 2,
                                        double(net::kServiceEphemeral))});
        pipe.addStage(std::move(st));
    }
    addLogBinStage(pipe, "f3_pkts", Field::Tmp3, Field::Feature3, std_fit,
                   input_qp, 3, 1);
    addLogBinStage(pipe, "f4_bytes", Field::Tmp4, Field::Feature4,
                   std_fit, input_qp, 4, 1);
    addLogBinStage(pipe, "f5_duration", Field::Tmp6, Field::Feature5,
                   std_fit, input_qp, 5, 1000 /* us -> ms bins */);

    return fp;
}

pisa::MatPipeline
buildVerdictProgram(const std::function<bool(int8_t)> &flag_code)
{
    pisa::MatPipeline pipe;
    MatStage st("verdict", MatchKind::Exact,
                {Field::MlBypass, Field::MlScore});
    Action flag;
    flag.name = "flag_anomaly";
    flag.instrs = {
        {ActionOp::Set, Field::Decision, Src::Imm, Field::Tmp0, 1, 0, -1,
         Field::FlowHash},
        {ActionOp::Set, Field::Priority, Src::Imm, Field::Tmp0, 1, 0, -1,
         Field::FlowHash},
    };
    Action pass;
    pass.name = "pass";
    pass.instrs = {{ActionOp::Set, Field::Decision, Src::Imm, Field::Tmp0,
                    0, 0, -1, Field::FlowHash}};
    const int a_flag = st.addAction(std::move(flag));
    const int a_pass = st.addAction(std::move(pass));
    for (int c = -128; c <= 127; ++c) {
        if (!flag_code(static_cast<int8_t>(c)))
            continue;
        st.addEntry({{0, static_cast<uint32_t>(c)}, {}, 0, 0, a_flag,
                     {}});
    }
    st.setDefault(a_pass);
    pipe.addStage(std::move(st));
    return pipe;
}

pisa::MatPipeline
buildClassVerdictProgram(size_t num_classes,
                         const std::vector<int32_t> &flagged_classes)
{
    pisa::MatPipeline pipe;
    MatStage st("class_verdict", MatchKind::Exact,
                {Field::MlBypass, Field::MlScore});
    Action cls;
    cls.name = "set_class";
    cls.instrs = {
        {ActionOp::Set, Field::MlClass, Src::Arg, Field::Tmp0, 0, 0, -1,
         Field::FlowHash},
        {ActionOp::Set, Field::Decision, Src::Imm, Field::Tmp0, 0, 0, -1,
         Field::FlowHash},
    };
    Action flag;
    flag.name = "flag_class";
    flag.instrs = {
        {ActionOp::Set, Field::MlClass, Src::Arg, Field::Tmp0, 0, 0, -1,
         Field::FlowHash},
        {ActionOp::Set, Field::Decision, Src::Imm, Field::Tmp0, 1, 0, -1,
         Field::FlowHash},
        {ActionOp::Set, Field::Priority, Src::Imm, Field::Tmp0, 1, 0, -1,
         Field::FlowHash},
    };
    const int a_cls = st.addAction(std::move(cls));
    const int a_flag = st.addAction(std::move(flag));
    for (size_t c = 0; c < num_classes; ++c) {
        const bool flagged =
            std::find(flagged_classes.begin(), flagged_classes.end(),
                      static_cast<int32_t>(c)) != flagged_classes.end();
        st.addEntry({{0, static_cast<uint32_t>(c)},
                     {},
                     0,
                     0,
                     flagged ? a_flag : a_cls,
                     {static_cast<uint32_t>(c)}});
    }
    st.setDefault(a_cls, {0});
    pipe.addStage(std::move(st));
    return pipe;
}

} // namespace taurus::core
