#include "net/iot.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace taurus::net {

nn::Dataset
iotBinaryDataset(size_t samples, uint64_t seed)
{
    util::Rng rng(seed);
    nn::Dataset data;
    // Separation d between class means gives Bayes accuracy Phi(d/2);
    // d = 0.88 puts it at ~0.67 (Table 3's float32 operating point).
    const double delta = 0.88 / std::sqrt(2.0);
    for (size_t i = 0; i < samples; ++i) {
        const int label = rng.bernoulli(0.5) ? 1 : 0;
        const double sign = label ? 1.0 : -1.0;
        nn::Vector x(4);
        x[0] = static_cast<float>(rng.gaussian(sign * delta / 2.0, 1.0));
        x[1] = static_cast<float>(rng.gaussian(-sign * delta / 2.0, 1.0));
        x[2] = static_cast<float>(rng.gaussian(0.0, 1.0)); // noise dims
        x[3] = static_cast<float>(rng.gaussian(0.0, 1.0));
        data.add(std::move(x), label);
    }
    return data;
}

nn::Dataset
iotDeviceDataset(size_t samples, uint64_t seed)
{
    util::Rng rng(seed);

    // Five device categories with distinct traffic signatures over 11
    // features (mean pkt size, size stddev, inter-arrival mean/stddev,
    // flow duration, up/down ratio, port entropy, DNS rate, NTP rate,
    // TLS fraction, sleep fraction) — loosely following the TMC IoT
    // feature families.
    constexpr int kCategories = 5;
    constexpr int kFeatures = 11;
    std::vector<nn::Vector> means(kCategories, nn::Vector(kFeatures));
    util::Rng mean_rng = rng.split();
    for (auto &m : means)
        for (float &v : m)
            v = static_cast<float>(mean_rng.uniform(-1.2, 1.2));

    nn::Dataset data;
    for (size_t i = 0; i < samples; ++i) {
        const int label =
            static_cast<int>(rng.uniformInt(0, kCategories - 1));
        nn::Vector x(kFeatures);
        for (int f = 0; f < kFeatures; ++f)
            x[static_cast<size_t>(f)] = static_cast<float>(
                rng.gaussian(means[static_cast<size_t>(label)]
                                  [static_cast<size_t>(f)],
                             0.9));
        data.add(std::move(x), label);
    }
    return data;
}

const char *
iotClassName(int category)
{
    switch (category) {
      case 0:
        return "camera";
      case 1:
        return "sensor";
      case 2:
        return "hub";
      case 3:
        return "speaker";
      case 4:
        return "bulb";
      default:
        return "unknown";
    }
}

namespace {

/** Per-category traffic signature of one device session. */
struct IotSignature
{
    uint8_t proto;
    uint16_t port;
    double size_mean, size_sd;
    uint16_t size_lo, size_hi;
    int pkts_lo, pkts_hi;
    double gap_ms;
};

/** The five device families. Signatures are distinct along several
 *  axes (port, transport, packet size, flow volume, pacing) so no
 *  single feature carries the whole classification. */
const IotSignature kIotSignatures[kIotClassCount] = {
    // camera: long RTSP/UDP streams of large frames
    {kProtoUdp, 554, 1050.0, 120.0, 300, 1400, 120, 320, 2.0},
    // sensor: tiny MQTT bursts
    {kProtoTcp, 1883, 90.0, 15.0, 60, 160, 3, 8, 30.0},
    // hub: DNS chatter, a few packets per query burst (overlaps the
    // bulb in size — the confusable pair once ports are hidden)
    {kProtoUdp, 53, 100.0, 25.0, 60, 300, 1, 4, 5.0},
    // speaker: medium TLS audio segments
    {kProtoTcp, 443, 620.0, 150.0, 100, 1400, 40, 120, 8.0},
    // bulb: periodic CoAP keepalives
    {kProtoUdp, 5683, 85.0, 15.0, 60, 160, 2, 5, 50.0},
};

uint16_t
clampSize(double v, uint16_t lo, uint16_t hi)
{
    const double c = std::min<double>(hi, std::max<double>(lo, v));
    return static_cast<uint16_t>(c);
}

} // namespace

std::vector<TracePacket>
iotDeviceTrace(const IotTraceConfig &cfg, uint64_t seed)
{
    util::Rng rng(seed);
    std::vector<TracePacket> trace;
    trace.reserve(cfg.sessions * 8);

    uint16_t next_sport = 20000;
    for (size_t s = 0; s < cfg.sessions; ++s) {
        const int cls =
            static_cast<int>(rng.uniformInt(0, kIotClassCount - 1));
        const IotSignature &sig =
            kIotSignatures[static_cast<size_t>(cls)];
        const int device = static_cast<int>(
            rng.uniformInt(0, std::max(1, cfg.devices_per_class) - 1));

        TracePacket proto;
        proto.flow.src_ip = 0xC0A80000u |
                            (static_cast<uint32_t>(cls) << 8) |
                            static_cast<uint32_t>(device);
        proto.flow.dst_ip = 0x08080800u + static_cast<uint32_t>(cls);
        proto.flow.src_port = next_sport;
        next_sport = next_sport >= 60000 ? uint16_t{20000}
                                         : static_cast<uint16_t>(
                                               next_sport + 1);
        proto.flow.dst_port =
            rng.bernoulli(cfg.other_port_fraction)
                ? static_cast<uint16_t>(40000 + rng.uniformInt(0, 999))
                : sig.port;
        proto.flow.proto = sig.proto;
        proto.class_label = cls;
        proto.conn_id = static_cast<int32_t>(s);

        const int pkts =
            static_cast<int>(rng.uniformInt(sig.pkts_lo, sig.pkts_hi));
        const double start_s = rng.uniform(0.0, cfg.duration_s);
        double t = start_s;
        for (int p = 0; p < pkts; ++p) {
            TracePacket pkt = proto;
            pkt.time_s = t;
            pkt.syn = (p == 0 && sig.proto == kProtoTcp);
            pkt.fin = (p == pkts - 1 && sig.proto == kProtoTcp);
            pkt.size_bytes = clampSize(
                rng.gaussian(sig.size_mean, sig.size_sd), sig.size_lo,
                sig.size_hi);
            trace.push_back(pkt);
            t += sig.gap_ms * 1e-3 * rng.uniform(0.5, 1.5);
        }
    }

    std::stable_sort(trace.begin(), trace.end(),
                     [](const TracePacket &a, const TracePacket &b) {
                         return a.time_s < b.time_s;
                     });
    return trace;
}

nn::Vector
iotFlowFeatureVector(const FlowStats &flow, const TracePacket &pkt,
                     double now_s)
{
    nn::Vector f(kIotFlowFeatureCount);
    f[0] = static_cast<float>(log2Bin(pkt.size_bytes));
    f[1] = static_cast<float>(protoCode(pkt.flow.proto));
    f[2] = static_cast<float>(serviceCode(pkt.flow.dst_port));
    f[3] = static_cast<float>(log2Bin(flow.pkts));
    f[4] = static_cast<float>(log2Bin(flow.bytes));
    f[5] = static_cast<float>(log2Bin(flowDurationMs(flow, now_s)));
    return f;
}

nn::Dataset
iotPacketDataset(const std::vector<TracePacket> &trace, size_t stride)
{
    if (stride == 0)
        stride = 1;
    FlowTracker tracker;
    nn::Dataset data;
    for (size_t i = 0; i < trace.size(); ++i) {
        tracker.observe(trace[i]);
        if (i % stride != 0)
            continue;
        data.add(iotFlowFeatureVector(tracker.flowView(),
                                      tracker.pktView(), tracker.nowS()),
                 trace[i].class_label);
    }
    return data;
}

} // namespace taurus::net
