#include "nn/prune.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace taurus::nn {

std::vector<float>
unitImportance(const Mlp &model, size_t hidden_layer)
{
    const auto &layers = model.layers();
    const Matrix &w_in = layers[hidden_layer].w;
    const Matrix &w_out = layers[hidden_layer + 1].w;

    std::vector<float> importance(w_in.rows(), 0.0f);
    for (size_t u = 0; u < w_in.rows(); ++u) {
        float sq = 0.0f;
        for (size_t j = 0; j < w_in.cols(); ++j)
            sq += w_in.at(u, j) * w_in.at(u, j);
        for (size_t r = 0; r < w_out.rows(); ++r)
            sq += w_out.at(r, u) * w_out.at(r, u);
        importance[u] = std::sqrt(sq);
    }
    return importance;
}

Mlp
pruneUnits(const Mlp &model, const Dataset &data, const PruneConfig &cfg,
           util::Rng &rng)
{
    const auto &layers = model.layers();

    // Pick the survivors of each hidden layer.
    std::vector<std::vector<size_t>> keep(layers.size());
    // Layer 0's *input* is the feature vector: keep all columns.
    for (size_t li = 0; li + 1 < layers.size(); ++li) {
        const auto importance = unitImportance(model, li);
        std::vector<size_t> order(importance.size());
        std::iota(order.begin(), order.end(), size_t{0});
        std::sort(order.begin(), order.end(),
                  [&](size_t a, size_t b) {
                      return importance[a] > importance[b];
                  });
        const size_t n = std::max<size_t>(
            1, static_cast<size_t>(std::ceil(
                   cfg.keep_fraction *
                   static_cast<double>(importance.size()))));
        order.resize(n);
        std::sort(order.begin(), order.end()); // stable unit order
        keep[li] = std::move(order);
    }
    // The output layer keeps all its units.
    keep.back().resize(layers.back().w.rows());
    std::iota(keep.back().begin(), keep.back().end(), size_t{0});

    // Rebuild the smaller network, copying surviving weights.
    std::vector<size_t> sizes;
    sizes.push_back(layers.front().w.cols());
    for (size_t li = 0; li < layers.size(); ++li)
        sizes.push_back(keep[li].size());

    Mlp pruned(sizes,
               layers.front().act == Activation::LeakyRelu
                   ? Activation::LeakyRelu
                   : Activation::Relu,
               model.loss(), rng);
    for (size_t li = 0; li < layers.size(); ++li) {
        DenseLayer &dst = pruned.layers()[li];
        const DenseLayer &src = layers[li];
        const std::vector<size_t> *in_keep =
            li == 0 ? nullptr : &keep[li - 1];
        for (size_t r = 0; r < keep[li].size(); ++r) {
            const size_t sr = keep[li][r];
            dst.b[r] = src.b[sr];
            for (size_t c = 0; c < dst.w.cols(); ++c) {
                const size_t sc = in_keep ? (*in_keep)[c] : c;
                dst.w.at(r, c) = src.w.at(sr, sc);
            }
        }
        dst.act = src.act;
    }

    if (cfg.finetune_epochs > 0) {
        TrainConfig tc = cfg.finetune;
        tc.epochs = cfg.finetune_epochs;
        pruned.train(data, tc, rng);
    }
    return pruned;
}

} // namespace taurus::nn
