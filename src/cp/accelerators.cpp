#include "cp/accelerators.hpp"

#include <stdexcept>

namespace taurus::cp {

double
AcceleratorModel::inferLatencyMs(size_t batch) const
{
    if (batch == 0)
        return 0.0;
    const double items = static_cast<double>(batch);
    return setup_ms + (transfer_us + per_item_us * items) / 1e3;
}

double
AcceleratorModel::throughputPerSec(size_t batch) const
{
    const double lat_s = inferLatencyMs(batch) / 1e3;
    return lat_s > 0.0 ? static_cast<double>(batch) / lat_s : 0.0;
}

const std::vector<AcceleratorModel> &
accelerators()
{
    // Batch-1 latencies land exactly on Table 2: setup dominates, which
    // is the paper's point ("this latency comes from accelerator setup
    // overhead ... a CPU is the fastest design, but still takes
    // 0.67 ms").
    static const std::vector<AcceleratorModel> devices = {
        {"Broadwell Xeon", 0.64, 0.0, 30.0, 8.0},
        {"Tesla T4 GPU", 1.10, 40.0, 10.0, 0.4},
        {"Cloud TPU v2-8", 3.40, 100.0, 10.0, 0.1},
    };
    return devices;
}

const AcceleratorModel &
accelerator(const std::string &name)
{
    for (const auto &a : accelerators())
        if (a.name == name)
            return a;
    throw std::invalid_argument("unknown accelerator: " + name);
}

} // namespace taurus::cp
