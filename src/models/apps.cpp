#include "models/apps.hpp"

namespace taurus::models {

const std::vector<AppInfo> &
table1Registry()
{
    static const std::vector<AppInfo> registry = {
        // Security
        {"Heavy Hitters", "Security", {false, false, true, false}},
        {"DoS (e.g., SYN Flood)", "Security", {true, true, true, false}},
        {"Probes (e.g., Port Scan)", "Security",
         {false, false, true, false}},
        {"U2R: Unauth. Access to Root", "Security",
         {false, false, true, false}},
        {"R2L: Unauth. Remote Access", "Security",
         {false, false, true, false}},
        // Performance
        {"Congestion Control", "Performance", {true, false, false, false}},
        {"Active Queue Mgmt (AQM)", "Performance",
         {true, false, false, false}},
        {"Traffic Classification", "Performance",
         {false, true, true, false}},
        {"Load Balancing", "Performance", {false, true, true, false}},
        {"Switching and Routing", "Performance",
         {false, true, true, false}},
    };
    return registry;
}

const std::vector<MatOnlyDesign> &
matOnlyDesigns()
{
    // N2Net needs >= 12 MATs per BNN layer (48 for the 4-layer anomaly
    // DNN); IIsy maps an SVM to 8 MATs and KMeans to 2 MATs.
    static const std::vector<MatOnlyDesign> designs = {
        {"N2Net", "BNN (4-layer anomaly DNN)", 48, "anomaly_dnn"},
        {"IIsy", "SVM", 8, "svm_rbf"},
        {"IIsy", "KMeans", 2, "iot_kmeans"},
    };
    return designs;
}

} // namespace taurus::models
