/**
 * @file
 * Saturating fixed-point primitives matching the Taurus CU datapath.
 *
 * The MapReduce block's functional units operate on 8-bit fixed-point lanes
 * (Section 4: "each performing an 8-bit fixed-point operation"), with wider
 * accumulators inside reductions. These helpers define the exact arithmetic
 * the cycle simulator and the reference int8 inference both use, so the two
 * can be checked for bit-exactness.
 */

#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <type_traits>

namespace taurus::fixed {

/** Clamp a wide value into the representable range of NarrowT. */
template <typename NarrowT, typename WideT>
constexpr NarrowT
saturate(WideT v)
{
    static_assert(std::is_integral_v<NarrowT> && std::is_integral_v<WideT>);
    constexpr WideT lo = std::numeric_limits<NarrowT>::min();
    constexpr WideT hi = std::numeric_limits<NarrowT>::max();
    return static_cast<NarrowT>(std::clamp<WideT>(v, lo, hi));
}

/** Saturating addition in the width of T (computed in 64-bit). */
template <typename T>
constexpr T
satAdd(T a, T b)
{
    return saturate<T>(static_cast<int64_t>(a) + static_cast<int64_t>(b));
}

/** Saturating subtraction in the width of T. */
template <typename T>
constexpr T
satSub(T a, T b)
{
    return saturate<T>(static_cast<int64_t>(a) - static_cast<int64_t>(b));
}

/** Saturating multiplication in the width of T. */
template <typename T>
constexpr T
satMul(T a, T b)
{
    return saturate<T>(static_cast<int64_t>(a) * static_cast<int64_t>(b));
}

/**
 * Rounding arithmetic right shift (round-half-away-from-zero), the
 * rounding mode of the requantization stage.
 */
constexpr int64_t
roundingShiftRight(int64_t v, int shift)
{
    if (shift <= 0)
        return v << (-shift);
    const int64_t offset = int64_t{1} << (shift - 1);
    if (v >= 0)
        return (v + offset) >> shift;
    return -((-v + offset) >> shift);
}

} // namespace taurus::fixed
