#include "hw/cycle_sim.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>

#include "util/stats.hpp"

namespace taurus::hw {

CycleSim::CycleSim(const GridProgram &program) : program_(program)
{
    const std::string err = program.validate();
    if (!err.empty())
        throw std::invalid_argument("invalid program: " + err);
}

int
CycleSim::nodeLatency(const dfg::Node &n, const dfg::Graph &g,
                      const GridSpec &spec, const TimingSpec &timing)
{
    using dfg::NodeKind;
    auto inputWidth = [&]() {
        return n.inputs.empty() ? n.width : g.node(n.inputs[0]).width;
    };
    switch (n.kind) {
      case NodeKind::DotRow:
      case NodeKind::PartialDot:
      case NodeKind::SquaredDist:
        // One map cycle plus a log2-depth tree reduction.
        return 1 + std::max(1, util::log2Ceil(
                                   static_cast<uint64_t>(inputWidth())));
      case NodeKind::CombineAdd:
        return 1 + std::max(1, util::log2Ceil(n.inputs.size()));
      case NodeKind::ArgMin:
        return 1 + std::max(1, util::log2Ceil(
                                   static_cast<uint64_t>(inputWidth())));
      case NodeKind::MapChain:
      case NodeKind::EltwiseMul:
      case NodeKind::EltwiseAdd:
        // Pure map ops traverse the full CU pipeline.
        return spec.stages;
      case NodeKind::Lookup:
        return timing.mu_lookup_cycles;
      case NodeKind::Concat:
        // Gathering n scalars produced on n different units is a
        // log-depth merge through the interconnect: each tree level is
        // one synchronized hop (the "roughly five cycles per data
        // movement" of Section 5.1.3), not a free register write.
        return n.inputs.size() <= 1
                   ? timing.concat_cycles
                   : (timing.route_base + 1) *
                         util::log2Ceil(n.inputs.size());
      case NodeKind::Input:
      case NodeKind::Output:
        return 0;
    }
    return 0;
}

SimResult
CycleSim::run(const std::vector<std::vector<int8_t>> &inputs) const
{
    const auto &prog = program_;
    const auto &g = prog.graph;
    SimResult res;

    // Functional evaluation (bit-exact dfg semantics).
    const auto all_values = dfg::evaluate(g, inputs);
    res.outputs = all_values;

    // Timing: longest-path schedule with optional unit serialization.
    std::vector<int> finish(g.nodes().size(), 0);
    std::map<std::pair<int, int>, int> unit_free;

    for (int id : g.topoOrder()) {
        const auto &n = g.node(id);
        const Coord here = prog.place[static_cast<size_t>(id)];

        if (n.kind == dfg::NodeKind::Input) {
            finish[static_cast<size_t>(id)] = prog.timing.ingress_cycles;
            continue;
        }

        int ready = 0;
        for (int pred : n.inputs) {
            const Coord from = prog.place[static_cast<size_t>(pred)];
            // The PHV interface is a bus along the grid edge (Figure 7):
            // ingress/egress taps are adjacent to their units rather
            // than routed across the fabric.
            const bool io_edge =
                g.node(pred).kind == dfg::NodeKind::Input ||
                n.kind == dfg::NodeKind::Output;
            const int hops = io_edge ? 1 : manhattan(from, here);
            res.route_hops += hops;
            const int arrive = finish[static_cast<size_t>(pred)] +
                               prog.timing.route_base + hops;
            ready = std::max(ready, arrive);
        }

        if (n.kind == dfg::NodeKind::Output) {
            finish[static_cast<size_t>(id)] =
                ready + prog.timing.egress_cycles;
            continue;
        }

        const int lat =
            nodeLatency(n, g, prog.spec, prog.timing);
        int start = ready;
        if (prog.serialize_sharing && dfg::Graph::isCuOp(n)) {
            auto &free_at = unit_free[{here.row, here.col}];
            start = std::max(start, free_at);
            free_at = start + lat;
        }
        finish[static_cast<size_t>(id)] = start + lat;
    }

    int latency = 0;
    for (int id : g.outputIds())
        latency = std::max(latency, finish[static_cast<size_t>(id)]);

    // Initiation interval.
    int ii = prog.ii_multiplier;
    if (g.loop)
        ii = std::max(ii, g.loop->iiMultiplier());
    if (prog.serialize_sharing) {
        std::map<std::pair<int, int>, int> demand;
        for (const auto &n : g.nodes())
            if (dfg::Graph::isCuOp(n)) {
                const Coord c = prog.place[static_cast<size_t>(n.id)];
                demand[{c.row, c.col}] +=
                    nodeLatency(n, g, prog.spec, prog.timing);
            }
        for (const auto &[coord, d] : demand)
            ii = std::max(ii, d);
    }

    // Pipelined iterations: the last of II iterations starts II-1 cycles
    // after the first.
    if (ii > 1)
        latency += ii - 1;

    res.latency_cycles = latency;
    res.latency_ns = latency / prog.spec.clock_ghz;
    res.ii_cycles = ii;
    res.gpktps = prog.spec.clock_ghz / ii;
    return res;
}

} // namespace taurus::hw
