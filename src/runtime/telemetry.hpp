/**
 * @file
 * Telemetry mirroring between the data-plane fast path and the
 * control-plane trainer (paper Figure 1 / Section 5.2.3: the control
 * plane "continuously retrains on mirrored telemetry").
 *
 * Each farm worker owns one bounded single-producer/single-consumer ring;
 * the trainer thread is the only consumer of every ring. The producer
 * side is wait-free: a full ring counts a drop and moves on — mirroring
 * must never block or slow the per-packet path, the same way a hardware
 * mirror port tail-drops under pressure. Samples carry the int8 feature
 * codes the preprocessing MATs already computed (the model's exact input
 * view), the data-plane verdict, and the ground-truth label the
 * control plane would attach when labeling telemetry.
 */

#pragma once

#include <cstdint>

#include "taurus/app.hpp"
#include "taurus/switch.hpp"
#include "util/spsc_ring.hpp"

namespace taurus::runtime {

/** One mirrored packet: feature codes + verdict + label. The struct
 *  itself lives in core (taurus/app.hpp) so the generic AppTrainer
 *  interface can consume it; the rings here carry it unchanged. */
using TelemetrySample = core::TelemetrySample;

/** Build a sample from a processed packet's decision and its
 *  ground-truth class label (0/1 for the binary apps). */
TelemetrySample makeSample(const core::SwitchDecision &d, int32_t label);

/**
 * The mirror ring is the shared SPSC ring template specialized to
 * telemetry samples — the same implementation the pipelined dataplane
 * queues packets through (util/spsc_ring.hpp), so there is exactly one
 * ring to reason about: tryPush counts a drop and moves on when the
 * consumer falls behind, capacity rounds up to a power of two, and the
 * producer/consumer cursors are cache-line padded.
 */
using TelemetryRing = util::SpscRing<TelemetrySample>;

} // namespace taurus::runtime
