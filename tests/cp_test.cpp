#include <gtest/gtest.h>

#include "cp/accelerators.hpp"
#include "cp/baseline.hpp"
#include "cp/rules.hpp"
#include "cp/trainer.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"

using namespace taurus;

TEST(Accelerators, Table2UnbatchedLatencies)
{
    // Table 2: Xeon 0.67 ms, T4 1.15 ms, TPU 3.51 ms at batch 1.
    EXPECT_NEAR(cp::accelerator("Broadwell Xeon").inferLatencyMs(1), 0.67,
                0.02);
    EXPECT_NEAR(cp::accelerator("Tesla T4 GPU").inferLatencyMs(1), 1.15,
                0.02);
    EXPECT_NEAR(cp::accelerator("Cloud TPU v2-8").inferLatencyMs(1), 3.51,
                0.02);
}

TEST(Accelerators, CpuFastestUnbatched)
{
    const auto &devs = cp::accelerators();
    ASSERT_EQ(devs.size(), 3u);
    EXPECT_LT(devs[0].inferLatencyMs(1), devs[1].inferLatencyMs(1));
    EXPECT_LT(devs[1].inferLatencyMs(1), devs[2].inferLatencyMs(1));
}

TEST(Accelerators, BatchingGrowsLatencyButAmortizes)
{
    const auto &xeon = cp::accelerator("Broadwell Xeon");
    EXPECT_GT(xeon.inferLatencyMs(256), xeon.inferLatencyMs(1));
    EXPECT_GT(xeon.throughputPerSec(256), xeon.throughputPerSec(1));
}

TEST(Accelerators, UnknownThrows)
{
    EXPECT_THROW(cp::accelerator("Abacus"), std::invalid_argument);
}

TEST(Rules, InstallSerializesAndGrowsWithTable)
{
    cp::RuleInstaller inst;
    const double t1 = inst.requestInstall(1, 0.0);
    const double t2 = inst.requestInstall(2, 0.0);
    EXPECT_GT(t1, 0.0);
    EXPECT_GT(t2, t1); // queued behind the first install
    EXPECT_EQ(inst.installs(), 2u);

    // Re-request is a no-op resolving to the existing rule.
    EXPECT_DOUBLE_EQ(inst.requestInstall(1, 5.0), t1);
    EXPECT_EQ(inst.installs(), 2u);

    // Rule visibility respects activation time.
    EXPECT_FALSE(inst.active(1, t1 - 1e-6));
    EXPECT_TRUE(inst.active(1, t1));
    EXPECT_FALSE(inst.active(99, 100.0));
}

TEST(Rules, CostGrowsWithOccupancy)
{
    cp::RuleInstallModel m;
    EXPECT_GT(m.installMs(10000), m.installMs(0));
    EXPECT_NEAR(m.installMs(0), 3.0, 1e-9); // 3 ms TCAM base
}

namespace {

/** Shared fixture: one trained model + trace for baseline tests. */
struct E2eFixture
{
    models::AnomalyDnn dnn = models::trainAnomalyDnn(5, 2000);
    std::vector<net::TracePacket> trace;

    E2eFixture()
    {
        net::KddConfig cfg;
        cfg.connections = 4000;
        net::KddGenerator gen(cfg, 55);
        trace = gen.expandToPackets(gen.sampleConnections());
    }

    cp::BaselineResult
    run(double rate) const
    {
        cp::BaselineConfig cfg;
        cfg.sampling_rate = rate;
        return cp::runBaseline(
            trace, dnn.quantized,
            [this](const nn::Vector &v) {
                return dnn.standardizer.apply(v);
            },
            cfg);
    }
};

} // namespace

TEST(Baseline, MissesMostAnomaliesAtLowSampling)
{
    const E2eFixture fx;
    const auto res = fx.run(1e-4);
    // The Table 8 story: the baseline misses the overwhelming majority
    // of anomalous packets even though the model itself is fine.
    EXPECT_LT(res.detected_pct, 10.0);
    EXPECT_LT(res.f1_x100, 20.0);
    EXPECT_GT(res.total_ms, 1.0); // ms-scale reaction path
}

TEST(Baseline, LatencyComponentsPositiveAndOrdered)
{
    const E2eFixture fx;
    const auto res = fx.run(1e-3);
    EXPECT_GT(res.xdp_ms, 0.0);
    EXPECT_GT(res.db_ms, res.xdp_ms); // ingest dominates polling
    EXPECT_GT(res.ml_ms, 0.0);
    EXPECT_GE(res.mean_xdp_batch, 1.0);
}

TEST(Baseline, HigherSamplingGrowsBatches)
{
    const E2eFixture fx;
    const auto lo = fx.run(1e-3);
    const auto hi = fx.run(1e-1);
    EXPECT_GT(hi.mean_xdp_batch, lo.mean_xdp_batch);
    EXPECT_GT(hi.rules_installed, lo.rules_installed);
}

TEST(Trainer, OnlineTrainingConvergesToUsefulF1)
{
    const E2eFixture fx;
    cp::OnlineTrainConfig cfg;
    cfg.sampling_rate = 0.05;
    cfg.epochs = 4;
    cfg.batch = 64;
    cfg.max_time_s = 60.0;
    const auto res = cp::runOnlineTraining(
        fx.trace, fx.dnn.standardizer, fx.dnn.test, cfg);

    ASSERT_GE(res.curve.size(), 3u);
    EXPECT_GT(res.updates_pushed, 5u);
    // Starts near-random, ends materially better.
    EXPECT_GT(res.final_f1, res.curve.front().f1);
    EXPECT_GT(res.final_f1, 0.45);
    // Curve is time-ordered.
    for (size_t i = 1; i < res.curve.size(); ++i)
        EXPECT_GE(res.curve[i].time_s, res.curve[i - 1].time_s);
}

TEST(Trainer, HigherSamplingConvergesFaster)
{
    // Figure 13: higher sampling rates converge faster.
    const E2eFixture fx;
    cp::OnlineTrainConfig fast;
    fast.sampling_rate = 0.1;
    fast.epochs = 4;
    fast.max_time_s = 50.0;
    cp::OnlineTrainConfig slow = fast;
    slow.sampling_rate = 0.02;

    const auto r_fast = cp::runOnlineTraining(
        fx.trace, fx.dnn.standardizer, fx.dnn.test, fast);
    const auto r_slow = cp::runOnlineTraining(
        fx.trace, fx.dnn.standardizer, fx.dnn.test, slow);

    // Time to first reach a fixed quality bar (the Figure 13 reading:
    // higher-rate curves cross any horizontal line earlier).
    auto time_to = [](const cp::OnlineTrainResult &r, double bar) {
        for (const auto &p : r.curve)
            if (p.f1 >= bar)
                return p.time_s;
        return 1e9;
    };
    EXPECT_LT(time_to(r_fast, 0.5), time_to(r_slow, 0.5));
    EXPECT_LT(time_to(r_fast, 0.5), 1e9); // fast must actually get there
}
