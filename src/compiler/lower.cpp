#include "compiler/lower.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "util/stats.hpp"

namespace taurus::compiler {

using dfg::Graph;
using dfg::MapFn;
using dfg::Node;
using dfg::NodeKind;

namespace {

/** Split a width into <=kLanes segments. */
std::vector<int>
segmentWidths(int total)
{
    std::vector<int> widths;
    while (total > 0) {
        const int w = std::min(total, dfg::kLanes);
        widths.push_back(w);
        total -= w;
    }
    return widths;
}

/** Add Input nodes for a (possibly wide) vector. */
SegmentedValue
addInputs(Graph &g, int total, const std::string &label)
{
    SegmentedValue v;
    for (int w : segmentWidths(total)) {
        Node n;
        n.kind = NodeKind::Input;
        n.width = w;
        n.label = label;
        v.nodes.push_back(g.add(std::move(n)));
        v.widths.push_back(w);
    }
    return v;
}

/**
 * One neuron over a segmented input: a single DotRow when the input is
 * one segment, otherwise PartialDots per segment + CombineAdd.
 */
int
addNeuron(Graph &g, const SegmentedValue &in, const int8_t *weights,
          int32_t bias, const fixed::Requantizer &rq,
          const std::string &label)
{
    if (in.nodes.size() == 1) {
        Node n;
        n.kind = NodeKind::DotRow;
        n.inputs = {in.nodes[0]};
        n.width = 1;
        n.weights.assign(weights, weights + in.widths[0]);
        n.bias = bias;
        n.requant = rq;
        n.label = label;
        return g.add(std::move(n));
    }
    std::vector<int> partials;
    int offset = 0;
    for (size_t s = 0; s < in.nodes.size(); ++s) {
        Node p;
        p.kind = NodeKind::PartialDot;
        p.inputs = {in.nodes[s]};
        p.width = 1;
        p.weights.assign(weights + offset, weights + offset + in.widths[s]);
        p.label = label + "/part" + std::to_string(s);
        partials.push_back(g.add(std::move(p)));
        offset += in.widths[s];
    }
    Node c;
    c.kind = NodeKind::CombineAdd;
    c.inputs = partials;
    c.width = 1;
    c.bias = bias;
    c.requant = rq;
    c.label = label + "/combine";
    return g.add(std::move(c));
}

/** Gather scalar node ids into <=16-lane Concat segments. */
SegmentedValue
gatherScalars(Graph &g, const std::vector<int> &scalars,
              const std::string &label)
{
    SegmentedValue v;
    size_t i = 0;
    int seg = 0;
    while (i < scalars.size()) {
        const size_t take =
            std::min<size_t>(dfg::kLanes, scalars.size() - i);
        Node n;
        n.kind = NodeKind::Concat;
        n.inputs.assign(scalars.begin() + static_cast<long>(i),
                        scalars.begin() + static_cast<long>(i + take));
        n.width = static_cast<int>(take);
        n.label = label + "/gather" + std::to_string(seg++);
        v.nodes.push_back(g.add(std::move(n)));
        v.widths.push_back(static_cast<int>(take));
        i += take;
    }
    return v;
}

/** Apply an activation to every segment of a value. */
SegmentedValue
applyActivationNodes(Graph &g, const SegmentedValue &in,
                     nn::Activation act, const std::vector<int8_t> &lut,
                     const std::string &label)
{
    SegmentedValue out;
    for (size_t s = 0; s < in.nodes.size(); ++s) {
        Node n;
        n.width = in.widths[s];
        n.inputs = {in.nodes[s]};
        n.label = label + "/act" + std::to_string(s);
        switch (act) {
          case nn::Activation::Relu:
            n.kind = NodeKind::MapChain;
            n.fns = {MapFn::Relu};
            break;
          case nn::Activation::LeakyRelu:
            n.kind = NodeKind::MapChain;
            n.fns = {MapFn::LeakyRelu};
            break;
          case nn::Activation::Sigmoid:
          case nn::Activation::Tanh:
            n.kind = NodeKind::Lookup;
            n.lut = lut;
            break;
          case nn::Activation::None:
          case nn::Activation::Softmax:
            // Identity in the integer domain (argmax preserved).
            out.nodes.push_back(in.nodes[s]);
            out.widths.push_back(in.widths[s]);
            continue;
        }
        out.nodes.push_back(g.add(std::move(n)));
        out.widths.push_back(in.widths[s]);
    }
    return out;
}

void
addOutputs(Graph &g, const SegmentedValue &v, const std::string &label)
{
    for (size_t s = 0; s < v.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::Output;
        n.inputs = {v.nodes[s]};
        n.width = v.widths[s];
        n.label = label + "/out" + std::to_string(s);
        g.add(std::move(n));
    }
}

/** Lower every layer of a quantized MLP into `g`, returning the final
 *  activation value (shared by the plain and argmax-headed lowerings). */
SegmentedValue
lowerMlpBody(Graph &g, const nn::QuantizedMlp &model)
{
    SegmentedValue cur = addInputs(
        g, static_cast<int>(model.layers().front().in), "input");

    for (size_t li = 0; li < model.layers().size(); ++li) {
        const auto &layer = model.layers()[li];
        const std::string lbl = "L" + std::to_string(li);
        assert(cur.totalWidth() == static_cast<int>(layer.in));

        std::vector<int> neurons;
        for (size_t r = 0; r < layer.out; ++r) {
            neurons.push_back(addNeuron(
                g, cur, layer.w.data() + r * layer.in, layer.b[r],
                layer.requant, lbl + "/n" + std::to_string(r)));
        }

        // Scalars become vectors only when a vector consumer follows.
        SegmentedValue pre;
        if (neurons.size() == 1) {
            pre.nodes = neurons;
            pre.widths = {1};
        } else {
            pre = gatherScalars(g, neurons, lbl);
        }
        cur = applyActivationNodes(g, pre, layer.act, layer.lut, lbl);
    }
    return cur;
}

} // namespace

int
SegmentedValue::totalWidth() const
{
    return std::accumulate(widths.begin(), widths.end(), 0);
}

Graph
lowerMlp(const nn::QuantizedMlp &model, const std::string &name)
{
    Graph g;
    g.name = name;
    addOutputs(g, lowerMlpBody(g, model), "result");
    assert(g.validate().empty());
    return g;
}

Graph
lowerMlpClassifier(const nn::QuantizedMlp &model, const std::string &name)
{
    Graph g;
    g.name = name;
    const SegmentedValue logits = lowerMlpBody(g, model);
    if (logits.nodes.size() != 1)
        throw std::invalid_argument(
            "lowerMlpClassifier: class count must fit one 16-lane "
            "segment");

    // argmax(logits) == argmin(-logits); both run as plain CU ops, so
    // the class id leaves the MapReduce block as an exact integer and
    // the switch's class-verdict table never has to read a logit
    // vector.
    Node neg;
    neg.kind = NodeKind::MapChain;
    neg.fns = {MapFn::Neg};
    neg.inputs = {logits.nodes[0]};
    neg.width = logits.widths[0];
    neg.label = "head/neg";
    const int neg_id = g.add(std::move(neg));

    Node arg;
    arg.kind = NodeKind::ArgMin;
    arg.inputs = {neg_id};
    arg.width = 1;
    arg.label = "head/argmax";
    const int arg_id = g.add(std::move(arg));

    SegmentedValue res;
    res.nodes = {arg_id};
    res.widths = {1};
    addOutputs(g, res, "class");
    assert(g.validate().empty());
    return g;
}

LoweredKmeans
lowerKmeans(const nn::KMeans &model,
            const std::vector<nn::Vector> &calibration,
            const std::string &name)
{
    LoweredKmeans out;
    Graph &g = out.graph;
    g.name = name;

    float abs_max = 1e-6f;
    for (const auto &v : calibration)
        abs_max = std::max(abs_max, nn::absMax(v));
    for (const auto &c : model.centers())
        abs_max = std::max(abs_max, nn::absMax(c));
    out.input_qp = fixed::QuantParams::forAbsMax(abs_max, 8);

    const int dim = static_cast<int>(model.centers().front().size());
    assert(dim <= dfg::kLanes && "kmeans features must fit one segment");
    SegmentedValue in = addInputs(g, dim, "features");

    std::vector<int> dists;
    for (size_t c = 0; c < model.centers().size(); ++c) {
        Node n;
        n.kind = NodeKind::SquaredDist;
        n.inputs = {in.nodes[0]};
        n.width = 1;
        for (float v : model.centers()[c])
            n.weights.push_back(static_cast<int8_t>(
                fixed::quantize(v, out.input_qp, 8)));
        n.label = "dist/c" + std::to_string(c);
        dists.push_back(g.add(std::move(n)));
    }

    SegmentedValue dv = gatherScalars(g, dists, "dist");
    Node arg;
    arg.kind = NodeKind::ArgMin;
    arg.inputs = {dv.nodes[0]};
    arg.width = 1;
    arg.label = "argmin";
    const int arg_id = g.add(std::move(arg));

    SegmentedValue res;
    res.nodes = {arg_id};
    res.widths = {1};
    addOutputs(g, res, "cluster");
    assert(g.validate().empty());
    return out;
}

LoweredRbf
lowerRbf(const nn::RbfNet &model,
         const std::vector<nn::Vector> &calibration,
         const std::string &name)
{
    LoweredRbf out;
    Graph &g = out.graph;
    g.name = name;

    float abs_max = 1e-6f;
    for (const auto &v : calibration)
        abs_max = std::max(abs_max, nn::absMax(v));
    for (const auto &c : model.centers())
        abs_max = std::max(abs_max, nn::absMax(c));
    out.input_qp = fixed::QuantParams::forAbsMax(abs_max, 8);

    const int dim = static_cast<int>(model.centers().front().size());
    assert(dim <= dfg::kLanes);
    SegmentedValue in = addInputs(g, dim, "features");

    std::vector<std::vector<int8_t>> qcenters;
    for (const auto &c : model.centers()) {
        std::vector<int8_t> qc;
        for (float v : c)
            qc.push_back(
                static_cast<int8_t>(fixed::quantize(v, out.input_qp, 8)));
        qcenters.push_back(std::move(qc));
    }
    // Distance scale: size the 127-code range to the kernel bandwidth, not
    // the largest observed distance — beyond d_sat = 8/gamma the kernel
    // has decayed below one output LSB (exp(-8) < 1/127), so saturating
    // there preserves all the resolution where the kernel still varies.
    const double real_d_sat = 8.0 / std::max(1e-6, double(model.gamma()));
    const double int_d_sat =
        real_d_sat / (out.input_qp.scale * out.input_qp.scale);
    const auto dist_rq =
        fixed::Requantizer::fromRealMultiplier(127.0 / int_d_sat);
    // Real distance represented by one code unit.
    const double code_dist = real_d_sat / 127.0;

    std::vector<int> dist_codes;
    for (size_t c = 0; c < qcenters.size(); ++c) {
        Node n;
        n.kind = NodeKind::SquaredDist;
        n.inputs = {in.nodes[0]};
        n.width = 1;
        n.weights = qcenters[c];
        n.requant = dist_rq;
        n.label = "dist/c" + std::to_string(c);
        dist_codes.push_back(g.add(std::move(n)));
    }

    SegmentedValue dv = gatherScalars(g, dist_codes, "dist");

    // Kernel lookup: phi = exp(-gamma * real_dist), output scale 1/127.
    std::vector<int8_t> lut(256);
    for (int code = -128; code <= 127; ++code) {
        const double d = std::max(0, code) * code_dist;
        const double phi = std::exp(-model.gamma() * d);
        lut[static_cast<size_t>(code + 128)] = static_cast<int8_t>(
            fixed::quantize(phi, fixed::QuantParams{1.0 / 127.0}, 8));
    }
    SegmentedValue phi;
    for (size_t s = 0; s < dv.nodes.size(); ++s) {
        Node n;
        n.kind = NodeKind::Lookup;
        n.inputs = {dv.nodes[s]};
        n.width = dv.widths[s];
        n.lut = lut;
        n.label = "kernel/lut" + std::to_string(s);
        phi.nodes.push_back(g.add(std::move(n)));
        phi.widths.push_back(dv.widths[s]);
    }

    // Output weights: score = w . phi + b.
    const float w_max = std::max(1e-6f, nn::absMax(model.weights()));
    const fixed::QuantParams w_qp = fixed::QuantParams::forAbsMax(w_max, 8);
    double score_max = 1e-6;
    for (const auto &v : calibration)
        score_max = std::max(score_max, std::fabs(model.score(v)));
    out.score_scale = score_max / 127.0;
    const double acc_scale = (1.0 / 127.0) * w_qp.scale;
    const auto score_rq = fixed::Requantizer::fromRealMultiplier(
        acc_scale / out.score_scale);

    std::vector<int8_t> wq;
    for (float w : model.weights())
        wq.push_back(static_cast<int8_t>(fixed::quantize(w, w_qp, 8)));
    const int32_t bias_q = fixed::quantize(
        model.bias(), fixed::QuantParams{acc_scale}, 32);

    int score_id;
    if (phi.nodes.size() == 1) {
        Node n;
        n.kind = NodeKind::DotRow;
        n.inputs = {phi.nodes[0]};
        n.width = 1;
        n.weights = wq;
        n.bias = bias_q;
        n.requant = score_rq;
        n.label = "score";
        score_id = g.add(std::move(n));
    } else {
        SegmentedValue sv = phi;
        score_id = addNeuron(g, sv, wq.data(), bias_q, score_rq, "score");
    }

    SegmentedValue res;
    res.nodes = {score_id};
    res.widths = {1};
    addOutputs(g, res, "score");
    assert(g.validate().empty());
    return out;
}

Graph
lowerLstm(const nn::Lstm &model, const std::string &name)
{
    Graph g;
    g.name = name;

    const int units = static_cast<int>(model.units());
    const int in_dim = static_cast<int>(model.inputDim());
    const int concat_w = in_dim + units;

    SegmentedValue x = addInputs(g, in_dim, "x");
    SegmentedValue h = addInputs(g, units, "h");
    SegmentedValue c = addInputs(g, units, "c");

    SegmentedValue xh;
    xh.nodes = x.nodes;
    xh.widths = x.widths;
    for (size_t i = 0; i < h.nodes.size(); ++i) {
        xh.nodes.push_back(h.nodes[i]);
        xh.widths.push_back(h.widths[i]);
    }
    assert(xh.totalWidth() == concat_w);

    // Quantize gate weights per-tensor; state scales are fixed at 1/127.
    auto quantizeGate = [&](const nn::Matrix &w, const char *tag,
                            nn::Activation act) {
        const fixed::QuantParams qp =
            fixed::QuantParams::forAbsMax(std::max(1e-6f, w.absMax()), 8);
        // Pre-activation scale sized for the saturating LUT domain.
        const double pre_scale = 8.0 / 127.0;
        const auto rq = fixed::Requantizer::fromRealMultiplier(
            (1.0 / 127.0) * qp.scale / pre_scale);
        const auto lut =
            nn::buildActivationLut(act, pre_scale, 1.0 / 127.0);

        std::vector<int> scalars;
        for (int u = 0; u < units; ++u) {
            std::vector<int8_t> row;
            for (int j = 0; j < concat_w; ++j)
                row.push_back(static_cast<int8_t>(fixed::quantize(
                    w.at(static_cast<size_t>(u),
                         static_cast<size_t>(j)),
                    qp, 8)));
            scalars.push_back(addNeuron(
                g, xh, row.data(), 0, rq,
                std::string("gate_") + tag + "/u" + std::to_string(u)));
        }
        SegmentedValue pre = gatherScalars(g, scalars,
                                           std::string("gate_") + tag);
        SegmentedValue out;
        for (size_t s = 0; s < pre.nodes.size(); ++s) {
            Node n;
            n.kind = NodeKind::Lookup;
            n.inputs = {pre.nodes[s]};
            n.width = pre.widths[s];
            n.lut = lut;
            n.label = std::string("gate_") + tag + "/lut" +
                      std::to_string(s);
            out.nodes.push_back(g.add(std::move(n)));
            out.widths.push_back(pre.widths[s]);
        }
        return out;
    };

    SegmentedValue gi = quantizeGate(model.wi(), "i",
                                     nn::Activation::Sigmoid);
    SegmentedValue gf = quantizeGate(model.wf(), "f",
                                     nn::Activation::Sigmoid);
    SegmentedValue go = quantizeGate(model.wo(), "o",
                                     nn::Activation::Sigmoid);
    SegmentedValue gg = quantizeGate(model.wg(), "g",
                                     nn::Activation::Tanh);

    // State update: c' = f*c + i*g ; h' = o * tanh(c').
    const auto unit_rq = fixed::Requantizer::fromRealMultiplier(
        (1.0 / 127.0)); // products of two 1/127-scaled codes
    const auto tanh_lut = nn::buildActivationLut(
        nn::Activation::Tanh, 1.0 / 127.0, 1.0 / 127.0);

    SegmentedValue c_new, h_new;
    for (size_t s = 0; s < c.nodes.size(); ++s) {
        Node fc;
        fc.kind = NodeKind::EltwiseMul;
        fc.inputs = {gf.nodes[s], c.nodes[s]};
        fc.width = c.widths[s];
        fc.requant = unit_rq;
        fc.label = "state/fc" + std::to_string(s);
        const int fc_id = g.add(std::move(fc));

        Node ig;
        ig.kind = NodeKind::EltwiseMul;
        ig.inputs = {gi.nodes[s], gg.nodes[s]};
        ig.width = c.widths[s];
        ig.requant = unit_rq;
        ig.label = "state/ig" + std::to_string(s);
        const int ig_id = g.add(std::move(ig));

        Node sum;
        sum.kind = NodeKind::EltwiseAdd;
        sum.inputs = {fc_id, ig_id};
        sum.width = c.widths[s];
        sum.label = "state/c" + std::to_string(s);
        const int c_id = g.add(std::move(sum));
        c_new.nodes.push_back(c_id);
        c_new.widths.push_back(c.widths[s]);

        Node th;
        th.kind = NodeKind::Lookup;
        th.inputs = {c_id};
        th.width = c.widths[s];
        th.lut = tanh_lut;
        th.label = "state/tanh" + std::to_string(s);
        const int th_id = g.add(std::move(th));

        Node oh;
        oh.kind = NodeKind::EltwiseMul;
        oh.inputs = {go.nodes[s], th_id};
        oh.width = c.widths[s];
        oh.requant = unit_rq;
        oh.label = "state/h" + std::to_string(s);
        h_new.nodes.push_back(g.add(std::move(oh)));
        h_new.widths.push_back(c.widths[s]);
    }

    // Softmax head over h' (argmax-preserving integer dot rows).
    const auto &head = model.head();
    const fixed::QuantParams head_qp =
        fixed::QuantParams::forAbsMax(std::max(1e-6f, head.absMax()), 8);
    const auto head_rq = fixed::Requantizer::fromRealMultiplier(
        (1.0 / 127.0) * head_qp.scale / (4.0 / 127.0));
    std::vector<int> logits;
    for (size_t r = 0; r < head.rows(); ++r) {
        std::vector<int8_t> row;
        for (size_t j = 0; j < head.cols(); ++j)
            row.push_back(static_cast<int8_t>(
                fixed::quantize(head.at(r, j), head_qp, 8)));
        logits.push_back(addNeuron(g, h_new, row.data(), 0, head_rq,
                                   "head/a" + std::to_string(r)));
    }
    SegmentedValue action = gatherScalars(g, logits, "head");

    addOutputs(g, action, "action");
    addOutputs(g, h_new, "h_next");
    addOutputs(g, c_new, "c_next");
    assert(g.validate().empty());
    return g;
}

} // namespace taurus::compiler
