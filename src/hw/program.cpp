#include "hw/program.hpp"

#include <set>
#include <sstream>
#include <stdexcept>

namespace taurus::hw {

namespace {

struct CoordLess
{
    bool
    operator()(const Coord &a, const Coord &b) const
    {
        return a.row != b.row ? a.row < b.row : a.col < b.col;
    }
};

} // namespace

int
GridProgram::cusUsed() const
{
    std::set<Coord, CoordLess> used;
    for (const auto &n : graph.nodes())
        if (dfg::Graph::isCuOp(n))
            used.insert(place[static_cast<size_t>(n.id)]);
    return static_cast<int>(used.size());
}

int
GridProgram::musUsed() const
{
    std::set<Coord, CoordLess> used;
    for (const auto &n : graph.nodes())
        if (dfg::Graph::isMuOp(n))
            used.insert(place[static_cast<size_t>(n.id)]);
    for (const auto &c : weight_mus)
        used.insert(c);
    return static_cast<int>(used.size());
}

std::string
GridProgram::validate() const
{
    std::ostringstream err;
    if (place.size() != graph.nodes().size())
        return "placement size mismatch";

    std::map<Coord, int, CoordLess> lanes_used;
    std::map<Coord, size_t, CoordLess> mu_bytes;

    for (const auto &n : graph.nodes()) {
        const Coord c = place[static_cast<size_t>(n.id)];
        const bool onGrid = c.row >= 0 && c.row < spec.rows && c.col >= 0 &&
                            c.col < spec.cols;
        if (n.kind == dfg::NodeKind::Input ||
            n.kind == dfg::NodeKind::Output) {
            continue; // PHV ports live off-grid by design.
        }
        if (n.kind == dfg::NodeKind::Concat)
            continue; // routing-only; may sit at a virtual point.
        if (!onGrid) {
            err << "node " << n.id << " placed off-grid";
            return err.str();
        }
        if (!region.contains(c.col, spec.cols)) {
            err << "node " << n.id << " placed in column " << c.col
                << " outside region [" << region.col_begin << ","
                << region.endFor(spec.cols) << ")";
            return err.str();
        }
        if (dfg::Graph::isCuOp(n)) {
            if (spec.kindAt(c) != UnitKind::Cu) {
                err << "node " << n.id << " (CU op) placed on a non-CU";
                return err.str();
            }
            // Lane capacity: dot-like packed nodes share lanes.
            const int w =
                n.inputs.empty()
                    ? n.width
                    : graph.node(n.inputs[0]).width;
            if (!serialize_sharing)
                lanes_used[c] += w;
        } else if (dfg::Graph::isMuOp(n)) {
            if (spec.kindAt(c) != UnitKind::Mu) {
                err << "node " << n.id << " (MU op) placed on a non-MU";
                return err.str();
            }
            mu_bytes[c] += n.lut.size();
        }
    }

    if (!serialize_sharing) {
        for (const auto &[c, lanes] : lanes_used) {
            if (lanes > spec.lanes) {
                err << "CU at (" << c.row << "," << c.col << ") packs "
                    << lanes << " lanes > " << spec.lanes;
                return err.str();
            }
        }
    }
    for (const auto &[c, bytes] : mu_bytes) {
        if (bytes > spec.muCapacityBytes()) {
            err << "MU at (" << c.row << "," << c.col << ") holds " << bytes
                << " bytes > capacity";
            return err.str();
        }
    }
    for (const auto &c : weight_mus) {
        if (spec.kindAt(c) != UnitKind::Mu)
            return "weight MU allocated on a non-MU unit";
        if (!region.contains(c.col, spec.cols)) {
            err << "weight MU in column " << c.col << " outside region ["
                << region.col_begin << "," << region.endFor(spec.cols)
                << ")";
            return err.str();
        }
    }
    return "";
}

std::string
GridProgram::checkWeightUpdate(const dfg::Graph &fresh) const
{
    if (fresh.nodes().size() != graph.nodes().size())
        return "weight update: node count differs";
    for (size_t i = 0; i < fresh.nodes().size(); ++i) {
        const auto &src = fresh.nodes()[i];
        const auto &dst = graph.nodes()[i];
        if (src.kind != dst.kind || src.width != dst.width ||
            src.inputs != dst.inputs ||
            src.weights.size() != dst.weights.size() ||
            src.lut.size() != dst.lut.size() ||
            src.fns.size() != dst.fns.size()) {
            return "weight update: structure mismatch at node " +
                   std::to_string(i);
        }
    }
    return "";
}

void
GridProgram::updateWeights(const dfg::Graph &fresh)
{
    const std::string err = checkWeightUpdate(fresh);
    if (!err.empty())
        throw std::invalid_argument(err);
    for (size_t i = 0; i < fresh.nodes().size(); ++i) {
        const auto &src = fresh.nodes()[i];
        auto &dst = graph.node(static_cast<int>(i));
        dst.weights = src.weights;
        dst.bias = src.bias;
        dst.requant = src.requant;
        dst.lut = src.lut;
        dst.imms = src.imms;
    }
}

} // namespace taurus::hw
