/**
 * @file
 * NSL-KDD-style synthetic workload: connection records, packet traces,
 * and labeled feature datasets.
 *
 * The paper "generate[s] labeled packet-level traces from the NSL-KDD
 * dataset by expanding connection-level records to binned packet traces"
 * with realistic flow-size distribution and mixing (Section 5.2.2). The
 * NSL-KDD data itself is not redistributable here, so this module samples
 * statistically similar connection records from a seeded generative model
 * (DESIGN.md Section 1): benign web/dns/ssh/mail/ftp traffic plus four
 * attack families with NSL-KDD-like shares (DoS-heavy, rare R2L/U2R whose
 * features overlap benign traffic, which is what keeps the learned model's
 * F1 near the paper's 71 rather than at 99).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/features.hpp"
#include "nn/dataset.hpp"
#include "util/rng.hpp"

namespace taurus::net {

/** NSL-KDD attack taxonomy (Table 1 rows U2R/R2L/Probe/DoS). */
enum class AttackClass
{
    Benign,
    Dos,   ///< SYN-flood style volumetric attacks
    Probe, ///< port scans
    R2l,   ///< unauthorized remote access (password guessing, warez)
    U2r,   ///< unauthorized access to root (long interactive sessions)
};

/** Human-readable class name. */
const char *toString(AttackClass c);

/** One connection-level record (the unit NSL-KDD labels). */
struct ConnRecord
{
    AttackClass attack = AttackClass::Benign;
    double start_s = 0.0;
    double duration_s = 0.0;
    FlowKey flow;
    uint64_t src_bytes = 0; ///< client-to-server payload bytes
    int fwd_pkts = 1;       ///< client-to-server packets
    int urgent = 0;         ///< URG-flagged packets in the connection
    bool syn_only = false;  ///< handshake never completed

    bool anomalous() const { return attack != AttackClass::Benign; }
};

/** Workload-shape knobs for the generator. */
struct KddConfig
{
    /** Connections to synthesize. */
    size_t connections = 4000;
    /** Fraction of connections that are attacks. */
    double anomaly_fraction = 0.30;
    /** Attack-family mix (normalized internally; NSL-KDD-like). */
    double dos_weight = 0.58;
    double probe_weight = 0.24;
    double r2l_weight = 0.13;
    double u2r_weight = 0.05;
    /** Trace length the connections are mixed over, seconds. */
    double trace_duration_s = 4.0;
    /** Benign client pool size. */
    int benign_hosts = 64;
};

/**
 * Derive the drifted workload used by the online-learning scenario: the
 * attack mass migrates from volumetric DoS toward probe-style scans, and
 * the benign population concentrates onto far fewer hosts (so per-source
 * window features — connection counts, port diversity — take values the
 * original training distribution never produced). A model trained on
 * `base` loses precision on the shifted mix until it is retrained on
 * live telemetry; the signal that separates the new benign baseline from
 * scans (port diversity, SYN-only ratios) is still present, so retraining
 * can recover.
 */
KddConfig shiftedAttackMix(KddConfig base);

/**
 * Drop the unmixed tail of an expanded trace: connections *start*
 * uniformly over [0, trace_duration_s] but each runs for its own
 * duration, so packets past `t_max` come only from long-lived flows —
 * a mix no window of live traffic would ever see. The online-learning
 * scenario trims at trace_duration_s so windowed statistics measure the
 * representative mix, not the artifact.
 */
std::vector<TracePacket> trimTrace(std::vector<TracePacket> trace,
                                   double t_max);

/** Seeded generator for records, traces, and datasets. */
class KddGenerator
{
  public:
    explicit KddGenerator(KddConfig cfg, uint64_t seed = 1);

    /** Sample cfg.connections records with start times over the trace. */
    std::vector<ConnRecord> sampleConnections();

    /**
     * Expand records to an interleaved, time-sorted packet trace. Each
     * record becomes fwd_pkts client-to-server packets spread over its
     * duration ("each trace element represents a set of packets").
     */
    std::vector<TracePacket> expandToPackets(
        const std::vector<ConnRecord> &records);

    /**
     * Run the shared FlowTracker over a trace and emit every `stride`-th
     * packet's features as a labeled example. `svm_features` selects the
     * 8-feature SVM view over the 6-feature DNN view.
     */
    nn::Dataset packetDataset(const std::vector<TracePacket> &trace,
                              size_t stride, bool svm_features) const;

    /** Convenience: records -> trace -> dataset in one call. */
    nn::Dataset dataset(size_t stride, bool svm_features);

    const KddConfig &config() const { return cfg_; }

  private:
    ConnRecord sampleBenign(double start_s);
    ConnRecord sampleDos(double start_s, uint32_t attacker, uint32_t victim);
    ConnRecord sampleProbe(double start_s, uint32_t attacker,
                           uint32_t victim, uint16_t port);
    ConnRecord sampleR2l(double start_s, uint32_t attacker);
    ConnRecord sampleU2r(double start_s, uint32_t attacker);

    KddConfig cfg_;
    util::Rng rng_;
    uint16_t next_ephemeral_ = 32768;
};

} // namespace taurus::net
