/**
 * @file
 * Packet-major batched DFG evaluation.
 *
 * Evaluates a lowered graph on a burst of `bw` same-tenant packets at
 * once: every node's value block is a SoA matrix (lane i's per-packet
 * values contiguous at [i*bw, (i+1)*bw)), so the lane loops that
 * evaluateInto runs once per packet become one SIMD pass over the whole
 * burst. All arithmetic routes through the kernels::Ops table and is
 * bit-identical to running dfg::evaluateInto on each packet alone —
 * batching is a throughput optimization, never a semantics change
 * (asserted by tests/kernels_test and bench/kernel_bench).
 */

#pragma once

#include <cstdint>
#include <vector>

#include "dfg/eval.hpp"
#include "dfg/graph.hpp"

namespace taurus::dfg {

/** One node's batched value block (SoA: lane-major, bw packets wide). */
struct BatchVec
{
    std::vector<int32_t> lanes; ///< width x bw, lane i at [i*bw, (i+1)*bw)
    size_t width = 0;           ///< lanes per packet
    ValueType type = ValueType::Int8Vec;
    /** Every element is a sign-extended int8 (enables the narrow SIMD
     *  accumulation paths; false is always sound, just slower). */
    bool narrow = false;
};

/**
 * Reusable state for evaluateBatchInto: cached topo order plus per-node
 * SoA blocks whose capacity is retained across bursts. Binding mirrors
 * EvalScratch (self-binds on graph identity / node-count change).
 */
class BatchEvalScratch
{
  public:
    /** Validate `g`, cache its topo order, and size the buffers. */
    void bind(const Graph &g);

    bool bound() const { return graph_ != nullptr; }

    /** Number of Input nodes in the bound graph. */
    size_t inputCount() const { return n_inputs_; }

  private:
    friend std::vector<BatchVec> &evaluateBatchInto(
        const Graph &g, const int8_t *const *inputs, size_t bw,
        BatchEvalScratch &scratch);

    const Graph *graph_ = nullptr;
    std::vector<int> topo_;
    std::vector<int> out_ids_;
    size_t n_inputs_ = 0;
    std::vector<BatchVec> values_;  ///< one per node
    std::vector<BatchVec> outputs_; ///< one per Output node
};

/**
 * Evaluate `g` on a burst of packets. `inputs` holds one int8 feature
 * pointer per (Input node, packet): Input node k (in topo encounter
 * order, matching evaluateInto's input matching) reads packet c's
 * vector from inputs[k*bw + c]; each pointer must address `width`
 * int8 features. Returns one BatchVec per Output node, valid until the
 * next call. Results are bit-identical to bw independent evaluateInto
 * calls.
 */
std::vector<BatchVec> &evaluateBatchInto(const Graph &g,
                                         const int8_t *const *inputs,
                                         size_t bw,
                                         BatchEvalScratch &scratch);

} // namespace taurus::dfg
