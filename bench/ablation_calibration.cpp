/**
 * @file
 * Ablation: quantization calibration-set size. Post-training int8
 * quantization picks activation ranges from calibration data; too few
 * samples mis-estimate ranges and cost accuracy. Supports the Table 3
 * "minimal loss" claim by showing where it would break.
 */

#include "harness.hpp"

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "nn/quantized.hpp"
#include "util/table.hpp"

TAURUS_BENCH(ablation_calibration, "Table 3 ablation",
             "calibration-set size for post-training quantization")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Ablation: calibration-set size for post-training "
          "quantization (anomaly DNN)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(3000, 800));

    TablePrinter t({"Calibration samples", "Quantized F1 x100",
                    "Delta vs float"});
    const double float_f1 = dnn.float_test.f1 * 100.0;
    const std::vector<size_t> sizes =
        ctx.smoke() ? std::vector<size_t>{1, 16, 256}
                    : std::vector<size_t>{1, 4, 16, 64, 256, 1024};
    for (size_t n : sizes) {
        std::vector<nn::Vector> cal;
        for (size_t i = 0; i < n && i < dnn.train.size(); ++i)
            cal.push_back(dnn.train.x[i]);
        const auto qm = nn::QuantizedMlp::fromFloat(dnn.model, cal);
        const auto m = models::scoreBinary(
            [&](const nn::Vector &x) { return qm.predict(x); },
            dnn.test);
        ctx.metric("cal" + std::to_string(n) + "_f1_x100",
                   m.f1 * 100.0);
        t.addRow({std::to_string(n),
                  TablePrinter::num(m.f1 * 100.0, 1),
                  TablePrinter::num(m.f1 * 100.0 - float_f1, 1)});
    }
    t.print(os);

    ctx.metric("float_f1_x100", float_f1);
    os << "\nFloat32 reference F1 x100: "
       << TablePrinter::num(float_f1, 1)
       << ". A few dozen representative samples suffice for "
          "full-accuracy int8 deployment.\n";
}
