/**
 * @file
 * RBF network with SVM-shaped inference for anomaly detection.
 *
 * The paper's first anomaly detector is "an SVM with eight input features
 * ... and a radial-basis function" (Section 5.1.2, Mehmood & Rais). Its
 * per-packet compute is: for each support vector, a squared distance and a
 * kernel evaluation, then a weighted sum. We reproduce exactly that compute
 * shape as an RBF network whose centers play the role of support vectors and
 * whose output weights are trained with logistic-loss SGD. (DESIGN.md
 * documents this substitution; an SMO-trained SVM would have identical
 * data-plane structure.)
 */

#pragma once

#include <vector>

#include "nn/dataset.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace taurus::nn {

/** RBF network: score(x) = sum_k w_k * exp(-gamma * ||x - c_k||^2) + b. */
class RbfNet
{
  public:
    /**
     * Fit: centers from per-class kmeans, gamma from the median pairwise
     * center distance, weights by SGD on logistic loss.
     */
    static RbfNet fit(const Dataset &data, int centers_per_class,
                      int epochs, float lr, util::Rng &rng);

    /** Real-valued decision score (positive => anomalous). */
    double score(const Vector &x) const;

    /** Binary prediction. */
    int predict(const Vector &x) const { return score(x) > 0.0 ? 1 : 0; }

    double accuracy(const Dataset &data) const;

    const std::vector<Vector> &centers() const { return centers_; }
    const Vector &weights() const { return weights_; }
    float gamma() const { return gamma_; }
    float bias() const { return bias_; }

    /** Kernel feature vector phi(x) (one entry per center). */
    Vector features(const Vector &x) const;

  private:
    std::vector<Vector> centers_;
    Vector weights_;
    float gamma_ = 1.0f;
    float bias_ = 0.0f;
};

} // namespace taurus::nn
