#include "nn/rbf.hpp"

#include <algorithm>
#include <cmath>

#include "nn/kmeans.hpp"

namespace taurus::nn {

namespace {

double
sqDist(const Vector &a, const Vector &b)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace

RbfNet
RbfNet::fit(const Dataset &data, int centers_per_class, int epochs,
            float lr, util::Rng &rng)
{
    RbfNet net;

    // Per-class kmeans centers act as support vectors.
    std::vector<Vector> pos, neg;
    for (size_t i = 0; i < data.size(); ++i)
        (data.y[i] ? pos : neg).push_back(data.x[i]);
    for (const auto *cls : {&neg, &pos}) {
        if (cls->empty())
            continue;
        const int k = std::min<int>(centers_per_class,
                                    static_cast<int>(cls->size()));
        const KMeans km = KMeans::fit(*cls, k, 15, rng);
        for (const auto &c : km.centers())
            net.centers_.push_back(c);
    }

    // Gamma from median pairwise center distance (standard heuristic).
    std::vector<double> dists;
    for (size_t i = 0; i < net.centers_.size(); ++i)
        for (size_t j = i + 1; j < net.centers_.size(); ++j)
            dists.push_back(sqDist(net.centers_[i], net.centers_[j]));
    std::sort(dists.begin(), dists.end());
    const double median =
        dists.empty() ? 1.0 : dists[dists.size() / 2];
    net.gamma_ = static_cast<float>(1.0 / std::max(median, 1e-6));

    // Logistic-regression on kernel features.
    net.weights_.assign(net.centers_.size(), 0.0f);
    net.bias_ = 0.0f;
    std::vector<size_t> idx(data.size());
    for (size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    for (int epoch = 0; epoch < epochs; ++epoch) {
        rng.shuffle(idx);
        for (size_t i : idx) {
            const Vector phi = net.features(data.x[i]);
            const double z = dot(net.weights_, phi) + net.bias_;
            const double p = 1.0 / (1.0 + std::exp(-z));
            const double err =
                p - static_cast<double>(data.y[i]);
            for (size_t k = 0; k < phi.size(); ++k)
                net.weights_[k] -= lr * static_cast<float>(err * phi[k]);
            net.bias_ -= lr * static_cast<float>(err);
        }
    }
    return net;
}

Vector
RbfNet::features(const Vector &x) const
{
    Vector phi(centers_.size());
    for (size_t k = 0; k < centers_.size(); ++k)
        phi[k] = std::exp(-gamma_ * static_cast<float>(
                                        sqDist(x, centers_[k])));
    return phi;
}

double
RbfNet::score(const Vector &x) const
{
    return dot(weights_, features(x)) + bias_;
}

double
RbfNet::accuracy(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < data.size(); ++i)
        if (predict(data.x[i]) == data.y[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

} // namespace taurus::nn
