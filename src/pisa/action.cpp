#include "pisa/action.hpp"

#include <algorithm>
#include <stdexcept>

namespace taurus::pisa {

uint32_t
flowHash(const Phv &phv)
{
    // FNV-1a over the 5-tuple containers, matching net::FlowKey::hash's
    // byte order so software flow tracking and MAT registers agree.
    uint64_t h = 0xcbf29ce484222325ull;
    auto mix = [&h](uint32_t v, int bytes) {
        for (int i = 0; i < bytes; ++i) {
            h ^= (v >> (8 * i)) & 0xff;
            h *= 0x100000001b3ull;
        }
    };
    mix(phv.get(Field::Ipv4Src), 4);
    mix(phv.get(Field::Ipv4Dst), 4);
    mix(phv.get(Field::L4Sport), 2);
    mix(phv.get(Field::L4Dport), 2);
    mix(phv.get(Field::Ipv4Proto), 1);
    return static_cast<uint32_t>(h ^ (h >> 32));
}

namespace {

uint32_t
operand(const Instr &in, const Phv &phv, const std::vector<uint32_t> &args)
{
    switch (in.src) {
      case Src::None:
        return 0;
      case Src::Imm:
        return in.imm;
      case Src::FieldSrc:
        return phv.get(in.src_field);
      case Src::Arg:
        if (static_cast<size_t>(in.arg_index) >= args.size())
            throw std::out_of_range("action-data index out of range");
        return args[static_cast<size_t>(in.arg_index)];
    }
    return 0;
}

} // namespace

void
execute(const Action &action, Phv &phv, RegisterFile &regs,
        const std::vector<uint32_t> &args)
{
    for (const Instr &in : action.instrs) {
        const uint32_t rhs = operand(in, phv, args);
        const uint32_t cur = phv.get(in.dst);
        switch (in.op) {
          case ActionOp::Set:
            phv.set(in.dst, rhs);
            break;
          case ActionOp::Add:
            phv.set(in.dst, cur + rhs);
            break;
          case ActionOp::Sub:
            phv.set(in.dst, cur - rhs);
            break;
          case ActionOp::Min:
            phv.set(in.dst, std::min(cur, rhs));
            break;
          case ActionOp::Max:
            phv.set(in.dst, std::max(cur, rhs));
            break;
          case ActionOp::And:
            phv.set(in.dst, cur & rhs);
            break;
          case ActionOp::Or:
            phv.set(in.dst, cur | rhs);
            break;
          case ActionOp::Xor:
            phv.set(in.dst, cur ^ rhs);
            break;
          case ActionOp::Shl:
            phv.set(in.dst, rhs >= 32 ? 0 : cur << rhs);
            break;
          case ActionOp::Shr:
            phv.set(in.dst, rhs >= 32 ? 0 : cur >> rhs);
            break;
          case ActionOp::TestEq:
            phv.set(in.dst, cur == rhs ? 1 : 0);
            break;
          case ActionOp::HashFlow: {
            const uint32_t mod = rhs ? rhs : 1;
            phv.set(in.dst, flowHash(phv) % mod);
            break;
          }
          case ActionOp::RegLoad:
            phv.set(in.dst,
                    regs.array(in.reg).read(phv.get(in.reg_index)));
            break;
          case ActionOp::RegStore:
            regs.array(in.reg).write(phv.get(in.reg_index), rhs);
            break;
          case ActionOp::RegAdd:
            phv.set(in.dst,
                    regs.array(in.reg).add(phv.get(in.reg_index), rhs));
            break;
          case ActionOp::RegLoadSet: {
            RegisterArray &arr = regs.array(in.reg);
            const size_t idx = phv.get(in.reg_index);
            const uint32_t was = arr.read(idx);
            if (was == 0) {
                arr.write(idx, rhs);
                phv.set(in.dst, rhs);
            } else {
                phv.set(in.dst, was);
            }
            break;
          }
        }
    }
}

} // namespace taurus::pisa
