/**
 * @file
 * Quiescent-state-based reclamation (QSBR) for control-plane mutations
 * under live traffic — the RCU flavor ndn-dpdk's forwarding plane uses
 * for FIB updates: the fast path never takes a lock or touches an
 * atomic per packet; instead each data-plane worker *announces* the
 * global epoch at its batch/burst boundaries (its quiescent states),
 * and retired control state is freed only once every online worker has
 * announced an epoch later than the retirement.
 *
 * Reader protocol (one slot per worker):
 *
 *   online(w)   -> worker may hold references between quiescent states
 *   quiesce(w)  -> worker holds NO references from before this call
 *   offline(w)  -> worker holds no references and announces nothing
 *                  (an offline worker never delays reclamation)
 *
 * Writer protocol:
 *
 *   retire(fn)  -> defer `fn` (which frees the retired state) until
 *                  every online reader quiesces past the current epoch
 *   tryReclaim()-> run every deferred fn whose epoch has been passed
 *
 * The writer side is mutex-guarded (control-plane cadence); the reader
 * side is one release store per quiescent state.
 */

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

namespace taurus::runtime {

/** Deferred-free domain over a fixed set of reader slots. */
class QsbrReclaimer
{
  public:
    explicit QsbrReclaimer(size_t readers);

    /** Reader `r` starts holding references (announces the epoch). */
    void online(size_t r);

    /**
     * Reader `r` passes a quiescent state: it holds no references
     * obtained before this call. One release store.
     */
    void quiesce(size_t r);

    /** Reader `r` stops reading entirely (holds nothing). */
    void offline(size_t r);

    /**
     * Defer `reclaim` until every online reader has quiesced past the
     * current epoch. The callback runs from tryReclaim() — on whichever
     * thread calls it — exactly once.
     */
    void retire(std::function<void()> reclaim);

    /** Free everything whose epoch has been passed; returns the count
     *  reclaimed by this call. */
    size_t tryReclaim();

    /** Blocks reclaimable? (diagnostics; racy by nature.) */
    uint64_t retired() const
    {
        return retired_count_.load(std::memory_order_relaxed);
    }
    uint64_t reclaimed() const
    {
        return reclaimed_count_.load(std::memory_order_relaxed);
    }
    uint64_t epoch() const
    {
        return epoch_.load(std::memory_order_relaxed);
    }

  private:
    struct Slot
    {
        /** Epoch last announced; 0 = offline (delays nothing). */
        std::atomic<uint64_t> announced{0};
        /** Pad to a cache line so workers never false-share slots. */
        char pad[64 - sizeof(std::atomic<uint64_t>)];
    };

    /** Smallest epoch any online reader might still be inside. */
    uint64_t minOnlineEpoch() const;

    std::atomic<uint64_t> epoch_{1};
    std::vector<Slot> slots_;

    std::mutex m_; ///< guards the retired list (writer cadence)
    std::deque<std::pair<uint64_t, std::function<void()>>> retired_;
    std::atomic<uint64_t> retired_count_{0};
    std::atomic<uint64_t> reclaimed_count_{0};
};

} // namespace taurus::runtime
