/**
 * @file
 * Internal seams between the dispatcher and the per-level kernel TUs.
 *
 * Each SIMD translation unit is compiled with its own -m flags (set in
 * src/CMakeLists.txt, x86 only) and exports one patch function that
 * overwrites the entries it accelerates; everything it leaves alone
 * stays on the scalar reference. On targets where a level is not
 * compiled in, the patch function returns false and the dispatcher
 * never offers that level.
 */

#pragma once

#include "kernels/kernels.hpp"

namespace taurus::kernels::detail {

/** The scalar reference table (defines the exact semantics). */
Ops makeScalarOps();

/** Overlay SSE4.1 kernels; false when not compiled for this target. */
bool patchSse(Ops &ops);

/** Overlay AVX2 kernels; false when not compiled for this target. */
bool patchAvx2(Ops &ops);

/**
 * Shared by every level's fallback paths: the scalar requantize of one
 * int32 accumulator to a sign-extended int8 (Requantizer::apply).
 */
inline int32_t
requant1(int32_t v, const fixed::Requantizer &rq)
{
    return static_cast<int32_t>(rq.apply(v));
}

/** Wrapping int32 product without signed-overflow UB. */
inline int32_t
wrapMul(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<int64_t>(a) *
                                static_cast<int64_t>(b));
}

/** Wrapping int32 sum without signed-overflow UB. */
inline int32_t
wrapAdd(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<int64_t>(a) +
                                static_cast<int64_t>(b));
}

} // namespace taurus::kernels::detail
