#include "util/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace taurus::util::json {

void
Value::push(Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        throw std::logic_error("json: push on non-array");
    array_.push_back(std::move(v));
}

void
Value::set(const std::string &key, Value v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        throw std::logic_error("json: set on non-object");
    for (auto &kv : object_) {
        if (kv.first == key) {
            kv.second = std::move(v);
            return;
        }
    }
    object_.emplace_back(key, std::move(v));
}

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &kv : object_)
        if (kv.first == key)
            return &kv.second;
    return nullptr;
}

size_t
Value::size() const
{
    switch (kind_) {
    case Kind::Array:
        return array_.size();
    case Kind::Object:
        return object_.size();
    default:
        return 0;
    }
}

std::string
Value::escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\r':
            out += "\\r";
            break;
        case '\t':
            out += "\\t";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

std::string
formatDouble(double d)
{
    // NaN / Inf are not representable in JSON numbers.
    if (!std::isfinite(d))
        return "null";
    // Shortest round-trip representation.
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    std::string s(buf, res.ptr);
    // Keep integral-valued doubles recognizable as floats.
    if (s.find('.') == std::string::npos &&
        s.find('e') == std::string::npos)
        s += ".0";
    return s;
}

} // namespace

void
Value::write(std::string &out, int indent, int depth) const
{
    const std::string pad =
        indent > 0
            ? std::string(static_cast<size_t>(indent) * (depth + 1), ' ')
            : "";
    const std::string close_pad =
        indent > 0 ? std::string(static_cast<size_t>(indent) * depth, ' ')
                   : "";
    const char *nl = indent > 0 ? "\n" : "";
    const char *kv_sep = indent > 0 ? ": " : ":";

    switch (kind_) {
    case Kind::Null:
        out += "null";
        break;
    case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
    case Kind::Int:
        out += std::to_string(int_);
        break;
    case Kind::Double:
        out += formatDouble(double_);
        break;
    case Kind::String:
        out += '"';
        out += escape(string_);
        out += '"';
        break;
    case Kind::Array: {
        if (array_.empty()) {
            out += "[]";
            break;
        }
        out += '[';
        out += nl;
        for (size_t i = 0; i < array_.size(); ++i) {
            out += pad;
            array_[i].write(out, indent, depth + 1);
            if (i + 1 < array_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += ']';
        break;
    }
    case Kind::Object: {
        if (object_.empty()) {
            out += "{}";
            break;
        }
        out += '{';
        out += nl;
        for (size_t i = 0; i < object_.size(); ++i) {
            out += pad;
            out += '"';
            out += escape(object_[i].first);
            out += '"';
            out += kv_sep;
            object_[i].second.write(out, indent, depth + 1);
            if (i + 1 < object_.size())
                out += ',';
            out += nl;
        }
        out += close_pad;
        out += '}';
        break;
    }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    write(out, indent, 0);
    return out;
}

} // namespace taurus::util::json
