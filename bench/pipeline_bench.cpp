/**
 * @file
 * Pipelined dataplane vs the synchronous farm, at arrival-burst
 * granularity.
 *
 * The honest comparison: traffic does not arrive as one giant batch —
 * a forwarding dataplane receives RX bursts of a handful to a few
 * dozen packets (DPDK bursts run 8-32; latency-sensitive NFV sits at
 * the small end). At that granularity the synchronous
 * SwitchFarm pays a partition pass, a thread spawn/join barrier, and a
 * scatter *per burst*; the PipelineFarm's RX stage hands each burst to
 * already-running dispatch and worker threads over SPSC rings. Both
 * serve the same trace on the same worker count, in paired rounds
 * (sync and pipeline alternate first position to cancel warmup drift),
 * and the acceptance bar — pipelined pkts/s >= 2.0x sync, full mode —
 * is asserted on the median paired ratio.
 *
 * Three more sections pin the rest of the ISSUE 9 contract:
 *  - parity: with rings sized for zero drops the pipeline's decisions
 *    are bit-identical to the sync farm (hard failure on divergence);
 *  - saturation: with tiny rings and DropNewest, every fed packet is
 *    accounted for — completed + dispatch_drops == fed, per-stage and
 *    per-worker drop counters land in the JSON artifact;
 *  - exporter: the drained scrape is written to PIPELINE_snapshot.prom
 *    for CI's Prometheus exposition-format check (dispatch_drops /
 *    ring_occupancy / burst-size families).
 */

#include "harness.hpp"

#include <algorithm>
#include <fstream>
#include <string>
#include <vector>

#include "dataplane/pipeline.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "obs/export.hpp"
#include "taurus/app.hpp"
#include "taurus/farm.hpp"
#include "util/table.hpp"

namespace {

void
require(bool ok, const char *what)
{
    if (!ok)
        throw std::runtime_error(std::string("pipeline_bench: ") + what);
}

bool
sameDecision(const taurus::core::SwitchDecision &a,
             const taurus::core::SwitchDecision &b)
{
    return a.flagged == b.flagged && a.dropped == b.dropped &&
           a.bypassed == b.bypassed && a.score == b.score &&
           a.class_id == b.class_id && a.app_id == b.app_id &&
           a.egress_port == b.egress_port &&
           a.feature_count == b.feature_count &&
           a.features == b.features && a.latency_ns == b.latency_ns;
}

} // namespace

TAURUS_BENCH(pipeline_bench, "Pipelined dataplane",
             "RX/dispatch + SPSC rings vs the synchronous farm: "
             "burst-granularity throughput, parity, drop accounting")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Pipelined shared-nothing dataplane vs synchronous farm\n\n";

    // ---- Fixtures ---------------------------------------------------
    const auto dnn = models::trainAnomalyDnn(1, ctx.size(1500, 600));
    net::KddConfig cfg;
    cfg.connections = ctx.size(2500, 400);
    net::KddGenerator gen(cfg, 9);
    const auto trace = gen.expandToPackets(gen.sampleConnections());
    const auto artifact = core::makeAnomalyDnnApp(dnn);

    // Same worker count on both sides — the comparison is feed
    // architecture (per-burst spawn/join vs persistent stages), not
    // parallel speedup, so the count is fixed rather than derived from
    // the host's core count: 4 shared-nothing workers either way.
    const size_t workers = 4;
    // Small latency-oriented RX burst: at this granularity the sync
    // farm's per-call thread barrier dominates, which is exactly the
    // cost the pipelined dataplane exists to amortise.
    const size_t kBurst = 8;
    ctx.metric("workers", workers);
    ctx.metric("rx_burst_pkts", kBurst);
    ctx.metric("trace_pkts", trace.size());

    const auto packetSpan = [&](size_t off, size_t n) {
        return util::Span<const net::TracePacket>(trace.data() + off, n);
    };

    // ---- 1. Zero-drop parity (the determinism acceptance bar) -------
    {
        core::SwitchFarm farm({}, workers);
        farm.installApp(artifact);
        const auto want = farm.processTrace(trace);

        dataplane::PipelineConfig pc;
        pc.workers = workers;
        pc.ring_capacity = trace.size(); // sized for zero drops
        dataplane::PipelineFarm pipe({}, pc);
        pipe.installApp(artifact);
        const auto got = pipe.processTrace(trace);

        const auto ps = pipe.pipelineStats();
        require(ps.dispatch_drops == 0, "parity run dropped packets");
        require(got.size() == want.size(), "parity size mismatch");
        for (size_t i = 0; i < got.size(); ++i)
            require(sameDecision(got[i], want[i]),
                    "pipeline decision diverged from sync farm at "
                    "zero drops");
        os << "parity: " << trace.size()
           << " decisions bit-identical to the synchronous farm "
              "(0 drops)\n";
        ctx.metric("parity_pkts", got.size());
        ctx.metric("parity_drops", ps.dispatch_drops);
    }

    // ---- 2. Paired throughput rounds at burst granularity -----------
    const size_t rounds = ctx.size(7, 3);
    std::vector<double> sync_pps, pipe_pps, ratios;

    core::SwitchFarm farm({}, workers);
    farm.installApp(artifact);

    dataplane::PipelineConfig pc;
    pc.workers = workers;
    // Sized for zero drops: the rounds measure feed architecture, not
    // load shedding, and a ratio bought by dropping would be bogus
    // (asserted below).
    pc.ring_capacity = trace.size();
    pc.rx_burst = kBurst;
    dataplane::PipelineFarm pipe({}, pc);
    pipe.installApp(artifact);

    std::vector<core::SwitchDecision> dec(trace.size());
    const auto decSpan = [&](size_t off, size_t n) {
        return util::Span<core::SwitchDecision>(dec.data() + off, n);
    };

    const auto runSync = [&] {
        const bench::Timer t;
        for (size_t off = 0; off < trace.size(); off += kBurst) {
            const size_t n = std::min(kBurst, trace.size() - off);
            farm.processTrace(packetSpan(off, n), decSpan(off, n));
        }
        return double(trace.size()) / t.elapsedSec();
    };
    const auto runPipe = [&] {
        const bench::Timer t;
        for (size_t off = 0; off < trace.size(); off += kBurst) {
            const size_t n = std::min(kBurst, trace.size() - off);
            pipe.feed(packetSpan(off, n), decSpan(off, n));
        }
        pipe.drain();
        return double(trace.size()) / t.elapsedSec();
    };

    runSync(); // one unpaired warmup each, outside the measurement
    runPipe();
    for (size_t r = 0; r < rounds; ++r) {
        // Alternate which side runs first so cache/frequency warmup
        // drift cancels across the pair.
        double s, p;
        if (r % 2 == 0) {
            s = runSync();
            p = runPipe();
        } else {
            p = runPipe();
            s = runSync();
        }
        sync_pps.push_back(s);
        pipe_pps.push_back(p);
        ratios.push_back(p / s);
    }
    auto median = [](std::vector<double> v) {
        std::sort(v.begin(), v.end());
        return v[v.size() / 2];
    };
    const double sync_med = median(sync_pps);
    const double pipe_med = median(pipe_pps);
    const double ratio_med = median(ratios);

    TablePrinter t({"Feed architecture", "Median pkts/s", "Ratio"});
    t.addRow({"sync farm (spawn/join per burst)",
              TablePrinter::num(sync_med, 0), "1.00"});
    t.addRow({"pipelined (persistent stages)",
              TablePrinter::num(pipe_med, 0),
              TablePrinter::num(ratio_med, 2)});
    t.print(os);

    ctx.metric("sync_pkts_per_sec", sync_med);
    ctx.metric("pipeline_pkts_per_sec", pipe_med);
    ctx.metric("speedup_ratio_median", ratio_med);
    ctx.metric("paired_rounds", rounds);

    // The paired-round throughput runs must themselves be lossless —
    // a ratio bought by shedding load would be meaningless.
    require(pipe.pipelineStats().dispatch_drops == 0,
            "throughput rounds dropped packets");
    if (!ctx.smoke())
        require(ratio_med >= 2.0,
                "pipelined throughput below 2.0x the synchronous farm");

    // Burst-size distributions from the pipeline's own registry.
    {
        const obs::Snapshot snap = pipe.scrape();
        if (const auto *h =
                snap.findHist("taurus_pipeline_rx_burst_pkts"))
            ctx.histogram("dispatch_burst", h->hist, "pkts");
        if (const auto *h =
                snap.findHist("taurus_pipeline_worker_burst_pkts"))
            ctx.histogram("worker_burst", h->hist, "pkts");
    }

    // ---- 3. Forced saturation: per-stage drop accounting ------------
    {
        dataplane::PipelineConfig tiny;
        tiny.workers = workers;
        tiny.ring_capacity = 4; // guaranteed overflow
        tiny.rx_burst = 64;
        tiny.overflow = dataplane::OverflowPolicy::DropNewest;
        dataplane::PipelineFarm sat({}, tiny);
        sat.installApp(artifact);
        sat.processTrace(trace);

        const auto ps = sat.pipelineStats();
        require(ps.dispatch_drops > 0,
                "saturation section failed to force drops");
        require(ps.dispatched + ps.dispatch_drops == ps.fed,
                "drop accounting leak: dispatched + drops != fed");
        require(ps.completed == ps.dispatched,
                "drop accounting leak: completed != dispatched");

        os << "\nsaturation (rings=4): fed " << ps.fed << ", dropped "
           << ps.dispatch_drops << " at dispatch, completed "
           << ps.completed << " (exactly accounted)\n";
        // Per-stage counters in the JSON artifact (acceptance bar).
        ctx.metric("sat_fed", ps.fed);
        ctx.metric("sat_dispatched", ps.dispatched);
        ctx.metric("sat_dispatch_drops", ps.dispatch_drops);
        ctx.metric("sat_completed", ps.completed);
        ctx.metric("sat_rx_bursts", ps.rx_bursts);
        ctx.metric("sat_worker_bursts", ps.worker_bursts);
        for (size_t w = 0; w < ps.drops_per_worker.size(); ++w)
            ctx.metric("sat_drops_worker_" + std::to_string(w),
                       ps.drops_per_worker[w]);
    }

    // ---- 4. Exporter artifact for the CI exposition check -----------
    {
        const obs::Snapshot snap = pipe.scrape(); // drained boundary
        const std::string prom = obs::renderPrometheus(snap);
        require(prom.find("taurus_pipeline_dispatch_drops_total") !=
                    std::string::npos,
                "dispatch_drops family missing from exposition");
        require(prom.find("taurus_pipeline_ring_occupancy") !=
                    std::string::npos,
                "ring_occupancy family missing from exposition");
        require(prom.find("taurus_pipeline_rx_burst_pkts_bucket") !=
                    std::string::npos,
                "burst-size histogram missing from exposition");
        std::ofstream f("PIPELINE_snapshot.prom");
        f << prom;
        require(bool(f), "failed writing PIPELINE_snapshot.prom");
        os << "wrote PIPELINE_snapshot.prom (" << prom.size()
           << " bytes)\n";
    }
}
