#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "compiler/lower.hpp"
#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "nn/prune.hpp"
#include "nn/quantized.hpp"
#include "dfg/eval.hpp"

using namespace taurus;

namespace {

const models::AnomalyDnn &
dnn()
{
    static const models::AnomalyDnn model = models::trainAnomalyDnn(7,
                                                                    2500);
    return model;
}

} // namespace

TEST(Prune, ShapesShrinkAndIoPreserved)
{
    util::Rng rng(9);
    nn::PruneConfig cfg;
    cfg.keep_fraction = 0.5;
    cfg.finetune_epochs = 0;
    const nn::Mlp pruned = nn::pruneUnits(dnn().model, dnn().train, cfg,
                                          rng);

    ASSERT_EQ(pruned.layers().size(), dnn().model.layers().size());
    EXPECT_EQ(pruned.inputSize(), dnn().model.inputSize());
    EXPECT_EQ(pruned.outputSize(), dnn().model.outputSize());
    for (size_t li = 0; li + 1 < pruned.layers().size(); ++li)
        EXPECT_LT(pruned.layers()[li].w.rows(),
                  dnn().model.layers()[li].w.rows());
}

TEST(Prune, ImportanceRanksUnits)
{
    const auto importance = nn::unitImportance(dnn().model, 0);
    ASSERT_EQ(importance.size(), 12u);
    for (float v : importance)
        EXPECT_GE(v, 0.0f);
    // Not all units are equal after training.
    const auto [mn, mx] =
        std::minmax_element(importance.begin(), importance.end());
    EXPECT_LT(*mn, *mx);
}

TEST(Prune, KeepAllIsLossless)
{
    util::Rng rng(9);
    nn::PruneConfig cfg;
    cfg.keep_fraction = 1.0;
    cfg.finetune_epochs = 0;
    const nn::Mlp same = nn::pruneUnits(dnn().model, dnn().train, cfg,
                                        rng);
    // Identical predictions everywhere on the test set.
    for (size_t i = 0; i < dnn().test.size(); ++i)
        EXPECT_EQ(same.predict(dnn().test.x[i]),
                  dnn().model.predict(dnn().test.x[i]));
}

TEST(Prune, FineTunedHalfModelKeepsAccuracy)
{
    util::Rng rng(9);
    nn::PruneConfig cfg;
    cfg.keep_fraction = 0.5;
    cfg.finetune_epochs = 10;
    cfg.finetune.learning_rate = 0.02f;
    const nn::Mlp pruned = nn::pruneUnits(dnn().model, dnn().train, cfg,
                                          rng);

    const auto base = models::scoreBinary(
        [&](const nn::Vector &x) { return dnn().model.predict(x); },
        dnn().test);
    const auto small = models::scoreBinary(
        [&](const nn::Vector &x) { return pruned.predict(x); },
        dnn().test);
    EXPECT_GT(small.f1, base.f1 - 0.10);
}

TEST(Prune, SmallerModelUsesFewerCus)
{
    util::Rng rng(9);
    nn::PruneConfig cfg;
    cfg.keep_fraction = 0.4;
    cfg.finetune_epochs = 5;
    const nn::Mlp pruned = nn::pruneUnits(dnn().model, dnn().train, cfg,
                                          rng);

    std::vector<nn::Vector> calib(dnn().train.x.begin(),
                                  dnn().train.x.begin() + 128);
    const auto q_base =
        nn::QuantizedMlp::fromFloat(dnn().model, calib);
    const auto q_small = nn::QuantizedMlp::fromFloat(pruned, calib);
    const auto rep_base = compiler::analyze(
        compiler::compile(compiler::lowerMlp(q_base)));
    const auto rep_small = compiler::analyze(
        compiler::compile(compiler::lowerMlp(q_small)));

    EXPECT_LT(rep_small.cus, rep_base.cus);
    EXPECT_LT(rep_small.area_mm2, rep_base.area_mm2);
    EXPECT_LE(rep_small.latency_ns, rep_base.latency_ns);
    EXPECT_LT(q_small.weightBytes(), q_base.weightBytes());
}

class KeepFractionTest : public ::testing::TestWithParam<double>
{
};

TEST_P(KeepFractionTest, AlwaysProducesValidLowerableModel)
{
    util::Rng rng(11);
    nn::PruneConfig cfg;
    cfg.keep_fraction = GetParam();
    cfg.finetune_epochs = 2;
    const nn::Mlp pruned = nn::pruneUnits(dnn().model, dnn().train, cfg,
                                          rng);
    std::vector<nn::Vector> calib(dnn().train.x.begin(),
                                  dnn().train.x.begin() + 64);
    const auto qm = nn::QuantizedMlp::fromFloat(pruned, calib);
    const auto g = compiler::lowerMlp(qm, "pruned");
    EXPECT_EQ(g.validate(), "");
    // Bit-exact against its own quantized reference.
    for (int t = 0; t < 20; ++t) {
        std::vector<int8_t> q(6);
        for (auto &v : q)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        EXPECT_EQ(dfg::evaluateSimple(g, q), qm.forwardInt(q));
    }
}

INSTANTIATE_TEST_SUITE_P(Fractions, KeepFractionTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));
