/**
 * @file
 * Synthetic IoT traffic-classification datasets.
 *
 * Two datasets stand in for the paper's IoT workloads (DESIGN.md
 * Section 1):
 *
 *  - the Table 3 binary classifier set (4 features, 2 classes) with a
 *    controlled Bayes error so float32 DNN accuracy lands near the
 *    paper's 67% — Table 3's claim is about quantization loss, which is a
 *    property of the model/quantizer, not of the dataset identity;
 *  - the KMeans device-classification set (11 features, 5 categories,
 *    Section 5.1.2) used for the Table 5 IoT row and the classification
 *    example.
 */

#pragma once

#include <cstdint>

#include "nn/dataset.hpp"

namespace taurus::net {

/**
 * 4-feature, 2-class IoT set for the Table 3 quantization study. Class
 * means are separated by ~0.9 sigma along two informative dimensions
 * (the other two are noise), putting the Bayes accuracy near 67%.
 */
nn::Dataset iotBinaryDataset(size_t samples, uint64_t seed);

/**
 * 11-feature, 5-category device set for KMeans (per-device-type traffic
 * signatures: packet sizes, inter-arrival stats, port entropy, ...).
 * Clusters are separated enough for high clustering purity.
 */
nn::Dataset iotDeviceDataset(size_t samples, uint64_t seed);

} // namespace taurus::net
