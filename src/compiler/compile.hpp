/**
 * @file
 * Place-and-route: dataflow graphs -> GridPrograms.
 *
 * Implements the back half of the Taurus compiler (Section 4):
 *  - packing: multiple narrow dot-like nodes that read the same source
 *    vector share one CU's lanes (the stage-3 sparse reduction of
 *    Figure 8), reducing CU count for narrow layers;
 *  - folding: when a graph needs more CU slots than the grid provides
 *    (the Indigo LSTM), slots are time-multiplexed onto physical CUs
 *    with a bounded number of contexts per CU;
 *  - placement: topological levels map to grid columns; units within a
 *    level are placed nearest the row of their producers to keep routes
 *    short;
 *  - weight MUs: weight tensors are assigned to MUs near their reader
 *    CUs, bounded by per-MU reader bandwidth and capacity.
 */

#pragma once

#include "dfg/graph.hpp"
#include "hw/program.hpp"

namespace taurus::compiler {

/** Compiler knobs (defaults reproduce the paper's final configuration). */
struct Options
{
    hw::GridSpec spec;
    hw::TimingSpec timing;

    /** Lane-pack narrow dot ops that share a source vector. */
    bool enable_packing = true;
    /** Max time-multiplexed contexts per CU when folding. */
    int max_contexts_per_cu = 8;
    /** Max dot-op reader CUs streaming from one weight MU. */
    int readers_per_weight_mu = 8;

    /**
     * Column band of the grid the program may occupy (spatial
     * multi-tenancy: placeApps carves one disjoint band per tenant).
     * The default spans the whole grid and reproduces the region-less
     * compiler exactly — topological levels then map to the band's
     * columns instead of the full grid's.
     */
    hw::Region region;
};

/** Compile a graph to a placed program; throws on infeasible graphs. */
hw::GridProgram compile(const dfg::Graph &graph, const Options &opts = {});

} // namespace taurus::compiler
