#include "taurus/farm.hpp"

#include <exception>
#include <stdexcept>
#include <thread>

#include "taurus/app.hpp"
#include "util/threading.hpp"

namespace taurus::core {

namespace {

/** Finalizer-style integer mix (splitmix64) for partition hashing. */
uint64_t
mix64(uint64_t x)
{
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

} // namespace

size_t
flowOwner(const net::TracePacket &tp, size_t workers)
{
    return static_cast<size_t>(mix64(tp.flow.src_ip)) % workers;
}

SwitchFarm::SwitchFarm(SwitchConfig cfg, size_t workers)
{
    workers = util::resolveWorkerCount(workers);
    replicas_.reserve(workers);
    for (size_t i = 0; i < workers; ++i)
        replicas_.push_back(std::make_unique<TaurusSwitch>(cfg));

    // One shared registry, one shard per replica: replica w's
    // per-packet counters land on shard w's cache lines only, and a
    // farm scrape merges all shards exactly.
    if (cfg.obs.metrics) {
        registry_ = std::make_shared<obs::MetricsRegistry>(workers);
        for (size_t i = 0; i < workers; ++i)
            replicas_[i]->bindObservability(registry_, i);
    }
}

obs::Snapshot
SwitchFarm::scrape() const
{
    return registry_ ? registry_->scrape() : obs::Snapshot{};
}

AppId
SwitchFarm::installApp(const AppArtifact &app)
{
    AppId id = 0;
    for (auto &sw : replicas_)
        id = sw->installApp(app); // same install order => same id
    return id;
}

AppId
SwitchFarm::installAnomalyModel(const models::AnomalyDnn &model)
{
    // Build the artifact once through the one shared builder and
    // install it everywhere, rather than re-deriving it per replica —
    // the same single code path TaurusSwitch::installAnomalyModel
    // takes, so the anomaly parity test covers both entry points.
    return installApp(makeAnomalyDnnApp(model));
}

std::vector<RetiredTenant>
SwitchFarm::removeApp(AppId id)
{
    // Each replica's removeApp validates before mutating, placement is
    // deterministic, and all replicas host the same set — so a
    // rejection fires on replica 0 before anything anywhere mutates
    // (all-or-nothing across replicas, not just within one).
    std::vector<RetiredTenant> retired;
    retired.reserve(replicas_.size());
    for (auto &sw : replicas_)
        retired.push_back(sw->removeApp(id));
    return retired;
}

std::vector<RetiredTenant>
SwitchFarm::replaceApp(AppId id, const AppArtifact &app)
{
    std::vector<RetiredTenant> retired;
    retired.reserve(replicas_.size());
    for (auto &sw : replicas_)
        retired.push_back(sw->replaceApp(id, app));
    return retired;
}

void
SwitchFarm::setDefaultApp(AppId id)
{
    for (auto &sw : replicas_)
        sw->setDefaultApp(id);
}

bool
SwitchFarm::installed(AppId id) const
{
    return replicas_.front()->installed(id);
}

std::vector<AppId>
SwitchFarm::appIds() const
{
    return replicas_.front()->appIds();
}

void
SwitchFarm::updateWeights(AppId id, const dfg::Graph &fresh)
{
    for (auto &sw : replicas_)
        sw->updateWeights(id, fresh);
}

void
SwitchFarm::updateWeights(const dfg::Graph &fresh)
{
    for (auto &sw : replicas_)
        sw->updateWeights(fresh);
}

size_t
SwitchFarm::workerFor(const net::TracePacket &tp) const
{
    return flowOwner(tp, replicas_.size());
}

void
SwitchFarm::processTrace(util::Span<const net::TracePacket> packets,
                         util::Span<SwitchDecision> decisions)
{
    if (packets.size() != decisions.size())
        throw std::invalid_argument(
            "processTrace: packets/decisions size mismatch");

    // Partition indices per worker, preserving trace order within each
    // partition (per-flow state updates must happen in arrival order).
    std::vector<std::vector<size_t>> parts(replicas_.size());
    for (auto &p : parts)
        p.reserve(packets.size() / replicas_.size() + 1);
    for (size_t i = 0; i < packets.size(); ++i)
        parts[workerFor(packets[i])].push_back(i);

    // Workers fill contiguous per-worker buffers rather than scattering
    // into the shared output (whose interleaved entries would
    // false-share cache lines between threads); the single-threaded
    // scatter after the join is cheap.
    std::vector<std::vector<SwitchDecision>> local(replicas_.size());
    std::vector<std::exception_ptr> errors(replicas_.size());
    std::vector<std::thread> threads;
    threads.reserve(replicas_.size());
    for (size_t w = 0; w < replicas_.size(); ++w) {
        threads.emplace_back([&, w]() {
            try {
                TaurusSwitch &sw = *replicas_[w];
                const auto &part = parts[w];
                auto &out = local[w];
                out.resize(part.size());
                // Batched drain: the replica windows consecutive
                // same-tenant packets through the packet-major
                // MapReduce path (decisions stay bit-identical).
                std::vector<const net::TracePacket *> pkt_ptrs(
                    part.size());
                std::vector<SwitchDecision *> out_ptrs(part.size());
                for (size_t j = 0; j < part.size(); ++j) {
                    pkt_ptrs[j] = &packets[part[j]];
                    out_ptrs[j] = &out[j];
                }
                sw.processBatch(pkt_ptrs.data(), out_ptrs.data(),
                                part.size());
            } catch (...) {
                errors[w] = std::current_exception();
            }
        });
    }
    for (auto &t : threads)
        t.join();
    for (const auto &err : errors)
        if (err)
            std::rethrow_exception(err);

    for (size_t w = 0; w < replicas_.size(); ++w)
        for (size_t j = 0; j < parts[w].size(); ++j)
            decisions[parts[w][j]] = local[w][j];
}

std::vector<SwitchDecision>
SwitchFarm::processTrace(const std::vector<net::TracePacket> &packets)
{
    std::vector<SwitchDecision> decisions(packets.size());
    processTrace(packets,
                 util::Span<SwitchDecision>(decisions.data(),
                                            decisions.size()));
    return decisions;
}

SwitchStats
SwitchFarm::mergedStats() const
{
    SwitchStats total;
    for (const auto &sw : replicas_)
        total.merge(sw->stats());
    return total;
}

SwitchStats
SwitchFarm::mergedStats(AppId id) const
{
    SwitchStats total;
    for (const auto &sw : replicas_)
        total.merge(sw->stats(id));
    return total;
}

size_t
SwitchFarm::appCount() const
{
    return replicas_.front()->appCount();
}

PlacementMode
SwitchFarm::placementMode() const
{
    return replicas_.front()->placementMode();
}

const compiler::PlacementReport &
SwitchFarm::placementReport() const
{
    return replicas_.front()->placementReport();
}

void
SwitchFarm::reset()
{
    for (auto &sw : replicas_)
        sw->reset();
}

} // namespace taurus::core
