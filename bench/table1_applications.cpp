/**
 * @file
 * Table 1: in-network applications and the reaction timescale each
 * demands (per-packet / per-flowlet / per-flow / per-microburst).
 */

#include <iostream>

#include "models/apps.hpp"
#include "util/table.hpp"

int
main()
{
    using taurus::util::TablePrinter;

    std::cout << "Table 1: in-network applications demand fast reaction "
                 "time\n\n";
    TablePrinter t({"Application", "Category", "Pkt", "Flowlet", "Flow",
                    "uburst"});
    for (const auto &app : taurus::models::table1Registry()) {
        t.addRow({app.name, app.category,
                  app.reaction.per_packet ? "x" : "",
                  app.reaction.per_flowlet ? "x" : "",
                  app.reaction.per_flow ? "x" : "",
                  app.reaction.per_microburst ? "x" : ""});
    }
    t.print(std::cout);
    return 0;
}
