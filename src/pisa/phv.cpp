#include "pisa/phv.hpp"

#include <stdexcept>

namespace taurus::pisa {

Field
featureField(size_t i)
{
    if (i >= kFeatureSlots)
        throw std::out_of_range("feature slot out of range");
    return static_cast<Field>(static_cast<size_t>(kFirstFeature) + i);
}

std::string
toString(Field f)
{
    switch (f) {
      case Field::EthType:
        return "eth.type";
      case Field::Ipv4Len:
        return "ipv4.len";
      case Field::Ipv4Ttl:
        return "ipv4.ttl";
      case Field::Ipv4Proto:
        return "ipv4.proto";
      case Field::Ipv4Src:
        return "ipv4.src";
      case Field::Ipv4Dst:
        return "ipv4.dst";
      case Field::L4Sport:
        return "l4.sport";
      case Field::L4Dport:
        return "l4.dport";
      case Field::TcpFlags:
        return "tcp.flags";
      case Field::VlanId:
        return "vlan.id";
      case Field::PktLen:
        return "meta.pkt_len";
      case Field::IngressPort:
        return "meta.ingress_port";
      case Field::TimestampUs:
        return "meta.timestamp_us";
      case Field::Drop:
        return "meta.drop";
      case Field::QueueId:
        return "meta.queue_id";
      case Field::Priority:
        return "meta.priority";
      case Field::MlBypass:
        return "taurus.ml_bypass";
      case Field::MlScore:
        return "taurus.ml_score";
      case Field::Decision:
        return "taurus.decision";
      case Field::MlClass:
        return "taurus.ml_class";
      case Field::FlowHash:
        return "taurus.flow_hash";
      case Field::AppId:
        return "taurus.app_id";
      case Field::Tmp0:
        return "tmp0";
      case Field::Tmp1:
        return "tmp1";
      case Field::Tmp2:
        return "tmp2";
      case Field::Tmp3:
        return "tmp3";
      default: {
        const size_t i = static_cast<size_t>(f);
        const size_t f0 = static_cast<size_t>(kFirstFeature);
        if (i >= f0 && i < f0 + kFeatureSlots)
            return "taurus.feature" + std::to_string(i - f0);
        return "field" + std::to_string(i);
      }
    }
}

} // namespace taurus::pisa
