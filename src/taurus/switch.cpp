#include "taurus/switch.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "kernels/kernels.hpp"
#include "pisa/packet.hpp"
#include "taurus/app.hpp"

namespace taurus::core {

void
SwitchStats::merge(const SwitchStats &o)
{
    packets += o.packets;
    ml_packets += o.ml_packets;
    flagged += o.flagged;
    dropped += o.dropped;
    safety_overrides += o.safety_overrides;
    dispatch_misses += o.dispatch_misses;
    ml_latency_ns.merge(o.ml_latency_ns);
    bypass_latency_ns.merge(o.bypass_latency_ns);
}

TaurusSwitch::TaurusSwitch(SwitchConfig cfg)
    : cfg_(std::move(cfg)), parser_(pisa::Parser::standard()),
      scheduler_(cfg_.queue_capacity),
      tracer_(cfg_.obs.trace_every, cfg_.obs.trace_ring)
{
    // Until a farm re-homes it, the switch carries its own single-shard
    // registry so a standalone instance is scrapeable out of the box.
    if (cfg_.obs.metrics)
        bindObservability(std::make_shared<obs::MetricsRegistry>(1), 0);

    // The forwarding table proper: an LPM stage mapping the destination
    // address to an egress port (default route: port 0).
    pisa::MatStage fwd("forward", pisa::MatchKind::Lpm,
                       {pisa::Field::Ipv4Dst});
    pisa::Action set_port;
    set_port.name = "set_egress";
    set_port.instrs = {{pisa::ActionOp::Set, pisa::Field::QueueId,
                        pisa::Src::Arg, pisa::Field::Tmp0, 0, 0, -1,
                        pisa::Field::Tmp0}};
    const int a_set = fwd.addAction(std::move(set_port));
    for (const Route &r : cfg_.routes)
        fwd.addEntry({{r.prefix}, {}, r.length, 0, a_set, {r.port}});
    fwd.setDefault(a_set, {0});
    forwarding_.addStage(std::move(fwd));
}

TaurusSwitch::~TaurusSwitch()
{
    // The registry can outlive this switch (SwitchFarm's shared one
    // does); a collector capturing `this` must not.
    if (registry_ && collector_token_)
        registry_->removeCollector(collector_token_);
}

void
TaurusSwitch::bindObservability(
    std::shared_ptr<obs::MetricsRegistry> registry, size_t shard)
{
    if (!cfg_.obs.metrics || !registry)
        return;
    if (registry_ && collector_token_)
        registry_->removeCollector(collector_token_);
    registry_ = std::move(registry);
    shard_ = shard;
    for (size_t s = 0; s < obs::kStageCount; ++s)
        stage_cells_[s] = registry_->histogram(
            "taurus_switch_stage_latency_ns",
            std::string("stage=\"") +
                obs::stageName(static_cast<obs::Stage>(s)) + "\"",
            shard_);
    ml_latency_cell_ = registry_->histogram("taurus_switch_latency_ns",
                                            "path=\"ml\"", shard_);
    bypass_latency_cell_ = registry_->histogram(
        "taurus_switch_latency_ns", "path=\"bypass\"", shard_);
    batch_width_cell_ = registry_->histogram(
        "taurus_switch_batch_width_pkts", "", shard_);
    // Info-style gauge: value 1, the label names the dispatched SIMD
    // kernel level (scalar/sse/avx2) this process selected at startup.
    registry_
        ->gauge("taurus_kernel_level",
                std::string("level=\"") +
                    kernels::levelName(kernels::activeLevel()) + "\"",
                shard_)
        .set(1.0);
    collector_token_ = registry_->addCollector(
        [this](obs::Snapshot &snap) { collectStats(snap); });
}

obs::Snapshot
TaurusSwitch::scrape() const
{
    return registry_ ? registry_->scrape() : obs::Snapshot{};
}

void
TaurusSwitch::collectStats(obs::Snapshot &snap) const
{
    using obs::MetricKind;
    const auto emit = [&snap](const SwitchStats &s,
                              const std::string &labels) {
        snap.addNum("taurus_switch_packets_total", labels,
                    MetricKind::Counter,
                    static_cast<double>(s.packets));
        snap.addNum("taurus_switch_ml_packets_total", labels,
                    MetricKind::Counter,
                    static_cast<double>(s.ml_packets));
        snap.addNum("taurus_switch_flagged_total", labels,
                    MetricKind::Counter,
                    static_cast<double>(s.flagged));
        snap.addNum("taurus_switch_dropped_total", labels,
                    MetricKind::Counter,
                    static_cast<double>(s.dropped));
        snap.addNum("taurus_switch_safety_overrides_total", labels,
                    MetricKind::Counter,
                    static_cast<double>(s.safety_overrides));
        snap.addNum("taurus_switch_dispatch_misses_total", labels,
                    MetricKind::Counter,
                    static_cast<double>(s.dispatch_misses));
    };
    emit(stats_, "");
    for (AppId id = 0; id < apps_.size(); ++id)
        if (apps_[id])
            emit(apps_[id]->stats,
                 "app=\"" + std::to_string(id) + "\"");
    if (tracer_.enabled()) {
        snap.addNum("taurus_switch_trace_seen_total", "",
                    MetricKind::Counter,
                    static_cast<double>(tracer_.seen()));
        snap.addNum("taurus_switch_trace_sampled_total", "",
                    MetricKind::Counter,
                    static_cast<double>(tracer_.sampled()));
    }
}

TaurusSwitch::InstalledApp &
TaurusSwitch::checked(AppId id)
{
    if (id >= apps_.size())
        throw std::out_of_range(
            "TaurusSwitch: app id " + std::to_string(id) +
            " out of range (" + std::to_string(apps_.size()) +
            " slots)");
    if (!apps_[id])
        throw LifecycleError("TaurusSwitch: app id " +
                             std::to_string(id) +
                             " has been removed");
    return *apps_[id];
}

std::vector<AppId>
TaurusSwitch::appIds() const
{
    std::vector<AppId> ids;
    ids.reserve(live_);
    for (AppId id = 0; id < apps_.size(); ++id)
        if (apps_[id])
            ids.push_back(id);
    return ids;
}

const TaurusSwitch::InstalledApp &
TaurusSwitch::checked(AppId id) const
{
    return const_cast<TaurusSwitch *>(this)->checked(id);
}

void
TaurusSwitch::rebuildDispatch()
{
    // One ternary stage over the 5-tuple plus receive-side metadata
    // (ingress port, VLAN id — wildcarded by classic 5-tuple rules, so
    // those match exactly as before). Each live tenant's rules write
    // its AppId into the PHV; the default action routes unmatched
    // traffic to the default app. Rebuilt whole on every lifecycle
    // operation — a removed tenant's rules vanish with it, so no entry
    // can name a tombstoned AppId — at control-plane cadence, never per
    // packet.
    pisa::MatStage st("dispatch", pisa::MatchKind::Ternary,
                      {pisa::Field::Ipv4Src, pisa::Field::Ipv4Dst,
                       pisa::Field::L4Sport, pisa::Field::L4Dport,
                       pisa::Field::Ipv4Proto, pisa::Field::IngressPort,
                       pisa::Field::VlanId});
    pisa::Action set_app;
    set_app.name = "set_app";
    set_app.instrs = {{pisa::ActionOp::Set, pisa::Field::AppId,
                       pisa::Src::Arg, pisa::Field::Tmp0, 0, 0, -1,
                       pisa::Field::Tmp0}};
    const int a_set = st.addAction(std::move(set_app));
    for (AppId id = 0; id < apps_.size(); ++id) {
        if (!apps_[id])
            continue;
        for (const DispatchRule &r : apps_[id]->dispatch) {
            pisa::TableEntry e;
            e.value = {r.src_ip, r.dst_ip, r.src_port, r.dst_port,
                       r.proto, r.in_port, r.vlan};
            e.mask = {r.src_ip_mask, r.dst_ip_mask, r.src_port_mask,
                      r.dst_port_mask, r.proto_mask, r.in_port_mask,
                      r.vlan_mask};
            e.priority = r.priority;
            e.action_id = a_set;
            e.args = {id};
            st.addEntry(std::move(e));
        }
    }
    st.setDefault(a_set, {default_app_});

    pisa::MatPipeline fresh;
    fresh.addStage(std::move(st));
    dispatch_ = std::move(fresh);
}

FeatureProgram
TaurusSwitch::buildValidatedFeatures(const AppArtifact &app) const
{
    // Validate the whole artifact before touching any installed state,
    // so a bad artifact cannot leave the switch half-installed (or
    // disturb tenants that are already serving).
    if (!app.build_features)
        throw std::invalid_argument(
            "installApp: artifact has no feature-program builder");
    if (app.verdict.kind == VerdictKind::BinaryThreshold &&
        !app.verdict.flag_code)
        throw std::invalid_argument(
            "installApp: binary verdict without flag_code");
    if (app.verdict.kind == VerdictKind::ArgmaxClass &&
        app.verdict.num_classes == 0)
        throw std::invalid_argument(
            "installApp: argmax verdict without classes");

    FeatureProgram fp = app.build_features(cfg_.features);
    if (fp.feature_count > kDecisionFeatureSlots)
        throw std::invalid_argument(
            "installApp: app '" + app.name + "' writes " +
            std::to_string(fp.feature_count) +
            " feature codes but SwitchDecision exports only " +
            std::to_string(kDecisionFeatureSlots) +
            " — telemetry would silently truncate");
    if (app.feature_count != fp.feature_count)
        throw std::invalid_argument(
            "installApp: app '" + app.name + "' declares " +
            std::to_string(app.feature_count) +
            " features but its program writes " +
            std::to_string(fp.feature_count));
    const std::string err = fp.preprocess.validate();
    if (!err.empty())
        throw std::logic_error("preprocessing program invalid: " + err);
    return fp;
}

void
TaurusSwitch::validateArtifact(const AppArtifact &app) const
{
    (void)buildValidatedFeatures(app);
}

std::unique_ptr<TaurusSwitch::InstalledApp>
TaurusSwitch::buildInstalled(const AppArtifact &app, FeatureProgram fp,
                             hw::GridProgram program) const
{
    auto inst = std::make_unique<InstalledApp>();
    inst->program =
        std::make_unique<hw::GridProgram>(std::move(program));
    inst->sim = std::make_unique<hw::CycleSim>(*inst->program);

    // The compiled schedule fixes this tenant's (static) MapReduce
    // latency.
    inst->mr_latency_ns = inst->sim->schedule().latency_ns;

    // Size the tenant's feature-slot scratch for its program: one input
    // vector per graph Input node (width taken from the graph itself),
    // and evaluation buffers bound to the compiled graph so
    // steady-state packets skip validation.
    for (int id : inst->program->graph.inputIds())
        inst->ml_input.emplace_back(
            static_cast<size_t>(inst->program->graph.node(id).width));
    inst->eval.bind(inst->program->graph);
    inst->batch_eval.bind(inst->program->graph);

    inst->features = std::move(fp);

    switch (app.verdict.kind) {
      case VerdictKind::BinaryThreshold:
        inst->postprocess = buildVerdictProgram(app.verdict.flag_code);
        break;
      case VerdictKind::ArgmaxClass:
        inst->postprocess = buildClassVerdictProgram(
            app.verdict.num_classes, app.verdict.flagged_classes);
        break;
      case VerdictKind::ScalarAction:
        // The raw score code *is* the action; postprocessing only has
        // to clear the Decision bit (nothing gets flagged).
        inst->postprocess =
            buildVerdictProgram([](int8_t) { return false; });
        break;
    }
    inst->verdict_kind = app.verdict.kind;
    inst->name = app.name;
    inst->dispatch = app.dispatch;

    inst->safety = compileSafety(cfg_.safety, inst->features.registers);
    inst->features.registers.clearAll();
    return inst;
}

std::vector<const dfg::Graph *>
TaurusSwitch::liveGraphs() const
{
    // Live tenants contribute their *installed* graphs (which carry the
    // current, possibly hot-swapped weights), so re-placement moves
    // units but never rolls weights back.
    std::vector<const dfg::Graph *> graphs;
    graphs.reserve(live_);
    for (const auto &app : apps_)
        if (app)
            graphs.push_back(&app->program->graph);
    return graphs;
}

AppId
TaurusSwitch::installApp(const AppArtifact &app)
{
    FeatureProgram fp = buildValidatedFeatures(app);

    // Admission: decide the hosting mode for the residents plus the new
    // tenant and compile every program for it. Throws AdmissionError
    // before any installed state changes.
    std::vector<const dfg::Graph *> graphs = liveGraphs();
    graphs.push_back(&app.graph);
    Admission adm = admitSet(graphs, app.name);

    hw::GridProgram fresh_prog = std::move(adm.programs.back());
    adm.programs.pop_back();
    auto inst = buildInstalled(app, std::move(fp),
                               std::move(fresh_prog));

    // Commit: swap the residents' re-placed programs in, then append
    // the new tenant (ids are install order over *slots*, so removed
    // tenants' ids are never handed out again). Nothing below throws on
    // valid input, so residents are never left half-swapped.
    adoptPrograms(std::move(adm.programs), appIds());
    const AppId id = static_cast<AppId>(apps_.size());
    apps_.push_back(std::move(inst));
    ++live_;
    if (live_ == 1)
        default_app_ = id; // first (or first-after-empty) tenant
    mode_ = adm.mode;
    placement_report_ = std::move(adm.report);
    rebuildDispatch();
    return id;
}

RetiredTenant
TaurusSwitch::removeApp(AppId id)
{
    const std::string name = checked(id).name; // bounds + tombstone
    if (live_ > 1 && id == default_app_)
        throw LifecycleError(
            "removeApp: app " + std::to_string(id) + " ('" + name +
            "') is the dispatch default — re-point unmatched traffic "
            "with setDefaultApp() before removing it");

    if (live_ == 1) {
        // Removing the last tenant returns the switch to its empty
        // state (no dispatch stage, no placement).
        RetiredTenant retired(std::move(apps_[id]));
        live_ = 0;
        default_app_ = 0;
        mode_ = PlacementMode::Private;
        placement_report_ = compiler::PlacementReport{};
        dispatch_ = pisa::MatPipeline{};
        return retired;
    }

    // Deterministic re-placement of the survivors — the same admission
    // controller as install, so survivors may upgrade from private to
    // spatial hosting once the departing tenant's demand is gone
    // (modeled latencies change; decisions never do).
    std::vector<AppId> survivors;
    std::vector<const dfg::Graph *> graphs;
    survivors.reserve(live_ - 1);
    graphs.reserve(live_ - 1);
    for (AppId s = 0; s < apps_.size(); ++s) {
        if (!apps_[s] || s == id)
            continue;
        survivors.push_back(s);
        graphs.push_back(&apps_[s]->program->graph);
    }
    Admission adm = admitSet(graphs, name);

    // Commit.
    RetiredTenant retired(std::move(apps_[id]));
    --live_;
    adoptPrograms(std::move(adm.programs), survivors);
    mode_ = adm.mode;
    placement_report_ = std::move(adm.report);
    rebuildDispatch();
    return retired;
}

RetiredTenant
TaurusSwitch::replaceApp(AppId id, const AppArtifact &app)
{
    checked(id); // bounds + tombstone
    FeatureProgram fp = buildValidatedFeatures(app);

    // Admit the full set with the replacement graph standing in the
    // departing tenant's position; a rejection leaves the old tenant
    // serving untouched (all-or-nothing).
    const std::vector<AppId> ids = appIds();
    std::vector<const dfg::Graph *> graphs;
    graphs.reserve(ids.size());
    size_t pos = 0;
    for (size_t i = 0; i < ids.size(); ++i) {
        if (ids[i] == id) {
            pos = i;
            graphs.push_back(&app.graph);
        } else {
            graphs.push_back(&apps_[ids[i]]->program->graph);
        }
    }
    Admission adm = admitSet(graphs, app.name);

    auto inst = buildInstalled(app, std::move(fp),
                               std::move(adm.programs[pos]));

    // Commit: the replacement takes over the SAME AppId with fresh
    // registers and statistics; dispatch re-points atomically with the
    // slot swap (the MAT is rebuilt from the new tenant's rules below).
    RetiredTenant retired(std::move(apps_[id]));
    apps_[id] = std::move(inst);
    adoptPrograms(std::move(adm.programs), ids, pos);
    mode_ = adm.mode;
    placement_report_ = std::move(adm.report);
    rebuildDispatch();
    return retired;
}

void
TaurusSwitch::checkAdmission(
    const std::vector<const dfg::Graph *> &graphs,
    const std::string &subject) const
{
    (void)admitSet(graphs, subject);
}

TaurusSwitch::Admission
TaurusSwitch::admitSet(const std::vector<const dfg::Graph *> &graphs,
                       const std::string &subject) const
{
    const double slo = cfg_.latency_slo_ns;
    Admission adm;
    if (graphs.empty())
        return adm; // empty tenant set: trivially admitted, private

    if (cfg_.placement != PlacementPolicy::PrivateOnly) {
        compiler::PlaceOptions popts;
        popts.compile = cfg_.compiler;
        popts.search_rounds = cfg_.placement_search_rounds;
        compiler::MultiAppPlacement placed =
            compiler::placeApps(graphs, popts);
        if (placed.fits &&
            (slo <= 0.0 || placed.report.worst_latency_ns <= slo)) {
            adm.mode = PlacementMode::Spatial;
            adm.programs = std::move(placed.programs);
            adm.report = std::move(placed.report);
            return adm;
        }
        const std::string reason =
            placed.fits
                ? "spatial placement violates the latency SLO (worst "
                      "tenant " +
                      std::to_string(placed.report.worst_latency_ns) +
                      " ns > " + std::to_string(slo) + " ns)"
                : placed.report.why;
        if (cfg_.placement == PlacementPolicy::SpatialOnly)
            throw AdmissionError(
                "admission: app '" + subject + "' not admitted: " +
                reason +
                " (policy SpatialOnly forbids the time-multiplexed "
                "fallback)");
        adm.report.why = reason;
    } else {
        adm.report.why = "placement policy is PrivateOnly";
    }

    // Private fallback: one whole-grid, time-multiplexed program per
    // tenant (the pre-spatial behavior), still subject to the SLO.
    adm.mode = PlacementMode::Private;
    adm.report.spatial = false;
    adm.report.spec = cfg_.compiler.spec;
    adm.report.min_gpktps = std::numeric_limits<double>::infinity();
    compiler::Options copts = cfg_.compiler;
    copts.region = hw::Region{};
    for (const dfg::Graph *g : graphs) {
        hw::GridProgram prog;
        try {
            prog = compiler::compile(*g, copts);
        } catch (const std::invalid_argument &e) {
            throw AdmissionError(
                "admission: app '" + subject + "' not admitted: "
                "tenant '" + g->name +
                "' does not fit the grid even time-multiplexed: " +
                e.what());
        }
        const hw::Schedule sched = hw::CycleSim::compileSchedule(prog);
        if (slo > 0.0 && sched.latency_ns > slo)
            throw AdmissionError(
                "admission: app '" + subject + "' not admitted: "
                "tenant '" + g->name +
                "' violates the latency SLO even privately (" +
                std::to_string(sched.latency_ns) + " ns > " +
                std::to_string(slo) + " ns)");

        compiler::TenantRegion t;
        t.name = g->name;
        t.region = prog.region;
        t.cus = prog.cusUsed();
        t.mus = prog.musUsed();
        t.folded = prog.serialize_sharing;
        t.latency_cycles = sched.latency_cycles;
        t.latency_ns = sched.latency_ns;
        t.ii_cycles = sched.ii_cycles;
        t.gpktps = sched.gpktps;
        t.solo_latency_ns = sched.latency_ns;
        t.solo_ii_cycles = sched.ii_cycles;

        adm.report.total_cus += t.cus;
        adm.report.total_mus += t.mus;
        adm.report.worst_latency_ns =
            std::max(adm.report.worst_latency_ns, t.latency_ns);
        adm.report.worst_ii_cycles =
            std::max(adm.report.worst_ii_cycles, t.ii_cycles);
        adm.report.min_gpktps =
            std::min(adm.report.min_gpktps, t.gpktps);
        adm.report.tenants.push_back(std::move(t));
        adm.programs.push_back(std::move(prog));
    }
    return adm;
}

void
TaurusSwitch::adoptPrograms(std::vector<hw::GridProgram> &&programs,
                            const std::vector<AppId> &ids, size_t skip)
{
    // One re-placed program per named slot, in the order admitSet()
    // produced them (`ids` is exactly the tenant list it was given).
    for (size_t i = 0; i < programs.size() && i < ids.size(); ++i) {
        if (i == skip)
            continue; // that slot was committed separately
        InstalledApp &app = *apps_[ids[i]];
        app.program =
            std::make_unique<hw::GridProgram>(std::move(programs[i]));
        // CycleSim holds a reference to the program it simulates, so a
        // swapped program needs a fresh simulator and schedule.
        app.sim = std::make_unique<hw::CycleSim>(*app.program);
        app.mr_latency_ns = app.sim->schedule().latency_ns;
        app.ml_input.clear();
        for (int id : app.program->graph.inputIds())
            app.ml_input.emplace_back(
                static_cast<size_t>(app.program->graph.node(id).width));
        app.eval.bind(app.program->graph);
        app.batch_eval.bind(app.program->graph);
    }
}

AppId
TaurusSwitch::installAnomalyModel(const models::AnomalyDnn &model)
{
    return installApp(makeAnomalyDnnApp(model));
}

void
TaurusSwitch::setDefaultApp(AppId id)
{
    checked(id); // bounds check
    default_app_ = id;
    rebuildDispatch();
}

void
TaurusSwitch::updateWeights(AppId id, const dfg::Graph &fresh)
{
    if (live_ == 0)
        throw std::logic_error(
            "updateWeights: no application installed");
    // GridProgram::updateWeights rejects structurally mismatched graphs
    // with std::invalid_argument before touching any weights.
    checked(id).program->updateWeights(fresh);
}

void
TaurusSwitch::updateWeights(const dfg::Graph &fresh)
{
    if (live_ == 0)
        throw std::logic_error(
            "updateWeights: no application installed");
    if (live_ > 1)
        throw std::invalid_argument(
            "updateWeights: " + std::to_string(live_) +
            " applications installed — name the tenant with "
            "updateWeights(app_id, graph)");
    updateWeights(appIds().front(), fresh);
}

SwitchDecision
TaurusSwitch::process(const net::TracePacket &tp)
{
    if (live_ == 0)
        throw std::logic_error("process: no application installed");

    // Every per-packet buffer (wire bytes, PHV, feature vector, eval
    // lanes) lives in scratch_ or the owning tenant and is reset in
    // place, so the steady state allocates nothing.
    // Trace gate first: sampleNext() counts every packet (a relaxed
    // fetch_add) and picks the 1-in-N whose stage spans get recorded.
    const bool traced = tracer_.sampleNext();

    pisa::fromTracePacketInto(tp, scratch_.pkt);
    pisa::Phv &phv = scratch_.phv;
    parser_.parseInto(scratch_.pkt, phv);

    const double parser_ns = cfg_.mat_timing.parser_ns;
    double latency = parser_ns;

    // Tenant selection. A single-tenant switch needs no dispatch stage
    // (everything is the default app), which keeps it latency- and
    // decision-identical to the pre-multi-tenant pipeline; with
    // co-resident tenants the dispatch MAT is a real pipeline stage and
    // is billed as one.
    AppId app_id = default_app_;
    bool dispatch_miss = false;
    double dispatch_ns = 0.0;
    if (dispatchActive()) {
        // The dispatch pipeline is exactly one ternary stage; applying
        // the stage directly exposes whether the packet hit a tenant's
        // rule or fell through to the default action.
        dispatch_miss = !dispatch_.stage(0).apply(phv, dispatch_regs_);
        app_id = static_cast<AppId>(phv.get(pisa::Field::AppId));
        if (app_id >= apps_.size() || !apps_[app_id])
            app_id = default_app_; // stale rule after a re-point/remove
        dispatch_ns = dispatch_.latencyNs(cfg_.mat_timing);
        latency += dispatch_ns;
    }
    InstalledApp &app = *apps_[app_id];
    if (dispatch_miss) {
        ++stats_.dispatch_misses;
        ++app.stats.dispatch_misses;
    }

    app.features.preprocess.apply(phv, app.features.registers);
    const double preprocess_ns =
        app.features.preprocess.latencyNs(cfg_.mat_timing);
    latency += preprocess_ns;

    SwitchDecision d;
    d.app_id = app_id;
    d.feature_count = static_cast<uint8_t>(
        std::min(app.features.feature_count, kDecisionFeatureSlots));
    for (size_t i = 0; i < d.feature_count; ++i)
        d.features[i] = static_cast<int8_t>(
            static_cast<int32_t>(phv.get(pisa::featureField(i))));
    const bool take_ml =
        !cfg_.enable_bypass || phv.get(pisa::Field::MlBypass) == 0;

    double mapreduce_ns = 0.0;
    if (take_ml) {
        // The decision's telemetry export above already pulled the
        // feature codes out of the PHV; reuse them instead of reading
        // the fields a second time on the hot path.
        std::vector<int8_t> &input = app.ml_input.front();
        for (size_t i = 0; i < input.size(); ++i)
            input[i] = i < d.feature_count
                           ? d.features[i]
                           : static_cast<int8_t>(static_cast<int32_t>(
                                 phv.get(pisa::featureField(i))));
        hw::SimResult &res = scratch_.sim_result;
        app.sim->runInto(app.ml_input, app.eval, res);
        d.score = static_cast<int8_t>(res.outputs.at(0).lanes.at(0));
        phv.set(pisa::Field::MlScore,
                static_cast<uint32_t>(static_cast<int32_t>(d.score)));
        phv.set(pisa::Field::MlBypass, 0);
        mapreduce_ns = res.latency_ns;
        latency += mapreduce_ns;
        ++stats_.ml_packets;
        ++app.stats.ml_packets;
    } else {
        d.bypassed = true;
        phv.set(pisa::Field::MlBypass, 1);
    }

    app.postprocess.apply(phv, app.features.registers);
    const bool pre_safety_flag = phv.get(pisa::Field::Decision) != 0;
    app.safety.stages.apply(phv, app.features.registers);
    // verdict = postprocess + safety MATs; summed in the same order as
    // always so the total stays bit-identical with obs disabled.
    const double verdict_ns =
        app.postprocess.latencyNs(cfg_.mat_timing) +
        app.safety.stages.latencyNs(cfg_.mat_timing);
    const double scheduler_ns = cfg_.mat_timing.scheduler_ns;
    latency += verdict_ns + scheduler_ns;

    forwarding_.apply(phv, app.features.registers);
    const double forward_ns = forwarding_.latencyNs(cfg_.mat_timing);
    latency += forward_ns;
    d.egress_port = static_cast<uint16_t>(phv.get(pisa::Field::QueueId));

    d.flagged = phv.get(pisa::Field::Decision) != 0;
    switch (app.verdict_kind) {
      case VerdictKind::BinaryThreshold:
        d.class_id = d.flagged ? 1 : 0;
        break;
      case VerdictKind::ArgmaxClass:
        d.class_id = phv.getSigned(pisa::Field::MlClass);
        break;
      case VerdictKind::ScalarAction:
        d.class_id = static_cast<int32_t>(d.score);
        break;
    }
    if (pre_safety_flag && !d.flagged) {
        ++stats_.safety_overrides;
        ++app.stats.safety_overrides;
    }
    if (d.flagged && cfg_.drop_anomalies) {
        d.dropped = true;
    } else {
        const uint64_t rank = pisa::Pifo::rankOf(
            cfg_.policy, phv, stats_.packets);
        // Move the scratch buffers into the scheduler rather than
        // copying the wire bytes; the immediate pop (packets drain at
        // line rate in this model) hands them straight back. A full
        // queue would destroy the moved-in buffers, so feed the
        // guaranteed drop empties instead (keeping the PIFO's own drop
        // accounting) and hold on to the scratch.
        if (scheduler_.full()) {
            scheduler_.push(rank, pisa::Packet{}, pisa::Phv{});
            d.dropped = true;
        } else {
            scheduler_.push(rank, std::move(scratch_.pkt),
                            std::move(phv));
            pisa::PifoItem item = scheduler_.pop();
            scratch_.pkt = std::move(item.pkt);
            scratch_.phv = std::move(item.phv);
        }
    }

    d.latency_ns = latency;
    ++stats_.packets;
    ++app.stats.packets;
    if (d.flagged) {
        ++stats_.flagged;
        ++app.stats.flagged;
    }
    if (d.dropped) {
        ++stats_.dropped;
        ++app.stats.dropped;
    }
    if (d.bypassed) {
        stats_.bypass_latency_ns.add(latency);
        app.stats.bypass_latency_ns.add(latency);
    } else {
        stats_.ml_latency_ns.add(latency);
        app.stats.ml_latency_ns.add(latency);
    }

    // Observability: the cells are no-op handles when metrics are off,
    // so this block costs a handful of null checks in the disabled
    // configuration (the overhead bench pins the enabled cost too).
    stage_cells_[static_cast<size_t>(obs::Stage::Parser)].observe(
        parser_ns);
    if (dispatchActive())
        stage_cells_[static_cast<size_t>(obs::Stage::Dispatch)].observe(
            dispatch_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Preprocess)].observe(
        preprocess_ns);
    if (take_ml)
        stage_cells_[static_cast<size_t>(obs::Stage::MapReduce)]
            .observe(mapreduce_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Verdict)].observe(
        verdict_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Forward)].observe(
        forward_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Scheduler)].observe(
        scheduler_ns);
    (d.bypassed ? bypass_latency_cell_ : ml_latency_cell_)
        .observe(latency);
    if (traced) {
        obs::PacketTrace tr;
        tr.seq = tracer_.seen();
        tr.app_id = app_id;
        tr.total_ns = latency;
        tr.add(obs::Stage::Parser, parser_ns);
        if (dispatchActive())
            tr.add(obs::Stage::Dispatch, dispatch_ns);
        tr.add(obs::Stage::Preprocess, preprocess_ns);
        if (take_ml)
            tr.add(obs::Stage::MapReduce, mapreduce_ns);
        tr.add(obs::Stage::Verdict, verdict_ns);
        tr.add(obs::Stage::Forward, forward_ns);
        tr.add(obs::Stage::Scheduler, scheduler_ns);
        tracer_.record(tr);
    }
    return d;
}

void
TaurusSwitch::processBatch(util::Span<const net::TracePacket> packets,
                           util::Span<SwitchDecision> decisions)
{
    if (packets.size() != decisions.size())
        throw std::invalid_argument(
            "processBatch: packets/decisions size mismatch");
    const size_t n = packets.size();
    batch_.pkt_ptrs.resize(n);
    batch_.out_ptrs.resize(n);
    for (size_t i = 0; i < n; ++i) {
        batch_.pkt_ptrs[i] = &packets[i];
        batch_.out_ptrs[i] = &decisions[i];
    }
    processBatch(batch_.pkt_ptrs.data(), batch_.out_ptrs.data(), n);
}

void
TaurusSwitch::stageFront(const net::TracePacket &tp, BatchSlot &s)
{
    // Mirrors the front half of process() exactly: same side effects on
    // the tracer, dispatch registers, and the selected tenant's feature
    // registers, in the same order — only the wire buffer and PHV live
    // in the slot instead of scratch_.
    s.traced = tracer_.sampleNext();
    // seen() cannot advance between a packet's sample gate and its
    // record in the single-packet path, so capturing the sequence here
    // keeps trace seqs identical even though record happens after the
    // rest of the window's packets have been sampled.
    s.trace_seq = tracer_.seen();

    pisa::fromTracePacketInto(tp, s.pkt);
    parser_.parseInto(s.pkt, s.phv);
    s.latency = cfg_.mat_timing.parser_ns;

    s.app_id = default_app_;
    bool dispatch_miss = false;
    s.dispatch_ns = 0.0;
    if (dispatchActive()) {
        dispatch_miss = !dispatch_.stage(0).apply(s.phv, dispatch_regs_);
        s.app_id = static_cast<AppId>(s.phv.get(pisa::Field::AppId));
        if (s.app_id >= apps_.size() || !apps_[s.app_id])
            s.app_id = default_app_;
        s.dispatch_ns = dispatch_.latencyNs(cfg_.mat_timing);
        s.latency += s.dispatch_ns;
    }
    InstalledApp &app = *apps_[s.app_id];
    if (dispatch_miss) {
        ++stats_.dispatch_misses;
        ++app.stats.dispatch_misses;
    }

    app.features.preprocess.apply(s.phv, app.features.registers);
    s.preprocess_ns = app.features.preprocess.latencyNs(cfg_.mat_timing);
    s.latency += s.preprocess_ns;

    s.d = SwitchDecision{};
    s.d.app_id = s.app_id;
    s.d.feature_count = static_cast<uint8_t>(
        std::min(app.features.feature_count, kDecisionFeatureSlots));
    for (size_t i = 0; i < s.d.feature_count; ++i)
        s.d.features[i] = static_cast<int8_t>(
            static_cast<int32_t>(s.phv.get(pisa::featureField(i))));
    s.take_ml =
        !cfg_.enable_bypass || s.phv.get(pisa::Field::MlBypass) == 0;
    if (s.take_ml) {
        std::vector<int8_t> &input = s.vals;
        input.resize(app.ml_input.front().size());
        for (size_t i = 0; i < input.size(); ++i)
            input[i] = i < s.d.feature_count
                           ? s.d.features[i]
                           : static_cast<int8_t>(static_cast<int32_t>(
                                 s.phv.get(pisa::featureField(i))));
        ++stats_.ml_packets;
        ++app.stats.ml_packets;
    }
}

void
TaurusSwitch::stageTail(BatchSlot &s, InstalledApp &app)
{
    // Mirrors the tail half of process(): the latency terms are summed
    // in the same order so the double-precision totals are bitwise
    // identical to the per-packet path.
    pisa::Phv &phv = s.phv;
    SwitchDecision &d = s.d;
    double latency = s.latency;

    double mapreduce_ns = 0.0;
    if (s.take_ml) {
        phv.set(pisa::Field::MlScore,
                static_cast<uint32_t>(static_cast<int32_t>(d.score)));
        phv.set(pisa::Field::MlBypass, 0);
        // runInto copies its latency from the static schedule, which is
        // exactly what mr_latency_ns caches.
        mapreduce_ns = app.mr_latency_ns;
        latency += mapreduce_ns;
    } else {
        d.bypassed = true;
        phv.set(pisa::Field::MlBypass, 1);
    }

    app.postprocess.apply(phv, app.features.registers);
    const bool pre_safety_flag = phv.get(pisa::Field::Decision) != 0;
    app.safety.stages.apply(phv, app.features.registers);
    const double verdict_ns =
        app.postprocess.latencyNs(cfg_.mat_timing) +
        app.safety.stages.latencyNs(cfg_.mat_timing);
    const double scheduler_ns = cfg_.mat_timing.scheduler_ns;
    latency += verdict_ns + scheduler_ns;

    forwarding_.apply(phv, app.features.registers);
    const double forward_ns = forwarding_.latencyNs(cfg_.mat_timing);
    latency += forward_ns;
    d.egress_port = static_cast<uint16_t>(phv.get(pisa::Field::QueueId));

    d.flagged = phv.get(pisa::Field::Decision) != 0;
    switch (app.verdict_kind) {
      case VerdictKind::BinaryThreshold:
        d.class_id = d.flagged ? 1 : 0;
        break;
      case VerdictKind::ArgmaxClass:
        d.class_id = phv.getSigned(pisa::Field::MlClass);
        break;
      case VerdictKind::ScalarAction:
        d.class_id = static_cast<int32_t>(d.score);
        break;
    }
    if (pre_safety_flag && !d.flagged) {
        ++stats_.safety_overrides;
        ++app.stats.safety_overrides;
    }
    if (d.flagged && cfg_.drop_anomalies) {
        d.dropped = true;
    } else {
        const uint64_t rank = pisa::Pifo::rankOf(
            cfg_.policy, phv, stats_.packets);
        if (scheduler_.full()) {
            scheduler_.push(rank, pisa::Packet{}, pisa::Phv{});
            d.dropped = true;
        } else {
            scheduler_.push(rank, std::move(s.pkt), std::move(phv));
            pisa::PifoItem item = scheduler_.pop();
            s.pkt = std::move(item.pkt);
            s.phv = std::move(item.phv);
        }
    }

    d.latency_ns = latency;
    ++stats_.packets;
    ++app.stats.packets;
    if (d.flagged) {
        ++stats_.flagged;
        ++app.stats.flagged;
    }
    if (d.dropped) {
        ++stats_.dropped;
        ++app.stats.dropped;
    }
    if (d.bypassed) {
        stats_.bypass_latency_ns.add(latency);
        app.stats.bypass_latency_ns.add(latency);
    } else {
        stats_.ml_latency_ns.add(latency);
        app.stats.ml_latency_ns.add(latency);
    }

    stage_cells_[static_cast<size_t>(obs::Stage::Parser)].observe(
        cfg_.mat_timing.parser_ns);
    if (dispatchActive())
        stage_cells_[static_cast<size_t>(obs::Stage::Dispatch)].observe(
            s.dispatch_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Preprocess)].observe(
        s.preprocess_ns);
    if (s.take_ml)
        stage_cells_[static_cast<size_t>(obs::Stage::MapReduce)]
            .observe(mapreduce_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Verdict)].observe(
        verdict_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Forward)].observe(
        forward_ns);
    stage_cells_[static_cast<size_t>(obs::Stage::Scheduler)].observe(
        scheduler_ns);
    (d.bypassed ? bypass_latency_cell_ : ml_latency_cell_)
        .observe(latency);
    if (s.traced) {
        obs::PacketTrace tr;
        tr.seq = s.trace_seq;
        tr.app_id = s.app_id;
        tr.total_ns = latency;
        tr.add(obs::Stage::Parser, cfg_.mat_timing.parser_ns);
        if (dispatchActive())
            tr.add(obs::Stage::Dispatch, s.dispatch_ns);
        tr.add(obs::Stage::Preprocess, s.preprocess_ns);
        if (s.take_ml)
            tr.add(obs::Stage::MapReduce, mapreduce_ns);
        tr.add(obs::Stage::Verdict, verdict_ns);
        tr.add(obs::Stage::Forward, forward_ns);
        tr.add(obs::Stage::Scheduler, scheduler_ns);
        tracer_.record(tr);
    }
}

void
TaurusSwitch::processBatch(const net::TracePacket *const *packets,
                           SwitchDecision *const *decisions, size_t n)
{
    const size_t window = cfg_.batch_window;
    if (window <= 1 || live_ == 0) {
        for (size_t i = 0; i < n; ++i)
            *decisions[i] = process(*packets[i]);
        return;
    }

    auto &slots = batch_.slots;
    if (slots.size() < window)
        slots.resize(window);

    size_t i = 0;       // next packet to stage
    size_t base = 0;    // packet index of slots[0]
    bool primed = false;
    while (i < n || primed) {
        // Phase 1: stage consecutive same-tenant packets into slots.
        // The stateful front stages (tracer, dispatch, preprocess) run
        // strictly in packet order; a tenant switch closes the window
        // with the foreign packet already staged (its side effects
        // touch only its own tenant's registers, which are disjoint
        // from the current window's tail stages).
        size_t w = primed ? 1 : 0;
        primed = false;
        while (w < window && i < n) {
            stageFront(*packets[i], slots[w]);
            ++i;
            if (w > 0 && slots[w].app_id != slots[0].app_id) {
                primed = true; // starts the next window
                break;
            }
            ++w;
        }

        // Phase 2: the window's MapReduce inferences, packet-major.
        InstalledApp &app = *apps_[slots[0].app_id];
        auto &ml_idx = batch_.ml_idx;
        ml_idx.clear();
        for (size_t k = 0; k < w; ++k)
            if (slots[k].take_ml)
                ml_idx.push_back(k);
        const size_t ml = ml_idx.size();
        if (ml > 0) {
            if (ml > 1 && app.ml_input.size() == 1) {
                auto &ptrs = batch_.in_ptrs;
                ptrs.resize(ml);
                for (size_t c = 0; c < ml; ++c)
                    ptrs[c] = slots[ml_idx[c]].vals.data();
                const auto &outs = dfg::evaluateBatchInto(
                    app.program->graph, ptrs.data(), ml,
                    app.batch_eval);
                const auto &lanes = outs.at(0).lanes;
                for (size_t c = 0; c < ml; ++c)
                    slots[ml_idx[c]].d.score =
                        static_cast<int8_t>(lanes[c]);
            } else {
                // Width-1 windows and multi-input graphs take the
                // same per-packet evaluator as process().
                for (size_t c = 0; c < ml; ++c) {
                    BatchSlot &s = slots[ml_idx[c]];
                    std::vector<int8_t> &input = app.ml_input.front();
                    input.assign(s.vals.begin(), s.vals.end());
                    hw::SimResult &res = scratch_.sim_result;
                    app.sim->runInto(app.ml_input, app.eval, res);
                    s.d.score = static_cast<int8_t>(
                        res.outputs.at(0).lanes.at(0));
                }
            }
            batch_width_cell_.observe(static_cast<double>(ml));
        }

        // Phase 3: tail stages strictly in packet order (the PIFO rank
        // and stats_.packets interleave exactly as per-packet).
        for (size_t k = 0; k < w; ++k) {
            stageTail(slots[k], app);
            *decisions[base + k] = slots[k].d;
        }

        if (primed)
            std::swap(slots[0], slots[w]);
        base += w;
    }
}

double
TaurusSwitch::mapReduceLatencyNs(AppId id) const
{
    return checked(id).mr_latency_ns;
}

double
TaurusSwitch::mlPathLatencyNs(AppId id) const
{
    return bypassPathLatencyNs(id) + checked(id).mr_latency_ns;
}

double
TaurusSwitch::bypassPathLatencyNs(AppId id) const
{
    const InstalledApp &app = checked(id);
    double ns = cfg_.mat_timing.parser_ns +
                app.features.preprocess.latencyNs(cfg_.mat_timing) +
                app.postprocess.latencyNs(cfg_.mat_timing) +
                app.safety.stages.latencyNs(cfg_.mat_timing) +
                forwarding_.latencyNs(cfg_.mat_timing) +
                cfg_.mat_timing.scheduler_ns;
    if (dispatchActive())
        ns += dispatch_.latencyNs(cfg_.mat_timing);
    return ns;
}

std::vector<const hw::GridProgram *>
TaurusSwitch::programs() const
{
    std::vector<const hw::GridProgram *> out;
    out.reserve(live_);
    for (const auto &app : apps_)
        if (app)
            out.push_back(app->program.get());
    return out;
}

void
TaurusSwitch::reset()
{
    for (auto &app : apps_) {
        if (!app)
            continue;
        app->features.registers.clearAll();
        app->stats = SwitchStats{};
    }
    stats_ = SwitchStats{};
}

} // namespace taurus::core
