/**
 * @file
 * Figure 10: total area needed to run each activation-function
 * implementation at line rate (1 GPkt/s), as CU stage depth varies.
 *
 * A chain of k map ops on s-stage CUs occupies ceil(k/s) CUs; shallow
 * functions (ReLU) waste later stages, deep functions (Taylor-series
 * sigmoid/tanh) span several CUs.
 */

#include "harness.hpp"

#include "area/activation_catalog.hpp"
#include "util/table.hpp"

TAURUS_BENCH(fig10_activations, "Figure 10",
             "line-rate activation-function area vs CU stage count")
{
    using taurus::area::activationCatalog;
    using taurus::util::TablePrinter;
    auto &os = ctx.out();

    os << "Figure 10: line-rate activation-function area (mm^2) vs CU "
          "stage count, fix8 x 16 lanes\n"
          "Paper at 4 stages: ReLU 0.04, TanhExp 0.26, SigmoidExp "
          "0.31, TanhPW 0.13, SigmoidPW 0.17, ActLUT 0.12\n\n";

    TablePrinter t({"Activation", "2 stages", "3 stages", "4 stages",
                    "6 stages"});
    for (const auto &impl : activationCatalog()) {
        std::vector<std::string> row = {impl.name};
        for (int stages : {2, 3, 4, 6})
            row.push_back(
                TablePrinter::num(impl.areaMm2(16, stages, 8), 3));
        ctx.metric(taurus::bench::slug(impl.name) + "_4stage_area_mm2",
                   impl.areaMm2(16, 4, 8));
        t.addRow(row);
    }
    t.print(os);

    os << "\nReading: piecewise approximations beat Taylor series; "
          "ReLU-family needs a single CU at any depth;\ndeeper CUs "
          "shrink the multi-CU functions, which is why the final "
          "design uses four stages.\n";
}
