/**
 * @file
 * The observability layer's own cost and correctness bench.
 *
 * Three questions, answered on the real switch fast path:
 *
 *   1. What do metrics cost? The same packet loop runs with
 *      observability disabled, with metrics on, and with metrics plus
 *      1-in-1024 trace sampling. Full runs assert the fully
 *      instrumented configuration keeps >= 0.97 of the bare
 *      throughput (the ISSUE's acceptance bar); smoke runs only
 *      report the ratio — sub-second loops are too noisy to gate on.
 *
 *   2. Is the farm scrape exact? A multi-worker SwitchFarm processes
 *      a trace; the merged Snapshot's counters must equal
 *      mergedStats() field for field, and the merged latency
 *      histogram must hold exactly one sample per packet.
 *
 *   3. Do the exporters round-trip? The farm snapshot is rendered to
 *      Prometheus text and bench JSON and written as
 *      OBS_snapshot.prom / OBS_snapshot.json artifacts (CI archives
 *      and format-checks them); the text must carry the # TYPE
 *      preamble and the mandatory +Inf bucket.
 *
 * Throughput is best-of-K with the configurations interleaved, so a
 * transient frequency dip hits every configuration equally instead of
 * biasing one side of the ratio.
 */

#include "harness.hpp"

#include <fstream>
#include <stdexcept>
#include <thread>

#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "obs/export.hpp"
#include "taurus/farm.hpp"
#include "taurus/switch.hpp"
#include "util/table.hpp"

namespace {

void
require(bool ok, const char *what)
{
    if (!ok)
        throw std::runtime_error(std::string("observability_bench: ") +
                                 what);
}

} // namespace

TAURUS_BENCH(observability_bench, "Observability",
             "metrics/tracing overhead ratio, farm-scrape exactness, "
             "exporter artifacts")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Observability overhead and scrape exactness\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(2000, 600));
    net::KddConfig kcfg;
    kcfg.connections = ctx.size(4000, 500);
    net::KddGenerator gen(kcfg, 9);
    const auto trace = gen.expandToPackets(gen.sampleConnections());

    // 1. Overhead: identical packet loops under three configurations.
    //    Each switch is built once (construction and placement are
    //    control-plane costs, not per-packet ones) and the loop runs K
    //    rounds interleaved across configurations; best-of-K per
    //    configuration is the noise-robust estimator of the true rate.
    struct Config
    {
        const char *key;
        core::ObsConfig obs;
        double best_per_sec = 0.0;
        std::vector<double> per_round; ///< pkts/s, one entry per round
        std::unique_ptr<core::TaurusSwitch> sw;
    };
    Config configs[3] = {
        {"obs_off", {false, 0, 256}, 0.0, {}, nullptr},
        {"obs_metrics", {true, 0, 256}, 0.0, {}, nullptr},
        {"obs_full", {true, 1024, 256}, 0.0, {}, nullptr},
    };
    const size_t iters = ctx.size(60000, 1000);
    const int rounds = ctx.smoke() ? 2 : 7;
    for (auto &c : configs) {
        core::SwitchConfig scfg;
        scfg.obs = c.obs;
        c.sw = std::make_unique<core::TaurusSwitch>(scfg);
        c.sw->installAnomalyModel(dnn);
        for (size_t i = 0; i < std::min<size_t>(iters, 1000); ++i)
            c.sw->process(trace[i % trace.size()]); // warm
    }
    for (int r = 0; r < rounds; ++r) {
        for (auto &c : configs) {
            uint64_t sink = 0;
            const bench::Timer timer;
            for (size_t i = 0; i < iters; ++i)
                sink += c.sw->process(trace[i % trace.size()]).flagged;
            const double sec = timer.elapsedSec();
            c.per_round.push_back(sec > 0.0 ? double(iters) / sec : 0.0);
            c.best_per_sec = std::max(c.best_per_sec, c.per_round.back());
            ctx.metric(std::string(c.key) + "_flagged_sink",
                       static_cast<int64_t>(sink));
        }
    }

    TablePrinter t({"Config", "Best pkts/s", "Ratio vs off"});
    const double off = configs[0].best_per_sec;
    for (const auto &c : configs) {
        const double ratio = off > 0.0 ? c.best_per_sec / off : 0.0;
        ctx.metric(std::string(c.key) + "_pkts_per_sec", c.best_per_sec);
        ctx.metric(std::string(c.key) + "_ratio", ratio);
        t.addRow({c.key, TablePrinter::num(c.best_per_sec, 0),
                  TablePrinter::num(ratio, 4)});
    }
    t.print(os);

    // The gate: comparing rates measured in *different* time windows
    // folds host noise (frequency scaling, a neighbor VM) into the
    // ratio, so the assert works on per-round pairs instead — within a
    // round the off and full loops run back to back, canceling slow
    // drift — and takes the best round: a real >3% instrumentation
    // cost would depress every round, while a transient dip only hurts
    // some.
    double full_ratio = 0.0;
    for (int r = 0; r < rounds; ++r)
        if (configs[0].per_round[r] > 0.0)
            full_ratio = std::max(full_ratio, configs[2].per_round[r] /
                                                  configs[0].per_round[r]);
    ctx.metric("obs_full_paired_ratio", full_ratio);
    os << "\nbest paired enabled/disabled ratio: "
       << TablePrinter::num(full_ratio, 4) << "\n";
    if (!ctx.smoke())
        require(full_ratio >= 0.97,
                "metrics + 1/1024 tracing cost more than 3% throughput");

    // Per-packet tracer sampling cost, amortized: the full config ran
    // `rounds * iters + warmup` packets through a 1-in-1024 sampler.
    {
        const auto &tr = configs[2].sw->tracer();
        require(tr.enabled() && tr.every() == 1024,
                "trace_every=1024 did not round to itself");
        require(tr.seen() > 0, "tracer saw no packets");
        const uint64_t expect = tr.seen() / 1024;
        require(tr.sampled() >= expect && tr.sampled() <= expect + 1,
                "1-in-1024 sampler cadence drifted");
        ctx.metric("tracer_seen", static_cast<int64_t>(tr.seen()));
        ctx.metric("tracer_sampled", static_cast<int64_t>(tr.sampled()));
        const auto traces = configs[2].sw->tracer().snapshot();
        require(!traces.empty(), "trace ring snapshot came back empty");
        require(traces.back().span_count > 0,
                "sampled trace carried no spans");
        os << "\ntracer: " << tr.sampled() << " of " << tr.seen()
           << " packets sampled, " << traces.size() << " retained\n";
    }

    // 2. Farm-scrape exactness: counters from the merged snapshot must
    //    equal the mergedStats() facade field for field, and the
    //    end-to-end latency histograms must account for every packet.
    {
        const unsigned hc = std::thread::hardware_concurrency();
        const size_t workers =
            std::max<size_t>(2, std::min<size_t>(hc ? hc : 2, 8));
        core::SwitchFarm farm({}, workers);
        farm.installAnomalyModel(dnn);
        std::vector<core::SwitchDecision> decisions(trace.size());
        const size_t target = ctx.size(120000, 2000);
        size_t done = 0;
        while (done < target) {
            const size_t n = std::min(trace.size(), target - done);
            farm.processTrace(
                util::Span<const net::TracePacket>(trace.data(), n),
                util::Span<core::SwitchDecision>(decisions.data(), n));
            done += n;
        }

        const auto merged = farm.mergedStats();
        const obs::Snapshot snap = farm.scrape();
        auto exact = [&](const char *name, uint64_t facade) {
            require(snap.value(name) == double(facade),
                    "farm scrape diverged from mergedStats()");
        };
        exact("taurus_switch_packets_total", merged.packets);
        exact("taurus_switch_ml_packets_total", merged.ml_packets);
        exact("taurus_switch_flagged_total", merged.flagged);
        exact("taurus_switch_dropped_total", merged.dropped);
        exact("taurus_switch_safety_overrides_total",
              merged.safety_overrides);
        exact("taurus_switch_dispatch_misses_total",
              merged.dispatch_misses);

        const auto *ml =
            snap.findHist("taurus_switch_latency_ns", "path=\"ml\"");
        const auto *by =
            snap.findHist("taurus_switch_latency_ns", "path=\"bypass\"");
        const uint64_t hist_packets = (ml ? ml->hist.count() : 0) +
                                      (by ? by->hist.count() : 0);
        require(hist_packets == merged.packets,
                "latency histograms lost packets across the shard merge");
        ctx.metric("farm_workers", workers);
        ctx.metric("farm_packets", static_cast<int64_t>(merged.packets));
        if (ml)
            ctx.histogram("farm_ml_latency", ml->hist);

        // 3. Exporter artifacts, written where CI can archive them.
        const std::string prom = obs::renderPrometheus(snap);
        require(prom.find("# TYPE taurus_switch_packets_total counter") !=
                    std::string::npos,
                "Prometheus render lost the # TYPE preamble");
        require(prom.find("le=\"+Inf\"") != std::string::npos,
                "Prometheus histogram render lost the +Inf bucket");
        auto json = obs::toJson(snap);
        json.set("traces",
                 obs::tracesToJson(configs[2].sw->tracer().snapshot()));
        {
            std::ofstream f("OBS_snapshot.prom");
            f << prom;
            require(bool(f), "failed writing OBS_snapshot.prom");
        }
        {
            std::ofstream f("OBS_snapshot.json");
            f << json.dump(2) << "\n";
            require(bool(f), "failed writing OBS_snapshot.json");
        }
        ctx.metric("prom_bytes", static_cast<int64_t>(prom.size()));
        os << "\nwrote OBS_snapshot.prom (" << prom.size()
           << " bytes) and OBS_snapshot.json\n";
    }

    os << "\nFull runs assert obs_full_paired_ratio >= 0.97; smoke "
          "runs only report it.\n";
}
