/**
 * @file
 * Raw packets and standard header layouts.
 *
 * The PISA substrate operates on real byte buffers: trace generators
 * serialize Ethernet/IPv4/TCP/UDP headers, and the programmable parser
 * (parser.hpp) re-extracts them into PHV fields. Round-tripping through
 * bytes keeps the parser honest — it cannot peek at generator-side
 * structs.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "net/features.hpp"

namespace taurus::pisa {

/** A raw packet: wire bytes plus receive-side metadata. */
struct Packet
{
    std::vector<uint8_t> bytes;
    double arrival_s = 0.0;
    uint16_t ingress_port = 0;

    /** Ground truth carried alongside (never visible to the pipeline). */
    bool truth_anomalous = false;
    int32_t truth_conn_id = -1;

    size_t size() const { return bytes.size(); }
};

/** EtherType values the parser understands. */
constexpr uint16_t kEtherTypeIpv4 = 0x0800;
constexpr uint16_t kEtherTypeVlan = 0x8100; ///< 802.1Q tag (TPID)

/** TCP flag bits. */
constexpr uint8_t kTcpFin = 0x01;
constexpr uint8_t kTcpSyn = 0x02;
constexpr uint8_t kTcpAck = 0x10;
constexpr uint8_t kTcpUrg = 0x20;

/**
 * Serialize a TCP or UDP packet for the given 5-tuple. A nonzero
 * `vlan_id` inserts a real 802.1Q tag (TPID 0x8100, PCP/DEI zero) after
 * the source MAC, shifting the IP header by 4 bytes on the wire.
 */
Packet makePacket(const net::FlowKey &flow, uint16_t total_len,
                  uint8_t tcp_flags, double arrival_s,
                  uint16_t vlan_id = 0);

/**
 * Serialize into an existing packet, reusing its byte buffer — the
 * per-packet fast path (no wire-buffer allocation once warm).
 */
void makePacketInto(const net::FlowKey &flow, uint16_t total_len,
                    uint8_t tcp_flags, double arrival_s, Packet &out,
                    uint16_t vlan_id = 0);

/** Build a wire packet from a generated trace element. */
Packet fromTracePacket(const net::TracePacket &tp);

/** Build a wire packet from a trace element into a reusable buffer. */
void fromTracePacketInto(const net::TracePacket &tp, Packet &out);

/** Read big-endian integers out of a byte buffer (bounds-checked). */
uint8_t readU8(const std::vector<uint8_t> &b, size_t off);
uint16_t readU16(const std::vector<uint8_t> &b, size_t off);
uint32_t readU32(const std::vector<uint8_t> &b, size_t off);

} // namespace taurus::pisa
