#include "pisa/range_match.hpp"

namespace taurus::pisa {

std::vector<Pattern>
rangeToPrefixes(uint64_t lo, uint64_t hi)
{
    std::vector<Pattern> out;
    hi = std::min<uint64_t>(hi, 0xffffffffull);
    while (lo <= hi) {
        // Largest aligned power-of-two block starting at lo that fits.
        uint64_t size = 1;
        while ((lo & ((size << 1) - 1)) == 0 &&
               lo + (size << 1) - 1 <= hi && (size << 1) != 0)
            size <<= 1;
        const uint32_t mask =
            static_cast<uint32_t>(~(size - 1) & 0xffffffffull);
        out.emplace_back(static_cast<uint32_t>(lo), mask);
        lo += size;
        if (lo == 0)
            break; // wrapped past 2^32
    }
    return out;
}

} // namespace taurus::pisa
