#include "cp/baseline.hpp"

#include <algorithm>
#include <deque>

#include "util/metrics.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace taurus::cp {

namespace {

/** One mirrored telemetry sample. */
struct Sample
{
    double t_s;       ///< mirror (switch-side) timestamp
    double visible_s; ///< when the DB ingest makes it ML-visible
    nn::Vector features;
    uint32_t src_ip;
};

} // namespace

BaselineResult
runBaseline(const std::vector<net::TracePacket> &trace,
            const nn::QuantizedMlp &model,
            const std::function<nn::Vector(const nn::Vector &)> &standardize,
            const BaselineConfig &cfg)
{
    util::Rng rng(cfg.seed);
    const BaselineCosts &c = cfg.costs;

    // Pass 1: mirror sampled packets with their feature snapshots.
    net::FlowTracker tracker;
    std::vector<Sample> samples;
    for (const auto &pkt : trace) {
        tracker.observe(pkt);
        if (!rng.bernoulli(cfg.sampling_rate))
            continue;
        samples.push_back(
            Sample{pkt.time_s, pkt.time_s,
                   standardize(tracker.dnnFeatures()), pkt.flow.src_ip});
    }

    // Pass 2: staged server pipeline with back-pressure. XDP polls on a
    // fixed interval (stretching under load); the DB hands completed
    // batches to the ML stage, which drains everything available when
    // the previous inference finishes.
    RuleInstaller installer(c.install);
    constexpr double kPollS = 1e-3;

    util::RunningStat xdp_batch_stat, ml_batch_stat;
    util::RunningStat xdp_ms_stat, db_ms_stat, ml_ms_stat, install_ms_stat;
    util::RunningStat total_ms_stat;

    size_t next = 0;                // next unmirrored sample
    std::deque<Sample> ml_queue;    // ingested, awaiting inference
    double xdp_free_s = 0.0;
    double ml_free_s = 0.0;

    double poll_t = samples.empty() ? 0.0 : samples.front().t_s;
    while (next < samples.size() || !ml_queue.empty()) {
        if (next < samples.size()) {
            // XDP poll: collect samples that arrived by the poll time.
            poll_t = std::max({poll_t, samples[next].t_s, xdp_free_s});
            size_t n = 0;
            while (next + n < samples.size() &&
                   samples[next + n].t_s <= poll_t)
                ++n;
            if (n == 0) {
                poll_t += kPollS;
                continue;
            }
            const double xdp_ms =
                c.xdp_base_ms + c.xdp_per_us * double(n) / 1e3;
            const double db_ms =
                c.db_base_ms + c.db_per_us * double(n) / 1e3;
            const double ingest_done =
                poll_t + (xdp_ms + db_ms) / 1e3;
            for (size_t i = 0; i < n; ++i) {
                Sample s = samples[next + i];
                s.visible_s = std::max(s.t_s, ingest_done);
                ml_queue.push_back(std::move(s));
            }
            next += n;
            xdp_free_s = ingest_done;
            xdp_batch_stat.add(double(n));
            xdp_ms_stat.add(xdp_ms);
            db_ms_stat.add(db_ms);
            poll_t += kPollS;
        }

        // ML stage: drain everything ingested by the time it frees up.
        while (!ml_queue.empty()) {
            const double start =
                std::max(ml_free_s, ml_queue.front().visible_s);
            size_t n = 0;
            while (n < ml_queue.size() && ml_queue[n].visible_s <= start)
                ++n;
            if (n == 0)
                break;
            const double ml_ms = c.ml.inferLatencyMs(n);
            const double done = start + ml_ms / 1e3;
            ml_batch_stat.add(double(n));
            ml_ms_stat.add(ml_ms);
            for (size_t i = 0; i < n; ++i) {
                const Sample &s = ml_queue[i];
                if (model.predict(s.features)) {
                    const uint64_t before = installer.installs();
                    const double active =
                        installer.requestInstall(s.src_ip, done);
                    // Only fresh installs contribute latency; repeat
                    // requests resolve to the already-active rule.
                    if (installer.installs() > before) {
                        install_ms_stat.add((active - done) * 1e3);
                        total_ms_stat.add((active - s.t_s) * 1e3);
                    }
                } else {
                    total_ms_stat.add((done - s.t_s) * 1e3);
                }
            }
            ml_queue.erase(ml_queue.begin(),
                           ml_queue.begin() + static_cast<long>(n));
            ml_free_s = done;
            // Only one drain per outer iteration while samples remain,
            // so XDP and ML interleave in time order.
            if (next < samples.size())
                break;
        }
    }

    // Pass 3: per-packet decisions — a packet is flagged iff a rule for
    // its source is active when it arrives.
    util::ConfusionMatrix cm;
    for (const auto &pkt : trace)
        cm.record(installer.active(pkt.flow.src_ip, pkt.time_s),
                  pkt.anomalous);

    BaselineResult r;
    r.sampling_rate = cfg.sampling_rate;
    r.mean_xdp_batch = xdp_batch_stat.mean();
    r.mean_backlog = ml_batch_stat.mean();
    r.xdp_ms = xdp_ms_stat.mean();
    r.db_ms = db_ms_stat.mean();
    r.ml_ms = ml_ms_stat.mean();
    r.install_ms = install_ms_stat.mean();
    r.total_ms = total_ms_stat.mean();
    r.detected_pct = cm.recall() * 100.0;
    r.f1_x100 = cm.f1() * 100.0;
    r.rules_installed = installer.installs();
    return r;
}

} // namespace taurus::cp
