#include "taurus/switch.hpp"

#include <stdexcept>

#include "pisa/packet.hpp"

namespace taurus::core {

TaurusSwitch::TaurusSwitch(SwitchConfig cfg)
    : cfg_(std::move(cfg)), parser_(pisa::Parser::standard()),
      scheduler_(cfg_.queue_capacity)
{
    // The forwarding table proper: an LPM stage mapping the destination
    // address to an egress port (default route: port 0).
    pisa::MatStage fwd("forward", pisa::MatchKind::Lpm,
                       {pisa::Field::Ipv4Dst});
    pisa::Action set_port;
    set_port.name = "set_egress";
    set_port.instrs = {{pisa::ActionOp::Set, pisa::Field::QueueId,
                        pisa::Src::Arg, pisa::Field::Tmp0, 0, 0, -1,
                        pisa::Field::Tmp0}};
    const int a_set = fwd.addAction(std::move(set_port));
    for (const Route &r : cfg_.routes)
        fwd.addEntry({{r.prefix}, {}, r.length, 0, a_set, {r.port}});
    fwd.setDefault(a_set, {0});
    forwarding_.addStage(std::move(fwd));
}

void
TaurusSwitch::installAnomalyModel(const models::AnomalyDnn &model)
{
    program_ = std::make_unique<hw::GridProgram>(
        compiler::compile(model.graph, cfg_.compiler));
    sim_ = std::make_unique<hw::CycleSim>(*program_);

    // One dry run fixes the (static) MapReduce latency.
    std::vector<int8_t> zeros(model.quantized.layers().front().in, 0);
    const hw::SimResult dry = sim_->run({zeros});
    mr_latency_ns_ = dry.latency_ns;

    features_ = buildDnnFeatureProgram(model.standardizer,
                                       model.quantized.inputParams(),
                                       cfg_.features);
    const std::string err = features_.preprocess.validate();
    if (!err.empty())
        throw std::logic_error("preprocessing program invalid: " + err);

    const double out_scale = model.quantized.layers().back().out_scale;
    postprocess_ = buildVerdictProgram([out_scale](int8_t code) {
        return static_cast<double>(code) * out_scale >= 0.5;
    });
    safety_ = compileSafety(cfg_.safety, features_.registers);

    reset();
}

void
TaurusSwitch::updateWeights(const dfg::Graph &fresh)
{
    if (!program_)
        throw std::logic_error("no model installed");
    program_->updateWeights(fresh);
}

SwitchDecision
TaurusSwitch::process(const net::TracePacket &tp)
{
    if (!program_)
        throw std::logic_error("no model installed");

    const pisa::Packet pkt = pisa::fromTracePacket(tp);
    pisa::Phv phv = parser_.parse(pkt);

    features_.preprocess.apply(phv, features_.registers);

    SwitchDecision d;
    const bool take_ml =
        !cfg_.enable_bypass || phv.get(pisa::Field::MlBypass) == 0;
    double latency = cfg_.mat_timing.parser_ns +
                     features_.preprocess.latencyNs(cfg_.mat_timing);

    if (take_ml) {
        std::vector<int8_t> input(net::kDnnFeatureCount);
        for (size_t i = 0; i < input.size(); ++i)
            input[i] = static_cast<int8_t>(static_cast<int32_t>(
                phv.get(pisa::featureField(i))));
        const hw::SimResult res = sim_->run({input});
        d.score = static_cast<int8_t>(res.outputs.at(0).lanes.at(0));
        phv.set(pisa::Field::MlScore,
                static_cast<uint32_t>(static_cast<int32_t>(d.score)));
        phv.set(pisa::Field::MlBypass, 0);
        latency += res.latency_ns;
        ++stats_.ml_packets;
    } else {
        d.bypassed = true;
        phv.set(pisa::Field::MlBypass, 1);
    }

    postprocess_.apply(phv, features_.registers);
    const bool pre_safety_flag = phv.get(pisa::Field::Decision) != 0;
    safety_.stages.apply(phv, features_.registers);
    latency += postprocess_.latencyNs(cfg_.mat_timing) +
               safety_.stages.latencyNs(cfg_.mat_timing) +
               cfg_.mat_timing.scheduler_ns;

    forwarding_.apply(phv, features_.registers);
    latency += forwarding_.latencyNs(cfg_.mat_timing);
    d.egress_port = static_cast<uint16_t>(phv.get(pisa::Field::QueueId));

    d.flagged = phv.get(pisa::Field::Decision) != 0;
    if (pre_safety_flag && !d.flagged)
        ++stats_.safety_overrides;
    if (d.flagged && cfg_.drop_anomalies) {
        d.dropped = true;
    } else {
        const uint64_t rank = pisa::Pifo::rankOf(
            cfg_.policy, phv, stats_.packets);
        if (!scheduler_.push(rank, pkt, phv))
            d.dropped = true;
        else
            scheduler_.pop(); // drained at line rate in this model
    }

    d.latency_ns = latency;
    ++stats_.packets;
    if (d.flagged)
        ++stats_.flagged;
    if (d.dropped)
        ++stats_.dropped;
    if (d.bypassed)
        stats_.bypass_latency_ns.add(latency);
    else
        stats_.ml_latency_ns.add(latency);
    return d;
}

double
TaurusSwitch::mlPathLatencyNs() const
{
    return bypassPathLatencyNs() + mr_latency_ns_;
}

double
TaurusSwitch::bypassPathLatencyNs() const
{
    return cfg_.mat_timing.parser_ns +
           features_.preprocess.latencyNs(cfg_.mat_timing) +
           postprocess_.latencyNs(cfg_.mat_timing) +
           safety_.stages.latencyNs(cfg_.mat_timing) +
           forwarding_.latencyNs(cfg_.mat_timing) +
           cfg_.mat_timing.scheduler_ns;
}

void
TaurusSwitch::reset()
{
    features_.registers.clearAll();
    stats_ = SwitchStats{};
}

} // namespace taurus::core
