/**
 * @file
 * LSTM cell + softmax head, matching the Indigo congestion-control model
 * (paper Section 5.1.2: "32 LSTM units followed by a softmax layer").
 *
 * The LSTM is used (a) structurally by the compiler to derive the Table 5
 * latency/area row, and (b) functionally by the congestion-control example
 * to drive sending-rate decisions in the event simulator.
 */

#pragma once

#include <vector>

#include "nn/activations.hpp"
#include "nn/matrix.hpp"
#include "util/rng.hpp"

namespace taurus::nn {

/** Recurrent state carried across LSTM steps. */
struct LstmState
{
    Vector h;
    Vector c;
};

/** A single-layer LSTM with a dense softmax output head. */
class Lstm
{
  public:
    Lstm() = default;
    Lstm(size_t input_dim, size_t units, size_t outputs, util::Rng &rng);

    /** Run one step; updates state in place and returns the softmax head. */
    Vector step(const Vector &x, LstmState &state) const;

    LstmState initialState() const;

    size_t inputDim() const { return input_dim_; }
    size_t units() const { return units_; }
    size_t outputs() const { return head_.rows(); }

    /** Gate matrices over [x; h], for the compiler's structural mapping. */
    const Matrix &wi() const { return wi_; }
    const Matrix &wf() const { return wf_; }
    const Matrix &wo() const { return wo_; }
    const Matrix &wg() const { return wg_; }
    const Matrix &head() const { return head_; }

  private:
    size_t input_dim_ = 0;
    size_t units_ = 0;
    Matrix wi_, wf_, wo_, wg_; // units x (input_dim + units)
    Vector bi_, bf_, bo_, bg_;
    Matrix head_;              // outputs x units
    Vector head_b_;
};

} // namespace taurus::nn
