/**
 * @file
 * Two applications, one switch: the multi-tenant serving recipe.
 *
 * The paper's MapReduce block is small enough to host several models at
 * once ("one model for intrusion detection and another for traffic
 * optimization", Section 6). This example makes that concrete on the
 * serving stack: the KDD anomaly DNN and the IoT device classifier are
 * installed side by side into one TaurusSwitch (and one SwitchFarm), a
 * per-flow dispatch MAT routes each packet to its tenant — the IoT
 * artifact claims the 192.168.0.0/16 device subnet, everything else
 * falls to the anomaly default — and each tenant keeps its own
 * registers, compiled schedule, statistics, and weight-update path.
 *
 * The two contracts demonstrated (and enforced with a nonzero exit):
 *  - co-residency changes nothing: each app's per-class confusion
 *    equals its solo-install run over the same packets;
 *  - tenants are isolated: hot-swapping the anomaly tenant's weights
 *    mid-trace leaves every IoT decision bit-identical.
 */

#include <iostream>

#include "compiler/report.hpp"
#include "models/zoo.hpp"
#include "net/iot.hpp"
#include "net/kdd.hpp"
#include "taurus/app.hpp"
#include "taurus/experiment.hpp"
#include "taurus/farm.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "=== Multi-tenant switch: anomaly DNN + IoT classifier "
                 "===\n\n";

    // 1. Train both applications and package them as artifacts.
    const models::AnomalyDnn dnn = models::trainAnomalyDnn(5, 2000);
    const models::IotFlowMlp iot = models::trainIotFlowMlp(1, 1500);
    net::KddConfig kc;
    kc.connections = 2000;
    net::KddGenerator gen(kc, 42);
    const std::vector<net::TracePacket> kdd_trace =
        gen.expandToPackets(gen.sampleConnections());

    const core::AppArtifact anomaly_app = core::makeAnomalyDnnApp(dnn);
    const core::AppArtifact iot_app = core::makeIotFlowApp(iot);

    // 2. Install both into one switch. The first tenant is the
    //    dispatch default; the IoT artifact's own rule claims its
    //    192.168/16 sources.
    core::TaurusSwitch sw;
    const core::AppId anom_id = sw.installApp(anomaly_app);
    const core::AppId iot_id = sw.installApp(iot_app);
    std::cout << "Installed " << sw.appCount() << " tenants: ["
              << anom_id << "] " << sw.appName(anom_id) << " (default), ["
              << iot_id << "] " << sw.appName(iot_id)
              << " (src 192.168.0.0/16)\n\n";

    // 3. Per-app placement on the shared MapReduce block.
    const auto rep = compiler::analyzeApps(sw.programs());
    TablePrinter p({"Tenant", "CUs", "MUs", "Lat (ns)", "GPkt/s"});
    for (const auto &r : rep.apps)
        p.addRow({r.name, TablePrinter::num(int64_t{r.cus}),
                  TablePrinter::num(int64_t{r.mus}),
                  TablePrinter::num(r.latency_ns, 0),
                  TablePrinter::num(r.gpktps)});
    p.addRow({"total", TablePrinter::num(int64_t{rep.total_cus}),
              TablePrinter::num(int64_t{rep.total_mus}), "", ""});
    p.print(std::cout);
    std::cout << "Grid capacity " << rep.grid_cus << " CUs / "
              << rep.grid_mus << " MUs — the pair "
              << (rep.fits_concurrently ? "fits concurrently"
                                        : "needs time multiplexing")
              << ".\n\n";

    // 4. Serve the interleaved mix and score each tenant; compare to
    //    its solo-install run over the same packets.
    const std::vector<net::TracePacket> merged =
        core::mergeTracesByTime(kdd_trace, iot_app.eval_trace);
    std::vector<core::SwitchDecision> decisions(merged.size());
    sw.processBatch(
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        util::Span<core::SwitchDecision>(decisions.data(),
                                         decisions.size()));
    const auto co_anom = core::scoreApp(
        util::Span<const core::SwitchDecision>(decisions.data(),
                                               decisions.size()),
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        anom_id, 2);
    const auto co_iot = core::scoreApp(
        util::Span<const core::SwitchDecision>(decisions.data(),
                                               decisions.size()),
        util::Span<const net::TracePacket>(merged.data(), merged.size()),
        iot_id, iot_app.num_classes);

    core::AppArtifact solo_anom = anomaly_app;
    solo_anom.eval_trace = kdd_trace;
    const auto ref_anom = core::runApp(solo_anom);
    const auto ref_iot = core::runApp(iot_app);

    TablePrinter t({"Tenant", "Packets", "Acc %", "Macro-F1",
                    "Solo acc %", "ML ns"});
    auto row = [&](const std::string &n, const core::AppRunResult &co,
                   const core::AppRunResult &solo) {
        t.addRow({n, std::to_string(co.packets),
                  TablePrinter::num(co.accuracy_pct, 1),
                  TablePrinter::num(co.macro_f1_x100, 1),
                  TablePrinter::num(solo.accuracy_pct, 1),
                  TablePrinter::num(co.mean_ml_latency_ns, 0)});
    };
    row(sw.appName(anom_id), co_anom, ref_anom);
    row(sw.appName(iot_id), co_iot, ref_iot);
    t.print(std::cout);

    const bool parity =
        co_anom.accuracy_pct == ref_anom.accuracy_pct &&
        co_iot.accuracy_pct == ref_iot.accuracy_pct;
    std::cout << "\nSolo/co-resident accuracy parity: "
              << (parity ? "exact" : "BROKEN") << "\n";

    // 5. Tenant isolation: retrain and hot-swap the anomaly tenant
    //    mid-trace; the IoT tenant's decisions must not move.
    const models::AnomalyDnn fresh = models::trainAnomalyDnn(77, 1500);
    core::TaurusSwitch swapped;
    swapped.installApp(anomaly_app);
    swapped.installApp(iot_app);
    std::vector<core::SwitchDecision> after(merged.size());
    const size_t half = merged.size() / 2;
    for (size_t i = 0; i < half; ++i)
        after[i] = swapped.process(merged[i]);
    swapped.updateWeights(anom_id, fresh.graph);
    for (size_t i = half; i < merged.size(); ++i)
        after[i] = swapped.process(merged[i]);

    size_t iot_diverged = 0, anom_changed = 0;
    for (size_t i = 0; i < merged.size(); ++i) {
        if (decisions[i].app_id == iot_id)
            iot_diverged += after[i].score != decisions[i].score ||
                            after[i].class_id != decisions[i].class_id ||
                            after[i].latency_ns != decisions[i].latency_ns;
        else
            anom_changed += after[i].flagged != decisions[i].flagged ||
                            after[i].score != decisions[i].score;
    }
    std::cout << "Hot-swapped tenant " << anom_id << " at packet "
              << half << ": " << anom_changed
              << " anomaly decisions changed, " << iot_diverged
              << " IoT decisions diverged (must be 0).\n";

    // 6. The same tenant set on a sharded farm, with per-tenant stats.
    core::SwitchFarm farm({}, 2);
    farm.installApp(anomaly_app);
    farm.installApp(iot_app);
    farm.processTrace(merged);
    std::cout << "\nFarm (2 workers): "
              << farm.mergedStats().packets << " packets — tenant 0: "
              << farm.mergedStats(anom_id).packets << ", tenant 1: "
              << farm.mergedStats(iot_id).packets << " (ml mean "
              << TablePrinter::num(
                     farm.mergedStats(iot_id).ml_latency_ns.mean(), 0)
              << " ns)\n";

    std::cout << "\nOne switch, one dispatch table, N apps: add a "
                 "tenant by installing its artifact.\n";

    if (!parity || iot_diverged != 0 || anom_changed == 0) {
        std::cerr << "multi-tenant contract violated\n";
        return 1;
    }
    return 0;
}
