/**
 * @file
 * Section 5.1.4: MAT-only ML implementations (N2Net BNNs, IIsy SVM /
 * KMeans) versus Taurus's MapReduce block, in iso-area MAT equivalents.
 */

#include <iostream>

#include "area/chip.hpp"
#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/apps.hpp"
#include "models/zoo.hpp"
#include "util/table.hpp"

int
main()
{
    using namespace taurus;
    using util::TablePrinter;

    std::cout << "Section 5.1.4: MAT-only designs vs Taurus (iso-area "
                 "MAT equivalents)\n"
                 "Paper: N2Net needs 48 MATs for the anomaly DNN vs "
                 "Taurus ~3; IIsy SVM 8 / KMeans 2 vs ~1.\n\n";

    const auto dnn = models::trainAnomalyDnn(1, 3000);
    const auto svm = models::trainAnomalySvm(1, 3000);
    const auto km = models::trainIotKmeans(1, 3000);

    area::ChipModel chip;
    auto mats_for = [&](const dfg::Graph &g) {
        const auto rep = compiler::analyze(compiler::compile(g), chip);
        return chip.matEquivalents(rep.area_mm2);
    };
    const double mats_dnn = mats_for(dnn.graph);
    const double mats_svm = mats_for(svm.lowered.graph);
    const double mats_km = mats_for(km.lowered.graph);

    TablePrinter t({"System", "Model", "MATs used",
                    "Taurus iso-area MATs", "Ratio"});
    const auto &designs = models::matOnlyDesigns();
    const double taurus_mats[] = {mats_dnn, mats_svm, mats_km};
    for (size_t i = 0; i < designs.size(); ++i) {
        const auto &d = designs[i];
        t.addRow({d.system, d.model,
                  TablePrinter::num(int64_t{d.mats_used}),
                  TablePrinter::num(taurus_mats[i], 1),
                  TablePrinter::num(double(d.mats_used) / taurus_mats[i],
                                    0) +
                      "x"});
    }
    t.print(std::cout);

    const auto grid = chip.fullGridCost();
    std::cout << "\nThe full provisioned MapReduce block is "
              << TablePrinter::num(grid.area_mm2, 1) << " mm^2 = "
              << TablePrinter::num(chip.matEquivalents(grid.area_mm2), 1)
              << " MAT equivalents per pipeline (paper: ~3 MATs / "
                 "3.8%).\n";
    return 0;
}
