#include "util/stats.hpp"

#include <cmath>

namespace taurus::util {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    const double rank = (p / 100.0) * static_cast<double>(values.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, values.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return values[lo] * (1.0 - frac) + values[hi] * frac;
}

} // namespace taurus::util
