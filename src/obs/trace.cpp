#include "obs/trace.hpp"

namespace taurus::obs {

namespace {

/** Smallest power of two >= n (n >= 1). */
uint64_t
roundUpPow2(uint64_t n)
{
    uint64_t p = 1;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

const char *
stageName(Stage s)
{
    switch (s) {
    case Stage::Parser:
        return "parser";
    case Stage::Dispatch:
        return "dispatch";
    case Stage::Preprocess:
        return "preprocess";
    case Stage::MapReduce:
        return "mapreduce";
    case Stage::Verdict:
        return "verdict";
    case Stage::Forward:
        return "forward";
    case Stage::Scheduler:
        return "scheduler";
    }
    return "unknown";
}

PathTracer::PathTracer(size_t every, size_t ring_capacity)
{
    if (every == 0)
        return; // disabled: keep the default no-op state
    const uint64_t period = roundUpPow2(every);
    every_one_ = period == 1;
    mask_ = period - 1;
    ring_.resize(ring_capacity ? ring_capacity : 1);
}

void
PathTracer::record(const PacketTrace &t)
{
    if (!enabled())
        return;
    sampled_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(m_);
    ring_[head_] = t;
    head_ = (head_ + 1) % ring_.size();
    count_ = std::min(count_ + 1, ring_.size());
}

std::vector<PacketTrace>
PathTracer::snapshot() const
{
    std::vector<PacketTrace> out;
    std::lock_guard<std::mutex> lk(m_);
    out.reserve(count_);
    // head_ points at the next write slot == the oldest record once
    // the ring has wrapped; before wrapping the oldest is slot 0.
    const size_t start =
        count_ == ring_.size() ? head_ : 0;
    for (size_t i = 0; i < count_; ++i)
        out.push_back(ring_[(start + i) % ring_.size()]);
    return out;
}

} // namespace taurus::obs
