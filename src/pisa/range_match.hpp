/**
 * @file
 * TCAM range-to-prefix expansion.
 *
 * Ternary tables match value/mask pairs, but feature binning needs range
 * matches (e.g. "duration in [1000, 2999] us -> bin 1"). The standard
 * technique decomposes an integer range into at most 2*W prefixes; these
 * helpers produce the (value, mask) entries to install.
 */

#pragma once

#include <cstdint>
#include <utility>
#include <vector>

namespace taurus::pisa {

/** A TCAM pattern: value and mask (1-bits are compared). */
using Pattern = std::pair<uint32_t, uint32_t>;

/**
 * Decompose the inclusive range [lo, hi] over 32-bit values into prefix
 * patterns. Returns an empty vector when lo > hi.
 */
std::vector<Pattern> rangeToPrefixes(uint64_t lo, uint64_t hi);

} // namespace taurus::pisa
