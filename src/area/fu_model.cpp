#include "area/fu_model.hpp"

#include <cassert>
#include <stdexcept>

namespace taurus::area {

namespace {

// Datapath fraction of the per-FU cost at the (16, 4) anchor; the
// remaining 32% is per-CU control amortized over the FUs.
constexpr double kDatapathFraction = 0.68;
// Control cost model: control(stages) = (c0 + c1 * stages) * anchor.
// Chosen so the control share at the anchor is exactly 32%:
// (c0 + 4*c1) / (16*4) = 0.32.
constexpr double kControlBase = 6.152;
constexpr double kControlPerStage = 3.582;

} // namespace

double
FuModel::anchorAreaUm2(int precision_bits)
{
    switch (precision_bits) {
      case 8: return 670.0;
      case 16: return 1338.0;
      case 32: return 2949.0;
      default:
        throw std::invalid_argument("precision must be 8, 16, or 32");
    }
}

double
FuModel::anchorPowerUw(int precision_bits)
{
    switch (precision_bits) {
      case 8: return 456.0;
      case 16: return 887.0;
      case 32: return 2341.0;
      default:
        throw std::invalid_argument("precision must be 8, 16, or 32");
    }
}

double
FuModel::scale(int lanes, int stages)
{
    assert(lanes > 0 && stages > 0);
    return kDatapathFraction +
           (kControlBase + kControlPerStage * stages) /
               (static_cast<double>(lanes) * stages);
}

double
FuModel::fuAreaUm2(int lanes, int stages, int precision_bits)
{
    return anchorAreaUm2(precision_bits) * scale(lanes, stages);
}

double
FuModel::fuPowerUw(int lanes, int stages, int precision_bits)
{
    return anchorPowerUw(precision_bits) * scale(lanes, stages);
}

double
FuModel::cuAreaMm2(int lanes, int stages, int precision_bits)
{
    const double fus = static_cast<double>(lanes) * stages;
    return fus * fuAreaUm2(lanes, stages, precision_bits) * 1e-6 *
           kCuRoutingFactor;
}

double
FuModel::cuPowerW(int lanes, int stages, int precision_bits)
{
    const double fus = static_cast<double>(lanes) * stages;
    return fus * fuPowerUw(lanes, stages, precision_bits) * 1e-6;
}

} // namespace taurus::area
