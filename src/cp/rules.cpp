#include "cp/rules.hpp"

#include <algorithm>

namespace taurus::cp {

double
RuleInstaller::requestInstall(uint32_t ip, double t_s)
{
    const auto it = active_at_.find(ip);
    if (it != active_at_.end())
        return it->second;

    const double start = std::max(t_s, busy_until_s_);
    const double cost_ms = model_.installMs(active_at_.size());
    const double done = start + cost_ms / 1e3;
    busy_until_s_ = done;
    total_install_ms_ += cost_ms;
    ++installs_;
    active_at_.emplace(ip, done);
    return done;
}

bool
RuleInstaller::active(uint32_t ip, double t_s) const
{
    const auto it = active_at_.find(ip);
    return it != active_at_.end() && it->second <= t_s;
}

void
RuleInstaller::clear()
{
    active_at_.clear();
    busy_until_s_ = 0.0;
    total_install_ms_ = 0.0;
    installs_ = 0;
}

} // namespace taurus::cp
