#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace taurus::nn {

int
Dataset::classCount() const
{
    int m = 0;
    for (int label : y)
        m = std::max(m, label + 1);
    return m;
}

void
Dataset::add(Vector features, int label)
{
    x.push_back(std::move(features));
    y.push_back(label);
}

std::pair<Dataset, Dataset>
Dataset::split(double fraction, util::Rng &rng) const
{
    std::vector<size_t> idx(size());
    std::iota(idx.begin(), idx.end(), 0);
    rng.shuffle(idx);
    const size_t first_count =
        static_cast<size_t>(fraction * static_cast<double>(size()));
    Dataset a, b;
    for (size_t i = 0; i < idx.size(); ++i) {
        if (i < first_count)
            a.add(x[idx[i]], y[idx[i]]);
        else
            b.add(x[idx[i]], y[idx[i]]);
    }
    return {std::move(a), std::move(b)};
}

void
Standardizer::fit(const Dataset &d)
{
    const size_t f = d.featureCount();
    mean_.assign(f, 0.0f);
    std_.assign(f, 1.0f);
    if (d.size() == 0)
        return;
    for (const auto &row : d.x)
        for (size_t i = 0; i < f; ++i)
            mean_[i] += row[i];
    for (float &m : mean_)
        m /= static_cast<float>(d.size());
    Vector var(f, 0.0f);
    for (const auto &row : d.x)
        for (size_t i = 0; i < f; ++i) {
            const float delta = row[i] - mean_[i];
            var[i] += delta * delta;
        }
    for (size_t i = 0; i < f; ++i) {
        const float v = var[i] / static_cast<float>(d.size());
        std_[i] = v > 1e-12f ? std::sqrt(v) : 1.0f;
    }
}

Vector
Standardizer::apply(const Vector &v) const
{
    Vector out(v.size());
    for (size_t i = 0; i < v.size(); ++i)
        out[i] = (v[i] - mean_[i]) / std_[i];
    return out;
}

Dataset
Standardizer::apply(const Dataset &d) const
{
    Dataset out;
    for (size_t i = 0; i < d.size(); ++i)
        out.add(apply(d.x[i]), d.y[i]);
    return out;
}

} // namespace taurus::nn
