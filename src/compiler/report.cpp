#include "compiler/report.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace taurus::compiler {

AppReport
analyze(const hw::GridProgram &program, const area::ChipModel &chip)
{
    AppReport r;
    r.name = program.graph.name;

    std::vector<std::vector<int8_t>> zeros;
    for (int id : program.graph.inputIds())
        zeros.emplace_back(
            static_cast<size_t>(program.graph.node(id).width), 0);

    const hw::CycleSim sim(program);
    const hw::SimResult res = sim.run(zeros);

    r.cus = program.cusUsed();
    r.mus = program.musUsed();
    const area::BlockCost cost = chip.unitCost(r.cus, r.mus);
    r.area_mm2 = cost.area_mm2;
    r.power_w = cost.power_w;
    r.latency_cycles = res.latency_cycles;
    r.latency_ns = res.latency_ns;
    r.ii_cycles = res.ii_cycles;
    r.gpktps = res.gpktps;
    r.area_overhead_pct = chip.areaOverheadPct(r.area_mm2);
    r.power_overhead_pct = chip.powerOverheadPct(r.power_w);
    r.weight_bytes = program.graph.weightBytes();
    r.route_hops = res.route_hops;
    r.folded = program.serialize_sharing;
    return r;
}

MultiAppReport
analyzeApps(const std::vector<const hw::GridProgram *> &programs,
            const area::ChipModel &chip)
{
    if (programs.empty())
        throw std::invalid_argument(
            "analyzeApps: no programs (install at least one app before "
            "asking for a placement report)");
    for (size_t i = 0; i < programs.size(); ++i) {
        if (!programs[i])
            throw std::invalid_argument(
                "analyzeApps: program " + std::to_string(i) +
                " is null");
        // All tenants of one switch compile against one grid; capacity
        // below is read from the first program, which is only sound
        // when every spec agrees.
        if (programs[i]->spec != programs.front()->spec)
            throw std::invalid_argument(
                "analyzeApps: program " + std::to_string(i) + " ('" +
                programs[i]->graph.name +
                "') was compiled against a different GridSpec than "
                "program 0 ('" +
                programs.front()->graph.name +
                "') — co-resident tenants must share one grid");
    }

    MultiAppReport m;
    m.grid_cus = programs.front()->spec.cuCount();
    m.grid_mus = programs.front()->spec.muCount();
    m.worst_latency_ns = 0.0;
    m.min_gpktps = std::numeric_limits<double>::infinity();
    for (const hw::GridProgram *prog : programs) {
        AppReport r = analyze(*prog, chip);
        m.total_cus += r.cus;
        m.total_mus += r.mus;
        m.worst_latency_ns = std::max(m.worst_latency_ns, r.latency_ns);
        m.min_gpktps = std::min(m.min_gpktps, r.gpktps);
        m.total_area_mm2 += r.area_mm2;
        m.total_power_w += r.power_w;
        m.apps.push_back(std::move(r));
    }
    m.fits_concurrently =
        m.total_cus <= m.grid_cus && m.total_mus <= m.grid_mus;
    return m;
}

} // namespace taurus::compiler
