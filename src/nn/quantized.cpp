#include "nn/quantized.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "fixed/saturate.hpp"
#include "kernels/kernels.hpp"

namespace taurus::nn {

namespace {

/** View of one quantized layer in the form the kernel layer consumes. */
kernels::DenseView
denseView(const QuantizedDense &layer)
{
    kernels::DenseView view;
    view.w = layer.w.data();
    view.b = layer.b.data();
    view.lut = layer.lut.empty() ? nullptr : layer.lut.data();
    view.rq = layer.requant;
    view.out = layer.out;
    view.in = layer.in;
    switch (layer.act) {
      case Activation::Relu:
        view.act = kernels::DenseAct::Relu;
        break;
      case Activation::LeakyRelu:
        view.act = kernels::DenseAct::LeakyRelu;
        break;
      case Activation::Sigmoid:
      case Activation::Tanh:
        view.act = kernels::DenseAct::Lut;
        break;
      case Activation::None:
      case Activation::Softmax:
        view.act = kernels::DenseAct::None;
        break;
    }
    return view;
}

} // namespace

std::vector<int8_t>
buildActivationLut(Activation act, double in_scale, double out_scale)
{
    std::vector<int8_t> lut(256);
    for (int code = -128; code <= 127; ++code) {
        const double x = code * in_scale;
        const double y = activationScalar(act, x);
        const int32_t q = fixed::quantize(
            y, fixed::QuantParams{out_scale}, 8);
        lut[static_cast<size_t>(code + 128)] = static_cast<int8_t>(q);
    }
    return lut;
}

QuantizedMlp
QuantizedMlp::fromFloat(const Mlp &model, const std::vector<Vector> &calib)
{
    // Input range from calibration data.
    float in_max = 1e-6f;
    for (const auto &v : calib)
        in_max = std::max(in_max, absMax(v));
    return fromFloat(model, calib, fixed::QuantParams::forAbsMax(in_max, 8));
}

QuantizedMlp
QuantizedMlp::fromFloat(const Mlp &model, const std::vector<Vector> &calib,
                        const fixed::QuantParams &pinned_input)
{
    QuantizedMlp q;
    q.loss_ = model.loss();
    q.input_qp_ = pinned_input;

    // Per-layer pre-activation ranges from calibration.
    const size_t n_layers = model.layers().size();
    std::vector<float> pre_max(n_layers, 1e-6f);
    for (const auto &input : calib) {
        Vector v = input;
        for (size_t li = 0; li < n_layers; ++li) {
            const auto &layer = model.layers()[li];
            Vector z = layer.w.matVec(v);
            for (size_t i = 0; i < z.size(); ++i)
                z[i] += layer.b[i];
            pre_max[li] = std::max(pre_max[li], absMax(z));
            v = applyActivation(layer.act, z);
        }
    }

    double in_scale = q.input_qp_.scale;
    for (size_t li = 0; li < n_layers; ++li) {
        const auto &layer = model.layers()[li];
        QuantizedDense qd;
        qd.out = layer.w.rows();
        qd.in = layer.w.cols();
        qd.act = layer.act;

        const fixed::QuantParams w_qp =
            fixed::QuantParams::forAbsMax(layer.w.absMax(), 8);
        qd.w.resize(qd.out * qd.in);
        for (size_t r = 0; r < qd.out; ++r)
            for (size_t c = 0; c < qd.in; ++c)
                qd.w[r * qd.in + c] = static_cast<int8_t>(
                    fixed::quantize(layer.w.at(r, c), w_qp, 8));

        const double acc_scale = in_scale * w_qp.scale;
        qd.b.resize(qd.out);
        for (size_t r = 0; r < qd.out; ++r)
            qd.b[r] = fixed::quantize(layer.b[r],
                                      fixed::QuantParams{acc_scale}, 32);

        qd.pre_scale = pre_max[li] / 127.0;
        qd.requant =
            fixed::Requantizer::fromRealMultiplier(acc_scale / qd.pre_scale);

        switch (layer.act) {
          case Activation::Relu:
          case Activation::LeakyRelu:
          case Activation::None:
          case Activation::Softmax:
            // Integer-domain activation (softmax degenerates to identity;
            // argmax is preserved, which is all classification needs).
            qd.out_scale = qd.pre_scale;
            break;
          case Activation::Sigmoid:
          case Activation::Tanh:
            qd.out_scale = 1.0 / 127.0;
            qd.lut = buildActivationLut(layer.act, qd.pre_scale,
                                        qd.out_scale);
            break;
        }
        in_scale = qd.out_scale;
        q.layers_.push_back(std::move(qd));
    }
    return q;
}

std::vector<int8_t>
QuantizedMlp::quantizeInput(const Vector &input) const
{
    std::vector<int8_t> out;
    quantizeInput(input, out);
    return out;
}

void
QuantizedMlp::quantizeInput(const Vector &input,
                            std::vector<int8_t> &out) const
{
    out.resize(input.size());
    for (size_t i = 0; i < input.size(); ++i)
        out[i] = static_cast<int8_t>(
            fixed::quantize(input[i], input_qp_, 8));
}

std::vector<int8_t>
QuantizedMlp::forwardInt(const std::vector<int8_t> &input) const
{
    ForwardScratch scratch;
    return forwardInt(input, scratch);
}

const std::vector<int8_t> &
QuantizedMlp::forwardInt(const std::vector<int8_t> &input,
                         ForwardScratch &scratch) const
{
    // Double-buffer: `cur` holds the previous layer's activations,
    // `next` receives this layer's; the buffers swap roles per layer and
    // keep their capacity across packets.
    std::vector<int8_t> *cur = &scratch.a;
    std::vector<int8_t> *next = &scratch.b;
    cur->assign(input.begin(), input.end());

    const kernels::Ops &ops = kernels::active();
    for (const auto &layer : layers_) {
        assert(cur->size() == layer.in);
        next->resize(layer.out);
        ops.dense(denseView(layer), cur->data(), next->data());
        std::swap(cur, next);
    }
    return *cur;
}

Vector
QuantizedMlp::forward(const Vector &input) const
{
    ForwardScratch scratch;
    return forward(input, scratch);
}

Vector
QuantizedMlp::forward(const Vector &input, ForwardScratch &scratch) const
{
    // forwardInt copies its input into scratch.a before touching the
    // double buffers, so feeding it scratch.q is safe.
    quantizeInput(input, scratch.q);
    const std::vector<int8_t> &out = forwardInt(scratch.q, scratch);
    Vector real(out.size());
    const double s = layers_.back().out_scale;
    for (size_t i = 0; i < out.size(); ++i)
        real[i] = static_cast<float>(out[i] * s);
    return real;
}

int
QuantizedMlp::predict(const Vector &input) const
{
    ForwardScratch scratch;
    return predict(input, scratch);
}

int
QuantizedMlp::predict(const Vector &input, ForwardScratch &scratch) const
{
    const Vector out = forward(input, scratch);
    if (loss_ == Loss::BinaryCrossEntropy || out.size() == 1)
        return out[0] >= 0.5f ? 1 : 0;
    return static_cast<int>(
        std::max_element(out.begin(), out.end()) - out.begin());
}

double
QuantizedMlp::score(const Vector &input) const
{
    const Vector out = forward(input);
    return out.empty() ? 0.0 : out[0];
}

double
QuantizedMlp::accuracy(const Dataset &data) const
{
    if (data.size() == 0)
        return 0.0;
    size_t correct = 0;
    ForwardScratch scratch;
    for (size_t i = 0; i < data.size(); ++i)
        if (predict(data.x[i], scratch) == data.y[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(data.size());
}

size_t
QuantizedMlp::weightBytes() const
{
    size_t bytes = 0;
    for (const auto &layer : layers_)
        bytes += layer.w.size() + layer.b.size() * sizeof(int32_t) +
                 layer.lut.size();
    return bytes;
}

} // namespace taurus::nn
