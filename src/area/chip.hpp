/**
 * @file
 * Grid and chip-level area/power roll-ups.
 *
 * Baseline switch: a 500 mm^2, 270 W chip with 4 reconfigurable PISA
 * pipelines of 32 MATs each, with MATs occupying 50% of chip area
 * (Section 5.1.1 and 5.1.4, refs [65, 86]). Taurus adds one MapReduce
 * block per pipeline; overheads are reported against this baseline, and
 * iso-area cost is expressed in MAT equivalents.
 */

#pragma once

#include "hw/grid.hpp"

namespace taurus::area {

/** The commercial baseline switch the paper normalizes against. */
struct BaselineChip
{
    double area_mm2 = 500.0;
    double power_w = 270.0;
    int pipelines = 4;
    int mats_per_pipeline = 32;
    double mat_area_fraction = 0.5; ///< MATs take 50% of chip area

    double matAreaMm2() const
    {
        return area_mm2 * mat_area_fraction /
               (static_cast<double>(pipelines) * mats_per_pipeline);
    }
};

/** Area/power summary for one MapReduce block or a subset of its units. */
struct BlockCost
{
    int cus = 0;
    int mus = 0;
    double area_mm2 = 0.0;
    double power_w = 0.0;
};

/** Roll-up model for MapReduce blocks on the baseline chip. */
class ChipModel
{
  public:
    explicit ChipModel(hw::GridSpec spec = {}, BaselineChip base = {});

    /** Cost of `cus` CUs + `mus` MUs at full compute activity. */
    BlockCost unitCost(int cus, int mus) const;

    /**
     * Cost of the full provisioned grid. Power applies the average
     * activity/clock-gating factor (unused stages and idle units gate
     * their clocks), calibrated so the full 12x10 grid matches the
     * paper's 2.8% chip power overhead.
     */
    BlockCost fullGridCost() const;

    /** Chip-relative area overhead (%) of one block per pipeline. */
    double areaOverheadPct(double block_area_mm2) const;
    /** Chip-relative power overhead (%) of one block per pipeline. */
    double powerOverheadPct(double block_power_w) const;

    /** MAT equivalents of a block area (iso-area comparison, 5.1.4). */
    double matEquivalents(double block_area_mm2) const;

    double cuAreaMm2() const;
    double cuPowerW() const;
    double muAreaMm2() const;
    double muPowerW() const;

    const hw::GridSpec &spec() const { return spec_; }
    const BaselineChip &baseline() const { return base_; }

  private:
    hw::GridSpec spec_;
    BaselineChip base_;
};

/** Average activity factor of a fully provisioned (partly idle) grid. */
constexpr double kGridActivityFactor = 0.70;

} // namespace taurus::area
