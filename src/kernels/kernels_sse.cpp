/**
 * @file
 * SSE4.1 kernels (compiled with -msse4.1 on x86 only; a stub
 * elsewhere). Same exactness envelope and fallback rules as the AVX2
 * TU, at 4 int32 / 8 int8 lanes per instruction; kernels with no
 * profitable 128-bit form (dot_s8_s32, argmin_batch) stay on the
 * scalar reference — the dispatch table composes per entry.
 */

#include "kernels/kernels_impl.hpp"

#if defined(TAURUS_KERNELS_SSE)

#include <smmintrin.h>

#include <cstring>
#include <limits>

#include "fixed/saturate.hpp"

namespace taurus::kernels::detail {

namespace {

using fixed::saturate;

bool
fastRequant(const fixed::Requantizer &rq)
{
    const int shift = 31 + rq.exponent();
    return rq.mantissa() > 0 && shift >= 31 && shift <= 62;
}

inline __m128i
clamp8v(__m128i v)
{
    return _mm_max_epi32(_mm_min_epi32(v, _mm_set1_epi32(127)),
                         _mm_set1_epi32(-128));
}

/** Requantize 4 int32 lanes; caller guarantees fastRequant() held. */
inline __m128i
requant4(__m128i v, int32_t mantissa, int shift)
{
    const __m128i vm = _mm_set1_epi64x(
        static_cast<int64_t>(static_cast<uint32_t>(mantissa)));
    const __m128i sign = _mm_srai_epi32(v, 31);
    const __m128i mag = _mm_sub_epi32(_mm_xor_si128(v, sign), sign);
    const __m128i off = _mm_set1_epi64x(int64_t{1} << (shift - 1));
    __m128i ev = _mm_mul_epu32(mag, vm);
    __m128i od = _mm_mul_epu32(_mm_srli_epi64(mag, 32), vm);
    ev = _mm_srli_epi64(_mm_add_epi64(ev, off), shift);
    od = _mm_srli_epi64(_mm_add_epi64(od, off), shift);
    // Recombine even (int32 lanes 0,2) and odd (1,3) results: 16-bit
    // blend mask 0xCC selects 16-bit lanes 2,3 and 6,7 — exactly the
    // odd int32 lanes.
    __m128i res = _mm_blend_epi16(ev, _mm_slli_epi64(od, 32), 0xCC);
    res = _mm_sub_epi32(_mm_xor_si128(res, sign), sign);
    return clamp8v(res);
}

inline __m128i
satAddBias(__m128i a, int32_t bias)
{
    if (bias == 0)
        return a;
    const __m128i vb = _mm_set1_epi32(bias);
    const __m128i sat = _mm_set1_epi32(
        bias > 0 ? std::numeric_limits<int32_t>::max()
                 : std::numeric_limits<int32_t>::min());
    const __m128i s = _mm_add_epi32(a, vb);
    const __m128i ovf =
        _mm_and_si128(_mm_xor_si128(a, s), _mm_xor_si128(vb, s));
    return _mm_blendv_epi8(s, sat, _mm_srai_epi32(ovf, 31));
}

inline __m128i
leaky4(__m128i v)
{
    const __m128i sign = _mm_srai_epi32(v, 31);
    const __m128i neg =
        _mm_srai_epi32(_mm_add_epi32(v, _mm_set1_epi32(7)), 3);
    return _mm_blendv_epi8(v, neg, sign);
}

int32_t
hsum32(__m128i v)
{
    v = _mm_add_epi32(v, _mm_srli_si128(v, 8));
    v = _mm_add_epi32(v, _mm_srli_si128(v, 4));
    return _mm_cvtsi128_si32(v);
}

inline int8_t
denseFinish(const DenseView &L, int64_t acc)
{
    const int8_t pre = L.rq.apply(saturate<int32_t>(acc));
    switch (L.act) {
      case DenseAct::Relu:
        return pre > 0 ? pre : static_cast<int8_t>(0);
      case DenseAct::LeakyRelu:
        return pre >= 0 ? pre : static_cast<int8_t>(pre / 8);
      case DenseAct::Lut:
        return L.lut[static_cast<size_t>(static_cast<int>(pre) + 128)];
      case DenseAct::None:
        break;
    }
    return pre;
}

void
denseCols(const DenseView &L, const int8_t *x, int8_t *y, size_t bw,
          size_t p0, size_t p1)
{
    for (size_t r = 0; r < L.out; ++r) {
        const int8_t *row = L.w + r * L.in;
        for (size_t p = p0; p < p1; ++p) {
            int64_t acc = L.b[r];
            for (size_t c = 0; c < L.in; ++c)
                acc += static_cast<int32_t>(row[c]) *
                       static_cast<int32_t>(x[c * bw + p]);
            y[r * bw + p] = denseFinish(L, acc);
        }
    }
}

void
dotRowCols(const int8_t *w, size_t n, int32_t bias,
           const fixed::Requantizer &rq, bool requant, const int32_t *x,
           int32_t *out, size_t bw, size_t p0, size_t p1)
{
    for (size_t p = p0; p < p1; ++p) {
        int64_t acc = bias;
        for (size_t i = 0; i < n; ++i)
            acc += wrapMul(static_cast<int32_t>(w[i]), x[i * bw + p]);
        const int32_t sat = saturate<int32_t>(acc);
        out[p] = requant ? requant1(sat, rq) : sat;
    }
}

void
denseSse(const DenseView &L, const int8_t *x, int8_t *y)
{
    if (L.in >= (size_t{1} << 16)) {
        scalarOps().dense(L, x, y);
        return;
    }
    for (size_t r = 0; r < L.out; ++r) {
        const int8_t *row = L.w + r * L.in;
        __m128i acc = _mm_setzero_si128();
        size_t c = 0;
        for (; c + 8 <= L.in; c += 8) {
            const __m128i vw = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(row + c)));
            const __m128i vx = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                reinterpret_cast<const __m128i *>(x + c)));
            acc = _mm_add_epi32(acc, _mm_madd_epi16(vw, vx));
        }
        int32_t sum = hsum32(acc);
        for (; c < L.in; ++c)
            sum += static_cast<int32_t>(row[c]) *
                   static_cast<int32_t>(x[c]);
        y[r] = denseFinish(L, static_cast<int64_t>(L.b[r]) + sum);
    }
}

void
denseBatchSse(const DenseView &L, const int8_t *x, int8_t *y, size_t bw)
{
    if (L.in >= (size_t{1} << 16)) {
        scalarOps().dense_batch(L, x, y, bw);
        return;
    }
    const bool fast_rq = fastRequant(L.rq);
    const int32_t mant = L.rq.mantissa();
    const int shift = 31 + L.rq.exponent();
    alignas(16) int32_t tmp[8];
    size_t p = 0;
    for (; p + 8 <= bw; p += 8) {
        for (size_t r = 0; r < L.out; ++r) {
            const int8_t *row = L.w + r * L.in;
            __m128i acc_lo = _mm_setzero_si128();
            __m128i acc_hi = _mm_setzero_si128();
            for (size_t c = 0; c < L.in; ++c) {
                const __m128i xv = _mm_cvtepi8_epi16(_mm_loadl_epi64(
                    reinterpret_cast<const __m128i *>(x + c * bw + p)));
                const __m128i prod = _mm_mullo_epi16(
                    xv,
                    _mm_set1_epi16(static_cast<int16_t>(row[c])));
                acc_lo = _mm_add_epi32(acc_lo,
                                       _mm_cvtepi16_epi32(prod));
                acc_hi = _mm_add_epi32(
                    acc_hi,
                    _mm_cvtepi16_epi32(_mm_srli_si128(prod, 8)));
            }
            __m128i halves[2] = {satAddBias(acc_lo, L.b[r]),
                                 satAddBias(acc_hi, L.b[r])};
            int8_t *dst = y + r * bw + p;
            if (fast_rq) {
                for (auto &h : halves) {
                    h = requant4(h, mant, shift);
                    if (L.act == DenseAct::Relu)
                        h = _mm_max_epi32(h, _mm_setzero_si128());
                    else if (L.act == DenseAct::LeakyRelu)
                        h = leaky4(h);
                }
                _mm_store_si128(reinterpret_cast<__m128i *>(tmp),
                                halves[0]);
                _mm_store_si128(reinterpret_cast<__m128i *>(tmp + 4),
                                halves[1]);
                if (L.act == DenseAct::Lut) {
                    for (int k = 0; k < 8; ++k)
                        dst[k] = L.lut[static_cast<size_t>(tmp[k] +
                                                           128)];
                } else {
                    for (int k = 0; k < 8; ++k)
                        dst[k] = static_cast<int8_t>(tmp[k]);
                }
            } else {
                _mm_store_si128(reinterpret_cast<__m128i *>(tmp),
                                halves[0]);
                _mm_store_si128(reinterpret_cast<__m128i *>(tmp + 4),
                                halves[1]);
                for (int k = 0; k < 8; ++k)
                    dst[k] = denseFinish(L, tmp[k]);
            }
        }
    }
    if (p < bw)
        denseCols(L, x, y, bw, p, bw);
}

void
dotRowBatchSse(const int8_t *w, size_t n, int32_t bias,
               const fixed::Requantizer &rq, bool requant, bool narrow,
               const int32_t *x, int32_t *out, size_t bw)
{
    const bool fast32 = narrow && n < (size_t{1} << 16);
    const bool fast_rq = !requant || fastRequant(rq);
    if (!fast32 || !fast_rq) {
        scalarOps().dot_row_batch(w, n, bias, rq, requant, narrow, x,
                                  out, bw);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t p = 0;
    for (; p + 4 <= bw; p += 4) {
        __m128i acc = _mm_setzero_si128();
        for (size_t i = 0; i < n; ++i) {
            const __m128i xv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + i * bw + p));
            acc = _mm_add_epi32(
                acc,
                _mm_mullo_epi32(
                    xv,
                    _mm_set1_epi32(static_cast<int32_t>(w[i]))));
        }
        __m128i v = satAddBias(acc, bias);
        if (requant)
            v = requant4(v, mant, shift);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + p), v);
    }
    if (p < bw)
        dotRowCols(w, n, bias, rq, requant, x, out, bw, p, bw);
}

void
sqdistBatchSse(const int8_t *w, size_t n, const fixed::Requantizer &rq,
               bool requant, bool narrow, const int32_t *x,
               int32_t *out, size_t bw)
{
    const bool fast32 = narrow && n < (size_t{1} << 15);
    const bool fast_rq = !requant || fastRequant(rq);
    if (!fast32 || !fast_rq) {
        scalarOps().sqdist_batch(w, n, rq, requant, narrow, x, out, bw);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t p = 0;
    for (; p + 4 <= bw; p += 4) {
        __m128i acc = _mm_setzero_si128();
        for (size_t i = 0; i < n; ++i) {
            const __m128i xv = _mm_loadu_si128(
                reinterpret_cast<const __m128i *>(x + i * bw + p));
            const __m128i d = _mm_sub_epi32(
                xv, _mm_set1_epi32(static_cast<int32_t>(w[i])));
            acc = _mm_add_epi32(acc, _mm_mullo_epi32(d, d));
        }
        __m128i v = acc;
        if (requant)
            v = requant4(v, mant, shift);
        _mm_storeu_si128(reinterpret_cast<__m128i *>(out + p), v);
    }
    for (; p < bw; ++p) {
        int64_t acc = 0;
        for (size_t i = 0; i < n; ++i) {
            const int32_t d =
                wrapAdd(x[i * bw + p], -static_cast<int32_t>(w[i]));
            acc += wrapMul(d, d);
        }
        const int32_t sat = saturate<int32_t>(acc);
        out[p] = requant ? requant1(sat, rq) : sat;
    }
}

void
widenSse(const int8_t *src, int32_t *dst, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        int32_t word;
        std::memcpy(&word, src + i, sizeof(word));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(dst + i),
                         _mm_cvtepi8_epi32(_mm_cvtsi32_si128(word)));
    }
    for (; i < n; ++i)
        dst[i] = src[i];
}

void
addClamp8Sse(const int32_t *a, const int32_t *b, int32_t *o, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(o + i),
                         clamp8v(_mm_add_epi32(va, vb)));
    }
    for (; i < n; ++i)
        o[i] = saturate<int8_t>(wrapAdd(a[i], b[i]));
}

void
mulRequantSse(const int32_t *a, const int32_t *b, int32_t *o, size_t n,
              const fixed::Requantizer &rq)
{
    if (!fastRequant(rq)) {
        scalarOps().mul_requant(a, b, o, n, rq);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        _mm_storeu_si128(reinterpret_cast<__m128i *>(o + i),
                         requant4(_mm_mullo_epi32(va, vb), mant,
                                  shift));
    }
    for (; i < n; ++i)
        o[i] = requant1(wrapMul(a[i], b[i]), rq);
}

void
requantSse(const int32_t *x, int32_t *o, size_t n,
           const fixed::Requantizer &rq)
{
    if (!fastRequant(rq)) {
        scalarOps().requant_s32(x, o, n, rq);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    size_t i = 0;
    for (; i + 4 <= n; i += 4)
        _mm_storeu_si128(
            reinterpret_cast<__m128i *>(o + i),
            requant4(_mm_loadu_si128(
                         reinterpret_cast<const __m128i *>(x + i)),
                     mant, shift));
    for (; i < n; ++i)
        o[i] = requant1(x[i], rq);
}

void
reluSse(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(
            p, _mm_max_epi32(_mm_loadu_si128(p), _mm_setzero_si128()));
    }
    for (; i < n; ++i)
        x[i] = x[i] > 0 ? x[i] : 0;
}

void
leakyReluSse(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(p, leaky4(_mm_loadu_si128(p)));
    }
    for (; i < n; ++i)
        x[i] = x[i] >= 0 ? x[i] : x[i] / 8;
}

void
squareClamp8Sse(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        const __m128i v = _mm_loadu_si128(p);
        _mm_storeu_si128(p, clamp8v(_mm_mullo_epi32(v, v)));
    }
    for (; i < n; ++i)
        x[i] = saturate<int8_t>(wrapMul(x[i], x[i]));
}

void
absClamp8Sse(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        const __m128i v = _mm_loadu_si128(p);
        const __m128i neg =
            clamp8v(_mm_sub_epi32(_mm_setzero_si128(), v));
        _mm_storeu_si128(
            p, _mm_blendv_epi8(v, neg, _mm_srai_epi32(v, 31)));
    }
    for (; i < n; ++i)
        x[i] = x[i] < 0 ? saturate<int8_t>(static_cast<int32_t>(
                              -static_cast<int64_t>(x[i])))
                        : x[i];
}

void
negClamp8Sse(int32_t *x, size_t n)
{
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(p, clamp8v(_mm_sub_epi32(_mm_setzero_si128(),
                                                  _mm_loadu_si128(p))));
    }
    for (; i < n; ++i)
        x[i] = saturate<int8_t>(
            static_cast<int32_t>(-static_cast<int64_t>(x[i])));
}

void
addConstClamp8Sse(int32_t *x, size_t n, int32_t imm)
{
    const __m128i vi = _mm_set1_epi32(imm);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(
            p, clamp8v(_mm_add_epi32(_mm_loadu_si128(p), vi)));
    }
    for (; i < n; ++i)
        x[i] = saturate<int8_t>(wrapAdd(x[i], imm));
}

void
mulConstRequantSse(int32_t *x, size_t n, int32_t imm,
                   const fixed::Requantizer &rq)
{
    if (!fastRequant(rq)) {
        scalarOps().mul_const_requant(x, n, imm, rq);
        return;
    }
    const int32_t mant = rq.mantissa();
    const int shift = 31 + rq.exponent();
    const __m128i vi = _mm_set1_epi32(imm);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(
            p, requant4(_mm_mullo_epi32(_mm_loadu_si128(p), vi), mant,
                        shift));
    }
    for (; i < n; ++i)
        x[i] = requant1(wrapMul(x[i], imm), rq);
}

void
minConstSse(int32_t *x, size_t n, int32_t imm)
{
    const __m128i vi = _mm_set1_epi32(imm);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(p, _mm_min_epi32(_mm_loadu_si128(p), vi));
    }
    for (; i < n; ++i)
        x[i] = x[i] < imm ? x[i] : imm;
}

void
maxConstSse(int32_t *x, size_t n, int32_t imm)
{
    const __m128i vi = _mm_set1_epi32(imm);
    size_t i = 0;
    for (; i + 4 <= n; i += 4) {
        __m128i *p = reinterpret_cast<__m128i *>(x + i);
        _mm_storeu_si128(p, _mm_max_epi32(_mm_loadu_si128(p), vi));
    }
    for (; i < n; ++i)
        x[i] = x[i] > imm ? x[i] : imm;
}

} // namespace

bool
patchSse(Ops &ops)
{
    ops.level = Level::Sse;
    ops.dense = denseSse;
    ops.dense_batch = denseBatchSse;
    ops.dot_row_batch = dotRowBatchSse;
    ops.sqdist_batch = sqdistBatchSse;
    ops.widen_s8 = widenSse;
    ops.add_clamp8 = addClamp8Sse;
    ops.mul_requant = mulRequantSse;
    ops.requant_s32 = requantSse;
    ops.relu = reluSse;
    ops.leaky_relu = leakyReluSse;
    ops.square_clamp8 = squareClamp8Sse;
    ops.abs_clamp8 = absClamp8Sse;
    ops.neg_clamp8 = negClamp8Sse;
    ops.add_const_clamp8 = addConstClamp8Sse;
    ops.mul_const_requant = mulConstRequantSse;
    ops.min_const = minConstSse;
    ops.max_const = maxConstSse;
    // dot_s8_s32 / argmin_batch stay scalar at this level.
    return true;
}

} // namespace taurus::kernels::detail

#else // !TAURUS_KERNELS_SSE

namespace taurus::kernels::detail {

bool
patchSse(Ops &ops)
{
    (void)ops;
    return false;
}

} // namespace taurus::kernels::detail

#endif
