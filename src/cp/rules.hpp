/**
 * @file
 * Flow-rule installation model.
 *
 * The control plane reacts by installing per-IP flow rules on the
 * switch. TCAM rule installation takes about 3 ms and grows with
 * flow-table occupancy (Section 2.2, refs [25, 47, 90]); installs are
 * serialized through the switch driver. This is the dominant baseline
 * bottleneck in Table 8 ("rule installation and packet collection
 * overwhelm the system").
 */

#pragma once

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace taurus::cp {

/** Tunable install-cost model. */
struct RuleInstallModel
{
    double base_ms = 3.0;       ///< empty-table TCAM install cost
    double per_rule_us = 20.0;  ///< occupancy-dependent growth
    double installMs(size_t table_size) const
    {
        return base_ms +
               per_rule_us * static_cast<double>(table_size) / 1e3;
    }
};

/** Serialized installer tracking per-IP rule activation times. */
class RuleInstaller
{
  public:
    explicit RuleInstaller(RuleInstallModel model = {}) : model_(model) {}

    /**
     * Request a rule for `ip` at time `t_s`. Returns the time the rule
     * becomes active (queued behind earlier installs). Re-requests for
     * an installed or in-flight IP are no-ops returning the existing
     * activation time.
     */
    double requestInstall(uint32_t ip, double t_s);

    /** True if a rule for the IP is active at time t. */
    bool active(uint32_t ip, double t_s) const;

    size_t tableSize() const { return active_at_.size(); }

    /** Mean install latency over all performed installs, ms. */
    double meanInstallMs() const
    {
        return installs_ ? total_install_ms_ / double(installs_) : 0.0;
    }

    uint64_t installs() const { return installs_; }

    void clear();

  private:
    RuleInstallModel model_;
    std::unordered_map<uint32_t, double> active_at_;
    double busy_until_s_ = 0.0;
    double total_install_ms_ = 0.0;
    uint64_t installs_ = 0;
};

} // namespace taurus::cp
