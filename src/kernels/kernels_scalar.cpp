/**
 * @file
 * Scalar reference kernels: the semantic ground truth every SIMD level
 * is tested bit-exact against. These mirror the original inner loops of
 * nn::QuantizedMlp::forwardInt and dfg::evaluateInto (with wrapping
 * int32 arithmetic made explicit instead of relying on signed-overflow
 * behavior).
 */

#include "kernels/kernels_impl.hpp"

#include <limits>

#include "fixed/saturate.hpp"

namespace taurus::kernels::detail {

namespace {

using fixed::saturate;

int32_t
clamp8(int32_t v)
{
    return saturate<int8_t>(v);
}

void
denseScalar(const DenseView &L, const int8_t *x, int8_t *y)
{
    for (size_t r = 0; r < L.out; ++r) {
        int64_t acc = L.b[r];
        const int8_t *row = L.w + r * L.in;
        for (size_t c = 0; c < L.in; ++c)
            acc += static_cast<int32_t>(row[c]) *
                   static_cast<int32_t>(x[c]);
        const int8_t pre = L.rq.apply(saturate<int32_t>(acc));
        int8_t out = pre;
        switch (L.act) {
          case DenseAct::Relu:
            out = pre > 0 ? pre : static_cast<int8_t>(0);
            break;
          case DenseAct::LeakyRelu:
            out = pre >= 0 ? pre : static_cast<int8_t>(pre / 8);
            break;
          case DenseAct::Lut:
            out = L.lut[static_cast<size_t>(static_cast<int>(pre) + 128)];
            break;
          case DenseAct::None:
            break;
        }
        y[r] = out;
    }
}

void
denseBatchScalar(const DenseView &L, const int8_t *x, int8_t *y,
                 size_t bw)
{
    // Column-at-a-time over the SoA block: each column is exactly one
    // packet's denseScalar pass, so batched == unbatched by structure.
    for (size_t r = 0; r < L.out; ++r) {
        const int8_t *row = L.w + r * L.in;
        for (size_t p = 0; p < bw; ++p) {
            int64_t acc = L.b[r];
            for (size_t c = 0; c < L.in; ++c)
                acc += static_cast<int32_t>(row[c]) *
                       static_cast<int32_t>(x[c * bw + p]);
            const int8_t pre = L.rq.apply(saturate<int32_t>(acc));
            int8_t out = pre;
            switch (L.act) {
              case DenseAct::Relu:
                out = pre > 0 ? pre : static_cast<int8_t>(0);
                break;
              case DenseAct::LeakyRelu:
                out = pre >= 0 ? pre : static_cast<int8_t>(pre / 8);
                break;
              case DenseAct::Lut:
                out = L.lut[static_cast<size_t>(static_cast<int>(pre) +
                                                128)];
                break;
              case DenseAct::None:
                break;
            }
            y[r * bw + p] = out;
        }
    }
}

int64_t
dotScalar(const int8_t *w, const int32_t *x, size_t n)
{
    int64_t acc = 0;
    for (size_t i = 0; i < n; ++i)
        acc += wrapMul(static_cast<int32_t>(w[i]), x[i]);
    return acc;
}

void
dotRowBatchScalar(const int8_t *w, size_t n, int32_t bias,
                  const fixed::Requantizer &rq, bool requant,
                  bool narrow, const int32_t *x, int32_t *out, size_t bw)
{
    (void)narrow; // exactness hint for SIMD levels; scalar is exact
    for (size_t p = 0; p < bw; ++p) {
        int64_t acc = bias;
        for (size_t i = 0; i < n; ++i)
            acc += wrapMul(static_cast<int32_t>(w[i]), x[i * bw + p]);
        const int32_t sat = saturate<int32_t>(acc);
        out[p] = requant ? requant1(sat, rq) : sat;
    }
}

void
sqdistBatchScalar(const int8_t *w, size_t n,
                  const fixed::Requantizer &rq, bool requant,
                  bool narrow, const int32_t *x, int32_t *out, size_t bw)
{
    (void)narrow;
    for (size_t p = 0; p < bw; ++p) {
        int64_t acc = 0;
        for (size_t i = 0; i < n; ++i) {
            const int32_t d =
                wrapAdd(x[i * bw + p],
                        -static_cast<int32_t>(w[i]));
            acc += wrapMul(d, d);
        }
        const int32_t sat = saturate<int32_t>(acc);
        out[p] = requant ? requant1(sat, rq) : sat;
    }
}

void
argminBatchScalar(const int32_t *x, size_t lanes, int32_t *out,
                  size_t bw)
{
    for (size_t p = 0; p < bw; ++p) {
        int32_t best = std::numeric_limits<int32_t>::max();
        int32_t best_idx = 0;
        for (size_t i = 0; i < lanes; ++i)
            if (x[i * bw + p] < best) {
                best = x[i * bw + p];
                best_idx = static_cast<int32_t>(i);
            }
        out[p] = best_idx;
    }
}

void
widenScalar(const int8_t *src, int32_t *dst, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        dst[i] = src[i];
}

void
addClamp8Scalar(const int32_t *a, const int32_t *b, int32_t *o, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        o[i] = clamp8(wrapAdd(a[i], b[i]));
}

void
mulRequantScalar(const int32_t *a, const int32_t *b, int32_t *o,
                 size_t n, const fixed::Requantizer &rq)
{
    for (size_t i = 0; i < n; ++i)
        o[i] = requant1(wrapMul(a[i], b[i]), rq);
}

void
requantScalar(const int32_t *x, int32_t *o, size_t n,
              const fixed::Requantizer &rq)
{
    for (size_t i = 0; i < n; ++i)
        o[i] = requant1(x[i], rq);
}

void
reluScalar(int32_t *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = x[i] > 0 ? x[i] : 0;
}

void
leakyReluScalar(int32_t *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = x[i] >= 0 ? x[i] : x[i] / 8;
}

void
squareClamp8Scalar(int32_t *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = clamp8(wrapMul(x[i], x[i]));
}

void
absClamp8Scalar(int32_t *x, size_t n)
{
    // Note the reference asymmetry: non-negative lanes pass through
    // UNCLAMPED (dfg::applyMapFn Abs).
    for (size_t i = 0; i < n; ++i)
        x[i] = x[i] < 0
                   ? clamp8(static_cast<int32_t>(
                         -static_cast<int64_t>(x[i])))
                   : x[i];
}

void
negClamp8Scalar(int32_t *x, size_t n)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = clamp8(
            static_cast<int32_t>(-static_cast<int64_t>(x[i])));
}

void
addConstClamp8Scalar(int32_t *x, size_t n, int32_t imm)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = clamp8(wrapAdd(x[i], imm));
}

void
mulConstRequantScalar(int32_t *x, size_t n, int32_t imm,
                      const fixed::Requantizer &rq)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = requant1(wrapMul(x[i], imm), rq);
}

void
minConstScalar(int32_t *x, size_t n, int32_t imm)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = x[i] < imm ? x[i] : imm;
}

void
maxConstScalar(int32_t *x, size_t n, int32_t imm)
{
    for (size_t i = 0; i < n; ++i)
        x[i] = x[i] > imm ? x[i] : imm;
}

} // namespace

Ops
makeScalarOps()
{
    Ops ops;
    ops.level = Level::Scalar;
    ops.dense = denseScalar;
    ops.dense_batch = denseBatchScalar;
    ops.dot_s8_s32 = dotScalar;
    ops.dot_row_batch = dotRowBatchScalar;
    ops.sqdist_batch = sqdistBatchScalar;
    ops.argmin_batch = argminBatchScalar;
    ops.widen_s8 = widenScalar;
    ops.add_clamp8 = addClamp8Scalar;
    ops.mul_requant = mulRequantScalar;
    ops.requant_s32 = requantScalar;
    ops.relu = reluScalar;
    ops.leaky_relu = leakyReluScalar;
    ops.square_clamp8 = squareClamp8Scalar;
    ops.abs_clamp8 = absClamp8Scalar;
    ops.neg_clamp8 = negClamp8Scalar;
    ops.add_const_clamp8 = addConstClamp8Scalar;
    ops.mul_const_requant = mulConstRequantScalar;
    ops.min_const = minConstScalar;
    ops.max_const = maxConstScalar;
    return ops;
}

} // namespace taurus::kernels::detail
