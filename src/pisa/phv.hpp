/**
 * @file
 * The Packet Header Vector (PHV): the fixed-layout, structured format
 * packets are parsed into before entering the match-action pipeline
 * (paper Section 3, "packets ... are first parsed into Packet Header
 * Vectors ... to extract header-level features").
 *
 * Fields are 32-bit containers with validity bits. A dedicated slice of
 * the PHV carries the ML feature vector into the MapReduce block
 * (Figure 7: "only the required feature headers enter the MapReduce
 * block as a dense PHV").
 */

#pragma once

#include <array>
#include <cstdint>
#include <string>

namespace taurus::pisa {

/** Every PHV container; the layout is fixed at compile time. */
enum class Field : uint8_t
{
    // Ethernet
    EthType,
    // IPv4
    Ipv4Len,
    Ipv4Ttl,
    Ipv4Proto,
    Ipv4Src,
    Ipv4Dst,
    // L4 (TCP or UDP)
    L4Sport,
    L4Dport,
    TcpFlags,
    // 802.1Q (0 when the packet is untagged)
    VlanId,
    // Standard metadata
    PktLen,
    IngressPort,
    TimestampUs, ///< arrival time, microseconds (32-bit, wraps)
    // Decision metadata
    Drop,
    QueueId,
    Priority,
    // Taurus metadata (Figure 6)
    MlBypass, ///< preprocessing MAT decides to skip MapReduce
    MlScore,  ///< MapReduce output (int8 code, sign-extended)
    Decision, ///< postprocessing verdict (AnomalyDecision)
    MlClass,  ///< postprocessing class id (argmax verdict tables)
    FlowHash, ///< register index computed by the hash action
    AppId,    ///< installed application selected by the dispatch MAT
    // Feature slice handed to the MapReduce block (int8 codes).
    Feature0,
    Feature1,
    Feature2,
    Feature3,
    Feature4,
    Feature5,
    Feature6,
    Feature7,
    Feature8,
    Feature9,
    Feature10,
    Feature11,
    Feature12,
    Feature13,
    Feature14,
    Feature15,
    // Action scratch space
    Tmp0,
    Tmp1,
    Tmp2,
    Tmp3,
    Tmp4,
    Tmp5,
    Tmp6,
    Tmp7,
    Count,
};

constexpr size_t kFieldCount = static_cast<size_t>(Field::Count);
constexpr size_t kFeatureSlots = 16;

/** First feature field; Feature0..Feature15 are contiguous. */
constexpr Field kFirstFeature = Field::Feature0;

/** The feature field at slot i (0-based, i < kFeatureSlots). */
Field featureField(size_t i);

/** Human-readable field name (debugging and reports). */
std::string toString(Field f);

/** A parsed packet's header vector. */
class Phv
{
  public:
    /** Read a container (0 when invalid). */
    uint32_t
    get(Field f) const
    {
        return values_[static_cast<size_t>(f)];
    }

    /** Write a container and mark it valid. */
    void
    set(Field f, uint32_t v)
    {
        values_[static_cast<size_t>(f)] = v;
        valid_[static_cast<size_t>(f)] = true;
    }

    bool
    valid(Field f) const
    {
        return valid_[static_cast<size_t>(f)];
    }

    void
    invalidate(Field f)
    {
        values_[static_cast<size_t>(f)] = 0;
        valid_[static_cast<size_t>(f)] = false;
    }

    /** Signed view of a container (for int8/int32 feature codes). */
    int32_t
    getSigned(Field f) const
    {
        return static_cast<int32_t>(get(f));
    }

    /**
     * Clear every container and validity bit in place — equivalent to
     * assigning a fresh Phv, but reusable in per-packet scratch storage.
     */
    void
    reset()
    {
        values_.fill(0);
        valid_.fill(false);
    }

  private:
    std::array<uint32_t, kFieldCount> values_{};
    std::array<bool, kFieldCount> valid_{};
};

} // namespace taurus::pisa
