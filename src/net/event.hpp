/**
 * @file
 * Discrete-event simulation core.
 *
 * The end-to-end experiments (Table 8, Figures 13/14) and the
 * congestion-control example run on this event queue: hosts, links, the
 * control-plane server, and the Taurus switch all schedule work in
 * simulated seconds. Single-threaded and deterministic by construction.
 */

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace taurus::net {

/** A time-ordered event queue with stable FIFO ordering for ties. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Schedule a callback at an absolute simulated time (seconds). */
    void schedule(double time_s, Callback cb);

    /** Schedule a callback `delay_s` after the current time. */
    void scheduleIn(double delay_s, Callback cb);

    /** Pop and run the earliest event; returns false when empty. */
    bool runNext();

    /** Run events until the queue is empty or time exceeds `t_end_s`. */
    void runUntil(double t_end_s);

    /** Drain the queue completely. */
    void runAll();

    /** Current simulated time in seconds. */
    double now() const { return now_; }

    /** Number of pending events. */
    size_t pending() const { return heap_.size(); }

    /** Total events executed so far. */
    uint64_t executed() const { return executed_; }

  private:
    struct Entry
    {
        double time;
        uint64_t seq; // tie-break: FIFO among equal timestamps
        Callback cb;

        bool
        operator>(const Entry &o) const
        {
            if (time != o.time)
                return time > o.time;
            return seq > o.seq;
        }
    };

    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> heap_;
    double now_ = 0.0;
    uint64_t seq_ = 0;
    uint64_t executed_ = 0;
};

} // namespace taurus::net
