#include "util/stats.hpp"

#include <cmath>

namespace taurus::util {

void
RunningStat::add(double x)
{
    ++n_;
    sum_ += x;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
RunningStat::merge(const RunningStat &o)
{
    if (o.n_ == 0)
        return;
    if (n_ == 0) {
        *this = o;
        return;
    }
    const double na = static_cast<double>(n_);
    const double nb = static_cast<double>(o.n_);
    const double delta = o.mean_ - mean_;
    const double n_total = na + nb;
    mean_ += delta * nb / n_total;
    m2_ += o.m2_ + delta * delta * na * nb / n_total;
    n_ += o.n_;
    sum_ += o.sum_;
    min_ = std::min(min_, o.min_);
    max_ = std::max(max_, o.max_);
}

double
RunningStat::variance() const
{
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double
RunningStat::stddev() const
{
    return std::sqrt(variance());
}

double
percentile(std::vector<double> values, double p)
{
    std::sort(values.begin(), values.end());
    return percentileSorted(values, p);
}

double
percentileSorted(const std::vector<double> &sorted, double p)
{
    if (sorted.empty())
        return 0.0;
    const double rank = (p / 100.0) * static_cast<double>(sorted.size() - 1);
    const size_t lo = static_cast<size_t>(rank);
    const size_t hi = std::min(lo + 1, sorted.size() - 1);
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

} // namespace taurus::util
