/**
 * @file
 * Functional-unit and compute-unit area/power model.
 *
 * The paper synthesizes the design with FreePDK15 (a predictive 15 nm
 * standard-cell library). We replace synthesis with an analytic model
 * anchored exactly at the paper's published data points:
 *
 *  - Table 4: per-FU area/power at the final (16-lane, 4-stage) design:
 *    fix8 670 um^2 / 456 uW, fix16 1338 / 887, fix32 2949 / 2341.
 *  - Section 5.1.1: the final CU is 0.044 mm^2 including routing
 *    ("680 um^2 per FU, on average").
 *
 * The lane/stage sweep (Figure 9) follows the paper's stated mechanism:
 * per-FU cost = datapath + (per-CU control amortized over lanes*stages),
 * so "raw area efficiency (area per FU) increases with the number of
 * lanes". The datapath/control split (68% / 32% at the anchor) and the
 * per-stage control slope are free parameters of the reproduction,
 * documented in DESIGN.md.
 */

#pragma once

namespace taurus::area {

/** Per-FU and per-CU area/power as functions of the CU configuration. */
class FuModel
{
  public:
    /** Area of one FU in um^2 for a CU with `lanes` x `stages`. */
    static double fuAreaUm2(int lanes, int stages, int precision_bits);

    /** Average power of one FU in uW (10% switching activity). */
    static double fuPowerUw(int lanes, int stages, int precision_bits);

    /** Whole-CU area in mm^2, including routing resources. */
    static double cuAreaMm2(int lanes, int stages, int precision_bits);

    /** Whole-CU power in W at full activity. */
    static double cuPowerW(int lanes, int stages, int precision_bits);

    /** The anchor values from Table 4 (valid precisions: 8, 16, 32). */
    static double anchorAreaUm2(int precision_bits);
    static double anchorPowerUw(int precision_bits);

  private:
    /**
     * Lane/stage scale factor, exactly 1.0 at the (16, 4) anchor:
     * datapath fraction + control(stages) / (lanes * stages).
     */
    static double scale(int lanes, int stages);
};

/** Routing overhead multiplier for a placed CU (0.044 / (64 * 670e-6)). */
constexpr double kCuRoutingFactor = 1.0261;

} // namespace taurus::area
