/**
 * Online-learning runtime tests: SPSC telemetry rings, lock-free model
 * hot-swap (torn-read-free under ThreadSanitizer), drift detection with
 * windowed statistics, deterministic synchronous runs, and the full
 * shift-and-recover scenario.
 *
 * CI builds this suite a second time with -DTAURUS_SANITIZE=thread: the
 * concurrent tests here are the repo's first real producer/consumer
 * code, and TSan is the authority on whether the hot swap races.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "models/zoo.hpp"
#include "net/iot.hpp"
#include "net/kdd.hpp"
#include "runtime/drift.hpp"
#include "runtime/model_store.hpp"
#include "runtime/runtime.hpp"
#include "runtime/telemetry.hpp"
#include "runtime/trainer.hpp"
#include "taurus/app.hpp"
#include "taurus/farm.hpp"
#include "util/metrics.hpp"

using namespace taurus;

namespace {

/** Shared trained model + steady/shifted traces (trained once). */
struct Fixture
{
    models::AnomalyDnn dnn = models::trainAnomalyDnn(1, 3000);
    net::KddConfig base;
    std::vector<net::TracePacket> steady;  ///< training-time mix
    std::vector<net::TracePacket> shifted; ///< drifted mix

    Fixture()
    {
        base.connections = 12000;
        base.trace_duration_s = 1.0;
        net::KddGenerator gen_a(base, 42);
        steady = net::trimTrace(
            gen_a.expandToPackets(gen_a.sampleConnections()),
            base.trace_duration_s);
        net::KddGenerator gen_b(net::shiftedAttackMix(base), 43);
        shifted = net::trimTrace(
            gen_b.expandToPackets(gen_b.sampleConnections()),
            base.trace_duration_s);
    }
};

const Fixture &
fixture()
{
    static const Fixture fx;
    return fx;
}

/** The deterministic scenario config shared by several tests. */
runtime::RuntimeConfig
scenarioConfig()
{
    runtime::RuntimeConfig rc;
    rc.synchronous = true;
    rc.sampling_rate = 1.0;
    rc.batch_pkts = 512;
    rc.train.batch = 256;
    rc.train.epochs = 2;
    rc.train.learning_rate = 0.05f;
    rc.train.seed = 5;
    rc.drift.window = 2048;
    rc.drift.warmup_windows = 2;
    rc.drift.trigger_ratio = 0.85;
    rc.drift.recover_ratio = 0.95;
    return rc;
}

} // namespace

TEST(TelemetryRing, FifoAndDropOnFull)
{
    runtime::TelemetryRing ring(6); // rounds up to 8
    EXPECT_EQ(ring.capacity(), 8u);

    auto sample = [](int8_t tag) {
        runtime::TelemetrySample s;
        s.score = tag;
        return s;
    };

    for (int i = 0; i < 8; ++i)
        EXPECT_TRUE(ring.tryPush(sample(static_cast<int8_t>(i))));
    // Full: pushes fail, are counted, and never overwrite live slots.
    EXPECT_FALSE(ring.tryPush(sample(99)));
    EXPECT_FALSE(ring.tryPush(sample(98)));
    EXPECT_EQ(ring.dropped(), 2u);
    EXPECT_EQ(ring.pushed(), 8u);
    EXPECT_EQ(ring.size(), 8u);

    runtime::TelemetrySample out;
    for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(ring.tryPop(out));
        EXPECT_EQ(out.score, i);
    }
    EXPECT_FALSE(ring.tryPop(out));

    // Space freed: the producer can continue where it left off.
    EXPECT_TRUE(ring.tryPush(sample(42)));
    ASSERT_TRUE(ring.tryPop(out));
    EXPECT_EQ(out.score, 42);
}

TEST(TelemetryRing, SpscConcurrentPreservesOrder)
{
    runtime::TelemetryRing ring(64);
    constexpr int kTotal = 200000;

    std::thread producer([&]() {
        for (int i = 0; i < kTotal; ++i) {
            runtime::TelemetrySample s;
            // Full 32-bit sequence number across four feature bytes.
            const auto u = static_cast<uint32_t>(i);
            for (int b = 0; b < 4; ++b)
                s.features[static_cast<size_t>(b)] =
                    static_cast<int8_t>((u >> (8 * b)) & 0xff);
            s.feature_count = 4;
            ring.tryPush(s); // drops allowed, never blocks
        }
    });

    int received = 0;
    int64_t last_seq = -1;
    bool ordered = true;
    runtime::TelemetrySample s;
    while (true) {
        if (ring.tryPop(s)) {
            uint32_t seq = 0;
            for (int b = 0; b < 4; ++b)
                seq |= static_cast<uint32_t>(static_cast<uint8_t>(
                           s.features[static_cast<size_t>(b)]))
                       << (8 * b);
            // Drops may skip values, but delivery must be strictly
            // increasing: FIFO order, no duplication, no reordering.
            if (static_cast<int64_t>(seq) <= last_seq)
                ordered = false;
            last_seq = static_cast<int64_t>(seq);
            ++received;
        } else if (ring.size() == 0 && received + static_cast<int>(
                                           ring.dropped()) >= kTotal) {
            break;
        }
    }
    producer.join();
    EXPECT_TRUE(ordered);
    EXPECT_GT(received, 0);
    EXPECT_EQ(received + static_cast<int>(ring.dropped()), kTotal);
}

TEST(ModelStore, VersionsAndChecksum)
{
    const auto &fx = fixture();
    runtime::ModelStore store;
    EXPECT_EQ(store.version(), 0u);
    EXPECT_EQ(store.current(), nullptr);

    store.publish(fx.dnn.graph);
    EXPECT_EQ(store.version(), 1u);
    const auto snap = store.current();
    ASSERT_NE(snap, nullptr);
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(snap->checksum, runtime::ModelStore::checksum(snap->graph));

    store.publish(fx.dnn.graph);
    EXPECT_EQ(store.version(), 2u);
    // The old snapshot is untouched by the publish (RCU semantics).
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(store.current()->version, 2u);
}

TEST(ModelStore, ConcurrentHotSwapTornReadFree)
{
    // A writer hammers publish() while readers continuously grab
    // snapshots and re-derive the checksum. A torn read (a reader
    // observing half of one graph and half of another) would break the
    // checksum; TSan additionally proves the swap itself is race-free.
    const auto &fx = fixture();
    dfg::Graph a = fx.dnn.graph;
    dfg::Graph b = fx.dnn.graph;
    for (size_t i = 0; i < b.nodes().size(); ++i)
        for (auto &w : b.node(static_cast<int>(i)).weights)
            w = static_cast<int8_t>(-w);

    runtime::ModelStore store;
    store.publish(a);

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> torn{0};
    std::vector<std::thread> readers;
    for (int r = 0; r < 3; ++r) {
        readers.emplace_back([&]() {
            while (!stop.load(std::memory_order_relaxed)) {
                const auto snap = store.current();
                if (snap->checksum !=
                    runtime::ModelStore::checksum(snap->graph))
                    torn.fetch_add(1, std::memory_order_relaxed);
            }
        });
    }

    constexpr int kPublishes = 300;
    for (int i = 0; i < kPublishes; ++i)
        store.publish(i % 2 ? b : a);
    stop.store(true, std::memory_order_relaxed);
    for (auto &t : readers)
        t.join();

    EXPECT_EQ(torn.load(), 0u);
    EXPECT_EQ(store.version(), static_cast<uint64_t>(kPublishes) + 1);
}

TEST(DriftMonitor, TriggersAndRecovers)
{
    runtime::DriftConfig dc;
    dc.window = 100;
    dc.warmup_windows = 2;
    dc.trigger_ratio = 0.85;
    dc.recover_ratio = 0.95;
    dc.ema_alpha = 1.0; // no smoothing: windows act directly
    runtime::DriftMonitor mon(dc);

    // Perfect windows establish the reference.
    auto feedWindows = [&](int windows, int wrong_per_window) {
        for (int w = 0; w < windows; ++w)
            for (int i = 0; i < 100; ++i) {
                const bool truth = i % 2 == 0;
                const bool flagged =
                    i < wrong_per_window ? !truth : truth;
                mon.record(0, flagged, truth);
            }
    };

    feedWindows(3, 0);
    EXPECT_FALSE(mon.drifted());
    EXPECT_DOUBLE_EQ(mon.referenceF1(), 1.0);
    EXPECT_EQ(mon.windowsClosed(), 3u);

    // A degraded window (F1 well below 0.85) latches drift and freezes
    // the reference.
    feedWindows(1, 40);
    EXPECT_TRUE(mon.drifted());
    EXPECT_EQ(mon.triggers(), 1u);
    EXPECT_DOUBLE_EQ(mon.referenceF1(), 1.0);
    EXPECT_LT(mon.lastWindowF1(), 0.85);

    // Still-degraded windows keep it latched.
    feedWindows(2, 30);
    EXPECT_TRUE(mon.drifted());
    EXPECT_EQ(mon.triggers(), 1u);

    // A healthy window recovers it.
    feedWindows(1, 1);
    EXPECT_FALSE(mon.drifted());
    EXPECT_EQ(mon.recoveries(), 1u);
    EXPECT_GE(mon.lastWindowF1(), 0.95 * mon.referenceF1());
}

TEST(DriftMonitor, WindowedStatsResetAtBoundary)
{
    runtime::DriftConfig dc;
    dc.window = 50;
    runtime::DriftMonitor mon(dc);

    for (int i = 0; i < 49; ++i)
        mon.record(10, true, true);
    EXPECT_EQ(mon.scoreStat().count(), 49u);
    EXPECT_DOUBLE_EQ(mon.scoreStat().mean(), 10.0);

    // The 50th sample closes the window: aggregates move to the
    // last-window gauges and the running stats start fresh.
    mon.record(10, true, true);
    EXPECT_EQ(mon.windowsClosed(), 1u);
    EXPECT_EQ(mon.scoreStat().count(), 0u);
    EXPECT_DOUBLE_EQ(mon.lastWindowScoreMean(), 10.0);

    // The next window's stats are independent of the previous one.
    mon.record(-20, true, true);
    EXPECT_EQ(mon.scoreStat().count(), 1u);
    EXPECT_DOUBLE_EQ(mon.scoreStat().mean(), -20.0);

    mon.reset();
    EXPECT_EQ(mon.windowsClosed(), 0u);
    EXPECT_EQ(mon.scoreStat().count(), 0u);
    EXPECT_FALSE(mon.drifted());
}

TEST(Runtime, SynchronousRunIsDeterministic)
{
    const auto &fx = fixture();
    const size_t n = std::min<size_t>(fx.steady.size(), 10000);
    const std::vector<net::TracePacket> slice(fx.steady.begin(),
                                              fx.steady.begin() + n);

    auto run = [&]() {
        core::SwitchFarm farm({}, 2);
        farm.installAnomalyModel(fx.dnn);
        runtime::RuntimeConfig rc = scenarioConfig();
        // Force the full train-and-publish path on every minibatch so
        // determinism covers SGD, quantization, and the hot swap.
        rc.train_always = true;
        rc.train.batch = 128;
        runtime::OnlineRuntime rt(farm, fx.dnn, rc);
        rt.start();
        auto decisions = rt.processTrace(slice);
        const auto st = rt.stats();
        rt.stop();
        return std::make_pair(std::move(decisions), st);
    };

    const auto [da, sa] = run();
    const auto [db, sb] = run();

    ASSERT_EQ(da.size(), db.size());
    for (size_t i = 0; i < da.size(); ++i) {
        EXPECT_EQ(da[i].flagged, db[i].flagged) << i;
        EXPECT_EQ(da[i].score, db[i].score) << i;
        EXPECT_EQ(da[i].bypassed, db[i].bypassed) << i;
        EXPECT_DOUBLE_EQ(da[i].latency_ns, db[i].latency_ns) << i;
        EXPECT_EQ(da[i].features, db[i].features) << i;
    }
    EXPECT_EQ(sa.packets, sb.packets);
    EXPECT_EQ(sa.mirrored, sb.mirrored);
    EXPECT_EQ(sa.consumed, sb.consumed);
    EXPECT_EQ(sa.sgd_steps, sb.sgd_steps);
    EXPECT_EQ(sa.updates_published, sb.updates_published);
    EXPECT_EQ(sa.updates_applied, sb.updates_applied);
    EXPECT_EQ(sa.windows_closed, sb.windows_closed);
    EXPECT_DOUBLE_EQ(sa.last_window_f1, sb.last_window_f1);
    EXPECT_DOUBLE_EQ(sa.smoothed_f1, sb.smoothed_f1);
    // The run actually exercised the update path. Applications are
    // farm-wide (multiples of the worker count) and coalesced: several
    // versions published inside one batch boundary apply only once, so
    // applied is bounded by published * workers without equaling it.
    EXPECT_GT(sa.updates_published, 0u);
    EXPECT_GE(sa.updates_applied, 2u);
    EXPECT_EQ(sa.updates_applied % 2, 0u);
    EXPECT_LE(sa.updates_applied, sa.updates_published * 2);
}

TEST(Runtime, HotSwapUnderConcurrentTraffic)
{
    // Live traffic through persistent workers while the trainer thread
    // publishes continuously; workers hot-swap at batch boundaries.
    // TSan (CI job) is the oracle for torn reads; functionally we
    // require every packet decided and updates actually applied.
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 2);
    farm.installAnomalyModel(fx.dnn);

    runtime::RuntimeConfig rc;
    rc.synchronous = false;
    rc.train_always = true; // keep the publisher busy
    rc.sampling_rate = 0.5;
    rc.batch_pkts = 256;
    rc.ring_capacity = 1 << 12;
    rc.train.batch = 64;
    rc.train.epochs = 1;
    rc.train.install_delay_ms = 0.0; // publish as fast as possible
    rc.train.seed = 7;

    runtime::OnlineRuntime rt(farm, fx.dnn, rc);
    rt.start();

    const size_t n = std::min<size_t>(fx.steady.size(), 8000);
    const std::vector<net::TracePacket> slice(fx.steady.begin(),
                                              fx.steady.begin() + n);
    std::vector<core::SwitchDecision> decisions(n);
    for (int round = 0; round < 6; ++round)
        rt.processTrace(
            util::Span<const net::TracePacket>(slice.data(), n),
            util::Span<core::SwitchDecision>(decisions.data(), n));
    rt.stop();

    const auto st = rt.stats();
    EXPECT_EQ(st.packets, 6 * n);
    EXPECT_GT(st.mirrored, 0u);
    EXPECT_GT(st.consumed, 0u);
    EXPECT_GT(st.updates_published, 0u);
    EXPECT_GT(st.updates_applied, 0u);
    // Everything mirrored is either consumed or still counted.
    EXPECT_GE(st.mirrored, st.consumed);
    // Every packet got a real decision (latency is never zero).
    for (size_t i = 0; i < n; ++i)
        EXPECT_GT(decisions[i].latency_ns, 0.0) << i;
    // Stopping twice is safe, and a stopped runtime rejects traffic.
    rt.stop();
    EXPECT_THROW(rt.processTrace(slice), std::logic_error);

    // The lifecycle is restartable: a second start() must relaunch
    // workers (clearing their stop flags) and serve traffic again.
    rt.start();
    rt.processTrace(
        util::Span<const net::TracePacket>(slice.data(), n),
        util::Span<core::SwitchDecision>(decisions.data(), n));
    EXPECT_EQ(rt.stats().packets, 7 * n);
    rt.stop();
}

TEST(Runtime, SynchronousControlCadenceSurvivesChunkedCalls)
{
    // Control steps fire every batch_pkts packets *across* processTrace
    // calls: a caller streaming chunks smaller than batch_pkts must
    // still get ring drains, training, and weight pushes on schedule.
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 2);
    farm.installAnomalyModel(fx.dnn);

    runtime::RuntimeConfig rc = scenarioConfig();
    rc.train_always = true;
    rc.batch_pkts = 1024;
    rc.train.batch = 128;
    runtime::OnlineRuntime rt(farm, fx.dnn, rc);
    rt.start();

    const size_t chunk = 300; // well below batch_pkts
    const size_t chunks = 12;
    ASSERT_GE(fx.steady.size(), chunk * chunks);
    for (size_t c = 0; c < chunks; ++c) {
        const std::vector<net::TracePacket> part(
            fx.steady.begin() + c * chunk,
            fx.steady.begin() + (c + 1) * chunk);
        rt.processTrace(part);
    }
    const auto st = rt.stats();
    // 3600 packets at full sampling = 28 minibatches of 128; the old
    // per-call counter would have produced exactly zero of all three.
    EXPECT_GT(st.consumed, 0u);
    EXPECT_GT(st.sgd_steps, 0u);
    EXPECT_GT(st.updates_published, 0u);
    // Applications happen farm-wide at batch boundaries (or the final
    // drain), coalescing superseded versions, so the farm ends on the
    // latest published model without over-applying.
    rt.stop();
    const auto end = rt.stats();
    EXPECT_GE(end.updates_applied, farm.workers());
    EXPECT_EQ(end.updates_applied % farm.workers(), 0u);
    EXPECT_LE(end.updates_applied,
              end.updates_published * farm.workers());
}

TEST(Runtime, DriftTriggersRetrainingAndRecovers)
{
    // The headline scenario: steady KDD-mix traffic establishes the
    // reference; an injected distribution shift (shiftedAttackMix)
    // degrades windowed F1; the drift monitor triggers retraining on
    // mirrored telemetry; hot-swapped weight updates recover windowed
    // F1 to >= 95% of its pre-shift value.
    const auto &fx = fixture();
    core::SwitchFarm farm({}, 2);
    farm.installAnomalyModel(fx.dnn);

    runtime::OnlineRuntime rt(farm, fx.dnn, scenarioConfig());
    rt.start();

    rt.processTrace(fx.steady);
    const auto steady_stats = rt.stats();
    // The steady phase must be healthy: reference armed, no (false)
    // drift triggers, no training activity.
    EXPECT_GT(steady_stats.reference_f1, 0.5);
    EXPECT_EQ(steady_stats.drift_triggers, 0u);
    EXPECT_EQ(steady_stats.sgd_steps, 0u);
    EXPECT_EQ(steady_stats.updates_published, 0u);
    const double pre_shift_f1 = steady_stats.reference_f1;

    // Inject the shift and run until the monitor reports recovery (the
    // validated scenario recovers in ~2 passes; 8 is generous slack).
    for (int round = 0; round < 8; ++round) {
        rt.processTrace(fx.shifted);
        if (rt.stats().drift_recoveries > 0)
            break;
    }
    const auto st = rt.stats();
    rt.stop();

    EXPECT_EQ(st.drift_triggers, 1u);
    EXPECT_GE(st.drift_recoveries, 1u);
    EXPECT_GT(st.sgd_steps, 0u);
    EXPECT_GT(st.updates_published, 0u);
    // Farm-wide, coalesced application of the published stream.
    EXPECT_GE(st.updates_applied, farm.workers());
    EXPECT_EQ(st.updates_applied % farm.workers(), 0u);
    EXPECT_LE(st.updates_applied, st.updates_published * farm.workers());
    EXPECT_FALSE(st.drifted);
    // Recovery: smoothed windowed F1 back to >= 95% of pre-shift.
    EXPECT_GE(st.smoothed_f1, 0.95 * pre_shift_f1);
}

TEST(StreamingTrainer, SnapshotIsStructurallyCompatible)
{
    // A snapshot from the streaming trainer must be accepted by the
    // weight-only update path of a switch running the installed model —
    // same node structure, pinned input quantization.
    const auto &fx = fixture();
    cp::OnlineTrainConfig tc;
    tc.batch = 32;
    tc.seed = 3;
    runtime::StreamingTrainer trainer(fx.dnn, tc);

    core::TaurusSwitch sw;
    sw.installAnomalyModel(fx.dnn);

    // Feed real telemetry from processed packets.
    size_t fed = 0;
    for (size_t i = 0; i < fx.steady.size() && fed < 64; ++i) {
        const auto d = sw.process(fx.steady[i]);
        trainer.ingest(runtime::makeSample(d, fx.steady[i].anomalous));
        ++fed;
    }
    ASSERT_TRUE(trainer.minibatchReady());
    trainer.step();
    EXPECT_EQ(trainer.steps(), 1u);

    const dfg::Graph g = trainer.snapshotGraph();
    EXPECT_NO_THROW(sw.updateWeights(g));
    // And the update is live: the switch still decides packets.
    const auto d = sw.process(fx.steady.front());
    EXPECT_GT(d.latency_ns, 0.0);
}

TEST(DriftMonitor, AccuracyMetricScoresMultiClassVerdicts)
{
    runtime::DriftConfig dc;
    dc.window = 100;
    dc.warmup_windows = 2;
    dc.trigger_ratio = 0.85;
    dc.recover_ratio = 0.95;
    dc.ema_alpha = 1.0;
    dc.metric = runtime::DriftMetric::Accuracy;
    runtime::DriftMonitor mon(dc);

    // Windows of multi-class verdicts at a given accuracy.
    auto feedWindow = [&](int correct_pct) {
        for (int i = 0; i < 100; ++i) {
            const int32_t truth = i % 5;
            const int32_t pred =
                i < correct_pct ? truth : (truth + 1) % 5;
            mon.record(static_cast<int8_t>(truth), pred, truth);
        }
    };

    feedWindow(90);
    feedWindow(90);
    feedWindow(90);
    EXPECT_FALSE(mon.drifted());
    EXPECT_DOUBLE_EQ(mon.lastWindowF1(), 0.9); // gauge carries accuracy
    EXPECT_DOUBLE_EQ(mon.referenceF1(), 0.9);

    feedWindow(40);
    EXPECT_TRUE(mon.drifted());
    EXPECT_EQ(mon.triggers(), 1u);

    feedWindow(90);
    EXPECT_FALSE(mon.drifted());
    EXPECT_EQ(mon.recoveries(), 1u);
}

TEST(Runtime, ServesIotClassifierArtifactEndToEnd)
{
    // The app-generic runtime: the IoT multi-class artifact trains,
    // publishes, and hot-swaps through the same machinery as the
    // anomaly DNN — with the drift monitor automatically switched to
    // the accuracy metric.
    const models::IotFlowMlp iot = models::trainIotFlowMlp(13, 700);
    const core::AppArtifact app = core::makeIotFlowApp(iot);

    core::SwitchFarm farm({}, 2);
    farm.installApp(app);

    runtime::RuntimeConfig rc;
    rc.synchronous = true;
    rc.sampling_rate = 1.0;
    rc.batch_pkts = 512;
    rc.train_always = true; // exercise train+publish+swap on every batch
    rc.train.batch = 128;
    rc.train.epochs = 1;
    rc.train.seed = 9;
    rc.drift.window = 512;

    runtime::OnlineRuntime rt(farm, app, rc);
    rt.start();
    const auto decisions = rt.processTrace(app.eval_trace);
    const auto st = rt.stats();
    rt.stop();

    EXPECT_EQ(st.packets, app.eval_trace.size());
    EXPECT_GT(st.sgd_steps, 0u);
    EXPECT_GT(st.updates_published, 0u);
    EXPECT_GT(st.updates_applied, 0u);

    // Decisions stay accurate across live classifier hot swaps.
    util::MultiConfusion cm(net::kIotClassCount);
    for (size_t i = 0; i < decisions.size(); ++i)
        cm.record(decisions[i].class_id, app.eval_trace[i].class_label);
    EXPECT_GT(cm.accuracy(), 0.6);

    // The windowed gauge is an accuracy in accuracy mode.
    EXPECT_GT(st.windows_closed, 0u);
    EXPECT_GT(st.last_window_f1, 0.5);
    EXPECT_LE(st.last_window_f1, 1.0);
}

TEST(Runtime, ArtifactWithoutTrainerMirrorsButNeverTrains)
{
    // A null trainer factory disables retraining, not the runtime:
    // telemetry still mirrors and drift is still monitored.
    const auto &fx = fixture();
    core::AppArtifact app = core::makeAnomalyDnnApp(fx.dnn);
    app.make_trainer = nullptr;

    core::SwitchFarm farm({}, 1);
    farm.installApp(app);

    runtime::RuntimeConfig rc = scenarioConfig();
    rc.train_always = true; // would train every batch if it could
    runtime::OnlineRuntime rt(farm, app, rc);
    rt.start();
    const size_t n = std::min<size_t>(fx.steady.size(), 8000);
    const std::vector<net::TracePacket> slice(
        fx.steady.begin(), fx.steady.begin() + static_cast<long>(n));
    rt.processTrace(slice);
    rt.stop();

    const auto st = rt.stats();
    EXPECT_GT(st.mirrored, 0u);
    EXPECT_GT(st.consumed, 0u);
    EXPECT_EQ(st.sgd_steps, 0u);
    EXPECT_EQ(st.updates_published, 0u);
}

TEST(StreamingTrainer, ClassifierSnapshotIsStructurallyCompatible)
{
    // The classifier-headed trainer must produce graphs the installed
    // argmax program accepts as weight-only updates.
    const models::IotFlowMlp iot = models::trainIotFlowMlp(17, 500);
    const core::AppArtifact app = core::makeIotFlowApp(iot);

    core::TaurusSwitch sw;
    sw.installApp(app);

    cp::OnlineTrainConfig tc;
    tc.batch = 32;
    tc.seed = 3;
    runtime::StreamingTrainer trainer(
        iot.model, iot.quantized.inputParams(), /*classifier_head=*/true,
        0.0, "iot_flow_mlp_online", tc);

    size_t fed = 0;
    for (size_t i = 0; i < app.eval_trace.size() && fed < 64; ++i) {
        const auto d = sw.process(app.eval_trace[i]);
        trainer.ingest(
            runtime::makeSample(d, app.eval_trace[i].class_label));
        ++fed;
    }
    ASSERT_TRUE(trainer.minibatchReady());
    trainer.step();

    const dfg::Graph g = trainer.snapshotGraph();
    EXPECT_NO_THROW(sw.updateWeights(g));
    const auto d = sw.process(app.eval_trace.front());
    EXPECT_GE(d.class_id, 0);
    EXPECT_LT(d.class_id, net::kIotClassCount);
}
