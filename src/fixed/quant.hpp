/**
 * @file
 * Symmetric per-tensor quantization (float32 -> int8/16/32) and integer
 * requantization, gemmlowp-style.
 *
 * The Taurus data path is integer-only: weights and activations are int8,
 * dot-product accumulation is int32, and the accumulator is scaled back to
 * int8 with a fixed-point multiplier (int32 mantissa + right shift). This
 * module defines that arithmetic once; both the nn reference inference and
 * the hw cycle simulator use it, which is what makes the "full model
 * accuracy" claim (paper Section 5.2.2) checkable: the hardware result is
 * bit-exact with the quantized reference model.
 */

#pragma once

#include <cstdint>
#include <vector>

#include "fixed/saturate.hpp"

namespace taurus::fixed {

/** Symmetric quantization parameters: real = scale * quantized. */
struct QuantParams
{
    double scale = 1.0;

    /** Scale chosen so absMax maps to the extreme code of `bits`. */
    static QuantParams forAbsMax(double abs_max, int bits = 8);
};

/** Quantize one real value to a saturating signed integer of `bits`. */
int32_t quantize(double real, const QuantParams &qp, int bits = 8);

/** Dequantize back to real. */
double dequantize(int32_t q, const QuantParams &qp);

/** Quantize a vector to int8. */
std::vector<int8_t> quantizeVec(const std::vector<float> &v,
                                const QuantParams &qp);

/**
 * Integer requantizer: approximates multiplication by a real factor in
 * [0, 1) (or slightly above) as (x * mantissa) >> (31 + exponent), with
 * round-half-away-from-zero. Used to rescale int32 accumulators to int8
 * activations between layers.
 */
class Requantizer
{
  public:
    Requantizer() = default;

    /** Build from the real multiplier outScale = inScale / outScale etc. */
    static Requantizer fromRealMultiplier(double multiplier);

    /** Apply to an int32 accumulator, returning a saturated int8. */
    int8_t
    apply(int32_t acc) const
    {
        const int64_t prod = static_cast<int64_t>(acc) * mantissa_;
        const int64_t scaled = roundingShiftRight(prod, 31 + exponent_);
        return saturate<int8_t>(scaled);
    }

    /** Apply returning full precision (for wider intermediate paths). */
    int32_t
    applyWide(int32_t acc) const
    {
        const int64_t prod = static_cast<int64_t>(acc) * mantissa_;
        return saturate<int32_t>(roundingShiftRight(prod, 31 + exponent_));
    }

    int32_t mantissa() const { return mantissa_; }
    int exponent() const { return exponent_; }
    double realMultiplier() const;

  private:
    int32_t mantissa_ = 0; // Q31 mantissa in [2^30, 2^31).
    int exponent_ = 0;     // extra right shift (may be negative).
};

} // namespace taurus::fixed
