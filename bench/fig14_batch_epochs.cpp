/**
 * @file
 * Figure 14: online-training convergence by epoch/batch configuration
 * (1/64, 1/256, 10/64, 10/256) at a fixed 1e-2 sampling rate. The
 * paper's finding: the smallest batch with the most epochs converges
 * fastest and highest — fewer, more substantial updates win.
 */

#include "harness.hpp"

#include "cp/trainer.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "util/table.hpp"

TAURUS_BENCH(fig14_batch_epochs, "Figure 14",
             "online-training convergence by epoch/batch configuration")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Figure 14: F1 over time by epochs/batch (sampling 1e-2)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(4000, 800));
    net::KddConfig cfg;
    cfg.connections = ctx.size(40000, 2000);
    cfg.trace_duration_s = 1.5;
    net::KddGenerator gen(cfg, 33);
    const auto trace = gen.expandToPackets(gen.sampleConnections());

    struct Config
    {
        int epochs;
        int batch;
    };
    const std::vector<Config> configs =
        ctx.smoke() ? std::vector<Config>{{1, 64}, {10, 64}}
                    : std::vector<Config>{{1, 64}, {1, 256}, {10, 64},
                                          {10, 256}};
    const double checkpoints[] = {0.1, 0.25, 0.5, 1.0, 2.0, 5.0, 10.0,
                                  20.0};
    const double max_time_s = ctx.amount(25.0, 4.0);

    TablePrinter t({"Epoch/Batch", "t=.1s", ".25s", ".5s", "1s", "2s",
                    "5s", "10s", "20s", "final F1", "converged @"});
    for (const auto &c : configs) {
        cp::OnlineTrainConfig tc;
        tc.sampling_rate = 1e-2;
        tc.epochs = c.epochs;
        tc.batch = c.batch;
        tc.max_time_s = max_time_s;
        const auto res = cp::runOnlineTraining(trace, dnn.standardizer,
                                               dnn.test, tc);
        std::vector<std::string> row = {std::to_string(c.epochs) + "/" +
                                        std::to_string(c.batch)};
        for (double ck : checkpoints) {
            double f1 = res.curve.front().f1;
            for (const auto &p : res.curve) {
                if (p.time_s > ck)
                    break;
                f1 = p.f1;
            }
            row.push_back(TablePrinter::num(f1 * 100.0, 0));
        }
        row.push_back(TablePrinter::num(res.final_f1 * 100.0, 0));
        row.push_back(TablePrinter::num(res.convergence_time_s, 2) +
                      " s");
        t.addRow(row);
        const std::string key = std::to_string(c.epochs) + "ep_" +
                                std::to_string(c.batch) + "batch";
        ctx.metric(key + "_final_f1_x100", res.final_f1 * 100.0);
        ctx.metric(key + "_convergence_s", res.convergence_time_s);
    }
    t.print(os);

    os << "\nReading: the 10-epoch configurations dominate the 1-epoch "
          "ones, and 10/64 reaches the highest final F1 — the added "
          "training time per update is offset by faster convergence.\n";
}
