#include "dfg/eval.hpp"

#include <cassert>
#include <limits>
#include <stdexcept>

#include "fixed/saturate.hpp"
#include "kernels/kernels.hpp"

namespace taurus::dfg {

namespace {

using fixed::saturate;

int8_t
clamp8(int32_t v)
{
    return saturate<int8_t>(v);
}

// Wrapping int32 arithmetic (two's complement, no UB on overflow).
// applyMapFn is the definitional oracle the SIMD kernels are tested
// bit-exact against, so its behavior must be defined on every int32
// lane value — including the partial-sum extremes an Int32Vec edge can
// carry into a MapChain.
int32_t
wrapAdd(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) +
                                static_cast<uint32_t>(b));
}

int32_t
wrapMul(int32_t a, int32_t b)
{
    return static_cast<int32_t>(static_cast<uint32_t>(a) *
                                static_cast<uint32_t>(b));
}

int32_t
wrapNeg(int32_t a)
{
    return static_cast<int32_t>(0u - static_cast<uint32_t>(a));
}

/**
 * Evaluate every node in `topo` order, writing each result into
 * `values[id]`. Lane buffers are cleared, not reallocated, so a caller
 * that reuses `values` across packets pays no per-packet allocations
 * once the buffers have grown to their steady-state capacity.
 */
void
evalNodes(const Graph &g, const std::vector<int> &topo,
          const std::vector<std::vector<int8_t>> &inputs,
          std::vector<LaneVec> &values)
{
    size_t next_input = 0;
    const kernels::Ops &ops = kernels::active();

    for (int id : topo) {
        const Node &n = g.node(id);
        LaneVec &out = values[static_cast<size_t>(id)];
        out.lanes.clear();
        out.type = Graph::outputType(n);

        auto in = [&](size_t i) -> const LaneVec & {
            return values[static_cast<size_t>(n.inputs[i])];
        };

        switch (n.kind) {
          case NodeKind::Input: {
            if (next_input >= inputs.size())
                throw std::invalid_argument("not enough input vectors");
            const auto &src = inputs[next_input++];
            if (src.size() != static_cast<size_t>(n.width))
                throw std::invalid_argument("input width mismatch");
            for (int8_t v : src)
                out.lanes.push_back(v);
            break;
          }
          case NodeKind::DotRow: {
            const int64_t acc =
                n.bias + ops.dot_s8_s32(n.weights.data(),
                                        in(0).lanes.data(),
                                        n.weights.size());
            out.lanes.push_back(
                n.requant.apply(saturate<int32_t>(acc)));
            break;
          }
          case NodeKind::PartialDot: {
            const int64_t acc = ops.dot_s8_s32(
                n.weights.data(), in(0).lanes.data(), n.weights.size());
            out.lanes.push_back(saturate<int32_t>(acc));
            break;
          }
          case NodeKind::CombineAdd: {
            int64_t acc = n.bias;
            for (size_t i = 0; i < n.inputs.size(); ++i) {
                assert(in(i).lanes.size() == 1);
                acc += in(i).lanes[0];
            }
            out.lanes.push_back(
                n.requant.apply(saturate<int32_t>(acc)));
            break;
          }
          case NodeKind::MapChain: {
            out.lanes.assign(in(0).lanes.begin(), in(0).lanes.end());
            for (size_t s = 0; s < n.fns.size(); ++s) {
                const int32_t imm =
                    s < n.imms.size() ? n.imms[s] : 0;
                applyMapFnLanes(ops, n.fns[s], out.lanes.data(),
                                out.lanes.size(), imm, n.requant);
            }
            break;
          }
          case NodeKind::EltwiseMul: {
            const auto &a = in(0);
            const auto &b = in(1);
            assert(a.lanes.size() == b.lanes.size());
            out.lanes.resize(a.lanes.size());
            ops.mul_requant(a.lanes.data(), b.lanes.data(),
                            out.lanes.data(), a.lanes.size(), n.requant);
            break;
          }
          case NodeKind::EltwiseAdd: {
            const auto &a = in(0);
            const auto &b = in(1);
            assert(a.lanes.size() == b.lanes.size());
            out.lanes.resize(a.lanes.size());
            ops.add_clamp8(a.lanes.data(), b.lanes.data(),
                           out.lanes.data(), a.lanes.size());
            break;
          }
          case NodeKind::SquaredDist: {
            int64_t acc = 0;
            const auto &x = in(0);
            for (size_t i = 0; i < n.weights.size(); ++i) {
                const int32_t d =
                    x.lanes[i] - static_cast<int32_t>(n.weights[i]);
                acc += d * d;
            }
            const int32_t raw = saturate<int32_t>(acc);
            out.lanes.push_back(n.requantized() ? n.requant.apply(raw)
                                                : raw);
            break;
          }
          case NodeKind::ArgMin: {
            const auto &x = in(0);
            int32_t best = std::numeric_limits<int32_t>::max();
            int32_t best_idx = 0;
            for (size_t i = 0; i < x.lanes.size(); ++i)
                if (x.lanes[i] < best) {
                    best = x.lanes[i];
                    best_idx = static_cast<int32_t>(i);
                }
            out.lanes.push_back(best_idx);
            break;
          }
          case NodeKind::Lookup: {
            for (int32_t lane : in(0).lanes) {
                const int32_t idx = saturate<int8_t>(lane) + 128;
                out.lanes.push_back(
                    n.lut[static_cast<size_t>(idx)]);
            }
            break;
          }
          case NodeKind::Concat: {
            for (size_t i = 0; i < n.inputs.size(); ++i)
                for (int32_t lane : in(i).lanes)
                    out.lanes.push_back(lane);
            break;
          }
          case NodeKind::Output: {
            const auto &src = in(0);
            out.lanes.assign(src.lanes.begin(), src.lanes.end());
            out.type = src.type;
            break;
          }
        }

        if (n.kind != NodeKind::Output &&
            out.lanes.size() != static_cast<size_t>(n.width))
            throw std::logic_error("node " + std::to_string(n.id) +
                                   " produced wrong width");
    }
}

} // namespace

void
applyMapFnLanes(const kernels::Ops &ops, MapFn fn, int32_t *x, size_t n,
                int32_t imm, const fixed::Requantizer &rq)
{
    switch (fn) {
      case MapFn::Identity:
        break;
      case MapFn::Relu:
        ops.relu(x, n);
        break;
      case MapFn::LeakyRelu:
        ops.leaky_relu(x, n);
        break;
      case MapFn::Square:
        ops.square_clamp8(x, n);
        break;
      case MapFn::Abs:
        ops.abs_clamp8(x, n);
        break;
      case MapFn::Neg:
        ops.neg_clamp8(x, n);
        break;
      case MapFn::AddConst:
        ops.add_const_clamp8(x, n, imm);
        break;
      case MapFn::MulConst:
        ops.mul_const_requant(x, n, imm, rq);
        break;
      case MapFn::MinConst:
        ops.min_const(x, n, imm);
        break;
      case MapFn::MaxConst:
        ops.max_const(x, n, imm);
        break;
    }
}

int32_t
applyMapFn(MapFn fn, int32_t x, int32_t imm, const fixed::Requantizer &rq)
{
    switch (fn) {
      case MapFn::Identity:
        return x;
      case MapFn::Relu:
        return x > 0 ? x : 0;
      case MapFn::LeakyRelu:
        return x >= 0 ? x : x / 8;
      case MapFn::Square:
        return clamp8(wrapMul(x, x));
      case MapFn::Abs:
        return x < 0 ? clamp8(wrapNeg(x)) : x;
      case MapFn::Neg:
        return clamp8(wrapNeg(x));
      case MapFn::AddConst:
        return clamp8(wrapAdd(x, imm));
      case MapFn::MulConst:
        return rq.apply(wrapMul(x, imm));
      case MapFn::MinConst:
        return x < imm ? x : imm;
      case MapFn::MaxConst:
        return x > imm ? x : imm;
    }
    return x;
}

void
EvalScratch::bind(const Graph &g)
{
    const std::string err = g.validate();
    if (!err.empty())
        throw std::invalid_argument("invalid graph: " + err);
    graph_ = &g;
    topo_ = g.topoOrder();
    out_ids_ = g.outputIds();
    values_.resize(g.nodes().size());
    outputs_.resize(out_ids_.size());
}

std::vector<LaneVec> &
evaluateInto(const Graph &g, const std::vector<std::vector<int8_t>> &inputs,
             EvalScratch &scratch)
{
    // Self-bind on first use, when handed a different graph object, or
    // when the bound graph changed node count (guards address reuse and
    // in-place structural edits; weight-only mutation keeps the binding
    // valid). Steady-state packets skip validation and topo sorting.
    if (scratch.graph_ != &g ||
        scratch.values_.size() != g.nodes().size())
        scratch.bind(g);

    evalNodes(g, scratch.topo_, inputs, scratch.values_);

    size_t oi = 0;
    for (int id : scratch.out_ids_) {
        const LaneVec &src = scratch.values_[static_cast<size_t>(id)];
        LaneVec &dst = scratch.outputs_[oi++];
        dst.lanes.assign(src.lanes.begin(), src.lanes.end());
        dst.type = src.type;
    }
    return scratch.outputs_;
}

std::vector<LaneVec>
evaluate(const Graph &g, const std::vector<std::vector<int8_t>> &inputs)
{
    const std::string err = g.validate();
    if (!err.empty())
        throw std::invalid_argument("invalid graph: " + err);

    std::vector<LaneVec> values(g.nodes().size());
    evalNodes(g, g.topoOrder(), inputs, values);

    std::vector<LaneVec> results;
    for (int id : g.outputIds())
        results.push_back(values[static_cast<size_t>(id)]);
    return results;
}

std::vector<int8_t>
evaluateSimple(const Graph &g, const std::vector<int8_t> &input)
{
    const auto results = evaluate(g, {input});
    std::vector<int8_t> out;
    for (int32_t lane : results.at(0).lanes)
        out.push_back(saturate<int8_t>(lane));
    return out;
}

} // namespace taurus::dfg
