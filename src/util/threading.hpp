/**
 * @file
 * Shared threading helpers: the one hardware-concurrency fallback every
 * multi-worker facade uses (SwitchFarm, PipelineFarm, benches), and
 * best-effort CPU pinning for the pipelined dataplane's shared-nothing
 * stages.
 */

#pragma once

#include <cstddef>
#include <thread>

namespace taurus::util {

/**
 * Resolve a requested worker count: 0 means "use the host's hardware
 * concurrency", clamped to at least one (hardware_concurrency() may
 * report 0). A nonzero request is honored as-is — callers that want a
 * ceiling pass `cap` (0 = uncapped), which bounds the resolved value
 * either way.
 */
size_t resolveWorkerCount(size_t requested, size_t cap = 0);

/**
 * Best-effort pinning of `t` to logical CPU `cpu % hardware cpus`.
 * Returns true when the affinity call succeeded; false (and pins
 * nothing) on platforms without thread affinity or when the call
 * fails. Purely a throughput knob — correctness never depends on it.
 */
bool pinThreadToCpu(std::thread &t, size_t cpu);

} // namespace taurus::util
