#include <gtest/gtest.h>

#include "compiler/compile.hpp"
#include "dfg/eval.hpp"
#include "dfg/mapreduce.hpp"
#include "hw/cycle_sim.hpp"
#include "nn/activations.hpp"
#include "nn/quantized.hpp"
#include "util/rng.hpp"

using namespace taurus;
using dfg::MapFn;
using dfg::mr::Builder;
using dfg::mr::Value;

TEST(MapReduceBuilder, Figure4DnnLayer)
{
    // The paper's Figure 4 program: a dense layer as a Map over weight
    // rows of an inner Map/Reduce, followed by a ReLU Map.
    util::Rng rng(3);
    const int in_w = 6, out_w = 12;
    std::vector<std::vector<int8_t>> weights(out_w,
                                             std::vector<int8_t>(in_w));
    std::vector<int32_t> biases(out_w);
    for (auto &row : weights)
        for (auto &w : row)
            w = static_cast<int8_t>(rng.uniformInt(-60, 60));
    for (auto &b : biases)
        b = static_cast<int32_t>(rng.uniformInt(-500, 500));
    const auto rq = fixed::Requantizer::fromRealMultiplier(0.02);

    Builder mr("anomaly_layer");
    const Value features = mr.input(in_w, "FeatureSet");
    const Value linear = mr.mapReduce(features, weights, biases, rq);
    const Value out = mr.map(linear, MapFn::Relu);
    mr.output(out, "Output");
    const dfg::Graph g = mr.build();
    ASSERT_EQ(g.validate(), "");

    // Semantics: requant(Wx + b) through ReLU, checked directly.
    for (int trial = 0; trial < 50; ++trial) {
        std::vector<int8_t> x(in_w);
        for (auto &v : x)
            v = static_cast<int8_t>(rng.uniformInt(-128, 127));
        const auto got = dfg::evaluateSimple(g, x);
        ASSERT_EQ(got.size(), static_cast<size_t>(out_w));
        for (int r = 0; r < out_w; ++r) {
            int64_t acc = biases[static_cast<size_t>(r)];
            for (int j = 0; j < in_w; ++j)
                acc += int(weights[static_cast<size_t>(r)]
                                  [static_cast<size_t>(j)]) *
                       int(x[static_cast<size_t>(j)]);
            int32_t want = rq.apply(fixed::saturate<int32_t>(acc));
            want = want > 0 ? want : 0;
            EXPECT_EQ(got[static_cast<size_t>(r)], want);
        }
    }
}

TEST(MapReduceBuilder, WideRowsLegalizeAcrossSegments)
{
    util::Rng rng(5);
    const int in_w = 24; // two segments
    std::vector<std::vector<int8_t>> weights(
        3, std::vector<int8_t>(static_cast<size_t>(in_w)));
    for (auto &row : weights)
        for (auto &w : row)
            w = static_cast<int8_t>(rng.uniformInt(-30, 30));
    const auto rq = fixed::Requantizer::fromRealMultiplier(0.01);

    Builder mr("wide");
    const Value x = mr.input(in_w);
    const Value y = mr.mapReduce(x, weights, {1, 2, 3}, rq);
    mr.output(y);
    const auto g = mr.build();

    bool has_partial = false;
    for (const auto &n : g.nodes())
        has_partial |= n.kind == dfg::NodeKind::PartialDot;
    EXPECT_TRUE(has_partial);

    // Compiles and simulates like any other program.
    const auto prog = compiler::compile(g);
    hw::CycleSim sim(prog);
    std::vector<int8_t> a(16, 3), b(8, -2);
    const auto res = sim.run({a, b});
    std::vector<int8_t> full;
    full.insert(full.end(), a.begin(), a.end());
    full.insert(full.end(), b.begin(), b.end());
    for (int r = 0; r < 3; ++r) {
        int64_t acc = r + 1;
        for (int j = 0; j < in_w; ++j)
            acc += int(weights[static_cast<size_t>(r)]
                              [static_cast<size_t>(j)]) *
                   int(full[static_cast<size_t>(j)]);
        EXPECT_EQ(res.outputs.at(0).lanes.at(static_cast<size_t>(r)),
                  rq.apply(fixed::saturate<int32_t>(acc)));
    }
}

TEST(MapReduceBuilder, KMeansStyleProgram)
{
    Builder mr("cluster");
    const Value x = mr.input(4);
    const Value d0 = mr.squaredDist(x, {10, 10, 10, 10});
    const Value d1 = mr.squaredDist(x, {-10, -10, -10, -10});
    const Value cluster = mr.argMin(mr.gatherScalars({d0, d1}));
    mr.output(cluster);
    const auto g = mr.build();

    EXPECT_EQ(dfg::evaluateSimple(g, {9, 9, 9, 9}).at(0), 0);
    EXPECT_EQ(dfg::evaluateSimple(g, {-9, -9, -9, -9}).at(0), 1);
}

TEST(MapReduceBuilder, LookupAndElementwise)
{
    std::vector<int8_t> lut(256);
    for (int i = 0; i < 256; ++i)
        lut[static_cast<size_t>(i)] =
            static_cast<int8_t>((i - 128) / 2);
    const auto rq = fixed::Requantizer::fromRealMultiplier(1.0 / 64.0);

    Builder mr("elt");
    const Value a = mr.input(8, "a");
    const Value b = mr.input(8, "b");
    const Value prod = mr.mul(a, b, rq);
    const Value summed = mr.add(prod, a);
    const Value looked = mr.lookup(summed, lut);
    mr.output(looked);
    const auto g = mr.build();

    const std::vector<int8_t> va(8, 64), vb(8, 64);
    const auto res = dfg::evaluate(g, {va, vb});
    // mul: 64*64/64 = 64; add: 64+64 = 127 (saturated); lut: ~ -1/2.
    EXPECT_EQ(res.at(0).lanes.at(0),
              lut[static_cast<size_t>(127 + 128)]);
}

TEST(MapReduceBuilder, ValidationAndErrors)
{
    Builder mr("bad");
    const Value x = mr.input(4);
    EXPECT_THROW(mr.mapReduce(x, {{1, 2, 3}}, {0},
                              fixed::Requantizer{}),
                 std::invalid_argument); // row width mismatch
    EXPECT_THROW(
        mr.mapChain(x, std::vector<MapFn>(dfg::kStages + 1,
                                          MapFn::Identity)),
        std::invalid_argument);

    // A program with no output fails at build().
    EXPECT_THROW(mr.build(), std::invalid_argument);
}

TEST(MapReduceBuilder, LoopMetadataFlowsThrough)
{
    Builder mr("looped");
    const Value x = mr.input(8);
    mr.output(mr.map(x, MapFn::Relu));
    mr.setLoop(4, 2);
    const auto g = mr.build();
    ASSERT_TRUE(g.loop.has_value());
    EXPECT_EQ(g.loop->iiMultiplier(), 2);
}
