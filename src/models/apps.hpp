/**
 * @file
 * The Table 1 application registry: in-network applications and the
 * reaction timescale each demands (per-packet, per-flowlet, per-flow,
 * per-microburst), plus the MAT-cost comparison data of Section 5.1.4.
 */

#pragma once

#include <string>
#include <vector>

namespace taurus::models {

/** Reaction granularity flags (Table 1 columns). */
struct ReactionTime
{
    bool per_packet = false;
    bool per_flowlet = false;
    bool per_flow = false;
    bool per_microburst = false;
};

/** One Table 1 row. */
struct AppInfo
{
    std::string name;
    std::string category; ///< "Security" or "Performance"
    ReactionTime reaction;
};

/** All Table 1 rows, in the paper's order. */
const std::vector<AppInfo> &table1Registry();

/** MAT-only ML implementation costs (Section 5.1.4). */
struct MatOnlyDesign
{
    std::string system;   ///< N2Net / IIsy
    std::string model;    ///< BNN / SVM / KMeans
    int mats_used = 0;    ///< MATs consumed on a PISA pipeline
    std::string taurus_model; ///< the comparable Taurus model
};

/** The published MAT-only data points used for the comparison table. */
const std::vector<MatOnlyDesign> &matOnlyDesigns();

} // namespace taurus::models
