#include "runtime/runtime.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>

namespace taurus::runtime {

OnlineRuntime::OnlineRuntime(
    core::SwitchFarm &farm,
    const std::vector<const core::AppArtifact *> &apps, RuntimeConfig cfg)
    : farm_(farm), cfg_(cfg)
{
    if (cfg_.batch_pkts == 0)
        cfg_.batch_pkts = 1;
    if (apps.empty())
        throw std::invalid_argument("OnlineRuntime: no applications");
    if (apps.size() != farm_.appCount())
        throw std::invalid_argument(
            "OnlineRuntime: " + std::to_string(apps.size()) +
            " artifacts for a farm with " +
            std::to_string(farm_.appCount()) + " installed apps");

    apps_.reserve(apps.size());
    for (const core::AppArtifact *app : apps) {
        if (!app)
            throw std::invalid_argument("OnlineRuntime: null artifact");
        auto ctl = std::make_unique<AppControl>();
        ctl->name = app->name;
        // Multi-class apps are scored per class: windowed F1 of a
        // binary flag is meaningless there, so drift tracks accuracy.
        DriftConfig dc = cfg_.drift;
        if (app->verdict.kind == core::VerdictKind::ArgmaxClass)
            dc.metric = DriftMetric::Accuracy;
        ctl->drift = DriftMonitor(dc);
        if (app->make_trainer)
            ctl->trainer = app->make_trainer(
                cfg_.train, cfg_.reservoir_cap, cfg_.calibration_cap);
        apps_.push_back(std::move(ctl));
    }

    util::Rng seeder(cfg_.train.seed);
    workers_.reserve(farm_.workers());
    for (size_t w = 0; w < farm_.workers(); ++w)
        workers_.push_back(std::make_unique<Worker>(
            cfg_.ring_capacity, seeder.split(), apps_.size()));
    parts_.resize(farm_.workers());
}

OnlineRuntime::OnlineRuntime(core::SwitchFarm &farm,
                             const core::AppArtifact &app,
                             RuntimeConfig cfg)
    : OnlineRuntime(
          farm, std::vector<const core::AppArtifact *>{&app}, cfg)
{
}

OnlineRuntime::OnlineRuntime(core::SwitchFarm &farm,
                             const models::AnomalyDnn &installed,
                             RuntimeConfig cfg)
    : OnlineRuntime(farm, core::makeAnomalyDnnApp(installed), cfg)
{
}

OnlineRuntime::~OnlineRuntime()
{
    stop();
}

OnlineRuntime::AppControl &
OnlineRuntime::appCtl(core::AppId id)
{
    if (id >= apps_.size())
        throw std::out_of_range(
            "OnlineRuntime: app id " + std::to_string(id) +
            " out of range (" + std::to_string(apps_.size()) +
            " managed)");
    return *apps_[id];
}

const OnlineRuntime::AppControl &
OnlineRuntime::appCtl(core::AppId id) const
{
    return const_cast<OnlineRuntime *>(this)->appCtl(id);
}

void
OnlineRuntime::start()
{
    if (running_)
        return;
    running_ = true;
    since_control_ = 0;
    if (cfg_.synchronous)
        return;
    trainer_stop_.store(false, std::memory_order_relaxed);
    for (auto &w : workers_)
        w->stop = false; // clear a previous stop() so restart works
    for (size_t w = 0; w < workers_.size(); ++w)
        workers_[w]->thread =
            std::thread([this, w]() { workerLoop(w); });
    trainer_thread_ = std::thread([this]() { trainerLoop(); });
}

void
OnlineRuntime::stop()
{
    if (!running_)
        return;
    if (!cfg_.synchronous) {
        for (auto &w : workers_) {
            {
                std::lock_guard<std::mutex> lk(w->m);
                w->stop = true;
            }
            w->cv.notify_all();
        }
        for (auto &w : workers_)
            if (w->thread.joinable())
                w->thread.join();
        trainer_stop_.store(true, std::memory_order_relaxed);
        if (trainer_thread_.joinable())
            trainer_thread_.join();
    }
    // Final drain so trailing samples are accounted (both modes), and
    // a farm-wide apply so a publish out of that drain — or one the
    // async workers had not yet picked up — is actually live in every
    // replica, keeping the stores and the farm in sync at shutdown.
    {
        std::lock_guard<std::mutex> lk(ctl_m_);
        controlStepLocked(/*drain_all_minibatches=*/true, nullptr);
        applyLatestToAllLocked();
    }
    running_ = false;
}

void
OnlineRuntime::processOne(size_t w, const net::TracePacket &pkt,
                          core::SwitchDecision &out)
{
    Worker &worker = *workers_[w];
    out = farm_.replica(w).process(pkt);
    if (cfg_.sampling_rate > 0.0 &&
        worker.rng.bernoulli(cfg_.sampling_rate))
        worker.ring.tryPush(makeSample(out, pkt.class_label));
}

void
OnlineRuntime::maybeApplyUpdate(Worker &worker, core::TaurusSwitch &sw)
{
    for (core::AppId id = 0; id < apps_.size(); ++id) {
        AppControl &ctl = *apps_[id];
        if (ctl.store.version() == worker.applied_version[id])
            continue;
        const auto snap = ctl.store.current();
        if (!snap || snap->version == worker.applied_version[id])
            continue;
        // Hot swap of exactly this tenant's program; the co-resident
        // tenants' weights are untouched.
        sw.updateWeights(id, snap->graph);
        worker.applied_version[id] = snap->version;
        ctl.updates_applied.fetch_add(1, std::memory_order_relaxed);
    }
}

void
OnlineRuntime::runAssignment(Worker &worker, core::TaurusSwitch &sw)
{
    for (size_t at = 0; at < worker.n; at += cfg_.batch_pkts) {
        // Hot swap happens here: between batches, against frozen
        // snapshots, on the worker's own replica. The per-packet loop
        // below never touches shared mutable state.
        maybeApplyUpdate(worker, sw);
        const size_t end = std::min(at + cfg_.batch_pkts, worker.n);
        for (size_t j = at; j < end; ++j) {
            const size_t i = worker.idx[j];
            core::SwitchDecision d = sw.process(worker.pkts[i]);
            if (cfg_.sampling_rate > 0.0 &&
                worker.rng.bernoulli(cfg_.sampling_rate))
                worker.ring.tryPush(
                    makeSample(d, worker.pkts[i].class_label));
            worker.out[i] = d;
        }
    }
}

void
OnlineRuntime::workerLoop(size_t w)
{
    Worker &worker = *workers_[w];
    core::TaurusSwitch &sw = farm_.replica(w);
    for (;;) {
        {
            std::unique_lock<std::mutex> lk(worker.m);
            worker.cv.wait(lk, [&]() {
                return worker.has_work || worker.stop;
            });
            if (worker.stop)
                return;
        }
        try {
            runAssignment(worker, sw);
        } catch (...) {
            worker.error = std::current_exception();
        }
        {
            std::lock_guard<std::mutex> lk(worker.m);
            worker.has_work = false;
        }
        {
            std::lock_guard<std::mutex> lk(done_m_);
            --outstanding_;
        }
        done_cv_.notify_all();
    }
}

void
OnlineRuntime::processTrace(util::Span<const net::TracePacket> packets,
                            util::Span<core::SwitchDecision> decisions)
{
    if (packets.size() != decisions.size())
        throw std::invalid_argument(
            "OnlineRuntime::processTrace: size mismatch");
    if (!running_)
        throw std::logic_error(
            "OnlineRuntime::processTrace: call start() first");

    if (cfg_.synchronous) {
        for (size_t i = 0; i < packets.size(); ++i) {
            const size_t w = farm_.workerFor(packets[i]);
            processOne(w, packets[i], decisions[i]);
            if (++since_control_ >= cfg_.batch_pkts) {
                since_control_ = 0;
                // Inline batch boundary: nothing is processing, so the
                // farm-wide update path is safe and immediate.
                std::lock_guard<std::mutex> lk(ctl_m_);
                controlStepLocked(/*drain_all_minibatches=*/true,
                                  nullptr);
                applyLatestToAllLocked();
            }
        }
        packets_.fetch_add(packets.size(), std::memory_order_relaxed);
        return;
    }

    // Asynchronous mode: partition by flow hash (identical ownership to
    // SwitchFarm::processTrace) and hand each worker its partition.
    for (auto &p : parts_) {
        p.clear();
        p.reserve(packets.size() / workers_.size() + 1);
    }
    for (size_t i = 0; i < packets.size(); ++i)
        parts_[farm_.workerFor(packets[i])].push_back(i);

    {
        std::lock_guard<std::mutex> lk(done_m_);
        outstanding_ = workers_.size();
    }
    for (size_t w = 0; w < workers_.size(); ++w) {
        Worker &worker = *workers_[w];
        {
            std::lock_guard<std::mutex> lk(worker.m);
            worker.pkts = packets.data();
            worker.idx = parts_[w].data();
            worker.n = parts_[w].size();
            worker.out = decisions.data();
            worker.error = nullptr;
            worker.has_work = true;
        }
        worker.cv.notify_all();
    }
    {
        std::unique_lock<std::mutex> lk(done_m_);
        done_cv_.wait(lk, [&]() { return outstanding_ == 0; });
    }
    for (auto &worker : workers_)
        if (worker->error)
            std::rethrow_exception(worker->error);
    packets_.fetch_add(packets.size(), std::memory_order_relaxed);
}

std::vector<core::SwitchDecision>
OnlineRuntime::processTrace(const std::vector<net::TracePacket> &packets)
{
    std::vector<core::SwitchDecision> decisions(packets.size());
    processTrace(util::Span<const net::TracePacket>(packets.data(),
                                                    packets.size()),
                 util::Span<core::SwitchDecision>(decisions.data(),
                                                  decisions.size()));
    return decisions;
}

size_t
OnlineRuntime::controlStepLocked(
    bool drain_all_minibatches,
    std::vector<std::pair<core::AppId, dfg::Graph>> *pending)
{
    size_t drained = 0;
    TelemetrySample s;
    for (auto &worker : workers_) {
        while (worker->ring.tryPop(s)) {
            ++drained;
            // Route the sample to the tenant that decided the packet.
            // A tenant installed on the farm after this runtime was
            // built has no control block here; drop its samples rather
            // than train another tenant's model on foreign features.
            if (s.app_id >= apps_.size())
                continue;
            AppControl &ctl = *apps_[s.app_id];
            ++ctl.consumed;
            ctl.drift.record(s.score, s.predicted, s.label);
            if (ctl.trainer)
                ctl.trainer->ingest(s);
        }
    }

    for (core::AppId id = 0; id < apps_.size(); ++id) {
        AppControl &ctl = *apps_[id];
        while (ctl.trainer && ctl.trainer->minibatchReady()) {
            if (cfg_.train_always || ctl.drift.drifted()) {
                ctl.trainer->step();
                if (drain_all_minibatches) {
                    publishLocked(id, ctl.trainer->snapshotGraph());
                } else {
                    // Async path: hand the lowered graph to the trainer
                    // thread, which sleeps the install delay and
                    // publishes without holding ctl_m_ (stats() must
                    // never stall on a publish burst). At most one
                    // pending publish per tenant per step.
                    pending->emplace_back(id,
                                          ctl.trainer->snapshotGraph());
                    break;
                }
            } else {
                ctl.trainer->absorb();
            }
        }
    }
    return drained;
}

void
OnlineRuntime::publishLocked(core::AppId id, dfg::Graph g)
{
    AppControl &ctl = *apps_[id];
    ctl.store.publish(std::move(g));
    ++ctl.updates_published;
}

void
OnlineRuntime::applyLatestToAllLocked()
{
    for (core::AppId id = 0; id < apps_.size(); ++id) {
        AppControl &ctl = *apps_[id];
        const auto snap = ctl.store.current();
        if (!snap)
            continue;
        size_t behind = 0;
        for (const auto &worker : workers_)
            behind += worker->applied_version[id] != snap->version;
        if (behind == 0)
            continue;
        farm_.updateWeights(id, snap->graph);
        for (auto &worker : workers_)
            worker->applied_version[id] = snap->version;
        ctl.updates_applied.fetch_add(behind,
                                      std::memory_order_relaxed);
    }
}

void
OnlineRuntime::trainerLoop()
{
    while (!trainer_stop_.load(std::memory_order_relaxed)) {
        size_t drained;
        std::vector<std::pair<core::AppId, dfg::Graph>> pending;
        {
            std::lock_guard<std::mutex> lk(ctl_m_);
            drained = controlStepLocked(/*drain_all_minibatches=*/false,
                                        &pending);
        }
        if (!pending.empty()) {
            // Model the rule-install latency between training and the
            // weights going live — off the lock, so only the publish
            // cadence is throttled, never the data path or stats().
            // One delay covers the batch: installs for distinct
            // tenants land together, like one control-plane push.
            if (cfg_.train.install_delay_ms > 0.0)
                std::this_thread::sleep_for(
                    std::chrono::duration<double, std::milli>(
                        cfg_.train.install_delay_ms));
            std::lock_guard<std::mutex> lk(ctl_m_);
            for (auto &[id, graph] : pending)
                publishLocked(id, std::move(graph));
        } else if (drained == 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
    }
}

RuntimeStats
OnlineRuntime::stats() const
{
    RuntimeStats st;
    st.packets = packets_.load(std::memory_order_relaxed);
    for (const auto &worker : workers_) {
        st.mirrored += worker->ring.pushed();
        st.ring_dropped += worker->ring.dropped();
    }
    for (const auto &ctl : apps_)
        st.updates_applied +=
            ctl->updates_applied.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(ctl_m_);
    for (const auto &ctl : apps_) {
        st.consumed += ctl->consumed;
        st.sgd_steps += ctl->trainer ? ctl->trainer->steps() : 0;
        st.updates_published += ctl->updates_published;
        st.drift_triggers += ctl->drift.triggers();
        st.drift_recoveries += ctl->drift.recoveries();
        st.windows_closed += ctl->drift.windowsClosed();
        st.drifted = st.drifted || ctl->drift.drifted();
    }
    // The quality gauges are the default tenant's view (the only
    // tenant in single-app deployments).
    const AppControl &first = *apps_.front();
    st.last_window_f1 = first.drift.lastWindowF1();
    st.smoothed_f1 = first.drift.smoothedF1();
    st.reference_f1 = first.drift.referenceF1();
    return st;
}

RuntimeStats
OnlineRuntime::appStats(core::AppId id) const
{
    const AppControl &ctl = appCtl(id);
    RuntimeStats st;
    st.updates_applied =
        ctl.updates_applied.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lk(ctl_m_);
    st.consumed = ctl.consumed;
    st.sgd_steps = ctl.trainer ? ctl.trainer->steps() : 0;
    st.updates_published = ctl.updates_published;
    st.drift_triggers = ctl.drift.triggers();
    st.drift_recoveries = ctl.drift.recoveries();
    st.windows_closed = ctl.drift.windowsClosed();
    st.last_window_f1 = ctl.drift.lastWindowF1();
    st.smoothed_f1 = ctl.drift.smoothedF1();
    st.reference_f1 = ctl.drift.referenceF1();
    st.drifted = ctl.drift.drifted();
    return st;
}

} // namespace taurus::runtime
