#include "pisa/registers.hpp"

#include <stdexcept>

namespace taurus::pisa {

int
RegisterFile::addArray(const std::string &name, size_t size)
{
    if (size == 0)
        throw std::invalid_argument("register array must be non-empty");
    arrays_.emplace_back(name, size);
    return static_cast<int>(arrays_.size()) - 1;
}

RegisterArray &
RegisterFile::array(int id)
{
    return arrays_.at(static_cast<size_t>(id));
}

const RegisterArray &
RegisterFile::array(int id) const
{
    return arrays_.at(static_cast<size_t>(id));
}

size_t
RegisterFile::totalBits() const
{
    size_t bits = 0;
    for (const auto &a : arrays_)
        bits += a.bits();
    return bits;
}

void
RegisterFile::clearAll()
{
    for (auto &a : arrays_)
        a.clear();
}

} // namespace taurus::pisa
