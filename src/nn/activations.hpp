/**
 * @file
 * Activation functions shared by the float trainer and the quantized
 * reference; the set mirrors the Taurus microbenchmarks (Table 6).
 */

#pragma once

#include <string>

#include "nn/matrix.hpp"

namespace taurus::nn {

/** Activation kinds supported by the data plane. */
enum class Activation
{
    None,      ///< identity (linear output layer)
    Relu,      ///< max(0, x)
    LeakyRelu, ///< x >= 0 ? x : x/8 (hardware-friendly alpha)
    Sigmoid,   ///< logistic
    Tanh,      ///< hyperbolic tangent
    Softmax,   ///< vector softmax (output layers only)
};

/** Human-readable name (for reports). */
std::string toString(Activation a);

/** Apply the activation elementwise (softmax normalizes the vector). */
Vector applyActivation(Activation a, const Vector &z);

/**
 * Derivative w.r.t. pre-activation, given both pre-activation z and
 * post-activation y (softmax is handled jointly with cross-entropy and
 * must not be differentiated through this helper).
 */
Vector activationGrad(Activation a, const Vector &z, const Vector &y);

/** Scalar versions used by LUT construction. */
double activationScalar(Activation a, double x);

} // namespace taurus::nn
