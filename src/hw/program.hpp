/**
 * @file
 * A placed-and-routed dataflow program for the MapReduce block.
 *
 * The compiler produces a GridProgram: every dfg node is assigned to a CU,
 * an MU (lookups), or the PHV interface (inputs/outputs); weight tensors
 * are assigned to weight-holding MUs near their readers. Multiple narrow
 * dot-product nodes may be packed onto one CU (sparse stage-3 reductions,
 * Figure 8); folded programs additionally time-multiplex units.
 */

#pragma once

#include <map>
#include <string>
#include <vector>

#include "dfg/graph.hpp"
#include "hw/grid.hpp"

namespace taurus::hw {

/** A compiled, placed program. */
class GridProgram
{
  public:
    dfg::Graph graph;
    GridSpec spec;
    TimingSpec timing;

    /** Placement per node id; Input/Output nodes sit at the PHV ports. */
    std::vector<Coord> place;

    /** Coordinates of MUs allocated to hold weights (not lookup nodes). */
    std::vector<Coord> weight_mus;

    /**
     * The column band this program is allowed to occupy. The default
     * region spans the whole grid (a private, single-tenant program);
     * a spatial multi-tenant placement (compiler::placeApps) assigns
     * each co-resident program a disjoint band of one shared grid, and
     * validate() enforces that every CU/MU sits inside it. Coordinates
     * stay global, so one CycleSim schedule per tenant prices the real
     * routes on the shared fabric.
     */
    Region region;

    /**
     * When true, nodes sharing a unit execute serially (folded / time
     * multiplexed); when false, sharing is lane-packing and concurrent.
     */
    bool serialize_sharing = false;

    /** Extra initiation-interval multiplier from loop metadata. */
    int ii_multiplier = 1;

    /** Distinct CUs used by compute nodes. */
    int cusUsed() const;
    /** Distinct MUs used (lookup nodes + weight MUs). */
    int musUsed() const;

    /**
     * Placement legality check: kinds match, coordinates in range, packed
     * CUs respect lane capacity, MUs respect table capacity. Returns an
     * error string or empty.
     */
    std::string validate() const;

    /**
     * Would updateWeights(fresh) be accepted? Returns an error string
     * (empty = compatible) without touching any weights. Facades that
     * must commit all-or-nothing across replicas (PipelineFarm's
     * end-of-burst maintenance) dry-run this on one replica before
     * publishing the update to the rest.
     */
    std::string checkWeightUpdate(const dfg::Graph &fresh) const;

    /**
     * Install new constants (weights/biases/requant/LUTs) from a graph
     * with identical structure — the data plane's weight-update path
     * (paper Figure 1: the control plane pushes weight updates without
     * touching placement). Throws std::invalid_argument on shape mismatch.
     */
    void updateWeights(const dfg::Graph &fresh);
};

} // namespace taurus::hw
