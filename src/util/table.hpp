/**
 * @file
 * Fixed-width text table printer used by the benchmark harnesses to emit
 * paper-style tables, plus a small CSV writer for figure series.
 */

#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace taurus::util {

/**
 * Accumulates rows of strings and prints them as an aligned text table.
 * Numeric cells are right-aligned; text cells left-aligned.
 */
class TablePrinter
{
  public:
    explicit TablePrinter(std::vector<std::string> headers);

    /** Append a row; missing cells are padded with "". */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 2);
    /** Convenience: format an integer. */
    static std::string num(int64_t v);

    /** Render the table to the stream. */
    void print(std::ostream &os) const;

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Writes rows of (label, values...) as CSV lines, for figure series. */
class CsvWriter
{
  public:
    explicit CsvWriter(std::ostream &os) : os_(os) {}

    void row(const std::vector<std::string> &cells);

  private:
    std::ostream &os_;
};

} // namespace taurus::util
