/**
 * @file
 * Log-bucketed latency histogram (HDR-style): a fixed array of
 * power-of-two octaves, each split into linear sub-buckets, so add()
 * is a handful of integer ops, memory is constant (no per-sample
 * storage), and the relative quantile error is bounded by the
 * sub-bucket width (1/16 per octave, <= 6.25%).
 *
 * Two flavors share one bucket layout:
 *
 *  - Histogram: plain value-semantic counters. Mergeable like
 *    util::RunningStat (exact, associative, commutative — the farm
 *    scrape folds per-replica shards into one distribution with zero
 *    loss), with percentile extraction (p50/p90/p99/p999) and exact
 *    min/max/sum/count side-channels.
 *
 *  - AtomicHistogram: the registry's per-worker shard cell. One writer
 *    thread calls add() (relaxed single-writer load+store — never a
 *    lock, never a locked RMW); any thread may snapshot() concurrently. Snapshots are
 *    per-bucket-atomic, not globally atomic: a scrape racing the
 *    writer may be off by the in-flight sample, which is the standard
 *    monitoring contract.
 *
 * Value mapping: buckets hold non-negative quantities (latencies in
 * ns, durations in ms, occupancies). Everything below 1.0 — zero,
 * negatives, NaN — saturates into bucket 0; everything at or above
 * 2^kOctaves saturates into the last bucket. Percentiles of an empty
 * histogram are 0.0 by contract.
 */

#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace taurus::obs {

/** Sub-bucket resolution: 2^kSubBits linear slices per octave. */
constexpr int kSubBits = 4;
/** Octaves covered: values in [1, 2^kOctaves); beyond saturates. */
constexpr int kOctaves = 64;
/** Total bucket count (1024 at 4 sub-bits). */
constexpr size_t kBucketCount = static_cast<size_t>(kOctaves)
                                << kSubBits;

/** Bucket index for a value (end buckets absorb under/overflow). */
size_t bucketOf(double v);

/** Inclusive lower edge of bucket `b` (0.0 for bucket 0). */
double bucketLowerEdge(size_t b);

/** Representative (midpoint) value reported for bucket `b`. */
double bucketMid(size_t b);

/** Plain, mergeable log-bucketed histogram. */
class Histogram
{
  public:
    /** Record one sample. */
    void add(double v) { add(v, 1); }

    /** Record `n` identical samples (bulk fill / shard merge). */
    void add(double v, uint64_t n);

    /** Fold another histogram in. Exact on the bucket counts, so
     *  merge is associative and commutative (the shard-merge and
     *  farm-scrape tests pin both). */
    void merge(const Histogram &o);

    void reset() { *this = Histogram{}; }

    uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }
    /** Exact extrema of the added samples (0.0 when empty). */
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Quantile estimate for p in [0, 100]: the representative value of
     * the bucket holding the ceil(p/100 * count)-th sample, clamped to
     * the exact [min, max] envelope so p=0 is min and p=100 is max.
     * 0.0 when empty (the empty-percentile contract).
     */
    double percentile(double p) const;

    double p50() const { return percentile(50.0); }
    double p90() const { return percentile(90.0); }
    double p99() const { return percentile(99.0); }
    double p999() const { return percentile(99.9); }

    /** Raw bucket counts (exporters render these directly). */
    const std::array<uint64_t, kBucketCount> &buckets() const
    {
        return buckets_;
    }

    bool operator==(const Histogram &o) const
    {
        return buckets_ == o.buckets_ && count_ == o.count_;
    }

    /** Replace the running sum with an exact externally-tracked one
     *  (AtomicHistogram::snapshot replays buckets at their mids, then
     *  restores the writer's exact sum through this). */
    void overrideSum(double s) { sum_ = s; }

  private:
    std::array<uint64_t, kBucketCount> buckets_{};
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Per-worker shard cell: single writer, lock-free, concurrently
 * snapshottable. The writer's add() is three relaxed atomic updates on
 * cache lines only this shard touches; there is no sum/min/max
 * side-channel beyond the running sum (a snapshot derives extrema from
 * the occupied bucket edges instead — exact atomically-maintained
 * extrema would cost a CAS loop on the fast path).
 */
class AtomicHistogram
{
  public:
    /** Writer side: record one sample (relaxed; wait-free). All three
     *  updates are plain load+store pairs, not locked RMWs: the shard
     *  contract guarantees exactly one writer per cell, and a relaxed
     *  mov pair costs ~1 cycle where a lock xadd costs ~20 — the
     *  difference is the whole observability overhead budget at 8
     *  cells per packet (the 0.97-ratio bench pins it). */
    void add(double v)
    {
        auto &b = buckets_[bucketOf(v)];
        b.store(b.load(std::memory_order_relaxed) + 1,
                std::memory_order_relaxed);
        sum_.store(sum_.load(std::memory_order_relaxed) + v,
                   std::memory_order_relaxed);
        count_.store(count_.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    }

    /** Any-thread read: materialize a plain mergeable Histogram. The
     *  min/max of the snapshot are the occupied bucket edges (bounded
     *  by the bucket resolution), not the exact sample extrema. */
    Histogram snapshot() const;

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** Writer-side (or quiescent) reset; not safe against a
     *  concurrent add(). */
    void reset();

  private:
    std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
    std::atomic<double> sum_{0.0};
    std::atomic<uint64_t> count_{0};
};

} // namespace taurus::obs
