#include "dataplane/pipeline.hpp"

#include <algorithm>
#include <chrono>
#include <stdexcept>
#include <string>

#include "taurus/app.hpp"
#include "util/threading.hpp"

namespace taurus::dataplane {

namespace {

/**
 * Which dispatcher owns a packet when the RX stage is itself sharded.
 * A *different* splitmix64 stream than core::flowOwner's (distinct
 * increment constant): with the same hash, dispatchers == workers
 * would degenerate to dispatcher d feeding only worker d.
 */
uint64_t
dispatchMix(uint64_t x)
{
    x += 0x632be59bd9b4e019ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

size_t
dispatcherOwner(const net::TracePacket &tp, size_t dispatchers)
{
    return static_cast<size_t>(dispatchMix(tp.flow.src_ip)) % dispatchers;
}

/**
 * Graduated idle/contention backoff: spin (cheap, keeps the cache
 * warm), then yield, then sleep — idle pipeline threads cost
 * microseconds of wakeup latency, not a core.
 */
struct Backoff
{
    unsigned spins = 0;

    void
    pause()
    {
        ++spins;
        if (spins < 64) {
#if defined(__x86_64__) || defined(__i386__)
            __builtin_ia32_pause();
#else
            std::this_thread::yield();
#endif
        } else if (spins < 256) {
            std::this_thread::yield();
        } else {
            std::this_thread::sleep_for(std::chrono::microseconds(50));
        }
    }

    void
    reset()
    {
        spins = 0;
    }
};

std::string
workerLabel(size_t w)
{
    return "worker=\"" + std::to_string(w) + "\"";
}

} // namespace

PipelineFarm::PipelineFarm(core::SwitchConfig cfg, PipelineConfig pipeline)
    : switch_cfg_(std::move(cfg)), cfg_(pipeline)
{
    // The one shared fallback: 0 means hardware concurrency, exactly
    // like SwitchFarm(cfg, 0) — both call util::resolveWorkerCount.
    cfg_.workers = util::resolveWorkerCount(cfg_.workers);
    cfg_.dispatchers = std::max<size_t>(1, cfg_.dispatchers);
    cfg_.ring_capacity = std::max<size_t>(2, cfg_.ring_capacity);
    cfg_.rx_burst = std::max<size_t>(1, cfg_.rx_burst);
    cfg_.drain_burst = std::max<size_t>(1, cfg_.drain_burst);
    cfg_.feed_capacity = std::max<size_t>(2, cfg_.feed_capacity);

    const size_t W = cfg_.workers;
    const size_t D = cfg_.dispatchers;

    replicas_.reserve(W);
    for (size_t w = 0; w < W; ++w)
        replicas_.push_back(
            std::make_unique<core::TaurusSwitch>(switch_cfg_));

    // One registry, one shard per fast-path writer: replica w writes
    // shard w (its switch metrics), dispatcher d writes shard W + d
    // (the RX-stage metrics) — no two threads share a slot cache line.
    if (switch_cfg_.obs.metrics) {
        registry_ = std::make_shared<obs::MetricsRegistry>(W + D);
        for (size_t w = 0; w < W; ++w)
            replicas_[w]->bindObservability(registry_, w);
    }

    workers_.reserve(W);
    for (size_t w = 0; w < W; ++w) {
        auto ws = std::make_unique<WorkerState>();
        if (registry_)
            ws->burst_cell = registry_->histogram(
                "taurus_pipeline_worker_burst_pkts", "", w);
        workers_.push_back(std::move(ws));
    }

    dispatchers_.reserve(D);
    rings_.resize(D);
    feeds_.reserve(D);
    for (size_t d = 0; d < D; ++d) {
        auto ds = std::make_unique<DispatcherState>();
        ds->drop_cells.resize(W);
        ds->occ_cells.resize(W);
        if (registry_) {
            const size_t shard = W + d;
            ds->dispatched_cell = registry_->counter(
                "taurus_pipeline_dispatched_total", "", shard);
            ds->rx_burst_cell = registry_->histogram(
                "taurus_pipeline_rx_burst_pkts", "", shard);
            for (size_t w = 0; w < W; ++w) {
                ds->drop_cells[w] = registry_->counter(
                    "taurus_pipeline_dispatch_drops_total",
                    workerLabel(w), shard);
                ds->occ_cells[w] = registry_->gauge(
                    "taurus_pipeline_ring_occupancy", workerLabel(w),
                    shard);
            }
        }
        dispatchers_.push_back(std::move(ds));
        rings_[d].reserve(W);
        for (size_t w = 0; w < W; ++w)
            rings_[d].push_back(
                std::make_unique<PacketRing>(cfg_.ring_capacity));
        feeds_.push_back(std::make_unique<FeedRing>(cfg_.feed_capacity));
    }

    // Pipeline-level totals ride the same facade-adoption path as
    // SwitchStats: a collector contributes the authoritative atomics at
    // scrape time, so pipelineStats() and the exporter cannot diverge.
    if (registry_)
        collector_token_ = registry_->addCollector(
            [this](obs::Snapshot &snap) {
                const PipelineStats s = pipelineStats();
                snap.addNum("taurus_pipeline_fed_total", "",
                            obs::MetricKind::Counter,
                            static_cast<double>(s.fed));
                snap.addNum("taurus_pipeline_completed_total", "",
                            obs::MetricKind::Counter,
                            static_cast<double>(s.completed));
                snap.addNum("taurus_pipeline_maintenance_ops_total", "",
                            obs::MetricKind::Counter,
                            static_cast<double>(s.maintenance_ops));
            });

    for (size_t w = 0; w < W; ++w) {
        workers_[w]->thread = std::thread([this, w] { workerLoop(w); });
        if (cfg_.pin_threads)
            util::pinThreadToCpu(workers_[w]->thread, w);
    }
    for (size_t d = 0; d < D; ++d) {
        dispatchers_[d]->thread =
            std::thread([this, d] { dispatcherLoop(d); });
        if (cfg_.pin_threads)
            util::pinThreadToCpu(dispatchers_[d]->thread, W + d);
    }
}

PipelineFarm::~PipelineFarm()
{
    // Let in-flight traffic finish so no thread is parked on a ring
    // mid-segment; swallow worker errors the caller never drained.
    try {
        drain();
    } catch (...) {
    }
    stop_.store(true, std::memory_order_release);
    for (auto &ds : dispatchers_)
        if (ds->thread.joinable())
            ds->thread.join();
    for (auto &ws : workers_)
        if (ws->thread.joinable())
            ws->thread.join();
    if (registry_ && collector_token_ != 0)
        registry_->removeCollector(collector_token_);
}

// ---------------------------------------------------------------------
// RX/dispatch stage
// ---------------------------------------------------------------------

void
PipelineFarm::dispatcherLoop(size_t d)
{
    const size_t W = workers_.size();
    const size_t D = dispatchers_.size();

    // Per-worker accumulation buffers: hash each packet once, push into
    // rings a burst at a time (one cursor update per burst, not per
    // packet — the same reason NIC drivers receive in bursts).
    std::vector<std::vector<Item>> burst(W);
    for (auto &b : burst)
        b.reserve(cfg_.rx_burst);

    Backoff backoff;
    Segment seg;
    for (;;) {
        if (!feeds_[d]->tryPop(seg)) {
            if (stop_.load(std::memory_order_acquire))
                return;
            backoff.pause();
            continue;
        }
        backoff.reset();
        for (size_t i = 0; i < seg.n; ++i) {
            const net::TracePacket &pkt = seg.pkts[i];
            if (D > 1 && dispatcherOwner(pkt, D) != d)
                continue; // another dispatcher's flow shard
            const size_t w = core::flowOwner(pkt, W);
            auto &b = burst[w];
            b.push_back(Item{&pkt, &seg.out[i]});
            if (b.size() >= cfg_.rx_burst)
                flushBurst(d, w, b);
        }
        // Segment boundary: flush every partial burst so a small feed
        // never waits on later traffic to reach its workers.
        for (size_t w = 0; w < W; ++w)
            if (!burst[w].empty())
                flushBurst(d, w, burst[w]);
    }
}

void
PipelineFarm::flushBurst(size_t d, size_t w, std::vector<Item> &burst)
{
    DispatcherState &ds = *dispatchers_[d];
    PacketRing &ring = *rings_[d][w];
    const size_t total = burst.size();

    size_t accepted = 0;
    Backoff backoff;
    for (;;) {
        accepted += ring.pushBurst(burst.data() + accepted,
                                   total - accepted);
        if (accepted == total)
            break;
        if (cfg_.overflow != OverflowPolicy::Backpressure)
            break; // DropNewest: whatever did not fit is dropped
        backoff.pause();
    }

    const size_t dropped = total - accepted;
    if (dropped > 0) {
        // Drop-and-count, never block: the dispatcher itself writes the
        // dropped decisions (marker: default decision + dropped flag),
        // so drain() still sees every fed packet accounted for and the
        // caller can tell exactly which packets saturation cost.
        for (size_t i = accepted; i < total; ++i) {
            core::SwitchDecision dec{};
            dec.dropped = true;
            *burst[i].out = dec;
        }
        ds.drop_cells[w].inc(dropped);
        workers_[w]->drops.fetch_add(dropped, std::memory_order_release);
    }

    // Single-writer counters: plain load/store, no RMW on the hot path.
    ds.dispatched.store(ds.dispatched.load(std::memory_order_relaxed) +
                            accepted,
                        std::memory_order_relaxed);
    ds.bursts.store(ds.bursts.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
    ds.dispatched_cell.inc(accepted);
    ds.rx_burst_cell.observe(static_cast<double>(total));
    ds.occ_cells[w].set(static_cast<double>(ring.size()));
    burst.clear();
}

// ---------------------------------------------------------------------
// Worker stage
// ---------------------------------------------------------------------

void
PipelineFarm::workerLoop(size_t w)
{
    WorkerState &ws = *workers_[w];
    core::TaurusSwitch &sw = *replicas_[w];
    std::vector<Item> buf(cfg_.drain_burst);
    std::vector<const net::TracePacket *> pkt_ptrs(cfg_.drain_burst);
    std::vector<core::SwitchDecision *> out_ptrs(cfg_.drain_burst);
    uint64_t maint_seen = 0;
    Backoff backoff;

    for (;;) {
        size_t got = 0;
        for (size_t d = 0; d < rings_.size(); ++d) {
            const size_t n = rings_[d][w]->popBurst(buf.data(),
                                                    buf.size());
            if (n == 0)
                continue;
            got += n;
            // Drain the whole burst through the batched entry point so
            // same-tenant runs share one packet-major MapReduce pass.
            for (size_t i = 0; i < n; ++i) {
                pkt_ptrs[i] = buf[i].pkt;
                out_ptrs[i] = buf[i].out;
            }
            try {
                sw.processBatch(pkt_ptrs.data(), out_ptrs.data(), n);
            } catch (...) {
                // Batch failed somewhere inside the window: replay the
                // burst packet by packet so every packet gets the
                // single-packet error handling (a decision is written
                // for each, failures are noted individually).
                for (size_t i = 0; i < n; ++i) {
                    try {
                        *buf[i].out = sw.process(*buf[i].pkt);
                    } catch (...) {
                        *buf[i].out = core::SwitchDecision{};
                        noteError(std::current_exception());
                    }
                }
            }
            ws.bursts.store(ws.bursts.load(std::memory_order_relaxed) +
                                1,
                            std::memory_order_relaxed);
            ws.burst_cell.observe(static_cast<double>(n));
            // Release: a drain() that observes this count also observes
            // every decision written above.
            ws.done.store(ws.done.load(std::memory_order_relaxed) + n,
                          std::memory_order_release);
            // End-of-burst maintenance hook: lifecycle ops, weight
            // updates, and stat snapshots land here — between bursts,
            // never inside one. One relaxed load when nothing pends.
            runMaintenance(w, maint_seen);
        }
        if (got > 0) {
            backoff.reset();
            continue;
        }
        runMaintenance(w, maint_seen); // idle workers still converge
        if (stop_.load(std::memory_order_acquire))
            return;
        backoff.pause();
    }
}

void
PipelineFarm::noteError(std::exception_ptr e)
{
    std::lock_guard<std::mutex> lk(error_m_);
    if (!first_error_)
        first_error_ = e;
}

// ---------------------------------------------------------------------
// Traffic surface
// ---------------------------------------------------------------------

void
PipelineFarm::feed(util::Span<const net::TracePacket> packets,
                   util::Span<core::SwitchDecision> decisions)
{
    if (packets.size() != decisions.size())
        throw std::invalid_argument(
            "PipelineFarm::feed: packets/decisions size mismatch");
    if (packets.empty())
        return;

    Segment seg{packets.data(), decisions.data(), packets.size()};
    for (size_t d = 0; d < feeds_.size(); ++d) {
        // pushBurst, not tryPush: a full feed queue is backpressure on
        // the caller, not a drop (and must not pollute drop counters).
        Backoff backoff;
        while (feeds_[d]->pushBurst(&seg, 1) == 0)
            backoff.pause();
    }
    fed_.fetch_add(packets.size(), std::memory_order_relaxed);
}

void
PipelineFarm::drain()
{
    const uint64_t target = fed_.load(std::memory_order_relaxed);
    Backoff backoff;
    for (;;) {
        uint64_t settled = 0;
        for (const auto &ws : workers_)
            settled += ws->done.load(std::memory_order_acquire) +
                       ws->drops.load(std::memory_order_acquire);
        if (settled >= target)
            break;
        backoff.pause();
    }
    std::exception_ptr err;
    {
        std::lock_guard<std::mutex> lk(error_m_);
        err = first_error_;
        first_error_ = nullptr;
    }
    if (err)
        std::rethrow_exception(err);
}

void
PipelineFarm::processTrace(util::Span<const net::TracePacket> packets,
                           util::Span<core::SwitchDecision> decisions)
{
    feed(packets, decisions);
    drain();
}

std::vector<core::SwitchDecision>
PipelineFarm::processTrace(const std::vector<net::TracePacket> &packets)
{
    std::vector<core::SwitchDecision> decisions(packets.size());
    processTrace(util::Span<const net::TracePacket>(packets.data(),
                                                    packets.size()),
                 util::Span<core::SwitchDecision>(decisions.data(),
                                                  decisions.size()));
    return decisions;
}

size_t
PipelineFarm::workerFor(const net::TracePacket &tp) const
{
    return core::flowOwner(tp, replicas_.size());
}

// ---------------------------------------------------------------------
// End-of-burst maintenance
// ---------------------------------------------------------------------

std::shared_ptr<PipelineFarm::MaintOp>
PipelineFarm::makeOp(MaintOp::Kind kind) const
{
    auto op = std::make_shared<MaintOp>();
    op->kind = kind;
    const size_t W = replicas_.size();
    op->retired.resize(W);
    op->stats.resize(W);
    op->result_id.assign(W, 0);
    op->error.resize(W);
    return op;
}

void
PipelineFarm::driveOpLocked(const std::shared_ptr<MaintOp> &op)
{
    {
        std::lock_guard<std::mutex> lk(maint_m_);
        op->seq = ++next_seq_;
        // Prune ops every worker has already applied; the log stays
        // O(in-flight), not O(lifetime).
        uint64_t min_applied = UINT64_MAX;
        for (const auto &ws : workers_)
            min_applied = std::min(
                min_applied,
                ws->maint_applied.load(std::memory_order_acquire));
        ops_.erase(std::remove_if(ops_.begin(), ops_.end(),
                                  [&](const std::shared_ptr<MaintOp> &o) {
                                      return o->seq <= min_applied;
                                  }),
                   ops_.end());
        ops_.push_back(op);
    }
    maint_seq_.store(op->seq, std::memory_order_release);

    {
        std::unique_lock<std::mutex> lk(maint_m_);
        maint_cv_.wait(lk, [&] {
            return op->applied.load(std::memory_order_acquire) ==
                   workers_.size();
        });
    }
    maint_ops_.fetch_add(1, std::memory_order_relaxed);
    for (const auto &e : op->error)
        if (e)
            std::rethrow_exception(e);
}

void
PipelineFarm::runMaintenance(size_t w, uint64_t &seen)
{
    if (maint_seq_.load(std::memory_order_acquire) == seen)
        return;
    std::vector<std::shared_ptr<MaintOp>> todo;
    {
        std::lock_guard<std::mutex> lk(maint_m_);
        for (const auto &op : ops_)
            if (op->seq > seen)
                todo.push_back(op);
    }
    for (const auto &op : todo) {
        applyOp(w, *op);
        seen = op->seq;
        workers_[w]->maint_applied.store(seen,
                                         std::memory_order_release);
        if (op->applied.fetch_add(1, std::memory_order_acq_rel) + 1 ==
            workers_.size()) {
            // Lock-then-notify so the driver can't miss the wakeup
            // between its predicate check and its wait.
            std::lock_guard<std::mutex> lk(maint_m_);
            maint_cv_.notify_all();
        }
    }
}

void
PipelineFarm::applyOp(size_t w, MaintOp &op)
{
    core::TaurusSwitch &sw = *replicas_[w];
    try {
        switch (op.kind) {
        case MaintOp::Kind::Install:
            op.result_id[w] = sw.installApp(*op.artifact);
            break;
        case MaintOp::Kind::Remove:
            op.retired[w] = sw.removeApp(op.id);
            break;
        case MaintOp::Kind::Replace:
            op.retired[w] = sw.replaceApp(op.id, *op.artifact);
            break;
        case MaintOp::Kind::SetDefault:
            sw.setDefaultApp(op.id);
            break;
        case MaintOp::Kind::UpdateWeights:
            sw.updateWeights(op.id, *op.weights);
            break;
        case MaintOp::Kind::Snapshot:
            op.stats[w] = op.per_app ? sw.stats(op.id) : sw.stats();
            break;
        case MaintOp::Kind::Reset:
            sw.reset();
            break;
        }
    } catch (...) {
        // Prechecks make this unreachable on lifecycle ops; kept so a
        // precheck bug surfaces as the driver's rethrow, not a hang.
        op.error[w] = std::current_exception();
    }
}

// ---------------------------------------------------------------------
// Control plane
// ---------------------------------------------------------------------

void
PipelineFarm::requireLive(core::AppId id) const
{
    const core::TaurusSwitch &r0 = *replicas_.front();
    if (id >= r0.slotCount())
        throw std::out_of_range("PipelineFarm: unknown app id " +
                                std::to_string(id) + " (" +
                                std::to_string(r0.slotCount()) +
                                " slots)");
    if (!r0.installed(id))
        throw core::LifecycleError("PipelineFarm: app id " +
                                   std::to_string(id) +
                                   " has been removed");
}

std::vector<const dfg::Graph *>
PipelineFarm::liveGraphs() const
{
    std::vector<const dfg::Graph *> graphs;
    for (size_t s = 0; s < shadow_.size(); ++s)
        if (shadow_[s])
            graphs.push_back(shadow_[s].get());
    return graphs;
}

core::AppId
PipelineFarm::installApp(const core::AppArtifact &app)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    core::TaurusSwitch &probe = *replicas_.front();
    // Dry-run against immutable config + structural shadows: a rejected
    // install throws here, before anything on any replica changes.
    probe.validateArtifact(app);
    auto graphs = liveGraphs();
    graphs.push_back(&app.graph);
    probe.checkAdmission(graphs, app.name);

    auto op = makeOp(MaintOp::Kind::Install);
    op->artifact = std::make_shared<core::AppArtifact>(app);
    driveOpLocked(op);
    shadow_.push_back(std::make_shared<const dfg::Graph>(app.graph));
    return op->result_id.front();
}

core::AppId
PipelineFarm::installAnomalyModel(const models::AnomalyDnn &model)
{
    return installApp(core::makeAnomalyDnnApp(model));
}

std::vector<core::RetiredTenant>
PipelineFarm::removeApp(core::AppId id)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    core::TaurusSwitch &r0 = *replicas_.front();
    requireLive(id);
    if (r0.appCount() > 1 && id == r0.defaultApp())
        throw core::LifecycleError(
            "PipelineFarm: app id " + std::to_string(id) +
            " is the dispatch default; setDefaultApp first");
    if (r0.appCount() > 1) {
        // Survivor re-placement dry-run (deterministic, structure-only:
        // what replica 0 admits, every replica admits).
        std::vector<const dfg::Graph *> graphs;
        for (size_t s = 0; s < shadow_.size(); ++s)
            if (shadow_[s] && s != id)
                graphs.push_back(shadow_[s].get());
        r0.checkAdmission(graphs, r0.appName(id));
    }

    auto op = makeOp(MaintOp::Kind::Remove);
    op->id = id;
    driveOpLocked(op);
    shadow_[id] = nullptr;
    return std::move(op->retired);
}

std::vector<core::RetiredTenant>
PipelineFarm::replaceApp(core::AppId id, const core::AppArtifact &app)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    core::TaurusSwitch &r0 = *replicas_.front();
    requireLive(id);
    r0.validateArtifact(app);
    std::vector<const dfg::Graph *> graphs;
    for (size_t s = 0; s < shadow_.size(); ++s)
        if (shadow_[s])
            graphs.push_back(s == id ? &app.graph : shadow_[s].get());
    r0.checkAdmission(graphs, app.name);

    auto op = makeOp(MaintOp::Kind::Replace);
    op->id = id;
    op->artifact = std::make_shared<core::AppArtifact>(app);
    driveOpLocked(op);
    shadow_[id] = std::make_shared<const dfg::Graph>(app.graph);
    return std::move(op->retired);
}

void
PipelineFarm::setDefaultApp(core::AppId id)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    requireLive(id);
    auto op = makeOp(MaintOp::Kind::SetDefault);
    op->id = id;
    driveOpLocked(op);
}

void
PipelineFarm::updateWeightsLocked(core::AppId id,
                                  const dfg::Graph &fresh)
{
    requireLive(id);
    const std::string err =
        replicas_.front()->program(id).checkWeightUpdate(fresh);
    if (!err.empty())
        throw std::invalid_argument(err);
    auto op = makeOp(MaintOp::Kind::UpdateWeights);
    op->id = id;
    op->weights = std::make_shared<const dfg::Graph>(fresh);
    driveOpLocked(op);
}

void
PipelineFarm::updateWeights(core::AppId id, const dfg::Graph &fresh)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    if (id >= replicas_.front()->slotCount())
        throw std::out_of_range("PipelineFarm: unknown app id " +
                                std::to_string(id));
    updateWeightsLocked(id, fresh);
}

void
PipelineFarm::updateWeights(const dfg::Graph &fresh)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    const core::TaurusSwitch &r0 = *replicas_.front();
    if (r0.appCount() == 0)
        throw std::logic_error(
            "PipelineFarm::updateWeights: no application installed");
    if (r0.appCount() > 1)
        throw std::invalid_argument(
            "PipelineFarm::updateWeights: multiple tenants resident; "
            "name the target with the AppId overload");
    updateWeightsLocked(r0.appIds().front(), fresh);
}

void
PipelineFarm::reset()
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    driveOpLocked(makeOp(MaintOp::Kind::Reset));
}

bool
PipelineFarm::installed(core::AppId id) const
{
    return replicas_.front()->installed(id);
}

std::vector<core::AppId>
PipelineFarm::appIds() const
{
    return replicas_.front()->appIds();
}

size_t
PipelineFarm::appCount() const
{
    return replicas_.front()->appCount();
}

core::AppId
PipelineFarm::defaultApp() const
{
    return replicas_.front()->defaultApp();
}

core::PlacementMode
PipelineFarm::placementMode() const
{
    return replicas_.front()->placementMode();
}

const compiler::PlacementReport &
PipelineFarm::placementReport() const
{
    return replicas_.front()->placementReport();
}

// ---------------------------------------------------------------------
// Statistics
// ---------------------------------------------------------------------

PipelineStats
PipelineFarm::pipelineStats() const
{
    PipelineStats s;
    s.fed = fed_.load(std::memory_order_relaxed);
    s.maintenance_ops = maint_ops_.load(std::memory_order_relaxed);
    for (const auto &ds : dispatchers_) {
        s.dispatched += ds->dispatched.load(std::memory_order_relaxed);
        s.rx_bursts += ds->bursts.load(std::memory_order_relaxed);
    }
    s.drops_per_worker.reserve(workers_.size());
    for (const auto &ws : workers_) {
        const uint64_t drops = ws->drops.load(std::memory_order_acquire);
        s.dispatch_drops += drops;
        s.drops_per_worker.push_back(drops);
        s.completed += ws->done.load(std::memory_order_acquire);
        s.worker_bursts += ws->bursts.load(std::memory_order_relaxed);
    }
    return s;
}

core::SwitchStats
PipelineFarm::snapshotStats(bool per_app, core::AppId id)
{
    std::lock_guard<std::mutex> lc(maint_caller_m_);
    if (per_app)
        requireLive(id);
    auto op = makeOp(MaintOp::Kind::Snapshot);
    op->per_app = per_app;
    op->id = id;
    driveOpLocked(op);
    core::SwitchStats total;
    for (const auto &st : op->stats)
        total.merge(st);
    return total;
}

core::SwitchStats
PipelineFarm::mergedStats() const
{
    // Logically const (observes, mutates nothing a caller can see);
    // physically it drives a Snapshot maintenance op through the
    // workers so each replica is read by its own thread at a burst
    // boundary — which is what makes this safe under live traffic.
    return const_cast<PipelineFarm *>(this)->snapshotStats(false, 0);
}

core::SwitchStats
PipelineFarm::mergedStats(core::AppId id) const
{
    return const_cast<PipelineFarm *>(this)->snapshotStats(true, id);
}

obs::Snapshot
PipelineFarm::scrape() const
{
    return registry_ ? registry_->scrape() : obs::Snapshot{};
}

} // namespace taurus::dataplane
