#include "taurus/app.hpp"

// The artifact factories wire each app's online trainer; the generic
// MLP streaming-SGD implementation lives in the runtime layer. This is
// a deliberate upward include within the single taurus_core library:
// the *interface* (AppTrainer) stays in core, only the factories here
// reach for the concrete trainer.
#include "runtime/trainer.hpp"

namespace taurus::core {

AppArtifact
makeAnomalyDnnApp(const models::AnomalyDnn &model,
                  std::vector<net::TracePacket> eval_trace)
{
    AppArtifact app;
    app.name = "anomaly_dnn";

    const nn::Standardizer std_fit = model.standardizer;
    const fixed::QuantParams qp = model.quantized.inputParams();
    app.build_features = [std_fit, qp](const FeatureProgramConfig &cfg) {
        return buildDnnFeatureProgram(std_fit, qp, cfg);
    };
    app.feature_count = net::kDnnFeatureCount;

    app.graph = model.graph;
    app.input_qp = qp;

    const double out_scale = model.quantized.layers().back().out_scale;
    app.verdict.kind = VerdictKind::BinaryThreshold;
    app.verdict.flag_code = [out_scale](int8_t code) {
        return static_cast<double>(code) * out_scale >= 0.5;
    };
    app.num_classes = 2;
    app.eval_trace = std::move(eval_trace);

    const nn::Mlp warm = model.model;
    app.make_trainer = [warm, qp, out_scale](
                           const cp::OnlineTrainConfig &cfg,
                           size_t reservoir_cap, size_t calibration_cap)
        -> std::unique_ptr<AppTrainer> {
        return std::make_unique<runtime::StreamingTrainer>(
            warm, qp, /*classifier_head=*/false, out_scale,
            "anomaly_dnn_online", cfg, reservoir_cap, calibration_cap);
    };
    return app;
}

AppArtifact
makeIotFlowApp(const models::IotFlowMlp &model)
{
    AppArtifact app;
    app.name = "iot_flow_mlp";

    const nn::Standardizer std_fit = model.standardizer;
    const fixed::QuantParams qp = model.quantized.inputParams();
    app.build_features = [std_fit, qp](const FeatureProgramConfig &cfg) {
        return buildIotFeatureProgram(std_fit, qp, cfg);
    };
    app.feature_count = net::kIotFlowFeatureCount;

    app.graph = model.graph;
    app.input_qp = qp;

    app.verdict.kind = VerdictKind::ArgmaxClass;
    app.verdict.num_classes = model.num_classes;
    app.num_classes = model.num_classes;
    app.eval_trace = model.eval_trace;

    // Multi-tenant dispatch: the IoT device fleet lives in the
    // 192.168.0.0/16 management subnet (net::iotDeviceTrace), so the
    // artifact claims that source prefix. Co-resident with the anomaly
    // detector (the usual default app), every device packet routes
    // here and everything else stays on the detector.
    DispatchRule iot_subnet;
    iot_subnet.src_ip = 0xC0A80000u;
    iot_subnet.src_ip_mask = 0xFFFF0000u;
    iot_subnet.priority = 1;
    app.dispatch = {iot_subnet};

    const nn::Mlp warm = model.model;
    app.make_trainer = [warm, qp](const cp::OnlineTrainConfig &cfg,
                                  size_t reservoir_cap,
                                  size_t calibration_cap)
        -> std::unique_ptr<AppTrainer> {
        return std::make_unique<runtime::StreamingTrainer>(
            warm, qp, /*classifier_head=*/true, /*out_scale=*/0.0,
            "iot_flow_mlp_online", cfg, reservoir_cap, calibration_cap);
    };
    return app;
}

} // namespace taurus::core
