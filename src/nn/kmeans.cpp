#include "nn/kmeans.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <map>

namespace taurus::nn {

namespace {

double
sqDist(const Vector &a, const Vector &b)
{
    double acc = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
        const double d = a[i] - b[i];
        acc += d * d;
    }
    return acc;
}

} // namespace

KMeans
KMeans::fit(const std::vector<Vector> &points, int k, int iters,
            util::Rng &rng)
{
    assert(!points.empty() && k >= 1);
    KMeans model;

    // kmeans++ seeding.
    model.centers_.push_back(
        points[static_cast<size_t>(rng.uniformInt(0, points.size() - 1))]);
    while (static_cast<int>(model.centers_.size()) < k) {
        std::vector<double> d2(points.size());
        for (size_t i = 0; i < points.size(); ++i) {
            double best = std::numeric_limits<double>::infinity();
            for (const auto &c : model.centers_)
                best = std::min(best, sqDist(points[i], c));
            d2[i] = best;
        }
        model.centers_.push_back(points[rng.categorical(d2)]);
    }

    const size_t dim = points[0].size();
    std::vector<int> assign(points.size(), 0);
    for (int iter = 0; iter < iters; ++iter) {
        bool changed = false;
        for (size_t i = 0; i < points.size(); ++i) {
            const int c = model.predict(points[i]);
            if (c != assign[i]) {
                assign[i] = c;
                changed = true;
            }
        }
        std::vector<Vector> sums(model.centers_.size(), Vector(dim, 0.0f));
        std::vector<int> counts(model.centers_.size(), 0);
        for (size_t i = 0; i < points.size(); ++i) {
            axpy(sums[assign[i]], points[i], 1.0f);
            ++counts[assign[i]];
        }
        for (size_t c = 0; c < model.centers_.size(); ++c)
            if (counts[c] > 0) {
                for (size_t j = 0; j < dim; ++j)
                    sums[c][j] /= static_cast<float>(counts[c]);
                model.centers_[c] = sums[c];
            }
        if (!changed && iter > 0)
            break;
    }
    return model;
}

int
KMeans::predict(const Vector &x) const
{
    int best = 0;
    double best_d = std::numeric_limits<double>::infinity();
    for (size_t c = 0; c < centers_.size(); ++c) {
        const double d = sqDist(x, centers_[c]);
        if (d < best_d) {
            best_d = d;
            best = static_cast<int>(c);
        }
    }
    return best;
}

Vector
KMeans::distances(const Vector &x) const
{
    Vector d(centers_.size());
    for (size_t c = 0; c < centers_.size(); ++c)
        d[c] = static_cast<float>(sqDist(x, centers_[c]));
    return d;
}

double
KMeans::inertia(const std::vector<Vector> &points) const
{
    double acc = 0.0;
    for (const auto &p : points)
        acc += sqDist(p, centers_[static_cast<size_t>(predict(p))]);
    return acc;
}

double
KMeans::labelAccuracy(const Dataset &train, const Dataset &test)
{
    // Majority label per cluster from the training set.
    std::vector<std::map<int, int>> votes(centers_.size());
    for (size_t i = 0; i < train.size(); ++i)
        ++votes[static_cast<size_t>(predict(train.x[i]))][train.y[i]];
    cluster_label_.assign(centers_.size(), 0);
    for (size_t c = 0; c < centers_.size(); ++c) {
        int best_label = 0, best_count = -1;
        for (const auto &[label, count] : votes[c])
            if (count > best_count) {
                best_count = count;
                best_label = label;
            }
        cluster_label_[c] = best_label;
    }
    if (test.size() == 0)
        return 0.0;
    size_t correct = 0;
    for (size_t i = 0; i < test.size(); ++i)
        if (cluster_label_[static_cast<size_t>(predict(test.x[i]))] ==
            test.y[i])
            ++correct;
    return static_cast<double>(correct) / static_cast<double>(test.size());
}

} // namespace taurus::nn
