/**
 * @file
 * Table 7: throughput and area scaling of the Conv1D microbenchmark
 * with unrolling factors 1..8 (target-independent optimization: unroll
 * trades area for line rate).
 */

#include "harness.hpp"

#include "compiler/compile.hpp"
#include "compiler/report.hpp"
#include "models/microbench.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

TAURUS_BENCH(table7_unrolling, "Table 7",
             "Conv1D throughput/area scaling with unrolling")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Table 7: throughput and area scaling with unrolling\n"
          "Paper: Conv1D 1/8 0.19 | 1/4 0.44 | 1/2 0.93 | 1 1.57 "
          "(line rate, mm^2); InnerProduct 1, 0.04\n\n";

    util::Rng rng(3);
    TablePrinter t({"ubmark", "Unroll", "Line Rate", "Area (mm^2)"});
    for (int unroll : {1, 2, 4, 8}) {
        const auto g = models::buildConv1d(unroll, rng);
        const auto rep = compiler::analyze(compiler::compile(g));
        const std::string rate =
            unroll == 8 ? "1" : "1/" + std::to_string(8 / unroll);
        ctx.metric("conv1d_unroll" + std::to_string(unroll) +
                       "_area_mm2",
                   rep.area_mm2);
        t.addRow({"Conv1D", std::to_string(unroll), rate,
                  TablePrinter::num(rep.area_mm2, 2)});
    }
    {
        const auto g = models::buildInnerProduct(rng);
        const auto rep = compiler::analyze(compiler::compile(g));
        ctx.metric("inner_product_area_mm2", rep.area_mm2);
        t.addRow({"InnerProduct", "-", "1",
                  TablePrinter::num(rep.area_mm2, 2)});
    }
    t.print(os);

    os << "\nUnrolling the outer loop in space buys back line rate at "
          "~linear area cost; the inner product\nhas no outer loop to "
          "unroll.\n";
}
