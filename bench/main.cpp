/**
 * @file
 * `taurus_bench` — single driver for every registered paper bench.
 *
 *     taurus_bench                      # run everything, full sizes
 *     taurus_bench --smoke table8_end_to_end
 *     taurus_bench --json BENCH_results.json --smoke
 *     taurus_bench --list
 *
 * Exit status: 0 all selected benches passed; 1 at least one threw;
 * 2 bad usage.
 */

#include <algorithm>
#include <exception>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "harness.hpp"
#include "kernels/kernels.hpp"
#include "obs/histogram.hpp"
#include "util/stats.hpp"

namespace {

using namespace taurus;
using bench::Bench;
using bench::Context;
using bench::Registry;

/** Discards table output under --quiet. */
class NullBuf : public std::streambuf
{
  protected:
    int overflow(int c) override { return traits_type::not_eof(c); }
};

void
usage(std::ostream &os)
{
    os << "usage: taurus_bench [options] [bench ...]\n"
          "\n"
          "options:\n"
          "  --list         list registered benches and exit\n"
          "  --smoke        tiny problem sizes (CI-friendly)\n"
          "  --scale X      multiply full problem sizes by X in "
          "[0.001, 100]\n"
          "  --repeats N    run each bench N times in [1, 100]; JSON\n"
          "                 metrics report the median across repeats\n"
          "                 plus <key>_min/_p50/_p99, and\n"
          "                 wall_ms_min/_p50/_p99/median\n"
          "  --json FILE    write machine-readable results to FILE\n"
          "  --quiet        suppress per-bench table output\n"
          "  --help         this message\n"
          "\n"
          "With no bench names, every registered bench runs. A name\n"
          "selects every bench it is a substring of (so `table` runs\n"
          "all tables); a name matching nothing is an error. See\n"
          "--list for the registered names.\n";
}

void
list(std::ostream &os)
{
    for (const auto &b : Registry::instance().sorted())
        os << b.name << "\t[" << b.figure << "] " << b.summary << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    bool quiet = false;
    double scale = 1.0;
    int repeats = 1;
    std::string json_path;
    std::vector<std::string> names;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string err;
        if (arg == "--help" || arg == "-h") {
            usage(std::cout);
            return 0;
        } else if (arg == "--list") {
            list(std::cout);
            return 0;
        } else if (arg == "--smoke") {
            smoke = true;
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (arg == "--scale") {
            if (++i >= argc) {
                std::cerr << "taurus_bench: --scale needs a value\n";
                return 2;
            }
            if (!bench::parseDouble(argv[i], 1e-3, 100.0, &scale, &err)) {
                std::cerr << "taurus_bench: --scale " << err << "\n";
                return 2;
            }
        } else if (arg == "--repeats") {
            if (++i >= argc) {
                std::cerr << "taurus_bench: --repeats needs a value\n";
                return 2;
            }
            double r = 1.0;
            if (!bench::parseDouble(argv[i], 1.0, 100.0, &r, &err)) {
                std::cerr << "taurus_bench: --repeats " << err << "\n";
                return 2;
            }
            if (r != static_cast<double>(static_cast<int>(r))) {
                std::cerr << "taurus_bench: --repeats '" << argv[i]
                          << "' must be an integer\n";
                return 2;
            }
            repeats = static_cast<int>(r);
        } else if (arg == "--json") {
            if (++i >= argc) {
                std::cerr << "taurus_bench: --json needs a path\n";
                return 2;
            }
            json_path = argv[i];
        } else if (!arg.empty() && arg[0] == '-') {
            std::cerr << "taurus_bench: unknown option " << arg << "\n";
            usage(std::cerr);
            return 2;
        } else {
            names.push_back(arg);
        }
    }

    // Resolve the selection up front so a typo fails before any run:
    // each name selects every registered bench it is a substring of
    // (exact names keep working — a string is its own substring), and a
    // filter that matches nothing is a hard error so a misspelled CI
    // job fails loudly instead of silently running zero benches.
    // `all` must outlive `selected`, which points into it.
    const auto all = Registry::instance().sorted();
    std::vector<const Bench *> selected;
    if (names.empty()) {
        for (const auto &b : all)
            selected.push_back(&b);
    } else {
        for (const auto &n : names) {
            bool matched = false;
            for (const auto &b : all) {
                if (b.name.find(n) == std::string::npos)
                    continue;
                matched = true;
                if (std::find(selected.begin(), selected.end(), &b) ==
                    selected.end())
                    selected.push_back(&b);
            }
            if (!matched) {
                std::cerr << "taurus_bench: no bench matches '" << n
                          << "' (see --list)\n";
                return 2;
            }
        }
    }

    NullBuf null_buf;
    std::ostream null_os(&null_buf);
    std::ostream &table_os = quiet ? null_os : std::cout;

    auto report = util::json::Value::object();
    report.set("schema", "taurus-bench-v1");
    report.set("smoke", smoke);
    report.set("scale", scale);
    report.set("repeats", repeats);
    // Kernel provenance: which SIMD tier produced these numbers (and
    // what the host would have supported), so stored BENCH_*.json files
    // are comparable across machines and TAURUS_FORCE_KERNEL runs.
    report.set("cpu_features", taurus::kernels::cpuFeatures());
    report.set("kernel_level",
               taurus::kernels::levelName(taurus::kernels::activeLevel()));
    auto benches = util::json::Value::array();

    int failures = 0;
    for (const Bench *b : selected) {
        if (!quiet)
            std::cout << "==== " << b->name << " [" << b->figure
                      << "] ====\n";
        auto entry = util::json::Value::object();
        entry.set("name", b->name);
        entry.set("figure", b->figure);
        entry.set("summary", b->summary);

        // Run the bench `repeats` times; only completed repeats feed
        // the min/median aggregation below (an aborted run's partial
        // wall time and metrics would skew the numbers).
        std::vector<double> walls;
        std::vector<util::json::Value> runs;
        bool failed = false;
        double failed_wall_ms = 0.0;
        for (int r = 0; r < repeats && !failed; ++r) {
            Context ctx(smoke, scale, r == 0 ? table_os : null_os);
            const bench::Timer timer;
            try {
                b->fn(ctx);
                walls.push_back(timer.elapsedSec() * 1e3);
                runs.push_back(ctx.metrics());
            } catch (const std::exception &e) {
                ++failures;
                failed = true;
                failed_wall_ms = timer.elapsedSec() * 1e3;
                entry.set("status", "error");
                entry.set("error", std::string(e.what()));
                std::cerr << "taurus_bench: " << b->name << " failed: "
                          << e.what() << "\n";
            }
        }
        if (!failed)
            entry.set("status", "ok");

        entry.set("repeats", static_cast<int64_t>(runs.size()));
        if (runs.empty()) {
            // Failed on the first repeat: no completed run to report.
            entry.set("wall_ms", failed_wall_ms);
            entry.set("metrics", util::json::Value::object());
        } else if (runs.size() == 1) {
            // A single completed run passes its metrics through
            // untouched.
            entry.set("wall_ms", walls.front());
            entry.set("wall_ms_min", walls.front());
            entry.set("metrics", std::move(runs.front()));
        } else {
            // Per-metric aggregation: the median across repeats under
            // the original key, the minimum under <key>_min, and the
            // obs::Histogram-backed tails under <key>_p50/_p99 (at a
            // handful of repeats p99 is effectively the max — the key
            // exists so dashboards keep one schema as N grows).
            obs::Histogram wall_hist;
            for (const double w : walls)
                wall_hist.add(w);
            entry.set("wall_ms", util::percentile(walls, 50.0));
            entry.set("wall_ms_min",
                      *std::min_element(walls.begin(), walls.end()));
            entry.set("wall_ms_p50", wall_hist.p50());
            entry.set("wall_ms_p99", wall_hist.p99());
            auto metrics = util::json::Value::object();
            for (const auto &[key, first_val] : runs.front().entries()) {
                if (!first_val.isNumber()) {
                    metrics.set(key, first_val);
                    continue;
                }
                obs::Histogram hist;
                std::vector<double> samples;
                for (const auto &run : runs)
                    if (const auto *v = run.find(key);
                        v && v->isNumber()) {
                        samples.push_back(v->asDouble());
                        hist.add(v->asDouble());
                    }
                metrics.set(key, util::percentile(samples, 50.0));
                metrics.set(key + "_min",
                            *std::min_element(samples.begin(),
                                              samples.end()));
                metrics.set(key + "_p50", hist.p50());
                metrics.set(key + "_p99", hist.p99());
            }
            entry.set("metrics", std::move(metrics));
        }
        benches.push(std::move(entry));
        if (!quiet)
            std::cout << "\n";
    }
    report.set("benches", std::move(benches));

    if (!json_path.empty()) {
        std::ofstream f(json_path);
        if (!f) {
            std::cerr << "taurus_bench: cannot write " << json_path
                      << "\n";
            return 2;
        }
        f << report.dump(2) << "\n";
        f.close();
        if (!f) {
            std::cerr << "taurus_bench: failed writing " << json_path
                      << "\n";
            return 2;
        }
        if (!quiet)
            std::cout << "wrote " << json_path << " ("
                      << report.find("benches")->size() << " benches)\n";
    }

    return failures ? 1 : 0;
}
