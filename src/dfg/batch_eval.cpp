#include "dfg/batch_eval.hpp"

#include <cassert>
#include <stdexcept>

#include "fixed/saturate.hpp"
#include "kernels/kernels.hpp"

namespace taurus::dfg {

namespace {

using fixed::saturate;

/** Narrow-flag transfer of one map function (see BatchVec::narrow). */
bool
mapFnNarrow(MapFn fn, bool in_narrow, int32_t imm)
{
    switch (fn) {
      case MapFn::Identity:
      case MapFn::Relu:
      case MapFn::LeakyRelu:
      case MapFn::Abs: // non-negative lanes pass through unclamped
        return in_narrow;
      case MapFn::Square:
      case MapFn::Neg:
      case MapFn::AddConst:
      case MapFn::MulConst:
        return true; // clamp8 / requant output is always int8
      case MapFn::MinConst:
        return in_narrow && imm >= -128;
      case MapFn::MaxConst:
        return in_narrow && imm <= 127;
    }
    return false;
}

} // namespace

void
BatchEvalScratch::bind(const Graph &g)
{
    const std::string err = g.validate();
    if (!err.empty())
        throw std::invalid_argument("invalid graph: " + err);
    graph_ = &g;
    topo_ = g.topoOrder();
    out_ids_ = g.outputIds();
    n_inputs_ = 0;
    for (const Node &n : g.nodes())
        if (n.kind == NodeKind::Input)
            ++n_inputs_;
    values_.resize(g.nodes().size());
    outputs_.resize(out_ids_.size());
}

std::vector<BatchVec> &
evaluateBatchInto(const Graph &g, const int8_t *const *inputs, size_t bw,
                  BatchEvalScratch &scratch)
{
    if (scratch.graph_ != &g ||
        scratch.values_.size() != g.nodes().size())
        scratch.bind(g);
    if (bw == 0)
        throw std::invalid_argument("batch width must be >= 1");

    const kernels::Ops &ops = kernels::active();
    std::vector<BatchVec> &values = scratch.values_;
    size_t next_input = 0;

    for (int id : scratch.topo_) {
        const Node &n = g.node(id);
        BatchVec &out = values[static_cast<size_t>(id)];
        out.type = Graph::outputType(n);

        auto in = [&](size_t i) -> const BatchVec & {
            return values[static_cast<size_t>(n.inputs[i])];
        };
        auto setWidth = [&](size_t w) {
            out.width = w;
            out.lanes.resize(w * bw);
        };

        switch (n.kind) {
          case NodeKind::Input: {
            const size_t w = static_cast<size_t>(n.width);
            setWidth(w);
            const int8_t *const *pkts = inputs + next_input * bw;
            ++next_input;
            // Transpose the per-packet feature vectors into SoA.
            for (size_t c = 0; c < bw; ++c) {
                const int8_t *src = pkts[c];
                for (size_t i = 0; i < w; ++i)
                    out.lanes[i * bw + c] = src[i];
            }
            out.narrow = true;
            break;
          }
          case NodeKind::DotRow: {
            setWidth(1);
            ops.dot_row_batch(n.weights.data(), n.weights.size(),
                              n.bias, n.requant, /*requant=*/true,
                              in(0).narrow, in(0).lanes.data(),
                              out.lanes.data(), bw);
            out.narrow = true;
            break;
          }
          case NodeKind::PartialDot: {
            setWidth(1);
            ops.dot_row_batch(n.weights.data(), n.weights.size(),
                              /*bias=*/0, n.requant, /*requant=*/false,
                              in(0).narrow, in(0).lanes.data(),
                              out.lanes.data(), bw);
            out.narrow = false;
            break;
          }
          case NodeKind::CombineAdd: {
            setWidth(1);
            for (size_t c = 0; c < bw; ++c) {
                int64_t acc = n.bias;
                for (size_t i = 0; i < n.inputs.size(); ++i) {
                    assert(in(i).width == 1);
                    acc += in(i).lanes[c];
                }
                out.lanes[c] =
                    n.requant.apply(saturate<int32_t>(acc));
            }
            out.narrow = true;
            break;
          }
          case NodeKind::MapChain: {
            const BatchVec &x = in(0);
            setWidth(x.width);
            out.lanes.assign(x.lanes.begin(), x.lanes.end());
            bool narrow = x.narrow;
            for (size_t s = 0; s < n.fns.size(); ++s) {
                const int32_t imm =
                    s < n.imms.size() ? n.imms[s] : 0;
                applyMapFnLanes(ops, n.fns[s], out.lanes.data(),
                                out.lanes.size(), imm, n.requant);
                narrow = mapFnNarrow(n.fns[s], narrow, imm);
            }
            out.narrow = narrow;
            break;
          }
          case NodeKind::EltwiseMul: {
            const BatchVec &a = in(0);
            const BatchVec &b = in(1);
            assert(a.lanes.size() == b.lanes.size());
            setWidth(a.width);
            ops.mul_requant(a.lanes.data(), b.lanes.data(),
                            out.lanes.data(), a.lanes.size(),
                            n.requant);
            out.narrow = true;
            break;
          }
          case NodeKind::EltwiseAdd: {
            const BatchVec &a = in(0);
            const BatchVec &b = in(1);
            assert(a.lanes.size() == b.lanes.size());
            setWidth(a.width);
            ops.add_clamp8(a.lanes.data(), b.lanes.data(),
                           out.lanes.data(), a.lanes.size());
            out.narrow = true;
            break;
          }
          case NodeKind::SquaredDist: {
            setWidth(1);
            ops.sqdist_batch(n.weights.data(), n.weights.size(),
                             n.requant, n.requantized(), in(0).narrow,
                             in(0).lanes.data(), out.lanes.data(), bw);
            out.narrow = n.requantized();
            break;
          }
          case NodeKind::ArgMin: {
            const BatchVec &x = in(0);
            setWidth(1);
            ops.argmin_batch(x.lanes.data(), x.width,
                             out.lanes.data(), bw);
            out.narrow = x.width <= 128; // max index fits int8
            break;
          }
          case NodeKind::Lookup: {
            const BatchVec &x = in(0);
            setWidth(x.width);
            for (size_t i = 0; i < x.lanes.size(); ++i) {
                const int32_t idx = saturate<int8_t>(x.lanes[i]) + 128;
                out.lanes[i] = n.lut[static_cast<size_t>(idx)];
            }
            out.narrow = true;
            break;
          }
          case NodeKind::Concat: {
            size_t total = 0;
            for (size_t i = 0; i < n.inputs.size(); ++i)
                total += in(i).width;
            setWidth(total);
            // SoA rows are lane-major, so concatenating lanes is just
            // appending whole blocks.
            size_t off = 0;
            bool narrow = true;
            for (size_t i = 0; i < n.inputs.size(); ++i) {
                const BatchVec &src = in(i);
                std::copy(src.lanes.begin(), src.lanes.end(),
                          out.lanes.begin() +
                              static_cast<ptrdiff_t>(off));
                off += src.lanes.size();
                narrow = narrow && src.narrow;
            }
            out.narrow = narrow;
            break;
          }
          case NodeKind::Output: {
            const BatchVec &src = in(0);
            setWidth(src.width);
            out.lanes.assign(src.lanes.begin(), src.lanes.end());
            out.type = src.type;
            out.narrow = src.narrow;
            break;
          }
        }

        if (n.kind != NodeKind::Output &&
            out.width != static_cast<size_t>(n.width))
            throw std::logic_error("node " + std::to_string(n.id) +
                                   " produced wrong width");
    }

    if (next_input != scratch.n_inputs_)
        throw std::logic_error("batch eval input count mismatch");

    size_t oi = 0;
    for (int id : scratch.out_ids_) {
        const BatchVec &src = values[static_cast<size_t>(id)];
        BatchVec &dst = scratch.outputs_[oi++];
        dst.lanes.assign(src.lanes.begin(), src.lanes.end());
        dst.width = src.width;
        dst.type = src.type;
        dst.narrow = src.narrow;
    }
    return scratch.outputs_;
}

} // namespace taurus::dfg
