#include "obs/registry.hpp"

#include <cstring>
#include <stdexcept>

namespace taurus::obs {

namespace {

/** Gauges store doubles in the uint64 slot via bit_cast (C++17:
 *  memcpy, which compilers lower to a plain register move). */
uint64_t
packDouble(double d)
{
    uint64_t u = 0;
    std::memcpy(&u, &d, sizeof(u));
    return u;
}

double
unpackDouble(uint64_t u)
{
    double d = 0.0;
    std::memcpy(&d, &u, sizeof(d));
    return d;
}

} // namespace

void
Gauge::set(double v)
{
    if (v_)
        v_->store(packDouble(v), std::memory_order_relaxed);
}

double
Gauge::value() const
{
    return v_ ? unpackDouble(v_->load(std::memory_order_relaxed)) : 0.0;
}

const Snapshot::Num *
Snapshot::find(const std::string &name, const std::string &labels) const
{
    for (const Num &n : nums)
        if (n.name == name && n.labels == labels)
            return &n;
    return nullptr;
}

const Snapshot::Hist *
Snapshot::findHist(const std::string &name,
                   const std::string &labels) const
{
    for (const Hist &h : hists)
        if (h.name == name && h.labels == labels)
            return &h;
    return nullptr;
}

double
Snapshot::value(const std::string &name, const std::string &labels) const
{
    const Num *n = find(name, labels);
    return n ? n->value : 0.0;
}

void
Snapshot::addNum(const std::string &name, const std::string &labels,
                 MetricKind kind, double value)
{
    for (Num &n : nums) {
        if (n.name == name && n.labels == labels) {
            n.value += value; // replicas' series aggregate exactly
            return;
        }
    }
    nums.push_back({name, labels, kind, value});
}

void
Snapshot::addHist(const std::string &name, const std::string &labels,
                  const Histogram &h)
{
    for (Hist &existing : hists) {
        if (existing.name == name && existing.labels == labels) {
            existing.hist.merge(h);
            return;
        }
    }
    hists.push_back({name, labels, h});
}

MetricsRegistry::MetricsRegistry(size_t shards)
    : shards_(shards ? shards : 1)
{
}

MetricsRegistry::Family &
MetricsRegistry::family(const std::string &name,
                        const std::string &labels, MetricKind kind,
                        size_t shard)
{
    if (shard >= shards_)
        throw std::invalid_argument(
            "MetricsRegistry: shard " + std::to_string(shard) +
            " out of range (" + std::to_string(shards_) + " shards)");
    std::lock_guard<std::mutex> lk(m_);
    for (auto &f : families_) {
        if (f->name == name && f->labels == labels) {
            if (f->kind != kind)
                throw std::invalid_argument(
                    "MetricsRegistry: metric '" + name +
                    "' re-registered with a different kind");
            return *f;
        }
    }
    auto f = std::make_unique<Family>();
    f->name = name;
    f->labels = labels;
    f->kind = kind;
    if (kind == MetricKind::Histogram)
        f->cells = std::make_unique<AtomicHistogram[]>(shards_);
    else
        f->slots = std::make_unique<PaddedSlot[]>(shards_);
    families_.push_back(std::move(f));
    return *families_.back();
}

Counter
MetricsRegistry::counter(const std::string &name,
                         const std::string &labels, size_t shard)
{
    return Counter(
        &family(name, labels, MetricKind::Counter, shard).slots[shard].v);
}

Gauge
MetricsRegistry::gauge(const std::string &name, const std::string &labels,
                       size_t shard)
{
    return Gauge(
        &family(name, labels, MetricKind::Gauge, shard).slots[shard].v);
}

HistogramCell
MetricsRegistry::histogram(const std::string &name,
                           const std::string &labels, size_t shard)
{
    return HistogramCell(
        &family(name, labels, MetricKind::Histogram, shard).cells[shard]);
}

uint64_t
MetricsRegistry::addCollector(Collector fn)
{
    std::lock_guard<std::mutex> lk(m_);
    const uint64_t token = next_collector_++;
    collectors_.emplace_back(token, std::move(fn));
    return token;
}

void
MetricsRegistry::removeCollector(uint64_t token)
{
    std::lock_guard<std::mutex> lk(m_);
    for (auto it = collectors_.begin(); it != collectors_.end(); ++it) {
        if (it->first == token) {
            collectors_.erase(it);
            return;
        }
    }
}

Snapshot
MetricsRegistry::scrape(bool run_collectors) const
{
    Snapshot snap;
    std::lock_guard<std::mutex> lk(m_);
    for (const auto &f : families_) {
        if (f->kind == MetricKind::Histogram) {
            Histogram merged;
            for (size_t s = 0; s < shards_; ++s)
                merged.merge(f->cells[s].snapshot());
            snap.addHist(f->name, f->labels, merged);
            continue;
        }
        double total = 0.0;
        for (size_t s = 0; s < shards_; ++s) {
            const uint64_t raw =
                f->slots[s].v.load(std::memory_order_relaxed);
            total += f->kind == MetricKind::Gauge
                         ? unpackDouble(raw)
                         : static_cast<double>(raw);
        }
        snap.addNum(f->name, f->labels, f->kind, total);
    }
    if (run_collectors)
        for (const auto &[token, fn] : collectors_)
            fn(snap);
    return snap;
}

} // namespace taurus::obs
