/**
 * @file
 * Microbenchmarks of the simulator itself: packets/s through the cycle
 * simulator and the full TaurusSwitch pipeline. These measure the
 * *reproduction's* speed (how fast we can simulate), not the modeled
 * hardware (which is fixed at 1 GPkt/s by construction).
 *
 * The loops cover the whole fast-path ladder:
 *   cycle_sim_inference   allocation-free runInto (cached schedule +
 *                         scratch-buffer evaluation)
 *   cycle_sim_run_legacy  the allocating run() entry point, for
 *                         comparison against the fast path
 *   switch_process        one packet at a time through Figure 6
 *   switch_process_batch  the processBatch entry point
 *   switch_farm           SwitchFarm: N switch replicas, flow-hash
 *                         partitioned, one worker thread each
 *
 * Each loop is wall-clock timed by the harness Timer; the switch loop
 * additionally reports modeled per-packet latency percentiles.
 */

#include "harness.hpp"

#include <thread>

#include "compiler/compile.hpp"
#include "hw/cycle_sim.hpp"
#include "models/zoo.hpp"
#include "net/kdd.hpp"
#include "taurus/farm.hpp"
#include "taurus/switch.hpp"
#include "util/table.hpp"

TAURUS_BENCH(throughput_bench, "Simulator throughput",
             "packets/s through the cycle sim and the full switch")
{
    using namespace taurus;
    using util::TablePrinter;
    auto &os = ctx.out();

    os << "Simulator throughput (wall-clock, this host)\n\n";

    const auto dnn = models::trainAnomalyDnn(1, ctx.size(2000, 600));
    net::KddConfig cfg;
    cfg.connections = ctx.size(4000, 500);
    net::KddGenerator gen(cfg, 9);
    const auto trace = gen.expandToPackets(gen.sampleConnections());

    TablePrinter t({"Loop", "Iterations", "Wall ms", "Items/s"});
    auto report = [&](const std::string &name, size_t iters,
                      double sec) {
        ctx.throughput(name, static_cast<double>(iters), sec);
        t.addRow({name, std::to_string(iters),
                  TablePrinter::num(sec * 1e3, 1),
                  TablePrinter::num(double(iters) / sec, 0)});
    };

    // 1. Cycle-accurate DNN inference on the MapReduce grid: the
    //    allocation-free path (compiled schedule + scratch buffers).
    {
        const auto prog = compiler::compile(dnn.graph);
        hw::CycleSim sim(prog);
        // The input buffer persists across packets: no per-iteration
        // vector-of-vectors temporary, so the loop times the simulator
        // rather than allocator churn.
        std::vector<std::vector<int8_t>> inputs(
            1, std::vector<int8_t>(6, 42));
        dfg::EvalScratch scratch;
        hw::SimResult res;
        sim.runInto(inputs, scratch, res); // warm the buffers
        const size_t iters = ctx.size(200000, 100);
        const bench::Timer timer;
        uint64_t sink = 0;
        for (size_t i = 0; i < iters; ++i) {
            sim.runInto(inputs, scratch, res);
            sink += res.outputs.size();
        }
        report("cycle_sim_inference", iters, timer.elapsedSec());
        ctx.metric("cycle_sim_outputs_seen", sink);

        // The legacy allocating entry point, for before/after context.
        const size_t legacy_iters = ctx.size(20000, 100);
        const bench::Timer legacy_timer;
        for (size_t i = 0; i < legacy_iters; ++i)
            sink += sim.run(inputs).outputs.size();
        report("cycle_sim_run_legacy", legacy_iters,
               legacy_timer.elapsedSec());
    }

    // 2. The full Figure-6 pipeline: parse -> MATs -> grid -> PIFO,
    //    one packet at a time.
    {
        core::TaurusSwitch sw;
        sw.installAnomalyModel(dnn);
        const size_t iters = ctx.size(100000, 1000);
        std::vector<double> modeled_ns;
        modeled_ns.reserve(iters);
        const bench::Timer timer;
        for (size_t i = 0; i < iters; ++i) {
            const auto d = sw.process(trace[i % trace.size()]);
            modeled_ns.push_back(d.latency_ns);
        }
        report("switch_process", iters, timer.elapsedSec());
        ctx.latency("switch_modeled_latency", std::move(modeled_ns));

        // Per-stage modeled latency from the switch's own registry:
        // the histograms the pipeline filled while the loop ran.
        const obs::Snapshot snap = sw.scrape();
        for (const auto &h : snap.hists) {
            if (h.name != "taurus_switch_stage_latency_ns")
                continue;
            // labels look like stage="parser": report the bare name.
            const size_t a = h.labels.find('"');
            const size_t b = h.labels.rfind('"');
            const std::string stage =
                a != std::string::npos && b > a
                    ? h.labels.substr(a + 1, b - a - 1)
                    : h.labels;
            ctx.histogram("switch_stage_" + stage, h.hist);
        }
    }

    // 3. The batched entry point over the same pipeline.
    {
        core::TaurusSwitch sw;
        sw.installAnomalyModel(dnn);
        std::vector<core::SwitchDecision> decisions(trace.size());
        const size_t target = ctx.size(100000, 1000);
        size_t done = 0;
        const bench::Timer timer;
        while (done < target) {
            const size_t n = std::min(trace.size(), target - done);
            sw.processBatch(
                util::Span<const net::TracePacket>(trace.data(), n),
                util::Span<core::SwitchDecision>(decisions.data(), n));
            done += n;
        }
        report("switch_process_batch", done, timer.elapsedSec());
    }

    // 4. The sharded farm: N replicas, flow-hash partitioned traffic.
    {
        const unsigned hc = std::thread::hardware_concurrency();
        const size_t workers =
            std::max<size_t>(1, std::min<size_t>(hc ? hc : 1, 8));
        core::SwitchFarm farm({}, workers);
        farm.installAnomalyModel(dnn);
        std::vector<core::SwitchDecision> decisions(trace.size());
        const size_t target = ctx.size(400000, 1000);
        size_t done = 0;
        const bench::Timer timer;
        while (done < target) {
            const size_t n = std::min(trace.size(), target - done);
            farm.processTrace(
                util::Span<const net::TracePacket>(trace.data(), n),
                util::Span<core::SwitchDecision>(decisions.data(), n));
            done += n;
        }
        report("switch_farm", done, timer.elapsedSec());
        ctx.metric("switch_farm_workers", workers);
        ctx.metric("switch_farm_packets",
                   farm.mergedStats().packets);

        // The farm scrape folds every replica's shard exactly; the
        // merged end-to-end latency distribution comes out for free.
        const obs::Snapshot snap = farm.scrape();
        if (const auto *ml =
                snap.findHist("taurus_switch_latency_ns", "path=\"ml\""))
            ctx.histogram("switch_farm_ml_latency", ml->hist);
        if (const auto *by = snap.findHist("taurus_switch_latency_ns",
                                           "path=\"bypass\""))
            ctx.histogram("switch_farm_bypass_latency", by->hist);
    }

    // 5. Header parsing alone (reset-in-place PHV).
    {
        const auto parser = pisa::Parser::standard();
        const auto pkt = pisa::fromTracePacket(trace.front());
        pisa::Phv phv;
        const size_t iters = ctx.size(200000, 5000);
        const bench::Timer timer;
        uint64_t sink = 0;
        for (size_t i = 0; i < iters; ++i) {
            parser.parseInto(pkt, phv);
            sink += phv.get(pisa::Field::PktLen);
        }
        report("parser_only", iters, timer.elapsedSec());
        ctx.metric("parser_sink", sink);
    }

    // 6. Flow-feature tracking (the MAT-side stateful preprocessing).
    {
        net::FlowTracker tracker;
        const size_t iters = ctx.size(100000, 5000);
        const bench::Timer timer;
        double sink = 0;
        for (size_t i = 0; i < iters; ++i) {
            tracker.observe(trace[i % trace.size()]);
            sink += tracker.dnnFeatures().size();
        }
        report("flow_tracker_observe", iters, timer.elapsedSec());
        ctx.metric("flow_tracker_sink", sink);
    }

    t.print(os);

    os << "\nThese numbers measure the reproduction on this host; the "
          "modeled hardware runs at 1 GPkt/s by construction.\n";
}
