#include "util/metrics.hpp"

#include <sstream>
#include <stdexcept>

namespace taurus::util {

double
ConfusionMatrix::precision() const
{
    const uint64_t denom = tp_ + fp_;
    return denom == 0 ? 1.0 : static_cast<double>(tp_) / denom;
}

double
ConfusionMatrix::recall() const
{
    const uint64_t denom = tp_ + fn_;
    return denom == 0 ? 0.0 : static_cast<double>(tp_) / denom;
}

double
ConfusionMatrix::f1() const
{
    const double p = precision();
    const double r = recall();
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
ConfusionMatrix::accuracy() const
{
    const uint64_t t = total();
    return t == 0 ? 0.0 : static_cast<double>(tp_ + tn_) / t;
}

std::string
ConfusionMatrix::summary() const
{
    std::ostringstream os;
    os << "tp=" << tp_ << " fp=" << fp_ << " fn=" << fn_ << " tn=" << tn_
       << " precision=" << precision() << " recall=" << recall()
       << " f1=" << f1();
    return os.str();
}

MultiConfusion::MultiConfusion(size_t classes)
    : classes_(classes == 0 ? 1 : classes),
      cells_(classes_ * classes_, 0)
{
}

size_t
MultiConfusion::clampClass(int32_t c) const
{
    if (c < 0)
        return classes_ - 1;
    const size_t u = static_cast<size_t>(c);
    return u >= classes_ ? classes_ - 1 : u;
}

void
MultiConfusion::record(int32_t predicted, int32_t truth)
{
    ++cells_[clampClass(predicted) * classes_ + clampClass(truth)];
    ++total_;
}

void
MultiConfusion::merge(const MultiConfusion &other)
{
    if (other.classes_ != classes_)
        throw std::invalid_argument(
            "MultiConfusion::merge: class-count mismatch (" +
            std::to_string(classes_) + " vs " +
            std::to_string(other.classes_) + ")");
    for (size_t i = 0; i < cells_.size(); ++i)
        cells_[i] += other.cells_[i];
    total_ += other.total_;
}

void
MultiConfusion::reset()
{
    cells_.assign(classes_ * classes_, 0);
    total_ = 0;
}

uint64_t
MultiConfusion::count(size_t predicted, size_t truth) const
{
    return cells_[predicted * classes_ + truth];
}

double
MultiConfusion::accuracy() const
{
    if (total_ == 0)
        return 0.0;
    uint64_t diag = 0;
    for (size_t c = 0; c < classes_; ++c)
        diag += count(c, c);
    return static_cast<double>(diag) / static_cast<double>(total_);
}

double
MultiConfusion::precision(size_t c) const
{
    uint64_t predicted = 0;
    for (size_t t = 0; t < classes_; ++t)
        predicted += count(c, t);
    return predicted == 0 ? 1.0
                          : static_cast<double>(count(c, c)) / predicted;
}

double
MultiConfusion::recall(size_t c) const
{
    uint64_t truth = 0;
    for (size_t p = 0; p < classes_; ++p)
        truth += count(p, c);
    return truth == 0 ? 0.0 : static_cast<double>(count(c, c)) / truth;
}

double
MultiConfusion::f1(size_t c) const
{
    const double p = precision(c);
    const double r = recall(c);
    return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double
MultiConfusion::macroF1() const
{
    double sum = 0.0;
    for (size_t c = 0; c < classes_; ++c)
        sum += f1(c);
    return sum / static_cast<double>(classes_);
}

} // namespace taurus::util
