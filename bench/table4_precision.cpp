/**
 * @file
 * Table 4: per-FU area and power at the target design (16 lanes, 4
 * stages) across fixed-point precisions.
 */

#include <iostream>

#include "area/fu_model.hpp"
#include "util/table.hpp"

int
main()
{
    using taurus::area::FuModel;
    using taurus::util::TablePrinter;

    std::cout << "Table 4: area and power scaling (per-FU) at 16 lanes "
                 "x 4 stages\n"
                 "Paper: fix8 670/456, fix16 1338/887, fix32 2949/2341 "
                 "(um^2 / uW)\n\n";

    TablePrinter t({"Precision", "Area (um^2)", "Power (uW)"});
    for (int bits : {8, 16, 32}) {
        t.addRow({"fix" + std::to_string(bits),
                  TablePrinter::num(FuModel::fuAreaUm2(16, 4, bits), 0),
                  TablePrinter::num(FuModel::fuPowerUw(16, 4, bits), 0)});
    }
    t.print(std::cout);
    return 0;
}
